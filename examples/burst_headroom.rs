//! Compare how much fan-in burst SIH and DSH can absorb before the first
//! PFC PAUSE — the paper's headline microbenchmark (Fig. 11) — and check
//! the measurement against the closed-form bounds of Theorems 1 and 2.
//!
//! ```bash
//! cargo run --release --example burst_headroom
//! ```

use dsh_analysis::theory::{dsh_burst_tolerance, sih_burst_tolerance, BurstScenario};
use dsh_core::Scheme;
use dsh_net::{FlowSpec, NetParams, NetworkBuilder};
use dsh_simcore::{Bandwidth, Delta, Time};
use dsh_transport::CcKind;

/// Does a 16-way burst of `per_sender` bytes trigger any PFC pause on a
/// 32-port switch?
fn pauses(scheme: Scheme, per_sender: u64) -> bool {
    let mut b = NetworkBuilder::new(NetParams::tomahawk(scheme).without_ecn());
    let hosts: Vec<_> = (0..32).map(|_| b.host()).collect();
    let sw = b.switch();
    for &h in &hosts {
        b.link(h, sw, Bandwidth::from_gbps(100), Delta::from_us(2));
    }
    let mut net = b.build();
    for &src in &hosts[2..18] {
        net.add_flow(FlowSpec {
            src,
            dst: hosts[30],
            size: per_sender,
            class: 0,
            start: Time::ZERO,
            cc: CcKind::Uncontrolled,
        });
    }
    let mut sim = net.into_sim();
    sim.run_until(Time::from_ms(40));
    let net = sim.into_model();
    assert_eq!(net.data_drops(), 0);
    let st = net.mmu_stats();
    st.queue_pauses + st.port_pauses > 0
}

fn limit(scheme: Scheme) -> u64 {
    let step = 32 * 1024;
    let mut last = 0;
    for mult in 1..200 {
        if pauses(scheme, mult * step) {
            break;
        }
        last = mult * step;
    }
    last
}

fn main() {
    println!("searching for the largest pause-free 16:1 burst (32-port Tomahawk)...");
    let sih = limit(Scheme::Sih);
    let dsh = limit(Scheme::Dsh);
    let buffer = 16.0 * 1024.0 * 1024.0;
    println!(
        "  SIH: {:>10} B/sender  ({:>5.1}% of buffer in total)",
        sih,
        16.0 * sih as f64 / buffer * 100.0
    );
    println!(
        "  DSH: {:>10} B/sender  ({:>5.1}% of buffer in total)",
        dsh,
        16.0 * dsh as f64 / buffer * 100.0
    );
    println!("  measured gain: {:.2}x", dsh as f64 / sih as f64);

    // Cross-check with §IV-C: the closed forms use normalized time; the
    // per-queue absorbed volume is d · (R − 1) with R = 16 here... the
    // ratio is what transfers.
    let sc = BurstScenario {
        total_buffer: buffer,
        eta: 56_840.0,
        alpha: 1.0 / 16.0,
        num_ports: 33,
        queues_per_port: 7,
        congested: 0,
        bursting: 16,
        offered_load: 16.0,
    };
    let ratio = dsh_burst_tolerance(&sc) / sih_burst_tolerance(&sc);
    println!("  Theorem 1/2 predicted gain: {ratio:.2}x");
}
