//! Reproduce the paper's Fig. 12 deadlock scenario end to end: a
//! leaf–spine fabric with two failed links, bounce-path routing, and
//! rack-to-rack fan-in traffic form a cyclic buffer dependency. SIH
//! wedges; DSH (usually) does not; the PFC watchdog (extension) breaks
//! the wedge by dropping.
//!
//! ```bash
//! cargo run --release --example deadlock_cbd
//! ```

use dsh_core::Scheme;
use dsh_net::topology::{leaf_spine, LeafSpineShape};
use dsh_net::{EcnConfig, FlowSpec, NetParams};
use dsh_simcore::{Delta, SimRng, Time};
use dsh_transport::CcKind;
use dsh_workloads::{fan_in_bursts, FlowSizeDist, PatternConfig, Workload};

fn run(scheme: Scheme, watchdog: Option<Delta>, seed: u64) -> (Option<Time>, u64, usize) {
    let mut params = NetParams::tomahawk(scheme);
    params.seed = seed;
    params.deadlock_threshold = Delta::from_ms(2);
    params.pfc_watchdog = watchdog;
    params.ecn = EcnConfig::for_100g();

    let mut ls = leaf_spine(params, LeafSpineShape::paper_deadlock());
    let (s0, s1) = (ls.spines[0], ls.spines[1]);
    let (l0, l3) = (ls.leaves[0], ls.leaves[3]);
    ls.builder.remove_link(s0, l3);
    ls.builder.remove_link(s1, l0);
    let hosts = ls.hosts.clone();
    let mut net = ls.builder.build();

    let mut rng = SimRng::new(seed * 7919 + 17);
    let dist = FlowSizeDist::from_workload(Workload::Hadoop);
    let pc = PatternConfig {
        hosts: 16,
        host_bytes_per_sec: 12.5e9,
        load: 0.5,
        horizon: Time::from_ms(8),
    };
    for &(a, b) in &[(0usize, 3usize), (3, 0), (1, 2), (2, 1)] {
        for f in fan_in_bursts(&pc, 8, dist.mean() as u64, 0, &mut rng) {
            let size = dist.sample(&mut rng).max(1);
            let jitter = Delta::from_ns(rng.gen_range(100_000));
            net.add_flow(FlowSpec {
                src: hosts[a][f.src],
                dst: hosts[b][f.dst],
                size,
                class: 0,
                start: f.start + jitter,
                cc: CcKind::Dcqcn,
            });
        }
    }
    let mut sim = net.into_sim();
    sim.run_until(Time::from_ms(10));
    let net = sim.into_model();
    (net.deadlock_report().onset, net.watchdog_drops(), net.fct_records().len())
}

fn main() {
    println!("Fig. 12 walkthrough — cyclic buffer dependency after two link failures\n");
    for seed in 1..=2 {
        for (label, scheme, wd) in [
            ("SIH            ", Scheme::Sih, None),
            ("SIH + watchdog ", Scheme::Sih, Some(Delta::from_ms(2))),
            ("DSH            ", Scheme::Dsh, None),
        ] {
            let (onset, drops, done) = run(scheme, wd, seed);
            match onset {
                Some(t) => println!(
                    "seed {seed} {label}: DEADLOCK at {:>7.2} ms (flows done {done}, watchdog drops {drops})",
                    t.as_ms_f64()
                ),
                None => println!(
                    "seed {seed} {label}: no deadlock        (flows done {done}, watchdog drops {drops})"
                ),
            }
        }
        println!();
    }
}
