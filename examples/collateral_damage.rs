//! Reproduce the paper's collateral-damage scenario (Fig. 13): an
//! innocent long-lived flow F0 shares a link with a flow heading into a
//! fan-in hotspot. Under SIH the PFC pause stalls F0; under DSH it keeps
//! its bandwidth.
//!
//! ```bash
//! cargo run --release --example collateral_damage
//! ```

use dsh_core::Scheme;
use dsh_net::{FlowSpec, NetParams, NetworkBuilder, ThroughputSample};
use dsh_simcore::{Bandwidth, Delta, Time};
use dsh_transport::CcKind;

fn victim_series(scheme: Scheme, cc: CcKind) -> Vec<ThroughputSample> {
    let mut params = NetParams::tomahawk(scheme);
    if cc == CcKind::Uncontrolled {
        params = params.without_ecn();
    }
    let mut b = NetworkBuilder::new(params);
    let bw = Bandwidth::from_gbps(100);
    let d = Delta::from_us(2);
    let (s0, s1) = (b.switch(), b.switch());
    b.link(s0, s1, bw, d);
    let (h0, h1) = (b.host(), b.host());
    b.link(h0, s0, bw, d);
    b.link(h1, s0, bw, d);
    let (r0, r1) = (b.host(), b.host());
    b.link(r0, s1, bw, d);
    b.link(r1, s1, bw, d);
    let fan: Vec<_> = (0..24)
        .map(|_| {
            let h = b.host();
            b.link(h, s1, bw, d);
            h
        })
        .collect();
    let mut net = b.build();

    let f0 = net.add_flow(FlowSpec {
        src: h0,
        dst: r0,
        size: 40_000_000,
        class: 0,
        start: Time::ZERO,
        cc,
    });
    net.add_flow(FlowSpec { src: h1, dst: r1, size: 40_000_000, class: 0, start: Time::ZERO, cc });
    for &h in &fan {
        // 64 KB < 1 BDP: uncontrollable by any end-to-end CC in its first
        // (and only) RTT, per the paper's argument.
        net.add_flow(FlowSpec {
            src: h,
            dst: r1,
            size: 64 * 1024,
            class: 0,
            start: Time::from_us(100),
            cc: CcKind::Uncontrolled,
        });
    }
    net.monitor_flow(f0);
    let mut sim = net.into_sim();
    sim.run_until(Time::from_us(800));
    sim.into_model().flow_throughput(f0).to_vec()
}

fn main() {
    for cc in [CcKind::Uncontrolled, CcKind::Dcqcn, CcKind::PowerTcp] {
        println!("== transport: {cc} ==");
        let sih = victim_series(Scheme::Sih, cc);
        let dsh = victim_series(Scheme::Dsh, cc);
        println!("{:>9} {:>12} {:>12}", "time(us)", "SIH(Gb/s)", "DSH(Gb/s)");
        for (a, b) in sih.iter().zip(&dsh) {
            if a.time.as_ns() % 50_000 == 0 {
                println!("{:>9.0} {:>12.1} {:>12.1}", a.time.as_us_f64(), a.gbps, b.gbps);
            }
        }
        let min = |v: &[ThroughputSample]| {
            v.iter()
                .filter(|s| s.time > Time::from_us(110))
                .map(|s| s.gbps)
                .fold(f64::INFINITY, f64::min)
        };
        println!(
            "victim min throughput after burst: SIH {:.1} Gb/s vs DSH {:.1} Gb/s\n",
            min(&sih),
            min(&dsh)
        );
    }
}
