//! Drive a realistic leaf–spine datacenter under mixed background +
//! fan-in traffic with DCQCN, and compare SIH vs DSH flow completion
//! times — a scaled-down version of the paper's §V-B evaluation.
//!
//! ```bash
//! cargo run --release --example datacenter_fabric
//! ```

use dsh_analysis::fct::FctSummary;
use dsh_core::Scheme;
use dsh_net::topology::{leaf_spine, LeafSpineShape};
use dsh_net::{FlowSpec, NetParams};
use dsh_simcore::{Bandwidth, Delta, SimRng, Time};
use dsh_transport::CcKind;
use dsh_workloads::{background_flows, fan_in_bursts, FlowSizeDist, PatternConfig, Workload};

const FAN_IN_CLASS: u8 = 6;

fn run(scheme: Scheme, seed: u64) -> (Option<FctSummary>, Option<FctSummary>) {
    let shape = LeafSpineShape {
        leaves: 4,
        spines: 4,
        hosts_per_leaf: 8,
        downlink: Bandwidth::from_gbps(100),
        uplink: Bandwidth::from_gbps(100),
        link_delay: Delta::from_us(2),
    };
    let mut params = NetParams::tomahawk(scheme);
    params.seed = seed;
    let ls = leaf_spine(params, shape);
    let hosts = ls.all_hosts();
    let mut net = ls.builder.build();

    let mut rng = SimRng::new(seed);
    let horizon = Time::from_ms(2);
    let dist = FlowSizeDist::from_workload(Workload::WebSearch);
    let cfg = PatternConfig { hosts: hosts.len(), host_bytes_per_sec: 12.5e9, load: 0.6, horizon };
    let mut fan_ids = Vec::new();
    for f in background_flows(&cfg, &dist, &[0, 1, 2, 3, 4, 5], &mut rng) {
        net.add_flow(FlowSpec {
            src: hosts[f.src],
            dst: hosts[f.dst],
            size: f.size,
            class: f.class,
            start: f.start,
            cc: CcKind::Dcqcn,
        });
    }
    let burst_cfg = PatternConfig { load: 0.3, ..cfg };
    for f in fan_in_bursts(&burst_cfg, 16, 64 * 1024, FAN_IN_CLASS, &mut rng) {
        let id = net.add_flow(FlowSpec {
            src: hosts[f.src],
            dst: hosts[f.dst],
            size: f.size,
            class: f.class,
            start: f.start,
            cc: CcKind::Dcqcn,
        });
        fan_ids.push(id);
    }

    let mut sim = net.into_sim();
    sim.run_until(Time::from_ms(6));
    let net = sim.into_model();
    assert_eq!(net.data_drops(), 0, "lossless fabric dropped packets");

    let fan: Vec<_> =
        net.fct_records().iter().filter(|r| fan_ids.contains(&r.flow)).map(|r| r.fct()).collect();
    let bg: Vec<_> =
        net.fct_records().iter().filter(|r| !fan_ids.contains(&r.flow)).map(|r| r.fct()).collect();
    (FctSummary::from_fcts(&fan), FctSummary::from_fcts(&bg))
}

fn main() {
    println!("128-host leaf-spine, web search @0.6 + 16:1 fan-in @0.3, DCQCN");
    let (sih_fan, sih_bg) = run(Scheme::Sih, 42);
    let (dsh_fan, dsh_bg) = run(Scheme::Dsh, 42);
    let report = |name: &str, sih: Option<FctSummary>, dsh: Option<FctSummary>| {
        let (s, d) = (sih.expect("flows completed"), dsh.expect("flows completed"));
        println!(
            "{name}: SIH avg {:.1}us p99 {:.1}us | DSH avg {:.1}us p99 {:.1}us | DSH/SIH {:.3}",
            s.avg_secs * 1e6,
            s.p99_secs * 1e6,
            d.avg_secs * 1e6,
            d.p99_secs * 1e6,
            d.normalized_avg(&s),
        );
    };
    report("fan-in    ", sih_fan, dsh_fan);
    report("background", sih_bg, dsh_bg);
}
