//! Quickstart: build a tiny lossless fabric, run an incast, and inspect
//! what the MMU did.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use dsh_core::Scheme;
use dsh_net::{FlowSpec, NetParams, NetworkBuilder};
use dsh_simcore::{Bandwidth, Delta, Time};
use dsh_transport::CcKind;

fn main() {
    // A Broadcom-Tomahawk-like switch running the paper's DSH scheme,
    // with eight hosts on 100 Gb/s / 2 µs links.
    let mut b = NetworkBuilder::new(NetParams::tomahawk(Scheme::Dsh).without_ecn());
    let hosts: Vec<_> = (0..8).map(|_| b.host()).collect();
    let sw = b.switch();
    for &h in &hosts {
        b.link(h, sw, Bandwidth::from_gbps(100), Delta::from_us(2));
    }
    let mut net = b.build();

    // Seven senders blast 512 KB each into one receiver — a 7:1 incast.
    let dst = hosts[7];
    for &src in &hosts[..7] {
        net.add_flow(FlowSpec {
            src,
            dst,
            size: 512 * 1024,
            class: 0,
            start: Time::ZERO,
            cc: CcKind::Uncontrolled,
        });
    }

    let mut sim = net.into_sim();
    sim.run_until(Time::from_ms(10));
    println!("simulated {} events", sim.events_processed());
    let net = sim.into_model();

    println!("flows completed : {}", net.fct_records().len());
    for r in net.fct_records() {
        println!("  {}: {} bytes in {}", r.flow, r.size, r.fct());
    }
    let st = net.mmu_stats();
    println!("PFC queue pauses: {} (resumes {})", st.queue_pauses, st.queue_resumes);
    println!("PFC port pauses : {} (resumes {})", st.port_pauses, st.port_resumes);
    println!("packets dropped : {} (a lossless fabric must say 0)", net.data_drops());
    assert_eq!(net.data_drops(), 0);
}
