//! Fluid fast path for the hybrid-fidelity engine.
//!
//! Links start in **fluid mode**: flows crossing only uncontended links are
//! advanced analytically by a max-min fair-share rate solver, crediting
//! bytes to receivers with zero frames allocated and a single
//! `FluidAdvance` calendar event per rate-change epoch. The moment a
//! fidelity trigger fires on a link (offered load above the utilization
//! threshold, an MMU shared/headroom charge, an ECN mark, a PFC pause, a
//! fault, recovery arming, or a real data frame being enqueued), the link
//! **escalates** to packet mode: every fluid flow crossing it is
//! materialized into real pooled frames and handed to the packet engine.
//! Links de-escalate after a quiescence window with an empty egress queue.
//!
//! This module owns the bookkeeping (per-link fidelity state, per-flow
//! credit accounts, the rate solver, counters); the event hooks and
//! materialization live in [`crate::network`].

use crate::ids::{FlowId, NodeId};
use dsh_simcore::{Bandwidth, Delta, Json, Time};

/// Why a link escalated from fluid to packet mode (trace payload codes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub(crate) enum EscalateReason {
    /// Offered load crossed the utilization threshold at flow admission.
    Util = 0,
    /// An MMU shared-pool or headroom charge landed on the link's ingress.
    MmuCharge = 1,
    /// An ECN mark on the link's egress queue.
    Ecn = 2,
    /// A PFC pause was applied to the link's egress port.
    Pfc = 3,
    /// A fault-plan event touched the network.
    Fault = 4,
    /// Loss recovery armed (go-back-N retransmission).
    Recovery = 5,
    /// A real data frame was enqueued on the link.
    Enqueue = 6,
    /// The link was dragged along while materializing a fluid flow whose
    /// path crosses an escalating link.
    Cascade = 7,
}

/// Counters describing how much work the fluid fast path absorbed; exported
/// in the telemetry report's `fidelity` section.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FidelityStats {
    /// Fluid→packet link transitions.
    pub escalations: u64,
    /// Packet→fluid link transitions (after a quiescence window).
    pub deescalations: u64,
    /// Bytes credited to receivers analytically (never serialized as
    /// frames).
    pub fluid_bytes: u64,
    /// Flows admitted to the fluid fast path.
    pub fluid_flows: u64,
    /// Fluid flows that ran to completion without ever materializing.
    pub fluid_completions: u64,
    /// Fluid flows handed off to the packet engine mid-flight.
    pub materializations: u64,
}

impl FidelityStats {
    /// Adds another partition's counters into this one (partition merge).
    pub(crate) fn merge(&mut self, o: &FidelityStats) {
        self.escalations += o.escalations;
        self.deescalations += o.deescalations;
        self.fluid_bytes += o.fluid_bytes;
        self.fluid_flows += o.fluid_flows;
        self.fluid_completions += o.fluid_completions;
        self.materializations += o.materializations;
    }

    /// JSON form, used by the telemetry report.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::object()
            .with("escalations", self.escalations)
            .with("deescalations", self.deescalations)
            .with("fluid_bytes", self.fluid_bytes)
            .with("fluid_flows", self.fluid_flows)
            .with("fluid_completions", self.fluid_completions)
            .with("materializations", self.materializations)
    }
}

/// Credit account of one flow on the fluid fast path.
///
/// Byte credits are integer-exact: `credited(t) = credited +
/// rate.bytes_in(t - basis)` capped at `size`, where `basis` is the
/// receiver-clock instant at which `credited` was last *folded*. Credits
/// fold only when the flow's rate actually changes (or the account
/// retires), so a flow whose share never moves accrues bytes over one long
/// interval with a single floor — no drift from repeated settling. The
/// first byte reaches the receiver `pipe_delay` after `start` (propagation
/// plus store-and-forward serialization on every hop after the first), so
/// with a constant rate the completion time matches the packet engine's
/// hand-calculable FCT on an idle path.
#[derive(Clone, Debug)]
pub struct FluidFlowAccount {
    /// The flow.
    pub flow: FlowId,
    /// Flow size in bytes.
    pub size: u64,
    /// Sender's first transmission opportunity.
    pub start: Time,
    /// Receiver-clock instant the first byte lands (`start + pipe_delay`).
    pub credit_start: Time,
    /// Path latency: Σ propagation + Σ last-segment serialization on every
    /// hop after the first.
    pub pipe_delay: Delta,
    /// Bytes credited to the receiver so far.
    pub credited: u64,
    /// Current max-min fair share.
    pub rate: Bandwidth,
    /// Receiver-clock instant at which `credited` was current.
    pub basis: Time,
    /// Source NIC line rate (the flow's demand on every path link), bps.
    pub line_rate_bps: u64,
    /// Directed-link ids of the flow's path (source uplink first).
    pub(crate) links: Vec<u32>,
    /// Retired (completed or materialized).
    pub done: bool,
}

impl FluidFlowAccount {
    /// Completion time under the current rate: when the last byte is
    /// credited to the receiver.
    #[must_use]
    pub fn completion(&self) -> Time {
        self.basis + self.rate.tx_delay(self.size - self.credited)
    }

    /// Bytes credited to the receiver at `now` (read-only peek; nothing is
    /// folded).
    #[must_use]
    pub fn credited_at(&self, now: Time) -> u64 {
        let from = if self.basis > self.credit_start { self.basis } else { self.credit_start };
        if now <= from {
            return self.credited;
        }
        (self.credited + self.rate.bytes_in(now.saturating_since(from))).min(self.size)
    }

    /// Bytes in the pipe (sent but not yet credited) at `now` —
    /// what escalation must materialize as real frames.
    #[must_use]
    pub fn in_flight_at(&self, now: Time) -> u64 {
        let elapsed = now.saturating_since(self.start);
        let pipe = if elapsed < self.pipe_delay { elapsed } else { self.pipe_delay };
        self.rate.bytes_in(pipe).min(self.size - self.credited_at(now))
    }

    /// Folds credits up to `now`: `credited`/`basis` become current so a
    /// rate change at `now` starts a fresh accrual interval.
    fn fold(&mut self, now: Time) {
        self.credited = self.credited_at(now);
        self.basis = if now > self.credit_start { now } else { self.credit_start };
    }
}

/// Fidelity state of one directed link.
#[derive(Clone, Debug)]
pub(crate) struct LinkState {
    /// Currently on the fluid fast path.
    pub(crate) fluid: bool,
    /// Permanently packet-mode (partition cut link) — never de-escalates.
    pub(crate) pinned: bool,
    /// Last fidelity trigger seen (gates the quiescence window).
    pub(crate) last_trigger: Time,
    /// Link capacity in bps.
    pub(crate) capacity_bps: u64,
    /// Sum of line rates of fluid flows crossing the link, bps.
    pub(crate) demand_bps: u64,
    /// Fluid flows crossing the link.
    pub(crate) nflows: u32,
    /// Solver scratch: unallocated capacity.
    rem: u64,
    /// Solver scratch: unassigned flows.
    cnt: u32,
}

/// Sentinel for "flow has no fluid account".
const NO_ACCOUNT: u32 = u32::MAX;

/// Per-network fluid-engine state (present only under
/// [`crate::FidelityMode::Hybrid`]).
#[derive(Clone, Debug)]
pub(crate) struct FluidState {
    /// Escalate a link when `demand > util_threshold × capacity`.
    pub(crate) util_threshold: f64,
    /// Packet-mode links may return to fluid after this long without a
    /// trigger (and with an empty egress queue).
    pub(crate) quiesce: Delta,
    /// `port_base[node] + port` maps a directed link to its id.
    pub(crate) port_base: Vec<u32>,
    /// Running total behind `port_base` construction.
    next_port_base: u32,
    /// Directed-link id of the link *feeding* ingress `(node, port)`, or
    /// [`NO_ACCOUNT`] if none (same index space as `links`).
    pub(crate) ingress_of: Vec<u32>,
    links: Vec<LinkState>,
    /// Credit accounts in admission order (retired entries stay, marked
    /// `done`, so indices are stable within an epoch).
    pub(crate) flows: Vec<FluidFlowAccount>,
    /// Flow id → account index ([`NO_ACCOUNT`] when not fluid).
    index: Vec<u32>,
    /// Epoch generation; a queued `FluidAdvance` with a stale generation
    /// is ignored.
    pub(crate) gen: u32,
    /// Aggregate counters for telemetry.
    pub(crate) stats: FidelityStats,
}

impl FluidState {
    /// Fresh state: every link fluid, no flows.
    pub(crate) fn new(util_threshold: f64, quiesce: Delta, nflows: usize) -> Self {
        FluidState {
            util_threshold,
            quiesce,
            port_base: Vec::new(),
            next_port_base: 0,
            ingress_of: Vec::new(),
            links: Vec::new(),
            flows: Vec::new(),
            index: vec![NO_ACCOUNT; nflows],
            gen: 0,
            stats: FidelityStats::default(),
        }
    }

    /// Registers the next node's port count while building `port_base`;
    /// call once per node in id order, then [`push_link`](Self::push_link)
    /// once per port in the same order.
    pub(crate) fn push_node(&mut self, ports: usize) {
        self.port_base.push(self.next_port_base);
        self.next_port_base += u32::try_from(ports).expect("port count fits u32");
    }

    /// Appends one directed link (must follow the `push_node` order).
    pub(crate) fn push_link(&mut self, capacity_bps: u64) {
        self.links.push(LinkState {
            fluid: true,
            pinned: false,
            last_trigger: Time::ZERO,
            capacity_bps,
            demand_bps: 0,
            nflows: 0,
            rem: 0,
            cnt: 0,
        });
        self.ingress_of.push(NO_ACCOUNT);
    }

    /// Records that ingress `(node, port)` — given as its directed-link id
    /// `ingress_lid` — is fed by directed link `feeding_lid`.
    pub(crate) fn set_ingress(&mut self, ingress_lid: usize, feeding_lid: usize) {
        self.ingress_of[ingress_lid] = u32::try_from(feeding_lid).expect("link id");
    }

    /// The directed link feeding ingress `(node, port)` (given as that
    /// port's own directed-link id), if the feeder is locally tracked.
    pub(crate) fn ingress_link(&self, ingress_lid: usize) -> Option<usize> {
        let v = self.ingress_of[ingress_lid];
        (v != NO_ACCOUNT).then_some(v as usize)
    }

    /// Directed-link id of `(node, port)`.
    #[inline]
    pub(crate) fn lid(&self, node: NodeId, port: usize) -> usize {
        self.port_base[node.0] as usize + port
    }

    /// Number of directed links tracked.
    pub(crate) fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Whether the link is currently on the fluid fast path.
    #[inline]
    #[cfg_attr(not(any(test, debug_assertions)), allow(dead_code))] // debug MMU audit + tests
    pub(crate) fn is_fluid(&self, lid: usize) -> bool {
        self.links[lid].fluid
    }

    /// Pins a link to packet mode forever (partition cut links).
    pub(crate) fn pin(&mut self, lid: usize) {
        self.links[lid].pinned = true;
        self.links[lid].fluid = false;
    }

    /// Whether the link is pinned packet-mode.
    pub(crate) fn is_pinned(&self, lid: usize) -> bool {
        self.links[lid].pinned
    }

    /// Records a fidelity trigger on a link (refreshes the quiescence
    /// clock); returns `true` if the link was fluid and is now packet-mode
    /// (counted as an escalation — the caller must materialize its flows).
    pub(crate) fn mark_packet(&mut self, lid: usize, now: Time) -> bool {
        let l = &mut self.links[lid];
        l.last_trigger = now;
        if l.fluid {
            l.fluid = false;
            self.stats.escalations += 1;
            true
        } else {
            false
        }
    }

    /// Whether a packet-mode link's quiescence window has elapsed (the
    /// caller still owns the egress-queue/link-up checks).
    pub(crate) fn deescalation_ready(&self, lid: usize, now: Time) -> bool {
        let l = &self.links[lid];
        !l.fluid && !l.pinned && now.saturating_since(l.last_trigger) >= self.quiesce
    }

    /// Maps a directed-link id back to `(node, port)` for trace points.
    pub(crate) fn link_endpoint(&self, lid: usize) -> (u32, u16) {
        // Nodes with zero ports (Absent) repeat the same base; the last
        // node whose base is ≤ lid owns the link.
        let node = self.port_base.partition_point(|&b| b as usize <= lid) - 1;
        let port = lid - self.port_base[node] as usize;
        (u32::try_from(node).expect("node id"), u16::try_from(port).expect("port id"))
    }

    /// Attempts de-escalation: flips a packet-mode link back to fluid if
    /// it is not pinned and its quiescence window has elapsed. The caller
    /// is responsible for the link-level checks (egress queue empty, link
    /// up) before calling.
    pub(crate) fn try_deescalate(&mut self, lid: usize, now: Time) -> bool {
        let quiesce = self.quiesce;
        let l = &mut self.links[lid];
        if l.fluid || l.pinned || now.saturating_since(l.last_trigger) < quiesce {
            return false;
        }
        l.fluid = true;
        self.stats.deescalations += 1;
        true
    }

    /// First path link that refuses fluid admission: not fluid, pinned, or
    /// would exceed `util_threshold × capacity` with this flow's demand
    /// added. Returns `(lid, over_threshold)`.
    pub(crate) fn admission_blocker(
        &self,
        path: &[u32],
        line_rate_bps: u64,
    ) -> Option<(usize, bool)> {
        for &lid in path {
            let l = &self.links[lid as usize];
            if !l.fluid || l.pinned {
                return Some((lid as usize, false));
            }
            let offered = (l.demand_bps + line_rate_bps) as f64;
            if offered > self.util_threshold * l.capacity_bps as f64 {
                return Some((lid as usize, true));
            }
        }
        None
    }

    /// Admits a flow to the fluid path (the caller has already checked
    /// [`admission_blocker`](Self::admission_blocker)). Bumps the epoch.
    pub(crate) fn admit(&mut self, acct: FluidFlowAccount) {
        for &lid in &acct.links {
            let l = &mut self.links[lid as usize];
            l.demand_bps += acct.line_rate_bps;
            l.nflows += 1;
        }
        self.index[acct.flow.0] = u32::try_from(self.flows.len()).expect("flow count");
        self.stats.fluid_flows += 1;
        self.flows.push(acct);
        self.gen = self.gen.wrapping_add(1);
    }

    /// The account of a fluid flow, if it has one.
    #[cfg_attr(not(test), allow(dead_code))] // test seam for invariant checks
    pub(crate) fn account(&self, flow: FlowId) -> Option<&FluidFlowAccount> {
        let i = *self.index.get(flow.0)?;
        if i == NO_ACCOUNT {
            None
        } else {
            Some(&self.flows[i as usize])
        }
    }

    /// Retires a flow (completed or materialized): folds its credits up to
    /// `now`, releases its demand, and detaches its account. Returns the
    /// final credited byte count (also added to `stats.fluid_bytes`).
    /// Bumps the epoch.
    pub(crate) fn retire(&mut self, idx: usize, now: Time) -> u64 {
        let (links, line_rate, credited) = {
            let a = &mut self.flows[idx];
            debug_assert!(!a.done, "double retire of flow {:?}", a.flow);
            a.fold(now);
            a.done = true;
            self.index[a.flow.0] = NO_ACCOUNT;
            (std::mem::take(&mut a.links), a.line_rate_bps, a.credited)
        };
        for lid in links {
            let l = &mut self.links[lid as usize];
            l.demand_bps -= line_rate;
            l.nflows -= 1;
        }
        self.stats.fluid_bytes += credited;
        self.gen = self.gen.wrapping_add(1);
        credited
    }

    /// Active account indices whose path crosses `lid` (admission order).
    pub(crate) fn flows_on_link(&self, lid: usize) -> Vec<usize> {
        let lid = u32::try_from(lid).expect("link id");
        self.flows
            .iter()
            .enumerate()
            .filter(|(_, a)| !a.done && a.links.contains(&lid))
            .map(|(i, _)| i)
            .collect()
    }

    /// Recomputes every active flow's max-min fair share (integer bps,
    /// water-filling with per-flow line-rate caps) and folds credits at
    /// `now` for any flow whose rate changes. Deterministic: iteration is
    /// in admission order, links in id order.
    pub(crate) fn solve(&mut self, now: Time) {
        let mut unassigned: Vec<usize> =
            self.flows.iter().enumerate().filter(|(_, a)| !a.done).map(|(i, _)| i).collect();
        if unassigned.is_empty() {
            return;
        }
        for l in &mut self.links {
            l.rem = l.capacity_bps;
            l.cnt = 0;
        }
        for &i in &unassigned {
            for &lid in &self.flows[i].links {
                self.links[lid as usize].cnt += 1;
            }
        }
        while !unassigned.is_empty() {
            // Tightest fair share among links still carrying unassigned
            // flows (clamped ≥ 1 bps so every flow makes progress).
            let mut share = u64::MAX;
            for &i in &unassigned {
                for &lid in &self.flows[i].links {
                    let l = &self.links[lid as usize];
                    share = share.min((l.rem / u64::from(l.cnt)).max(1));
                }
            }
            // Flows capped below the bottleneck share saturate at their
            // line rate; otherwise the bottleneck link's flows take the
            // fair share.
            let capped: Vec<usize> = unassigned
                .iter()
                .copied()
                .filter(|&i| self.flows[i].line_rate_bps <= share)
                .collect();
            type RateOf = fn(&FluidFlowAccount, u64) -> u64;
            let (assigned, rate_of): (Vec<usize>, RateOf) = if capped.is_empty() {
                let bottlenecked: Vec<usize> = unassigned
                    .iter()
                    .copied()
                    .filter(|&i| {
                        self.flows[i].links.iter().any(|&lid| {
                            let l = &self.links[lid as usize];
                            (l.rem / u64::from(l.cnt)).max(1) == share
                        })
                    })
                    .collect();
                (bottlenecked, |_, s| s)
            } else {
                (capped, |a, _| a.line_rate_bps)
            };
            debug_assert!(!assigned.is_empty(), "water-filling must progress");
            for &i in &assigned {
                let r = rate_of(&self.flows[i], share);
                let a = &mut self.flows[i];
                if a.rate.as_bps() != r {
                    a.fold(now);
                    a.rate = Bandwidth::from_bps(r);
                }
                for &lid in &self.flows[i].links {
                    let l = &mut self.links[lid as usize];
                    l.rem = l.rem.saturating_sub(r);
                    l.cnt -= 1;
                }
            }
            unassigned.retain(|i| !assigned.contains(i));
        }
    }

    /// Earliest completion time among active accounts (the next
    /// `FluidAdvance` instant), if any flow is active.
    pub(crate) fn next_completion(&self) -> Option<Time> {
        self.flows.iter().filter(|a| !a.done).map(FluidFlowAccount::completion).min()
    }

    /// Whether any flow is currently on the fluid path.
    pub(crate) fn any_active(&self) -> bool {
        self.flows.iter().any(|a| !a.done)
    }

    /// Trims retired accounts from the tail so long runs do not accumulate
    /// unbounded history (indices of live accounts are never after a
    /// retired tail because retirement is monotone within an epoch; a full
    /// compaction would invalidate `index`, so only the tail is dropped).
    pub(crate) fn compact(&mut self) {
        while self.flows.last().is_some_and(|a| a.done) {
            self.flows.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acct(flow: usize, size: u64, links: Vec<u32>, line_gbps: u64) -> FluidFlowAccount {
        FluidFlowAccount {
            flow: FlowId(flow),
            size,
            start: Time::ZERO,
            credit_start: Time::from_ns(100),
            pipe_delay: Delta::from_ns(100),
            credited: 0,
            rate: Bandwidth::from_gbps(0),
            basis: Time::from_ns(100),
            line_rate_bps: Bandwidth::from_gbps(line_gbps).as_bps(),
            links,
            done: false,
        }
    }

    fn state_with_links(n: usize, gbps: u64) -> FluidState {
        let mut st = FluidState::new(1.0, Delta::from_us(100), 16);
        st.push_node(n);
        for _ in 0..n {
            st.push_link(Bandwidth::from_gbps(gbps).as_bps());
        }
        st
    }

    #[test]
    fn solo_flow_runs_at_line_rate() {
        let mut st = state_with_links(3, 100);
        st.admit(acct(0, 1_000_000, vec![0, 1, 2], 100));
        st.solve(Time::ZERO);
        assert_eq!(st.flows[0].rate, Bandwidth::from_gbps(100));
    }

    #[test]
    fn shared_bottleneck_splits_max_min() {
        // Links 0,1 are private uplinks; link 2 is shared by both flows.
        let mut st = FluidState::new(8.0, Delta::from_us(100), 16);
        st.push_node(3);
        for _ in 0..3 {
            st.push_link(Bandwidth::from_gbps(100).as_bps());
        }
        st.admit(acct(0, 1_000_000, vec![0, 2], 100));
        st.admit(acct(1, 1_000_000, vec![1, 2], 100));
        st.solve(Time::ZERO);
        assert_eq!(st.flows[0].rate, Bandwidth::from_gbps(50));
        assert_eq!(st.flows[1].rate, Bandwidth::from_gbps(50));
    }

    #[test]
    fn line_rate_capped_flow_leaves_headroom_for_others() {
        // Flow 0 is capped at 20G by its NIC; flow 1 takes the rest of the
        // shared 100G link (max-min: 20 + 80, not 50 + 50).
        let mut st = FluidState::new(8.0, Delta::from_us(100), 16);
        st.push_node(3);
        for _ in 0..3 {
            st.push_link(Bandwidth::from_gbps(100).as_bps());
        }
        st.admit(acct(0, 1_000_000, vec![0, 2], 20));
        st.admit(acct(1, 1_000_000, vec![1, 2], 100));
        st.solve(Time::ZERO);
        assert_eq!(st.flows[0].rate, Bandwidth::from_gbps(20));
        assert_eq!(st.flows[1].rate, Bandwidth::from_gbps(80));
    }

    #[test]
    fn credit_peek_is_integer_exact_and_capped() {
        let mut st = state_with_links(1, 100);
        let mut a = acct(0, 12_500, vec![0], 100);
        a.rate = Bandwidth::from_gbps(100); // 12.5 GB/s
        st.admit(a);
        // Before the first byte lands: nothing credited.
        assert_eq!(st.flows[0].credited_at(Time::from_ns(50)), 0);
        // 500 ns after credit_start: 100 Gb/s × 500 ns = 6250 B.
        assert_eq!(st.flows[0].credited_at(Time::from_ns(600)), 6250);
        // Peeking never mutates the account.
        assert_eq!(st.flows[0].credited, 0);
        // Way past completion: capped at size.
        assert_eq!(st.flows[0].credited_at(Time::from_us(100)), 12_500);
        // Retiring folds and records the analytic bytes.
        assert_eq!(st.retire(0, Time::from_us(100)), 12_500);
        assert_eq!(st.stats.fluid_bytes, 12_500);
    }

    #[test]
    fn rate_change_folds_credits_without_drift() {
        // Two flows share link 2; when flow 1 retires, flow 0's share
        // changes 50 G → 100 G and its credits fold exactly at that point.
        let mut st = FluidState::new(8.0, Delta::from_us(100), 16);
        st.push_node(3);
        for _ in 0..3 {
            st.push_link(Bandwidth::from_gbps(100).as_bps());
        }
        st.admit(acct(0, 1_000_000, vec![0, 2], 100));
        st.admit(acct(1, 1_000, vec![1, 2], 100));
        st.solve(Time::ZERO);
        assert_eq!(st.flows[0].rate, Bandwidth::from_gbps(50));
        let t1 = Time::from_ns(1100);
        st.retire(1, t1);
        st.solve(t1);
        assert_eq!(st.flows[0].rate, Bandwidth::from_gbps(100));
        // 1000 ns at 50 Gb/s since credit_start (100 ns): 6.25 B/ns.
        assert_eq!(st.flows[0].credited, 6250);
        assert_eq!(st.flows[0].basis, t1);
        // Another 1 µs at full rate: 12 500 more bytes.
        assert_eq!(st.flows[0].credited_at(Time::from_ns(2100)), 6250 + 12_500);
    }

    #[test]
    fn completion_matches_rate_and_residual() {
        let mut st = state_with_links(1, 100);
        let mut a = acct(0, 12_500, vec![0], 100);
        a.rate = Bandwidth::from_gbps(100);
        st.admit(a);
        // 12.5 kB at 100 Gb/s = 1 µs after credit_start (100 ns).
        assert_eq!(st.next_completion(), Some(Time::from_ns(1100)));
    }

    #[test]
    fn admission_blocker_enforces_threshold_and_mode() {
        let mut st = state_with_links(2, 100);
        let line = Bandwidth::from_gbps(60).as_bps();
        assert_eq!(st.admission_blocker(&[0, 1], line), None);
        st.admit(acct(0, 1_000, vec![0, 1], 60));
        // Second 60G flow would offer 120G > 1.0 × 100G on link 0.
        assert_eq!(st.admission_blocker(&[0, 1], line), Some((0, true)));
        // Packet-mode links refuse admission outright.
        assert!(st.mark_packet(1, Time::from_us(1)));
        assert_eq!(st.admission_blocker(&[1], 1), Some((1, false)));
        assert_eq!(st.stats.escalations, 1);
    }

    #[test]
    fn deescalation_waits_for_quiescence_and_respects_pins() {
        let mut st = state_with_links(2, 100);
        st.pin(0);
        assert!(st.mark_packet(1, Time::from_us(10)));
        assert!(!st.try_deescalate(1, Time::from_us(50)), "quiesce window not elapsed");
        assert!(st.try_deescalate(1, Time::from_us(110)));
        assert!(st.is_fluid(1));
        assert!(!st.try_deescalate(0, Time::from_ms(10)), "pinned links never de-escalate");
        assert!(!st.is_fluid(0));
        assert_eq!(st.stats.deescalations, 1);
    }

    #[test]
    fn retire_releases_demand_and_epoch_advances() {
        let mut st = state_with_links(2, 100);
        st.admit(acct(3, 1_000, vec![0, 1], 40));
        let g = st.gen;
        assert_eq!(st.flows_on_link(0), vec![0]);
        st.retire(0, Time::ZERO);
        assert_ne!(st.gen, g);
        assert!(st.account(FlowId(3)).is_none());
        assert!(st.flows_on_link(0).is_empty());
        assert!(!st.any_active());
        st.compact();
        assert!(st.flows.is_empty());
    }

    #[test]
    fn in_flight_is_bounded_by_pipe_and_residual() {
        let mut a = acct(0, 10_000, vec![0], 100);
        a.rate = Bandwidth::from_gbps(100);
        // Mid-pipe: 50 ns of a 100 ns pipe at 12.5 B/ns = 625 B.
        assert_eq!(a.in_flight_at(Time::from_ns(50)), 625);
        // Past the pipe fill, mid-flow: a full pipe's worth.
        assert_eq!(a.in_flight_at(Time::from_ns(500)), 1250);
        // Nearly done: bounded by residual bytes (fold the account to
        // 9 500 credited as of t = 1 µs, so 500 B remain un-credited).
        a.credited = 9_500;
        a.basis = Time::from_us(1);
        assert_eq!(a.in_flight_at(Time::from_us(1)), 500);
    }
}
