//! Identifier newtypes for network entities.

use std::fmt;

/// Number of priority queues per port (IEEE 802.1Qbb classes).
pub const NUM_CLASSES: usize = 8;

/// The strict-priority control class carrying ACK/CNP/PFC traffic
/// (reserved, pause-exempt — the paper's evaluation setup).
pub const CONTROL_CLASS: u8 = 7;

/// Number of lossless data classes scheduled by DWRR (classes `0..7`).
pub const NUM_DATA_CLASSES: usize = 7;

/// Identifies a node (host or switch) in a [`crate::Network`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifies a flow added via [`crate::Network::add_flow`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowId(pub usize);

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_ordering() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(FlowId(7).to_string(), "f7");
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NUM_DATA_CLASSES + 1, NUM_CLASSES);
        assert_eq!(CONTROL_CLASS as usize, NUM_CLASSES - 1);
    }
}
