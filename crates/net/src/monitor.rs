//! Measurement plumbing: FCT records, throughput samples, pause ledgers,
//! deadlock reports and the structured telemetry export.
//!
//! [`TelemetryReport`] is the network's one-stop observability snapshot:
//! per-switch MMU audits, drop attribution, per-port PFC pause durations
//! with pause→resume latency histograms, and occupancy time series —
//! all serializable to JSON via [`TelemetryReport::to_json`] so figure
//! binaries and integration tests consume the same data.

use crate::ids::{FlowId, NodeId};
use dsh_core::{AuditReport, DropAttribution, MmuStats, PortDrops};
use dsh_simcore::{Delta, EngineProfile, Json, Time};

/// Completion record of one flow (taken when the receiver gets the last
/// payload byte).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FctRecord {
    /// The flow.
    pub flow: FlowId,
    /// Flow size in bytes.
    pub size: u64,
    /// Start time (sender's first transmission opportunity).
    pub start: Time,
    /// Completion time.
    pub finish: Time,
}

impl FctRecord {
    /// Flow completion time.
    #[must_use]
    pub fn fct(&self) -> Delta {
        self.finish - self.start
    }
}

/// One point of a flow-throughput time series (Fig. 13).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ThroughputSample {
    /// Sample instant.
    pub time: Time,
    /// Goodput since the previous sample, in Gb/s.
    pub gbps: f64,
}

/// Summary of PFC pause time observed at one egress port (Fig. 11).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PauseLedger {
    /// Node owning the egress port.
    pub node: NodeId,
    /// Port index.
    pub port: usize,
    /// Sum of per-class queue-level pause time.
    pub queue_level: Delta,
    /// Port-level pause time.
    pub port_level: Delta,
}

impl PauseLedger {
    /// Total pause time (queue-level + port-level).
    #[must_use]
    pub fn total(&self) -> Delta {
        self.queue_level + self.port_level
    }
}

/// Number of log₂-spaced buckets in a [`DurationHistogram`] (covers the
/// full `u64` nanosecond range).
const HIST_BUCKETS: usize = 64;

/// A log₂-bucketed histogram of durations (nanosecond resolution).
///
/// Bucket `k` counts durations in `[2^k, 2^(k+1))` ns; bucket 0 also
/// absorbs sub-nanosecond durations. Used for PFC pause→resume latency
/// distributions, where the interesting signal spans ~100 ns (one PFC
/// processing delay) to milliseconds (a wedged port).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DurationHistogram {
    counts: [u64; HIST_BUCKETS],
    count: u64,
    total: Delta,
    max: Delta,
}

impl Default for DurationHistogram {
    fn default() -> Self {
        DurationHistogram {
            counts: [0; HIST_BUCKETS],
            count: 0,
            total: Delta::ZERO,
            max: Delta::ZERO,
        }
    }
}

impl DurationHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        DurationHistogram::default()
    }

    /// Records one duration.
    pub fn record(&mut self, d: Delta) {
        let ns = d.as_ns();
        let bucket = if ns == 0 { 0 } else { 63 - ns.leading_zeros() as usize };
        self.counts[bucket] += 1;
        self.count += 1;
        self.total += d;
        if d > self.max {
            self.max = d;
        }
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &DurationHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.total += other.total;
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// Number of recorded durations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded durations.
    #[must_use]
    pub fn total(&self) -> Delta {
        self.total
    }

    /// Largest recorded duration.
    #[must_use]
    pub fn max(&self) -> Delta {
        self.max
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Non-empty buckets as `(lower_bound, count)`, in ascending order.
    pub fn buckets(&self) -> impl Iterator<Item = (Delta, u64)> + '_ {
        self.counts.iter().enumerate().filter(|&(_, &c)| c > 0).map(|(k, &c)| {
            let lower = if k == 0 { 0 } else { 1u64 << k };
            (Delta::from_ns(lower), c)
        })
    }

    /// JSON form: counters plus the non-empty buckets
    /// (`{"ge_ns": 2^k, "count": c}`).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::object()
            .with("count", self.count)
            .with("total_ns", self.total.as_ns())
            .with("max_ns", self.max.as_ns())
            .with(
                "buckets",
                Json::Arr(
                    self.buckets()
                        .map(|(lo, c)| Json::object().with("ge_ns", lo.as_ns()).with("count", c))
                        .collect(),
                ),
            )
    }
}

/// One point of a buffer-occupancy time series.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OccupancyPoint {
    /// Start of the sampling window.
    pub time: Time,
    /// Peak buffered bytes observed during the window.
    pub bytes: u64,
}

/// A switch's buffered-bytes time series, sampled on every arrival and
/// departure and coalesced to one point (the window's peak) per
/// `resolution` so long runs stay bounded in memory.
#[derive(Clone, Debug)]
pub struct OccupancySeries {
    resolution: Delta,
    current: u64,
    points: Vec<OccupancyPoint>,
    window: Option<OccupancyPoint>,
}

impl OccupancySeries {
    /// An empty series coalescing at `resolution`.
    ///
    /// The point log is pre-reserved so pushing a coalesced window is
    /// allocation-free for the first `1024` windows — on the packet hot
    /// path every arrival/departure calls [`add`](Self::add)/[`sub`](Self::sub), and a mid-run
    /// `Vec` regrowth would show up as a spurious allocation in the
    /// alloc-counted benchmarks.
    #[must_use]
    pub fn new(resolution: Delta) -> Self {
        OccupancySeries { resolution, current: 0, points: Vec::with_capacity(1024), window: None }
    }

    /// Records `bytes` entering the buffer at `now`.
    pub fn add(&mut self, now: Time, bytes: u64) {
        self.current += bytes;
        self.observe(now);
    }

    /// Records `bytes` leaving the buffer at `now`.
    pub fn sub(&mut self, now: Time, bytes: u64) {
        self.current = self.current.saturating_sub(bytes);
        self.observe(now);
    }

    fn observe(&mut self, now: Time) {
        match &mut self.window {
            Some(w) if now.saturating_since(w.time) < self.resolution => {
                w.bytes = w.bytes.max(self.current);
            }
            _ => {
                if let Some(w) = self.window.take() {
                    self.points.push(w);
                }
                self.window = Some(OccupancyPoint { time: now, bytes: self.current });
            }
        }
    }

    /// Bytes currently buffered.
    #[must_use]
    pub fn current(&self) -> u64 {
        self.current
    }

    /// The series so far, including the in-progress window.
    #[must_use]
    pub fn points(&self) -> Vec<OccupancyPoint> {
        let mut out = self.points.clone();
        if let Some(w) = self.window {
            out.push(w);
        }
        out
    }
}

/// Pause telemetry for one traffic class of one egress port.
#[derive(Clone, Debug)]
pub struct ClassPauseTelemetry {
    /// Traffic class.
    pub class: u8,
    /// Total QOFF pause time for this class, including any open interval.
    pub pause: Delta,
    /// Pause→resume latency of this class's *closed* pause intervals.
    pub latency: DurationHistogram,
}

impl ClassPauseTelemetry {
    /// JSON form.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::object()
            .with("class", u64::from(self.class))
            .with("pause_ns", self.pause.as_ns())
            .with("latency", self.latency.to_json())
    }
}

/// PFC pause telemetry for one egress port: QOFF/POFF wall-clock totals
/// and the distribution of closed pause→resume intervals.
#[derive(Clone, Debug)]
pub struct PortPauseTelemetry {
    /// Node owning the egress port.
    pub node: NodeId,
    /// Port index.
    pub port: usize,
    /// Total queue-level (QOFF) pause time, summed over classes,
    /// including any still-open interval.
    pub queue_level: Delta,
    /// Total port-level (POFF) pause time, including any open interval.
    pub port_level: Delta,
    /// Pause→resume latency of every *closed* pause interval (queue- and
    /// port-level merged) — the historical aggregate view.
    pub pause_latency: DurationHistogram,
    /// Per-class breakdown, keyed by (port, class); only classes with
    /// pause activity appear, so single-class runs stay compact.
    pub classes: Vec<ClassPauseTelemetry>,
    /// Pause→resume latency of *port-level* (POFF) intervals only, no
    /// longer conflated with the per-class histograms above.
    pub port_latency: DurationHistogram,
}

impl PortPauseTelemetry {
    /// JSON form.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::object()
            .with("node", self.node.0)
            .with("port", self.port)
            .with("queue_pause_ns", self.queue_level.as_ns())
            .with("port_pause_ns", self.port_level.as_ns())
            .with("pause_latency", self.pause_latency.to_json())
            .with(
                "classes",
                Json::Arr(self.classes.iter().map(ClassPauseTelemetry::to_json).collect()),
            )
            .with("port_latency", self.port_latency.to_json())
    }
}

/// One switch's slice of a [`TelemetryReport`].
#[derive(Clone, Debug)]
pub struct SwitchTelemetry {
    /// The switch.
    pub node: NodeId,
    /// Invariant audit at report time ([`dsh_core::Mmu::audit`]).
    pub audit: AuditReport,
    /// Aggregate MMU counters.
    pub stats: MmuStats,
    /// Which admission rules rejected the dropped packets.
    pub attribution: DropAttribution,
    /// Drops by ingress port (index = port).
    pub port_drops: Vec<PortDrops>,
    /// Buffered-bytes time series.
    pub occupancy: Vec<OccupancyPoint>,
}

impl SwitchTelemetry {
    /// JSON form. `port_drops` lists only ports that actually dropped.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let drops: Vec<Json> = self
            .port_drops
            .iter()
            .enumerate()
            .filter(|(_, d)| d.packets > 0)
            .map(|(p, d)| {
                Json::object().with("port", p).with("packets", d.packets).with("bytes", d.bytes)
            })
            .collect();
        let occupancy: Vec<Json> = self
            .occupancy
            .iter()
            .map(|pt| Json::object().with("t_ns", pt.time.as_ns()).with("bytes", pt.bytes))
            .collect();
        Json::object()
            .with("node", self.node.0)
            .with("audit", self.audit.to_json())
            .with(
                "stats",
                Json::object()
                    .with("admitted_packets", self.stats.admitted_packets)
                    .with("dropped_packets", self.stats.dropped_packets)
                    .with("dropped_bytes", self.stats.dropped_bytes)
                    .with("queue_pauses", self.stats.queue_pauses)
                    .with("queue_resumes", self.stats.queue_resumes)
                    .with("port_pauses", self.stats.port_pauses)
                    .with("port_resumes", self.stats.port_resumes),
            )
            .with(
                "drop_attribution",
                Json::object()
                    .with("private_full", self.attribution.private_full)
                    .with("dt_threshold", self.attribution.dt_threshold)
                    .with("shared_cap", self.attribution.shared_cap)
                    .with("port_paused", self.attribution.port_paused)
                    .with("headroom_full", self.attribution.headroom_full)
                    .with("insurance_full", self.attribution.insurance_full)
                    .with("insurance_disabled", self.attribution.insurance_disabled)
                    .with("drop_tail", self.attribution.drop_tail),
            )
            .with("port_drops", Json::Arr(drops))
            .with("occupancy", Json::Arr(occupancy))
    }
}

/// A structured snapshot of everything the network can observe about PFC
/// and buffer behaviour; see [`crate::Network::telemetry_report`].
#[derive(Clone, Debug)]
pub struct TelemetryReport {
    /// Snapshot instant.
    pub generated_at: Time,
    /// Data packets dropped by MMU admission across the network.
    pub data_drops: u64,
    /// Frames dropped by the PFC watchdog.
    pub watchdog_drops: u64,
    /// Frames lost to injected link faults (drained on `LinkDown`, cut in
    /// flight, or corrupted) — disjoint from `data_drops`.
    pub link_drops: u64,
    /// Timeout retransmission episodes across all flows (both regimes).
    pub retransmissions: u64,
    /// Selective-repeat NACK frames sent by receivers.
    pub nacks_sent: u64,
    /// Bytes retransmitted by selective-repeat gap repairs (disjoint from
    /// go-back-N rewind bytes; both count into `retransmitted_bytes`).
    pub sr_retransmitted_bytes: u64,
    /// Recovery episodes attributed to an RTO expiry.
    pub recovery_timeouts: u64,
    /// Recovery episodes attributed to a NACK (selective repeat only).
    pub recovery_nacks: u64,
    /// Per-switch MMU telemetry.
    pub switches: Vec<SwitchTelemetry>,
    /// Per-egress-port pause telemetry (every node, hosts included).
    pub ports: Vec<PortPauseTelemetry>,
    /// Run-intrinsic provenance (seed, scheme, package version) — the
    /// inputs that determine the run, not the machine it ran on, so the
    /// report stays byte-identical at any thread count.
    pub provenance: Json,
    /// Engine dispatch profile, if the harness ran the simulation through
    /// [`dsh_simcore::Simulation::run_until_profiled`] and attached it.
    pub engine_profile: Option<EngineProfile>,
    /// Fidelity section (mode, thresholds, fluid statistics); present only
    /// for hybrid-fidelity runs so packet-mode reports stay byte-identical
    /// to pre-hybrid goldens.
    pub fidelity: Option<Json>,
    /// Pause-cascade summary and victim-flow attribution; present only
    /// when the pause-causality observatory is enabled
    /// (`NetParams::observe`), so ordinary reports are unchanged.
    pub pause_cascades: Option<crate::observe::CascadeReport>,
}

impl TelemetryReport {
    /// Human-readable descriptions of every losslessness violation:
    /// ingress drops named by `(switch, port)` and audit violations named
    /// by `(switch, invariant, port, queue)`. Empty ⇔ the run was clean.
    #[must_use]
    pub fn lossless_violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        for sw in &self.switches {
            for (port, d) in sw.port_drops.iter().enumerate() {
                if d.packets > 0 {
                    out.push(format!(
                        "switch {} port {port}: dropped {} packets ({} B) at ingress",
                        sw.node, d.packets, d.bytes
                    ));
                }
            }
            for v in &sw.audit.violations {
                out.push(format!("switch {}: invariant {v}", sw.node));
            }
        }
        out
    }

    /// Attaches an engine dispatch profile (builder-style, for harnesses
    /// that run profiled).
    #[must_use]
    pub fn with_engine_profile(mut self, profile: EngineProfile) -> Self {
        self.engine_profile = Some(profile);
        self
    }

    /// JSON form of the whole report.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let doc = Json::object()
            .with("generated_at_ns", self.generated_at.as_ns())
            .with("provenance", self.provenance.clone())
            .with("data_drops", self.data_drops)
            .with("watchdog_drops", self.watchdog_drops)
            .with("link_drops", self.link_drops)
            .with("retransmissions", self.retransmissions)
            .with("nacks_sent", self.nacks_sent)
            .with("sr_retransmitted_bytes", self.sr_retransmitted_bytes)
            .with("recovery_timeouts", self.recovery_timeouts)
            .with("recovery_nacks", self.recovery_nacks)
            .with(
                "switches",
                Json::Arr(self.switches.iter().map(SwitchTelemetry::to_json).collect()),
            )
            .with("ports", Json::Arr(self.ports.iter().map(PortPauseTelemetry::to_json).collect()));
        let doc = match &self.engine_profile {
            Some(p) => doc.with("engine_profile", p.to_json()),
            None => doc,
        };
        let doc = match &self.fidelity {
            Some(f) => doc.with("fidelity", f.clone()),
            None => doc,
        };
        match &self.pause_cascades {
            Some(c) => doc.with("pause_cascades", c.to_json()),
            None => doc,
        }
    }
}

/// Result of deadlock detection over a run (Fig. 12).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct DeadlockReport {
    /// First time at which some egress port had been continuously blocked
    /// (non-empty, all non-empty data classes paused) beyond the detection
    /// threshold — the *onset* is the start of that blocked interval.
    pub onset: Option<Time>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fct_arithmetic() {
        let r = FctRecord {
            flow: FlowId(0),
            size: 64_000,
            start: Time::from_us(10),
            finish: Time::from_us(110),
        };
        assert_eq!(r.fct(), Delta::from_us(100));
    }

    #[test]
    fn histogram_buckets_by_log2_ns() {
        let mut h = DurationHistogram::new();
        h.record(Delta::from_ns(1)); // bucket 0
        h.record(Delta::from_ns(3)); // bucket 1: [2, 4)
        h.record(Delta::from_us(1)); // bucket 9: [512, 1024)
        assert_eq!(h.count(), 3);
        assert_eq!(h.total(), Delta::from_ns(1004));
        assert_eq!(h.max(), Delta::from_us(1));
        let buckets: Vec<(u64, u64)> = h.buckets().map(|(lo, c)| (lo.as_ns(), c)).collect();
        assert_eq!(buckets, vec![(0, 1), (2, 1), (512, 1)]);

        let mut other = DurationHistogram::new();
        other.record(Delta::from_ms(2));
        h.merge(&other);
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), Delta::from_ms(2));

        let j = h.to_json();
        assert_eq!(j.get("count").unwrap().as_u64(), Some(4));
        assert_eq!(j.get("buckets").unwrap().as_arr().unwrap().len(), 4);
    }

    #[test]
    fn occupancy_series_coalesces_to_window_peaks() {
        let mut s = OccupancySeries::new(Delta::from_us(10));
        s.add(Time::from_us(0), 1000);
        s.add(Time::from_us(2), 3000); // same window: peak 4000
        s.sub(Time::from_us(4), 3500); // still same window
        s.add(Time::from_us(15), 2000); // new window
        assert_eq!(s.current(), 2500);
        let pts = s.points();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0], OccupancyPoint { time: Time::from_us(0), bytes: 4000 });
        assert_eq!(pts[1], OccupancyPoint { time: Time::from_us(15), bytes: 2500 });
    }

    #[test]
    fn lossless_violations_name_switch_and_port() {
        use dsh_core::{AuditViolation, PortDrops};
        let report = TelemetryReport {
            generated_at: Time::ZERO,
            data_drops: 2,
            watchdog_drops: 0,
            link_drops: 0,
            retransmissions: 0,
            nacks_sent: 0,
            sr_retransmitted_bytes: 0,
            recovery_timeouts: 0,
            recovery_nacks: 0,
            switches: vec![SwitchTelemetry {
                node: NodeId(4),
                audit: AuditReport {
                    scheme: dsh_core::Scheme::Dsh,
                    snapshot: Default::default(),
                    violations: vec![AuditViolation {
                        invariant: "total-shared-consistent",
                        port: None,
                        queue: None,
                        expected: 0,
                        actual: 500,
                    }],
                },
                stats: Default::default(),
                attribution: Default::default(),
                port_drops: vec![PortDrops::default(), PortDrops { packets: 2, bytes: 3000 }],
                occupancy: vec![],
            }],
            ports: vec![],
            provenance: Json::object().with("seed", 1u64),
            engine_profile: None,
            fidelity: None,
            pause_cascades: None,
        };
        let v = report.lossless_violations();
        assert_eq!(v.len(), 2);
        assert!(v[0].contains("port 1") && v[0].contains("2 packets"), "{}", v[0]);
        assert!(v[1].contains("total-shared-consistent"), "{}", v[1]);
        // The JSON export round-trips through text, carries the
        // provenance header, and omits the profile when absent.
        let j = report.to_json();
        assert_eq!(Json::parse(&j.to_string()).unwrap(), j);
        assert!(j.get("provenance").is_some());
        assert!(j.get("engine_profile").is_none());
        // Attaching a profile adds the per-event-type breakdown.
        let mut profile = EngineProfile::new::<crate::NetEvent>();
        profile.record(0, 120);
        let j = report.with_engine_profile(profile).to_json();
        let prof = j.get("engine_profile").expect("profile must serialize");
        assert!(prof.to_string().contains("arrive"), "{prof}");
    }

    #[test]
    fn pause_ledger_total() {
        let l = PauseLedger {
            node: NodeId(0),
            port: 1,
            queue_level: Delta::from_us(30),
            port_level: Delta::from_us(12),
        };
        assert_eq!(l.total(), Delta::from_us(42));
    }
}
