//! Measurement plumbing: FCT records, throughput samples, pause ledgers
//! and deadlock reports.

use crate::ids::{FlowId, NodeId};
use dsh_simcore::{Delta, Time};

/// Completion record of one flow (taken when the receiver gets the last
/// payload byte).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FctRecord {
    /// The flow.
    pub flow: FlowId,
    /// Flow size in bytes.
    pub size: u64,
    /// Start time (sender's first transmission opportunity).
    pub start: Time,
    /// Completion time.
    pub finish: Time,
}

impl FctRecord {
    /// Flow completion time.
    #[must_use]
    pub fn fct(&self) -> Delta {
        self.finish - self.start
    }
}

/// One point of a flow-throughput time series (Fig. 13).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ThroughputSample {
    /// Sample instant.
    pub time: Time,
    /// Goodput since the previous sample, in Gb/s.
    pub gbps: f64,
}

/// Summary of PFC pause time observed at one egress port (Fig. 11).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PauseLedger {
    /// Node owning the egress port.
    pub node: NodeId,
    /// Port index.
    pub port: usize,
    /// Sum of per-class queue-level pause time.
    pub queue_level: Delta,
    /// Port-level pause time.
    pub port_level: Delta,
}

impl PauseLedger {
    /// Total pause time (queue-level + port-level).
    #[must_use]
    pub fn total(&self) -> Delta {
        self.queue_level + self.port_level
    }
}

/// Result of deadlock detection over a run (Fig. 12).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct DeadlockReport {
    /// First time at which some egress port had been continuously blocked
    /// (non-empty, all non-empty data classes paused) beyond the detection
    /// threshold — the *onset* is the start of that blocked interval.
    pub onset: Option<Time>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fct_arithmetic() {
        let r = FctRecord { flow: FlowId(0), size: 64_000, start: Time::from_us(10), finish: Time::from_us(110) };
        assert_eq!(r.fct(), Delta::from_us(100));
    }

    #[test]
    fn pause_ledger_total() {
        let l = PauseLedger {
            node: NodeId(0),
            port: 1,
            queue_level: Delta::from_us(30),
            port_level: Delta::from_us(12),
        };
        assert_eq!(l.total(), Delta::from_us(42));
    }
}
