//! Network construction: parameters, nodes, links and routing setup.

use crate::ecn::EcnConfig;
use crate::host::HostNode;
use crate::ids::{NodeId, NUM_DATA_CLASSES};
use crate::network::{Network, Node};
use crate::observe::ObserveConfig;
use crate::port::EgressPort;
use crate::routing::compute_route_tables;
use crate::switch::SwitchNode;
use dsh_core::{headroom, Mmu, MmuConfig, Scheme};
use dsh_simcore::trace::{TraceConfig, TraceKey, Tracer};
use dsh_simcore::{Bandwidth, ByteSize, Delta};
use dsh_transport::RecoveryConfig;

/// Engine fidelity: pure packet-level simulation, or the hybrid
/// fluid/packet engine (DESIGN.md §14).
///
/// In `Hybrid` mode every link starts in fluid mode: flows crossing only
/// uncontended links are advanced analytically by a max-min fair-share
/// solver (one `FluidAdvance` calendar event per rate-change epoch, zero
/// frames allocated) and escalate to packet-level simulation the instant
/// a fidelity trigger fires — offered load past `util_threshold`, an MMU
/// shared/headroom charge, an ECN mark, a PFC pause, a fault event, or
/// loss recovery engaging. Links return to fluid mode after `quiesce` of
/// trigger-free quiet. `Packet` is byte-identical to the historical
/// engine (no fluid state exists at all).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FidelityMode {
    /// Pure packet-level simulation (the default; byte-identical to the
    /// pre-hybrid engine).
    Packet,
    /// Fluid fast path with automatic packet-level escalation.
    Hybrid {
        /// A link escalates when the summed line-rate demand of fluid
        /// flows crossing it exceeds `util_threshold × capacity`. `0.0`
        /// escalates on the first flow (packet-equivalent, used by the
        /// equivalence tests); `1.0` (the default) keeps a link fluid
        /// only while a single flow could saturate it.
        util_threshold: f64,
        /// How long a link must stay trigger-free (and its egress queue
        /// empty) before it de-escalates back to fluid mode.
        quiesce: Delta,
    },
}

impl FidelityMode {
    /// The default hybrid configuration: escalate at line rate, return
    /// to fluid after 100 µs of quiet.
    #[must_use]
    pub fn hybrid_default() -> Self {
        FidelityMode::Hybrid { util_threshold: 1.0, quiesce: Delta::from_us(100) }
    }

    /// Whether this is a hybrid (fluid-capable) mode.
    #[must_use]
    pub fn is_hybrid(self) -> bool {
        matches!(self, FidelityMode::Hybrid { .. })
    }

    /// Stable lowercase tag for provenance headers (`"packet"` /
    /// `"hybrid"`).
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            FidelityMode::Packet => "packet",
            FidelityMode::Hybrid { .. } => "hybrid",
        }
    }

    /// Full round-trippable spec in the `parse` grammar
    /// (`"packet"` / `"hybrid:<util_threshold>:<quiesce_us>"`).
    #[must_use]
    pub fn spec(self) -> String {
        match self {
            FidelityMode::Packet => "packet".to_string(),
            FidelityMode::Hybrid { util_threshold, quiesce } => {
                format!("hybrid:{util_threshold}:{}", quiesce.as_ns() / 1_000)
            }
        }
    }

    /// Parses a CLI/env spec: `packet`, `hybrid`, or
    /// `hybrid:<util_threshold>[:<quiesce_us>]`.
    ///
    /// # Errors
    ///
    /// Returns the offending spec on anything unparseable.
    pub fn parse(spec: &str) -> Result<Self, String> {
        if spec == "packet" {
            return Ok(FidelityMode::Packet);
        }
        if spec == "hybrid" {
            return Ok(FidelityMode::hybrid_default());
        }
        if let Some(rest) = spec.strip_prefix("hybrid:") {
            let mut it = rest.splitn(2, ':');
            let thr: f64 =
                it.next().and_then(|s| s.parse().ok()).ok_or_else(|| spec.to_string())?;
            let quiesce = match it.next() {
                Some(us) => Delta::from_us(us.parse().map_err(|_| spec.to_string())?),
                None => Delta::from_us(100),
            };
            if !(0.0..=1024.0).contains(&thr) {
                return Err(spec.to_string());
            }
            return Ok(FidelityMode::Hybrid { util_threshold: thr, quiesce });
        }
        Err(spec.to_string())
    }
}

/// Global simulation parameters.
#[derive(Clone, Debug)]
pub struct NetParams {
    /// Headroom scheme of every switch.
    pub scheme: Scheme,
    /// Lossless-pool buffer per switch.
    pub total_buffer: ByteSize,
    /// DT parameter `α`.
    pub alpha: f64,
    /// Private buffer per queue (`φ`).
    pub private_per_queue: ByteSize,
    /// Explicit `η` (otherwise derived per port from its link via the
    /// configured [`HeadroomSource`]).
    pub eta_override: Option<ByteSize>,
    /// Formula used to derive per-port `η` from link parameters when no
    /// [`NetParams::eta_override`] is set.
    pub headroom_source: HeadroomSource,
    /// BShare's target per-packet queueing delay (ignored by SIH/DSH).
    pub bshare_delay_target: Delta,
    /// MTU (payload bytes per data frame).
    pub mtu: u64,
    /// ECN marking profile.
    pub ecn: EcnConfig,
    /// Base RTT used to size PowerTCP windows.
    pub base_rtt: Delta,
    /// Measurement tick.
    pub sample_interval: Delta,
    /// A port continuously blocked this long is declared deadlocked.
    pub deadlock_threshold: Delta,
    /// PFC watchdog: if `Some(d)`, a class paused continuously for `d`
    /// is forcibly resumed and its queued frames are dropped (the
    /// industry's deadlock-mitigation feature; breaks losslessness by
    /// design). `None` disables the watchdog (the paper's setting).
    pub pfc_watchdog: Option<Delta>,
    /// Go-back-N loss recovery at the NICs: `Some(cfg)` arms a per-flow
    /// retransmission timer. `None` (the default) keeps the historical
    /// lossless-fabric behaviour — no RTO events exist at all, so existing
    /// experiments are bit-identical. Installing a
    /// [`FaultPlan`](crate::FaultPlan) enables a default config derived
    /// from `base_rtt` if this is still `None`.
    pub recovery: Option<RecoveryConfig>,
    /// Engine fidelity: pure packet-level, or the hybrid fluid/packet
    /// fast path (see [`FidelityMode`]).
    pub fidelity: FidelityMode,
    /// Pause-causality observatory: `Some(cfg)` records who-paused-whom
    /// cascade edges and samples per-switch occupancy at
    /// `cfg.metrics_interval`. `None` (the default) keeps every existing
    /// run byte-identical and costs one branch on the pause path.
    pub observe: Option<ObserveConfig>,
    /// RNG seed (ECN randomness).
    pub seed: u64,
    /// Flight-recorder configuration. The default is off (zero
    /// overhead); an active [`dsh_simcore::trace::capture`] session or
    /// the `DSH_TRACE_MASK` environment variable can still enable
    /// tracing at build time (see [`Tracer::for_simulation`]).
    pub trace: TraceConfig,
}

impl NetParams {
    /// The paper's evaluation defaults: Tomahawk buffer (16 MB), `α = 1/16`,
    /// 3 KB private buffer, MTU 1500, DCQCN ECN profile, 16 µs base RTT.
    #[must_use]
    pub fn tomahawk(scheme: Scheme) -> Self {
        NetParams {
            scheme,
            total_buffer: ByteSize::mib(16),
            alpha: 1.0 / 16.0,
            private_per_queue: ByteSize::kib(3),
            eta_override: None,
            headroom_source: HeadroomSource::PaperEq1,
            bshare_delay_target: Delta::from_us(20),
            mtu: 1500,
            ecn: EcnConfig::for_100g(),
            base_rtt: Delta::from_us(16),
            sample_interval: Delta::from_us(10),
            deadlock_threshold: Delta::from_ms(5),
            pfc_watchdog: None,
            recovery: None,
            fidelity: FidelityMode::Packet,
            observe: None,
            seed: 1,
            trace: TraceConfig::off(),
        }
    }
}

/// How a switch derives per-port headroom `η` from link parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HeadroomSource {
    /// The paper's Eq. 1: `η = 2(C·D_prop + MTU) + 3840 B`, where the
    /// trailing constant folds the PFC frame time and the peer's response
    /// delay at 100 Gb/s.
    PaperEq1,
    /// SONiC's BufferManager formula (`speed × cable length × MTU × peer
    /// response time`): `η = 2·C·D_cable + 2·MTU + C·t_peer`, with the
    /// peer response time an explicit operator knob instead of Eq. 1's
    /// baked-in 3840 B. The two agree exactly when `C·t_peer = 3840 B`
    /// (307.2 ns at 100 Gb/s) — `theory_validation` pins that equality.
    Sonic {
        /// Peer response time `t_peer` (how long the neighbour keeps
        /// transmitting after the PAUSE frame arrives).
        peer_response: Delta,
    },
}

impl HeadroomSource {
    /// The headroom for one port's link.
    #[must_use]
    pub fn eta(self, capacity: Bandwidth, prop_delay: Delta, mtu_bytes: u64) -> ByteSize {
        match self {
            HeadroomSource::PaperEq1 => headroom::eta(capacity, prop_delay, mtu_bytes),
            HeadroomSource::Sonic { peer_response } => {
                headroom::sonic_headroom(capacity, prop_delay, mtu_bytes, peer_response)
            }
        }
    }
}

#[derive(Debug)]
enum ProtoNode {
    Host,
    Switch,
}

/// Incremental builder for a [`Network`].
///
/// Add nodes, connect them with full-duplex links, then [`build`]
/// (routing tables and per-switch MMUs are derived automatically).
///
/// [`build`]: NetworkBuilder::build
#[derive(Debug)]
pub struct NetworkBuilder {
    params: NetParams,
    nodes: Vec<ProtoNode>,
    links: Vec<(NodeId, NodeId, Bandwidth, Delta)>,
}

impl NetworkBuilder {
    /// Starts a new topology with the given parameters.
    #[must_use]
    pub fn new(params: NetParams) -> Self {
        NetworkBuilder { params, nodes: Vec::new(), links: Vec::new() }
    }

    /// Adds a host; returns its id.
    pub fn host(&mut self) -> NodeId {
        self.nodes.push(ProtoNode::Host);
        NodeId(self.nodes.len() - 1)
    }

    /// Adds a switch; returns its id.
    pub fn switch(&mut self) -> NodeId {
        self.nodes.push(ProtoNode::Switch);
        NodeId(self.nodes.len() - 1)
    }

    /// Connects `a` and `b` with a full-duplex link.
    pub fn link(&mut self, a: NodeId, b: NodeId, bandwidth: Bandwidth, delay: Delta) {
        assert_ne!(a, b, "self-links are not allowed");
        self.links.push((a, b, bandwidth, delay));
    }

    /// Removes the link between `a` and `b` (link-failure experiments).
    ///
    /// # Panics
    ///
    /// Panics if no such link exists.
    pub fn remove_link(&mut self, a: NodeId, b: NodeId) {
        let before = self.links.len();
        self.links.retain(|&(x, y, _, _)| !((x == a && y == b) || (x == b && y == a)));
        assert!(self.links.len() < before, "no link between {a} and {b}");
    }

    /// Finalizes the topology: creates ports, per-switch MMUs and ECMP
    /// routing tables.
    ///
    /// # Panics
    ///
    /// Panics on malformed topologies (multi-homed hosts, unreachable
    /// destinations are tolerated until routed to).
    #[must_use]
    pub fn build(self) -> Network {
        // Fail fast on incoherent parameter combinations (CLI layers
        // surface the same message as a usage error before getting here).
        if let Err(e) = self.params.validate() {
            panic!("invalid network parameters: {e}");
        }
        // One tracer (and one flight-recorder ring) per network, shared
        // with every switch MMU. The key makes multi-threaded capture
        // sessions sort deterministically: the seed separates sweep
        // points, the scheme tag separates the SIH/DSH pair of a point.
        let tracer = Tracer::for_simulation(&self.params.trace, self.params.trace_key());
        let n = self.nodes.len();
        // Ports per node, in link insertion order.
        let mut ports: Vec<Vec<EgressPort>> = (0..n).map(|_| Vec::new()).collect();
        // adjacency over all nodes: (neighbor, local port index)
        let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
        for &(a, b, bw, d) in &self.links {
            let pa = ports[a.0].len();
            let pb = ports[b.0].len();
            ports[a.0].push(EgressPort::new(b, pb, bw, d));
            ports[b.0].push(EgressPort::new(a, pa, bw, d));
            adj[a.0].push((b.0, pa));
            adj[b.0].push((a.0, pb));
        }

        // Validate host attachment (routing itself is shared with the
        // runtime fault handler, which recomputes after link events).
        let is_switch: Vec<bool> =
            self.nodes.iter().map(|p| matches!(p, ProtoNode::Switch)).collect();
        for u in 0..n {
            if !is_switch[u] {
                assert!(adj[u].len() <= 1, "host n{u} must be single-homed");
                if let Some(&(v, _)) = adj[u].first() {
                    assert!(is_switch[v], "host n{u} must attach to a switch");
                }
            }
        }

        // Routing: for each destination host, BFS from its ToR over the
        // switch graph; each switch forwards to any neighbour strictly
        // closer to the ToR (ECMP).
        let tables = compute_route_tables(&is_switch, &adj);
        // The inline telemetry array budgets every frame's stamp count:
        // a topology deeper than HOP_CAPACITY must fail here, not panic
        // mid-simulation in HopList::push.
        let diameter = crate::routing::max_route_hops(&is_switch, &adj);
        assert!(
            diameter <= dsh_transport::HOP_CAPACITY,
            "longest route crosses {diameter} switches but frames carry only \
             HOP_CAPACITY ({}) inline telemetry stamps; raise \
             dsh_transport::HOP_CAPACITY (and recertify the Frame size \
             contract) for this topology",
            dsh_transport::HOP_CAPACITY
        );

        // Materialize nodes.
        let mut nodes = Vec::with_capacity(n);
        let mut tables = tables.into_iter();
        for (i, (proto, nports)) in self.nodes.iter().zip(ports).enumerate() {
            let table = tables.next().expect("one table per node");
            match proto {
                ProtoNode::Host => {
                    let mut h = HostNode::new(NodeId(i));
                    let mut it = nports.into_iter();
                    h.port = it.next();
                    assert!(it.next().is_none(), "host n{i} must have one uplink");
                    nodes.push(Node::Host(h));
                }
                ProtoNode::Switch => {
                    let num_ports = nports.len().max(1);
                    // Per-port headroom, sized from each port's own link
                    // (Eq. 1) — this is how real deployments configure
                    // mixed-speed fabrics.
                    let port_etas: Vec<_> = nports
                        .iter()
                        .map(|p| {
                            self.params.eta_override.unwrap_or_else(|| {
                                self.params.headroom_source.eta(
                                    p.bandwidth,
                                    p.prop_delay,
                                    self.params.mtu,
                                )
                            })
                        })
                        .collect();
                    let default_eta = port_etas.iter().copied().max().unwrap_or_else(|| {
                        self.params.headroom_source.eta(
                            Bandwidth::from_gbps(100),
                            Delta::from_us(2),
                            self.params.mtu,
                        )
                    });
                    let mut builder = MmuConfig::builder();
                    builder
                        .scheme(self.params.scheme)
                        .total_buffer(self.params.total_buffer)
                        .ports(num_ports)
                        .lossless_queues(NUM_DATA_CLASSES)
                        .private_per_queue(self.params.private_per_queue)
                        .eta(default_eta)
                        .alpha(self.params.alpha)
                        .bshare_delay_target(self.params.bshare_delay_target);
                    if !port_etas.is_empty() {
                        builder.port_etas(port_etas);
                    }
                    let cfg: MmuConfig = builder.build();
                    let mut mmu = Mmu::new(cfg);
                    mmu.set_tracer(tracer.clone(), i as u32);
                    nodes.push(Node::Switch(SwitchNode {
                        id: NodeId(i),
                        ports: nports,
                        mmu,
                        routes: table,
                        occupancy: crate::monitor::OccupancySeries::new(
                            self.params.sample_interval,
                        ),
                    }));
                }
            }
        }

        Network::from_parts(self.params, nodes, tracer)
    }
}

/// Which scheme a [`NetParams`] is configured with (convenience for
/// experiment harnesses).
impl NetParams {
    /// Returns a copy with a different scheme.
    #[must_use]
    pub fn with_scheme(mut self, scheme: Scheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Returns a copy with a different seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with a different lossless-pool buffer size.
    #[must_use]
    pub fn with_buffer(mut self, buffer: ByteSize) -> Self {
        self.total_buffer = buffer;
        self
    }

    /// Returns a copy with ECN marking disabled (uncontrolled
    /// microbenchmarks).
    #[must_use]
    pub fn without_ecn(mut self) -> Self {
        self.ecn = EcnConfig::disabled();
        self
    }

    /// Returns a copy with the PFC watchdog armed at the given timeout.
    #[must_use]
    pub fn with_pfc_watchdog(mut self, timeout: Delta) -> Self {
        self.pfc_watchdog = Some(timeout);
        self
    }

    /// Returns a copy with go-back-N loss recovery enabled at the NICs.
    #[must_use]
    pub fn with_recovery(mut self, cfg: RecoveryConfig) -> Self {
        self.recovery = Some(cfg);
        self
    }

    /// Returns a copy with go-back-N recovery enabled at the default
    /// configuration for this network's base RTT.
    #[must_use]
    pub fn with_default_recovery(self) -> Self {
        let cfg = RecoveryConfig::for_rtt(self.base_rtt);
        self.with_recovery(cfg)
    }

    /// Returns a copy with the flight recorder configured explicitly.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// Returns a copy with a different per-port headroom formula.
    #[must_use]
    pub fn with_headroom_source(mut self, source: HeadroomSource) -> Self {
        self.headroom_source = source;
        self
    }

    /// Returns a copy with a different BShare queueing-delay target.
    #[must_use]
    pub fn with_bshare_delay_target(mut self, d: Delta) -> Self {
        self.bshare_delay_target = d;
        self
    }

    /// Returns a copy with a different DT `α`.
    #[must_use]
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Returns a copy with a different engine fidelity.
    #[must_use]
    pub fn with_fidelity(mut self, fidelity: FidelityMode) -> Self {
        self.fidelity = fidelity;
        self
    }

    /// Returns a copy with the pause-causality observatory enabled.
    #[must_use]
    pub fn with_observability(mut self, cfg: ObserveConfig) -> Self {
        self.observe = Some(cfg);
        self
    }

    /// The [`TraceKey`] a network built from these parameters registers
    /// under in a [`dsh_simcore::trace::capture`] session: the seed
    /// separates sweep points, the scheme tag separates the SIH/DSH pair
    /// of one point.
    #[must_use]
    pub fn trace_key(&self) -> TraceKey {
        TraceKey {
            seed: self.seed,
            tag: match self.scheme {
                Scheme::Sih => 0,
                Scheme::Dsh => 1,
                Scheme::BShare => 2,
                Scheme::Lossy => 3,
            },
        }
    }

    /// Checks the parameter set for incoherent combinations. Called by
    /// [`NetworkBuilder::build`] (which panics on `Err`); CLI layers call
    /// it first and turn the message into a usage error.
    ///
    /// # Errors
    ///
    /// * the lossy scheme combined with a PFC watchdog (there is no PFC to
    ///   watch);
    /// * an invalid [`RecoveryConfig`] (see [`RecoveryConfig::validate`]);
    /// * the lossy scheme with recovery disabled (every drop would wedge
    ///   its flow forever).
    pub fn validate(&self) -> Result<(), String> {
        if self.scheme == Scheme::Lossy && self.pfc_watchdog.is_some() {
            return Err(
                "the lossy scheme disables PFC, so a PFC watchdog cannot be armed".to_string()
            );
        }
        if let Some(r) = &self.recovery {
            r.validate()?;
        }
        if self.scheme == Scheme::Lossy && self.recovery.is_none() {
            return Err("the lossy scheme drops under congestion and requires loss recovery \
                 (set NetParams::recovery)"
                .to_string());
        }
        Ok(())
    }
}
