//! The network model: event dispatch, switching, host NIC logic and
//! measurement.

use crate::builder::{FidelityMode, NetParams};
use crate::fault::{fault_trace, FaultKind, FaultPlan};
use crate::fluid::{EscalateReason, FidelityStats, FluidFlowAccount, FluidState};
use crate::frame::{AckFrame, DataFrame, Frame, FrameKind, NackFrame, PfcScope};
use crate::host::{HostNode, ReceiverFlow, SenderFlow};
use crate::ids::{FlowId, NodeId, NUM_DATA_CLASSES};
use crate::monitor::{
    ClassPauseTelemetry, DeadlockReport, FctRecord, PauseLedger, PortPauseTelemetry,
    SwitchTelemetry, TelemetryReport, ThroughputSample,
};
use crate::observe::{GlobalSample, ObserveState, SwitchSample, PORT_SCOPE_CLASS};
use crate::port::{EgressPort, IngressTag, QueuedFrame};
use crate::switch::SwitchNode;
use dsh_core::headroom::PFC_PROCESSING_BYTES;
use dsh_core::{FcAction, FcActions, Region};
use dsh_simcore::trace::{TraceEvent, TraceLog, TraceMask, Tracer};
use dsh_simcore::{
    split_seed, trace_event, Bandwidth, Delta, EventClass, FlightGuard, Model, Pool, Scheduler,
    SimRng, Simulation, Time,
};
use dsh_transport::{
    new_cc, AckInfo, CcKind, GoBackN, HopList, RecoveryConfig, Regime, RtoOutcome, SackBuffer,
    SackState, TelemetryHop,
};

/// Specification of one flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowSpec {
    /// Source host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Size in payload bytes.
    pub size: u64,
    /// Priority class (0..7; class 7 is reserved for control traffic).
    pub class: u8,
    /// Start time.
    pub start: Time,
    /// Transport.
    pub cc: CcKind,
}

/// The simulator's event alphabet.
///
/// Node, port, and flow indices are stored as `u32` rather than the
/// `usize`-backed id types used everywhere else: calendar entries are
/// memcpy'd on every heap sift, and the narrower fields keep the whole
/// event at 24 bytes (asserted below). The builder guarantees the
/// counts fit; [`Network::handle`] widens them back into typed ids.
#[derive(Clone, Debug)]
pub enum NetEvent {
    /// A frame finished arriving at `node` on ingress `in_port`.
    Arrive {
        /// Receiving node index.
        node: u32,
        /// Ingress port index at the receiving node.
        in_port: u32,
        /// The frame (boxed and pool-recycled so events stay pointer-sized
        /// even though frames carry their INT hops inline).
        frame: Box<Frame>,
    },
    /// `node`'s egress `port` finished serializing its current frame.
    TxDone {
        /// Transmitting node index.
        node: u32,
        /// Egress port index.
        port: u32,
    },
    /// A received PFC frame takes effect after the standard processing
    /// delay.
    ApplyPause {
        /// Index of the node whose egress is paused/resumed.
        node: u32,
        /// Egress port index (the port the PFC frame arrived on).
        port: u32,
        /// Queue- or port-level.
        scope: PfcScope,
        /// `true` = pause.
        pause: bool,
        /// Port fault generation at issue time: if the link flapped while
        /// the processing delay elapsed, the event is stale (a PAUSE whose
        /// RESUME died with the link must not wedge the port).
        gen: u32,
    },
    /// A flow becomes active at its source host.
    FlowStart {
        /// The flow index.
        flow: u32,
    },
    /// NIC pacing wake-up.
    HostWake {
        /// The host index.
        host: u32,
    },
    /// Congestion-control timer for one flow.
    CcTimer {
        /// Index of the flow's source host.
        host: u32,
        /// The flow index.
        flow: u32,
        /// Generation guard (stale timers are ignored).
        gen: u32,
    },
    /// Go-back-N retransmission timeout for one flow (lazy: the handler
    /// re-schedules itself when ACK progress pushed the deadline forward,
    /// so sends and ACKs never touch the calendar to re-arm it).
    RtoTimer {
        /// Index of the flow's source host.
        host: u32,
        /// The flow index.
        flow: u32,
        /// Generation guard (stale timers are ignored).
        gen: u32,
    },
    /// A scheduled fault takes effect.
    Fault {
        /// Index into the installed [`FaultPlan`]'s event list.
        index: u32,
    },
    /// Periodic measurement tick.
    Sample,
    /// Periodic observability tick: snapshots switch occupancy and global
    /// gauges into the metrics sampler (only scheduled when
    /// `NetParams::observe` is set).
    MetricsTick,
    /// Fluid fast path: the earliest analytic flow completion of the
    /// current rate epoch is due (hybrid fidelity only).
    FluidAdvance {
        /// Epoch generation at scheduling time; a rate re-solve bumps the
        /// generation, so stale events fall through harmlessly.
        gen: u32,
    },
}

/// A node in the network.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)] // a few hundred nodes at most; indirection buys nothing
pub(crate) enum Node {
    /// A switch.
    Switch(SwitchNode),
    /// A host.
    Host(HostNode),
    /// A node owned by another partition of a split network (see
    /// [`crate::par`]). Keeping the full-length node vector with absent
    /// placeholders means node ids stay global — no per-partition
    /// re-indexing anywhere — and any event dispatched to a node the
    /// partition does not own panics instead of corrupting state.
    Absent,
}

#[derive(Debug)]
struct FlowMeta {
    spec: FlowSpec,
    completed: bool,
    /// Loss recovery gave up on this flow (go-back-N hit its retry cap);
    /// marked explicitly so a run can tell failed from wedged.
    failed: bool,
}

/// One direction of a corrupted link: frames arriving at `node` on
/// `in_port` are dropped with `probability`, drawn from a dedicated RNG
/// stream split from the fault plan's seed.
#[derive(Debug)]
struct CorruptLink {
    node: u32,
    in_port: u32,
    probability: f64,
    rng: SimRng,
}

#[derive(Debug)]
struct FlowMonitor {
    flow: FlowId,
    last_bytes: u64,
    samples: Vec<ThroughputSample>,
}

/// A complete simulated network: implements [`Model`] over [`NetEvent`].
///
/// Build with [`crate::NetworkBuilder`], add flows, convert into a
/// simulation with [`Network::into_sim`], run, then read measurements back
/// from the model.
#[derive(Debug)]
pub struct Network {
    pub(crate) params: NetParams,
    pub(crate) nodes: Vec<Node>,
    flows: Vec<FlowMeta>,
    flow_rx: Vec<u64>,
    /// Receiver-side per-flow state, indexed by flow id. Flow ids are
    /// global and each flow has exactly one receiver, so a flat vector
    /// replaces a per-host hash map on the per-packet delivery path.
    rx_flows: Vec<ReceiverFlow>,
    fct: Vec<FctRecord>,
    monitors: Vec<FlowMonitor>,
    rng: SimRng,
    /// Recycled frame boxes: every consumed frame (ACK/CNP/PFC processed
    /// at its destination, dropped or watchdog-flushed data) returns here
    /// and is reused for the next frame, so the steady-state packet path
    /// never touches the allocator.
    pool: Pool<Frame>,
    /// Watchdog scratch: drained frames of one flush (capacity reused
    /// across samples).
    wd_flushed: Vec<QueuedFrame>,
    /// Watchdog scratch: flow-control actions released by one flush.
    wd_fc: Vec<FcAction>,
    data_drops: u64,
    /// Data packets delivered to their destination host (denominator for
    /// the benches' allocations-per-packet metric).
    packets_delivered: u64,
    watchdog_drops: u64,
    deadlock: DeadlockReport,
    /// Installed fault schedule, if any (see [`Network::set_fault_plan`]).
    fault_plan: Option<FaultPlan>,
    /// Per-direction corruption state derived from the plan.
    corrupt: Vec<CorruptLink>,
    /// Frames lost to injected faults: drained on `LinkDown`, dropped
    /// mid-flight on a dead link, corrupted, or black-holed by a
    /// partition. Disjoint from `data_drops` (MMU admission losses).
    link_drops: u64,
    /// Go-back-N rewind episodes (RTO firings that retransmitted).
    retransmissions: u64,
    /// Bytes re-sent below a flow's high-water mark.
    retransmitted_bytes: u64,
    /// Selective-repeat NACK frames sent by receivers.
    nacks_sent: u64,
    /// Bytes re-sent by selective-repeat gap repairs (a subset of
    /// `retransmitted_bytes`; go-back-N rewind bytes are the rest).
    sr_retransmitted_bytes: u64,
    /// Recovery episodes triggered by an RTO expiry (either regime).
    recovery_timeouts: u64,
    /// Loss episodes triggered by a NACK (selective repeat only).
    recovery_nacks: u64,
    /// Flows whose recovery hit the retry cap and gave up.
    failed_flows: u64,
    /// Flight recorder (shared with every switch MMU); the disabled
    /// tracer when no trace configuration is active.
    tracer: Tracer,
    /// Node → partition map when this network is one partition of a split
    /// run (see [`crate::par`]); empty in the ordinary serial case, which
    /// is what the hot path branches on.
    pub(crate) owner: Vec<u32>,
    /// This instance's partition id (0 when serial).
    pub(crate) part: u32,
    /// Cross-partition departures buffered for the parallel driver: the
    /// `Arrive` events whose destination node another partition owns.
    /// The driver drains this at every window boundary and re-schedules
    /// each event on the owning partition's calendar; capacity is
    /// retained across windows so the steady-state packet path stays
    /// allocation-free.
    pub(crate) outbox: Vec<(Time, NetEvent)>,
    /// Cross-partition arrivals staged *into* this partition: the
    /// coordinator routes frames here at the window barrier and the
    /// owning worker folds them into its own calendar at the start of the
    /// next window — moving the per-event heap pushes off the serial
    /// coordinator and onto the parallel workers.
    pub(crate) inbox: Vec<(Time, NetEvent)>,
    /// Payload bytes that advanced a receiver's in-order mark via real
    /// packets (the packet-engine half of the hybrid byte-conservation
    /// invariant; fluid credits are the other half).
    packet_rx_bytes: u64,
    /// Fluid fast-path state; `Some` only under
    /// [`FidelityMode::Hybrid`].
    pub(crate) fluid: Option<FluidState>,
    /// Pause-causality observatory; `Some` only when
    /// `NetParams::observe` is set. Boxed so the disabled case costs one
    /// pointer-sized `Option` and a single branch on the pause path.
    pub(crate) observe: Option<Box<ObserveState>>,
    /// Pending instant-closed sample label: the tick at `t` arms this and
    /// the first event *strictly after* `t` captures the sample (see
    /// [`crate::observe::MetricsSampler`]). `Time::MAX` when no sample is
    /// pending, so the masked-off dispatch cost is one compare-branch.
    metrics_capture_at: Time,
}

/// Number of free frame boxes the pool retains (beyond this, returned
/// boxes are simply freed): bounds retained memory after a burst at
/// ~1 MiB while covering the steady-state churn window many times over.
const FRAME_POOL_RETAIN: usize = 4096;

/// Initial capacity of a partition's cross-partition outbox: generous
/// enough that a lookahead window's worth of cut-link departures never
/// grows it in steady state (the zero-allocs-per-packet contract).
const OUTBOX_RESERVE: usize = 1024;

impl Network {
    pub(crate) fn from_parts(params: NetParams, nodes: Vec<Node>, tracer: Tracer) -> Self {
        let rng = SimRng::new(params.seed);
        // Pre-register locally-present switches so metrics sampling never
        // allocates; in a split partition foreign nodes are placeholders
        // and each switch registers with exactly one partition.
        let observe = params.observe.as_ref().map(|cfg| {
            let mut st = Box::new(ObserveState::new(cfg));
            for (i, n) in nodes.iter().enumerate() {
                if matches!(n, Node::Switch(_)) {
                    st.metrics.add_switch(NodeId(i));
                }
            }
            st
        });
        Network {
            params,
            nodes,
            flows: Vec::new(),
            flow_rx: Vec::new(),
            rx_flows: Vec::new(),
            fct: Vec::new(),
            monitors: Vec::new(),
            rng,
            pool: Pool::bounded(FRAME_POOL_RETAIN),
            wd_flushed: Vec::new(),
            wd_fc: Vec::new(),
            data_drops: 0,
            packets_delivered: 0,
            watchdog_drops: 0,
            deadlock: DeadlockReport::default(),
            fault_plan: None,
            corrupt: Vec::new(),
            link_drops: 0,
            retransmissions: 0,
            retransmitted_bytes: 0,
            nacks_sent: 0,
            sr_retransmitted_bytes: 0,
            recovery_timeouts: 0,
            recovery_nacks: 0,
            failed_flows: 0,
            tracer,
            owner: Vec::new(),
            part: 0,
            outbox: Vec::new(),
            inbox: Vec::new(),
            packet_rx_bytes: 0,
            fluid: None,
            observe,
            metrics_capture_at: Time::MAX,
        }
    }

    /// Whether `node` lives in this instance (always true for a serial,
    /// unsplit network).
    #[inline]
    pub(crate) fn is_local(&self, node: NodeId) -> bool {
        self.owner.is_empty() || self.owner[node.0] == self.part
    }

    /// Pre-fills the frame pool with `n` free boxes (see
    /// [`dsh_simcore::Pool::prewarm`]); the parallel driver calls this per
    /// partition at construction so the measured steady state starts with
    /// its circulating box population already in place.
    pub(crate) fn prewarm_frame_pool(&mut self, n: usize) {
        self.pool.prewarm(n, || Frame::pfc(PfcScope::Port, false));
    }

    /// Detaches up to `n` free boxes from the frame pool into `out`.
    ///
    /// Cross-partition pool rebalancing: a frame migrating to another
    /// partition takes its box along, so the coordinator counter-migrates
    /// a free box per delivered frame. That keeps every partition's box
    /// population flat — without it, a partition whose hosts net-export
    /// frames drains its free list and allocates on the hot path forever.
    #[allow(clippy::vec_box)] // boxes are the recycled resource (see Pool::lend)
    #[allow(clippy::vec_box)] // boxes are the recycled resource (see Pool::lend)
    pub(crate) fn lend_free_frames(&mut self, n: usize, out: &mut Vec<Box<Frame>>) {
        self.pool.lend(n, out);
    }

    /// Returns boxes taken by [`Network::lend_free_frames`] to this pool.
    #[allow(clippy::vec_box)] // boxes are the recycled resource (see Pool::lend)
    #[allow(clippy::vec_box)] // boxes are the recycled resource (see Pool::lend)
    pub(crate) fn adopt_free_frames(&mut self, from: &mut Vec<Box<Frame>>) {
        for b in from.drain(..) {
            self.pool.put(b);
        }
    }

    /// The flight-recorder tracer this network (and its switch MMUs)
    /// records into. Disabled unless [`NetParams::trace`], a
    /// [`dsh_simcore::trace::capture`] session, or `DSH_TRACE_MASK`
    /// enabled it at build time.
    #[must_use]
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Snapshot of the flight recorder, keyed for deterministic export
    /// (empty when tracing is off).
    #[must_use]
    pub fn trace_log(&self) -> TraceLog {
        self.tracer.log(self.params.trace_key())
    }

    /// Arms a [`FlightGuard`] over this network's recorder: if the
    /// caller's scope unwinds, the last records are dumped under `label`.
    #[must_use]
    pub fn flight_guard(&self, label: impl Into<String>) -> FlightGuard {
        FlightGuard::arm(&self.tracer, label)
    }

    /// Registers a flow; returns its id. All flows must be added before
    /// [`Network::into_sim`].
    ///
    /// # Panics
    ///
    /// Panics if the class is not a data class or the endpoints are not
    /// hosts.
    pub fn add_flow(&mut self, spec: FlowSpec) -> FlowId {
        assert!((spec.class as usize) < NUM_DATA_CLASSES, "class must be 0..7");
        assert!(matches!(self.nodes[spec.src.0], Node::Host(_)), "src must be a host");
        assert!(matches!(self.nodes[spec.dst.0], Node::Host(_)), "dst must be a host");
        assert!(spec.size > 0, "flow size must be positive");
        let id = FlowId(self.flows.len());
        self.flows.push(FlowMeta { spec, completed: false, failed: false });
        self.flow_rx.push(0);
        self.rx_flows.push(ReceiverFlow::new());
        id
    }

    /// Starts recording a goodput time series for `flow` (sampled every
    /// [`NetParams::sample_interval`]).
    pub fn monitor_flow(&mut self, flow: FlowId) {
        self.monitors.push(FlowMonitor { flow, last_bytes: 0, samples: Vec::new() });
    }

    /// Installs a fault schedule. Must be called before
    /// [`Network::into_sim`]; each entry becomes an ordinary calendar
    /// event, so fault runs stay bit-identical at any thread count.
    ///
    /// Faults imply loss, so if [`NetParams::recovery`] is still `None`
    /// this enables go-back-N recovery at the default configuration for
    /// the network's base RTT (otherwise a single dropped frame would
    /// wedge its flow forever).
    ///
    /// # Panics
    ///
    /// Panics if a plan is already installed, or if a plan entry names a
    /// link that does not exist in the topology.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        assert!(self.fault_plan.is_none(), "fault plan already installed");
        if self.params.recovery.is_none() {
            self.params.recovery = Some(RecoveryConfig::for_rtt(self.params.base_rtt));
        }
        // Validate link events eagerly: a typo'd node pair should fail at
        // install time, not halfway through a run.
        for ev in plan.events() {
            let (FaultKind::LinkDown { a, b } | FaultKind::LinkUp { a, b }) = ev.kind;
            let _ = self.find_port(a, b);
            let _ = self.find_port(b, a);
        }
        for (i, c) in plan.corruption().iter().enumerate() {
            let pa = self.find_port(c.a, c.b);
            let pb = self.find_port(c.b, c.a);
            // One independent RNG stream per direction, split from the
            // plan seed: adding a corrupted link never perturbs the draws
            // of another. Frames from `a` toward `b` arrive at `b` on
            // `b`'s port facing `a`.
            let idx = i as u64 * 2;
            self.corrupt.push(CorruptLink {
                node: c.b.0 as u32,
                in_port: pb as u32,
                probability: c.probability,
                rng: SimRng::new(split_seed(plan.seed(), idx)),
            });
            self.corrupt.push(CorruptLink {
                node: c.a.0 as u32,
                in_port: pa as u32,
                probability: c.probability,
                rng: SimRng::new(split_seed(plan.seed(), idx + 1)),
            });
        }
        self.fault_plan = Some(plan);
    }

    /// Whether a fault plan is installed (fault-aware assertions use this
    /// to decide if `link_drops` are legitimate).
    #[must_use]
    pub fn fault_plan_active(&self) -> bool {
        self.fault_plan.is_some()
    }

    /// The installed plan's timed link events, for the parallel driver
    /// (which executes faults at window barriers instead of in-calendar).
    pub(crate) fn fault_schedule(&self) -> Vec<(Time, FaultKind)> {
        self.fault_plan
            .as_ref()
            .map(|p| p.events().iter().map(|e| (e.at, e.kind)).collect())
            .unwrap_or_default()
    }

    /// Converts the network into a ready-to-run simulation: flow starts
    /// and the sampling tick are scheduled.
    #[must_use]
    pub fn into_sim(mut self) -> Simulation<Network> {
        self.prepare();
        let starts: Vec<(Time, FlowId)> =
            self.flows.iter().enumerate().map(|(i, f)| (f.spec.start, FlowId(i))).collect();
        // Fault events ride the ordinary calendar; scheduled after the
        // flow starts so same-instant ties resolve flows-first.
        let faults: Vec<(Time, u32)> = self
            .fault_plan
            .as_ref()
            .map(|p| p.events().iter().enumerate().map(|(i, e)| (e.at, i as u32)).collect())
            .unwrap_or_default();
        let tick = self.params.sample_interval;
        let metrics = self.params.observe.map(|o| o.metrics_interval);
        let mut sim = Simulation::new(self);
        for (t, flow) in starts {
            sim.schedule(t, NetEvent::FlowStart { flow: flow.0 as u32 });
        }
        for (t, index) in faults {
            sim.schedule(t, NetEvent::Fault { index });
        }
        sim.schedule(Time::ZERO + tick, NetEvent::Sample);
        // Scheduled after Sample so a shared instant measures first, then
        // snapshots — the partitioned driver follows the same order.
        if let Some(mi) = metrics {
            sim.schedule(Time::ZERO + mi, NetEvent::MetricsTick);
        }
        sim
    }

    /// Pre-run sizing shared by the serial and partitioned paths: one FCT
    /// record per flow, reserved now so a completion mid-run never
    /// reallocates the log (the packet hot path stays allocation-free;
    /// see DESIGN.md §10). Likewise each host's flow-id → sender-slot
    /// table is pre-sized here so a FlowStart firing after warmup never
    /// grows it.
    pub(crate) fn prepare(&mut self) {
        self.fct.reserve(self.flows.len());
        let nflows = self.flows.len();
        for n in &mut self.nodes {
            if let Node::Host(h) = n {
                h.tx_index.resize(nflows, u32::MAX);
            }
        }
        // Hybrid fidelity, serial engine: build the fluid state now with
        // every link fluid-eligible. The partitioned engine pins its cut
        // links packet-mode instead (split() builds each partition's
        // state itself and skips this branch via the owner-map check);
        // its plan is computed at MAX_PARTITIONS granularity regardless
        // of worker count, so partitioned hybrid results are identical at
        // any `--workers` — the same contract the packet engine gives
        // (serial-vs-partitioned comparisons go through the partitioned
        // entry point, see `fabric::run_net_partitioned`).
        if matches!(self.params.fidelity, FidelityMode::Hybrid { .. })
            && self.fluid.is_none()
            && self.owner.is_empty()
        {
            self.init_fluid(None);
        }
    }

    // ---- partitioned execution (see crate::par) ---------------------------

    /// Splits the network into `parts` per-partition networks according to
    /// `owner` (node → partition). Each partition keeps the full-length
    /// node vector with [`Node::Absent`] placeholders for foreign nodes,
    /// its own frame pool, RNG stream, and cross-partition outbox; flows
    /// are replicated (sender state lives with the source host, receiver
    /// state is only ever touched by the destination's owner). Must be
    /// called before any event has run.
    pub(crate) fn split(mut self, owner: &[u32], parts: u32) -> Vec<Network> {
        assert_eq!(owner.len(), self.nodes.len(), "owner map must cover every node");
        assert!(self.fct.is_empty(), "split must happen before the run");
        self.prepare();
        let nflows = self.flows.len();
        // Corruption streams follow the receiving endpoint's owner.
        let mut corrupt: Vec<Vec<CorruptLink>> = (0..parts as usize).map(|_| Vec::new()).collect();
        for c in self.corrupt.drain(..) {
            corrupt[owner[c.node as usize] as usize].push(c);
        }
        let mut all_nodes = std::mem::take(&mut self.nodes);
        let mut out = Vec::with_capacity(parts as usize);
        for (k, corrupt) in corrupt.into_iter().enumerate() {
            let nodes: Vec<Node> = all_nodes
                .iter_mut()
                .enumerate()
                .map(|(i, slot)| {
                    if owner[i] == k as u32 {
                        std::mem::replace(slot, Node::Absent)
                    } else {
                        Node::Absent
                    }
                })
                .collect();
            let mut net = Network::from_parts(self.params.clone(), nodes, self.tracer.clone());
            net.flows = self
                .flows
                .iter()
                .map(|f| FlowMeta { spec: f.spec, completed: f.completed, failed: f.failed })
                .collect();
            net.flow_rx = vec![0; nflows];
            net.rx_flows = (0..nflows).map(|_| ReceiverFlow::new()).collect();
            // Goodput monitors sample receiver-side byte counts, so each
            // follows its flow's destination owner.
            net.monitors = self
                .monitors
                .iter()
                .filter(|m| owner[self.flows[m.flow.0].spec.dst.0] == k as u32)
                .map(|m| FlowMonitor { flow: m.flow, last_bytes: 0, samples: Vec::new() })
                .collect();
            net.fct.reserve(nflows);
            // Partitions draw from independent split streams (the serial
            // global stream cannot be sliced across concurrent calendars).
            // Partition count is a pure function of the topology, so runs
            // stay bit-identical at any worker count.
            net.rng = SimRng::new(split_seed(self.params.seed, k as u64 + 1));
            net.fault_plan = self.fault_plan.clone();
            net.corrupt = corrupt;
            net.owner = owner.to_vec();
            net.part = k as u32;
            net.outbox = Vec::with_capacity(OUTBOX_RESERVE);
            net.inbox = Vec::with_capacity(OUTBOX_RESERVE);
            net.init_fluid(Some(owner));
            out.push(net);
        }
        out
    }

    /// Folds one partition's final state back into `self` (the merge side
    /// of [`Network::split`]): nodes move home, counters sum, and per-flow
    /// state is taken from the owning side.
    pub(crate) fn absorb(&mut self, mut other: Network) {
        assert_eq!(self.nodes.len(), other.nodes.len(), "absorb requires sibling partitions");
        for (mine, theirs) in self.nodes.iter_mut().zip(other.nodes.iter_mut()) {
            if !matches!(theirs, Node::Absent) {
                debug_assert!(matches!(mine, Node::Absent), "node owned by two partitions");
                *mine = std::mem::replace(theirs, Node::Absent);
            }
        }
        for i in 0..self.flows.len() {
            let spec = self.flows[i].spec;
            if other.owner[spec.dst.0] == other.part {
                self.flow_rx[i] = other.flow_rx[i];
                self.rx_flows[i] = std::mem::take(&mut other.rx_flows[i]);
                self.flows[i].completed |= other.flows[i].completed;
            }
            if other.owner[spec.src.0] == other.part {
                self.flows[i].failed |= other.flows[i].failed;
            }
        }
        self.fct.append(&mut other.fct);
        self.monitors.append(&mut other.monitors);
        self.corrupt.append(&mut other.corrupt);
        self.data_drops += other.data_drops;
        self.packets_delivered += other.packets_delivered;
        self.watchdog_drops += other.watchdog_drops;
        self.link_drops += other.link_drops;
        self.retransmissions += other.retransmissions;
        self.retransmitted_bytes += other.retransmitted_bytes;
        self.nacks_sent += other.nacks_sent;
        self.sr_retransmitted_bytes += other.sr_retransmitted_bytes;
        self.recovery_timeouts += other.recovery_timeouts;
        self.recovery_nacks += other.recovery_nacks;
        self.failed_flows += other.failed_flows;
        self.packet_rx_bytes += other.packet_rx_bytes;
        if let (Some(mine), Some(theirs)) = (self.fluid.as_mut(), other.fluid.as_ref()) {
            mine.stats.merge(&theirs.stats);
        }
        // Observability logs merge like outboxes: concatenate here,
        // restore canonical order once in finish_merge.
        if let (Some(mine), Some(theirs)) = (self.observe.as_deref_mut(), other.observe.take()) {
            mine.absorb(*theirs);
        }
        // Deadlock onset is the earliest still-wedged port anywhere.
        self.deadlock.onset = match (self.deadlock.onset, other.deadlock.onset) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
    }

    /// Final fix-ups after every partition has been absorbed: completed
    /// flows sort into a canonical order (completion order is only
    /// partition-local during a split run) and the partition markers are
    /// cleared so the merged network reads as an ordinary serial one.
    pub(crate) fn finish_merge(&mut self) {
        self.fct.sort_unstable_by_key(|r| (r.finish, r.flow.0));
        if let Some(obs) = self.observe.as_deref_mut() {
            obs.finish_merge();
        }
        self.owner.clear();
        self.part = 0;
        assert!(self.outbox.is_empty(), "undelivered cross-partition frames at merge");
    }

    /// Accumulates this partition's live (link-up) adjacency into the
    /// driver's full-topology buffers — the partitioned counterpart of
    /// the gather in [`Network::recompute_routes`].
    pub(crate) fn live_topology_into(
        &self,
        is_switch: &mut [bool],
        adj: &mut [Vec<(usize, usize)>],
    ) {
        for (i, node) in self.nodes.iter().enumerate() {
            let ports: &[EgressPort] = match node {
                Node::Switch(s) => {
                    is_switch[i] = true;
                    &s.ports
                }
                Node::Host(h) => h.port.as_slice(),
                Node::Absent => continue,
            };
            for (pi, p) in ports.iter().enumerate() {
                if p.is_link_up() {
                    adj[i].push((p.peer.0, pi));
                }
            }
        }
    }

    /// Installs driver-recomputed route tables into this partition's
    /// switches (foreign slots of `tables` are ignored).
    pub(crate) fn install_routes(&mut self, tables: &[crate::routing::RouteTable]) {
        for (i, node) in self.nodes.iter_mut().enumerate() {
            if let Node::Switch(s) = node {
                s.routes = tables[i].clone();
            }
        }
    }

    /// One endpoint's share of a driver-executed link fault: `up == false`
    /// kills this side's port (drain, MMU release, pause-ledger clear),
    /// `up == true` restores it. Route recomputation is the driver's job.
    pub(crate) fn fault_endpoint(
        &mut self,
        node: NodeId,
        peer: NodeId,
        up: bool,
        sched: &mut Scheduler<'_, NetEvent>,
    ) {
        let port = self.find_port(node, peer);
        if let Some(lid) = self.fluid.as_ref().map(|st| st.lid(node, port)) {
            // A faulted link must be at packet fidelity before the fault
            // lands: in-flight fluid bytes become real frames that the
            // dead link can then drop (and recovery retransmit).
            self.escalate_link(lid, EscalateReason::Fault, sched);
        }
        if up {
            self.port_mut(node, port).restore();
        } else {
            self.kill_port(node, port, sched.now(), sched);
        }
    }

    /// Post-repair kick for one endpoint of a restored link (run after
    /// routes are back in place, mirroring the serial
    /// [`Network::link_up`] order).
    pub(crate) fn fault_kick(
        &mut self,
        node: NodeId,
        peer: NodeId,
        sched: &mut Scheduler<'_, NetEvent>,
    ) {
        let port = self.find_port(node, peer);
        if matches!(self.nodes[node.0], Node::Host(_)) {
            self.host_try_send(node, sched);
        } else {
            self.try_transmit(node, port, sched);
        }
    }

    // ---- measurement accessors -------------------------------------------

    /// Completed-flow records.
    #[must_use]
    pub fn fct_records(&self) -> &[FctRecord] {
        &self.fct
    }

    /// Data packets dropped by MMU admission (0 in a correct lossless
    /// configuration).
    #[must_use]
    pub fn data_drops(&self) -> u64 {
        self.data_drops
    }

    /// Data packets delivered to their destination hosts so far.
    #[must_use]
    pub fn packets_delivered(&self) -> u64 {
        self.packets_delivered
    }

    /// Deadlock detection result.
    #[must_use]
    pub fn deadlock_report(&self) -> DeadlockReport {
        self.deadlock
    }

    /// Frames dropped by the PFC watchdog (0 unless
    /// [`NetParams::pfc_watchdog`] is armed).
    #[must_use]
    pub fn watchdog_drops(&self) -> u64 {
        self.watchdog_drops
    }

    /// Frames lost to injected faults (0 unless a [`FaultPlan`] is
    /// installed): drained from a failing port, caught mid-flight on a
    /// dead link, corrupted, or black-holed by a partition. Kept apart
    /// from [`Network::data_drops`] so lossless assertions still bite on
    /// MMU admission failures during fault runs.
    #[must_use]
    pub fn link_drops(&self) -> u64 {
        self.link_drops
    }

    /// Go-back-N rewind episodes (RTO firings that retransmitted).
    #[must_use]
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Bytes re-sent below a flow's high-water mark (retransmitted bytes
    /// count toward wire occupancy but never toward FCT completion, which
    /// ends at the last *new* in-order byte).
    #[must_use]
    pub fn retransmitted_bytes(&self) -> u64 {
        self.retransmitted_bytes
    }

    /// Selective-repeat NACK frames sent by receivers.
    #[must_use]
    pub fn nacks_sent(&self) -> u64 {
        self.nacks_sent
    }

    /// Bytes re-sent by selective-repeat gap repairs (a subset of
    /// [`Network::retransmitted_bytes`]).
    #[must_use]
    pub fn sr_retransmitted_bytes(&self) -> u64 {
        self.sr_retransmitted_bytes
    }

    /// Recovery episodes attributed to an RTO expiry.
    #[must_use]
    pub fn recovery_timeouts(&self) -> u64 {
        self.recovery_timeouts
    }

    /// Loss episodes attributed to a NACK (selective repeat only).
    #[must_use]
    pub fn recovery_nacks(&self) -> u64 {
        self.recovery_nacks
    }

    /// Flows whose loss recovery hit the retry cap and gave up.
    #[must_use]
    pub fn failed_flow_count(&self) -> u64 {
        self.failed_flows
    }

    /// Whether `flow` was explicitly marked failed by loss recovery.
    #[must_use]
    pub fn flow_failed(&self, flow: FlowId) -> bool {
        self.flows[flow.0].failed
    }

    /// Goodput time series recorded for `flow` (see
    /// [`Network::monitor_flow`]).
    #[must_use]
    pub fn flow_throughput(&self, flow: FlowId) -> &[ThroughputSample] {
        self.monitors.iter().find(|m| m.flow == flow).map(|m| m.samples.as_slice()).unwrap_or(&[])
    }

    /// Payload bytes received so far for `flow`.
    #[must_use]
    pub fn flow_rx_bytes(&self, flow: FlowId) -> u64 {
        self.flow_rx[flow.0]
    }

    /// Every egress port in the network as `(node, port index, port)`, in
    /// node then port order.
    pub(crate) fn all_ports(&self) -> impl Iterator<Item = (NodeId, usize, &EgressPort)> {
        self.nodes.iter().enumerate().flat_map(|(i, n)| {
            let ports: &[EgressPort] = match n {
                Node::Switch(s) => &s.ports,
                Node::Host(h) => h.port.as_slice(),
                Node::Absent => &[],
            };
            ports.iter().enumerate().map(move |(p, port)| (NodeId(i), p, port))
        })
    }

    /// Pause ledgers for every egress port in the network at `now`,
    /// lazily (nothing is materialized; collect if you need a `Vec`).
    pub fn pause_ledgers(&self, now: Time) -> impl Iterator<Item = PauseLedger> + '_ {
        self.all_ports().map(move |(node, p, port)| PauseLedger {
            node,
            port: p,
            queue_level: (0..NUM_DATA_CLASSES).map(|c| port.class_pause_total(c as u8, now)).sum(),
            port_level: port.port_pause_total(now),
        })
    }

    /// Total buffer statically reserved as headroom across every switch
    /// (SIH: `Σ N_q·η`; DSH/BShare: insurance `Σ η`; Lossy: exactly 0 —
    /// fig17's "buffer held hostage" axis).
    #[must_use]
    pub fn reserved_headroom_bytes(&self) -> u64 {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                Node::Switch(s) => Some(s.mmu.config().reserved_headroom().as_u64()),
                _ => None,
            })
            .sum()
    }

    /// Drains per-port headroom-occupancy local maxima from every switch
    /// MMU (Fig. 6's measurement): `(switch, per-port peak lists)`.
    pub fn take_headroom_peaks(&mut self) -> Vec<(NodeId, Vec<Vec<u64>>)> {
        let mut out = Vec::new();
        for (i, n) in self.nodes.iter_mut().enumerate() {
            if let Node::Switch(s) = n {
                out.push((NodeId(i), s.mmu.take_headroom_peaks()));
            }
        }
        out
    }

    /// Runs [`dsh_core::Mmu::audit`] on every switch; a non-clean report
    /// names the violated invariant and the port/queue it failed on.
    #[must_use]
    pub fn audit_all(&self) -> Vec<(NodeId, dsh_core::AuditReport)> {
        let mut out = Vec::new();
        for (i, n) in self.nodes.iter().enumerate() {
            if let Node::Switch(s) = n {
                out.push((NodeId(i), s.mmu.audit()));
            }
        }
        out
    }

    /// A structured telemetry snapshot at `now`: per-switch MMU audits,
    /// drop attribution, occupancy time series, and per-port PFC pause
    /// durations with pause→resume latency histograms. Serialize with
    /// [`TelemetryReport::to_json`].
    #[must_use]
    pub fn telemetry_report(&self, now: Time) -> TelemetryReport {
        let mut switches = Vec::new();
        for (i, n) in self.nodes.iter().enumerate() {
            if let Node::Switch(s) = n {
                switches.push(SwitchTelemetry {
                    node: NodeId(i),
                    audit: s.mmu.audit(),
                    stats: s.mmu.stats(),
                    attribution: s.mmu.drop_attribution(),
                    port_drops: s.mmu.port_drops().to_vec(),
                    occupancy: s.occupancy.points(),
                });
            }
        }
        let ports =
            self.all_ports()
                .map(|(node, p, port)| PortPauseTelemetry {
                    node,
                    port: p,
                    queue_level: (0..NUM_DATA_CLASSES)
                        .map(|c| port.class_pause_total(c as u8, now))
                        .sum(),
                    port_level: port.port_pause_total(now),
                    pause_latency: port.pause_latency_histogram(),
                    classes: (0..crate::ids::NUM_CLASSES as u8)
                        .filter_map(|c| {
                            let pause = port.class_pause_total(c, now);
                            let latency = port.class_pause_latency_histogram(c);
                            (pause > Delta::ZERO || latency.count() > 0).then(|| {
                                ClassPauseTelemetry { class: c, pause, latency: latency.clone() }
                            })
                        })
                        .collect(),
                    port_latency: port.port_pause_latency_histogram().clone(),
                })
                .collect();
        TelemetryReport {
            generated_at: now,
            data_drops: self.data_drops,
            watchdog_drops: self.watchdog_drops,
            link_drops: self.link_drops,
            retransmissions: self.retransmissions,
            nacks_sent: self.nacks_sent,
            sr_retransmitted_bytes: self.sr_retransmitted_bytes,
            recovery_timeouts: self.recovery_timeouts,
            recovery_nacks: self.recovery_nacks,
            switches,
            ports,
            provenance: self.provenance(),
            engine_profile: None,
            fidelity: self.fidelity_json(),
            pause_cascades: self.cascade_report(now),
        }
    }

    /// The analysed pause-cascade forest (summary statistics plus
    /// victim-flow attribution) at `now`; `None` unless the
    /// pause-causality observatory is enabled via `NetParams::observe`.
    /// Open pause edges are treated as ending at `now`.
    #[must_use]
    pub fn cascade_report(&self, now: Time) -> Option<crate::observe::CascadeReport> {
        self.observe.as_deref().map(|obs| {
            // Flow lifetimes for the victim join: completed flows end at
            // their recorded finish, in-flight flows run to `now`.
            let mut finish = vec![now; self.flows.len()];
            for r in &self.fct {
                finish[r.flow.0] = r.finish;
            }
            let flows = self
                .flows
                .iter()
                .enumerate()
                .map(|(i, f)| (FlowId(i), f.spec.src, f.spec.start, finish[i]));
            crate::observe::analyze(obs.cascade.edges(), now, flows)
        })
    }

    /// The observatory's versioned metrics export (`metrics.json`);
    /// `None` unless `NetParams::observe` is set.
    #[must_use]
    pub fn metrics_json(&self) -> Option<dsh_simcore::Json> {
        self.observe.as_deref().map(|obs| {
            let doc = obs.metrics.to_json().with("provenance", self.provenance());
            match &self.params.recovery {
                Some(rc) => doc.with("recovery_regime", rc.regime.as_str()),
                None => doc,
            }
        })
    }

    /// Prometheus text exposition of the latest metrics samples; `None`
    /// unless `NetParams::observe` is set.
    #[must_use]
    pub fn metrics_prometheus(&self) -> Option<String> {
        self.observe.as_deref().map(|obs| obs.metrics.to_prometheus())
    }

    /// Run-intrinsic provenance: the inputs that determine this run
    /// (seed, scheme, package version). Machine facts — thread count in
    /// particular — are deliberately excluded so reports stay
    /// byte-identical at any executor width.
    #[must_use]
    pub fn provenance(&self) -> dsh_simcore::Json {
        let base = dsh_simcore::Json::object()
            .with("seed", self.params.seed)
            .with("scheme", self.params.scheme.to_string())
            .with("version", env!("CARGO_PKG_VERSION"));
        // Hybrid runs carry their fidelity knobs in provenance (packet
        // mode adds nothing, so every pre-existing report stays
        // byte-identical).
        match self.params.fidelity {
            FidelityMode::Packet => base,
            FidelityMode::Hybrid { .. } => base.with("fidelity", self.params.fidelity.tag()),
        }
    }

    /// Fluid fast-path counters, when running under
    /// [`FidelityMode::Hybrid`] (`None` in packet mode).
    #[must_use]
    pub fn fidelity_stats(&self) -> Option<FidelityStats> {
        self.fluid.as_ref().map(|st| st.stats)
    }

    /// Payload bytes that advanced a receiver's in-order mark via real
    /// packets. Together with [`FidelityStats::fluid_bytes`] this
    /// conserves offered load: for a run in which every flow completed,
    /// `packet_rx_bytes + fluid_bytes == Σ flow sizes`.
    #[must_use]
    pub fn packet_rx_bytes(&self) -> u64 {
        self.packet_rx_bytes
    }

    /// The `fidelity` telemetry section: mode, knobs, and fluid counters.
    /// `None` in packet mode so packet-mode reports stay byte-identical
    /// with pre-hybrid builds.
    fn fidelity_json(&self) -> Option<dsh_simcore::Json> {
        let FidelityMode::Hybrid { util_threshold, quiesce } = self.params.fidelity else {
            return None;
        };
        let stats = self.fluid.as_ref().map(|st| st.stats).unwrap_or_default();
        Some(
            dsh_simcore::Json::object()
                .with("mode", "hybrid")
                .with("util_threshold", util_threshold)
                .with("quiesce_ns", quiesce.as_ns())
                .with("stats", stats.to_json()),
        )
    }

    /// Diagnostic: a sender flow's current congestion window and pacing
    /// rate, if the flow is active.
    #[must_use]
    pub fn flow_cc_state(&self, flow: FlowId) -> Option<(u64, u64)> {
        let spec = self.flows.get(flow.0)?.spec;
        match &self.nodes[spec.src.0] {
            Node::Host(h) => {
                let f = &h.tx_flows[h.sender_slot(flow)?];
                Some((f.cc.cwnd_bytes(), f.in_flight()))
            }
            Node::Switch(_) | Node::Absent => None,
        }
    }

    /// Diagnostic: every currently-blocked switch egress port, lazily (no
    /// intermediate `Vec`s; the paused classes are an inline bitmask).
    pub fn blocked_ports(&self) -> impl Iterator<Item = BlockedPort> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| match n {
                Node::Switch(s) => Some((i, s)),
                Node::Host(_) | Node::Absent => None,
            })
            .flat_map(|(i, s)| {
                s.ports.iter().enumerate().filter_map(move |(pi, p)| {
                    p.blocked_since().map(|b| BlockedPort {
                        node: NodeId(i),
                        port: pi,
                        since: b,
                        port_paused: p.port_paused(),
                        paused_classes: ClassMask::paused_of(p),
                        queued_bytes: p.total_queued_bytes(),
                    })
                })
            })
    }

    /// Sum of MMU pause/drop counters over all switches.
    #[must_use]
    pub fn mmu_stats(&self) -> dsh_core::MmuStats {
        let mut agg = dsh_core::MmuStats::default();
        for n in &self.nodes {
            if let Node::Switch(s) = n {
                let st = s.mmu.stats();
                agg.admitted_packets += st.admitted_packets;
                agg.dropped_packets += st.dropped_packets;
                agg.dropped_bytes += st.dropped_bytes;
                agg.queue_pauses += st.queue_pauses;
                agg.queue_resumes += st.queue_resumes;
                agg.port_pauses += st.port_pauses;
                agg.port_resumes += st.port_resumes;
            }
        }
        agg
    }

    /// The flow's specification.
    #[must_use]
    pub fn flow_spec(&self, flow: FlowId) -> FlowSpec {
        self.flows[flow.0].spec
    }

    /// Number of flows registered.
    #[must_use]
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    // ---- node plumbing ----------------------------------------------------

    fn host_mut(&mut self, id: NodeId) -> &mut HostNode {
        match &mut self.nodes[id.0] {
            Node::Host(h) => h,
            Node::Switch(_) => panic!("{id} is not a host"),
            Node::Absent => panic!("{id} is owned by another partition"),
        }
    }

    fn switch_mut(&mut self, id: NodeId) -> &mut SwitchNode {
        match &mut self.nodes[id.0] {
            Node::Switch(s) => s,
            Node::Host(_) => panic!("{id} is not a switch"),
            Node::Absent => panic!("{id} is owned by another partition"),
        }
    }

    fn port_mut(&mut self, id: NodeId, port: usize) -> &mut crate::port::EgressPort {
        match &mut self.nodes[id.0] {
            Node::Switch(s) => &mut s.ports[port],
            Node::Host(h) => {
                assert_eq!(port, 0, "hosts have a single uplink");
                h.uplink_mut()
            }
            Node::Absent => panic!("{id} is owned by another partition"),
        }
    }

    // ---- transmission ------------------------------------------------------

    /// Starts a transmission on `(node, port)` if the serializer is idle
    /// and a frame is eligible.
    fn try_transmit(&mut self, node: NodeId, port: usize, sched: &mut Scheduler<'_, NetEvent>) {
        let now = sched.now();
        // One departure yields at most two flow-control actions, so they
        // ride inline in an `FcActions` — no scratch buffer needed.
        let mut fc = FcActions::none();

        let tx = {
            let is_switch = matches!(self.nodes[node.0], Node::Switch(_));
            // Pick under a scoped borrow.
            let picked = {
                let p = self.port_mut(node, port);
                if p.is_busy() {
                    None
                } else {
                    p.pick(now)
                }
            };
            let Some(mut qf) = picked else {
                return;
            };
            // Release MMU accounting (into the segment the packet was
            // admitted to) and collect PFC actions.
            if let Some(IngressTag { in_port, in_queue, region }) = qf.ingress {
                let sw = self.switch_mut(node);
                fc = sw.mmu.on_departure(in_port, in_queue, qf.frame.bytes, region, now);
                sw.occupancy.sub(now, qf.frame.bytes);
            }
            // Stamp INT telemetry (switch egress only).
            let p = self.port_mut(node, port);
            if is_switch {
                if let FrameKind::Data(d) = &mut qf.frame.kind {
                    d.hops.push(TelemetryHop {
                        qlen_bytes: p.queue_bytes(qf.frame.class),
                        tx_bytes: p.tx_bytes(),
                        timestamp: now,
                        bandwidth: p.bandwidth,
                    });
                }
            }
            let bytes = qf.frame.bytes;
            let txd = p.bandwidth.tx_delay(bytes);
            let prop = p.prop_delay;
            let peer = p.peer;
            let peer_port = p.peer_port;
            p.set_busy();
            p.note_tx(bytes);
            (qf.frame, txd, prop, peer, peer_port)
        };

        let (frame, txd, prop, peer, peer_port) = tx;
        sched.at(now + txd, NetEvent::TxDone { node: node.0 as u32, port: port as u32 });
        let arrive = NetEvent::Arrive { node: peer.0 as u32, in_port: peer_port as u32, frame };
        if self.is_local(peer) {
            sched.at(now + txd + prop, arrive);
        } else {
            // The peer belongs to another partition: hand the frame to
            // the parallel driver instead of this calendar. The wire
            // propagation delay of every cut link is at least the
            // partitioning lookahead, so the delivery time always lands
            // beyond the current window.
            self.outbox.push((now + txd + prop, arrive));
        }

        self.drain_fc(node, fc, Some(port), sched);
    }

    /// Materializes PFC frames for `actions`, enqueues them toward the
    /// offending upstreams, and kicks each port's serializer (except
    /// `skip_port`, whose transmission is already in flight).
    fn drain_fc(
        &mut self,
        node: NodeId,
        actions: FcActions,
        skip_port: Option<usize>,
        sched: &mut Scheduler<'_, NetEvent>,
    ) {
        for a in actions {
            let (p, f) = SwitchNode::fc_frame(a);
            // A pause/resume owed to a dead upstream dies with the link
            // (the failure handler already force-cleared that peer's
            // state; queueing it would replay a stale pause on repair).
            if !self.port_mut(node, p).is_link_up() {
                continue;
            }
            let frame = self.pool.get(|| f);
            self.port_mut(node, p).enqueue(QueuedFrame { frame, ingress: None });
            if Some(p) != skip_port {
                self.try_transmit(node, p, sched);
            }
        }
    }

    fn handle_tx_done(&mut self, node: NodeId, port: usize, sched: &mut Scheduler<'_, NetEvent>) {
        self.port_mut(node, port).set_idle();
        if matches!(self.nodes[node.0], Node::Host(_)) {
            // Refill the NIC queue from flow state, then transmit.
            self.host_try_send(node, sched);
        } else {
            self.try_transmit(node, port, sched);
        }
    }

    // ---- switch dataplane ---------------------------------------------------

    fn switch_arrive(
        &mut self,
        node: NodeId,
        in_port: usize,
        mut frame: Box<Frame>,
        sched: &mut Scheduler<'_, NetEvent>,
    ) {
        let now = sched.now();
        // PFC frames are link-local: they pause this node's egress side of
        // `in_port` after the standard processing delay.
        if let FrameKind::Pfc(p) = frame.kind {
            let port = self.port_mut(node, in_port);
            let bw = port.bandwidth;
            let gen = port.fault_gen();
            let delay = bw.tx_delay(PFC_PROCESSING_BYTES);
            sched.at(
                now + delay,
                NetEvent::ApplyPause {
                    node: node.0 as u32,
                    port: in_port as u32,
                    scope: p.scope,
                    pause: p.pause,
                    gen,
                },
            );
            self.pool.put(frame);
            return;
        }

        let dst = frame.dst().expect("forwardable frame");
        let flow = match &frame.kind {
            FrameKind::Data(d) => d.flow,
            FrameKind::Ack(a) => a.flow,
            FrameKind::Nack(n) => n.flow,
            FrameKind::Cnp { flow, .. } => *flow,
            FrameKind::Pfc(_) => unreachable!(),
        };

        let routed = {
            let sw = self.switch_mut(node);
            sw.routes.try_pick(dst.0, flow, sw.id)
        };
        let Some(out_port) = routed else {
            // Unreachable destination. Without injected faults this is a
            // topology construction bug (the historical panic); under an
            // active plan a partition legitimately black-holes traffic.
            assert!(self.fault_plan.is_some(), "no route from {node} to host {}", dst.0);
            self.link_drops += 1;
            fault_trace!("[fault] {node}: no route to {dst}, frame dropped");
            self.pool.put(frame);
            return;
        };

        let mut fc = FcActions::none();
        let admitted = {
            let sw = self.switch_mut(node);
            if frame.is_data() {
                let q = frame.class as usize;
                let outcome = sw.mmu.on_arrival(in_port, q, frame.bytes, now);
                fc = outcome.actions;
                match outcome.region {
                    Some(region) => {
                        sw.occupancy.add(now, frame.bytes);
                        Some(Some(IngressTag { in_port, in_queue: q, region }))
                    }
                    None => None,
                }
            } else {
                Some(None)
            }
        };
        let Some(tag) = admitted else {
            // Congestion loss. Lossless configurations must never reach
            // this (tests assert on the counter); the lossy scheme reaches
            // it by design once the shared pool rejects (drop-tail), and
            // loss recovery repairs the gap end to end.
            self.data_drops += 1;
            self.pool.put(frame);
            self.drain_fc(node, fc, None, sched);
            return;
        };

        // ECN marking against the egress queue length (congestion point).
        let mut marked = false;
        if frame.is_data() && self.params.ecn.enabled {
            let qlen = self.port_mut(node, out_port).queue_bytes(frame.class);
            let mark = self.params.ecn.mark(qlen, &mut self.rng);
            if mark {
                if let FrameKind::Data(d) = &mut frame.kind {
                    d.ecn = true;
                    marked = true;
                }
            }
        }

        // Fluid fidelity triggers: a real data frame on the egress link
        // means it is not quiescent (an ECN mark is the stronger signal
        // when both fire at once), and a shared/headroom MMU charge drags
        // the *ingress* link to packet fidelity — fluid links must never
        // hold MMU state.
        if self.fluid.is_some() && frame.is_data() {
            let reason = if marked { EscalateReason::Ecn } else { EscalateReason::Enqueue };
            let out_lid = self.fluid.as_ref().expect("checked").lid(node, out_port);
            self.escalate_link(out_lid, reason, sched);
            if let Some(IngressTag { region, .. }) = tag {
                if region != Region::Private {
                    let in_lid = {
                        let st = self.fluid.as_ref().expect("checked");
                        st.ingress_link(st.lid(node, in_port))
                    };
                    if let Some(lid) = in_lid {
                        self.escalate_link(lid, EscalateReason::MmuCharge, sched);
                    }
                }
            }
        }

        self.port_mut(node, out_port).enqueue(QueuedFrame { frame, ingress: tag });
        self.drain_fc(node, fc, None, sched);
        self.try_transmit(node, out_port, sched);
    }

    // ---- host dataplane -------------------------------------------------------

    fn host_arrive(
        &mut self,
        node: NodeId,
        in_port: usize,
        frame: Box<Frame>,
        sched: &mut Scheduler<'_, NetEvent>,
    ) {
        let now = sched.now();
        match &frame.kind {
            FrameKind::Pfc(p) => {
                let (scope, pause) = (p.scope, p.pause);
                let port = self.port_mut(node, in_port);
                let bw = port.bandwidth;
                let gen = port.fault_gen();
                let delay = bw.tx_delay(PFC_PROCESSING_BYTES);
                sched.at(
                    now + delay,
                    NetEvent::ApplyPause {
                        node: node.0 as u32,
                        port: in_port as u32,
                        scope,
                        pause,
                        gen,
                    },
                );
                self.pool.put(frame);
            }
            FrameKind::Data(_) => self.host_receive_data(node, frame, sched),
            FrameKind::Ack(a) => {
                let flow = a.flow;
                let recovery_on = self.params.recovery.is_some();
                let mtu = self.params.mtu;
                {
                    let host = self.host_mut(node);
                    if let Some(f) = host.sender_mut(flow) {
                        // ACKs are cumulative: the receiver echoes its
                        // in-order high-water mark, so duplicates and
                        // reordering collapse to `delta == 0`.
                        let new_acked = a.acked.min(f.size).max(f.acked);
                        let delta = new_acked - f.acked;
                        if delta > 0 {
                            f.acked = new_acked;
                            // A stale ACK can land after a timeout rewound
                            // the cursor; the receiver holding these bytes
                            // proves they were sent, so pull the cursor
                            // back up rather than leave `sent < acked`.
                            f.sent = f.sent.max(f.acked);
                            let info =
                                AckInfo { acked_bytes: delta, ecn_echo: a.ecn_echo, hops: &a.hops };
                            f.cc.on_ack(now, &info);
                            if recovery_on {
                                // RTT probe: only fresh, never-retransmitted
                                // segments are timed (Karn's rule), and the
                                // sample feeds the adaptive RTO estimator.
                                if let Some((target, at)) = f.rtt_probe {
                                    if f.acked >= target {
                                        f.recovery.on_rtt_sample(now.saturating_since(at));
                                        f.rtt_probe = None;
                                    }
                                }
                                f.sack.on_cum_advance(delta, new_acked, mtu);
                                f.recovery.on_progress();
                                if f.acked >= f.size || f.in_flight() == 0 {
                                    // Nothing outstanding: invalidate any
                                    // armed timer.
                                    f.rto_gen = f.rto_gen.wrapping_add(1);
                                    f.rto_armed = false;
                                    f.rto_deadline = Time::MAX;
                                } else {
                                    // Push the lazy deadline forward; the
                                    // armed event re-schedules itself.
                                    f.rto_deadline = f.recovery.deadline(now);
                                }
                            }
                        }
                    }
                }
                self.pool.put(frame);
                self.arm_cc_timer(node, flow, sched);
                // Window space may have opened.
                self.host_try_send(node, sched);
            }
            FrameKind::Nack(n) => {
                let (flow, expected, bitmap, ecn_echo) = (n.flow, n.expected, n.bitmap, n.ecn_echo);
                let mtu = self.params.mtu;
                let hops = HopList::new();
                let mut episode = false;
                {
                    let host = self.host_mut(node);
                    let mut reactivate = false;
                    if let Some(f) = host.sender_mut(flow) {
                        // The NACK's cumulative mark doubles as an ACK:
                        // count any progress first. NACKs carry no INT
                        // telemetry, so the echo is an empty hop list —
                        // INT-driven CCs treat that as "no information"
                        // (PowerTcp::on_ack returns early), not as an
                        // uncongested path.
                        let new_acked = expected.min(f.size).max(f.acked);
                        let delta = new_acked - f.acked;
                        if delta > 0 {
                            f.acked = new_acked;
                            // Same stale-ACK rewind guard as the ACK arm.
                            f.sent = f.sent.max(f.acked);
                            let info = AckInfo { acked_bytes: delta, ecn_echo, hops: &hops };
                            f.cc.on_ack(now, &info);
                            f.sack.on_cum_advance(delta, new_acked, mtu);
                        }
                        episode = f.sack.on_nack(f.acked, bitmap, mtu, f.max_sent);
                        if episode {
                            // One window cut per loss episode
                            // (NewReno-style), not per NACK.
                            f.cc.on_loss(now);
                        }
                        // A NACK proves the path is alive: reset the
                        // timeout ladder and push the lazy deadline out
                        // past the repair round-trip.
                        f.recovery.on_progress();
                        f.rto_deadline = f.recovery.deadline(now);
                        // The repair retransmits, so the in-flight probe
                        // segment turns ambiguous (Karn's rule).
                        f.rtt_probe = None;
                        reactivate = f.sack.repair_pending() || !f.fully_sent();
                    }
                    // A fully-sent flow left the active list; pending gap
                    // repairs put it back so the NIC scan finds it.
                    if reactivate {
                        if let Some(slot) = host.sender_slot(flow) {
                            if !host.active.contains(&slot) {
                                host.active.push(slot);
                            }
                        }
                    }
                }
                if episode {
                    self.recovery_nacks += 1;
                }
                self.pool.put(frame);
                self.arm_cc_timer(node, flow, sched);
                self.host_try_send(node, sched);
            }
            FrameKind::Cnp { flow, .. } => {
                let flow = *flow;
                {
                    let host = self.host_mut(node);
                    if let Some(f) = host.sender_mut(flow) {
                        f.cc.on_cnp(now);
                    }
                }
                self.pool.put(frame);
                self.arm_cc_timer(node, flow, sched);
            }
        }
    }

    fn host_receive_data(
        &mut self,
        node: NodeId,
        mut frame: Box<Frame>,
        sched: &mut Scheduler<'_, NetEvent>,
    ) {
        let FrameKind::Data(d) = &frame.kind else {
            unreachable!("host_receive_data requires a data frame")
        };
        let (flow, src, seq, payload, ecn, hops) = (d.flow, d.src, d.seq, d.payload, d.ecn, d.hops);
        self.packets_delivered += 1;
        let now = sched.now();
        let meta_size = self.flows[flow.0].spec.size;
        let meta_start = self.flows[flow.0].spec.start;
        let sr = self.params.recovery.is_some_and(|r| r.regime == Regime::SelectiveRepeat);
        let mtu = self.params.mtu;

        let (send_cnp, completed, cum_acked, nack, bitmap) = {
            let rx = &mut self.rx_flows[flow.0];
            // Go-back-N receiver: only the next in-order segment advances
            // the stream; duplicates (replays below the mark) and gaps
            // (segments past a loss) are discarded, and the cumulative
            // ACK below tells the sender where to resume. Segment
            // boundaries re-derive identically after a rewind, so a
            // partial overlap cannot occur.
            //
            // Selective-repeat receiver: an out-of-order segment is kept
            // in the MTU-strided SACK window instead of discarded, and
            // each such arrival triggers a NACK carrying the cumulative
            // mark plus the window bitmap.
            let before = rx.received;
            let mut nack = false;
            if seq == rx.received {
                rx.received += payload;
                if sr {
                    // The in-order arrival may bridge to buffered
                    // segments: slide the window (once per segment the
                    // mark advances, holes or not — the bitmap must stay
                    // aligned for the next NACK) and drain everything
                    // now contiguous. All segments except a flow's last
                    // are exactly one MTU.
                    for _ in 0..rx.sack.on_in_order_arrival() {
                        rx.received += mtu.min(meta_size - rx.received);
                    }
                }
            } else if sr && seq > rx.received {
                let gap = (seq - rx.received) / mtu;
                let _ = rx.sack.offer(gap);
                nack = true;
            }
            self.packet_rx_bytes += rx.received - before;
            let send_cnp = rx.cnp.on_data(now, ecn);
            let completed = !rx.completed && rx.received >= meta_size;
            if completed {
                rx.completed = true;
            }
            (send_cnp, completed, rx.received, nack, rx.sack.bitmap())
        };

        // Goodput counts new in-order bytes only; FCT ends at the last
        // *new* byte delivered (retransmissions never extend a flow).
        self.flow_rx[flow.0] = cum_acked;
        if completed {
            self.flows[flow.0].completed = true;
            self.fct.push(FctRecord { flow, size: meta_size, start: meta_start, finish: now });
            trace_event!(self.tracer, TraceEvent::FlowComplete, {
                flow: flow.0 as u32,
                node: node.0 as u32,
                payload: now.saturating_since(meta_start).as_ps(),
            });
        }

        // Reply path: ACK (or NACK on an out-of-order arrival under
        // selective repeat) + CNP (DCQCN NP policy). The data frame's box
        // is rewritten in place — the telemetry echo is an inline copy,
        // not a heap clone.
        if nack {
            *frame = Frame::nack(NackFrame {
                flow,
                dst: src,
                expected: cum_acked,
                bitmap,
                ecn_echo: ecn,
            });
            self.nacks_sent += 1;
            trace_event!(self.tracer, TraceEvent::RecoveryNack, {
                flow: flow.0 as u32,
                node: node.0 as u32,
                payload: cum_acked,
            });
        } else {
            *frame = Frame::ack(AckFrame { flow, dst: src, acked: cum_acked, ecn_echo: ecn, hops });
        }
        self.host_mut(node).uplink_mut().enqueue(QueuedFrame { frame, ingress: None });
        if send_cnp {
            let cnp = self.pool.get(|| Frame::cnp(flow, src));
            self.host_mut(node).uplink_mut().enqueue(QueuedFrame { frame: cnp, ingress: None });
        }
        self.try_transmit(node, 0, sched);
    }

    fn handle_flow_start(&mut self, flow: FlowId, sched: &mut Scheduler<'_, NetEvent>) {
        let spec = self.flows[flow.0].spec;
        trace_event!(self.tracer, TraceEvent::FlowStart, {
            flow: flow.0 as u32,
            node: spec.src.0 as u32,
            class: spec.class,
            payload: spec.size,
        });
        // Fluid fast path: an uncontended whole-local path admits the flow
        // analytically — no sender state, no frames, one calendar event
        // per rate epoch.
        if self.fluid.is_some() && self.try_fluid_start(flow, sched) {
            return;
        }
        let (bw, base_rtt) = {
            let host = self.host_mut(spec.src);
            (host.uplink().bandwidth, self.params.base_rtt)
        };
        let cc = new_cc(spec.cc, bw, base_rtt);
        let rcfg = self.params.recovery.unwrap_or_else(|| RecoveryConfig::for_rtt(base_rtt));
        let host = self.host_mut(spec.src);
        host.add_sender(SenderFlow {
            id: flow,
            dst: spec.dst,
            class: spec.class,
            size: spec.size,
            sent: 0,
            acked: 0,
            next_send: spec.start,
            cc,
            timer_gen: 0,
            recovery: GoBackN::new(rcfg),
            rto_gen: 0,
            rto_deadline: Time::MAX,
            rto_armed: false,
            max_sent: 0,
            sack: SackState::new(),
            rtt_probe: None,
        });
        self.host_try_send(spec.src, sched);
    }

    /// Generates data frames from eligible flows into the NIC queue and
    /// kicks the serializer; schedules a pacing wake-up if needed.
    fn host_try_send(&mut self, node: NodeId, sched: &mut Scheduler<'_, NetEvent>) {
        // An active packet-mode sender keeps its uplink at packet
        // fidelity (and re-stamps the quiescence clock on every visit —
        // this function runs on each TxDone/ACK/wake).
        self.fluid_touch_uplink(node, sched);
        let now = sched.now();
        let mtu = self.params.mtu;
        let recovery_on = self.params.recovery.is_some();
        let sr = self.params.recovery.is_some_and(|r| r.regime == Regime::SelectiveRepeat);
        loop {
            let host = self.host_mut(node);
            let n = host.active.len();
            if n == 0 || host.port.is_none() {
                break;
            }
            // A dead uplink accepts no new frames: flows wait for the
            // `LinkUp` kick (or their RTO) instead of filling the NIC
            // queue with traffic that would replay stale on repair.
            if !host.uplink().is_link_up() {
                break;
            }
            let mut chosen = None;
            let mut stale = None;
            for k in 0..n {
                let slot = (host.rr_cursor + k) % n;
                let i = host.active[slot];
                let f = &host.tx_flows[i];
                let repair = sr && f.sack.repair_pending();
                if !repair && f.fully_sent() {
                    // Fully sent with no repairs pending: a cumulative ACK
                    // can clear the repair window after a NACK reactivated
                    // the flow (selective repeat), or a stale ACK can pull
                    // a timeout-rewound cursor back past the end (either
                    // regime). Retire the stale entry and rescan.
                    stale = Some(slot);
                    break;
                }
                if f.next_send > now {
                    continue;
                }
                // IRN-style BDP flow control: fresh data may run at most
                // the receiver's out-of-order window ahead of the
                // cumulative ACK. Past it, arrivals behind a hole cannot
                // be buffered and the discarded tail would come back one
                // RTO at a time. Repairs land inside the window and pass.
                if sr
                    && !repair
                    && f.sent.saturating_sub(f.acked) >= SackBuffer::WINDOW_SEGMENTS * mtu
                {
                    continue;
                }
                let seg = if repair { mtu } else { mtu.min(f.size - f.sent) };
                let port = host.uplink();
                if !port.class_sendable(f.class) {
                    continue;
                }
                // Keep at most ~2 MTU queued per class: the NIC pulls from
                // queue pairs on demand rather than dumping the whole flow.
                if port.queue_bytes(f.class) >= 2 * mtu {
                    continue;
                }
                // Repairs fill holes the window already covered once, so
                // they bypass the cwnd gate (the post-loss window cut
                // would otherwise deadlock a fully-sent flow).
                let cwnd = f.cc.cwnd_bytes();
                if !repair && f.in_flight() + seg > cwnd.max(seg) {
                    continue;
                }
                chosen = Some(slot);
                break;
            }
            if let Some(slot) = stale {
                host.active.swap_remove(slot);
                if host.rr_cursor >= host.active.len() {
                    host.rr_cursor = 0;
                }
                continue;
            }
            let Some(slot) = chosen else { break };
            let i = host.active[slot];
            let f = &mut host.tx_flows[i];
            // Gap repairs take priority over fresh data: a hole at the
            // receiver stalls the cumulative mark, while fresh data only
            // extends the out-of-order tail.
            let repair_off =
                if sr && f.sack.repair_pending() { f.sack.next_repair(f.acked, mtu) } else { None };
            let (seq, seg, is_retx, is_repair) = match repair_off {
                Some(off) => (off, mtu.min(f.size - off), true, true),
                None => {
                    if f.fully_sent() {
                        // Every outstanding gap turned out to be SACKed:
                        // nothing to repair, nothing fresh — retire from
                        // the scan and let ACKs finish the flow.
                        host.active.swap_remove(slot);
                        if host.rr_cursor >= host.active.len() {
                            host.rr_cursor = 0;
                        }
                        continue;
                    }
                    if sr && f.sent.saturating_sub(f.acked) >= SackBuffer::WINDOW_SEGMENTS * mtu {
                        // Selected for a repair that the scan then found
                        // fully SACKed; fresh data is still window-blocked
                        // (the scan consumed `repair_pending`, so the
                        // rescan below cannot pick this flow again).
                        continue;
                    }
                    // Anything re-sent below the high-water mark is a
                    // retransmission (a go-back-N rewind replays from
                    // `acked`).
                    (f.sent, mtu.min(f.size - f.sent), f.sent < f.max_sent, false)
                }
            };
            let df = DataFrame {
                flow: f.id,
                src: node,
                dst: f.dst,
                seq,
                payload: seg,
                ecn: false,
                hops: HopList::new(),
            };
            let class = f.class;
            if !is_repair {
                // Repairs re-cover old offsets; only fresh data (or a
                // GBN replay) moves the stream cursor.
                f.sent += seg;
                f.max_sent = f.max_sent.max(f.sent);
            }
            f.cc.on_sent(now, seg);
            let rate = f.cc.rate();
            f.next_send = now + rate.tx_delay(seg);
            // RTT probe for the adaptive RTO: time one fresh segment at a
            // time; any retransmission poisons an outstanding probe
            // (Karn's rule).
            if recovery_on {
                if is_retx {
                    f.rtt_probe = None;
                } else if f.rtt_probe.is_none() {
                    f.rtt_probe = Some((f.sent, now));
                }
            }
            let flow_id = f.id;
            // Every send pushes the lazy RTO deadline; only the
            // unarmed→armed transition touches the calendar.
            let mut arm = None;
            if recovery_on {
                f.rto_deadline = f.recovery.deadline(now);
                if !f.rto_armed {
                    f.rto_armed = true;
                    f.rto_gen = f.rto_gen.wrapping_add(1);
                    arm = Some((f.rto_deadline, f.rto_gen));
                }
            }
            let done_sending = f.fully_sent() && !(sr && f.sack.repair_pending());
            if done_sending {
                host.active.swap_remove(slot);
                if host.rr_cursor >= host.active.len() {
                    host.rr_cursor = 0;
                }
            } else {
                host.rr_cursor = (slot + 1) % n;
            }
            if is_retx {
                self.retransmitted_bytes += seg;
                if is_repair {
                    self.sr_retransmitted_bytes += seg;
                    trace_event!(self.tracer, TraceEvent::RecoveryRepair, {
                        flow: flow_id.0 as u32,
                        node: node.0 as u32,
                        payload: seg,
                    });
                }
            }
            if let Some((deadline, gen)) = arm {
                sched.at(
                    deadline,
                    NetEvent::RtoTimer { host: node.0 as u32, flow: flow_id.0 as u32, gen },
                );
            }
            let frame = self.pool.get(|| Frame::data(df, class));
            self.host_mut(node).uplink_mut().enqueue(QueuedFrame { frame, ingress: None });
            self.arm_cc_timer(node, flow_id, sched);
        }
        self.try_transmit(node, 0, sched);

        // Pacing wake-up for flows waiting only on their send clock — but
        // only from an idle serializer: while the uplink is busy, its
        // TxDone re-enters this function and re-evaluates the clock, so a
        // wake-up event here would just be calendar churn.
        let host = self.host_mut(node);
        if host.port.as_ref().is_some_and(|p| p.is_busy() || !p.is_link_up()) {
            return;
        }
        let next =
            host.active.iter().map(|&i| host.tx_flows[i].next_send).filter(|&t| t > now).min();
        if let Some(t) = next {
            if t < host.wake_at {
                host.wake_at = t;
                sched.at(t, NetEvent::HostWake { host: node.0 as u32 });
            }
        }
    }

    /// (Re)arms the CC timer event for a flow if its deadline moved.
    fn arm_cc_timer(&mut self, node: NodeId, flow: FlowId, sched: &mut Scheduler<'_, NetEvent>) {
        let now = sched.now();
        let host = self.host_mut(node);
        let Some(f) = host.sender_mut(flow) else { return };
        if f.acked >= f.size {
            // Completed flows need no more transport timers.
            f.timer_gen += 1;
            return;
        }
        if let Some(t) = f.cc.next_timer() {
            f.timer_gen += 1;
            let gen = f.timer_gen;
            sched.at(
                t.max(now),
                NetEvent::CcTimer { host: node.0 as u32, flow: flow.0 as u32, gen },
            );
        }
    }

    fn handle_cc_timer(
        &mut self,
        node: NodeId,
        flow: FlowId,
        gen: u32,
        sched: &mut Scheduler<'_, NetEvent>,
    ) {
        let now = sched.now();
        {
            let host = self.host_mut(node);
            let Some(f) = host.sender_mut(flow) else { return };
            if f.timer_gen != gen {
                return; // stale
            }
            f.cc.on_timer(now);
        }
        self.arm_cc_timer(node, flow, sched);
        // Rate may have increased: the pacing clock stands, but window
        // growth can unblock sending.
        self.host_try_send(node, sched);
    }

    // ---- loss recovery ----------------------------------------------------

    /// Handles a go-back-N RTO event. The timer is lazy: sends and ACK
    /// progress only push `rto_deadline` forward in flow state, and the
    /// one armed calendar event re-schedules itself here when it fires
    /// before the deadline — so the steady-state packet path costs no
    /// calendar traffic for the timer at all.
    fn handle_rto_timer(
        &mut self,
        node: NodeId,
        flow: FlowId,
        gen: u32,
        sched: &mut Scheduler<'_, NetEvent>,
    ) {
        enum Outcome {
            Done,
            Reschedule(Time),
            Failed,
            Retransmit,
            SrRepair,
        }
        let now = sched.now();
        let outcome = {
            let host = self.host_mut(node);
            let Some(f) = host.sender_mut(flow) else { return };
            if f.rto_gen != gen || !f.rto_armed {
                Outcome::Done // stale generation
            } else if f.acked >= f.size || f.recovery.failed() {
                f.rto_armed = false;
                Outcome::Done
            } else if f.in_flight() == 0 {
                // Nothing outstanding (e.g. rewound while the uplink was
                // down): disarm; the next send re-arms.
                f.rto_armed = false;
                Outcome::Done
            } else if now < f.rto_deadline {
                Outcome::Reschedule(f.rto_deadline)
            } else {
                match f.recovery.on_timeout() {
                    RtoOutcome::Failed => {
                        f.rto_armed = false;
                        f.timer_gen += 1; // park CC timers too
                        Outcome::Failed
                    }
                    RtoOutcome::Retransmit => {
                        if f.recovery.regime() == Regime::SelectiveRepeat {
                            Outcome::SrRepair
                        } else {
                            Outcome::Retransmit
                        }
                    }
                }
            }
        };
        match outcome {
            Outcome::Done => {}
            Outcome::Reschedule(t) => {
                sched.at(t, NetEvent::RtoTimer { host: node.0 as u32, flow: flow.0 as u32, gen });
            }
            Outcome::Failed => self.fail_flow(node, flow),
            Outcome::Retransmit => self.retransmit(node, flow, sched),
            Outcome::SrRepair => self.sr_timeout_repair(node, flow, sched),
        }
    }

    /// Marks a flow failed after its retry budget ran out: it is removed
    /// from the active list (never wedged, never silently dropped) and
    /// reported via [`Network::failed_flow_count`].
    fn fail_flow(&mut self, node: NodeId, flow: FlowId) {
        self.failed_flows += 1;
        self.flows[flow.0].failed = true;
        trace_event!(self.tracer, TraceEvent::FlowFailed, {
            flow: flow.0 as u32,
            node: node.0 as u32,
            payload: self.flow_rx[flow.0],
        });
        let host = self.host_mut(node);
        if let Some(slot) = host.sender_slot(flow) {
            if let Some(pos) = host.active.iter().position(|&i| i == slot) {
                host.active.swap_remove(pos);
                if host.rr_cursor >= host.active.len() {
                    host.rr_cursor = 0;
                }
            }
        }
        fault_trace!("[fault] flow {flow:?} FAILED: retry budget exhausted");
    }

    /// Go-back-N rewind: back off the transport, rewind `sent` to the
    /// cumulative ACK mark, and resend from there. Frames from the old
    /// transmission still in flight arrive as duplicates and are
    /// discarded by the receiver's in-order check.
    fn retransmit(&mut self, node: NodeId, flow: FlowId, sched: &mut Scheduler<'_, NetEvent>) {
        let now = sched.now();
        self.retransmissions += 1;
        self.recovery_timeouts += 1;
        let (deadline, gen, rto_word) = {
            let host = self.host_mut(node);
            let slot = host.sender_slot(flow).expect("RTO for unregistered flow");
            let f = &mut host.tx_flows[slot];
            fault_trace!(
                "[fault] t={now:?} flow {flow:?} RTO: go-back-N to seq {} (retry {}, rto {:?})",
                f.acked,
                f.recovery.retries(),
                f.recovery.rto()
            );
            f.cc.on_loss(now);
            f.sent = f.acked;
            f.next_send = now;
            f.rtt_probe = None;
            // (Recovery escalation below keeps the rewinding sender's
            // uplink at packet fidelity for the whole backoff window.)
            // (The uplink is dragged to packet fidelity below via
            // host_try_send's touch; a rewinding sender is the opposite
            // of quiescent.)
            // Still armed: the same generation carries the next event,
            // scheduled at the backed-off deadline.
            f.rto_deadline = f.recovery.deadline(now);
            let pair = (f.rto_deadline, f.rto_gen, f.recovery.trace_payload());
            // A fully-sent flow left the active list; the rewind has data
            // to send again.
            if !host.active.contains(&slot) {
                host.active.push(slot);
            }
            pair
        };
        if self.fluid.is_some() {
            let lid = self.fluid.as_ref().expect("checked").lid(node, 0);
            self.escalate_link(lid, EscalateReason::Recovery, sched);
        }
        trace_event!(self.tracer, TraceEvent::Retransmit, {
            flow: flow.0 as u32,
            node: node.0 as u32,
            payload: rto_word,
        });
        trace_event!(self.tracer, TraceEvent::RecoveryRto, {
            flow: flow.0 as u32,
            node: node.0 as u32,
            payload: rto_word,
        });
        sched.at(deadline, NetEvent::RtoTimer { host: node.0 as u32, flow: flow.0 as u32, gen });
        self.host_try_send(node, sched);
    }

    /// Selective-repeat timeout: no rewind of `sent` — instead the repair
    /// cursor is re-armed at the cumulative ACK mark, so only the missing
    /// segment (plus any un-SACKed holes above it) goes out again. Covers
    /// NACK loss and tail loss, where no out-of-order arrival exists to
    /// trigger a NACK.
    fn sr_timeout_repair(
        &mut self,
        node: NodeId,
        flow: FlowId,
        sched: &mut Scheduler<'_, NetEvent>,
    ) {
        let now = sched.now();
        let mtu = self.params.mtu;
        self.retransmissions += 1;
        self.recovery_timeouts += 1;
        let (deadline, gen, rto_word) = {
            let host = self.host_mut(node);
            let slot = host.sender_slot(flow).expect("RTO for unregistered flow");
            let f = &mut host.tx_flows[slot];
            fault_trace!(
                "[fault] t={now:?} flow {flow:?} RTO: selective repeat from seq {} (retry {}, rto {:?})",
                f.acked,
                f.recovery.retries(),
                f.recovery.rto()
            );
            f.cc.on_loss(now);
            f.sack.rearm_on_timeout(f.acked, mtu);
            f.next_send = now;
            f.rtt_probe = None;
            // Still armed: the same generation carries the next event,
            // scheduled at the backed-off deadline.
            f.rto_deadline = f.recovery.deadline(now);
            let triple = (f.rto_deadline, f.rto_gen, f.recovery.trace_payload());
            // A fully-sent flow left the active list; the repair cursor
            // has work again.
            if !host.active.contains(&slot) {
                host.active.push(slot);
            }
            triple
        };
        if self.fluid.is_some() {
            let lid = self.fluid.as_ref().expect("checked").lid(node, 0);
            self.escalate_link(lid, EscalateReason::Recovery, sched);
        }
        trace_event!(self.tracer, TraceEvent::Retransmit, {
            flow: flow.0 as u32,
            node: node.0 as u32,
            payload: rto_word,
        });
        trace_event!(self.tracer, TraceEvent::RecoveryRto, {
            flow: flow.0 as u32,
            node: node.0 as u32,
            payload: rto_word,
        });
        sched.at(deadline, NetEvent::RtoTimer { host: node.0 as u32, flow: flow.0 as u32, gen });
        self.host_try_send(node, sched);
    }

    // ---- fault injection --------------------------------------------------

    /// Resolves the port index on `node` facing `peer`.
    ///
    /// # Panics
    ///
    /// Panics if no such link exists (fault plans are validated at install
    /// time, so this only fires on internal inconsistencies).
    fn find_port(&self, node: NodeId, peer: NodeId) -> usize {
        let ports: &[EgressPort] = match &self.nodes[node.0] {
            Node::Switch(s) => &s.ports,
            Node::Host(h) => h.port.as_slice(),
            Node::Absent => &[],
        };
        ports
            .iter()
            .position(|p| p.peer == peer)
            .unwrap_or_else(|| panic!("no link between {node} and {peer}"))
    }

    /// Whether a frame completing its arrival is lost to a fault: the
    /// ingress link died while it was in flight (the calendar cannot
    /// retract `Arrive` events, so the cut happens at delivery), or a
    /// corruption draw eats it. Only data frames are ever corrupted —
    /// PFC is link-local control whose loss the protocol cannot recover
    /// from (see the `fault` module docs).
    fn arrival_lost(&mut self, node: NodeId, in_port: usize, frame: &Frame) -> bool {
        if self.fault_plan.is_none() {
            return false;
        }
        if !self.port_mut(node, in_port).is_link_up() {
            fault_trace!("[fault] frame dropped on dead ingress {in_port} at {node}");
            return true;
        }
        if frame.is_data() && !self.corrupt.is_empty() {
            let key = (node.0 as u32, in_port as u32);
            if let Some(c) = self.corrupt.iter_mut().find(|c| (c.node, c.in_port) == key) {
                if c.rng.gen_bool(c.probability) {
                    fault_trace!("[fault] frame corrupted on ingress {in_port} at {node}");
                    trace_event!(self.tracer, TraceEvent::FrameCorrupt, {
                        node: node.0 as u32,
                        port: in_port as u16,
                        payload: frame.bytes,
                    });
                    return true;
                }
            }
        }
        false
    }

    fn handle_fault(&mut self, index: usize, sched: &mut Scheduler<'_, NetEvent>) {
        let ev = self.fault_plan.as_ref().expect("Fault event without a plan").events()[index];
        match ev.kind {
            FaultKind::LinkDown { a, b } => self.link_down(a, b, sched),
            FaultKind::LinkUp { a, b } => self.link_up(a, b, sched),
        }
    }

    fn link_down(&mut self, a: NodeId, b: NodeId, sched: &mut Scheduler<'_, NetEvent>) {
        let now = sched.now();
        fault_trace!("[fault] t={now:?} link DOWN {a}-{b}");
        trace_event!(self.tracer, TraceEvent::LinkDown, {
            node: a.0 as u32,
            payload: b.0 as u64,
        });
        let pa = self.find_port(a, b);
        let pb = self.find_port(b, a);
        // Escalate both directions to packet fidelity *before* the kill:
        // fluid in-flight bytes become real frames whose loss the
        // recovery machinery can then observe.
        if self.fluid.is_some() {
            for (node, port) in [(a, pa), (b, pb)] {
                let lid = self.fluid.as_ref().expect("checked").lid(node, port);
                self.escalate_link(lid, EscalateReason::Fault, sched);
            }
        }
        for (node, port) in [(a, pa), (b, pb)] {
            self.kill_port(node, port, now, sched);
        }
        self.recompute_routes();
    }

    /// One endpoint's share of a link failure: force-clear the MMU pause
    /// ledger for the dead ingress, drain the egress queues, release MMU
    /// accounting for every drained frame, and forward any resumes that
    /// releases toward still-alive upstreams.
    fn kill_port(
        &mut self,
        node: NodeId,
        port: usize,
        now: Time,
        sched: &mut Scheduler<'_, NetEvent>,
    ) {
        // Pause state first: the upstream that asserted it is gone, and
        // the drain's departures must already find the port unpaused so
        // no resume is emitted toward the dead peer.
        if let Node::Switch(s) = &mut self.nodes[node.0] {
            let cleared = s.mmu.release_port_pauses(port);
            if cleared > 0 {
                fault_trace!(
                    "[fault] {node}: cleared {cleared} pause ledger entries on port {port}"
                );
            }
        }
        // The failure wipes the port's pause clocks, so any open cascade
        // edges rooted here end now (both endpoints get a kill call, each
        // in its owning partition).
        if let Some(obs) = self.observe.as_deref_mut() {
            obs.cascade.force_close_port(node, port, now);
        }
        // Cold path: faults are rare, so a fresh drain buffer per event is
        // fine (the packet hot path stays allocation-free).
        let mut drained = Vec::new();
        self.port_mut(node, port).fail(now, &mut drained);
        self.link_drops += drained.len() as u64;
        if !drained.is_empty() {
            trace_event!(self.tracer, TraceEvent::LinkDrain, {
                node: node.0 as u32,
                port: port as u16,
                payload: drained.len() as u64,
            });
        }
        let mut fc: Vec<FcAction> = Vec::new();
        for qf in drained {
            if let Some(IngressTag { in_port, in_queue, region }) = qf.ingress {
                let Node::Switch(s) = &mut self.nodes[node.0] else { unreachable!() };
                let actions = s.mmu.on_departure(in_port, in_queue, qf.frame.bytes, region, now);
                s.occupancy.sub(now, qf.frame.bytes);
                fc.extend(actions);
            }
            self.pool.put(qf.frame);
        }
        for a in fc {
            let (p, f) = SwitchNode::fc_frame(a);
            if !self.port_mut(node, p).is_link_up() {
                continue; // a resume owed to a dead upstream dies with it
            }
            let frame = self.pool.get(|| f);
            self.port_mut(node, p).enqueue(QueuedFrame { frame, ingress: None });
            self.try_transmit(node, p, sched);
        }
    }

    fn link_up(&mut self, a: NodeId, b: NodeId, sched: &mut Scheduler<'_, NetEvent>) {
        fault_trace!("[fault] t={:?} link UP {a}-{b}", sched.now());
        trace_event!(self.tracer, TraceEvent::LinkUp, {
            node: a.0 as u32,
            payload: b.0 as u64,
        });
        let pa = self.find_port(a, b);
        let pb = self.find_port(b, a);
        // A repaired link re-enters service at packet fidelity (the
        // escalation is a cheap trigger refresh if it is already there);
        // it may de-escalate after a clean quiescence window.
        if self.fluid.is_some() {
            for (node, port) in [(a, pa), (b, pb)] {
                let lid = self.fluid.as_ref().expect("checked").lid(node, port);
                self.escalate_link(lid, EscalateReason::Fault, sched);
            }
        }
        self.port_mut(a, pa).restore();
        self.port_mut(b, pb).restore();
        self.recompute_routes();
        // Kick both ends: hosts may have flows parked on the dead uplink,
        // switches may have frames enqueued while the port was down.
        for (node, port) in [(a, pa), (b, pb)] {
            if matches!(self.nodes[node.0], Node::Host(_)) {
                self.host_try_send(node, sched);
            } else {
                self.try_transmit(node, port, sched);
            }
        }
    }

    /// Rebuilds every switch's ECMP table from the live (link-up)
    /// adjacency — the same rule the builder uses at construction time.
    fn recompute_routes(&mut self) {
        let n = self.nodes.len();
        let mut is_switch = vec![false; n];
        let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
        for (i, node) in self.nodes.iter().enumerate() {
            let ports: &[EgressPort] = match node {
                Node::Switch(s) => {
                    is_switch[i] = true;
                    &s.ports
                }
                Node::Host(h) => h.port.as_slice(),
                Node::Absent => &[],
            };
            for (pi, p) in ports.iter().enumerate() {
                if p.is_link_up() {
                    adj[i].push((p.peer.0, pi));
                }
            }
        }
        let tables = crate::routing::compute_route_tables(&is_switch, &adj);
        // Fault detours can lengthen routes past the build-time diameter;
        // re-validate the stamp budget on every recompute so an overlong
        // detour fails at reroute time, not mid-flight in HopList::push.
        let diameter = crate::routing::max_route_hops(&is_switch, &adj);
        assert!(
            diameter <= dsh_transport::HOP_CAPACITY,
            "post-fault reroute produced a {diameter}-switch path but frames \
             carry only HOP_CAPACITY ({}) inline telemetry stamps",
            dsh_transport::HOP_CAPACITY
        );
        for (node, table) in self.nodes.iter_mut().zip(tables) {
            if let Node::Switch(s) = node {
                s.routes = table;
            }
        }
    }

    fn handle_apply_pause(
        &mut self,
        node: NodeId,
        port: usize,
        scope: PfcScope,
        pause: bool,
        gen: u32,
        sched: &mut Scheduler<'_, NetEvent>,
    ) {
        let now = sched.now();
        let (peer, peer_port) = {
            let p = self.port_mut(node, port);
            if p.fault_gen() != gen {
                // The link died while this PFC frame's processing delay
                // elapsed: its pause state was force-cleared and (for a
                // PAUSE) the matching RESUME is gone. Ignore it.
                return;
            }
            match scope {
                PfcScope::Queue(c) => p.apply_class_pause(c, pause, now),
                PfcScope::Port => p.apply_port_pause(pause, now),
            }
            (p.peer, p.peer_port)
        };
        // Pause-causality hook: links are full-duplex port pairs, so the
        // congested downstream that requested this pause is statically
        // the peer endpoint. One branch when the observatory is off.
        if let Some(obs) = self.observe.as_deref_mut() {
            let class = match scope {
                PfcScope::Queue(c) => c,
                PfcScope::Port => PORT_SCOPE_CLASS,
            };
            if pause {
                let up_is_host = matches!(self.nodes[node.0], Node::Host(_));
                obs.cascade.on_pause(node, port, class, peer, peer_port, up_is_host, now);
            } else {
                obs.cascade.on_resume(node, port, class, now);
            }
        }
        // A PFC pause asserted on this egress is a congestion signal the
        // fluid model cannot represent: escalate the link.
        if pause && self.fluid.is_some() {
            let lid = self.fluid.as_ref().expect("checked").lid(node, port);
            self.escalate_link(lid, EscalateReason::Pfc, sched);
        }
        let kind = match (scope, pause) {
            (PfcScope::Queue(_), true) => TraceEvent::PfcPause,
            (PfcScope::Queue(_), false) => TraceEvent::PfcResume,
            (PfcScope::Port, true) => TraceEvent::PfcPortPause,
            (PfcScope::Port, false) => TraceEvent::PfcPortResume,
        };
        trace_event!(self.tracer, kind, {
            node: node.0 as u32,
            port: port as u16,
            class: match scope {
                PfcScope::Queue(c) => c,
                PfcScope::Port => u8::MAX,
            },
        });
        if !pause {
            // Resumed: traffic may flow again.
            if matches!(self.nodes[node.0], Node::Host(_)) {
                self.host_try_send(node, sched);
            } else {
                self.try_transmit(node, port, sched);
            }
        }
    }

    /// Scans every switch egress port for over-age pauses and flushes
    /// them (releasing MMU accounting for the dropped frames).
    fn run_watchdog(
        &mut self,
        now: Time,
        timeout: dsh_simcore::Delta,
        sched: &mut Scheduler<'_, NetEvent>,
    ) {
        let node_count = self.nodes.len();
        for ni in 0..node_count {
            if !matches!(self.nodes[ni], Node::Switch(_)) {
                continue;
            }
            let port_count = match &self.nodes[ni] {
                Node::Switch(s) => s.ports.len(),
                Node::Host(_) | Node::Absent => 0,
            };
            for pi in 0..port_count {
                for class in 0..crate::ids::NUM_DATA_CLASSES as u8 {
                    let expired = {
                        let Node::Switch(s) = &self.nodes[ni] else { unreachable!() };
                        let p = &s.ports[pi];
                        let since = p
                            .class_paused_since(class)
                            .or_else(|| p.port_paused_since().filter(|_| p.queue_bytes(class) > 0));
                        matches!(since, Some(t) if now.saturating_since(t) >= timeout)
                    };
                    if !expired {
                        continue;
                    }
                    // Flush into the reused scratch buffers (their
                    // capacity persists across samples — no fresh `Vec`
                    // per flush).
                    let mut flushed = std::mem::take(&mut self.wd_flushed);
                    let mut fc = std::mem::take(&mut self.wd_fc);
                    flushed.clear();
                    fc.clear();
                    {
                        let Node::Switch(s) = &mut self.nodes[ni] else { unreachable!() };
                        s.ports[pi].watchdog_flush_class(class, now, &mut flushed);
                    }
                    // The flush force-cleared both the class pause and any
                    // port-scope pause: end the matching cascade edges.
                    if let Some(obs) = self.observe.as_deref_mut() {
                        obs.cascade.on_resume(NodeId(ni), pi, class, now);
                        obs.cascade.on_resume(NodeId(ni), pi, PORT_SCOPE_CLASS, now);
                    }
                    // Release the MMU accounting of the dropped frames and
                    // forward any resumes that releases.
                    self.watchdog_drops += flushed.len() as u64;
                    for qf in flushed.drain(..) {
                        if let Some(IngressTag { in_port, in_queue, region }) = qf.ingress {
                            let Node::Switch(s) = &mut self.nodes[ni] else { unreachable!() };
                            let actions =
                                s.mmu.on_departure(in_port, in_queue, qf.frame.bytes, region, now);
                            s.occupancy.sub(now, qf.frame.bytes);
                            fc.extend(actions);
                        }
                        self.pool.put(qf.frame);
                    }
                    for a in fc.drain(..) {
                        let (p, f) = SwitchNode::fc_frame(a);
                        let frame = self.pool.get(|| f);
                        self.port_mut(NodeId(ni), p).enqueue(QueuedFrame { frame, ingress: None });
                        self.try_transmit(NodeId(ni), p, sched);
                    }
                    self.wd_flushed = flushed;
                    self.wd_fc = fc;
                    // The unpaused port may transmit again.
                    self.try_transmit(NodeId(ni), pi, sched);
                }
            }
        }
    }

    // ---- fluid fast path (hybrid fidelity; see DESIGN.md §14) -------------

    /// Builds the per-link fluid state for hybrid mode; no-op under
    /// [`FidelityMode::Packet`]. `owner` is the canonical partition plan's
    /// node→partition map: links crossing a partition cut are pinned
    /// packet-mode so serial and partitioned hybrid runs agree on which
    /// links may ever go fluid. `None` pins nothing (no valid plan).
    pub(crate) fn init_fluid(&mut self, owner: Option<&[u32]>) {
        let FidelityMode::Hybrid { util_threshold, quiesce } = self.params.fidelity else {
            return;
        };
        let mut st = FluidState::new(util_threshold, quiesce, self.flows.len());
        for n in &self.nodes {
            let ports: &[EgressPort] = match n {
                Node::Switch(s) => &s.ports,
                Node::Host(h) => h.port.as_slice(),
                Node::Absent => &[],
            };
            st.push_node(ports.len());
            for p in ports {
                st.push_link(p.bandwidth.as_bps());
            }
        }
        for (node, p, port) in self.all_ports() {
            let lid = st.lid(node, p);
            if !matches!(self.nodes[port.peer.0], Node::Absent) {
                let ingress_lid = st.lid(port.peer, port.peer_port);
                st.set_ingress(ingress_lid, lid);
            }
            if let Some(owner) = owner {
                if owner[node.0] != owner[port.peer.0] {
                    st.pin(lid);
                }
            }
        }
        debug_assert_eq!(
            st.num_links(),
            self.all_ports().count(),
            "one fluid link per egress port"
        );
        self.fluid = Some(st);
    }

    /// Attempts to admit a starting flow to the fluid fast path. Returns
    /// `false` (caller takes the packet path) if any path link is
    /// packet-mode, pinned, or would exceed the utilization threshold —
    /// or if the path leaves this partition.
    fn try_fluid_start(&mut self, flow: FlowId, sched: &mut Scheduler<'_, NetEvent>) -> bool {
        let now = sched.now();
        let spec = self.flows[flow.0].spec;
        let mtu = self.params.mtu;
        // Pipe latency = Σ propagation + the *last* segment's
        // store-and-forward serialization on every hop after the first,
        // which is exactly when the packet engine's final byte lands on an
        // idle path.
        let last_seg =
            if spec.size.is_multiple_of(mtu) { mtu.min(spec.size) } else { spec.size % mtu };
        let walk = {
            let Some(st) = self.fluid.as_ref() else { return false };
            let Node::Host(h) = &self.nodes[spec.src.0] else { return false };
            if h.port.is_none() {
                return false;
            }
            let uplink = h.uplink();
            if !uplink.is_link_up() {
                return false;
            }
            let line_rate = uplink.bandwidth;
            let mut links: Vec<u32> = vec![st.lid(spec.src, 0) as u32];
            let mut pipe = uplink.prop_delay;
            let mut cur = uplink.peer;
            let mut ok = false;
            // The walk follows the deterministic per-flow ECMP pick, the
            // same choice every frame of this flow would make; bounded by
            // the node count as a route-cycle guard.
            for _ in 0..self.nodes.len() {
                if cur == spec.dst {
                    ok = true;
                    break;
                }
                let Node::Switch(s) = &self.nodes[cur.0] else { break };
                let Some(out) = s.routes.try_pick(spec.dst.0, flow, s.id) else { break };
                let port = &s.ports[out];
                if !port.is_link_up() {
                    break;
                }
                links.push(st.lid(cur, out) as u32);
                pipe = pipe + port.bandwidth.tx_delay(last_seg) + port.prop_delay;
                cur = port.peer;
            }
            ok.then_some((links, pipe, line_rate))
        };
        let Some((links, pipe, line_rate)) = walk else { return false };
        let blocker = {
            let st = self.fluid.as_ref().expect("checked");
            st.admission_blocker(&links, line_rate.as_bps())
        };
        match blocker {
            Some((lid, true)) => {
                // Offered load above the threshold is congestion the fluid
                // model must not absorb: the blocking link escalates and
                // this flow takes the packet path from byte zero.
                self.escalate_link(lid, EscalateReason::Util, sched);
                return false;
            }
            Some((_, false)) => return false,
            None => {}
        }
        let credit_start = now + pipe;
        {
            let st = self.fluid.as_mut().expect("checked");
            st.admit(FluidFlowAccount {
                flow,
                size: spec.size,
                start: now,
                credit_start,
                pipe_delay: pipe,
                credited: 0,
                rate: Bandwidth::from_bps(0),
                basis: credit_start,
                line_rate_bps: line_rate.as_bps(),
                links,
                done: false,
            });
            st.solve(now);
        }
        trace_event!(self.tracer, TraceEvent::FluidFlowStart, {
            flow: flow.0 as u32,
            node: spec.src.0 as u32,
            class: spec.class,
            payload: spec.size,
        });
        self.schedule_fluid_advance(sched);
        true
    }

    /// Records a fidelity trigger on a directed link. If the link was
    /// fluid it escalates to packet mode, dragging every fluid flow whose
    /// path crosses it (and, transitively, all links of those paths) along:
    /// due flows finalize, the rest materialize into the packet engine.
    /// On an already-packet link this is just a quiescence-clock refresh.
    fn escalate_link(
        &mut self,
        lid: usize,
        reason: EscalateReason,
        sched: &mut Scheduler<'_, NetEvent>,
    ) {
        let now = sched.now();
        let escalated = {
            let Some(st) = self.fluid.as_mut() else { return };
            st.mark_packet(lid, now)
        };
        if !escalated {
            return;
        }
        {
            let st = self.fluid.as_ref().expect("checked");
            let (node, port) = st.link_endpoint(lid);
            trace_event!(self.tracer, TraceEvent::FluidEscalate, {
                node: node,
                port: port,
                payload: reason as u64,
            });
        }
        // Closure first, flows second: a materialized flow puts real
        // frames on *every* link of its path, so the whole affected
        // subgraph must be packet-mode before any sender starts
        // transmitting (otherwise admission/escalation would recurse).
        let mut affected: Vec<usize> = Vec::new();
        let mut frontier: Vec<usize> = vec![lid];
        while let Some(l) = frontier.pop() {
            for idx in self.fluid.as_ref().expect("checked").flows_on_link(l) {
                if affected.contains(&idx) {
                    continue;
                }
                affected.push(idx);
                let path = self.fluid.as_ref().expect("checked").flows[idx].links.clone();
                for pl in path {
                    let st = self.fluid.as_mut().expect("checked");
                    if st.mark_packet(pl as usize, now) {
                        let (node, port) = st.link_endpoint(pl as usize);
                        trace_event!(self.tracer, TraceEvent::FluidEscalate, {
                            node: node,
                            port: port,
                            payload: EscalateReason::Cascade as u64,
                        });
                        frontier.push(pl as usize);
                    }
                }
            }
        }
        affected.sort_unstable();
        for idx in affected {
            let due = {
                let a = &self.fluid.as_ref().expect("checked").flows[idx];
                a.credited_at(now) >= a.size
            };
            if due {
                // The escalation instant coincides with (or passed) the
                // flow's analytic completion: record the FCT, no handoff.
                self.finalize_fluid_completion(idx, sched);
            } else {
                self.materialize_flow(idx, sched);
            }
        }
        {
            let st = self.fluid.as_mut().expect("checked");
            st.solve(now);
            st.compact();
        }
        self.schedule_fluid_advance(sched);
    }

    /// Completes a fluid flow analytically: retires the account, credits
    /// the receiver in full, and records the FCT — the fluid counterpart
    /// of the packet path's completion in `host_receive_data`.
    fn finalize_fluid_completion(&mut self, idx: usize, sched: &mut Scheduler<'_, NetEvent>) {
        let now = sched.now();
        let (flow, credited) = {
            let st = self.fluid.as_mut().expect("fluid state");
            let flow = st.flows[idx].flow;
            let credited = st.retire(idx, now);
            st.stats.fluid_completions += 1;
            (flow, credited)
        };
        let spec = self.flows[flow.0].spec;
        debug_assert_eq!(credited, spec.size, "fluid completion must credit the full flow");
        self.flows[flow.0].completed = true;
        self.flow_rx[flow.0] = credited;
        self.rx_flows[flow.0].received = credited;
        self.rx_flows[flow.0].completed = true;
        self.fct.push(FctRecord { flow, size: spec.size, start: spec.start, finish: now });
        trace_event!(self.tracer, TraceEvent::FlowComplete, {
            flow: flow.0 as u32,
            node: spec.dst.0 as u32,
            payload: now.saturating_since(spec.start).as_ps(),
        });
        trace_event!(self.tracer, TraceEvent::FluidFlowComplete, {
            flow: flow.0 as u32,
            node: spec.dst.0 as u32,
            payload: now.saturating_since(spec.start).as_ps(),
        });
    }

    /// Hands a fluid flow to the packet engine mid-flight: the credited
    /// prefix becomes receiver state, the in-pipe bytes become real pooled
    /// frames arriving directly at the destination with fluid-accurate
    /// timestamps (analytically they were already past every queue), and
    /// the residue becomes an ordinary sender whose transport is seeded
    /// from the fluid fair share.
    fn materialize_flow(&mut self, idx: usize, sched: &mut Scheduler<'_, NetEvent>) {
        let now = sched.now();
        let mtu = self.params.mtu;
        let recovery_on = self.params.recovery.is_some();
        let (flow, credited, infl, rate, basis) = {
            let st = self.fluid.as_mut().expect("fluid state");
            let infl = st.flows[idx].in_flight_at(now);
            let credited = st.retire(idx, now);
            st.stats.materializations += 1;
            let a = &st.flows[idx];
            (a.flow, credited, infl, a.rate, a.basis)
        };
        let spec = self.flows[flow.0].spec;
        // Receiver resumes from the analytic in-order mark.
        self.rx_flows[flow.0].received = credited;
        self.flow_rx[flow.0] = credited;
        let end = credited + infl;
        let mut seq = credited;
        while seq < end {
            let seg = mtu.min(end - seq);
            let df = DataFrame {
                flow,
                src: spec.src,
                dst: spec.dst,
                seq,
                payload: seg,
                ecn: false,
                hops: HopList::new(),
            };
            let frame = self.pool.get(|| Frame::data(df, spec.class));
            // The segment lands when the fluid model would have credited
            // its last byte (basis was folded to `now` by the retire
            // above, so these arrivals are never in the past).
            let t = basis + rate.tx_delay(seq + seg - credited);
            sched.at(t, NetEvent::Arrive { node: spec.dst.0 as u32, in_port: 0, frame });
            seq += seg;
        }
        // Sender resumes from the handoff point.
        let (bw, base_rtt) = {
            let Node::Host(h) = &self.nodes[spec.src.0] else {
                unreachable!("flow source must be a host")
            };
            (h.uplink().bandwidth, self.params.base_rtt)
        };
        let mut cc = new_cc(spec.cc, bw, base_rtt);
        cc.on_fluid_handoff(now, rate);
        let rcfg = self.params.recovery.unwrap_or_else(|| RecoveryConfig::for_rtt(base_rtt));
        let host = self.host_mut(spec.src);
        host.add_sender(SenderFlow {
            id: flow,
            dst: spec.dst,
            class: spec.class,
            size: spec.size,
            sent: end,
            acked: credited,
            next_send: now,
            cc,
            timer_gen: 0,
            recovery: GoBackN::new(rcfg),
            rto_gen: 0,
            rto_deadline: Time::MAX,
            rto_armed: false,
            max_sent: end,
            sack: SackState::new(),
            rtt_probe: None,
        });
        if end >= spec.size {
            // Everything is already on the wire: off the active list (the
            // in-flight arrivals finish the flow).
            let slot = host.tx_flows.len() - 1;
            if let Some(pos) = host.active.iter().position(|&i| i == slot) {
                host.active.swap_remove(pos);
                if host.rr_cursor >= host.active.len() {
                    host.rr_cursor = 0;
                }
            }
        }
        if recovery_on && end > credited {
            // In-flight bytes under recovery need a live RTO: a fault that
            // eats the materialized arrivals must not wedge the flow.
            let f = host.sender_mut(flow).expect("just added");
            f.rto_deadline = f.recovery.deadline(now);
            f.rto_armed = true;
            f.rto_gen = f.rto_gen.wrapping_add(1);
            let (deadline, gen) = (f.rto_deadline, f.rto_gen);
            sched.at(
                deadline,
                NetEvent::RtoTimer { host: spec.src.0 as u32, flow: flow.0 as u32, gen },
            );
        }
        self.arm_cc_timer(spec.src, flow, sched);
        self.host_try_send(spec.src, sched);
    }

    /// Schedules the next `FluidAdvance` at the earliest analytic
    /// completion of the current epoch (no-op with no active accounts).
    fn schedule_fluid_advance(&mut self, sched: &mut Scheduler<'_, NetEvent>) {
        let Some(st) = self.fluid.as_ref() else { return };
        let Some(t) = st.next_completion() else { return };
        let gen = st.gen;
        sched.at(t.max(sched.now()), NetEvent::FluidAdvance { gen });
    }

    /// Handles a `FluidAdvance`: finalizes every account due at this
    /// instant, re-solves, and schedules the next epoch tick. Stale
    /// generations (a re-solve happened since scheduling) fall through.
    fn handle_fluid_advance(&mut self, gen: u32, sched: &mut Scheduler<'_, NetEvent>) {
        let now = sched.now();
        let due: Vec<usize> = {
            let Some(st) = self.fluid.as_ref() else { return };
            if st.gen != gen {
                return;
            }
            st.flows
                .iter()
                .enumerate()
                .filter(|(_, a)| !a.done && a.credited_at(now) >= a.size)
                .map(|(i, _)| i)
                .collect()
        };
        for idx in due {
            self.finalize_fluid_completion(idx, sched);
        }
        {
            let st = self.fluid.as_mut().expect("checked");
            st.solve(now);
            st.compact();
        }
        self.schedule_fluid_advance(sched);
    }

    /// Folds every active fluid account's analytic credits into the
    /// receiver-side byte counters the goodput monitors read (read-only
    /// peek; accounts are not mutated).
    fn fluid_peek_rx(&mut self, now: Time) {
        let Some(st) = self.fluid.as_ref() else { return };
        if !st.any_active() {
            return;
        }
        for a in &st.flows {
            if !a.done {
                self.flow_rx[a.flow.0] = a.credited_at(now);
            }
        }
    }

    /// An active packet-mode sender keeps its uplink at packet fidelity;
    /// called from `host_try_send` so every TxDone/ACK/wake refreshes the
    /// quiescence clock (and escalates a still-fluid uplink the moment a
    /// packet-path flow wants to transmit on it).
    fn fluid_touch_uplink(&mut self, node: NodeId, sched: &mut Scheduler<'_, NetEvent>) {
        let lid = {
            let Some(st) = self.fluid.as_ref() else { return };
            let Node::Host(h) = &self.nodes[node.0] else { return };
            if h.port.is_none() || h.active.is_empty() {
                return;
            }
            st.lid(node, 0)
        };
        self.escalate_link(lid, EscalateReason::Enqueue, sched);
    }

    /// Per-sample fluid bookkeeping: de-escalates packet-mode links whose
    /// quiescence window elapsed with an idle, empty egress and a clean
    /// peer MMU; in debug builds, audits that fluid links hold zero MMU
    /// shared/headroom occupancy at their receiving switch.
    fn fluid_sample(&mut self, now: Time, _sched: &mut Scheduler<'_, NetEvent>) {
        if self.fluid.is_none() {
            return;
        }
        let mut ready: Vec<usize> = Vec::new();
        {
            let st = self.fluid.as_ref().expect("checked");
            for (node, p, port) in self.all_ports() {
                let lid = st.lid(node, p);
                if st.is_pinned(lid)
                    || !st.deescalation_ready(lid, now)
                    || port.total_queued_bytes() != 0
                    || port.is_busy()
                    || !port.is_link_up()
                {
                    continue;
                }
                // The receiving switch must have drained every frame this
                // link fed it: a fluid link's ingress holds no MMU state.
                let peer_clear = match &self.nodes[port.peer.0] {
                    Node::Switch(s) => {
                        s.mmu.port_shared_occupancy(port.peer_port)
                            + s.mmu.port_headroom_occupancy(port.peer_port)
                            == 0
                    }
                    Node::Host(_) | Node::Absent => true,
                };
                if peer_clear {
                    ready.push(lid);
                }
            }
        }
        for lid in ready {
            let flipped = {
                let st = self.fluid.as_mut().expect("checked");
                st.try_deescalate(lid, now)
            };
            if flipped {
                let (node, port) = self.fluid.as_ref().expect("checked").link_endpoint(lid);
                trace_event!(self.tracer, TraceEvent::FluidDeescalate, {
                    node: node,
                    port: port,
                });
            }
        }
        #[cfg(debug_assertions)]
        {
            let st = self.fluid.as_ref().expect("checked");
            for (node, p, port) in self.all_ports() {
                if !st.is_fluid(st.lid(node, p)) {
                    continue;
                }
                if let Node::Switch(s) = &self.nodes[port.peer.0] {
                    let occ = s.mmu.port_shared_occupancy(port.peer_port)
                        + s.mmu.port_headroom_occupancy(port.peer_port);
                    debug_assert_eq!(
                        occ, 0,
                        "fluid link {node}:{p} feeds MMU occupancy at {}:{}",
                        port.peer, port.peer_port
                    );
                }
            }
        }
    }

    fn handle_sample(&mut self, sched: &mut Scheduler<'_, NetEvent>) {
        let now = sched.now();
        let dt = self.params.sample_interval;
        // Fluid flows deliver no frames, so fold their analytic credits
        // into the receiver-side byte counters the monitors read.
        self.fluid_peek_rx(now);
        // Flow goodput monitors.
        for m in &mut self.monitors {
            let bytes = self.flow_rx[m.flow.0];
            let gbps = (bytes - m.last_bytes) as f64 * 8.0 / dt.as_secs_f64() / 1e9;
            m.last_bytes = bytes;
            m.samples.push(ThroughputSample { time: now, gbps });
        }
        // PFC watchdog (if armed): a class paused beyond the timeout is
        // force-resumed and its queue flushed — the standard deadlock
        // mitigation, trading losslessness for liveness.
        if let Some(wd) = self.params.pfc_watchdog {
            self.run_watchdog(now, wd, sched);
        }

        // Occupancy counter tracks (one snapshot per switch per tick;
        // the outer mask test keeps the snapshot loop off the untraced
        // path entirely).
        if self.tracer.wants(TraceMask::MMU) {
            for (i, n) in self.nodes.iter().enumerate() {
                if let Node::Switch(s) = n {
                    let snap = s.mmu.occupancy_snapshot();
                    trace_event!(self.tracer, TraceEvent::OccShared, {
                        node: i as u32,
                        payload: snap.shared,
                    });
                    trace_event!(self.tracer, TraceEvent::OccHeadroom, {
                        node: i as u32,
                        payload: snap.headroom + snap.insurance,
                    });
                    trace_event!(self.tracer, TraceEvent::OccThreshold, {
                        node: i as u32,
                        payload: snap.threshold,
                    });
                }
            }
        }

        // Deadlock detection: a switch egress port continuously unable to
        // serve queued data for longer than the threshold. Recomputed on
        // every sample — transient congestion that eventually resolves
        // clears the report, so at the end of a run `onset` is set only if
        // the network is *still* wedged (a true deadlock never unblocks).
        let thresh = self.params.deadlock_threshold;
        let mut onset: Option<Time> = None;
        let mut onset_node = u32::MAX;
        for (i, n) in self.nodes.iter().enumerate() {
            if let Node::Switch(s) = n {
                for p in &s.ports {
                    if let Some(b) = p.blocked_since() {
                        if now.saturating_since(b) >= thresh && onset.is_none_or(|o| b < o) {
                            onset = Some(b);
                            onset_node = i as u32;
                        }
                    }
                }
            }
        }
        if let Some(b) = onset {
            if self.deadlock.onset.is_none() {
                trace_event!(self.tracer, TraceEvent::DeadlockOnset, {
                    node: onset_node,
                    payload: b.as_ps(),
                });
            }
        }
        self.deadlock.onset = onset;
        // Fluid bookkeeping rides the sampling tick: de-escalate links
        // whose quiescence window expired, and (debug builds) audit that
        // fluid links hold no MMU shared/headroom occupancy.
        self.fluid_sample(now, sched);
        sched.at(now + dt, NetEvent::Sample);
    }

    /// Handles a [`NetEvent::MetricsTick`]: commits the previous pending
    /// sample (captured by [`Self::capture_metrics`] at the first event
    /// after its instant), arms the sample labeled `now`, and re-arms the
    /// tick. Only ever scheduled when `NetParams::observe` is set.
    ///
    /// Ticks never capture directly: a sample's state must reflect the
    /// *complete* set of events at instants `<= t`, and where the tick
    /// lands inside the same-instant batch at `t` is an engine artifact
    /// (the serial calendar and the link-partitioned driver order
    /// same-instant ties differently).  Deferring the capture to the
    /// first strictly-later event closes the instant first, which makes
    /// the committed series byte-identical at any worker count.
    fn handle_metrics_tick(&mut self, sched: &mut Scheduler<'_, NetEvent>) {
        let now = sched.now();
        // This tick is itself an event strictly after the previous pending
        // instant, so the dispatch-entry check has already captured it.
        if let Some(obs) = self.observe.as_deref_mut() {
            let dt = obs.metrics.interval();
            debug_assert!(
                obs.metrics.has_staged() || self.metrics_capture_at == Time::MAX,
                "tick at {now:?} found an armed but uncaptured sample"
            );
            obs.metrics.commit_staged();
            self.metrics_capture_at = now;
            sched.at(now + dt, NetEvent::MetricsTick);
        }
    }

    /// Captures the pending sample armed at `metrics_capture_at`:
    /// snapshots every locally-owned switch's MMU occupancy and the
    /// partition-global gauges into the observatory's staging slots (the
    /// next tick commits them to the pre-allocated rings).  Called from
    /// dispatch entry at the first event strictly after the sample
    /// instant, *before* that event mutates any state.
    #[cold]
    fn capture_metrics(&mut self) {
        let t = self.metrics_capture_at;
        self.metrics_capture_at = Time::MAX;
        // Detach the observatory for the duration of the capture so the
        // node/port scans below can borrow `self` freely.
        let Some(mut obs) = self.observe.take() else { return };
        for (i, n) in self.nodes.iter().enumerate() {
            if let Node::Switch(s) = n {
                let snap = s.mmu.occupancy_snapshot();
                // The sampler must agree with the auditor at every sample
                // instant (the determinism proptest runs in debug mode and
                // leans on this cross-check).
                #[cfg(debug_assertions)]
                {
                    let audit = s.mmu.audit();
                    debug_assert_eq!(snap, audit.snapshot, "sampler/audit divergence at {t:?}");
                }
                obs.metrics.stage_switch(
                    NodeId(i),
                    SwitchSample {
                        t,
                        shared: snap.shared,
                        headroom: snap.headroom + snap.insurance,
                        paused_queues: snap.paused_queues as u32,
                        paused_ports: snap.paused_ports as u32,
                    },
                );
            }
        }
        // Fluid links hold no MMU occupancy by construction (the hybrid
        // engine audits that separately); they contribute only their mode
        // here — never phantom bytes.
        let mut fluid_links = 0u64;
        let mut packet_links = 0u64;
        let mut paused_ports = 0u64;
        for (node, p, port) in self.all_ports() {
            let is_fluid = self.fluid.as_ref().is_some_and(|st| st.is_fluid(st.lid(node, p)));
            if is_fluid {
                fluid_links += 1;
            } else {
                packet_links += 1;
            }
            if port.port_paused() || (0..NUM_DATA_CLASSES as u8).any(|c| port.class_paused(c)) {
                paused_ports += 1;
            }
        }
        obs.metrics.stage_global(GlobalSample {
            t,
            fluid_links,
            packet_links,
            paused_ports,
            nacks_sent: self.nacks_sent,
            retransmitted_bytes: self.retransmitted_bytes,
            sr_retransmitted_bytes: self.sr_retransmitted_bytes,
            recovery_timeouts: self.recovery_timeouts,
        });
        self.observe = Some(obs);
    }
}

/// One blocked switch egress port (see [`Network::blocked_ports`]).
#[derive(Clone, Copy, Debug)]
pub struct BlockedPort {
    /// The switch.
    pub node: NodeId,
    /// Egress port index.
    pub port: usize,
    /// Instant since which the port has continuously been unable to serve
    /// queued data.
    pub since: Time,
    /// Whether a port-level (DSH) pause is asserted.
    pub port_paused: bool,
    /// Which data classes are queue-level paused.
    pub paused_classes: ClassMask,
    /// Bytes waiting across all its queues.
    pub queued_bytes: u64,
}

/// An inline bitmask over the data classes (replaces the former
/// `Vec<u8>` of paused class indices — no allocation per query).
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct ClassMask(u8);

impl ClassMask {
    fn paused_of(p: &EgressPort) -> Self {
        let mut mask = 0u8;
        for c in 0..NUM_DATA_CLASSES as u8 {
            if p.class_paused(c) {
                mask |= 1 << c;
            }
        }
        ClassMask(mask)
    }

    /// Whether `class` is in the set.
    #[must_use]
    pub fn contains(self, class: u8) -> bool {
        (class as usize) < NUM_DATA_CLASSES && self.0 & (1 << class) != 0
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The classes in the set, ascending.
    pub fn iter(self) -> impl Iterator<Item = u8> {
        (0..NUM_DATA_CLASSES as u8).filter(move |&c| self.0 & (1 << c) != 0)
    }
}

impl std::fmt::Debug for ClassMask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

// Hot-path size contracts: calendar entries and queue slots are memcpy'd
// constantly, so the large frame payload must stay behind a pointer.
dsh_simcore::const_assert_size!(NetEvent, 24);
dsh_simcore::const_assert_size!(QueuedFrame, 40);
// The boxed frame itself carries the inline HopList (HOP_CAPACITY × 32-byte
// TelemetryHop stamps); keep it cache-friendly. Raising HOP_CAPACITY moves
// this — recertify deliberately, don't just bump the number.
dsh_simcore::const_assert_size!(Frame, 352);

impl Model for Network {
    type Event = NetEvent;

    fn handle(&mut self, event: NetEvent, sched: &mut Scheduler<'_, NetEvent>) {
        // Stamp the flight-recorder clock once per event: trace points
        // below the dispatch (the MMU in particular) need no Time access.
        self.tracer.tick(sched.now());
        // Instant-closed metrics capture: the sample armed at `t` is taken
        // at the first event strictly after `t`, before that event runs —
        // the event *set* at instants `<= t` is engine-invariant even
        // though the intra-instant order is not. `metrics_capture_at` is
        // `Time::MAX` unless a tick armed it, so the masked-off cost is
        // this one compare-branch. (The chased same-instant `TxDone`
        // below bypasses this entry, which is safe: it shares the instant
        // of the `Arrive` that already ran the check.)
        if sched.now() > self.metrics_capture_at {
            self.capture_metrics();
        }
        // Events carry compact u32 indices (see `NetEvent`); widen them
        // back into the typed ids the rest of the model uses.
        match event {
            NetEvent::Arrive { node, in_port, frame } => {
                let node = NodeId(node as usize);
                let in_port = in_port as usize;
                // In-flight frames cannot be retracted from the calendar,
                // so link cuts (and corruption draws) take effect here, at
                // delivery time.
                if self.arrival_lost(node, in_port, &frame) {
                    self.link_drops += 1;
                    self.pool.put(frame);
                    return;
                }
                if matches!(self.nodes[node.0], Node::Switch(_)) {
                    self.switch_arrive(node, in_port, frame, sched);
                } else {
                    self.host_arrive(node, in_port, frame, sched);
                }
                // The profiled hot pair: in a saturated store-and-forward
                // pipeline the next frame lands exactly as the previous
                // one finishes serializing, so an `Arrive` is chased by a
                // same-instant `TxDone` on the same node. When that
                // `TxDone` is genuinely next in the calendar, dispatch it
                // inline and save a pop/dispatch round trip — it was next
                // anyway, so the event order (and every golden) is
                // unchanged.
                let chased = sched.take_next_if(
                    |e| matches!(e, NetEvent::TxDone { node: n, .. } if *n as usize == node.0),
                );
                if let Some(e) = chased {
                    let NetEvent::TxDone { node, port } = e else {
                        unreachable!("predicate admits only TxDone")
                    };
                    self.handle_tx_done(NodeId(node as usize), port as usize, sched);
                }
            }
            NetEvent::TxDone { node, port } => {
                self.handle_tx_done(NodeId(node as usize), port as usize, sched);
            }
            NetEvent::ApplyPause { node, port, scope, pause, gen } => {
                self.handle_apply_pause(
                    NodeId(node as usize),
                    port as usize,
                    scope,
                    pause,
                    gen,
                    sched,
                );
            }
            NetEvent::FlowStart { flow } => self.handle_flow_start(FlowId(flow as usize), sched),
            NetEvent::HostWake { host } => {
                let host = NodeId(host as usize);
                self.host_mut(host).wake_at = Time::MAX;
                self.host_try_send(host, sched);
            }
            NetEvent::CcTimer { host, flow, gen } => {
                self.handle_cc_timer(NodeId(host as usize), FlowId(flow as usize), gen, sched);
            }
            NetEvent::RtoTimer { host, flow, gen } => {
                self.handle_rto_timer(NodeId(host as usize), FlowId(flow as usize), gen, sched);
            }
            NetEvent::Fault { index } => self.handle_fault(index as usize, sched),
            NetEvent::Sample => self.handle_sample(sched),
            NetEvent::MetricsTick => self.handle_metrics_tick(sched),
            NetEvent::FluidAdvance { gen } => self.handle_fluid_advance(gen, sched),
        }
    }
}

/// Classification for [`Simulation::run_until_profiled`]: one class per
/// [`NetEvent`] variant, in declaration order.
impl EventClass for NetEvent {
    const NAMES: &'static [&'static str] = &[
        "arrive",
        "tx_done",
        "apply_pause",
        "flow_start",
        "host_wake",
        "cc_timer",
        "rto_timer",
        "fault",
        "sample",
        "metrics_tick",
        "fluid_advance",
    ];

    fn class(&self) -> usize {
        match self {
            NetEvent::Arrive { .. } => 0,
            NetEvent::TxDone { .. } => 1,
            NetEvent::ApplyPause { .. } => 2,
            NetEvent::FlowStart { .. } => 3,
            NetEvent::HostWake { .. } => 4,
            NetEvent::CcTimer { .. } => 5,
            NetEvent::RtoTimer { .. } => 6,
            NetEvent::Fault { .. } => 7,
            NetEvent::Sample => 8,
            NetEvent::MetricsTick => 9,
            NetEvent::FluidAdvance { .. } => 10,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use dsh_core::Scheme;
    use dsh_simcore::{Bandwidth, Delta};

    fn two_hosts_one_switch(scheme: Scheme) -> (Network, NodeId, NodeId) {
        let mut b = NetworkBuilder::new(NetParams::tomahawk(scheme).without_ecn());
        let h0 = b.host();
        let h1 = b.host();
        let s = b.switch();
        b.link(h0, s, Bandwidth::from_gbps(100), Delta::from_us(2));
        b.link(h1, s, Bandwidth::from_gbps(100), Delta::from_us(2));
        (b.build(), h0, h1)
    }

    /// A linear chain of `depth` switches between two hosts.
    fn switch_chain(depth: usize) -> NetworkBuilder {
        let mut b = NetworkBuilder::new(NetParams::tomahawk(Scheme::Dsh).without_ecn());
        let h0 = b.host();
        let h1 = b.host();
        let switches: Vec<NodeId> = (0..depth).map(|_| b.switch()).collect();
        b.link(h0, switches[0], Bandwidth::from_gbps(100), Delta::from_us(2));
        for w in switches.windows(2) {
            b.link(w[0], w[1], Bandwidth::from_gbps(100), Delta::from_us(2));
        }
        b.link(switches[depth - 1], h1, Bandwidth::from_gbps(100), Delta::from_us(2));
        b
    }

    #[test]
    fn build_accepts_a_path_at_the_hop_capacity() {
        let _ = switch_chain(dsh_transport::HOP_CAPACITY).build();
    }

    #[test]
    #[should_panic(expected = "HOP_CAPACITY")]
    fn build_rejects_a_path_deeper_than_the_hop_capacity() {
        let _ = switch_chain(dsh_transport::HOP_CAPACITY + 1).build();
    }

    #[test]
    fn single_flow_fct_matches_hand_calculation() {
        let (mut net, h0, h1) = two_hosts_one_switch(Scheme::Dsh);
        // One MTU of payload.
        let f = net.add_flow(FlowSpec {
            src: h0,
            dst: h1,
            size: 1500,
            class: 0,
            start: Time::ZERO,
            cc: CcKind::Uncontrolled,
        });
        let mut sim = net.into_sim();
        sim.run_until(Time::from_ms(1));
        let net = sim.into_model();
        let rec = net.fct_records()[0];
        assert_eq!(rec.flow, f);
        // Store-and-forward: 2 serializations (120 ns each) + 2
        // propagations (2 us each) = 4.24 us.
        let expect = Delta::from_ns(2 * 120 + 2 * 2_000);
        assert_eq!(rec.fct(), expect, "got {}", rec.fct());
    }

    #[test]
    fn flow_rx_bytes_and_monitor_series() {
        let (mut net, h0, h1) = two_hosts_one_switch(Scheme::Dsh);
        let f = net.add_flow(FlowSpec {
            src: h0,
            dst: h1,
            size: 3_000_000,
            class: 2,
            start: Time::ZERO,
            cc: CcKind::Uncontrolled,
        });
        net.monitor_flow(f);
        let mut sim = net.into_sim();
        sim.run_until(Time::from_us(100));
        let net = sim.model();
        assert!(net.flow_rx_bytes(f) > 0);
        let series = net.flow_throughput(f);
        assert!(!series.is_empty());
        // Steady-state samples run at ~line rate.
        let peak = series.iter().map(|s| s.gbps).fold(0.0, f64::max);
        assert!(peak > 90.0, "peak {peak} Gb/s");
    }

    #[test]
    fn flows_on_different_classes_share_via_dwrr() {
        let (mut net, h0, h1) = two_hosts_one_switch(Scheme::Dsh);
        let a = net.add_flow(FlowSpec {
            src: h0,
            dst: h1,
            size: 2_000_000,
            class: 0,
            start: Time::ZERO,
            cc: CcKind::Uncontrolled,
        });
        let b = net.add_flow(FlowSpec {
            src: h0,
            dst: h1,
            size: 2_000_000,
            class: 1,
            start: Time::ZERO,
            cc: CcKind::Uncontrolled,
        });
        let mut sim = net.into_sim();
        sim.run_until(Time::from_us(120));
        let net = sim.model();
        let ra = net.flow_rx_bytes(a) as f64;
        let rb = net.flow_rx_bytes(b) as f64;
        assert!(ra > 0.0 && rb > 0.0);
        let ratio = ra / rb;
        assert!((0.8..1.25).contains(&ratio), "DWRR share skewed: {ratio}");
    }

    #[test]
    fn telemetry_report_covers_switches_and_roundtrips_json() {
        let (mut net, h0, h1) = two_hosts_one_switch(Scheme::Dsh);
        net.add_flow(FlowSpec {
            src: h0,
            dst: h1,
            size: 500_000,
            class: 0,
            start: Time::ZERO,
            cc: CcKind::Uncontrolled,
        });
        let mut sim = net.into_sim();
        sim.run_until(Time::from_ms(1));
        let end = sim.now();
        let net = sim.into_model();
        let report = net.telemetry_report(end);
        assert_eq!(report.switches.len(), 1);
        assert_eq!(report.ports.len(), 4, "2 host uplinks + 2 switch ports");
        let sw = &report.switches[0];
        assert!(sw.audit.is_clean(), "{}", sw.audit);
        assert!(sw.stats.admitted_packets > 0);
        assert!(!sw.occupancy.is_empty(), "occupancy series must be sampled");
        assert!(sw.occupancy.iter().any(|p| p.bytes > 0));
        assert!(report.lossless_violations().is_empty());
        // The JSON export survives a print/parse round trip.
        let j = report.to_json();
        let parsed = dsh_simcore::Json::parse(&j.to_string()).unwrap();
        assert_eq!(parsed, j);
        assert_eq!(parsed.get("data_drops").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn audit_all_names_each_switch() {
        let (net, _, _) = two_hosts_one_switch(Scheme::Sih);
        let audits = net.audit_all();
        assert_eq!(audits.len(), 1);
        assert_eq!(audits[0].0, NodeId(2));
        assert!(audits[0].1.is_clean());
    }

    #[test]
    fn pause_ledgers_report_all_ports() {
        let (net, _, _) = two_hosts_one_switch(Scheme::Sih);
        let ledgers: Vec<_> = net.pause_ledgers(Time::ZERO).collect();
        // 2 host uplinks + 2 switch ports.
        assert_eq!(ledgers.len(), 4);
        assert!(ledgers.iter().all(|l| l.total() == Delta::ZERO));
    }

    #[test]
    #[should_panic(expected = "class must be 0..7")]
    fn control_class_flows_are_rejected() {
        let (mut net, h0, h1) = two_hosts_one_switch(Scheme::Dsh);
        net.add_flow(FlowSpec {
            src: h0,
            dst: h1,
            size: 100,
            class: 7,
            start: Time::ZERO,
            cc: CcKind::Uncontrolled,
        });
    }

    #[test]
    #[should_panic(expected = "src must be a host")]
    fn switch_sources_are_rejected() {
        let (mut net, _, h1) = two_hosts_one_switch(Scheme::Dsh);
        net.add_flow(FlowSpec {
            src: NodeId(2),
            dst: h1,
            size: 100,
            class: 0,
            start: Time::ZERO,
            cc: CcKind::Uncontrolled,
        });
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let run = || {
            let (mut net, h0, h1) = two_hosts_one_switch(Scheme::Sih);
            for i in 0..4 {
                net.add_flow(FlowSpec {
                    src: if i % 2 == 0 { h0 } else { h1 },
                    dst: if i % 2 == 0 { h1 } else { h0 },
                    size: 100_000 + i * 7_777,
                    class: (i % 3) as u8,
                    start: Time::from_us(i),
                    cc: CcKind::Dcqcn,
                });
            }
            let mut sim = net.into_sim();
            sim.run_until(Time::from_ms(5));
            let net = sim.into_model();
            net.fct_records().iter().map(|r| (r.flow, r.finish)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run(), "simulation must be deterministic");
    }

    #[test]
    fn ack_clocking_completes_windowed_flows() {
        // PowerTCP is window-limited; without working ACKs it would stall.
        let (mut net, h0, h1) = two_hosts_one_switch(Scheme::Dsh);
        net.add_flow(FlowSpec {
            src: h0,
            dst: h1,
            size: 1_000_000,
            class: 0,
            start: Time::ZERO,
            cc: CcKind::PowerTcp,
        });
        let mut sim = net.into_sim();
        sim.run_until(Time::from_ms(5));
        let net = sim.into_model();
        assert_eq!(net.fct_records().len(), 1);
        assert_eq!(net.data_drops(), 0);
    }

    // ---- hybrid fidelity (fluid fast path) --------------------------------

    fn hybrid_params() -> NetParams {
        NetParams::tomahawk(Scheme::Dsh).without_ecn().with_fidelity(FidelityMode::hybrid_default())
    }

    fn two_hosts_one_switch_hybrid() -> (Network, NodeId, NodeId) {
        let mut b = NetworkBuilder::new(hybrid_params());
        let h0 = b.host();
        let h1 = b.host();
        let s = b.switch();
        b.link(h0, s, Bandwidth::from_gbps(100), Delta::from_us(2));
        b.link(h1, s, Bandwidth::from_gbps(100), Delta::from_us(2));
        (b.build(), h0, h1)
    }

    /// Two senders and one receiver behind one switch: the receiver's
    /// downlink is the contended resource.
    fn incast_pair_hybrid() -> (Network, NodeId, NodeId, NodeId) {
        let mut b = NetworkBuilder::new(hybrid_params().with_default_recovery());
        let h0 = b.host();
        let h1 = b.host();
        let dst = b.host();
        let s = b.switch();
        for h in [h0, h1, dst] {
            b.link(h, s, Bandwidth::from_gbps(100), Delta::from_us(2));
        }
        (b.build(), h0, h1, dst)
    }

    #[test]
    fn fluid_solo_flow_fct_matches_packet_hand_calculation() {
        // The analytic pipe model (store-and-forward serialization of the
        // last segment per switch hop + propagation) must land a solo
        // uncontended flow on exactly the packet engine's FCT.
        let (mut net, h0, h1) = two_hosts_one_switch_hybrid();
        net.add_flow(FlowSpec {
            src: h0,
            dst: h1,
            size: 1500,
            class: 0,
            start: Time::ZERO,
            cc: CcKind::Uncontrolled,
        });
        let mut sim = net.into_sim();
        sim.run_until(Time::from_ms(1));
        let net = sim.into_model();
        let rec = net.fct_records()[0];
        assert_eq!(rec.fct(), Delta::from_ns(2 * 120 + 2 * 2_000), "got {}", rec.fct());
        let stats = net.fidelity_stats().expect("hybrid run must carry fluid stats");
        assert_eq!(stats.fluid_flows, 1);
        assert_eq!(stats.fluid_completions, 1);
        assert_eq!(stats.materializations, 0);
        assert_eq!(stats.fluid_bytes, 1500);
        assert_eq!(net.packet_rx_bytes(), 0, "no packets may move for a fluid-only run");
    }

    #[test]
    fn fluid_larger_flow_also_matches_packet_fct() {
        for size in [1_000u64, 150_000, 3_000_000] {
            let fct_of = |fidelity: FidelityMode| {
                let mut b = NetworkBuilder::new(
                    NetParams::tomahawk(Scheme::Dsh).without_ecn().with_fidelity(fidelity),
                );
                let h0 = b.host();
                let h1 = b.host();
                let s = b.switch();
                b.link(h0, s, Bandwidth::from_gbps(100), Delta::from_us(2));
                b.link(h1, s, Bandwidth::from_gbps(100), Delta::from_us(2));
                let mut net = b.build();
                net.add_flow(FlowSpec {
                    src: h0,
                    dst: h1,
                    size,
                    class: 0,
                    start: Time::ZERO,
                    cc: CcKind::Uncontrolled,
                });
                let mut sim = net.into_sim();
                sim.run_until(Time::from_ms(10));
                sim.into_model().fct_records()[0].fct()
            };
            let packet = fct_of(FidelityMode::Packet);
            let fluid = fct_of(FidelityMode::hybrid_default());
            assert_eq!(packet, fluid, "size {size}: packet {packet} vs fluid {fluid}");
        }
    }

    #[test]
    fn hybrid_threshold_zero_is_packet_identical() {
        // util_threshold = 0 blocks every fluid admission at flow start, so
        // the hybrid engine must reproduce the packet engine exactly.
        let run = |fidelity: FidelityMode| {
            let mut b =
                NetworkBuilder::new(NetParams::tomahawk(Scheme::Dsh).with_fidelity(fidelity));
            let h0 = b.host();
            let h1 = b.host();
            let s = b.switch();
            b.link(h0, s, Bandwidth::from_gbps(100), Delta::from_us(2));
            b.link(h1, s, Bandwidth::from_gbps(100), Delta::from_us(2));
            let mut net = b.build();
            for (i, size) in [40_000u64, 900_000, 2_500].into_iter().enumerate() {
                net.add_flow(FlowSpec {
                    src: if i % 2 == 0 { h0 } else { h1 },
                    dst: if i % 2 == 0 { h1 } else { h0 },
                    size,
                    class: (i % 2) as u8,
                    start: Time::from_us(i as u64 * 3),
                    cc: CcKind::Dcqcn,
                });
            }
            let mut sim = net.into_sim();
            sim.run_until(Time::from_ms(5));
            let net = sim.into_model();
            net.fct_records().iter().map(|r| (r.flow, r.finish)).collect::<Vec<_>>()
        };
        let packet = run(FidelityMode::Packet);
        let zero = run(FidelityMode::Hybrid { util_threshold: 0.0, quiesce: Delta::from_us(100) });
        assert_eq!(packet.len(), 3);
        assert_eq!(packet, zero, "threshold-0 hybrid must be packet-identical");
    }

    #[test]
    fn escalation_hands_off_mid_flight_and_conserves_bytes() {
        // Flow 0 cruises fluid; flow 1 starts 20 µs later and over-offers
        // the shared downlink, forcing an escalation that materializes
        // flow 0 mid-flight. Every payload byte must be delivered exactly
        // once, split between analytic credits and real packets.
        let (mut net, h0, h1, dst) = incast_pair_hybrid();
        let sizes = [2_000_000u64, 2_000_000];
        net.add_flow(FlowSpec {
            src: h0,
            dst,
            size: sizes[0],
            class: 0,
            start: Time::ZERO,
            cc: CcKind::Uncontrolled,
        });
        net.add_flow(FlowSpec {
            src: h1,
            dst,
            size: sizes[1],
            class: 0,
            start: Time::from_us(20),
            cc: CcKind::Uncontrolled,
        });
        let mut sim = net.into_sim();
        sim.run_until(Time::from_ms(20));
        let net = sim.into_model();
        assert_eq!(net.fct_records().len(), 2, "both flows must complete");
        let stats = net.fidelity_stats().unwrap();
        assert_eq!(stats.fluid_flows, 1, "flow 0 admitted, flow 1 blocked at start");
        assert_eq!(stats.materializations, 1, "flow 0 must hand off mid-flight");
        assert!(stats.escalations > 0);
        assert!(
            stats.fluid_bytes > 0 && stats.fluid_bytes < sizes[0],
            "handoff must split flow 0: {} fluid bytes",
            stats.fluid_bytes
        );
        // Byte conservation across the handoff.
        assert_eq!(
            stats.fluid_bytes + net.packet_rx_bytes(),
            sizes.iter().sum::<u64>(),
            "fluid credits + packet deliveries must cover the offered bytes exactly"
        );
        assert_eq!(net.data_drops(), 0);
    }

    #[test]
    fn fault_on_fluid_link_escalates_before_link_down() {
        // A flap on the path of a fluid flow must drag it to the packet
        // engine (where loss recovery exists) rather than letting analytic
        // credits sail through a dead link.
        let (mut net, h0, h1, dst) = incast_pair_hybrid();
        let s = NodeId(3);
        net.add_flow(FlowSpec {
            src: h0,
            dst,
            size: 3_000_000,
            class: 0,
            start: Time::ZERO,
            cc: CcKind::Uncontrolled,
        });
        let _ = h1;
        net.set_fault_plan(crate::fault::FaultPlan::new(11).flap(
            s,
            dst,
            Time::from_us(10),
            Time::from_us(60),
        ));
        let mut sim = net.into_sim();
        sim.run_until(Time::from_ms(50));
        let net = sim.into_model();
        let stats = net.fidelity_stats().unwrap();
        assert_eq!(stats.materializations, 1, "flap must force a mid-flight handoff");
        assert!(stats.escalations >= 2, "both directions of the flapped link escalate");
        assert_eq!(net.fct_records().len(), 1, "flow must survive the flap via recovery");
        assert!(!net.flow_failed(FlowId(0)));
    }

    #[test]
    fn quiescent_links_deescalate_back_to_fluid() {
        let (mut net, h0, h1, dst) = incast_pair_hybrid();
        // Two same-instant senders: flow 1's admission is blocked, the
        // downlink escalates, both run as packets and finish quickly.
        for src in [h0, h1] {
            net.add_flow(FlowSpec {
                src,
                dst,
                size: 100_000,
                class: 0,
                start: Time::ZERO,
                cc: CcKind::Uncontrolled,
            });
        }
        let mut sim = net.into_sim();
        // Generous horizon: completion ≈ 20 µs, quiesce 100 µs, sampled
        // every 10 µs.
        sim.run_until(Time::from_ms(2));
        let net = sim.into_model();
        let stats = net.fidelity_stats().unwrap();
        assert!(stats.escalations > 0);
        assert!(
            stats.deescalations >= stats.escalations,
            "idle links must return to fluid: {} escalations, {} de-escalations",
            stats.escalations,
            stats.deescalations
        );
    }

    #[test]
    fn hybrid_telemetry_reports_fidelity_section() {
        let (mut net, h0, h1) = two_hosts_one_switch_hybrid();
        net.add_flow(FlowSpec {
            src: h0,
            dst: h1,
            size: 50_000,
            class: 0,
            start: Time::ZERO,
            cc: CcKind::Uncontrolled,
        });
        let mut sim = net.into_sim();
        sim.run_until(Time::from_ms(1));
        let end = sim.now();
        let net = sim.into_model();
        let report = net.telemetry_report(end);
        let fid = report.to_json().get("fidelity").cloned().expect("hybrid must report fidelity");
        assert_eq!(fid.get("mode").and_then(|m| m.as_str()), Some("hybrid"));
        let flows = fid.get("stats").and_then(|s| s.get("fluid_flows")).and_then(|v| v.as_u64());
        assert_eq!(flows, Some(1));
        assert!(report.provenance.get("fidelity").is_some(), "provenance must name the mode");
    }
}
