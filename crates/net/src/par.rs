//! Intra-run parallel simulation: link-partitioned conservative DES.
//!
//! A single simulation is parallelized by cutting the topology at link
//! boundaries: every partition owns a contiguous block of switches (plus
//! their attached hosts), its own event calendar, frame pool, and RNG
//! stream, and the *wire propagation delay* of the cut links is the
//! guaranteed lookahead — a frame departing one partition can never
//! affect another sooner than the shortest cut-link flight time, so
//! partitions may safely advance `lookahead` ahead of each other without
//! any rollback machinery (classic conservative PDES, after
//! Chandy–Misra–Bryant).
//!
//! # Window protocol
//!
//! The run advances in half-open windows `[floor, stop)` with
//! `stop = min(floor + lookahead, next fault instant, deadline)`:
//!
//! 1. every worker first drains its partitions' staged inboxes into
//!    their calendars, then runs the calendars strictly before `stop`
//!    (behind a [`Lockstep`] barrier),
//! 2. the coordinator *stages* cross-partition outboxes into the
//!    destination partitions' inboxes — iterating partitions in id order
//!    and each outbox in push order, so staging sequence is a pure
//!    function of the partition layout, never of worker count or thread
//!    timing. Staging is an `append`, one lock per destination: the
//!    O(log n) calendar insertions are deferred to the owning workers at
//!    the next window open, off the coordinator's critical path,
//! 3. link faults scheduled exactly at `stop` execute on the owning
//!    partitions (after a coordinator-side inbox drain, so fault handlers
//!    see the same calendar a serial run would), followed by a global
//!    route recompute,
//! 4. `floor = stop`.
//!
//! A final inclusive pass per partition handles events at exactly the
//! deadline (their cross-partition effects land strictly later and are
//! kept for a subsequent `run_until`, mirroring a serial calendar's
//! unprocessed tail).
//!
//! # Determinism
//!
//! The partition layout is a pure function of the topology (never of the
//! worker count), workers execute a static partition schedule, and all
//! cross-partition merging happens on the coordinator in fixed order —
//! so results are bit-identical at any worker count. See DESIGN.md §13
//! for the full argument and its documented edge cases (global-RNG ECN
//! draws and exactly-simultaneous cross-partition arrivals at one node
//! follow per-partition order rather than the serial engine's).

use crate::fault::FaultKind;
use crate::frame::Frame;
use crate::ids::{FlowId, NodeId};
use crate::network::{NetEvent, Network, Node};
use crate::routing;
use dsh_simcore::window::Lockstep;
use dsh_simcore::{Delta, Simulation, Time};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Hard cap on partitions: beyond this, barrier and merge overhead beats
/// the extra parallelism for every topology we simulate.
pub const MAX_PARTITIONS: usize = 8;

/// Window size used when the plan has no cut links (single partition):
/// windows then only pace fault execution, so a generous fixed stride is
/// fine.
const SOLO_WINDOW: Delta = Delta::from_us(100);

/// Free frame boxes pre-allocated per partition at construction. A
/// partition can only recycle boxes its own events freed (plus the
/// coordinator's per-frame refunds), so without a pre-warmed pool its
/// circulating population converges over many windows — allocating on the
/// hot path the whole while.
const PART_POOL_PREWARM: usize = 4096;

/// A node → partition assignment with its guaranteed lookahead.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionPlan {
    owner: Vec<u32>,
    parts: usize,
    lookahead: Delta,
}

impl PartitionPlan {
    /// Partition id owning each node, indexed by node id.
    #[must_use]
    pub fn owner(&self) -> &[u32] {
        &self.owner
    }

    /// Number of partitions.
    #[must_use]
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// The conservative lookahead: the minimum propagation delay over all
    /// cut links (or a fixed stride when nothing is cut).
    #[must_use]
    pub fn lookahead(&self) -> Delta {
        self.lookahead
    }
}

/// Why a topology could not be partitioned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PartitionError {
    /// A link on the partition boundary has zero propagation delay, so
    /// the conservative lookahead would be zero and no partition could
    /// ever advance. Merge the endpoints into one partition or give the
    /// link a real wire delay.
    ZeroDelayCut {
        /// One endpoint of the offending link.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::ZeroDelayCut { a, b } => write!(
                f,
                "cannot partition across link {a}-{b}: zero propagation delay \
                 means zero lookahead (give the link a wire delay or keep both \
                 endpoints in one partition)"
            ),
        }
    }
}

impl std::error::Error for PartitionError {}

/// Computes a partition plan for `net`: switches (weighted by their
/// attached hosts) are packed in id order into at most `max_parts`
/// contiguous, non-empty, load-balanced blocks; every host joins its
/// switch's block, so only switch–switch links are ever cut.
///
/// The plan depends on the topology alone — never on worker count — which
/// is what keeps partitioned runs bit-identical at any parallelism.
///
/// # Errors
///
/// Fails with [`PartitionError::ZeroDelayCut`] if a cut link has no
/// propagation delay (zero lookahead).
pub fn partition(net: &Network, max_parts: usize) -> Result<PartitionPlan, PartitionError> {
    let n = net.nodes.len();
    let mut uplink = vec![usize::MAX; n];
    let mut weight = vec![1usize; n];
    let mut switches = Vec::new();
    for (i, node) in net.nodes.iter().enumerate() {
        match node {
            Node::Switch(_) => switches.push(i),
            Node::Host(h) => {
                if let Some(p) = h.port.as_ref() {
                    uplink[i] = p.peer.0;
                    weight[p.peer.0] += 1;
                }
            }
            Node::Absent => unreachable!("cannot partition an already-split network"),
        }
    }
    let parts = max_parts.clamp(1, switches.len().max(1));
    let total: usize = switches.iter().map(|&s| weight[s]).sum();
    let mut owner = vec![0u32; n];
    let mut block = 0usize;
    let mut filled = 0usize;
    for (idx, &s) in switches.iter().enumerate() {
        let switches_left = switches.len() - idx;
        let blocks_left = parts - block;
        // Close the block once it carries its proportional share — or
        // when the remaining switches are only just enough to keep every
        // remaining block non-empty. The reserve check is `<=`, not `==`:
        // a proportional close consumes a block and a switch in the same
        // step, so the counts can cross without ever being equal.
        if block + 1 < parts
            && filled > 0
            && (filled * parts >= total * (block + 1) || switches_left <= blocks_left)
        {
            block += 1;
            filled = 0;
        }
        owner[s] = block as u32;
        filled += weight[s];
    }
    for i in 0..n {
        if uplink[i] != usize::MAX {
            owner[i] = owner[uplink[i]];
        }
    }
    // Lookahead: the minimum propagation delay over the cut. A zero-delay
    // cut link is a hard error — the window size would be zero.
    let mut lookahead: Option<Delta> = None;
    for (node, _, port) in net.all_ports() {
        if owner[node.0] != owner[port.peer.0] {
            if port.prop_delay == Delta::ZERO {
                return Err(PartitionError::ZeroDelayCut { a: node, b: port.peer });
            }
            lookahead = Some(lookahead.map_or(port.prop_delay, |l| l.min(port.prop_delay)));
        }
    }
    Ok(PartitionPlan { owner, parts, lookahead: lookahead.unwrap_or(SOLO_WINDOW) })
}

/// Locks a partition, riding through poison: the coordinator checks the
/// recorded worker panic before trusting any partition state, so a
/// poisoned mutex here only means that panic is already being propagated.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// A network split for parallel execution: one [`Simulation`] per
/// partition plus the windowed driver state.
///
/// Use [`ParallelSim::run_until`] as a drop-in for the serial
/// [`Simulation::run_until`], or [`ParallelSim::session`] to keep the
/// worker threads alive across several phases (benchmarks measuring
/// allocation-free steady state want warmup and measurement inside one
/// session).
#[derive(Debug)]
pub struct ParallelSim {
    parts: Vec<Mutex<Simulation<Network>>>,
    plan: PartitionPlan,
    workers: usize,
    floor: Time,
    faults: Vec<(Time, FaultKind)>,
    next_fault: usize,
    scratch: Vec<(Time, NetEvent)>,
    #[allow(clippy::vec_box)] // boxes are the recycled resource (see Pool::lend)
    #[allow(clippy::vec_box)] // boxes are the recycled resource (see Pool::lend)
    frame_scratch: Vec<Box<Frame>>,
    inbox_scratch: Vec<Vec<(Time, NetEvent)>>,
}

/// Moves a partition's staged cross-partition arrivals into its calendar,
/// preserving the coordinator's (source partition id, push order) staging
/// order. Runs on the owning worker at window open — and on the
/// coordinator at fault barriers and the inclusive tail, where the
/// calendar must be current before partition code executes.
fn drain_inbox(sim: &mut Simulation<Network>) {
    if sim.model().inbox.is_empty() {
        return;
    }
    let mut staged = std::mem::take(&mut sim.model_mut().inbox);
    for (t, ev) in staged.drain(..) {
        sim.schedule(t, ev);
    }
    sim.model_mut().inbox = staged; // keep the buffer's capacity
}

impl ParallelSim {
    /// Splits `net` into at most [`MAX_PARTITIONS`] partitions and
    /// prepares a windowed run on `workers` threads (clamped to the
    /// partition count; the partition *layout* never depends on it).
    ///
    /// # Errors
    ///
    /// Fails if the topology cannot be partitioned (see [`partition`]).
    pub fn new(net: Network, workers: usize) -> Result<ParallelSim, PartitionError> {
        let plan = partition(&net, MAX_PARTITIONS)?;
        Ok(ParallelSim::with_plan(net, plan, workers))
    }

    /// Like [`ParallelSim::new`] with an explicit plan (tests use this to
    /// force specific cuts).
    ///
    /// # Panics
    ///
    /// Panics if the plan's owner map does not cover the network's nodes.
    #[must_use]
    pub fn with_plan(net: Network, plan: PartitionPlan, workers: usize) -> ParallelSim {
        let faults = {
            let mut f = net.fault_schedule();
            f.sort_by_key(|&(t, _)| t); // stable: same-instant faults keep plan order
            f
        };
        let sample = net.params.sample_interval;
        let metrics = net.params.observe.map(|o| o.metrics_interval);
        let starts: Vec<(Time, u32, u32)> = (0..net.flow_count())
            .map(|i| {
                let s = net.flow_spec(FlowId(i));
                (s.start, i as u32, plan.owner[s.src.0])
            })
            .collect();
        let nets = net.split(&plan.owner, plan.parts as u32);
        let parts: Vec<Mutex<Simulation<Network>>> = nets
            .into_iter()
            .enumerate()
            .map(|(k, part)| {
                let mut sim = Simulation::new(part);
                sim.model_mut().prewarm_frame_pool(PART_POOL_PREWARM);
                // Setup events in the serial calendar's order: flow starts
                // (in flow-id order) first, the sampling tick last, so
                // same-instant ties resolve exactly like `into_sim`.
                for &(t, flow, owner) in &starts {
                    if owner == k as u32 {
                        sim.schedule(t, NetEvent::FlowStart { flow });
                    }
                }
                sim.schedule(Time::ZERO + sample, NetEvent::Sample);
                // Metrics tick after Sample, matching `into_sim`: every
                // partition ticks at identical instants, which is what
                // keeps merged metric rings index-aligned.
                if let Some(mi) = metrics {
                    sim.schedule(Time::ZERO + mi, NetEvent::MetricsTick);
                }
                Mutex::new(sim)
            })
            .collect();
        let workers = workers.clamp(1, plan.parts);
        let parts_n = parts.len();
        ParallelSim {
            parts,
            plan,
            workers,
            floor: Time::ZERO,
            faults,
            next_fault: 0,
            scratch: Vec::new(),
            frame_scratch: Vec::new(),
            inbox_scratch: vec![Vec::new(); parts_n],
        }
    }

    /// The partition plan in force.
    #[must_use]
    pub fn plan(&self) -> &PartitionPlan {
        &self.plan
    }

    /// Worker thread count (≤ partition count).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The window floor: every event strictly before this instant has
    /// been processed.
    #[must_use]
    pub fn now(&self) -> Time {
        self.floor
    }

    /// Total events processed across all partitions.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.parts.iter().map(|p| lock(p).events_processed()).sum()
    }

    /// Runs all partitions up to and including `deadline` (one worker
    /// session; see [`ParallelSim::session`] for multi-phase runs).
    pub fn run_until(&mut self, deadline: Time) {
        self.session(|run| run.run_until(deadline));
    }

    /// Spawns the worker threads once and hands `f` a [`ParallelRun`]
    /// driver; the threads live for the whole closure, so several
    /// `run_until` phases share one thread fleet (and the measured phase
    /// of an allocation-counting benchmark spawns nothing).
    pub fn session<R>(&mut self, f: impl FnOnce(&mut ParallelRun<'_>) -> R) -> R {
        let ParallelSim {
            parts,
            plan,
            workers,
            floor,
            faults,
            next_fault,
            scratch,
            frame_scratch,
            inbox_scratch,
        } = self;
        let parts: &[Mutex<Simulation<Network>>] = parts;
        let ls = Lockstep::new(*workers);
        let worker_panic: Mutex<Option<PanicPayload>> = Mutex::new(None);
        let workers_n = *workers;
        let result = std::thread::scope(|scope| {
            for w in 0..workers_n {
                let ls = &ls;
                let worker_panic = &worker_panic;
                scope.spawn(move || {
                    // After a panic the worker keeps answering the barrier
                    // protocol (doing no work) so the coordinator can shut
                    // the session down and re-raise the payload instead of
                    // deadlocking at a half-attended barrier.
                    let mut dead = false;
                    while let Some(stop) = ls.next_window() {
                        if !dead {
                            let ran = catch_unwind(AssertUnwindSafe(|| {
                                let mut i = w;
                                while i < parts.len() {
                                    let mut sim = lock(&parts[i]);
                                    drain_inbox(&mut sim);
                                    sim.run_before(stop);
                                    drop(sim);
                                    i += workers_n;
                                }
                            }));
                            if let Err(payload) = ran {
                                dead = true;
                                let mut slot = lock(worker_panic);
                                slot.get_or_insert(payload);
                            }
                        }
                        ls.window_done();
                    }
                });
            }
            let mut run = ParallelRun {
                parts,
                plan,
                ls: &ls,
                floor,
                faults,
                next_fault,
                scratch,
                frame_scratch,
                inbox_scratch,
                worker_panic: &worker_panic,
            };
            let out = catch_unwind(AssertUnwindSafe(|| f(&mut run)));
            ls.shut_down();
            out
        });
        if let Some(payload) = lock(&worker_panic).take() {
            resume_unwind(payload);
        }
        match result {
            Ok(r) => r,
            Err(payload) => resume_unwind(payload),
        }
    }

    /// Merges the partitions back into one [`Network`] for measurement.
    /// Cross-partition frames still in flight past the last deadline are
    /// discarded, exactly like the unprocessed tail of a serial calendar.
    #[must_use]
    pub fn into_network(self) -> Network {
        let mut nets = self
            .parts
            .into_iter()
            .map(|m| m.into_inner().unwrap_or_else(PoisonError::into_inner).into_model());
        let mut merged = nets.next().expect("at least one partition");
        merged.outbox.clear();
        merged.inbox.clear();
        for mut other in nets {
            other.outbox.clear();
            other.inbox.clear();
            merged.absorb(other);
        }
        merged.finish_merge();
        merged
    }
}

/// The coordinator handle inside a [`ParallelSim::session`].
#[derive(Debug)]
pub struct ParallelRun<'a> {
    parts: &'a [Mutex<Simulation<Network>>],
    plan: &'a PartitionPlan,
    ls: &'a Lockstep,
    floor: &'a mut Time,
    faults: &'a [(Time, FaultKind)],
    next_fault: &'a mut usize,
    scratch: &'a mut Vec<(Time, NetEvent)>,
    #[allow(clippy::vec_box)] // boxes are the recycled resource (see Pool::lend)
    #[allow(clippy::vec_box)] // boxes are the recycled resource (see Pool::lend)
    frame_scratch: &'a mut Vec<Box<Frame>>,
    inbox_scratch: &'a mut Vec<Vec<(Time, NetEvent)>>,
    worker_panic: &'a Mutex<Option<PanicPayload>>,
}

impl ParallelRun<'_> {
    /// Total events processed across all partitions so far. Safe between
    /// `run_until` phases: workers only touch partitions inside an open
    /// window, and `run_until` never returns with one open.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.parts.iter().map(|p| lock(p).events_processed()).sum()
    }

    /// Total data packets delivered across all partitions so far.
    #[must_use]
    pub fn packets_delivered(&self) -> u64 {
        self.parts.iter().map(|p| lock(p).model().packets_delivered()).sum()
    }

    /// Advances every partition up to and including `deadline` in
    /// lookahead windows.
    ///
    /// # Panics
    ///
    /// Re-raises (via the session) any panic from a partition worker.
    /// `deadline` must be a finite horizon, not [`Time::MAX`]: the
    /// sampling tick re-schedules itself forever, so "run until the
    /// calendar drains" never terminates on a network model.
    pub fn run_until(&mut self, deadline: Time) {
        assert!(deadline < Time::MAX, "partitioned runs need a finite horizon");
        let lookahead = self.plan.lookahead();
        // Leftover cross sends from a previous phase's inclusive tail.
        self.deliver(*self.floor);
        while *self.floor < deadline {
            let mut stop = Time::from_ps(
                self.floor.as_ps().saturating_add(lookahead.as_ps()).min(deadline.as_ps()),
            );
            if let Some(&(t, _)) = self.faults.get(*self.next_fault) {
                stop = stop.min(t);
            }
            self.ls.open_window(stop);
            self.ls.close_window();
            self.check_workers();
            self.deliver(stop);
            if self.faults.get(*self.next_fault).is_some_and(|&(t, _)| t == stop) {
                self.drain_all_inboxes();
            }
            while let Some(&(t, kind)) = self.faults.get(*self.next_fault) {
                if t != stop {
                    break;
                }
                self.execute_fault(t, kind);
                *self.next_fault += 1;
            }
            // Faults transmit PFC resumes and kicks of their own.
            self.deliver(stop);
            *self.floor = stop;
        }
        // Inclusive tail: events at exactly the deadline are partition-
        // local by the lookahead argument (their cross effects land
        // strictly later and stay in the outboxes for the next phase).
        // Staged inbox entries may sit exactly at the deadline, so the
        // calendar is brought current first.
        for p in self.parts {
            let mut sim = lock(p);
            drain_inbox(&mut sim);
            sim.run_until(deadline);
        }
        self.check_workers();
    }

    /// Fails fast on a recorded worker panic; the payload itself is
    /// re-raised when the session unwinds.
    fn check_workers(&self) {
        assert!(lock(self.worker_panic).is_none(), "a partition worker panicked");
    }

    /// Stages every partition's outbox into the owning partitions'
    /// inboxes, in (partition id, push order) — the deterministic merge
    /// the whole scheme rests on. All messages must land at or beyond
    /// `bound` (the lookahead guarantee).
    ///
    /// Staging is a bulk `append` (one destination lock per source
    /// partition): the per-event calendar insertions happen on the owning
    /// workers at the next window open (see [`drain_inbox`]), overlapping
    /// them with every other partition's insertions instead of
    /// serializing the whole merge on the coordinator.
    fn deliver(&mut self, bound: Time) {
        for src in 0..self.parts.len() {
            std::mem::swap(&mut lock(&self.parts[src]).model_mut().outbox, self.scratch);
            for (t, ev) in self.scratch.drain(..) {
                assert!(t >= bound, "cross-partition event violates the lookahead window");
                let NetEvent::Arrive { node, .. } = &ev else {
                    unreachable!("only frame arrivals cross partitions")
                };
                let dst = self.plan.owner[*node as usize] as usize;
                debug_assert_ne!(dst, src, "outbox entry for a locally-owned node");
                self.inbox_scratch[dst].push((t, ev));
            }
            for dst in 0..self.parts.len() {
                let staged = &mut self.inbox_scratch[dst];
                if staged.is_empty() {
                    continue;
                }
                // Every staged frame carried its box into `dst`;
                // counter-migrate the same number of free boxes back, or a
                // partition whose hosts net-export frames drains its pool
                // and allocates on the hot path forever (a dry destination
                // pool skips the refund — it owes nothing, its own frees
                // will restock it).
                let owed = staged.len();
                {
                    let mut sim = lock(&self.parts[dst]);
                    let m = sim.model_mut();
                    m.inbox.append(staged);
                    m.lend_free_frames(owed, self.frame_scratch);
                }
                if !self.frame_scratch.is_empty() {
                    lock(&self.parts[src]).model_mut().adopt_free_frames(self.frame_scratch);
                }
            }
        }
    }

    /// Coordinator-side inbox drain for the points where partition code
    /// runs outside a worker window (fault barriers, the inclusive tail):
    /// the calendar must be current first, e.g. a `LinkDown` sweeping
    /// in-flight frames must see staged cross-partition arrivals.
    fn drain_all_inboxes(&self) {
        for p in self.parts {
            drain_inbox(&mut lock(p));
        }
    }

    /// Executes one link fault at the barrier instant `t`: endpoint halves
    /// on their owning partitions (in `(a, b)` order, like the serial
    /// handler), then a global route recompute, then — for repairs — the
    /// serializer kicks, strictly after routes are back.
    fn execute_fault(&mut self, t: Time, kind: FaultKind) {
        let (a, b, up) = match kind {
            FaultKind::LinkDown { a, b } => (a, b, false),
            FaultKind::LinkUp { a, b } => (a, b, true),
        };
        for (node, peer) in [(a, b), (b, a)] {
            let p = self.plan.owner[node.0] as usize;
            lock(&self.parts[p]).with_model_at(t, |m, s| m.fault_endpoint(node, peer, up, s));
        }
        // Route recompute over the global live adjacency — the partitioned
        // counterpart of Network::recompute_routes, including its stamp-
        // budget re-validation.
        let n = self.plan.owner.len();
        let mut is_switch = vec![false; n];
        let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
        for p in self.parts {
            lock(p).model().live_topology_into(&mut is_switch, &mut adj);
        }
        let tables = routing::compute_route_tables(&is_switch, &adj);
        let diameter = routing::max_route_hops(&is_switch, &adj);
        assert!(
            diameter <= dsh_transport::HOP_CAPACITY,
            "post-fault reroute produced a {diameter}-switch path but frames \
             carry only HOP_CAPACITY ({}) inline telemetry stamps",
            dsh_transport::HOP_CAPACITY
        );
        for p in self.parts {
            lock(p).model_mut().install_routes(&tables);
        }
        if up {
            for (node, peer) in [(a, b), (b, a)] {
                let p = self.plan.owner[node.0] as usize;
                lock(&self.parts[p]).with_model_at(t, |m, s| m.fault_kick(node, peer, s));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{NetParams, NetworkBuilder};
    use crate::network::FlowSpec;
    use dsh_core::Scheme;
    use dsh_simcore::Bandwidth;
    use dsh_transport::CcKind;

    /// The whole scheme rests on shipping partition state to worker
    /// threads.
    #[test]
    fn network_is_send() {
        fn is_send<T: Send>() {}
        is_send::<Network>();
        is_send::<Simulation<Network>>();
    }

    /// Two-switch chain, two hosts per switch, four cross-cut flows with
    /// staggered starts (ECN off, so no global-RNG draws — the documented
    /// requirement for serial/parallel bit-identity).
    fn chain_net() -> Network {
        let mut b = NetworkBuilder::new(NetParams::tomahawk(Scheme::Dsh).without_ecn());
        let s0 = b.switch();
        let s1 = b.switch();
        let hosts: Vec<_> = (0..4).map(|_| b.host()).collect();
        let bw = Bandwidth::from_gbps(100);
        b.link(hosts[0], s0, bw, Delta::from_us(1));
        b.link(hosts[1], s0, bw, Delta::from_us(1));
        b.link(hosts[2], s1, bw, Delta::from_us(1));
        b.link(hosts[3], s1, bw, Delta::from_us(1));
        b.link(s0, s1, bw, Delta::from_us(2));
        let mut net = b.build();
        for (i, (&src, &dst)) in
            [(hosts[0], hosts[2]), (hosts[2], hosts[0]), (hosts[1], hosts[3]), (hosts[3], hosts[1])]
                .iter()
                .map(|(a, b)| (a, b))
                .enumerate()
        {
            net.add_flow(FlowSpec {
                src,
                dst,
                size: 200_000 + 40_000 * i as u64,
                class: 0,
                start: Time::from_us(3 * i as u64),
                cc: CcKind::Uncontrolled,
            });
        }
        net
    }

    fn fct_key(net: &Network) -> Vec<(u64, u64, u64, u64)> {
        let mut v: Vec<_> = net
            .fct_records()
            .iter()
            .map(|r| (r.finish.as_ps(), r.flow.0 as u64, r.start.as_ps(), r.size))
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn chain_partitions_on_the_inter_switch_link() {
        let net = chain_net();
        let plan = partition(&net, MAX_PARTITIONS).expect("chain must partition");
        assert_eq!(plan.parts(), 2);
        assert_eq!(plan.lookahead(), Delta::from_us(2), "lookahead = cut-link delay");
        // Hosts follow their switch.
        assert_eq!(plan.owner()[2], plan.owner()[0]);
        assert_eq!(plan.owner()[3], plan.owner()[0]);
        assert_eq!(plan.owner()[4], plan.owner()[1]);
        assert_eq!(plan.owner()[5], plan.owner()[1]);
        assert_ne!(plan.owner()[0], plan.owner()[1]);
    }

    #[test]
    fn zero_delay_cut_is_rejected() {
        let mut b = NetworkBuilder::new(NetParams::tomahawk(Scheme::Dsh));
        let s0 = b.switch();
        let s1 = b.switch();
        let h0 = b.host();
        let h1 = b.host();
        let bw = Bandwidth::from_gbps(100);
        b.link(h0, s0, bw, Delta::from_us(1));
        b.link(h1, s1, bw, Delta::from_us(1));
        b.link(s0, s1, bw, Delta::ZERO);
        let net = b.build();
        let err = partition(&net, MAX_PARTITIONS).expect_err("zero-delay cut must fail");
        let PartitionError::ZeroDelayCut { a, b } = err;
        assert_eq!((a.0.min(b.0), a.0.max(b.0)), (0, 1));
    }

    #[test]
    fn parallel_matches_serial_at_any_worker_count() {
        let deadline = Time::from_ms(2);
        let serial = {
            let mut sim = chain_net().into_sim();
            sim.run_until(deadline);
            sim.into_model()
        };
        assert_eq!(serial.fct_records().len(), 4, "all flows must finish serially");
        for workers in [1, 2, 4] {
            let mut par = ParallelSim::new(chain_net(), workers).expect("partitionable");
            par.run_until(deadline);
            let merged = par.into_network();
            assert_eq!(fct_key(&merged), fct_key(&serial), "workers={workers}");
            assert_eq!(merged.packets_delivered(), serial.packets_delivered());
            assert_eq!(merged.data_drops(), serial.data_drops());
        }
    }

    #[test]
    fn phased_run_matches_single_run() {
        let deadline = Time::from_ms(2);
        let whole = {
            let mut par = ParallelSim::new(chain_net(), 2).expect("partitionable");
            par.run_until(deadline);
            fct_key(&par.into_network())
        };
        let mut par = ParallelSim::new(chain_net(), 2).expect("partitionable");
        par.session(|run| {
            run.run_until(Time::from_us(40));
            run.run_until(Time::from_us(700));
            run.run_until(deadline);
        });
        assert_eq!(fct_key(&par.into_network()), whole);
    }

    /// Hybrid fidelity composed with partitioning: intra-partition flows
    /// ride the fluid fast path, cut-crossing flows stay packet (their
    /// links are pinned), and the result is bit-identical to the serial
    /// hybrid engine at any worker count — because `prepare()` pins the
    /// same canonical plan's cut links the split pins.
    #[test]
    fn hybrid_parallel_matches_serial_hybrid() {
        use crate::builder::FidelityMode;
        fn hybrid_chain() -> Network {
            let mut b = NetworkBuilder::new(
                NetParams::tomahawk(Scheme::Dsh)
                    .without_ecn()
                    .with_fidelity(FidelityMode::hybrid_default()),
            );
            let s0 = b.switch();
            let s1 = b.switch();
            let hosts: Vec<_> = (0..4).map(|_| b.host()).collect();
            let bw = Bandwidth::from_gbps(100);
            b.link(hosts[0], s0, bw, Delta::from_us(1));
            b.link(hosts[1], s0, bw, Delta::from_us(1));
            b.link(hosts[2], s1, bw, Delta::from_us(1));
            b.link(hosts[3], s1, bw, Delta::from_us(1));
            b.link(s0, s1, bw, Delta::from_us(2));
            let mut net = b.build();
            // Two partition-local flows (fluid) and two cut-crossing flows
            // (packet: the s0–s1 link is pinned), staggered starts.
            let pairs = [
                (hosts[0], hosts[1]),
                (hosts[2], hosts[3]),
                (hosts[1], hosts[3]),
                (hosts[3], hosts[1]),
            ];
            for (i, &(src, dst)) in pairs.iter().enumerate() {
                net.add_flow(FlowSpec {
                    src,
                    dst,
                    size: 150_000 + 30_000 * i as u64,
                    class: 0,
                    start: Time::from_us(5 * i as u64),
                    cc: CcKind::Uncontrolled,
                });
            }
            net
        }
        let deadline = Time::from_ms(2);
        // The serial calendar keeps every link fluid-eligible (no pinned
        // cuts); the partitioned engine pins the s0–s1 cut. Like the
        // packet engine under ECN, serial-vs-partitioned is not
        // byte-identical — worker-count invariance is the contract, so
        // the exact comparison runs partitioned-vs-partitioned.
        let serial = {
            let mut sim = hybrid_chain().into_sim();
            sim.run_until(deadline);
            sim.into_model()
        };
        assert_eq!(serial.fct_records().len(), 4);
        let serial_stats = serial.fidelity_stats().expect("hybrid serial run has fluid state");
        assert!(
            serial_stats.fluid_flows >= 2,
            "unpinned serial run must admit at least the two local flows: {serial_stats:?}"
        );

        let baseline = {
            let mut par = ParallelSim::new(hybrid_chain(), 1).expect("partitionable");
            par.run_until(deadline);
            par.into_network()
        };
        assert_eq!(baseline.fct_records().len(), 4);
        let baseline_stats = baseline.fidelity_stats().expect("merged fluid stats");
        assert_eq!(baseline_stats.fluid_flows, 2, "the two local flows must go fluid");
        // Flow 0 completes analytically; flow 1 is materialized when the
        // first cut-crossing flow's frames reach its egress at s1.
        assert_eq!(baseline_stats.fluid_completions, 1);
        assert_eq!(baseline_stats.materializations, 1);
        for workers in [2, 4] {
            let mut par = ParallelSim::new(hybrid_chain(), workers).expect("partitionable");
            par.run_until(deadline);
            let merged = par.into_network();
            assert_eq!(fct_key(&merged), fct_key(&baseline), "workers={workers}");
            let stats = merged.fidelity_stats().expect("merged fluid stats");
            assert_eq!(stats, baseline_stats, "workers={workers}");
        }
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let mut par = ParallelSim::new(chain_net(), 2).expect("partitionable");
            par.session(|run| {
                run.run_until(Time::from_us(10));
                panic!("coordinator bailed");
            });
        }));
        assert!(result.is_err(), "coordinator panic must unwind through the session");
    }
}
