//! RED-style ECN marking at switch egress queues (DCQCN's congestion
//! point).

use dsh_simcore::SimRng;

/// ECN marking parameters (the DCQCN congestion-point RED profile).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EcnConfig {
    /// Below this egress queue length (bytes) nothing is marked.
    pub kmin: u64,
    /// Above this length every packet is marked.
    pub kmax: u64,
    /// Marking probability at `kmax` (ramps linearly from 0 at `kmin`).
    pub pmax: f64,
    /// Master switch (the uncontrolled microbenchmarks disable marking).
    pub enabled: bool,
}

impl EcnConfig {
    /// The DCQCN defaults scaled for 100 Gb/s links (ns-3 community
    /// settings): `Kmin = 100 KB`, `Kmax = 400 KB`, `Pmax = 0.2`.
    #[must_use]
    pub fn for_100g() -> Self {
        EcnConfig { kmin: 100 * 1024, kmax: 400 * 1024, pmax: 0.2, enabled: true }
    }

    /// Marking disabled.
    #[must_use]
    pub fn disabled() -> Self {
        EcnConfig { kmin: u64::MAX, kmax: u64::MAX, pmax: 0.0, enabled: false }
    }

    /// Decides whether a packet enqueued behind `qlen_bytes` is CE-marked.
    pub fn mark(&self, qlen_bytes: u64, rng: &mut SimRng) -> bool {
        if !self.enabled || qlen_bytes < self.kmin {
            false
        } else if qlen_bytes >= self.kmax {
            true
        } else {
            let p = self.pmax * (qlen_bytes - self.kmin) as f64 / (self.kmax - self.kmin) as f64;
            rng.gen_bool(p)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_kmin_never_marks() {
        let cfg = EcnConfig::for_100g();
        let mut rng = SimRng::new(1);
        assert!((0..1000).all(|_| !cfg.mark(50_000, &mut rng)));
    }

    #[test]
    fn above_kmax_always_marks() {
        let cfg = EcnConfig::for_100g();
        let mut rng = SimRng::new(1);
        assert!((0..1000).all(|_| cfg.mark(500_000, &mut rng)));
    }

    #[test]
    fn ramp_probability_scales() {
        let cfg = EcnConfig::for_100g();
        let mut rng = SimRng::new(2);
        let mid = (cfg.kmin + cfg.kmax) / 2;
        let hits = (0..100_000).filter(|_| cfg.mark(mid, &mut rng)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.1).abs() < 0.01, "{frac}");
    }

    #[test]
    fn disabled_never_marks() {
        let cfg = EcnConfig::disabled();
        let mut rng = SimRng::new(3);
        assert!(!cfg.mark(u64::MAX - 1, &mut rng));
    }
}
