//! Standard datacenter topologies: leaf–spine and fat-tree(k), plus the
//! paper's specific evaluation fabrics.

use crate::builder::{NetParams, NetworkBuilder};
use crate::ids::NodeId;
use dsh_simcore::{Bandwidth, Delta};

/// A built leaf–spine fabric with handles to its parts.
#[derive(Debug)]
pub struct LeafSpine {
    /// Host ids, grouped per leaf: `hosts[leaf][i]`.
    pub hosts: Vec<Vec<NodeId>>,
    /// Leaf switch ids.
    pub leaves: Vec<NodeId>,
    /// Spine switch ids.
    pub spines: Vec<NodeId>,
    /// The builder, so callers can fail links before building.
    pub builder: NetworkBuilder,
}

impl LeafSpine {
    /// All host ids in one flat list.
    #[must_use]
    pub fn all_hosts(&self) -> Vec<NodeId> {
        self.hosts.iter().flatten().copied().collect()
    }
}

/// Shape of a leaf–spine fabric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LeafSpineShape {
    /// Number of leaf switches.
    pub leaves: usize,
    /// Number of spine switches.
    pub spines: usize,
    /// Hosts per leaf.
    pub hosts_per_leaf: usize,
    /// Host downlink speed.
    pub downlink: Bandwidth,
    /// Leaf→spine uplink speed.
    pub uplink: Bandwidth,
    /// Per-hop propagation delay.
    pub link_delay: Delta,
}

impl LeafSpineShape {
    /// The paper's large-scale fabric (§V-B): 16 leaves × 16 spines ×
    /// 16 hosts/leaf = 256 servers, all 100 Gb/s, 2 µs links,
    /// full bisection.
    #[must_use]
    pub fn paper_large() -> Self {
        LeafSpineShape {
            leaves: 16,
            spines: 16,
            hosts_per_leaf: 16,
            downlink: Bandwidth::from_gbps(100),
            uplink: Bandwidth::from_gbps(100),
            link_delay: Delta::from_us(2),
        }
    }

    /// The paper's deadlock fabric (Fig. 12a): 2 spines × 4 leaves ×
    /// 16 hosts, 100 Gb/s downlinks, 400 Gb/s uplinks, 2 µs links.
    #[must_use]
    pub fn paper_deadlock() -> Self {
        LeafSpineShape {
            leaves: 4,
            spines: 2,
            hosts_per_leaf: 16,
            downlink: Bandwidth::from_gbps(100),
            uplink: Bandwidth::from_gbps(400),
            link_delay: Delta::from_us(2),
        }
    }
}

/// Builds a leaf–spine fabric; fail links via
/// [`LeafSpine::builder`] before calling `build()`.
#[must_use]
pub fn leaf_spine(params: NetParams, shape: LeafSpineShape) -> LeafSpine {
    let mut b = NetworkBuilder::new(params);
    let leaves: Vec<NodeId> = (0..shape.leaves).map(|_| b.switch()).collect();
    let spines: Vec<NodeId> = (0..shape.spines).map(|_| b.switch()).collect();
    let mut hosts = Vec::with_capacity(shape.leaves);
    for &l in &leaves {
        let mut rack = Vec::with_capacity(shape.hosts_per_leaf);
        for _ in 0..shape.hosts_per_leaf {
            let h = b.host();
            b.link(h, l, shape.downlink, shape.link_delay);
            rack.push(h);
        }
        hosts.push(rack);
    }
    for &l in &leaves {
        for &s in &spines {
            b.link(l, s, shape.uplink, shape.link_delay);
        }
    }
    LeafSpine { hosts, leaves, spines, builder: b }
}

/// A built fat-tree fabric.
#[derive(Debug)]
pub struct FatTree {
    /// Host ids, grouped per pod: `hosts[pod][i]`.
    pub hosts: Vec<Vec<NodeId>>,
    /// Edge switches per pod.
    pub edges: Vec<Vec<NodeId>>,
    /// Aggregation switches per pod.
    pub aggs: Vec<Vec<NodeId>>,
    /// Core switches.
    pub cores: Vec<NodeId>,
    /// The builder, so callers can fail links before building.
    pub builder: NetworkBuilder,
}

impl FatTree {
    /// All host ids in one flat list.
    #[must_use]
    pub fn all_hosts(&self) -> Vec<NodeId> {
        self.hosts.iter().flatten().copied().collect()
    }
}

/// Builds a k-ary fat-tree (Al-Fares et al., SIGCOMM 2008): `k` pods, each
/// with `k/2` edge and `k/2` aggregation switches, `(k/2)²` cores, and
/// `k³/4` hosts. All links share one speed, as in the paper's Fig. 15d
/// (k = 16 → 1024 hosts).
///
/// # Panics
///
/// Panics if `k` is odd or zero.
#[must_use]
pub fn fat_tree(params: NetParams, k: usize, link: Bandwidth, delay: Delta) -> FatTree {
    assert!(k > 0 && k.is_multiple_of(2), "fat-tree arity must be even");
    let half = k / 2;
    let mut b = NetworkBuilder::new(params);

    let cores: Vec<NodeId> = (0..half * half).map(|_| b.switch()).collect();
    let mut edges = Vec::with_capacity(k);
    let mut aggs = Vec::with_capacity(k);
    let mut hosts = Vec::with_capacity(k);

    for _pod in 0..k {
        let pod_edges: Vec<NodeId> = (0..half).map(|_| b.switch()).collect();
        let pod_aggs: Vec<NodeId> = (0..half).map(|_| b.switch()).collect();
        // Hosts under each edge switch.
        let mut pod_hosts = Vec::with_capacity(half * half);
        for &e in &pod_edges {
            for _ in 0..half {
                let h = b.host();
                b.link(h, e, link, delay);
                pod_hosts.push(h);
            }
        }
        // Edge <-> aggregation full mesh within the pod.
        for &e in &pod_edges {
            for &a in &pod_aggs {
                b.link(e, a, link, delay);
            }
        }
        // Aggregation i connects to cores [i*half, (i+1)*half).
        for (i, &a) in pod_aggs.iter().enumerate() {
            for j in 0..half {
                b.link(a, cores[i * half + j], link, delay);
            }
        }
        edges.push(pod_edges);
        aggs.push(pod_aggs);
        hosts.push(pod_hosts);
    }

    FatTree { hosts, edges, aggs, cores, builder: b }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsh_core::Scheme;

    fn params() -> NetParams {
        NetParams::tomahawk(Scheme::Dsh)
    }

    #[test]
    fn leaf_spine_shape_counts() {
        let ls = leaf_spine(
            params(),
            LeafSpineShape {
                leaves: 4,
                spines: 2,
                hosts_per_leaf: 3,
                downlink: Bandwidth::from_gbps(100),
                uplink: Bandwidth::from_gbps(400),
                link_delay: Delta::from_us(2),
            },
        );
        assert_eq!(ls.leaves.len(), 4);
        assert_eq!(ls.spines.len(), 2);
        assert_eq!(ls.all_hosts().len(), 12);
        // Builds cleanly and routes exist.
        let _net = ls.builder.build();
    }

    #[test]
    fn fat_tree_counts() {
        let ft = fat_tree(params(), 4, Bandwidth::from_gbps(100), Delta::from_us(2));
        assert_eq!(ft.cores.len(), 4);
        assert_eq!(ft.edges.iter().map(Vec::len).sum::<usize>(), 8);
        assert_eq!(ft.aggs.iter().map(Vec::len).sum::<usize>(), 8);
        assert_eq!(ft.all_hosts().len(), 16); // k^3/4
        let _net = ft.builder.build();
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_fat_tree_panics() {
        let _ = fat_tree(params(), 3, Bandwidth::from_gbps(100), Delta::from_us(2));
    }
}
