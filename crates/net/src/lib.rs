//! Packet-level datacenter network dataplane for the DSH reproduction.
//!
//! This crate plays the role ns-3's network stack played for the paper's
//! evaluation: store-and-forward switches with shared-buffer MMUs
//! (`dsh-core`), DWRR-scheduled priority queues, real in-band PFC
//! PAUSE/RESUME frames with standard processing delays, ECN marking, host
//! NICs driven by the transports in `dsh-transport`, and topology/routing
//! builders (leaf–spine, fat-tree, ECMP with local reroute around failed
//! links).
//!
//! # Model summary
//!
//! * **Links** are full-duplex with configurable bandwidth and propagation
//!   delay; frames are delivered `serialization + propagation` after
//!   transmission starts (store-and-forward).
//! * **Egress ports** have 8 queues: queue 7 is a strict-priority control
//!   queue (ACK/CNP/PFC, exempt from PFC pause — the paper's setup), queues
//!   0–6 carry lossless data classes under DWRR with a 1600 B quantum.
//! * **PFC** pause/resume is applied one `3840 B / C` processing delay
//!   after the frame arrives (IEEE 802.1Qbb); waiting and response delays
//!   emerge naturally from non-preemptive transmission.
//! * **Switch ingress accounting** is delegated to [`dsh_core::Mmu`], which
//!   decides placement (private/shared/headroom/insurance), drops, and
//!   PFC actions for both SIH and DSH.
//!
//! # Example: two hosts through one switch
//!
//! ```
//! use dsh_net::{NetworkBuilder, NetParams, FlowSpec};
//! use dsh_core::Scheme;
//! use dsh_simcore::{Bandwidth, Delta, Time};
//! use dsh_transport::CcKind;
//!
//! let mut b = NetworkBuilder::new(NetParams::tomahawk(Scheme::Dsh));
//! let h0 = b.host();
//! let h1 = b.host();
//! let s = b.switch();
//! b.link(h0, s, Bandwidth::from_gbps(100), Delta::from_us(2));
//! b.link(h1, s, Bandwidth::from_gbps(100), Delta::from_us(2));
//! let mut net = b.build();
//! net.add_flow(FlowSpec {
//!     src: h0,
//!     dst: h1,
//!     size: 1_000_000,
//!     class: 0,
//!     start: Time::ZERO,
//!     cc: CcKind::Uncontrolled,
//! });
//! let mut sim = net.into_sim();
//! sim.run_until(Time::from_ms(10));
//! let net = sim.into_model();
//! assert_eq!(net.fct_records().len(), 1, "flow must complete");
//! assert_eq!(net.data_drops(), 0, "lossless network must not drop");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod ecn;
mod fault;
mod fluid;
mod frame;
mod host;
mod ids;
mod monitor;
mod network;
pub mod observe;
pub mod par;
mod port;
mod routing;
mod switch;
pub mod topology;

pub use builder::{FidelityMode, HeadroomSource, NetParams, NetworkBuilder};
pub use ecn::EcnConfig;
pub use fault::{FaultEvent, FaultKind, FaultPlan, LinkCorruption};
pub use fluid::{FidelityStats, FluidFlowAccount};
pub use frame::{AckFrame, DataFrame, Frame, FrameKind, NackFrame, PfcFrame, PfcScope};
pub use ids::{FlowId, NodeId, CONTROL_CLASS, NUM_CLASSES, NUM_DATA_CLASSES};
pub use monitor::{
    ClassPauseTelemetry, DeadlockReport, DurationHistogram, FctRecord, OccupancyPoint,
    OccupancySeries, PauseLedger, PortPauseTelemetry, SwitchTelemetry, TelemetryReport,
    ThroughputSample,
};
pub use network::{BlockedPort, ClassMask, FlowSpec, NetEvent, Network};
pub use observe::{CascadeReport, FlowPauseAttribution, ObserveConfig, PauseEdge};
pub use par::{partition, ParallelSim, PartitionError, PartitionPlan, MAX_PARTITIONS};
pub use port::{EgressPort, IngressTag, QueuedFrame, DWRR_QUANTUM};
pub use routing::{ecmp_hash, RouteTable};
