//! Deterministic runtime fault injection: link flaps and frame corruption.
//!
//! A [`FaultPlan`] is a seedable, pre-declared schedule of link failures and
//! repairs plus optional probabilistic per-link frame corruption. The plan is
//! installed on a [`Network`](crate::Network) *before* `into_sim`; every
//! entry becomes an ordinary calendar event, so fault runs stay bit-identical
//! at any thread count (the parallel executor replays the same calendar).
//!
//! Corruption draws come from per-directed-link RNG streams derived with
//! `split_seed` from the plan seed, so adding a corrupted link never perturbs
//! the draws of another link.
//!
//! Only *data* frames are ever corrupted: PFC PAUSE/RESUME frames are
//! link-local control traffic whose loss the protocol cannot recover from (a
//! lost RESUME wedges the peer forever), and real fabrics protect them with
//! the same CRC-based retransmit-free guarantees we model for loss-free
//! links. End-to-end robustness against *link death* — which does kill PFC
//! frames in flight — is what the pause-ledger force-clear on `LinkDown`
//! handles.

use crate::ids::NodeId;
use dsh_simcore::Time;

/// What one scheduled fault event does to the fabric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Both directions of the `a`–`b` link go dark: queued and in-flight
    /// frames are lost, PFC pause state on the attached ports is
    /// force-cleared, and routes are recomputed around the failure.
    LinkDown {
        /// One endpoint of the link.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// The `a`–`b` link comes back: routes are recomputed to use it again
    /// and both endpoints are kicked to resume transmission.
    LinkUp {
        /// One endpoint of the link.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
}

/// One scheduled fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Absolute simulation time at which the fault takes effect.
    pub at: Time,
    /// What happens.
    pub kind: FaultKind,
}

/// Probabilistic per-frame corruption on both directions of one link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkCorruption {
    /// One endpoint of the link.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Per-data-frame corruption probability in `[0, 1]`.
    pub probability: f64,
}

/// A deterministic, seedable schedule of runtime faults.
///
/// ```
/// use dsh_net::{FaultPlan, NodeId};
/// use dsh_simcore::Time;
///
/// let plan = FaultPlan::new(42)
///     .flap(NodeId(4), NodeId(6), Time::from_us(100), Time::from_us(300))
///     .corrupt_link(NodeId(0), NodeId(4), 1e-3);
/// assert_eq!(plan.events().len(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    events: Vec<FaultEvent>,
    corruption: Vec<LinkCorruption>,
}

impl FaultPlan {
    /// Creates an empty plan whose corruption streams derive from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, events: Vec::new(), corruption: Vec::new() }
    }

    /// Schedules both directions of the `a`–`b` link to fail at `at`.
    #[must_use]
    pub fn link_down(mut self, at: Time, a: NodeId, b: NodeId) -> Self {
        self.events.push(FaultEvent { at, kind: FaultKind::LinkDown { a, b } });
        self
    }

    /// Schedules both directions of the `a`–`b` link to recover at `at`.
    #[must_use]
    pub fn link_up(mut self, at: Time, a: NodeId, b: NodeId) -> Self {
        self.events.push(FaultEvent { at, kind: FaultKind::LinkUp { a, b } });
        self
    }

    /// Convenience: one full down-then-up flap of the `a`–`b` link.
    ///
    /// # Panics
    /// Panics if `up_at <= down_at`.
    #[must_use]
    pub fn flap(self, a: NodeId, b: NodeId, down_at: Time, up_at: Time) -> Self {
        assert!(up_at > down_at, "flap must come back up after it goes down");
        self.link_down(down_at, a, b).link_up(up_at, a, b)
    }

    /// Corrupts each data frame on either direction of `a`–`b` with the
    /// given probability, from the plan's dedicated RNG stream.
    ///
    /// # Panics
    /// Panics if `probability` is outside `[0, 1]`.
    #[must_use]
    pub fn corrupt_link(mut self, a: NodeId, b: NodeId, probability: f64) -> Self {
        assert!((0.0..=1.0).contains(&probability), "probability must be in [0, 1]");
        self.corruption.push(LinkCorruption { a, b, probability });
        self
    }

    /// The seed the corruption RNG streams derive from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled link events, in insertion order (ties on the calendar
    /// resolve in this order).
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The configured corruption entries.
    #[must_use]
    pub fn corruption(&self) -> &[LinkCorruption] {
        &self.corruption
    }

    /// True when the plan schedules nothing and corrupts nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.corruption.is_empty()
    }
}

/// Whether `DSH_FAULT_TRACE=1` debug logging is on (always `false` unless
/// the `fault-trace` feature is compiled in).
#[cfg(feature = "fault-trace")]
pub(crate) fn trace_enabled() -> bool {
    use std::sync::OnceLock;
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| std::env::var("DSH_FAULT_TRACE").is_ok_and(|v| v == "1"))
}

/// Feature-gated stub so `fault_trace!` call sites compile unchanged.
#[cfg(not(feature = "fault-trace"))]
pub(crate) fn trace_enabled() -> bool {
    false
}

/// Logs one fault-injection / loss-recovery event to stderr when the
/// `fault-trace` feature is enabled and `DSH_FAULT_TRACE=1` is set.
/// Compiles to dead code otherwise (the condition is `cfg!`-const false).
macro_rules! fault_trace {
    ($($arg:tt)*) => {
        if cfg!(feature = "fault-trace") && $crate::fault::trace_enabled() {
            eprintln!($($arg)*);
        }
    };
}
pub(crate) use fault_trace;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_records_events_in_order() {
        let plan = FaultPlan::new(7).link_down(Time::from_us(10), NodeId(1), NodeId(2)).link_up(
            Time::from_us(20),
            NodeId(1),
            NodeId(2),
        );
        assert_eq!(plan.seed(), 7);
        assert_eq!(plan.events().len(), 2);
        assert_eq!(plan.events()[0].kind, FaultKind::LinkDown { a: NodeId(1), b: NodeId(2) });
        assert_eq!(plan.events()[1].at, Time::from_us(20));
        assert!(!plan.is_empty());
    }

    #[test]
    fn flap_expands_to_down_then_up() {
        let plan = FaultPlan::new(0).flap(NodeId(3), NodeId(4), Time::from_us(5), Time::from_us(9));
        assert_eq!(plan.events().len(), 2);
        assert!(matches!(plan.events()[0].kind, FaultKind::LinkDown { .. }));
        assert!(matches!(plan.events()[1].kind, FaultKind::LinkUp { .. }));
    }

    #[test]
    #[should_panic(expected = "back up after")]
    fn flap_rejects_inverted_interval() {
        let _ = FaultPlan::new(0).flap(NodeId(0), NodeId(1), Time::from_us(9), Time::from_us(5));
    }

    #[test]
    fn corruption_probability_is_validated() {
        let plan = FaultPlan::new(1).corrupt_link(NodeId(0), NodeId(1), 0.5);
        assert_eq!(plan.corruption().len(), 1);
        assert!(!plan.is_empty());
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn corruption_rejects_out_of_range() {
        let _ = FaultPlan::new(1).corrupt_link(NodeId(0), NodeId(1), 1.5);
    }

    #[test]
    fn empty_plan_reports_empty() {
        assert!(FaultPlan::new(9).is_empty());
    }
}
