//! Host node: a NIC with per-flow (queue-pair) send state driven by a
//! congestion-control transport, plus receiver-side ACK/CNP generation.

use crate::ids::{FlowId, NodeId};
use crate::port::EgressPort;
use dsh_simcore::Time;
use dsh_transport::{Cc, CnpPolicy, GoBackN, SackBuffer, SackState};

/// Sender-side state of one flow (an RDMA queue pair).
pub struct SenderFlow {
    /// Global flow id.
    pub id: FlowId,
    /// Destination host.
    pub dst: NodeId,
    /// Priority class (0..7).
    pub class: u8,
    /// Flow size in bytes.
    pub size: u64,
    /// Bytes handed to the wire.
    pub sent: u64,
    /// Bytes acknowledged.
    pub acked: u64,
    /// Pacing: earliest time the next segment may be sent.
    pub next_send: Time,
    /// Congestion control state machine.
    pub cc: Box<dyn Cc>,
    /// Generation counter invalidating stale CC timer events.
    pub timer_gen: u32,
    /// Go-back-N retransmission state (idle unless the network has
    /// recovery enabled; see `NetParams::recovery`).
    pub recovery: GoBackN,
    /// Generation counter invalidating stale RTO timer events.
    pub rto_gen: u32,
    /// Lazy RTO deadline: pushed forward on every send and every ACK with
    /// progress without touching the calendar; the armed timer event
    /// re-schedules itself here when it fires early.
    pub rto_deadline: Time,
    /// Whether an RTO timer event is outstanding on the calendar.
    pub rto_armed: bool,
    /// High-water mark of `sent` (never rewound); bytes re-sent below it
    /// are counted as retransmitted.
    pub max_sent: u64,
    /// Selective-repeat sender state (idle unless the recovery regime is
    /// [`SelectiveRepeat`](dsh_transport::Regime::SelectiveRepeat)).
    pub sack: SackState,
    /// RTT probe: `Some((target_acked, sent_at))` while one fresh segment
    /// is being timed; sampled when the cumulative ACK reaches the target,
    /// cleared on any retransmission (Karn's rule — a retransmitted
    /// segment's ACK is ambiguous).
    pub rtt_probe: Option<(u64, Time)>,
}

impl std::fmt::Debug for SenderFlow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SenderFlow")
            .field("id", &self.id)
            .field("sent", &self.sent)
            .field("acked", &self.acked)
            .field("size", &self.size)
            .finish()
    }
}

impl SenderFlow {
    /// Bytes in flight (sent, not yet acked).
    #[must_use]
    pub fn in_flight(&self) -> u64 {
        self.sent - self.acked
    }

    /// Whether every byte has been handed to the wire.
    #[must_use]
    pub fn fully_sent(&self) -> bool {
        self.sent >= self.size
    }
}

/// Receiver-side state of one flow.
#[derive(Debug)]
pub struct ReceiverFlow {
    /// Payload bytes received so far.
    pub received: u64,
    /// DCQCN notification-point CNP policy.
    pub cnp: CnpPolicy,
    /// Completion already recorded.
    pub completed: bool,
    /// Selective-repeat out-of-order delivery window (stays empty under
    /// go-back-N, whose receiver discards everything past a gap).
    pub sack: SackBuffer,
}

impl ReceiverFlow {
    /// Fresh receiver state.
    #[must_use]
    pub fn new() -> Self {
        ReceiverFlow {
            received: 0,
            cnp: CnpPolicy::standard(),
            completed: false,
            sack: SackBuffer::new(),
        }
    }
}

impl Default for ReceiverFlow {
    fn default() -> Self {
        ReceiverFlow::new()
    }
}

/// A host: one uplink NIC port plus flow state.
#[derive(Debug)]
pub struct HostNode {
    /// This node's id.
    pub id: NodeId,
    /// The single uplink (port 0).
    pub port: Option<EgressPort>,
    /// Flows sourced at this host.
    pub tx_flows: Vec<SenderFlow>,
    /// Index from global flow id to `tx_flows` position (`u32::MAX` =
    /// not sourced here). Flow ids are dense and small, so a flat table
    /// beats hashing on the per-ACK lookup path; [`Network::into_sim`]
    /// pre-sizes it so flow starts never grow it mid-run.
    pub tx_index: Vec<u32>,
    /// Indices of `tx_flows` that still have data to hand to the wire
    /// (kept small so the NIC's per-packet scan is O(active), not
    /// O(all flows ever)).
    pub active: Vec<usize>,
    /// Round-robin cursor over `active`.
    pub rr_cursor: usize,
    /// Earliest already-scheduled NIC wake-up (dedup).
    pub wake_at: Time,
}

impl HostNode {
    /// Creates a host with no uplink yet (the builder attaches it).
    #[must_use]
    pub fn new(id: NodeId) -> Self {
        HostNode {
            id,
            port: None,
            tx_flows: Vec::new(),
            tx_index: Vec::new(),
            active: Vec::new(),
            rr_cursor: 0,
            wake_at: Time::MAX,
        }
    }

    /// The uplink port.
    ///
    /// # Panics
    ///
    /// Panics if the host was never linked into the topology.
    #[must_use]
    pub fn uplink(&self) -> &EgressPort {
        self.port
            .as_ref()
            .unwrap_or_else(|| panic!("host {} has no uplink; call NetworkBuilder::link", self.id))
    }

    /// Mutable access to the uplink port.
    ///
    /// # Panics
    ///
    /// Panics if the host was never linked into the topology.
    pub fn uplink_mut(&mut self) -> &mut EgressPort {
        self.port.as_mut().expect("host has no uplink; call NetworkBuilder::link")
    }

    /// Registers a new sender flow (marked active).
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` flows are registered at one host.
    pub fn add_sender(&mut self, flow: SenderFlow) {
        let idx = self.tx_flows.len();
        if self.tx_index.len() <= flow.id.0 {
            self.tx_index.resize(flow.id.0 + 1, u32::MAX);
        }
        self.tx_index[flow.id.0] = u32::try_from(idx).expect("too many flows at one host");
        self.tx_flows.push(flow);
        self.active.push(idx);
    }

    /// Looks up a sender flow by global id.
    pub fn sender_mut(&mut self, id: FlowId) -> Option<&mut SenderFlow> {
        let idx = *self.tx_index.get(id.0)?;
        if idx == u32::MAX {
            return None;
        }
        Some(&mut self.tx_flows[idx as usize])
    }

    /// Looks up a sender flow's `tx_flows` position by global id.
    #[must_use]
    pub fn sender_slot(&self, id: FlowId) -> Option<usize> {
        match self.tx_index.get(id.0) {
            Some(&idx) if idx != u32::MAX => Some(idx as usize),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsh_simcore::{Bandwidth, Delta};
    use dsh_transport::{RecoveryConfig, Uncontrolled};

    fn flow(id: usize) -> SenderFlow {
        SenderFlow {
            id: FlowId(id),
            dst: NodeId(9),
            class: 0,
            size: 10_000,
            sent: 0,
            acked: 0,
            next_send: Time::ZERO,
            cc: Box::new(Uncontrolled::new(Bandwidth::from_gbps(100))),
            timer_gen: 0,
            recovery: GoBackN::new(RecoveryConfig::for_rtt(Delta::from_us(16))),
            rto_gen: 0,
            rto_deadline: Time::MAX,
            rto_armed: false,
            max_sent: 0,
            sack: SackState::new(),
            rtt_probe: None,
        }
    }

    #[test]
    fn sender_bookkeeping() {
        let mut f = flow(1);
        f.sent = 4000;
        f.acked = 1000;
        assert_eq!(f.in_flight(), 3000);
        assert!(!f.fully_sent());
        f.sent = 10_000;
        assert!(f.fully_sent());
    }

    #[test]
    fn host_flow_registry() {
        let mut h = HostNode::new(NodeId(0));
        h.add_sender(flow(5));
        h.add_sender(flow(9));
        assert_eq!(h.sender_mut(FlowId(9)).unwrap().id, FlowId(9));
        assert!(h.sender_mut(FlowId(1)).is_none());
    }

    #[test]
    #[should_panic(expected = "no uplink")]
    fn unlinked_host_panics() {
        let h = HostNode::new(NodeId(0));
        let _ = h.uplink();
    }
}
