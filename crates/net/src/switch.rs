//! Switch node: egress ports, shared-buffer MMU and routing table.

use crate::frame::{Frame, PfcScope};
use crate::ids::NodeId;
use crate::monitor::OccupancySeries;
use crate::port::EgressPort;
use crate::routing::RouteTable;
use dsh_core::{FcAction, Mmu};

/// A store-and-forward switch with ingress MMU accounting.
#[derive(Debug)]
pub struct SwitchNode {
    /// This node's id.
    pub id: NodeId,
    /// Egress ports (index = port number; the ingress side of port *i* is
    /// the link from `ports[i].peer`).
    pub ports: Vec<EgressPort>,
    /// The lossless-pool MMU (SIH or DSH).
    pub mmu: Mmu,
    /// ECMP routes per destination node id.
    pub routes: RouteTable,
    /// Buffered-bytes time series (telemetry), updated on every admitted
    /// arrival and every departure.
    pub occupancy: OccupancySeries,
}

impl SwitchNode {
    /// Translates an MMU flow-control action into the PFC frame to send
    /// and the egress port (toward the upstream device) to send it on.
    #[must_use]
    pub fn fc_frame(action: FcAction) -> (usize, Frame) {
        match action {
            FcAction::QueuePause { port, queue } => {
                (port, Frame::pfc(PfcScope::Queue(queue as u8), true))
            }
            FcAction::QueueResume { port, queue } => {
                (port, Frame::pfc(PfcScope::Queue(queue as u8), false))
            }
            FcAction::PortPause { port } => (port, Frame::pfc(PfcScope::Port, true)),
            FcAction::PortResume { port } => (port, Frame::pfc(PfcScope::Port, false)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameKind;
    use crate::ids::CONTROL_CLASS;

    #[test]
    fn fc_frames_map_actions() {
        let (p, f) = SwitchNode::fc_frame(FcAction::QueuePause { port: 3, queue: 2 });
        assert_eq!(p, 3);
        assert_eq!(f.class, CONTROL_CLASS);
        match f.kind {
            FrameKind::Pfc(pfc) => {
                assert_eq!(pfc.scope, PfcScope::Queue(2));
                assert!(pfc.pause);
            }
            _ => panic!("not a PFC frame"),
        }

        let (p, f) = SwitchNode::fc_frame(FcAction::PortResume { port: 1 });
        assert_eq!(p, 1);
        match f.kind {
            FrameKind::Pfc(pfc) => {
                assert_eq!(pfc.scope, PfcScope::Port);
                assert!(!pfc.pause);
            }
            _ => panic!("not a PFC frame"),
        }
    }
}
