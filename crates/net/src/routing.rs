//! Shortest-path ECMP routing over the switch graph.
//!
//! For every destination ToR we run a BFS over the (possibly degraded)
//! switch topology; each switch's next hops toward a host are the
//! neighbours strictly closer to the host's ToR. ECMP selection hashes the
//! flow id so a flow stays on one path (per-flow ECMP, as in the paper's
//! setup).
//!
//! After link failures this "local shortest path" rule produces detour
//! (leaf-bounce) paths — e.g. the paper's Fig. 12 scenario, where two
//! failures force `S0→L1→S1` style bounces and create the cyclic buffer
//! dependency that deadlocks SIH.

use crate::ids::{FlowId, NodeId};
use std::collections::VecDeque;

/// Per-switch routing table: `routes[host] -> candidate egress ports`.
#[derive(Clone, Debug, Default)]
pub struct RouteTable {
    routes: Vec<Vec<usize>>,
}

impl RouteTable {
    /// Builds an empty table sized for `num_hosts` destinations.
    #[must_use]
    pub fn new(num_hosts: usize) -> Self {
        RouteTable { routes: vec![Vec::new(); num_hosts] }
    }

    /// Sets the candidate egress ports toward `host`.
    pub fn set(&mut self, host: usize, ports: Vec<usize>) {
        self.routes[host] = ports;
    }

    /// All candidate ports toward `host`.
    #[must_use]
    pub fn candidates(&self, host: usize) -> &[usize] {
        &self.routes[host]
    }

    /// Picks the ECMP port for `flow` toward `host`.
    ///
    /// # Panics
    ///
    /// Panics if the destination is unreachable (empty candidate set) —
    /// a topology construction bug.
    #[must_use]
    pub fn pick(&self, host: usize, flow: FlowId, node: NodeId) -> usize {
        let c = &self.routes[host];
        assert!(!c.is_empty(), "no route from {node} to host {host}");
        c[(ecmp_hash(flow.0 as u64, node.0 as u64) as usize) % c.len()]
    }

    /// Picks the ECMP port for `flow` toward `host`, or `None` when the
    /// destination is unreachable. Runtime link failures legitimately
    /// partition the fabric, so under an active fault plan an empty
    /// candidate set is a drop, not a bug.
    #[must_use]
    pub fn try_pick(&self, host: usize, flow: FlowId, node: NodeId) -> Option<usize> {
        let c = &self.routes[host];
        if c.is_empty() {
            return None;
        }
        Some(c[(ecmp_hash(flow.0 as u64, node.0 as u64) as usize) % c.len()])
    }
}

/// Computes every node's routing table from the *live* topology.
///
/// `adj[n]` lists `(neighbour, egress port index)` pairs for each alive
/// link out of node `n` (insertion order = port order); `is_switch[n]`
/// marks switches. Hosts get empty tables. A host whose access link is
/// down (no live adjacency into a switch) is simply unreachable: every
/// switch's candidate set toward it stays empty until the link returns.
///
/// Shared by the topology builder (full adjacency at build time) and the
/// runtime fault handler (recompute after each `LinkDown`/`LinkUp`), so
/// build-time and post-repair routes are computed by one rule.
#[must_use]
pub fn compute_route_tables(is_switch: &[bool], adj: &[Vec<(usize, usize)>]) -> Vec<RouteTable> {
    let n = is_switch.len();
    // Switch-only adjacency for the BFS (hosts never transit traffic).
    let switch_adj: Vec<Vec<usize>> = (0..n)
        .map(|u| {
            if !is_switch[u] {
                return Vec::new();
            }
            adj[u].iter().filter(|&&(v, _)| is_switch[v]).map(|&(v, _)| v).collect()
        })
        .collect();

    let mut tables: Vec<RouteTable> = (0..n).map(|_| RouteTable::new(n)).collect();
    for h in 0..n {
        if is_switch[h] {
            continue;
        }
        // The host's ToR is its (single-homed) live uplink peer.
        let Some(&(t, _)) = adj[h].iter().find(|&&(v, _)| is_switch[v]) else {
            continue; // access link down: unreachable until repaired
        };
        let dist = bfs_distances(&switch_adj, t);
        for s in 0..n {
            if !is_switch[s] {
                continue;
            }
            if s == t {
                // The ToR delivers on the access port itself.
                if let Some(&(_, p)) = adj[s].iter().find(|&&(v, _)| v == h) {
                    tables[s].set(h, vec![p]);
                }
            } else if dist[s] != usize::MAX {
                let cands: Vec<usize> = adj[s]
                    .iter()
                    // The reachability guard matters at runtime: a severed
                    // neighbour has dist MAX and `MAX + 1` would overflow.
                    .filter(|&&(v, _)| {
                        is_switch[v] && dist[v] != usize::MAX && dist[v] + 1 == dist[s]
                    })
                    .map(|&(_, p)| p)
                    .collect();
                tables[s].set(h, cands);
            }
        }
    }
    tables
}

/// Longest route the given live topology can produce, measured in switch
/// egress stamps (the unit [`dsh_transport::HOP_CAPACITY`] budgets): a
/// frame from a host behind ToR `t_src` to a host behind ToR `t_dst`
/// crosses `dist(t_src, t_dst) + 1` switches, and every one stamps the
/// frame once at dequeue. Returns 0 when no host pair is mutually
/// reachable.
///
/// Shared by `NetworkBuilder::build` and the runtime fault handler so a
/// topology (or a post-fault detour) whose diameter exceeds the inline
/// telemetry capacity fails loudly at (re)route time instead of panicking
/// mid-flight in `HopList::push`.
#[must_use]
pub fn max_route_hops(is_switch: &[bool], adj: &[Vec<(usize, usize)>]) -> usize {
    let n = is_switch.len();
    let switch_adj: Vec<Vec<usize>> = (0..n)
        .map(|u| {
            if !is_switch[u] {
                return Vec::new();
            }
            adj[u].iter().filter(|&&(v, _)| is_switch[v]).map(|&(v, _)| v).collect()
        })
        .collect();
    // Only ToRs (switches with a live host behind them) terminate routes.
    let mut tors: Vec<usize> = (0..n)
        .filter(|&h| !is_switch[h])
        .filter_map(|h| adj[h].iter().find(|&&(v, _)| is_switch[v]).map(|&(t, _)| t))
        .collect();
    tors.sort_unstable();
    tors.dedup();
    let mut worst = 0;
    for &t in &tors {
        let dist = bfs_distances(&switch_adj, t);
        for &t2 in &tors {
            if dist[t2] != usize::MAX {
                worst = worst.max(dist[t2] + 1);
            }
        }
    }
    worst
}

/// Deterministic ECMP hash (SplitMix64 finalizer over flow ⊕ node).
#[must_use]
pub fn ecmp_hash(flow: u64, node: u64) -> u64 {
    let mut z = flow.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(node);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// BFS distances from `src` over an adjacency list; `usize::MAX` marks
/// unreachable nodes.
#[must_use]
pub fn bfs_distances(adj: &[Vec<usize>], src: usize) -> Vec<usize> {
    let mut dist = vec![usize::MAX; adj.len()];
    dist[src] = 0;
    let mut q = VecDeque::from([src]);
    while let Some(u) = q.pop_front() {
        for &v in &adj[u] {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                q.push_back(v);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfs_simple_line() {
        // 0 - 1 - 2
        let adj = vec![vec![1], vec![0, 2], vec![1]];
        assert_eq!(bfs_distances(&adj, 0), vec![0, 1, 2]);
        assert_eq!(bfs_distances(&adj, 2), vec![2, 1, 0]);
    }

    #[test]
    fn bfs_unreachable() {
        let adj = vec![vec![1], vec![0], vec![]];
        assert_eq!(bfs_distances(&adj, 0)[2], usize::MAX);
    }

    #[test]
    fn ecmp_hash_spreads_flows() {
        let mut counts = [0usize; 4];
        for f in 0..4000u64 {
            counts[(ecmp_hash(f, 7) % 4) as usize] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn pick_is_stable_per_flow() {
        let mut t = RouteTable::new(1);
        t.set(0, vec![10, 11, 12]);
        let p1 = t.pick(0, FlowId(42), NodeId(3));
        let p2 = t.pick(0, FlowId(42), NodeId(3));
        assert_eq!(p1, p2);
        assert!(t.candidates(0).contains(&p1));
    }

    #[test]
    #[should_panic(expected = "no route")]
    fn unreachable_pick_panics() {
        let t = RouteTable::new(1);
        let _ = t.pick(0, FlowId(0), NodeId(0));
    }

    #[test]
    fn try_pick_returns_none_instead_of_panicking() {
        let mut t = RouteTable::new(2);
        t.set(1, vec![4]);
        assert_eq!(t.try_pick(0, FlowId(0), NodeId(0)), None);
        assert_eq!(t.try_pick(1, FlowId(0), NodeId(0)), Some(4));
    }

    /// Two hosts (0, 1) under ToRs (2, 3) joined by spines (4, 5):
    /// classic 2x2 leaf-spine in miniature.
    fn leaf_spine_adj() -> (Vec<bool>, Vec<Vec<(usize, usize)>>) {
        let is_switch = vec![false, false, true, true, true, true];
        let adj = vec![
            vec![(2, 0)],                 // h0 -> ToR 2
            vec![(3, 0)],                 // h1 -> ToR 3
            vec![(0, 0), (4, 1), (5, 2)], // ToR 2
            vec![(1, 0), (4, 1), (5, 2)], // ToR 3
            vec![(2, 0), (3, 1)],         // spine 4
            vec![(2, 0), (3, 1)],         // spine 5
        ];
        (is_switch, adj)
    }

    #[test]
    fn compute_route_tables_ecmp_up_and_access_down() {
        let (is_switch, adj) = leaf_spine_adj();
        let tables = compute_route_tables(&is_switch, &adj);
        // ToR 2 reaches h0 on the access port and h1 via both spines.
        assert_eq!(tables[2].candidates(0), &[0]);
        assert_eq!(tables[2].candidates(1), &[1, 2]);
        // Spines deliver h1 straight down to ToR 3.
        assert_eq!(tables[4].candidates(1), &[1]);
        assert_eq!(tables[5].candidates(1), &[1]);
        // Hosts have no routes of their own.
        assert!(tables[0].candidates(1).is_empty());
    }

    #[test]
    fn compute_route_tables_reroutes_around_dead_spine_link() {
        let (is_switch, mut adj) = leaf_spine_adj();
        // Kill ToR 2 <-> spine 4 (both directions).
        adj[2].retain(|&(v, _)| v != 4);
        adj[4].retain(|&(v, _)| v != 2);
        let tables = compute_route_tables(&is_switch, &adj);
        // ToR 2 now reaches h1 only via spine 5 (port 2).
        assert_eq!(tables[2].candidates(1), &[2]);
        // Spine 4 lost its only edge toward ToR 2, so it reaches h0 by
        // the leaf bounce through ToR 3 (then spine 5, then ToR 2).
        assert_eq!(tables[4].candidates(0), &[1]);
    }

    #[test]
    fn max_route_hops_counts_switch_stamps() {
        let (is_switch, adj) = leaf_spine_adj();
        // h0 -> ToR 2 -> spine -> ToR 3 -> h1: three egress stamps.
        assert_eq!(max_route_hops(&is_switch, &adj), 3);
    }

    #[test]
    fn max_route_hops_grows_on_reroute_lengthened_path() {
        // Hosts 0/1 behind ToRs 2/3; the ToRs are joined directly and via
        // a three-switch detour (4-5-6): a ring in miniature.
        let is_switch = vec![false, false, true, true, true, true, true];
        let mut adj = vec![
            vec![(2, 0)],                 // h0 -> ToR 2
            vec![(3, 0)],                 // h1 -> ToR 3
            vec![(0, 0), (3, 1), (4, 2)], // ToR 2
            vec![(1, 0), (2, 1), (6, 2)], // ToR 3
            vec![(2, 0), (5, 1)],         // detour
            vec![(4, 0), (6, 1)],
            vec![(5, 0), (3, 1)],
        ];
        // Direct ToR-ToR link up: two stamps.
        assert_eq!(max_route_hops(&is_switch, &adj), 2);
        // Kill the direct link; the reroute goes 2-4-5-6-3: five stamps,
        // still within the inline HopList capacity.
        adj[2].retain(|&(v, _)| v != 3);
        adj[3].retain(|&(v, _)| v != 2);
        let lengthened = max_route_hops(&is_switch, &adj);
        assert_eq!(lengthened, 5);
        assert!(lengthened <= dsh_transport::HOP_CAPACITY);
    }

    #[test]
    fn compute_route_tables_tolerates_dead_access_link() {
        let (is_switch, mut adj) = leaf_spine_adj();
        adj[0].clear();
        adj[2].retain(|&(v, _)| v != 0);
        let tables = compute_route_tables(&is_switch, &adj);
        for t in &tables {
            assert!(t.candidates(0).is_empty(), "severed host must be unreachable");
        }
        // The rest of the fabric still routes.
        assert_eq!(tables[2].candidates(1), &[1, 2]);
    }
}
