//! Shortest-path ECMP routing over the switch graph.
//!
//! For every destination ToR we run a BFS over the (possibly degraded)
//! switch topology; each switch's next hops toward a host are the
//! neighbours strictly closer to the host's ToR. ECMP selection hashes the
//! flow id so a flow stays on one path (per-flow ECMP, as in the paper's
//! setup).
//!
//! After link failures this "local shortest path" rule produces detour
//! (leaf-bounce) paths — e.g. the paper's Fig. 12 scenario, where two
//! failures force `S0→L1→S1` style bounces and create the cyclic buffer
//! dependency that deadlocks SIH.

use crate::ids::{FlowId, NodeId};
use std::collections::VecDeque;

/// Per-switch routing table: `routes[host] -> candidate egress ports`.
#[derive(Clone, Debug, Default)]
pub struct RouteTable {
    routes: Vec<Vec<usize>>,
}

impl RouteTable {
    /// Builds an empty table sized for `num_hosts` destinations.
    #[must_use]
    pub fn new(num_hosts: usize) -> Self {
        RouteTable { routes: vec![Vec::new(); num_hosts] }
    }

    /// Sets the candidate egress ports toward `host`.
    pub fn set(&mut self, host: usize, ports: Vec<usize>) {
        self.routes[host] = ports;
    }

    /// All candidate ports toward `host`.
    #[must_use]
    pub fn candidates(&self, host: usize) -> &[usize] {
        &self.routes[host]
    }

    /// Picks the ECMP port for `flow` toward `host`.
    ///
    /// # Panics
    ///
    /// Panics if the destination is unreachable (empty candidate set) —
    /// a topology construction bug.
    #[must_use]
    pub fn pick(&self, host: usize, flow: FlowId, node: NodeId) -> usize {
        let c = &self.routes[host];
        assert!(!c.is_empty(), "no route from {node} to host {host}");
        c[(ecmp_hash(flow.0 as u64, node.0 as u64) as usize) % c.len()]
    }
}

/// Deterministic ECMP hash (SplitMix64 finalizer over flow ⊕ node).
#[must_use]
pub fn ecmp_hash(flow: u64, node: u64) -> u64 {
    let mut z = flow.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(node);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// BFS distances from `src` over an adjacency list; `usize::MAX` marks
/// unreachable nodes.
#[must_use]
pub fn bfs_distances(adj: &[Vec<usize>], src: usize) -> Vec<usize> {
    let mut dist = vec![usize::MAX; adj.len()];
    dist[src] = 0;
    let mut q = VecDeque::from([src]);
    while let Some(u) = q.pop_front() {
        for &v in &adj[u] {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                q.push_back(v);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfs_simple_line() {
        // 0 - 1 - 2
        let adj = vec![vec![1], vec![0, 2], vec![1]];
        assert_eq!(bfs_distances(&adj, 0), vec![0, 1, 2]);
        assert_eq!(bfs_distances(&adj, 2), vec![2, 1, 0]);
    }

    #[test]
    fn bfs_unreachable() {
        let adj = vec![vec![1], vec![0], vec![]];
        assert_eq!(bfs_distances(&adj, 0)[2], usize::MAX);
    }

    #[test]
    fn ecmp_hash_spreads_flows() {
        let mut counts = [0usize; 4];
        for f in 0..4000u64 {
            counts[(ecmp_hash(f, 7) % 4) as usize] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn pick_is_stable_per_flow() {
        let mut t = RouteTable::new(1);
        t.set(0, vec![10, 11, 12]);
        let p1 = t.pick(0, FlowId(42), NodeId(3));
        let p2 = t.pick(0, FlowId(42), NodeId(3));
        assert_eq!(p1, p2);
        assert!(t.candidates(0).contains(&p1));
    }

    #[test]
    #[should_panic(expected = "no route")]
    fn unreachable_pick_panics() {
        let t = RouteTable::new(1);
        let _ = t.pick(0, FlowId(0), NodeId(0));
    }
}
