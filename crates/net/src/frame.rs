//! Wire frames: data packets, ACKs, NACKs, CNPs and PFC control frames.

use crate::ids::{FlowId, NodeId, CONTROL_CLASS};
use dsh_transport::HopList;

/// Wire size of an ACK/CNP/PFC control frame (minimum Ethernet frame).
pub const CONTROL_FRAME_BYTES: u64 = 64;

/// A data segment of a flow.
///
/// Frames are plain `Copy` data: the INT hop records live inline in a
/// fixed-capacity [`HopList`], so building, forwarding and echoing a frame
/// never touches the heap.
#[derive(Clone, Copy, Debug)]
pub struct DataFrame {
    /// The flow this segment belongs to.
    pub flow: FlowId,
    /// Source host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Byte offset of this segment within the flow.
    pub seq: u64,
    /// Payload bytes carried.
    pub payload: u64,
    /// ECN Congestion Experienced mark.
    pub ecn: bool,
    /// In-band telemetry appended hop by hop (PowerTCP).
    pub hops: HopList,
}

/// An acknowledgment for one data segment, echoing ECN and telemetry.
#[derive(Clone, Copy, Debug)]
pub struct AckFrame {
    /// The acknowledged flow.
    pub flow: FlowId,
    /// Destination of the ACK (the flow's source host).
    pub dst: NodeId,
    /// Payload bytes acknowledged by this ACK.
    pub acked: u64,
    /// Echo of the data packet's ECN mark.
    pub ecn_echo: bool,
    /// Echo of the data packet's INT telemetry (an inline copy, not a
    /// heap clone).
    pub hops: HopList,
}

/// A selective-repeat NACK: the receiver's cumulative in-order mark plus
/// its out-of-order delivery bitmap, sent on every out-of-order data
/// arrival when the recovery regime is
/// [`SelectiveRepeat`](dsh_transport::Regime::SelectiveRepeat).
///
/// Bit `k` of `bitmap` set ⇔ the segment starting at
/// `expected + (k+1)·mtu` is already buffered at the receiver; the
/// segment at `expected` itself is missing by definition. The sender's
/// [`SackState`](dsh_transport::SackState) consumes the bitmap verbatim.
#[derive(Clone, Copy, Debug)]
pub struct NackFrame {
    /// The flow with a sequence gap.
    pub flow: FlowId,
    /// Destination of the NACK (the flow's source host).
    pub dst: NodeId,
    /// The receiver's cumulative in-order byte mark (doubles as an ACK).
    pub expected: u64,
    /// Out-of-order delivery bitmap over MTU-strided segments.
    pub bitmap: u64,
    /// Echo of the triggering data packet's ECN mark.
    pub ecn_echo: bool,
}

/// Scope of a PFC pause/resume.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PfcScope {
    /// One priority class (standard PFC).
    Queue(u8),
    /// All classes at once (a PFC frame with every priority timer set —
    /// DSH's port-level flow control).
    Port,
}

/// A PFC PAUSE (or zero-duration RESUME) frame.
#[derive(Clone, Copy, Debug)]
pub struct PfcFrame {
    /// Which traffic the frame pauses/resumes.
    pub scope: PfcScope,
    /// `true` = PAUSE, `false` = RESUME.
    pub pause: bool,
}

/// Frame payload variants.
#[derive(Clone, Copy, Debug)]
pub enum FrameKind {
    /// Flow data.
    Data(DataFrame),
    /// Acknowledgment.
    Ack(AckFrame),
    /// Selective-repeat NACK (out-of-order arrival report), addressed to
    /// the flow's source.
    Nack(NackFrame),
    /// Congestion Notification Packet (DCQCN), addressed to the flow's
    /// source.
    Cnp {
        /// The congested flow.
        flow: FlowId,
        /// The flow's source host.
        dst: NodeId,
    },
    /// Link-local PFC control frame (never forwarded).
    Pfc(PfcFrame),
}

/// A frame on the wire.
#[derive(Clone, Copy, Debug)]
pub struct Frame {
    /// Wire size in bytes (serialization time = `bytes / C`).
    pub bytes: u64,
    /// Priority class, i.e. which egress queue carries it.
    pub class: u8,
    /// The payload.
    pub kind: FrameKind,
}

impl Frame {
    /// Builds a data frame in the given class.
    #[must_use]
    pub fn data(d: DataFrame, class: u8) -> Frame {
        Frame { bytes: d.payload, class, kind: FrameKind::Data(d) }
    }

    /// Builds an ACK control frame.
    #[must_use]
    pub fn ack(a: AckFrame) -> Frame {
        Frame { bytes: CONTROL_FRAME_BYTES, class: CONTROL_CLASS, kind: FrameKind::Ack(a) }
    }

    /// Builds a NACK control frame (rides the control class like ACKs, so
    /// it is never blocked by data-class PFC).
    #[must_use]
    pub fn nack(n: NackFrame) -> Frame {
        Frame { bytes: CONTROL_FRAME_BYTES, class: CONTROL_CLASS, kind: FrameKind::Nack(n) }
    }

    /// Builds a CNP control frame.
    #[must_use]
    pub fn cnp(flow: FlowId, dst: NodeId) -> Frame {
        Frame {
            bytes: CONTROL_FRAME_BYTES,
            class: CONTROL_CLASS,
            kind: FrameKind::Cnp { flow, dst },
        }
    }

    /// Builds a PFC control frame.
    #[must_use]
    pub fn pfc(scope: PfcScope, pause: bool) -> Frame {
        Frame {
            bytes: CONTROL_FRAME_BYTES,
            class: CONTROL_CLASS,
            kind: FrameKind::Pfc(PfcFrame { scope, pause }),
        }
    }

    /// Routing destination, if the frame is forwardable (PFC frames are
    /// link-local).
    #[must_use]
    pub fn dst(&self) -> Option<NodeId> {
        match &self.kind {
            FrameKind::Data(d) => Some(d.dst),
            FrameKind::Ack(a) => Some(a.dst),
            FrameKind::Nack(n) => Some(n.dst),
            FrameKind::Cnp { dst, .. } => Some(*dst),
            FrameKind::Pfc(_) => None,
        }
    }

    /// Whether this is a data frame (subject to MMU admission and PFC).
    #[must_use]
    pub fn is_data(&self) -> bool {
        matches!(self.kind, FrameKind::Data(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_class_and_size() {
        let d = Frame::data(
            DataFrame {
                flow: FlowId(1),
                src: NodeId(0),
                dst: NodeId(2),
                seq: 0,
                payload: 1500,
                ecn: false,
                hops: HopList::new(),
            },
            3,
        );
        assert_eq!(d.bytes, 1500);
        assert_eq!(d.class, 3);
        assert!(d.is_data());
        assert_eq!(d.dst(), Some(NodeId(2)));

        let a = Frame::ack(AckFrame {
            flow: FlowId(1),
            dst: NodeId(0),
            acked: 1500,
            ecn_echo: true,
            hops: HopList::new(),
        });
        assert_eq!(a.bytes, CONTROL_FRAME_BYTES);
        assert_eq!(a.class, CONTROL_CLASS);
        assert_eq!(a.dst(), Some(NodeId(0)));

        let p = Frame::pfc(PfcScope::Port, true);
        assert_eq!(p.dst(), None);
        assert!(!p.is_data());

        let n = Frame::nack(NackFrame {
            flow: FlowId(1),
            dst: NodeId(0),
            expected: 3000,
            bitmap: 0b101,
            ecn_echo: false,
        });
        assert_eq!(n.bytes, CONTROL_FRAME_BYTES);
        assert_eq!(n.class, CONTROL_CLASS);
        assert_eq!(n.dst(), Some(NodeId(0)));
        assert!(!n.is_data());
    }
}
