//! The egress side of a full-duplex port: 8 priority queues, DWRR
//! scheduling, PFC pause state, and transmission bookkeeping.

use crate::frame::{Frame, FrameKind};
use crate::ids::{NodeId, CONTROL_CLASS, NUM_CLASSES};
use crate::monitor::DurationHistogram;
use dsh_core::Region;
use dsh_simcore::{Bandwidth, Delta, Time};
use std::collections::VecDeque;

/// DWRR quantum used by the paper's evaluation (1600 B).
pub const DWRR_QUANTUM: u64 = 1600;

/// Where a queued frame was admitted on ingress — needed to release the
/// MMU accounting when it departs.
#[derive(Clone, Copy, Debug)]
pub struct IngressTag {
    /// Ingress port index the frame arrived on.
    pub in_port: usize,
    /// MMU queue (lossless class) it was accounted under.
    pub in_queue: usize,
    /// Buffer segment it was admitted into (the per-packet pool tag a real
    /// MMU keeps; released exactly on departure).
    pub region: Region,
}

/// A frame waiting in an egress queue.
///
/// The frame itself is boxed: queue entries and calendar events stay a few
/// pointers wide even though the frame carries its INT hop records inline,
/// and the box is recycled through the network's frame pool instead of
/// being freed when the frame is consumed.
#[derive(Clone, Debug)]
pub struct QueuedFrame {
    /// The frame.
    pub frame: Box<Frame>,
    /// MMU accounting tag (switch ingress only; `None` on hosts).
    pub ingress: Option<IngressTag>,
}

/// Per-class pause bookkeeping: total paused wall-clock (Fig. 11's
/// metric), the currently open pause interval, and the distribution of
/// closed pause→resume intervals (telemetry).
#[derive(Clone, Debug, Default)]
struct PauseClock {
    paused: bool,
    since: Time,
    total: Delta,
    closed: DurationHistogram,
}

impl PauseClock {
    fn paused_since(&self) -> Option<Time> {
        self.paused.then_some(self.since)
    }

    fn set(&mut self, pause: bool, now: Time) {
        if pause && !self.paused {
            self.paused = true;
            self.since = now;
        } else if !pause && self.paused {
            self.paused = false;
            let d = now - self.since;
            self.total += d;
            self.closed.record(d);
        }
    }

    fn total_at(&self, now: Time) -> Delta {
        if self.paused {
            self.total + (now - self.since)
        } else {
            self.total
        }
    }
}

/// The egress side of one port.
#[derive(Clone, Debug)]
pub struct EgressPort {
    /// Peer node this port transmits toward.
    pub peer: NodeId,
    /// Port index on the peer that receives our frames.
    pub peer_port: usize,
    /// Link bandwidth.
    pub bandwidth: Bandwidth,
    /// Link propagation delay.
    pub prop_delay: Delta,

    queues: [VecDeque<QueuedFrame>; NUM_CLASSES],
    /// Link-local PFC frames: a dedicated lane served ahead of everything,
    /// including queued control traffic. 802.1Qbb pause frames are emitted
    /// at the MAC ahead of queued frames; if they instead waited FIFO
    /// behind an ACK/CNP backlog in the control queue, the pause could
    /// exceed the one-MTU waiting delay budgeted in the headroom formula
    /// and overflow the headroom (observed as a rare `headroom-full` drop
    /// at high load before this lane existed).
    pfc: VecDeque<QueuedFrame>,
    pfc_bytes: u64,
    qbytes: [u64; NUM_CLASSES],
    deficit: [u64; NUM_CLASSES],
    /// Round-robin order of active (non-empty) data queues.
    active: VecDeque<usize>,
    in_active: [bool; NUM_CLASSES],

    /// Serializer busy until further notice (a `TxDone` event is pending).
    busy: bool,
    /// PFC pause state per data class (set by frames from the peer).
    class_pause: [PauseClock; NUM_CLASSES],
    /// Port-level pause (DSH).
    port_pause: PauseClock,
    /// First instant since which the port continuously had queued data but
    /// could transmit nothing (deadlock detection).
    blocked_since: Option<Time>,
    /// Whether the attached link is alive. Both endpoints of a link share
    /// one up/down state; fault injection flips both sides together.
    link_up: bool,
    /// Bumped on every [`EgressPort::fail`]. In-flight `ApplyPause` events
    /// carry the generation they were issued under and are discarded on
    /// mismatch: a PAUSE crossing a link that then dies must not wedge the
    /// port, because its matching RESUME died with the link.
    fault_gen: u32,
    /// Cumulative bytes transmitted (INT telemetry λ source).
    tx_bytes: u64,
    /// Frames transmitted.
    tx_frames: u64,
}

impl EgressPort {
    /// Creates an idle egress port toward `peer`.
    #[must_use]
    pub fn new(peer: NodeId, peer_port: usize, bandwidth: Bandwidth, prop_delay: Delta) -> Self {
        EgressPort {
            peer,
            peer_port,
            bandwidth,
            prop_delay,
            // The per-class tables live inline (ports are built by the
            // hundred per experiment; five heap round-trips per port was
            // measurable in the end-to-end benches). The ring buffers
            // start unallocated — most class queues on most ports are
            // never touched — and grow on first use. Only the PFC lane is
            // pre-sized: the first pause of a run can land long after
            // warmup.
            queues: std::array::from_fn(|_| VecDeque::new()),
            pfc: VecDeque::with_capacity(8),
            pfc_bytes: 0,
            qbytes: [0; NUM_CLASSES],
            deficit: [0; NUM_CLASSES],
            active: VecDeque::with_capacity(NUM_CLASSES),
            in_active: [false; NUM_CLASSES],
            busy: false,
            class_pause: std::array::from_fn(|_| PauseClock::default()),
            port_pause: PauseClock::default(),
            blocked_since: None,
            link_up: true,
            fault_gen: 0,
            tx_bytes: 0,
            tx_frames: 0,
        }
    }

    /// Queued bytes in one class's egress queue (ECN input).
    #[must_use]
    pub fn queue_bytes(&self, class: u8) -> u64 {
        self.qbytes[class as usize]
    }

    /// Total queued bytes across all classes (including pending PFC
    /// frames).
    #[must_use]
    pub fn total_queued_bytes(&self) -> u64 {
        self.qbytes.iter().sum::<u64>() + self.pfc_bytes
    }

    /// Cumulative transmitted bytes.
    #[must_use]
    pub fn tx_bytes(&self) -> u64 {
        self.tx_bytes
    }

    /// Cumulative transmitted frames.
    #[must_use]
    pub fn tx_frames(&self) -> u64 {
        self.tx_frames
    }

    /// Whether the serializer is mid-frame.
    #[must_use]
    pub fn is_busy(&self) -> bool {
        self.busy
    }

    /// Marks the serializer busy (a frame transmission started).
    pub fn set_busy(&mut self) {
        debug_assert!(!self.busy, "transmission while busy");
        self.busy = true;
    }

    /// Marks the serializer idle (`TxDone`).
    pub fn set_idle(&mut self) {
        debug_assert!(self.busy, "TxDone while idle");
        self.busy = false;
    }

    /// Whether `class` may transmit right now (control class is
    /// pause-exempt).
    #[must_use]
    pub fn class_sendable(&self, class: u8) -> bool {
        if class == CONTROL_CLASS {
            return true;
        }
        !self.class_pause[class as usize].paused && !self.port_pause.paused
    }

    /// Applies a queue-level PFC pause/resume received from the peer.
    pub fn apply_class_pause(&mut self, class: u8, pause: bool, now: Time) {
        self.class_pause[class as usize].set(pause, now);
    }

    /// Applies a port-level PFC pause/resume received from the peer.
    pub fn apply_port_pause(&mut self, pause: bool, now: Time) {
        self.port_pause.set(pause, now);
    }

    /// Whether a queue-level pause is asserted for `class`.
    #[must_use]
    pub fn class_paused(&self, class: u8) -> bool {
        self.class_pause[class as usize].paused
    }

    /// Whether the port-level pause is asserted.
    #[must_use]
    pub fn port_paused(&self) -> bool {
        self.port_pause.paused
    }

    /// Total time `class` has spent paused up to `now` (includes the
    /// currently open interval). Port-level pause time is accounted
    /// separately via [`EgressPort::port_pause_total`].
    #[must_use]
    pub fn class_pause_total(&self, class: u8, now: Time) -> Delta {
        self.class_pause[class as usize].total_at(now)
    }

    /// Total time the port-level pause has been asserted up to `now`.
    #[must_use]
    pub fn port_pause_total(&self, now: Time) -> Delta {
        self.port_pause.total_at(now)
    }

    /// Distribution of every *closed* pause→resume interval observed at
    /// this port, queue-level (all classes) and port-level merged.
    #[must_use]
    pub fn pause_latency_histogram(&self) -> DurationHistogram {
        let mut h = self.port_pause.closed.clone();
        for c in &self.class_pause {
            h.merge(&c.closed);
        }
        h
    }

    /// Distribution of closed pause→resume intervals for one traffic
    /// class only — multi-class runs read this to keep control-class and
    /// data-class pauses apart.
    #[must_use]
    pub fn class_pause_latency_histogram(&self, class: u8) -> &DurationHistogram {
        &self.class_pause[class as usize].closed
    }

    /// Distribution of closed *port-level* (POFF) pause intervals only.
    #[must_use]
    pub fn port_pause_latency_histogram(&self) -> &DurationHistogram {
        &self.port_pause.closed
    }

    /// Enqueues a frame for transmission. PFC frames go to their own
    /// highest-priority lane (FIFO among themselves, so a PAUSE can never
    /// overtake its matching RESUME).
    pub fn enqueue(&mut self, qf: QueuedFrame) {
        if matches!(qf.frame.kind, FrameKind::Pfc(_)) {
            self.pfc_bytes += qf.frame.bytes;
            self.pfc.push_back(qf);
            return;
        }
        let c = qf.frame.class as usize;
        self.qbytes[c] += qf.frame.bytes;
        // First touch sizes the ring for a burst in one step; untouched
        // classes stay unallocated (see `EgressPort::new`), and growing
        // 0→4→8→… would memcpy the queue several times on the way up.
        if self.queues[c].capacity() == 0 {
            self.queues[c].reserve(32);
        }
        self.queues[c].push_back(qf);
        if c != CONTROL_CLASS as usize && !self.in_active[c] {
            self.in_active[c] = true;
            self.active.push_back(c);
        }
    }

    /// Picks the next frame to transmit, honouring strict priority for the
    /// control class, DWRR among data classes, and PFC pause state.
    ///
    /// Returns `None` when nothing is eligible. Updates the blocked-since
    /// marker used by deadlock detection.
    pub fn pick(&mut self, now: Time) -> Option<QueuedFrame> {
        // A dead link transmits nothing. `fail` drained the queues, so
        // this only guards frames enqueued while the link is down (they
        // wait for `restore`); a dead port is never deadlock-blocked.
        if !self.link_up {
            return None;
        }

        // PFC lane: ahead of everything, never paused (802.1Qbb pause
        // frames bypass even queued control traffic).
        if let Some(qf) = self.pfc.pop_front() {
            self.pfc_bytes -= qf.frame.bytes;
            self.note_service();
            return Some(qf);
        }

        // Control queue: strict priority, never paused.
        if let Some(qf) = self.queues[CONTROL_CLASS as usize].pop_front() {
            self.qbytes[CONTROL_CLASS as usize] -= qf.frame.bytes;
            self.note_service();
            return Some(qf);
        }

        // Single-active-class fast path: DWRR degenerates to FIFO, so pop
        // the head directly. The deficit update below is the closed form
        // of the loop's repeated quantum top-ups, leaving bit-identical
        // scheduler state for when a second class activates.
        if self.active.len() == 1 {
            let c = *self.active.front().expect("len checked");
            if self.class_sendable(c as u8) {
                if let Some(sz) = self.queues[c].front().map(|h| h.frame.bytes) {
                    if self.deficit[c] < sz {
                        let need = sz - self.deficit[c];
                        self.deficit[c] += need.div_ceil(DWRR_QUANTUM) * DWRR_QUANTUM;
                    }
                    let qf = self.queues[c].pop_front().expect("head exists");
                    self.qbytes[c] -= sz;
                    self.deficit[c] -= sz;
                    if self.queues[c].is_empty() {
                        self.active.pop_front();
                        self.in_active[c] = false;
                        self.deficit[c] = 0;
                    }
                    self.note_service();
                    return Some(qf);
                }
            }
        }

        // DWRR over data classes, skipping paused queues.
        loop {
            let rounds = self.active.len();
            if rounds == 0 {
                break;
            }
            let mut any_eligible = false;
            for _ in 0..rounds {
                let Some(&c) = self.active.front() else { break };
                let sendable = self.class_sendable(c as u8);
                let head_bytes = self.queues[c].front().map(|f| f.frame.bytes);
                match head_bytes {
                    None => {
                        // Queue drained: drop from the active list.
                        self.active.pop_front();
                        self.in_active[c] = false;
                        self.deficit[c] = 0;
                    }
                    Some(sz) if sendable => {
                        any_eligible = true;
                        if self.deficit[c] >= sz {
                            let qf = self.queues[c].pop_front().expect("head exists");
                            self.qbytes[c] -= sz;
                            self.deficit[c] -= sz;
                            if self.queues[c].is_empty() {
                                self.active.pop_front();
                                self.in_active[c] = false;
                                self.deficit[c] = 0;
                            }
                            self.note_service();
                            return Some(qf);
                        }
                        // Not enough deficit yet: top up and move on.
                        self.deficit[c] += DWRR_QUANTUM;
                        self.active.rotate_left(1);
                    }
                    Some(_) => {
                        // Paused: skip without granting quantum.
                        self.active.rotate_left(1);
                    }
                }
            }
            if !any_eligible {
                break;
            }
        }

        // Data is queued but nothing may send: the port is blocked.
        if self.total_queued_bytes() > 0 && self.blocked_since.is_none() {
            self.blocked_since = Some(now);
        }
        None
    }

    /// Records that a transmission completed (`bytes` hit the wire).
    pub fn note_tx(&mut self, bytes: u64) {
        self.tx_bytes += bytes;
        self.tx_frames += 1;
    }

    fn note_service(&mut self) {
        self.blocked_since = None;
    }

    /// How long the port has continuously been unable to serve queued data
    /// (deadlock detector input).
    #[must_use]
    pub fn blocked_since(&self) -> Option<Time> {
        self.blocked_since
    }

    /// Start of the current queue-level pause for `class`, if asserted.
    #[must_use]
    pub fn class_paused_since(&self, class: u8) -> Option<Time> {
        self.class_pause[class as usize].paused_since()
    }

    /// Start of the current port-level pause, if asserted.
    #[must_use]
    pub fn port_paused_since(&self) -> Option<Time> {
        self.port_pause.paused_since()
    }

    /// Whether the attached link is alive.
    #[must_use]
    pub fn is_link_up(&self) -> bool {
        self.link_up
    }

    /// Fault generation this port is currently in (see the field docs).
    #[must_use]
    pub fn fault_gen(&self) -> u32 {
        self.fault_gen
    }

    /// Link failure: drains every queue (including the PFC lane) into
    /// `out`, zeroes the byte/deficit accounting, force-closes all pause
    /// clocks (the peer that asserted them is unreachable; the intervals
    /// close into the telemetry histograms), clears the deadlock marker,
    /// bumps the fault generation, and marks the link down. The caller
    /// releases MMU accounting for the drained frames. The `busy` flag is
    /// left alone: a pending `TxDone` event will clear it.
    pub fn fail(&mut self, now: Time, out: &mut Vec<QueuedFrame>) {
        self.link_up = false;
        self.fault_gen = self.fault_gen.wrapping_add(1);
        for c in 0..NUM_CLASSES {
            self.qbytes[c] = 0;
            self.deficit[c] = 0;
            self.in_active[c] = false;
            out.extend(self.queues[c].drain(..));
        }
        self.active.clear();
        self.pfc_bytes = 0;
        out.extend(self.pfc.drain(..));
        for c in &mut self.class_pause {
            c.set(false, now);
        }
        self.port_pause.set(false, now);
        self.blocked_since = None;
    }

    /// Link repair: the port may transmit again. Pause state starts clean
    /// (cleared by [`EgressPort::fail`]); the peer re-asserts any pause it
    /// still needs through ordinary PFC frames.
    pub fn restore(&mut self) {
        self.link_up = true;
    }

    /// PFC watchdog action: forcibly clears the pause state of `class`
    /// and drains its queued frames (which the watchdog drops) into `out`,
    /// so the caller can release MMU accounting. Appends to `out` without
    /// clearing it, reusing its capacity across flushes.
    pub fn watchdog_flush_class(&mut self, class: u8, now: Time, out: &mut Vec<QueuedFrame>) {
        self.class_pause[class as usize].set(false, now);
        self.port_pause.set(false, now);
        let c = class as usize;
        self.qbytes[c] = 0;
        self.blocked_since = None;
        out.extend(self.queues[c].drain(..));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{DataFrame, Frame};
    use crate::ids::FlowId;

    fn data_frame(class: u8, bytes: u64) -> QueuedFrame {
        QueuedFrame {
            frame: Box::new(Frame::data(
                DataFrame {
                    flow: FlowId(0),
                    src: NodeId(0),
                    dst: NodeId(1),
                    seq: 0,
                    payload: bytes,
                    ecn: false,
                    hops: dsh_transport::HopList::new(),
                },
                class,
            )),
            ingress: None,
        }
    }

    fn pfc_frame(scope: crate::frame::PfcScope, pause: bool) -> QueuedFrame {
        QueuedFrame { frame: Box::new(Frame::pfc(scope, pause)), ingress: None }
    }

    fn ack_frame() -> QueuedFrame {
        QueuedFrame {
            frame: Box::new(Frame::ack(crate::frame::AckFrame {
                flow: FlowId(0),
                dst: NodeId(0),
                acked: 1500,
                ecn_echo: false,
                hops: dsh_transport::HopList::new(),
            })),
            ingress: None,
        }
    }

    fn port() -> EgressPort {
        EgressPort::new(NodeId(1), 0, Bandwidth::from_gbps(100), Delta::from_us(2))
    }

    #[test]
    fn control_class_has_strict_priority() {
        let mut p = port();
        p.enqueue(data_frame(0, 1500));
        p.enqueue(pfc_frame(crate::frame::PfcScope::Port, true));
        let first = p.pick(Time::ZERO).unwrap();
        assert_eq!(first.frame.class, CONTROL_CLASS);
        let second = p.pick(Time::ZERO).unwrap();
        assert_eq!(second.frame.class, 0);
        assert!(p.pick(Time::ZERO).is_none());
    }

    #[test]
    fn dwrr_is_fair_between_equal_classes() {
        let mut p = port();
        for _ in 0..100 {
            p.enqueue(data_frame(0, 1500));
            p.enqueue(data_frame(1, 1500));
        }
        let mut counts = [0usize; 2];
        for _ in 0..100 {
            let qf = p.pick(Time::ZERO).unwrap();
            counts[qf.frame.class as usize] += 1;
        }
        let diff = counts[0].abs_diff(counts[1]);
        assert!(diff <= 2, "{counts:?}");
    }

    #[test]
    fn dwrr_fairness_is_bytewise_not_packetwise() {
        // Class 0 sends 500 B frames, class 1 sends 1500 B frames; over a
        // long run both should get ~equal bytes, so class 0 sends ~3x the
        // packets.
        let mut p = port();
        for _ in 0..600 {
            p.enqueue(data_frame(0, 500));
        }
        for _ in 0..200 {
            p.enqueue(data_frame(1, 1500));
        }
        let mut bytes = [0u64; 2];
        for _ in 0..400 {
            let qf = p.pick(Time::ZERO).unwrap();
            bytes[qf.frame.class as usize] += qf.frame.bytes;
        }
        let ratio = bytes[0] as f64 / bytes[1] as f64;
        assert!((ratio - 1.0).abs() < 0.1, "byte split {bytes:?}");
    }

    #[test]
    fn paused_class_is_skipped_and_resumes() {
        let mut p = port();
        p.enqueue(data_frame(0, 1500));
        p.enqueue(data_frame(1, 1500));
        p.apply_class_pause(0, true, Time::ZERO);
        let qf = p.pick(Time::ZERO).unwrap();
        assert_eq!(qf.frame.class, 1);
        assert!(p.pick(Time::ZERO).is_none(), "class 0 paused");
        assert!(p.blocked_since().is_some());
        p.apply_class_pause(0, false, Time::from_us(5));
        let qf = p.pick(Time::from_us(5)).unwrap();
        assert_eq!(qf.frame.class, 0);
        assert!(p.blocked_since().is_none());
    }

    #[test]
    fn port_pause_blocks_all_data_but_not_control() {
        let mut p = port();
        p.enqueue(data_frame(0, 1500));
        p.enqueue(pfc_frame(crate::frame::PfcScope::Queue(0), false));
        p.apply_port_pause(true, Time::ZERO);
        let qf = p.pick(Time::ZERO).unwrap();
        assert_eq!(qf.frame.class, CONTROL_CLASS, "control is pause-exempt");
        assert!(p.pick(Time::ZERO).is_none());
    }

    #[test]
    fn pause_duration_accounting() {
        let mut p = port();
        p.apply_class_pause(2, true, Time::from_us(10));
        p.apply_class_pause(2, false, Time::from_us(35));
        p.apply_class_pause(2, true, Time::from_us(50));
        // Closed interval 25 us + open interval 10 us at t=60.
        assert_eq!(p.class_pause_total(2, Time::from_us(60)), Delta::from_us(35));
        // Double-pause is idempotent.
        p.apply_class_pause(2, true, Time::from_us(70));
        assert_eq!(p.class_pause_total(2, Time::from_us(80)), Delta::from_us(55));
        // Only the closed interval is in the latency histogram.
        let h = p.pause_latency_histogram();
        assert_eq!(h.count(), 1);
        assert_eq!(h.total(), Delta::from_us(25));
    }

    #[test]
    fn pause_latency_histogram_merges_queue_and_port_level() {
        let mut p = port();
        p.apply_class_pause(0, true, Time::from_us(0));
        p.apply_class_pause(0, false, Time::from_us(5));
        p.apply_port_pause(true, Time::from_us(10));
        p.apply_port_pause(false, Time::from_us(40));
        let h = p.pause_latency_histogram();
        assert_eq!(h.count(), 2);
        assert_eq!(h.total(), Delta::from_us(35));
        assert_eq!(h.max(), Delta::from_us(30));
    }

    #[test]
    fn queue_byte_accounting() {
        let mut p = port();
        p.enqueue(data_frame(3, 1000));
        p.enqueue(data_frame(3, 500));
        assert_eq!(p.queue_bytes(3), 1500);
        let _ = p.pick(Time::ZERO).unwrap();
        assert_eq!(p.queue_bytes(3), 500);
        assert_eq!(p.total_queued_bytes(), 500);
    }

    #[test]
    fn pfc_preempts_queued_control_backlog() {
        // Regression for the rare headroom-full drop at high load: a PFC
        // pause generated behind a backlog of ACKs must still be the next
        // frame on the wire, otherwise its waiting delay exceeds the one
        // MTU budgeted by the headroom formula.
        let mut p = port();
        for _ in 0..8 {
            p.enqueue(ack_frame());
        }
        p.enqueue(data_frame(0, 1500));
        p.enqueue(pfc_frame(crate::frame::PfcScope::Queue(0), true));
        let first = p.pick(Time::ZERO).unwrap();
        assert!(matches!(first.frame.kind, FrameKind::Pfc(_)), "PFC must bypass the ACK backlog");
    }

    #[test]
    fn pfc_lane_is_fifo_so_resume_cannot_overtake_pause() {
        let mut p = port();
        p.enqueue(pfc_frame(crate::frame::PfcScope::Queue(3), true));
        p.enqueue(pfc_frame(crate::frame::PfcScope::Queue(3), false));
        let first = p.pick(Time::ZERO).unwrap();
        let second = p.pick(Time::ZERO).unwrap();
        match (&first.frame.kind, &second.frame.kind) {
            (FrameKind::Pfc(a), FrameKind::Pfc(b)) => {
                assert!(a.pause && !b.pause, "pause must precede its resume");
            }
            other => panic!("expected two PFC frames, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_flush_reuses_caller_buffer() {
        let mut p = port();
        p.enqueue(data_frame(2, 1500));
        p.enqueue(data_frame(2, 500));
        p.apply_class_pause(2, true, Time::ZERO);
        let mut out = Vec::new();
        p.watchdog_flush_class(2, Time::from_us(5), &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(p.queue_bytes(2), 0);
        assert!(!p.class_paused(2));
        // A second flush appends without clearing.
        p.enqueue(data_frame(2, 100));
        p.watchdog_flush_class(2, Time::from_us(6), &mut out);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn fail_drains_everything_and_clears_pause_state() {
        let mut p = port();
        p.enqueue(data_frame(0, 1500));
        p.enqueue(data_frame(2, 500));
        p.enqueue(ack_frame());
        p.enqueue(pfc_frame(crate::frame::PfcScope::Queue(0), true));
        p.apply_class_pause(0, true, Time::ZERO);
        p.apply_port_pause(true, Time::ZERO);
        let gen0 = p.fault_gen();

        let mut out = Vec::new();
        p.fail(Time::from_us(10), &mut out);
        assert_eq!(out.len(), 4, "all queues including the PFC lane drain");
        assert_eq!(p.total_queued_bytes(), 0);
        assert!(!p.is_link_up());
        assert_eq!(p.fault_gen(), gen0 + 1);
        assert!(!p.class_paused(0), "pause clocks force-close on failure");
        assert!(!p.port_paused());
        assert!(p.blocked_since().is_none());

        // Frames enqueued while down wait; a dead port transmits nothing.
        p.enqueue(data_frame(1, 100));
        assert!(p.pick(Time::from_us(11)).is_none());
        assert!(p.blocked_since().is_none(), "a dead port is not deadlocked");

        p.restore();
        assert!(p.is_link_up());
        let qf = p.pick(Time::from_us(12)).expect("restored port transmits");
        assert_eq!(qf.frame.class, 1);
    }

    #[test]
    fn busy_flag_transitions() {
        let mut p = port();
        assert!(!p.is_busy());
        p.set_busy();
        assert!(p.is_busy());
        p.set_idle();
        assert!(!p.is_busy());
    }
}
