//! Ring-buffered time-series metrics sampler (DESIGN.md §16).
//!
//! A calendar event (`NetEvent::MetricsTick`) fires at a configurable
//! interval and snapshots per-switch MMU occupancy plus a handful of
//! partition-global gauges into pre-allocated rings.  Every partition
//! ticks at the same instants, so at the merge barrier per-switch series
//! concatenate (each switch is owned by exactly one partition) and the
//! global series sums pointwise — the exported `metrics.json` is
//! byte-identical at any worker count.

use crate::ids::NodeId;
use dsh_simcore::{Delta, Json, Time};

/// Default ring capacity per series (samples retained before the oldest
/// are overwritten).
pub const DEFAULT_SERIES_CAPACITY: usize = 8192;

/// One per-switch occupancy sample.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SwitchSample {
    /// Sample instant.
    pub t: Time,
    /// Shared-pool bytes in use (`Σ w_ij`).
    pub shared: u64,
    /// Headroom bytes in use, including DSH insurance spill.
    pub headroom: u64,
    /// Queues currently held in XOFF.
    pub paused_queues: u32,
    /// Ports currently held in port-level XOFF (DSH POFF).
    pub paused_ports: u32,
}

/// One partition-global sample.  Counter fields are cumulative at the
/// sample instant; pointwise sums across partitions yield fabric totals.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GlobalSample {
    /// Sample instant.
    pub t: Time,
    /// Links currently simulated by the fluid solver.
    pub fluid_links: u64,
    /// Links currently simulated packet-by-packet.
    pub packet_links: u64,
    /// Egress ports with any pause (class or port scope) in effect.
    pub paused_ports: u64,
    /// Cumulative NACK frames sent by receivers.
    pub nacks_sent: u64,
    /// Cumulative retransmitted payload bytes.
    pub retransmitted_bytes: u64,
    /// Cumulative selective-repeat repair bytes.
    pub sr_retransmitted_bytes: u64,
    /// Cumulative recovery timer (RTO) fires.
    pub recovery_timeouts: u64,
}

/// Fixed-capacity overwrite-oldest ring.  `push` never allocates once the
/// ring is full; overwritten samples are counted in `dropped`.
#[derive(Clone, Debug)]
struct Ring<T> {
    cap: usize,
    buf: Vec<T>,
    /// Next overwrite position once the ring has wrapped.
    head: usize,
    dropped: u64,
}

impl<T: Copy> Ring<T> {
    fn new(cap: usize) -> Self {
        Ring { cap: cap.max(1), buf: Vec::with_capacity(cap.max(1)), head: 0, dropped: 0 }
    }

    fn push(&mut self, v: T) {
        if self.buf.len() < self.cap {
            self.buf.push(v);
        } else {
            self.buf[self.head] = v;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Samples in chronological order.
    fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf[self.head..].iter().chain(self.buf[..self.head].iter())
    }

    fn last(&self) -> Option<&T> {
        if self.buf.is_empty() {
            None
        } else if self.head == 0 {
            self.buf.last()
        } else {
            Some(&self.buf[self.head - 1])
        }
    }
}

/// The sampler: one ring per owned switch plus one global ring.
///
/// Samples are *instant-closed*: the network captures the sample labeled
/// `t` at the first event strictly after `t` (staging it here via
/// [`Self::stage_switch`]/[`Self::stage_global`]) and commits it on the
/// next tick.  The set of events at instants `<= t` is identical in the
/// serial and link-partitioned engines even though their intra-instant
/// order is not, so committed samples are byte-identical at any worker
/// count; the lone capture still staged when the run's deadline cuts the
/// calendar off is deliberately dropped by both engines.
#[derive(Clone, Debug)]
pub struct MetricsSampler {
    interval: Delta,
    cap: usize,
    switches: Vec<(NodeId, Ring<SwitchSample>)>,
    global: Ring<GlobalSample>,
    /// Captured-but-uncommitted per-switch samples for the instant that
    /// just closed, in registration order.  Sized at registration so
    /// staging never allocates mid-run.
    staged_switches: Vec<(NodeId, SwitchSample)>,
    /// Captured-but-uncommitted global sample.
    staged_global: Option<GlobalSample>,
}

impl MetricsSampler {
    pub(crate) fn new(interval: Delta, cap: usize) -> Self {
        MetricsSampler {
            interval,
            cap,
            switches: Vec::new(),
            global: Ring::new(cap),
            staged_switches: Vec::new(),
            staged_global: None,
        }
    }

    /// Pre-registers a locally-owned switch so sampling never allocates.
    pub(crate) fn add_switch(&mut self, node: NodeId) {
        self.switches.push((node, Ring::new(self.cap)));
        if self.staged_switches.capacity() < self.switches.len() {
            let grow = self.switches.len() - self.staged_switches.capacity();
            self.staged_switches.reserve_exact(grow);
        }
    }

    pub(crate) fn interval(&self) -> Delta {
        self.interval
    }

    /// Records one switch sample.  Switches are visited in node order each
    /// tick, matching registration order, so the scan terminates early.
    pub(crate) fn record_switch(&mut self, node: NodeId, s: SwitchSample) {
        if let Some((_, ring)) = self.switches.iter_mut().find(|(n, _)| *n == node) {
            ring.push(s);
        }
    }

    pub(crate) fn record_global(&mut self, s: GlobalSample) {
        self.global.push(s);
    }

    /// Stages one switch sample for the instant that just closed.
    pub(crate) fn stage_switch(&mut self, node: NodeId, s: SwitchSample) {
        self.staged_switches.push((node, s));
    }

    /// Stages the global sample for the instant that just closed.
    pub(crate) fn stage_global(&mut self, s: GlobalSample) {
        debug_assert!(self.staged_global.is_none(), "double capture without a commit");
        self.staged_global = Some(s);
    }

    /// True once a capture is staged for the pending sample instant.
    pub(crate) fn has_staged(&self) -> bool {
        self.staged_global.is_some()
    }

    /// Commits the staged capture (if any) into the rings.  Called by the
    /// next tick, at which point every event of the staged instant has
    /// long since been processed in both engines.
    pub(crate) fn commit_staged(&mut self) {
        for i in 0..self.staged_switches.len() {
            let (node, s) = self.staged_switches[i];
            self.record_switch(node, s);
        }
        self.staged_switches.clear();
        if let Some(g) = self.staged_global.take() {
            self.record_global(g);
        }
    }

    /// Total samples evicted from full rings.
    #[must_use]
    pub fn dropped_samples(&self) -> u64 {
        self.global.dropped + self.switches.iter().map(|(_, r)| r.dropped).sum::<u64>()
    }

    /// Number of global samples currently retained.
    #[must_use]
    pub fn samples(&self) -> usize {
        self.global.buf.len()
    }

    /// Merges another partition's sampler.  Per-switch rings concatenate
    /// (disjoint ownership); the global ring sums pointwise — both
    /// partitions ticked at identical instants with identical capacity, so
    /// the rings are index-aligned even after wrapping.
    pub(crate) fn absorb(&mut self, other: MetricsSampler) {
        self.switches.extend(other.switches);
        debug_assert_eq!(self.global.buf.len(), other.global.buf.len());
        debug_assert_eq!(self.global.head, other.global.head);
        for (mine, theirs) in self.global.buf.iter_mut().zip(other.global.buf.iter()) {
            debug_assert_eq!(mine.t, theirs.t);
            mine.fluid_links += theirs.fluid_links;
            mine.packet_links += theirs.packet_links;
            mine.paused_ports += theirs.paused_ports;
            mine.nacks_sent += theirs.nacks_sent;
            mine.retransmitted_bytes += theirs.retransmitted_bytes;
            mine.sr_retransmitted_bytes += theirs.sr_retransmitted_bytes;
            mine.recovery_timeouts += theirs.recovery_timeouts;
        }
        self.global.dropped = self.global.dropped.max(other.global.dropped);
    }

    /// Restores the canonical (node-sorted) switch order after a merge.
    pub(crate) fn sort_canonical(&mut self) {
        self.switches.sort_unstable_by_key(|(n, _)| n.0);
    }

    /// Versioned JSON export: parallel arrays per series.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let switches: Vec<Json> = self
            .switches
            .iter()
            .map(|(node, ring)| {
                Json::object()
                    .with("node", node.0 as u64)
                    .with("t_ns", column(ring.iter(), |s| s.t.as_ns()))
                    .with("shared_bytes", column(ring.iter(), |s| s.shared))
                    .with("headroom_bytes", column(ring.iter(), |s| s.headroom))
                    .with("paused_queues", column(ring.iter(), |s| u64::from(s.paused_queues)))
                    .with("paused_ports", column(ring.iter(), |s| u64::from(s.paused_ports)))
            })
            .collect();
        let g = &self.global;
        Json::object()
            .with("version", 1u64)
            .with("interval_ns", self.interval.as_ns())
            .with("samples", self.samples() as u64)
            .with("dropped_samples", self.dropped_samples())
            .with("switches", Json::Arr(switches))
            .with(
                "global",
                Json::object()
                    .with("t_ns", column(g.iter(), |s| s.t.as_ns()))
                    .with("fluid_links", column(g.iter(), |s| s.fluid_links))
                    .with("packet_links", column(g.iter(), |s| s.packet_links))
                    .with("paused_ports", column(g.iter(), |s| s.paused_ports))
                    .with("nacks_sent", column(g.iter(), |s| s.nacks_sent))
                    .with("retransmitted_bytes", column(g.iter(), |s| s.retransmitted_bytes))
                    .with("sr_retransmitted_bytes", column(g.iter(), |s| s.sr_retransmitted_bytes))
                    .with("recovery_timeouts", column(g.iter(), |s| s.recovery_timeouts)),
            )
    }

    /// Prometheus text exposition: the most recent sample of every series
    /// as gauges (counters keep their cumulative value).
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(1024);
        out.push_str("# HELP dsh_switch_shared_bytes Shared-pool bytes in use.\n");
        out.push_str("# TYPE dsh_switch_shared_bytes gauge\n");
        out.push_str("# TYPE dsh_switch_headroom_bytes gauge\n");
        out.push_str("# TYPE dsh_switch_paused_queues gauge\n");
        out.push_str("# TYPE dsh_switch_paused_ports gauge\n");
        for (node, ring) in &self.switches {
            if let Some(s) = ring.last() {
                let _ = writeln!(out, "dsh_switch_shared_bytes{{node=\"{node}\"}} {}", s.shared);
                let _ =
                    writeln!(out, "dsh_switch_headroom_bytes{{node=\"{node}\"}} {}", s.headroom);
                let _ = writeln!(
                    out,
                    "dsh_switch_paused_queues{{node=\"{node}\"}} {}",
                    s.paused_queues
                );
                let _ =
                    writeln!(out, "dsh_switch_paused_ports{{node=\"{node}\"}} {}", s.paused_ports);
            }
        }
        if let Some(s) = self.global.last() {
            out.push_str("# TYPE dsh_fluid_links gauge\n");
            let _ = writeln!(out, "dsh_fluid_links {}", s.fluid_links);
            out.push_str("# TYPE dsh_packet_links gauge\n");
            let _ = writeln!(out, "dsh_packet_links {}", s.packet_links);
            out.push_str("# TYPE dsh_paused_ports gauge\n");
            let _ = writeln!(out, "dsh_paused_ports {}", s.paused_ports);
            out.push_str("# TYPE dsh_nacks_sent_total counter\n");
            let _ = writeln!(out, "dsh_nacks_sent_total {}", s.nacks_sent);
            out.push_str("# TYPE dsh_retransmitted_bytes_total counter\n");
            let _ = writeln!(out, "dsh_retransmitted_bytes_total {}", s.retransmitted_bytes);
            out.push_str("# TYPE dsh_sr_retransmitted_bytes_total counter\n");
            let _ = writeln!(out, "dsh_sr_retransmitted_bytes_total {}", s.sr_retransmitted_bytes);
            out.push_str("# TYPE dsh_recovery_timeouts_total counter\n");
            let _ = writeln!(out, "dsh_recovery_timeouts_total {}", s.recovery_timeouts);
        }
        out
    }
}

fn column<'a, T: 'a>(iter: impl Iterator<Item = &'a T>, f: impl Fn(&T) -> u64) -> Json {
    Json::Arr(iter.map(|s| Json::from(f(s))).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gs(t_us: u64, fluid: u64, nacks: u64) -> GlobalSample {
        GlobalSample {
            t: Time::from_us(t_us),
            fluid_links: fluid,
            packet_links: 4,
            paused_ports: 1,
            nacks_sent: nacks,
            retransmitted_bytes: 0,
            sr_retransmitted_bytes: 0,
            recovery_timeouts: 0,
        }
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut r = Ring::new(3);
        for i in 0..5u64 {
            r.push(i);
        }
        assert_eq!(r.dropped, 2);
        let vals: Vec<u64> = r.iter().copied().collect();
        assert_eq!(vals, vec![2, 3, 4]);
        assert_eq!(r.last(), Some(&4));
    }

    #[test]
    fn absorb_sums_global_pointwise_and_concats_switches() {
        let mut a = MetricsSampler::new(Delta::from_us(10), 8);
        let mut b = MetricsSampler::new(Delta::from_us(10), 8);
        a.add_switch(NodeId(9));
        b.add_switch(NodeId(2));
        a.record_global(gs(10, 1, 5));
        b.record_global(gs(10, 2, 7));
        a.absorb(b);
        a.sort_canonical();
        assert_eq!(a.switches[0].0, NodeId(2));
        assert_eq!(a.switches[1].0, NodeId(9));
        let g: Vec<GlobalSample> = a.global.iter().copied().collect();
        assert_eq!(g[0].fluid_links, 3);
        assert_eq!(g[0].nacks_sent, 12);
        assert_eq!(g[0].packet_links, 8);
    }

    #[test]
    fn json_export_is_versioned_and_reparses() {
        let mut m = MetricsSampler::new(Delta::from_us(10), 8);
        m.add_switch(NodeId(4));
        m.record_switch(
            NodeId(4),
            SwitchSample {
                t: Time::from_us(10),
                shared: 4096,
                headroom: 512,
                paused_queues: 1,
                paused_ports: 0,
            },
        );
        m.record_global(gs(10, 0, 0));
        let doc = m.to_json();
        let round = Json::parse(&doc.to_string()).unwrap();
        assert_eq!(round.get("version").and_then(Json::as_u64), Some(1));
        assert_eq!(round.get("samples").and_then(Json::as_u64), Some(1));
        let sw = round.get("switches").and_then(Json::as_arr).unwrap();
        assert_eq!(sw.len(), 1);
        assert_eq!(sw[0].get("shared_bytes").and_then(Json::as_arr).map(<[Json]>::len), Some(1));
        let prom = m.to_prometheus();
        assert!(prom.contains("dsh_switch_shared_bytes{node=\"n4\"} 4096"));
        assert!(prom.contains("dsh_packet_links 4"));
    }
}
