//! The pause-causality observatory (DESIGN.md §16).
//!
//! Opt-in observability for PFC fabrics: a who-paused-whom cascade
//! tracker, a periodic ring-buffered metrics sampler, and the victim-flow
//! attribution report built from both.  Disabled (the default,
//! `NetParams::observe == None`) it costs a single branch on the pause
//! path and nothing per packet; enabled it never allocates on the hot
//! path — edges append to a pre-reserved log and samples land in
//! fixed-capacity rings.
//!
//! Determinism contract: each partition records only events it owns
//! (pauses applied at locally-owned ports, samples of locally-owned
//! switches).  At the partition merge barrier the logs are concatenated
//! and re-sorted into a canonical order — exactly the outbox rule — so
//! `metrics.json` and the cascade report are byte-identical at any
//! `--threads` / `--workers` count.

mod cascade;
mod metrics;

pub use cascade::{
    analyze, CascadeReport, CascadeTracker, FlowPauseAttribution, PauseEdge, PORT_SCOPE_CLASS,
};
pub use metrics::{GlobalSample, MetricsSampler, SwitchSample, DEFAULT_SERIES_CAPACITY};

use dsh_simcore::Delta;

/// Observability configuration carried by `NetParams::observe`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObserveConfig {
    /// Interval between metrics samples (`--metrics-interval`).
    pub metrics_interval: Delta,
    /// Ring capacity per series; the oldest samples are overwritten (and
    /// counted) once a series exceeds this.
    pub series_capacity: usize,
}

impl Default for ObserveConfig {
    fn default() -> Self {
        ObserveConfig {
            metrics_interval: Delta::from_us(10),
            series_capacity: DEFAULT_SERIES_CAPACITY,
        }
    }
}

impl ObserveConfig {
    /// Overrides the sampling interval.
    #[must_use]
    pub fn with_interval(mut self, interval: Delta) -> Self {
        assert!(interval > Delta::ZERO, "metrics interval must be positive");
        self.metrics_interval = interval;
        self
    }
}

/// Live observability state attached to a `Network` when observability is
/// enabled.  Boxed so the disabled case costs one pointer-sized `Option`.
#[derive(Clone, Debug)]
pub struct ObserveState {
    pub(crate) cascade: CascadeTracker,
    pub(crate) metrics: MetricsSampler,
}

impl ObserveState {
    pub(crate) fn new(cfg: &ObserveConfig) -> Self {
        ObserveState {
            cascade: CascadeTracker::new(),
            metrics: MetricsSampler::new(cfg.metrics_interval, cfg.series_capacity),
        }
    }

    /// Merges another partition's state at the merge barrier.
    pub(crate) fn absorb(&mut self, other: ObserveState) {
        self.cascade.absorb(other.cascade);
        self.metrics.absorb(other.metrics);
    }

    /// Restores canonical (engine-independent) ordering after a merge.
    pub(crate) fn finish_merge(&mut self) {
        self.cascade.sort_canonical();
        self.metrics.sort_canonical();
    }

    /// The recorded who-paused-whom edge log.
    #[must_use]
    pub fn cascade_edges(&self) -> &[PauseEdge] {
        self.cascade.edges()
    }

    /// The metrics sampler (for export).
    #[must_use]
    pub fn metrics(&self) -> &MetricsSampler {
        &self.metrics
    }
}
