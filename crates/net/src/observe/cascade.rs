//! Pause-causality tracking: who-paused-whom edges, cascade trees, cycle
//! detection, and victim-flow attribution (DESIGN.md §16).
//!
//! Every PFC pause the network applies opens an *edge* linking the paused
//! upstream port to the congested downstream switch that requested the
//! pause.  Edges close on resume (or when a watchdog / link failure forces
//! the pause clear).  At report time the edge set is sorted into a
//! canonical order and parents are resolved, turning the flat edge log
//! into a forest of cascade trees: a depth-1 edge is a root congestion
//! point pausing its neighbour, a depth-2 edge is that neighbour pausing
//! *its* upstream (congestion spreading), and so on.

use crate::ids::{FlowId, NodeId};
use dsh_simcore::{Delta, Json, Time};
use std::collections::{BTreeMap, BTreeSet};

/// Class value recorded for port-scope (POFF/PON) pauses, which are not
/// tied to any single traffic class.
pub const PORT_SCOPE_CLASS: u8 = u8::MAX;

/// One who-paused-whom edge: `down` (the congested switch) paused
/// `(up, up_port)` for `class` over `[start, end)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PauseEdge {
    /// Node whose egress port was paused (the victim side of the edge).
    pub up: NodeId,
    /// Egress port on `up` that stopped transmitting.
    pub up_port: usize,
    /// Traffic class, or [`PORT_SCOPE_CLASS`] for port-scope pauses.
    pub class: u8,
    /// The congested node that requested the pause.
    pub down: NodeId,
    /// Ingress port on `down` whose buffer triggered the pause.
    pub down_port: usize,
    /// True when `up` is a host NIC — the cascade reached the edge of the
    /// fabric and is throttling an innocent (or guilty) sender directly.
    pub up_is_host: bool,
    /// Instant the pause took effect at `up`.
    pub start: Time,
    /// Instant the pause cleared, or [`Time::MAX`] while still open.
    pub end: Time,
}

impl PauseEdge {
    fn is_open(&self) -> bool {
        self.end == Time::MAX
    }

    /// Canonical sort key: merged partition logs sorted by this key are
    /// byte-identical regardless of worker count or merge order.
    fn key(&self) -> (Time, usize, usize, u8, usize, Time) {
        (self.start, self.up.0, self.up_port, self.class, self.down.0, self.end)
    }
}

/// Live edge log.  Each partition owns one tracker; `absorb` concatenates
/// partition logs at the merge barrier and `sort_canonical` restores the
/// engine-independent order.
#[derive(Clone, Debug, Default)]
pub struct CascadeTracker {
    edges: Vec<PauseEdge>,
    /// Indices into `edges` of still-open edges (`end == Time::MAX`).
    open: Vec<usize>,
}

impl CascadeTracker {
    pub(crate) fn new() -> Self {
        CascadeTracker { edges: Vec::with_capacity(256), open: Vec::with_capacity(64) }
    }

    /// Records a pause taking effect at `(up, up_port)` for `class`,
    /// requested by `(down, down_port)`.  A redundant pause refresh on an
    /// already-open edge keeps the original start.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_pause(
        &mut self,
        up: NodeId,
        up_port: usize,
        class: u8,
        down: NodeId,
        down_port: usize,
        up_is_host: bool,
        now: Time,
    ) {
        if self.open.iter().any(|&i| {
            let e = &self.edges[i];
            e.up == up && e.up_port == up_port && e.class == class
        }) {
            return;
        }
        let idx = self.edges.len();
        self.edges.push(PauseEdge {
            up,
            up_port,
            class,
            down,
            down_port,
            up_is_host,
            start: now,
            end: Time::MAX,
        });
        self.open.push(idx);
    }

    /// Closes the open edge for `(up, up_port, class)`, if any.
    pub(crate) fn on_resume(&mut self, up: NodeId, up_port: usize, class: u8, now: Time) {
        let edges = &mut self.edges;
        self.open.retain(|&i| {
            let e = &mut edges[i];
            if e.up == up && e.up_port == up_port && e.class == class {
                e.end = now;
                false
            } else {
                true
            }
        });
    }

    /// Closes every open edge on `(up, up_port)` — used when a link
    /// failure wipes the port's pause state wholesale.
    pub(crate) fn force_close_port(&mut self, up: NodeId, up_port: usize, now: Time) {
        let edges = &mut self.edges;
        self.open.retain(|&i| {
            let e = &mut edges[i];
            if e.up == up && e.up_port == up_port {
                e.end = now;
                false
            } else {
                true
            }
        });
    }

    /// The raw edge log (open edges have `end == Time::MAX`).
    #[must_use]
    pub fn edges(&self) -> &[PauseEdge] {
        &self.edges
    }

    /// Appends another partition's edge log.  Order is restored by
    /// [`CascadeTracker::sort_canonical`] at the merge barrier.
    pub(crate) fn absorb(&mut self, other: CascadeTracker) {
        let base = self.edges.len();
        self.open.extend(other.open.iter().map(|&i| i + base));
        self.edges.extend(other.edges);
    }

    /// Sorts edges into the canonical order and rebuilds the open index.
    pub(crate) fn sort_canonical(&mut self) {
        self.edges.sort_unstable_by_key(PauseEdge::key);
        self.open =
            self.edges.iter().enumerate().filter(|(_, e)| e.is_open()).map(|(i, _)| i).collect();
    }
}

/// Per-flow pause exposure, split by cascade depth of the host-NIC edge
/// that throttled the flow's source.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowPauseAttribution {
    /// The attributed flow.
    pub flow: FlowId,
    /// Pause overlap from depth-1 edges: the flow's own first-hop switch
    /// was the congestion root (the flow congested itself).
    pub self_congested: Delta,
    /// Pause overlap from depth ≥ 2 edges: congestion elsewhere cascaded
    /// back to this flow's NIC (the flow is a victim).
    pub victim: Delta,
}

/// Analysed cascade forest: summary statistics plus per-flow attribution.
#[derive(Clone, Debug, Default)]
pub struct CascadeReport {
    /// Total who-paused-whom edges recorded.
    pub edges: usize,
    /// Number of cascades (depth-1 edges, each rooting a tree).
    pub count: usize,
    /// Deepest chain of propagated pauses.
    pub max_depth: usize,
    /// Largest number of upstream ports a single edge fanned out to.
    pub max_fanout: usize,
    /// Median per-edge pause duration.
    pub p50_duration: Delta,
    /// 99th-percentile per-edge pause duration.
    pub p99_duration: Delta,
    /// Edges whose paused side is a host NIC.
    pub host_nic_edges: usize,
    /// Named findings for cyclic buffer dependencies among open edges,
    /// e.g. `"cascade-cycle: n2 -> n3 -> n2"`.
    pub cycles: Vec<String>,
    /// Flows with nonzero pause exposure.
    pub flows: Vec<FlowPauseAttribution>,
}

impl CascadeReport {
    /// JSON form (the `pause_cascades` section of a telemetry report).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::object()
            .with("count", self.count as u64)
            .with("edges", self.edges as u64)
            .with("max_depth", self.max_depth as u64)
            .with("max_fanout", self.max_fanout as u64)
            .with("p50_duration_ns", self.p50_duration.as_ns())
            .with("p99_duration_ns", self.p99_duration.as_ns())
            .with("host_nic_edges", self.host_nic_edges as u64)
            .with("cycles", self.cycles.clone())
            .with(
                "flows",
                Json::Arr(
                    self.flows
                        .iter()
                        .map(|f| {
                            Json::object()
                                .with("flow", f.flow.0 as u64)
                                .with("self_congested_ns", f.self_congested.as_ns())
                                .with("victim_ns", f.victim.as_ns())
                        })
                        .collect(),
                ),
            )
    }
}

/// Analyses an edge log at instant `now`.  Open edges are treated as
/// ending at `now` (the log itself is not mutated).  `flows` supplies
/// `(flow, source host, start, finish)` lifetimes for attribution;
/// in-flight flows pass `now` as their finish.
pub fn analyze(
    edges: &[PauseEdge],
    now: Time,
    flows: impl Iterator<Item = (FlowId, NodeId, Time, Time)>,
) -> CascadeReport {
    // Cycle detection runs over the *open* edges only: a cycle that has
    // already resolved is ordinary (if unlucky) congestion spreading; a
    // cycle still open at report time is a live buffer dependency loop.
    let cycles = find_cycles(edges.iter().filter(|e| e.is_open()));

    // Clamp open edges to `now` and sort canonically so the analysis is
    // identical whether the log came from the serial engine or from a
    // partition merge.
    let mut es: Vec<PauseEdge> = edges.to_vec();
    for e in &mut es {
        if e.is_open() {
            e.end = now;
        }
    }
    es.sort_unstable_by_key(PauseEdge::key);

    // Parent resolution: edge E's parent is the latest-starting edge P
    // strictly earlier in canonical order with P.up == E.down that was
    // still open when E started — the pause that congested E.down in the
    // first place.  "Earlier in sort order" guarantees the parent forest
    // is acyclic even in the presence of genuine cycles.
    let n = es.len();
    let mut depth = vec![1usize; n];
    let mut children = vec![0usize; n];
    let mut max_depth = 0usize;
    let mut roots = 0usize;
    for i in 0..n {
        let mut parent = None;
        for j in (0..i).rev() {
            if es[j].up == es[i].down && es[j].start <= es[i].start && es[i].start <= es[j].end {
                parent = Some(j);
                break;
            }
        }
        match parent {
            Some(j) => {
                depth[i] = depth[j] + 1;
                children[j] += 1;
            }
            None => roots += 1,
        }
        max_depth = max_depth.max(depth[i]);
    }
    let max_fanout = children.iter().copied().max().unwrap_or(0);

    let mut durations: Vec<Delta> = es.iter().map(|e| e.end.saturating_since(e.start)).collect();
    durations.sort_unstable();
    let pct = |p: usize| -> Delta {
        if durations.is_empty() {
            Delta::ZERO
        } else {
            durations[((durations.len() - 1) * p) / 100]
        }
    };

    // Host-NIC edges, pre-joined for the per-flow pass.
    let host_edges: Vec<(NodeId, Time, Time, usize)> = es
        .iter()
        .enumerate()
        .filter(|(_, e)| e.up_is_host)
        .map(|(i, e)| (e.up, e.start, e.end, depth[i]))
        .collect();

    let mut attributions = Vec::new();
    for (flow, src, fstart, fend) in flows {
        let mut own = Delta::ZERO;
        let mut victim = Delta::ZERO;
        for &(host, estart, eend, d) in &host_edges {
            if host != src {
                continue;
            }
            let lo = estart.max(fstart);
            let hi = eend.min(fend);
            let overlap = hi.saturating_since(lo);
            if overlap == Delta::ZERO {
                continue;
            }
            if d >= 2 {
                victim += overlap;
            } else {
                own += overlap;
            }
        }
        if own > Delta::ZERO || victim > Delta::ZERO {
            attributions.push(FlowPauseAttribution { flow, self_congested: own, victim });
        }
    }
    attributions.sort_unstable_by_key(|a| a.flow.0);

    CascadeReport {
        edges: n,
        count: roots,
        max_depth,
        max_fanout,
        p50_duration: pct(50),
        p99_duration: pct(99),
        host_nic_edges: host_edges.len(),
        cycles,
        flows: attributions,
    }
}

/// Finds cyclic buffer dependencies among the given edges.  Each edge
/// contributes an arc `down -> up` (congestion at `down` throttles `up`);
/// a cycle means every switch on the loop is waiting for buffer the next
/// one cannot drain — the PFC deadlock shape the watchdog exists to
/// break.  Findings are canonicalised (rotation starting at the smallest
/// node id), deduplicated, and reported sorted.
fn find_cycles<'a>(edges: impl Iterator<Item = &'a PauseEdge>) -> Vec<String> {
    let mut adj: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
    for e in edges {
        adj.entry(e.down.0).or_default().insert(e.up.0);
    }
    let mut findings = BTreeSet::new();
    let mut state: BTreeMap<usize, u8> = BTreeMap::new(); // 1 = on stack, 2 = done
    let nodes: Vec<usize> = adj.keys().copied().collect();
    let mut stack: Vec<usize> = Vec::new();
    for &root in &nodes {
        if state.contains_key(&root) {
            continue;
        }
        // Iterative DFS with an explicit path stack.
        let mut work: Vec<(usize, Vec<usize>)> =
            vec![(root, adj.get(&root).map(|s| s.iter().copied().collect()).unwrap_or_default())];
        state.insert(root, 1);
        stack.push(root);
        while let Some((node, succ)) = work.last_mut() {
            if let Some(next) = succ.pop() {
                match state.get(&next).copied() {
                    Some(1) => {
                        // Back edge: the cycle is the stack slice from
                        // `next` to the top.
                        let pos = stack.iter().position(|&v| v == next).unwrap();
                        let cycle = &stack[pos..];
                        let min_pos = cycle
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, &v)| v)
                            .map(|(i, _)| i)
                            .unwrap();
                        let rotated: Vec<String> = cycle[min_pos..]
                            .iter()
                            .chain(cycle[..min_pos].iter())
                            .chain(std::iter::once(&cycle[min_pos]))
                            .map(|&v| NodeId(v).to_string())
                            .collect();
                        findings.insert(format!("cascade-cycle: {}", rotated.join(" -> ")));
                    }
                    Some(2) => {}
                    Some(_) | None => {
                        state.insert(next, 1);
                        stack.push(next);
                        let succ =
                            adj.get(&next).map(|s| s.iter().copied().collect()).unwrap_or_default();
                        work.push((next, succ));
                    }
                }
            } else {
                state.insert(*node, 2);
                stack.pop();
                work.pop();
            }
        }
    }
    findings.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> Time {
        Time::from_us(us)
    }

    #[test]
    fn single_edge_is_one_root_cascade() {
        let mut tr = CascadeTracker::new();
        tr.on_pause(NodeId(1), 0, 3, NodeId(2), 1, false, t(10));
        tr.on_resume(NodeId(1), 0, 3, t(14));
        let r = analyze(tr.edges(), t(100), std::iter::empty());
        assert_eq!(r.count, 1);
        assert_eq!(r.edges, 1);
        assert_eq!(r.max_depth, 1);
        assert_eq!(r.p50_duration, Delta::from_us(4));
        assert!(r.cycles.is_empty());
    }

    #[test]
    fn redundant_pause_refresh_keeps_original_start() {
        let mut tr = CascadeTracker::new();
        tr.on_pause(NodeId(1), 0, 3, NodeId(2), 1, false, t(10));
        tr.on_pause(NodeId(1), 0, 3, NodeId(2), 1, false, t(12));
        tr.on_resume(NodeId(1), 0, 3, t(20));
        assert_eq!(tr.edges().len(), 1);
        assert_eq!(tr.edges()[0].start, t(10));
        assert_eq!(tr.edges()[0].end, t(20));
    }

    #[test]
    fn chained_pauses_form_a_depth_two_cascade() {
        let mut tr = CascadeTracker::new();
        // Root congestion at n3 pauses switch n2 ...
        tr.on_pause(NodeId(2), 1, 0, NodeId(3), 0, false, t(10));
        // ... which fills and pauses host n0 while the first pause holds.
        tr.on_pause(NodeId(0), 0, 0, NodeId(2), 2, true, t(12));
        tr.on_resume(NodeId(0), 0, 0, t(18));
        tr.on_resume(NodeId(2), 1, 0, t(20));
        let flows = vec![(FlowId(7), NodeId(0), t(0), t(100))];
        let r = analyze(tr.edges(), t(100), flows.into_iter());
        assert_eq!(r.count, 1);
        assert_eq!(r.max_depth, 2);
        assert_eq!(r.host_nic_edges, 1);
        assert_eq!(r.flows.len(), 1);
        assert_eq!(r.flows[0].victim, Delta::from_us(6));
        assert_eq!(r.flows[0].self_congested, Delta::ZERO);
    }

    #[test]
    fn depth_one_host_pause_is_self_congestion() {
        let mut tr = CascadeTracker::new();
        tr.on_pause(NodeId(0), 0, 0, NodeId(2), 1, true, t(10));
        tr.on_resume(NodeId(0), 0, 0, t(16));
        let flows = vec![(FlowId(1), NodeId(0), t(0), t(50))];
        let r = analyze(tr.edges(), t(50), flows.into_iter());
        assert_eq!(r.flows[0].self_congested, Delta::from_us(6));
        assert_eq!(r.flows[0].victim, Delta::ZERO);
    }

    #[test]
    fn open_cycle_is_reported_as_named_finding() {
        let mut tr = CascadeTracker::new();
        tr.on_pause(NodeId(2), 0, 0, NodeId(3), 0, false, t(10));
        tr.on_pause(NodeId(3), 1, 0, NodeId(4), 0, false, t(11));
        tr.on_pause(NodeId(4), 1, 0, NodeId(2), 1, false, t(12));
        let r = analyze(tr.edges(), t(100), std::iter::empty());
        assert_eq!(r.cycles, vec!["cascade-cycle: n2 -> n4 -> n3 -> n2".to_string()]);
        // The parent forest stays acyclic: depths are finite.
        assert!(r.max_depth <= 3);
    }

    #[test]
    fn closed_cycle_is_not_a_finding() {
        let mut tr = CascadeTracker::new();
        tr.on_pause(NodeId(2), 0, 0, NodeId(3), 0, false, t(10));
        tr.on_pause(NodeId(3), 1, 0, NodeId(2), 1, false, t(11));
        tr.on_resume(NodeId(2), 0, 0, t(12));
        tr.on_resume(NodeId(3), 1, 0, t(13));
        let r = analyze(tr.edges(), t(100), std::iter::empty());
        assert!(r.cycles.is_empty());
    }

    #[test]
    fn absorb_then_sort_matches_serial_order() {
        let mut a = CascadeTracker::new();
        let mut b = CascadeTracker::new();
        a.on_pause(NodeId(5), 0, 1, NodeId(6), 0, false, t(20));
        b.on_pause(NodeId(1), 0, 1, NodeId(2), 0, false, t(10));
        b.on_resume(NodeId(1), 0, 1, t(15));
        a.absorb(b);
        a.sort_canonical();
        assert_eq!(a.edges()[0].up, NodeId(1));
        assert_eq!(a.edges()[1].up, NodeId(5));
        // Open index survives the sort.
        a.on_resume(NodeId(5), 0, 1, t(30));
        assert!(a.edges().iter().all(|e| !e.is_open()));
    }

    #[test]
    fn force_close_port_closes_all_classes() {
        let mut tr = CascadeTracker::new();
        tr.on_pause(NodeId(1), 2, 0, NodeId(3), 0, false, t(10));
        tr.on_pause(NodeId(1), 2, PORT_SCOPE_CLASS, NodeId(3), 0, false, t(11));
        tr.on_pause(NodeId(1), 3, 0, NodeId(4), 0, false, t(11));
        tr.force_close_port(NodeId(1), 2, t(12));
        let open: Vec<_> = tr.edges().iter().filter(|e| e.is_open()).collect();
        assert_eq!(open.len(), 1);
        assert_eq!(open[0].up_port, 3);
    }
}
