//! Microbenchmarks of the simulation substrate: event-calendar throughput
//! and end-to-end events/second on a small incast.

use criterion::{criterion_group, criterion_main, Criterion};
use dsh_core::Scheme;
use dsh_net::{FlowSpec, NetParams, NetworkBuilder};
use dsh_simcore::{Bandwidth, Delta, EventQueue, Time};
use dsh_transport::CcKind;

fn event_queue_throughput(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.push(Time::from_ns((i * 7919) % 100_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            sum
        });
    });
}

fn end_to_end_incast(c: &mut Criterion) {
    let mut g = c.benchmark_group("incast_8_to_1");
    g.sample_size(10);
    for scheme in [Scheme::Sih, Scheme::Dsh] {
        g.bench_function(format!("{scheme}"), |b| {
            b.iter(|| {
                let mut bld = NetworkBuilder::new(NetParams::tomahawk(scheme).without_ecn());
                let hosts: Vec<_> = (0..9).map(|_| bld.host()).collect();
                let sw = bld.switch();
                for &h in &hosts {
                    bld.link(h, sw, Bandwidth::from_gbps(100), Delta::from_us(2));
                }
                let mut net = bld.build();
                for &src in &hosts[..8] {
                    net.add_flow(FlowSpec {
                        src,
                        dst: hosts[8],
                        size: 256 * 1024,
                        class: 0,
                        start: Time::ZERO,
                        cc: CcKind::Uncontrolled,
                    });
                }
                let mut sim = net.into_sim();
                sim.run_until(Time::from_ms(5));
                assert_eq!(sim.model().data_drops(), 0);
                sim.events_processed()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, event_queue_throughput, end_to_end_incast);
criterion_main!(benches);
