//! Microbenchmarks of the simulation substrate: event-calendar throughput
//! (heap path, same-instant fast lane, and mixes), end-to-end
//! events/second on a small incast, and the parallel fig. 14 sweep —
//! run with `DSH_BENCH_JSON=BENCH_PRn.json` to record a perf-trajectory
//! point.

use criterion::{criterion_group, criterion_main, Criterion};
use dsh_bench::fabric::{FctExperiment, Topo};
use dsh_bench::fig14;
use dsh_core::Scheme;
use dsh_net::{FlowSpec, NetParams, NetworkBuilder};
use dsh_simcore::{Bandwidth, Delta, EventQueue, Executor, Time};
use dsh_transport::CcKind;

fn event_queue_throughput(c: &mut Criterion) {
    // Pure heap path: pushes land all over the timeline, never at "now".
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.push(Time::from_ns((i * 7919) % 100_000 + 1), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            sum
        });
    });
    // Pure fast-lane path: a same-instant cascade, the shape of
    // `Scheduler::immediately` and PFC pause/resume storms.
    c.bench_function("event_queue_same_instant_cascade_100k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(4);
            q.push(Time::from_ns(1), 0u64);
            let mut sum = 0u64;
            while let Some((t, e)) = q.pop() {
                sum = sum.wrapping_add(e);
                if e < 100_000 {
                    q.push(t, e + 1);
                }
            }
            sum
        });
    });
    // Mixed: each handled event schedules one future event (heap) and one
    // same-instant follow-up (lane), like a switch forwarding under PFC.
    c.bench_function("event_queue_mixed_lane_heap_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(64);
            q.push(Time::from_ns(1), 0u64);
            let mut sum = 0u64;
            let mut handled = 0u64;
            while let Some((t, e)) = q.pop() {
                sum = sum.wrapping_add(e);
                handled += 1;
                if handled < 10_000 {
                    q.push(t + Delta::from_ns((e * 131) % 500 + 1), e + 1);
                    if e % 2 == 0 {
                        q.push(t, e + 2);
                    }
                }
            }
            sum
        });
    });
    // The run-loop primitive the engine now uses instead of
    // peek_time + pop.
    c.bench_function("event_queue_pop_before_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(10_000);
            for i in 0..10_000u64 {
                q.push(Time::from_ns((i * 6007) % 50_000 + 1), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop_before(Time::from_ns(40_000)) {
                sum = sum.wrapping_add(e);
            }
            sum
        });
    });
}

/// Scaled-down fig. 14 sweep, end to end, at 1 worker and at 4 — the
/// perf-trajectory point for the parallel executor (compare the
/// `threads_*` means; on a multi-core runner the ratio is the speedup).
fn fig14_sweep_parallel(c: &mut Criterion) {
    let mut base = FctExperiment::small(Scheme::Sih, CcKind::Dcqcn);
    base.topo = Topo::LeafSpine { leaves: 2, spines: 2, hosts_per_leaf: 4 };
    base.horizon = Delta::from_us(300);
    base.run_until = Delta::from_ms(4);
    let loads = [0.2, 0.4, 0.6, 0.8];
    let mut g = c.benchmark_group("fig14_sweep_micro");
    g.sample_size(5);
    for threads in [1usize, 4] {
        g.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| fig14::sweep(CcKind::Dcqcn, &loads, &base, &Executor::new(threads)));
        });
    }
    g.finish();
}

fn end_to_end_incast(c: &mut Criterion) {
    let mut g = c.benchmark_group("incast_8_to_1");
    g.sample_size(10);
    for scheme in [Scheme::Sih, Scheme::Dsh] {
        g.bench_function(format!("{scheme}"), |b| {
            b.iter(|| {
                let mut bld = NetworkBuilder::new(NetParams::tomahawk(scheme).without_ecn());
                let hosts: Vec<_> = (0..9).map(|_| bld.host()).collect();
                let sw = bld.switch();
                for &h in &hosts {
                    bld.link(h, sw, Bandwidth::from_gbps(100), Delta::from_us(2));
                }
                let mut net = bld.build();
                for &src in &hosts[..8] {
                    net.add_flow(FlowSpec {
                        src,
                        dst: hosts[8],
                        size: 256 * 1024,
                        class: 0,
                        start: Time::ZERO,
                        cc: CcKind::Uncontrolled,
                    });
                }
                let mut sim = net.into_sim();
                sim.run_until(Time::from_ms(5));
                assert_eq!(sim.model().data_drops(), 0);
                sim.events_processed()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, event_queue_throughput, end_to_end_incast, fig14_sweep_parallel);
criterion_main!(benches);
