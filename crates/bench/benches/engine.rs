//! Microbenchmarks of the simulation substrate: event-calendar throughput
//! (heap path, same-instant fast lane, and mixes), end-to-end
//! events/second on a small incast, allocation-accounted packet-path
//! probes, and the parallel fig. 14 sweep — run with
//! `DSH_BENCH_JSON=BENCH_PRn.json` to record a perf-trajectory point.
//!
//! With `--features alloc-count` the process allocator is replaced by a
//! counting wrapper and the packet-path benches additionally report (and
//! assert) steady-state heap allocations per delivered packet — the
//! hot-path zero-allocation contract of DESIGN.md §10.

use criterion::{criterion_group, criterion_main, Criterion};
use dsh_bench::fabric::{FctExperiment, Topo};
use dsh_bench::fig14;
use dsh_core::Scheme;
use dsh_net::topology::fat_tree;
use dsh_net::{FlowSpec, NetParams, Network, NetworkBuilder, ParallelSim};
use dsh_simcore::{Bandwidth, ByteSize, Delta, EventQueue, Executor, Simulation, Time};
use dsh_transport::{CcKind, RecoveryConfig};

/// Counting allocator: every `alloc`/`realloc` bumps a relaxed counter on
/// its way to the system allocator. Lives in the bench target (the library
/// crates `forbid(unsafe_code)`); the whole module disappears without the
/// `alloc-count` feature, so timing runs pay nothing.
#[cfg(feature = "alloc-count")]
mod alloc_count {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);
    pub static TRAP: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

    std::thread_local! {
        static IN_TRAP: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    }

    fn maybe_trace() {
        if TRAP.load(Ordering::Relaxed) {
            IN_TRAP.with(|f| {
                if !f.get() {
                    f.set(true);
                    let bt = std::backtrace::Backtrace::force_capture();
                    eprintln!("=== alloc ===\n{bt}");
                    f.set(false);
                }
            });
        }
    }

    struct CountingAlloc;

    // SAFETY: defers entirely to `System`; the counter is a relaxed
    // atomic, safe in any allocation context.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            maybe_trace();
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            maybe_trace();
            System.realloc(ptr, layout, new_size)
        }
    }

    #[global_allocator]
    static COUNTING: CountingAlloc = CountingAlloc;

    /// Heap allocations performed by this process so far.
    pub fn allocations() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }
}

/// Allocations so far, or `None` when the counting allocator is not
/// compiled in.
fn allocations() -> Option<u64> {
    #[cfg(feature = "alloc-count")]
    {
        Some(alloc_count::allocations())
    }
    #[cfg(not(feature = "alloc-count"))]
    {
        None
    }
}

fn event_queue_throughput(c: &mut Criterion) {
    // Pure heap path: pushes land all over the timeline, never at "now".
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.push(Time::from_ns((i * 7919) % 100_000 + 1), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            sum
        });
    });
    // Pure fast-lane path: a same-instant cascade, the shape of
    // `Scheduler::immediately` and PFC pause/resume storms.
    c.bench_function("event_queue_same_instant_cascade_100k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(4);
            q.push(Time::from_ns(1), 0u64);
            let mut sum = 0u64;
            while let Some((t, e)) = q.pop() {
                sum = sum.wrapping_add(e);
                if e < 100_000 {
                    q.push(t, e + 1);
                }
            }
            sum
        });
    });
    // Mixed: each handled event schedules one future event (heap) and one
    // same-instant follow-up (lane), like a switch forwarding under PFC.
    c.bench_function("event_queue_mixed_lane_heap_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(64);
            q.push(Time::from_ns(1), 0u64);
            let mut sum = 0u64;
            let mut handled = 0u64;
            while let Some((t, e)) = q.pop() {
                sum = sum.wrapping_add(e);
                handled += 1;
                if handled < 10_000 {
                    q.push(t + Delta::from_ns((e * 131) % 500 + 1), e + 1);
                    if e % 2 == 0 {
                        q.push(t, e + 2);
                    }
                }
            }
            sum
        });
    });
    // The run-loop primitive the engine now uses instead of
    // peek_time + pop.
    c.bench_function("event_queue_pop_before_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(10_000);
            for i in 0..10_000u64 {
                q.push(Time::from_ns((i * 6007) % 50_000 + 1), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop_before(Time::from_ns(40_000)) {
                sum = sum.wrapping_add(e);
            }
            sum
        });
    });
}

/// Scaled-down fig. 14 sweep, end to end, at 1 worker and at 4 — the
/// perf-trajectory point for the parallel executor (compare the
/// `threads_*` means; on a multi-core runner the ratio is the speedup).
fn fig14_sweep_parallel(c: &mut Criterion) {
    let mut base = FctExperiment::small(Scheme::Sih, CcKind::Dcqcn);
    base.topo = Topo::LeafSpine { leaves: 2, spines: 2, hosts_per_leaf: 4 };
    base.horizon = Delta::from_us(300);
    base.run_until = Delta::from_ms(4);
    let loads = [0.2, 0.4, 0.6, 0.8];
    let mut g = c.benchmark_group("fig14_sweep_micro");
    g.sample_size(5);
    for threads in [1usize, 4] {
        g.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| fig14::sweep(CcKind::Dcqcn, &loads, &base, &Executor::new(threads)));
        });
    }
    g.finish();
}

fn end_to_end_incast(c: &mut Criterion) {
    let mut g = c.benchmark_group("incast_8_to_1");
    g.sample_size(10);
    for scheme in [Scheme::Sih, Scheme::Dsh] {
        g.bench_function(format!("{scheme}"), |b| {
            b.iter(|| {
                let mut sim = incast_sim(scheme, 256 * 1024);
                sim.run_until(Time::from_ms(5));
                assert_eq!(sim.model().data_drops(), 0);
                sim.events_processed()
            });
        });
    }
    g.finish();
}

/// The 8-to-1 incast fixture shared by the timed and the alloc-accounted
/// packet-path benches. Trace points are compiled into this build; the
/// fixture asserts they are masked off, so the zero-allocation and
/// events/sec numbers measure the disabled-tracing hot path.
fn incast_sim(scheme: Scheme, flow_bytes: u64) -> Simulation<Network> {
    let mut bld = NetworkBuilder::new(NetParams::tomahawk(scheme).without_ecn());
    let hosts: Vec<_> = (0..9).map(|_| bld.host()).collect();
    let sw = bld.switch();
    for &h in &hosts {
        bld.link(h, sw, Bandwidth::from_gbps(100), Delta::from_us(2));
    }
    let mut net = bld.build();
    assert!(
        !net.tracer().wants(dsh_simcore::trace::TraceMask::ALL),
        "packet-path benches must run with tracing masked off (unset DSH_TRACE_MASK)"
    );
    assert!(
        net.metrics_json().is_none(),
        "packet-path benches must run with the observatory masked off \
         (the zero-alloc window measures the disabled-observability hot path)"
    );
    for &src in &hosts[..8] {
        net.add_flow(FlowSpec {
            src,
            dst: hosts[8],
            size: flow_bytes,
            class: 0,
            start: Time::ZERO,
            cc: CcKind::Uncontrolled,
        });
    }
    net.into_sim()
}

/// The lossy-mode selective-repeat fixture: an 8-to-1 incast into a
/// deliberately starved shared pool, so drop-tail sheds load continuously
/// and the whole NACK → gap-repair → reassembly machinery stays hot for
/// the entire measurement window.
fn lossy_sr_incast_sim(flow_bytes: u64) -> Simulation<Network> {
    let base = NetParams::tomahawk(Scheme::Lossy).without_ecn();
    let recovery = RecoveryConfig::for_rtt(base.base_rtt).selective_repeat();
    let params = base.with_buffer(ByteSize::kib(600)).with_recovery(recovery);
    let mut bld = NetworkBuilder::new(params);
    let hosts: Vec<_> = (0..9).map(|_| bld.host()).collect();
    let sw = bld.switch();
    for &h in &hosts {
        bld.link(h, sw, Bandwidth::from_gbps(100), Delta::from_us(2));
    }
    let mut net = bld.build();
    assert!(
        !net.tracer().wants(dsh_simcore::trace::TraceMask::ALL),
        "packet-path benches must run with tracing masked off (unset DSH_TRACE_MASK)"
    );
    assert!(
        net.metrics_json().is_none(),
        "packet-path benches must run with the observatory masked off \
         (the zero-alloc window measures the disabled-observability hot path)"
    );
    for &src in &hosts[..8] {
        net.add_flow(FlowSpec {
            src,
            dst: hosts[8],
            size: flow_bytes,
            class: 0,
            start: Time::ZERO,
            cc: CcKind::Uncontrolled,
        });
    }
    net.into_sim()
}

/// Like [`packet_path_probe`] but for the lossy selective-repeat fixture:
/// drop-tail drops are the point (not asserted zero), and the window must
/// actually exercise the recovery machinery — NACKs and gap repairs — or
/// the zero-allocation claim would be vacuous.
fn sr_path_probe(label: &str, mut sim: Simulation<Network>) {
    let warmup_end = Time::from_us(100);
    let window_end = Time::from_us(400);
    if std::env::var("DSH_ALLOC_TRACE").is_ok() {
        sim.run_until(warmup_end);
        #[cfg(feature = "alloc-count")]
        alloc_count::TRAP.store(true, std::sync::atomic::Ordering::Relaxed);
        sim.run_until(window_end);
        #[cfg(feature = "alloc-count")]
        alloc_count::TRAP.store(false, std::sync::atomic::Ordering::Relaxed);
        println!("{label} traced");
        return;
    }
    sim.run_until(warmup_end);
    let allocs0 = allocations();
    let events0 = sim.events_processed();
    let packets0 = sim.model().packets_delivered();
    let nacks0 = sim.model().nacks_sent();
    let repairs0 = sim.model().sr_retransmitted_bytes();
    let wall = std::time::Instant::now();
    sim.run_until(window_end);
    let wall = wall.elapsed();
    let allocs1 = allocations(); // Read before anything below allocates.
    assert!(sim.model().data_drops() > 0, "{label}: the starved pool never dropped");
    let nacks = sim.model().nacks_sent() - nacks0;
    let repairs = sim.model().sr_retransmitted_bytes() - repairs0;
    assert!(nacks > 0, "{label}: window saw no NACKs — SR path idle");
    assert!(repairs > 0, "{label}: window sent no gap repairs — SR path idle");
    let events = sim.events_processed() - events0;
    let packets = sim.model().packets_delivered() - packets0;
    assert!(packets > 0, "{label}: measurement window saw no deliveries");
    criterion::record_metric(
        &format!("{label}/events_per_sec"),
        events as f64 / wall.as_secs_f64(),
    );
    criterion::record_metric(&format!("{label}/packets"), packets as f64);
    criterion::record_metric(&format!("{label}/nacks"), nacks as f64);
    if let (Some(a0), Some(a1)) = (allocs0, allocs1) {
        let allocs = a1 - a0;
        let per_packet = allocs as f64 / packets as f64;
        criterion::record_metric(&format!("{label}/allocs_per_packet"), per_packet);
        assert_eq!(
            allocs, 0,
            "{label}: {allocs} heap allocations in the steady-state window \
             ({per_packet:.4}/packet) — the selective-repeat hot path must not allocate"
        );
    }
}

/// A 5-switch linear chain (the nominal fat-tree diameter) with PowerTCP,
/// so every data packet is INT-stamped at five hops and every ACK echoes a
/// near-full inline `HopList` back through the reverse path.
fn forward_chain_sim(scheme: Scheme) -> Simulation<Network> {
    let mut bld = NetworkBuilder::new(NetParams::tomahawk(scheme).without_ecn());
    let src = bld.host();
    let dst = bld.host();
    let switches: Vec<_> = (0..5).map(|_| bld.switch()).collect();
    bld.link(src, switches[0], Bandwidth::from_gbps(100), Delta::from_us(2));
    for w in switches.windows(2) {
        bld.link(w[0], w[1], Bandwidth::from_gbps(100), Delta::from_us(2));
    }
    bld.link(switches[4], dst, Bandwidth::from_gbps(100), Delta::from_us(2));
    let mut net = bld.build();
    net.add_flow(FlowSpec {
        src,
        dst,
        size: 4 * 1024 * 1024,
        class: 0,
        start: Time::ZERO,
        cc: CcKind::PowerTcp,
    });
    net.into_sim()
}

/// Runs `sim` through a warmup (pools fill, queues and buffers reach
/// their steady capacity) and then a measurement window, recording
/// events/second and — with the counting allocator — heap allocations per
/// delivered packet, which must be zero on the incast.
fn packet_path_probe(label: &str, mut sim: Simulation<Network>, assert_zero: bool) {
    let warmup_end = Time::from_us(100);
    let window_end = Time::from_us(400);
    if std::env::var("DSH_ALLOC_TRACE").is_ok() {
        sim.run_until(warmup_end);
        #[cfg(feature = "alloc-count")]
        alloc_count::TRAP.store(true, std::sync::atomic::Ordering::Relaxed);
        sim.run_until(window_end);
        #[cfg(feature = "alloc-count")]
        alloc_count::TRAP.store(false, std::sync::atomic::Ordering::Relaxed);
        println!("{label} traced");
        return;
    }
    sim.run_until(warmup_end);
    let allocs0 = allocations();
    let events0 = sim.events_processed();
    let packets0 = sim.model().packets_delivered();
    let wall = std::time::Instant::now();
    sim.run_until(window_end);
    let wall = wall.elapsed();
    let allocs1 = allocations(); // Read before anything below allocates.
    assert_eq!(sim.model().data_drops(), 0);
    let events = sim.events_processed() - events0;
    let packets = sim.model().packets_delivered() - packets0;
    assert!(packets > 0, "{label}: measurement window saw no deliveries");
    criterion::record_metric(
        &format!("{label}/events_per_sec"),
        events as f64 / wall.as_secs_f64(),
    );
    criterion::record_metric(&format!("{label}/packets"), packets as f64);
    if let (Some(a0), Some(a1)) = (allocs0, allocs1) {
        let allocs = a1 - a0;
        let per_packet = allocs as f64 / packets as f64;
        criterion::record_metric(&format!("{label}/allocs_per_packet"), per_packet);
        if assert_zero {
            assert_eq!(
                allocs, 0,
                "{label}: {allocs} heap allocations in the steady-state window \
                 ({per_packet:.4}/packet) — the packet hot path must not allocate"
            );
        }
    }
}

/// Steady-state packet-path probes: timing plus allocation accounting.
fn packet_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("packet_path");
    g.sample_size(10);
    for scheme in [Scheme::Sih, Scheme::Dsh] {
        g.bench_function(format!("forward_chain_5sw_{scheme}"), |b| {
            b.iter(|| {
                let mut sim = forward_chain_sim(scheme);
                sim.run_until(Time::from_us(500));
                assert_eq!(sim.model().data_drops(), 0);
                sim.events_processed()
            });
        });
    }
    g.finish();
    // Alloc-accounted steady-state windows (once each; not timed loops).
    for scheme in [Scheme::Sih, Scheme::Dsh] {
        packet_path_probe(
            &format!("packet_path/incast_8_to_1_{scheme}"),
            incast_sim(scheme, 1024 * 1024),
            true,
        );
        packet_path_probe(
            &format!("packet_path/forward_chain_5sw_{scheme}"),
            forward_chain_sim(scheme),
            true,
        );
    }
    sr_path_probe("packet_path/lossy_sr_incast_8_to_1", lossy_sr_incast_sim(4 * 1024 * 1024));
}

/// A k-ary fat-tree under steady cross-pod load: every flow leaves its pod
/// (host → edge → agg → core → agg → edge → host), so traffic crosses the
/// partition cuts continuously. ECN off and uncontrolled long flows keep
/// the fixture deterministic and busy through the whole window.
fn fat_tree_net(k: usize, flows_per_pod: usize) -> Network {
    let ft = fat_tree(
        NetParams::tomahawk(Scheme::Dsh).without_ecn(),
        k,
        Bandwidth::from_gbps(100),
        Delta::from_us(2),
    );
    let mut net = ft.builder.build();
    for pod in 0..k {
        for i in 0..flows_per_pod {
            net.add_flow(FlowSpec {
                src: ft.hosts[pod][i],
                dst: ft.hosts[(pod + k / 2) % k][i],
                size: 64 * 1024 * 1024,
                class: 0,
                start: Time::from_ns(137 * (pod * flows_per_pod + i) as u64),
                cc: CcKind::Uncontrolled,
            });
        }
    }
    net
}

/// Fat-tree scale probe for the intra-run partitioned engine: the k=16
/// evaluation fabric (1024 hosts, 320 switches) run at 1, 2, and 4
/// workers. The window's event count is bit-identical across worker
/// counts (asserted), so the events/second ratio is a pure wall-clock
/// speedup. Shared CI runners are too noisy (and often single-core) for a
/// hard gate, so the >1.3× contract at 4 workers is advisory unless
/// `DSH_BENCH_STRICT=1`; `DSH_SMOKE=1` shrinks the load and window for
/// CI.
fn parallel_scale(_c: &mut Criterion) {
    let smoke = std::env::var("DSH_SMOKE").is_ok();
    let k = 16;
    let flows_per_pod = if smoke { 2 } else { 4 };
    let warmup_end = Time::from_us(if smoke { 20 } else { 50 });
    let window_end = Time::from_us(if smoke { 60 } else { 250 });
    let mut eps = Vec::new();
    let mut window_events = None;
    for workers in [1usize, 2, 4] {
        let mut par = ParallelSim::new(fat_tree_net(k, flows_per_pod), workers)
            .expect("a fat-tree with real wire delays must partition");
        assert!(par.plan().parts() > 1, "the scale probe needs real partitions");
        let (events, packets, wall) = par.session(|run| {
            run.run_until(warmup_end);
            let events0 = run.events_processed();
            let packets0 = run.packets_delivered();
            let wall = std::time::Instant::now();
            run.run_until(window_end);
            let wall = wall.elapsed();
            (run.events_processed() - events0, run.packets_delivered() - packets0, wall)
        });
        assert!(packets > 0, "scale window saw no deliveries");
        match window_events {
            None => window_events = Some(events),
            Some(e) => assert_eq!(e, events, "event count drifted at {workers} workers"),
        }
        let rate = events as f64 / wall.as_secs_f64();
        criterion::record_metric(
            &format!("parallel_scale/fat_tree_k{k}/workers_{workers}/events_per_sec"),
            rate,
        );
        eps.push(rate);
    }
    let speedup = eps[2] / eps[0];
    criterion::record_metric(&format!("parallel_scale/fat_tree_k{k}/speedup_4w"), speedup);
    if std::env::var("DSH_BENCH_STRICT").as_deref() == Ok("1") {
        assert!(
            speedup > 1.3,
            "partitioned engine managed only {speedup:.2}x at 4 workers (contract: >1.3x)"
        );
    }
}

/// A 4-switch chain with long cross-cut uncontrolled flows (ECN off): the
/// partitioned counterpart of the packet-path fixtures. Every flow's path
/// crosses at least one partition cut, so the steady state continuously
/// exercises the outbox → merge → remote-calendar machinery.
fn partitioned_chain() -> ParallelSim {
    let mut bld = NetworkBuilder::new(NetParams::tomahawk(Scheme::Dsh).without_ecn());
    let switches: Vec<_> = (0..4).map(|_| bld.switch()).collect();
    for w in switches.windows(2) {
        bld.link(w[0], w[1], Bandwidth::from_gbps(100), Delta::from_us(2));
    }
    let mut hosts = Vec::new();
    for &s in &switches {
        for _ in 0..2 {
            let h = bld.host();
            bld.link(h, s, Bandwidth::from_gbps(100), Delta::from_us(1));
            hosts.push(h);
        }
    }
    let mut net = bld.build();
    for (i, (src, dst)) in
        [(0, 6), (6, 0), (1, 7), (7, 1), (2, 4), (4, 2), (3, 5), (5, 3)].into_iter().enumerate()
    {
        net.add_flow(FlowSpec {
            src: hosts[src],
            dst: hosts[dst],
            size: 16 * 1024 * 1024,
            class: 0,
            start: Time::from_us(i as u64),
            cc: CcKind::Uncontrolled,
        });
    }
    let par = ParallelSim::new(net, 2).expect("the chain must partition");
    assert!(par.plan().parts() > 1, "the alloc probe needs a real cut");
    par
}

/// Steady-state probe of the partitioned engine: warmup and measurement
/// both run inside one worker session (thread spawn sits outside the
/// measured window), so with the counting allocator the window must be
/// allocation-free once per-partition pools, outboxes, and calendars
/// reach steady capacity — the serial zero-allocation contract carries
/// over to the parallel engine.
fn parallel_packet_path_probe(label: &str, mut par: ParallelSim) {
    // Warmup runs past the point where PFC-paused egress queues reach
    // their peak depth (deeper than the serial fixtures': cross-partition
    // traffic is window-batched), so queue capacity growth is done before
    // the measured window opens.
    let warmup_end = Time::from_us(250);
    let window_end = Time::from_us(550);
    if std::env::var("DSH_ALLOC_TRACE").is_ok() {
        par.session(|run| {
            run.run_until(warmup_end);
            #[cfg(feature = "alloc-count")]
            alloc_count::TRAP.store(true, std::sync::atomic::Ordering::Relaxed);
            run.run_until(window_end);
            #[cfg(feature = "alloc-count")]
            alloc_count::TRAP.store(false, std::sync::atomic::Ordering::Relaxed);
        });
        println!("{label} traced");
        return;
    }
    let (allocs0, allocs1, events, packets, wall) = par.session(|run| {
        run.run_until(warmup_end);
        let allocs0 = allocations();
        let events0 = run.events_processed();
        let packets0 = run.packets_delivered();
        let wall = std::time::Instant::now();
        run.run_until(window_end);
        let wall = wall.elapsed();
        let allocs1 = allocations(); // Read before anything below allocates.
        (
            allocs0,
            allocs1,
            run.events_processed() - events0,
            run.packets_delivered() - packets0,
            wall,
        )
    });
    assert!(packets > 0, "{label}: measurement window saw no deliveries");
    criterion::record_metric(
        &format!("{label}/events_per_sec"),
        events as f64 / wall.as_secs_f64(),
    );
    criterion::record_metric(&format!("{label}/packets"), packets as f64);
    if let (Some(a0), Some(a1)) = (allocs0, allocs1) {
        let allocs = a1 - a0;
        let per_packet = allocs as f64 / packets as f64;
        criterion::record_metric(&format!("{label}/allocs_per_packet"), per_packet);
        assert_eq!(
            allocs, 0,
            "{label}: {allocs} heap allocations in the steady-state window \
             ({per_packet:.4}/packet) — the partitioned packet hot path must not allocate"
        );
    }
}

/// Partitioned-engine probes: the k=16 fat-tree scale sweep plus the
/// allocation-accounted cross-partition packet path.
fn parallel_engine(c: &mut Criterion) {
    parallel_packet_path_probe("parallel_packet_path/chain_4sw_2workers", partitioned_chain());
    parallel_scale(c);
}

criterion_group!(
    benches,
    event_queue_throughput,
    end_to_end_incast,
    packet_path,
    fig14_sweep_parallel,
    parallel_engine
);
criterion_main!(benches);
