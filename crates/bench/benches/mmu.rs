//! Microbenchmark: MMU admission/release throughput for SIH and DSH —
//! the per-packet fast path a switching chip would implement.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dsh_core::{Mmu, MmuConfig, Scheme};

fn mmu_roundtrip(c: &mut Criterion) {
    let mut g = c.benchmark_group("mmu_arrival_departure");
    for scheme in [Scheme::Sih, Scheme::Dsh] {
        g.bench_function(format!("{scheme}"), |b| {
            b.iter_batched_ref(
                || Mmu::new(MmuConfig::tomahawk(scheme)),
                |mmu| {
                    // 16 ports cycling arrivals then departures.
                    for round in 0..64u64 {
                        let port = (round % 16) as usize;
                        let o = mmu.on_arrival(port, 0, 1500, dsh_simcore::Time::ZERO);
                        if let Some(region) = o.region {
                            let _ =
                                mmu.on_departure(port, 0, 1500, region, dsh_simcore::Time::ZERO);
                        }
                    }
                },
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn mmu_burst_to_pause(c: &mut Criterion) {
    let mut g = c.benchmark_group("mmu_burst_until_pause");
    for scheme in [Scheme::Sih, Scheme::Dsh] {
        g.bench_function(format!("{scheme}"), |b| {
            b.iter_batched_ref(
                || Mmu::new(MmuConfig::tomahawk(scheme)),
                |mmu| {
                    'outer: for _ in 0..100_000 {
                        for port in 0..16 {
                            let o = mmu.on_arrival(port, 0, 1500, dsh_simcore::Time::ZERO);
                            if !o.actions.is_empty() {
                                break 'outer;
                            }
                        }
                    }
                },
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

criterion_group!(benches, mmu_roundtrip, mmu_burst_to_pause);
criterion_main!(benches);
