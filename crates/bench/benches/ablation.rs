//! Ablation benches for the design choices DESIGN.md calls out:
//! * the DT parameter α's effect on burst absorption (Theorem 1's α),
//! * queue-count scalability (DSH independent of N_q, SIH not),
//! * the insurance headroom's role in losslessness.

use criterion::{criterion_group, criterion_main, Criterion};
use dsh_analysis::theory::{dsh_burst_tolerance, sih_burst_tolerance, BurstScenario};
use dsh_core::{Mmu, MmuConfig, Scheme};

fn base() -> BurstScenario {
    BurstScenario {
        total_buffer: 16.0 * 1024.0 * 1024.0,
        eta: 56_840.0,
        alpha: 1.0 / 16.0,
        num_ports: 32,
        queues_per_port: 7,
        congested: 2,
        bursting: 16,
        offered_load: 2.0,
    }
}

fn alpha_sweep(c: &mut Criterion) {
    c.bench_function("ablation_alpha_sweep", |b| {
        b.iter(|| {
            // Burst tolerance across alpha: rises then falls (too-large
            // alpha lets single queues starve the pool).
            let mut out = Vec::new();
            for k in 1..=8u32 {
                let alpha = 1.0 / f64::from(1 << k);
                let sc = BurstScenario { alpha, ..base() };
                out.push((alpha, dsh_burst_tolerance(&sc), sih_burst_tolerance(&sc)));
            }
            out
        });
    });
}

fn queue_count_sweep(c: &mut Criterion) {
    c.bench_function("ablation_queue_count_sweep", |b| {
        b.iter(|| {
            let mut ratios = Vec::new();
            for nq in [1usize, 2, 4, 7, 8] {
                let sc = BurstScenario { queues_per_port: nq, ..base() };
                ratios.push(dsh_burst_tolerance(&sc) / sih_burst_tolerance(&sc));
            }
            // The DSH advantage grows with the queue count.
            assert!(ratios.windows(2).all(|w| w[1] >= w[0]));
            ratios
        });
    });
}

fn insurance_necessity(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_insurance");
    g.sample_size(10);
    g.bench_function("burst_all_queues_full_dsh", |b| {
        b.iter(|| {
            let mut mmu = Mmu::new(MmuConfig::tomahawk(Scheme::Dsh));
            let mut drops = 0u64;
            'outer: for _ in 0..10_000 {
                for p in 0..32 {
                    let out = mmu.on_arrival(p, 0, 1500, dsh_simcore::Time::ZERO);
                    if !out.is_admitted() {
                        drops += 1;
                        break 'outer;
                    }
                }
            }
            drops
        });
    });
    g.finish();
}

criterion_group!(benches, alpha_sweep, queue_count_sweep, insurance_necessity);
criterion_main!(benches);
