//! One Criterion bench per paper figure family, at reduced scale: running
//! `cargo bench` regenerates (a scaled version of) every figure's
//! measurement pipeline and times it.

use criterion::{criterion_group, criterion_main, Criterion};
use dsh_bench::fabric::FctExperiment;
use dsh_bench::{fig04, fig05, fig06, fig11, fig12, fig13, fig13x, fig14, fig15, fig18, theory};
use dsh_core::Scheme;
use dsh_simcore::Delta;
use dsh_transport::CcKind;
use dsh_workloads::Workload;

fn small_base() -> FctExperiment {
    let mut base = FctExperiment::small(Scheme::Sih, CcKind::Dcqcn);
    // Keep bench wall-time sane: micro fabric, sub-millisecond horizon.
    base.topo = dsh_bench::fabric::Topo::LeafSpine { leaves: 2, spines: 2, hosts_per_leaf: 4 };
    base.horizon = Delta::from_us(300);
    base.run_until = Delta::from_ms(2);
    base
}

fn bench_fig04(c: &mut Criterion) {
    c.bench_function("fig04_headroom_trend", |b| b.iter(fig04::rows));
}

fn bench_fig05(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig05_fct_vs_buffer");
    g.sample_size(10);
    let base = small_base();
    g.bench_function("buffer_14_vs_30", |b| {
        b.iter(|| {
            let lo = fig05::run_point(Scheme::Sih, 14, &base);
            let hi = fig05::run_point(Scheme::Sih, 30, &base);
            (lo.avg_fct_ms, hi.avg_fct_ms)
        });
    });
    g.finish();
}

fn bench_fig06(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig06_headroom_utilization");
    g.sample_size(10);
    for scheme in Scheme::ALL {
        g.bench_function(format!("leafspine_2x4_{scheme}"), |b| {
            b.iter(|| fig06::run(scheme, 2, 4, Delta::from_us(500), 1).utilization.len());
        });
    }
    g.finish();
}

fn bench_fig11(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_pfc_avoidance");
    g.sample_size(10);
    for scheme in Scheme::ALL {
        g.bench_function(format!("burst20pct_{scheme}"), |b| {
            b.iter(|| fig11::pause_duration(scheme, 0.20).pause_ms);
        });
    }
    g.finish();
}

fn bench_fig12(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_deadlock");
    g.sample_size(10);
    let mut cfg = fig12::Fig12Config::small();
    cfg.fan_in = 6;
    cfg.horizon = Delta::from_us(800);
    cfg.duration = Delta::from_ms(1);
    cfg.detect_threshold = Delta::from_us(400);
    for scheme in [Scheme::Sih, Scheme::Dsh] {
        g.bench_function(format!("{scheme}"), |b| {
            b.iter(|| fig12::run_once(scheme, CcKind::Dcqcn, &cfg, 1).onset.is_some());
        });
    }
    g.finish();
}

fn bench_fig13(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13_collateral_damage");
    g.sample_size(10);
    for scheme in [Scheme::Sih, Scheme::Dsh] {
        g.bench_function(format!("{scheme}"), |b| {
            b.iter(|| fig13::post_burst_min(&fig13::victim_series(scheme, CcKind::Uncontrolled)));
        });
    }
    g.finish();
}

fn bench_fig13x(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13x_link_flap");
    g.sample_size(10);
    let mut exp = fig13x::smoke_base(Scheme::Dsh);
    exp.flap_period = Some(Delta::from_us(300));
    g.bench_function("dsh_flap300us", |b| {
        b.iter(|| {
            let r = fig13x::run_flap(&exp);
            assert_eq!(r.wedged, 0);
            r.link_drops
        });
    });
    g.finish();
    // Perf-trajectory point (BENCH_PR4.json): steady-state event rate of
    // the fault-injected run, so flap handling showing up on the packet
    // path would be caught as an events/sec regression. Trace points are
    // compiled into this run but masked off — the rate doubles as the
    // tracing overhead guard against the PR4 baseline. Best of three
    // runs: throughput is capability, and the min/median carry scheduler
    // noise that would drown a 2% contract.
    let mut rate = 0.0f64;
    let mut last = None;
    for _ in 0..3 {
        let wall = std::time::Instant::now();
        let r = fig13x::run_flap(&exp);
        rate = rate.max(r.events as f64 / wall.elapsed().as_secs_f64());
        last = Some(r);
    }
    let r = last.expect("three timed runs");
    criterion::record_metric("fig13x_link_flap/events_per_sec", rate);
    criterion::record_metric("fig13x_link_flap/link_drops", r.link_drops as f64);
    criterion::record_metric("fig13x_link_flap/retransmissions", r.retransmissions as f64);
    if let Some(baseline) = committed_events_per_sec("BENCH_PR4.json") {
        let ratio = rate / baseline;
        criterion::record_metric("fig13x_link_flap/events_per_sec_vs_pr4", ratio);
        // Wall-clock rates are machine-dependent; the ±2% contract is only
        // asserted when the caller opts in on a quiet, comparable host.
        if std::env::var("DSH_BENCH_STRICT").as_deref() == Ok("1") {
            assert!(
                ratio >= 0.98,
                "masked-off tracing slowed the fault run by more than 2%: \
                 {rate:.0} events/s vs PR4 baseline {baseline:.0} (ratio {ratio:.4})"
            );
        }
    }
    // Observability-overhead guard (BENCH_PR10.json): the same masked-off
    // run measured against the PR9 baseline. The pause-causality tracker
    // and the instant-closed metrics-capture entry branch are compiled in
    // but disarmed here, so this ratio is exactly their masked-off cost —
    // the "≤ one branch on the hot path" contract as an event rate.
    if let Some(baseline) = committed_events_per_sec("BENCH_PR9.json") {
        let ratio = rate / baseline;
        criterion::record_metric("fig13x_link_flap/events_per_sec_vs_pr9", ratio);
        if std::env::var("DSH_BENCH_STRICT").as_deref() == Ok("1") {
            assert!(
                ratio >= 0.98,
                "masked-off observability slowed the fault run by more than 2%: \
                 {rate:.0} events/s vs PR9 baseline {baseline:.0} (ratio {ratio:.4})"
            );
        }
    }
    // BShare trajectory point (BENCH_PR6.json): same flap schedule under
    // the queueing-delay-driven scheme, so its pause-threshold math
    // leaking onto the packet path would show as an event-rate gap
    // against the DSH number above.
    let mut bshare_exp = fig13x::smoke_base(Scheme::BShare);
    bshare_exp.flap_period = Some(Delta::from_us(300));
    let mut bshare_rate = 0.0f64;
    for _ in 0..3 {
        let wall = std::time::Instant::now();
        let r = fig13x::run_flap(&bshare_exp);
        assert_eq!(r.wedged, 0);
        bshare_rate = bshare_rate.max(r.events as f64 / wall.elapsed().as_secs_f64());
    }
    criterion::record_metric("fig13x_link_flap/bshare_events_per_sec", bshare_rate);
    // Engine profiler breakdown (BENCH_PR5.json): per-event-type dispatch
    // counts, plus per-class wall time under `--features profile`.
    let (_, prof) = fig13x::run_flap_profiled(&exp);
    for (name, events, nanos) in prof.rows() {
        criterion::record_metric(&format!("engine_profile/{name}/events"), events as f64);
        if dsh_simcore::EngineProfile::timing_enabled() {
            criterion::record_metric(&format!("engine_profile/{name}/nanos"), nanos as f64);
        }
    }
}

/// The `fig13x_link_flap/events_per_sec` metric committed in a prior
/// PR's baseline file at the repo root (`BENCH_PR4.json` is the
/// pre-tracing baseline, `BENCH_PR9.json` the pre-observability one), or
/// `None` when the file is missing or unparsable.
fn committed_events_per_sec(file: &str) -> Option<f64> {
    let path = format!("{}/../../{file}", env!("CARGO_MANIFEST_DIR"));
    let doc = dsh_simcore::Json::parse(&std::fs::read_to_string(path).ok()?).ok()?;
    doc.get("metrics")?
        .as_arr()?
        .iter()
        .find(|m| {
            m.get("name").and_then(dsh_simcore::Json::as_str)
                == Some("fig13x_link_flap/events_per_sec")
        })?
        .get("value")?
        .as_f64()
}

fn bench_fig14(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig14_fct_vs_load");
    g.sample_size(10);
    let base = small_base();
    g.bench_function("dcqcn_load0.5", |b| {
        b.iter(|| {
            fig14::run_point(CcKind::Dcqcn, 0.5, &base, &dsh_simcore::Executor::serial()).norm_fan()
        });
    });
    g.finish();
}

fn bench_fig15(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig15_workloads");
    g.sample_size(10);
    let base = small_base();
    g.bench_function("cache_leafspine", |b| {
        b.iter(|| {
            fig15::run_cell(Workload::Cache, false, 0.5, &base, 4, &dsh_simcore::Executor::serial())
                .norm_bg()
        });
    });
    g.finish();
}

fn bench_fig18(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig18_cascade_anatomy");
    g.sample_size(10);
    // Observe-armed on purpose: this is the only figure whose measured
    // run carries the cascade tracker and metrics sampler, so its event
    // rate tracks the *armed* observability cost (the masked-off cost is
    // the fig13x ratio above).
    let exp = fig18::smoke_base(Scheme::Dsh);
    g.bench_function("dsh_incast8_observed", |b| {
        b.iter(|| {
            let r = fig18::run_cell(&exp);
            assert!(r.cascades.max_depth >= 2);
            r.cascades.count
        });
    });
    g.finish();
}

fn bench_theory(c: &mut Criterion) {
    c.bench_function("theory_validation", |b| {
        b.iter(|| theory::validate(&[2.0, 8.0], &[7]).len());
    });
}

criterion_group!(
    benches,
    bench_fig04,
    bench_fig05,
    bench_fig06,
    bench_fig11,
    bench_fig12,
    bench_fig13,
    bench_fig13x,
    bench_fig14,
    bench_fig15,
    bench_fig18,
    bench_theory
);
criterion_main!(benches);
