//! Fig. 16 (extension, not in the paper): MMU scheme parameter
//! sensitivity — BShare's per-packet queueing-delay target crossed with
//! the DT `α` the shared pool runs at, under the Fig. 14 traffic mix.
//!
//! The paper fixes BShare's target at 20 µs and `α = 1/16` (Tomahawk
//! defaults); this grid shows how far those choices sit from the FCT
//! knee on the reproduction fabric.

use crate::fabric::{run_fct, FctExperiment};
use dsh_core::Scheme;
use dsh_simcore::{Delta, Executor};

/// One cell of the delay-target × α grid.
#[derive(Clone, Copy, Debug)]
pub struct Fig16Point {
    /// BShare per-packet delay target (µs).
    pub delay_target_us: u64,
    /// DT `α`.
    pub alpha: f64,
    /// Average FCT over all flows, milliseconds.
    pub avg_fct_ms: f64,
    /// 99th-percentile FCT over all flows, milliseconds.
    pub p99_fct_ms: f64,
    /// Completed flows.
    pub completed: usize,
}

/// Runs one grid cell: BShare with the given delay target and `α`.
#[must_use]
pub fn run_point(delay_target_us: u64, alpha: f64, base: &FctExperiment) -> Fig16Point {
    let exp = FctExperiment {
        scheme: Scheme::BShare,
        alpha: Some(alpha),
        bshare_delay_target: Some(Delta::from_us(delay_target_us)),
        ..*base
    };
    let r = run_fct(&exp);
    Fig16Point {
        delay_target_us,
        alpha,
        avg_fct_ms: r.all.map(|s| s.avg_secs * 1e3).unwrap_or(f64::NAN),
        p99_fct_ms: r.all.map(|s| s.p99_secs * 1e3).unwrap_or(f64::NAN),
        completed: r.completed,
    }
}

/// Sweeps the full delay-target × α grid on the pool, row-major in
/// `delay_targets_us` order.
#[must_use]
pub fn sweep(
    delay_targets_us: &[u64],
    alphas: &[f64],
    base: &FctExperiment,
    ex: &Executor,
) -> Vec<Fig16Point> {
    let grid: Vec<(u64, f64)> =
        delay_targets_us.iter().flat_map(|&d| alphas.iter().map(move |&a| (d, a))).collect();
    ex.par_map(grid, |(d, a)| run_point(d, a, base))
}
