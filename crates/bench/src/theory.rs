//! Theorems 1–2 validation: closed forms vs the fluid integrator, and the
//! scalability-in-`N_q` remark.

use dsh_analysis::theory::{
    dsh_burst_tolerance, fluid_first_pause, sih_burst_tolerance, BurstScenario,
};

/// One validation row.
#[derive(Clone, Copy, Debug)]
pub struct TheoryRow {
    /// Offered load `R`.
    pub r: f64,
    /// Queues per port `N_q`.
    pub nq: usize,
    /// Theorem 1 (DSH) closed form.
    pub dsh_closed: f64,
    /// Fluid-model measurement for DSH.
    pub dsh_fluid: f64,
    /// Theorem 2 (SIH) closed form.
    pub sih_closed: f64,
    /// Fluid-model measurement for SIH.
    pub sih_fluid: f64,
}

/// The base scenario (Tomahawk, N = 2 congested, M = 16 bursting).
#[must_use]
pub fn base_scenario() -> BurstScenario {
    BurstScenario {
        total_buffer: 16.0 * 1024.0 * 1024.0,
        eta: 56_840.0,
        alpha: 1.0 / 16.0,
        num_ports: 32,
        queues_per_port: 7,
        congested: 2,
        bursting: 16,
        offered_load: 2.0,
    }
}

/// Validates both theorems over load and queue-count sweeps.
#[must_use]
pub fn validate(loads: &[f64], queue_counts: &[usize]) -> Vec<TheoryRow> {
    let mut rows = Vec::new();
    for &r in loads {
        for &nq in queue_counts {
            let sc = BurstScenario { offered_load: r, queues_per_port: nq, ..base_scenario() };
            let dsh_closed = dsh_burst_tolerance(&sc);
            let sih_closed = sih_burst_tolerance(&sc);
            let fluid = |bs: f64, off: f64, closed: f64| -> f64 {
                if closed <= 0.0 {
                    return 0.0;
                }
                fluid_first_pause(&sc, bs, off, closed * 3.0, closed / 10_000.0)
                    .first_pause
                    .unwrap_or(f64::NAN)
            };
            rows.push(TheoryRow {
                r,
                nq,
                dsh_closed,
                dsh_fluid: fluid(sc.dsh_shared(), sc.eta, dsh_closed),
                sih_closed,
                sih_fluid: fluid(sc.sih_shared(), 0.0, sih_closed),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_forms_track_fluid_within_2_percent() {
        for row in validate(&[1.5, 2.0, 4.0, 8.0], &[7]) {
            let derr = (row.dsh_fluid - row.dsh_closed).abs() / row.dsh_closed;
            let serr = (row.sih_fluid - row.sih_closed).abs() / row.sih_closed;
            assert!(derr < 0.02, "DSH r={} err {derr}", row.r);
            assert!(serr < 0.02, "SIH r={} err {serr}", row.r);
        }
    }
}
