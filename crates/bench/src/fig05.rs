//! Fig. 5: average FCT vs switch buffer size (motivation §III-A) —
//! PowerTCP, web search at 0.9 total load, leaf–spine.

use crate::fabric::{run_fct, FctExperiment};
use dsh_core::Scheme;
use dsh_simcore::{ByteSize, Executor};
use dsh_transport::CcKind;

/// One point of Fig. 5.
#[derive(Clone, Copy, Debug)]
pub struct Fig5Point {
    /// Buffer size (MiB).
    pub buffer_mib: u64,
    /// Average FCT in milliseconds.
    pub avg_fct_ms: f64,
    /// Completed flows.
    pub completed: usize,
}

/// Runs one buffer size under SIH (the motivation figure predates DSH).
#[must_use]
pub fn run_point(buffer_mib: u64, base: &FctExperiment) -> Fig5Point {
    let exp = FctExperiment {
        scheme: Scheme::Sih,
        cc: CcKind::PowerTcp,
        buffer: ByteSize::mib(buffer_mib),
        ..*base
    };
    let r = run_fct(&exp);
    Fig5Point {
        buffer_mib,
        avg_fct_ms: r.all.map(|s| s.avg_secs * 1e3).unwrap_or(f64::NAN),
        completed: r.completed,
    }
}

/// Sweeps the paper's buffer sizes (14–30 MB) on the pool.
#[must_use]
pub fn sweep(buffers_mib: &[u64], base: &FctExperiment, ex: &Executor) -> Vec<Fig5Point> {
    ex.par_map(buffers_mib.to_vec(), |b| run_point(b, base))
}
