//! Fig. 5: average FCT vs switch buffer size (motivation §III-A) —
//! PowerTCP, web search at 0.9 total load, leaf–spine. The paper plots
//! SIH only (the figure motivates DSH); the harness sweeps every scheme
//! so the same pipeline compares SIH/DSH/BShare curves.

use crate::fabric::{run_fct, FctExperiment};
use dsh_core::Scheme;
use dsh_simcore::{ByteSize, Executor};
use dsh_transport::CcKind;

/// One point of Fig. 5.
#[derive(Clone, Copy, Debug)]
pub struct Fig5Point {
    /// Buffer size (MiB).
    pub buffer_mib: u64,
    /// Average FCT in milliseconds.
    pub avg_fct_ms: f64,
    /// Completed flows.
    pub completed: usize,
}

/// Runs one buffer size under one scheme.
#[must_use]
pub fn run_point(scheme: Scheme, buffer_mib: u64, base: &FctExperiment) -> Fig5Point {
    let exp =
        FctExperiment { scheme, cc: CcKind::PowerTcp, buffer: ByteSize::mib(buffer_mib), ..*base };
    let r = run_fct(&exp);
    Fig5Point {
        buffer_mib,
        avg_fct_ms: r.all.map(|s| s.avg_secs * 1e3).unwrap_or(f64::NAN),
        completed: r.completed,
    }
}

/// Sweeps the paper's buffer sizes (14–30 MB) for one scheme on the pool.
#[must_use]
pub fn sweep(
    scheme: Scheme,
    buffers_mib: &[u64],
    base: &FctExperiment,
    ex: &Executor,
) -> Vec<Fig5Point> {
    ex.par_map(buffers_mib.to_vec(), |b| run_point(scheme, b, base))
}

/// Sweeps the full scheme × buffer grid on the pool; one curve per
/// scheme, in [`Scheme::ALL`] order.
#[must_use]
pub fn sweep_schemes(
    buffers_mib: &[u64],
    base: &FctExperiment,
    ex: &Executor,
) -> Vec<(Scheme, Vec<Fig5Point>)> {
    let grid: Vec<(Scheme, u64)> =
        Scheme::ALL.iter().flat_map(|&s| buffers_mib.iter().map(move |&b| (s, b))).collect();
    let mut runs = ex.par_map(grid, |(s, b)| run_point(s, b, base)).into_iter();
    Scheme::ALL
        .iter()
        .map(|&s| (s, buffers_mib.iter().map(|_| runs.next().expect("full grid")).collect()))
        .collect()
}
