//! Fig. 15: average background FCT (normalized to SIH) across workloads
//! (data mining, cache, Hadoop on leaf–spine) and a fat-tree fabric
//! (web search), all under DCQCN.

use crate::fabric::{run_fct, run_fct_pair, FctExperiment, FctResult, Topo};
use dsh_core::Scheme;
use dsh_simcore::Executor;
use dsh_transport::CcKind;
use dsh_workloads::Workload;

/// One Fig. 15 cell: a (workload, topology) pair at one load.
#[derive(Clone, Copy, Debug)]
pub struct Fig15Cell {
    /// Workload.
    pub workload: Workload,
    /// Whether this is the fat-tree variant.
    pub fat_tree: bool,
    /// Background load.
    pub bg_load: f64,
    /// SIH result.
    pub sih: FctResult,
    /// DSH result.
    pub dsh: FctResult,
}

impl Fig15Cell {
    /// DSH avg background FCT normalized to SIH.
    #[must_use]
    pub fn norm_bg(&self) -> Option<f64> {
        Some(self.dsh.bg?.normalized_avg(&self.sih.bg?))
    }
}

/// The paper's four panels: (workload, fat-tree?).
pub const PANELS: [(Workload, bool); 4] = [
    (Workload::DataMining, false),
    (Workload::Cache, false),
    (Workload::Hadoop, false),
    (Workload::WebSearch, true),
];

/// The experiment of one (workload, topology, load, scheme) cell; all
/// Fig. 15 panels run DCQCN at 0.9 total load.
fn cell_exp(
    workload: Workload,
    fat_tree: bool,
    bg_load: f64,
    scheme: Scheme,
    base: &FctExperiment,
    fat_tree_k: usize,
) -> FctExperiment {
    FctExperiment {
        scheme,
        cc: CcKind::Dcqcn,
        workload,
        topo: if fat_tree { Topo::FatTree { k: fat_tree_k } } else { base.topo },
        bg_load,
        fanin_load: (0.9 - bg_load).max(0.0),
        ..*base
    }
}

/// Runs one cell (its SIH/DSH pair in parallel).
#[must_use]
pub fn run_cell(
    workload: Workload,
    fat_tree: bool,
    bg_load: f64,
    base: &FctExperiment,
    fat_tree_k: usize,
    ex: &Executor,
) -> Fig15Cell {
    let (sih, dsh) =
        run_fct_pair(&cell_exp(workload, fat_tree, bg_load, Scheme::Sih, base, fat_tree_k), ex);
    Fig15Cell { workload, fat_tree, bg_load, sih, dsh }
}

/// Runs the whole figure — every [`PANELS`] entry at every load, both
/// schemes — as one flattened `par_map` grid. Cells come back grouped by
/// panel, in load order.
#[must_use]
pub fn sweep(
    loads: &[f64],
    base: &FctExperiment,
    fat_tree_k: usize,
    ex: &Executor,
) -> Vec<Fig15Cell> {
    let grid: Vec<(Workload, bool, f64, Scheme)> = PANELS
        .iter()
        .flat_map(|&(w, ft)| loads.iter().map(move |&l| (w, ft, l)))
        .flat_map(|(w, ft, l)| [(w, ft, l, Scheme::Sih), (w, ft, l, Scheme::Dsh)])
        .collect();
    let mut results = ex
        .par_map(grid, |(w, ft, l, scheme)| run_fct(&cell_exp(w, ft, l, scheme, base, fat_tree_k)))
        .into_iter();
    PANELS
        .iter()
        .flat_map(|&(w, ft)| loads.iter().map(move |&l| (w, ft, l)))
        .map(|(workload, fat_tree, bg_load)| {
            let sih = results.next().expect("one SIH result per cell");
            let dsh = results.next().expect("one DSH result per cell");
            Fig15Cell { workload, fat_tree, bg_load, sih, dsh }
        })
        .collect()
}
