//! Fig. 15: average background FCT (normalized to SIH) across workloads
//! (data mining, cache, Hadoop on leaf–spine) and a fat-tree fabric
//! (web search), all under DCQCN.

use crate::fabric::{run_fct, FctExperiment, FctResult, Topo};
use dsh_core::Scheme;
use dsh_transport::CcKind;
use dsh_workloads::Workload;

/// One Fig. 15 cell: a (workload, topology) pair at one load.
#[derive(Clone, Copy, Debug)]
pub struct Fig15Cell {
    /// Workload.
    pub workload: Workload,
    /// Whether this is the fat-tree variant.
    pub fat_tree: bool,
    /// Background load.
    pub bg_load: f64,
    /// SIH result.
    pub sih: FctResult,
    /// DSH result.
    pub dsh: FctResult,
}

impl Fig15Cell {
    /// DSH avg background FCT normalized to SIH.
    #[must_use]
    pub fn norm_bg(&self) -> Option<f64> {
        Some(self.dsh.bg?.normalized_avg(&self.sih.bg?))
    }
}

/// The paper's four panels: (workload, fat-tree?).
pub const PANELS: [(Workload, bool); 4] = [
    (Workload::DataMining, false),
    (Workload::Cache, false),
    (Workload::Hadoop, false),
    (Workload::WebSearch, true),
];

/// Runs one cell.
#[must_use]
pub fn run_cell(
    workload: Workload,
    fat_tree: bool,
    bg_load: f64,
    base: &FctExperiment,
    fat_tree_k: usize,
) -> Fig15Cell {
    let mk = |scheme| {
        let exp = FctExperiment {
            scheme,
            cc: CcKind::Dcqcn,
            workload,
            topo: if fat_tree { Topo::FatTree { k: fat_tree_k } } else { base.topo },
            bg_load,
            fanin_load: (0.9 - bg_load).max(0.0),
            ..*base
        };
        run_fct(&exp)
    };
    Fig15Cell { workload, fat_tree, bg_load, sih: mk(Scheme::Sih), dsh: mk(Scheme::Dsh) }
}
