//! Fig. 12: deadlock onset-time CDF in a leaf–spine fabric with two link
//! failures (S0–L3, S1–L0) that create the cyclic buffer dependency
//! S0→L1→S1→L2→S0 under the four rack-to-rack fan-in patterns.

use dsh_core::Scheme;
use dsh_net::topology::{leaf_spine, LeafSpineShape};
use dsh_net::{EcnConfig, FlowSpec, NetParams};
use dsh_simcore::{Delta, Executor, SimRng, Time};
use dsh_transport::CcKind;
use dsh_workloads::{fan_in_bursts, FlowSizeDist, PatternConfig, Workload};

/// One run's outcome.
#[derive(Clone, Debug)]
pub struct DeadlockRun {
    /// Seed used.
    pub seed: u64,
    /// Deadlock onset, if one occurred.
    pub onset: Option<Time>,
    /// Frames dropped by the PFC watchdog (0 when not armed).
    pub watchdog_drops: u64,
    /// One line per egress port still wedged at run end, naming the
    /// switch, port, pause state and queued bytes — the deadlock
    /// diagnostic a failing test should print.
    pub blocked: Vec<String>,
}

/// Parameters of the Fig. 12 experiment.
#[derive(Clone, Copy, Debug)]
pub struct Fig12Config {
    /// Fan-in degree of each burst (the paper sweeps 1–15).
    pub fan_in: usize,
    /// Load on the leaf downlinks (paper: 0.5).
    pub load: f64,
    /// Flow generation horizon.
    pub horizon: Delta,
    /// Simulation length (paper: 100 ms).
    pub duration: Delta,
    /// Continuous-blockage threshold for declaring deadlock.
    pub detect_threshold: Delta,
    /// Jitter window for fan-in group members (the paper's flows arrive
    /// by a Poisson process, not in lockstep).
    pub arrival_jitter: Delta,
    /// Whether to fail the S0–L3 and S1–L0 links (disable for the
    /// no-CBD control).
    pub fail_links: bool,
    /// Arm the PFC watchdog (extension experiment: industry's deadlock
    /// mitigation breaks the wedge by *dropping*, which DSH avoids
    /// needing).
    pub watchdog: Option<Delta>,
}

impl Fig12Config {
    /// Scaled-down defaults (12-way fan-in, 12 ms of traffic, 15 ms run).
    #[must_use]
    pub fn small() -> Self {
        Fig12Config {
            fan_in: 8,
            load: 0.5,
            horizon: Delta::from_ms(12),
            duration: Delta::from_ms(15),
            detect_threshold: Delta::from_ms(2),
            arrival_jitter: Delta::from_us(100),
            fail_links: true,
            watchdog: None,
        }
    }

    /// Paper-scale (100 ms, 5 ms threshold).
    #[must_use]
    pub fn full() -> Self {
        Fig12Config {
            fan_in: 15,
            load: 0.5,
            horizon: Delta::from_ms(90),
            duration: Delta::from_ms(100),
            detect_threshold: Delta::from_ms(5),
            arrival_jitter: Delta::from_us(100),
            fail_links: true,
            watchdog: None,
        }
    }
}

/// Runs the Fig. 12 scenario once.
#[must_use]
pub fn run_once(scheme: Scheme, cc: CcKind, cfg: &Fig12Config, seed: u64) -> DeadlockRun {
    let mut params = NetParams::tomahawk(scheme);
    params.seed = seed;
    params.deadlock_threshold = cfg.detect_threshold;
    params.pfc_watchdog = cfg.watchdog;
    params.ecn =
        if cc == CcKind::Uncontrolled { EcnConfig::disabled() } else { EcnConfig::for_100g() };

    let mut ls = leaf_spine(params, LeafSpineShape::paper_deadlock());
    let (s0, s1) = (ls.spines[0], ls.spines[1]);
    let (l0, l3) = (ls.leaves[0], ls.leaves[3]);
    if cfg.fail_links {
        ls.builder.remove_link(s0, l3);
        ls.builder.remove_link(s1, l0);
    }
    let hosts = ls.hosts.clone();
    let mut net = ls.builder.build();

    let mut rng =
        SimRng::new(seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407));
    let dist = FlowSizeDist::from_workload(Workload::Hadoop);
    let pc = PatternConfig {
        hosts: 16,
        host_bytes_per_sec: 12.5e9,
        load: cfg.load,
        horizon: Time::ZERO + cfg.horizon,
    };
    // The paper's four fan-in patterns: L0→L3, L3→L0, L1→L2, L2→L1, all in
    // one traffic class (what closes the cycle). Flow arrivals follow a
    // Poisson process (paper §V-A); members of a fan-in group are jittered
    // over a short window rather than released in lockstep.
    for &(a, b) in &[(0usize, 3usize), (3, 0), (1, 2), (2, 1)] {
        for f in fan_in_bursts(&pc, cfg.fan_in, dist.mean() as u64, 0, &mut rng) {
            let size = dist.sample(&mut rng).max(1);
            let jitter = Delta::from_ns(rng.gen_range(cfg.arrival_jitter.as_ns().max(1)));
            net.add_flow(FlowSpec {
                src: hosts[a][f.src],
                dst: hosts[b][f.dst],
                size,
                class: 0,
                start: f.start + jitter,
                cc,
            });
        }
    }

    let mut sim = net.into_sim();
    sim.run_until(Time::ZERO + cfg.duration);
    let net = sim.into_model();
    let blocked = net
        .blocked_ports()
        .map(|b| {
            format!(
                "switch {} port {}: blocked since {} (port_paused={}, paused_classes={:?}, \
                 {} B queued)",
                b.node, b.port, b.since, b.port_paused, b.paused_classes, b.queued_bytes
            )
        })
        .collect();
    DeadlockRun {
        seed,
        onset: net.deadlock_report().onset,
        watchdog_drops: net.watchdog_drops(),
        blocked,
    }
}

/// Runs `n` seeds on the pool and returns all outcomes, in seed order.
#[must_use]
pub fn run_many(
    scheme: Scheme,
    cc: CcKind,
    cfg: &Fig12Config,
    n: u64,
    ex: &Executor,
) -> Vec<DeadlockRun> {
    ex.par_map((1..=n).collect(), |s| run_once(scheme, cc, cfg, s))
}

/// Fraction of runs that deadlocked.
#[must_use]
pub fn deadlock_fraction(runs: &[DeadlockRun]) -> f64 {
    if runs.is_empty() {
        return 0.0;
    }
    runs.iter().filter(|r| r.onset.is_some()).count() as f64 / runs.len() as f64
}
