//! Shared plumbing for the FCT experiments (Figs. 5, 14, 15): build a
//! fabric, load it with background + fan-in traffic, run, and summarize
//! FCTs per traffic type.

use dsh_analysis::fct::FctSummary;
use dsh_core::Scheme;
use dsh_net::topology::{fat_tree, leaf_spine, LeafSpineShape};
use dsh_net::{
    FctRecord, FidelityMode, FidelityStats, FlowId, FlowSpec, NetParams, Network, NodeId,
    ObserveConfig, ParallelSim,
};
use dsh_simcore::{Bandwidth, ByteSize, Delta, Executor, SimRng, Time};
use dsh_transport::CcKind;
use dsh_workloads::{background_flows, fan_in_bursts, FlowSizeDist, PatternConfig, Workload};

/// Priority class carrying fan-in bursts (background spreads over 0–5).
pub const FAN_IN_CLASS: u8 = 6;

/// Topology selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Topo {
    /// Leaf–spine with the given shape.
    LeafSpine {
        /// Leaves.
        leaves: usize,
        /// Spines.
        spines: usize,
        /// Hosts per leaf.
        hosts_per_leaf: usize,
    },
    /// k-ary fat-tree.
    FatTree {
        /// Arity.
        k: usize,
    },
}

impl Topo {
    /// The paper's 256-server leaf–spine (§V-B).
    pub const PAPER_LEAF_SPINE: Topo =
        Topo::LeafSpine { leaves: 16, spines: 16, hosts_per_leaf: 16 };
    /// A laptop-scale leaf–spine (64 servers) with the same oversubscription
    /// (1:1).
    pub const SMALL_LEAF_SPINE: Topo = Topo::LeafSpine { leaves: 4, spines: 4, hosts_per_leaf: 16 };
}

/// One FCT experiment configuration.
#[derive(Clone, Copy, Debug)]
pub struct FctExperiment {
    /// Headroom scheme.
    pub scheme: Scheme,
    /// Transport for all flows.
    pub cc: CcKind,
    /// Background flow-size workload.
    pub workload: Workload,
    /// Fabric.
    pub topo: Topo,
    /// Background one-to-one load (fraction of host capacity).
    pub bg_load: f64,
    /// Fan-in (16:1, 64 KB) load; `bg_load + fanin_load` is the paper's
    /// total load (0.9).
    pub fanin_load: f64,
    /// Flows start within `[0, horizon)`.
    pub horizon: Delta,
    /// Hard stop for the simulation (gives the tail time to finish).
    pub run_until: Delta,
    /// Lossless-pool buffer per switch.
    pub buffer: ByteSize,
    /// Seed.
    pub seed: u64,
    /// Intra-run partition workers: 1 runs the serial calendar, ≥ 2 the
    /// link-partitioned conservative engine (see [`run_net`]).
    pub workers: usize,
    /// Engine fidelity: pure packet-level (the default, byte-identical to
    /// the historical engine) or the hybrid fluid/packet fast path.
    pub fidelity: FidelityMode,
    /// DT `α` override (`None` keeps the chip default).
    pub alpha: Option<f64>,
    /// BShare per-packet delay-target override (`None` keeps the chip
    /// default; ignored by SIH/DSH).
    pub bshare_delay_target: Option<Delta>,
    /// Pause-causality / metrics-sampler configuration (`None`, the
    /// default, keeps the observability hooks masked off).
    pub observe: Option<ObserveConfig>,
}

impl FctExperiment {
    /// The scaled-down default matching the paper's §V-B settings
    /// otherwise (0.9 total load, DCQCN, web search, 16:1 64 KB fan-in).
    #[must_use]
    pub fn small(scheme: Scheme, cc: CcKind) -> Self {
        FctExperiment {
            scheme,
            cc,
            workload: Workload::WebSearch,
            topo: Topo::SMALL_LEAF_SPINE,
            bg_load: 0.6,
            fanin_load: 0.3,
            horizon: Delta::from_ms(2),
            run_until: Delta::from_ms(8),
            buffer: ByteSize::mib(16),
            seed: 1,
            workers: 1,
            fidelity: FidelityMode::Packet,
            alpha: None,
            bshare_delay_target: None,
            observe: None,
        }
    }
}

/// Runs a loaded network to `deadline` on the configured engine: the
/// serial calendar for `workers <= 1`, the link-partitioned conservative
/// engine otherwise. Returns the measured network and the number of
/// calendar events processed.
///
/// # Panics
///
/// Panics if `workers >= 2` and the topology cannot be partitioned
/// (a cut link with zero propagation delay — every figure fabric has
/// real wire delays, so this means a misconfigured custom topology).
#[must_use]
pub fn run_net(net: Network, deadline: Time, workers: usize) -> (Network, u64) {
    if workers <= 1 {
        let mut sim = net.into_sim();
        sim.run_until(deadline);
        let events = sim.events_processed();
        return (sim.into_model(), events);
    }
    run_net_partitioned(net, deadline, workers)
}

/// Like [`run_net`] but always partitions, even at one worker — the
/// partitioned engine's per-partition RNG streams make its results
/// self-consistent at any worker count but (with ECN enabled) not
/// byte-identical to the serial calendar, so determinism tests compare
/// partitioned-vs-partitioned through this entry point.
///
/// # Panics
///
/// Panics if the topology cannot be partitioned (see [`run_net`]).
#[must_use]
pub fn run_net_partitioned(net: Network, deadline: Time, workers: usize) -> (Network, u64) {
    let mut par = ParallelSim::new(net, workers)
        .unwrap_or_else(|e| panic!("figure fabric must be partitionable: {e}"));
    par.run_until(deadline);
    let events = par.events_processed();
    (par.into_network(), events)
}

/// Outcome of one FCT experiment.
#[derive(Clone, Copy, Debug)]
pub struct FctResult {
    /// Fan-in flow summary (`None` if none completed).
    pub fan: Option<FctSummary>,
    /// Background flow summary.
    pub bg: Option<FctSummary>,
    /// Summary over all flows.
    pub all: Option<FctSummary>,
    /// Completed / registered flows.
    pub completed: usize,
    /// Registered flows.
    pub registered: usize,
    /// Data drops (must be 0).
    pub drops: u64,
}

/// Runs the SIH/DSH pair of `base` (its `scheme` field is overridden) on
/// the pool — the two runs are independent simulations, so they occupy
/// two workers.
///
/// # Panics
///
/// Panics if either run drops packets (see [`run_fct`]).
#[must_use]
pub fn run_fct_pair(base: &FctExperiment, ex: &Executor) -> (FctResult, FctResult) {
    let mut results = ex.par_map(vec![Scheme::Sih, Scheme::Dsh], |scheme| {
        run_fct(&FctExperiment { scheme, ..*base })
    });
    let dsh = results.pop().expect("par_map returned both schemes");
    let sih = results.pop().expect("par_map returned both schemes");
    (sih, dsh)
}

/// Builds the fabric and returns `(network, hosts)`.
fn build(exp: &FctExperiment) -> (Network, Vec<NodeId>) {
    let mut params = NetParams::tomahawk(exp.scheme)
        .with_buffer(exp.buffer)
        .with_seed(exp.seed)
        .with_fidelity(exp.fidelity);
    if exp.cc == CcKind::Uncontrolled {
        params = params.without_ecn();
    }
    if let Some(alpha) = exp.alpha {
        params.alpha = alpha;
    }
    if let Some(target) = exp.bshare_delay_target {
        params.bshare_delay_target = target;
    }
    if let Some(cfg) = exp.observe {
        params = params.with_observability(cfg);
    }
    match exp.topo {
        Topo::LeafSpine { leaves, spines, hosts_per_leaf } => {
            let ls = leaf_spine(
                params,
                LeafSpineShape {
                    leaves,
                    spines,
                    hosts_per_leaf,
                    downlink: Bandwidth::from_gbps(100),
                    uplink: Bandwidth::from_gbps(100),
                    link_delay: Delta::from_us(2),
                },
            );
            let hosts = ls.all_hosts();
            (ls.builder.build(), hosts)
        }
        Topo::FatTree { k } => {
            let ft = fat_tree(params, k, Bandwidth::from_gbps(100), Delta::from_us(2));
            let hosts = ft.all_hosts();
            (ft.builder.build(), hosts)
        }
    }
}

/// An FCT run with the engine-level measurements the fidelity A-B
/// harness compares: raw completion records (for per-size-bucket
/// percentiles), PFC pause wall-clock, drop and event counters, the
/// host wall time of the run, and the hybrid engine's
/// [`FidelityStats`] when one was in force.
#[derive(Clone, Debug)]
pub struct InstrumentedFct {
    /// The per-traffic-type summaries (same as [`run_fct`]).
    pub result: FctResult,
    /// Every completion record, in completion order.
    pub records: Vec<FctRecord>,
    /// Summed queue- plus port-level PFC pause wall-clock over all
    /// egress ports at the deadline.
    pub pause_wall: Delta,
    /// Calendar events processed.
    pub events: u64,
    /// Host wall time of the simulation run itself (build and flow
    /// loading excluded).
    pub wall: std::time::Duration,
    /// Hybrid engine counters (`None` under [`FidelityMode::Packet`]).
    pub fidelity: Option<FidelityStats>,
}

/// Runs an FCT experiment.
///
/// # Panics
///
/// Panics if the lossless fabric dropped packets (a correctness bug).
#[must_use]
pub fn run_fct(exp: &FctExperiment) -> FctResult {
    let (net, fan_ids, registered) = loaded(exp);
    let (net, _events) = run_net(net, Time::ZERO + exp.run_until, exp.workers);
    // SIH's per-queue headroom is the paper's continuous-time worst case
    // (Eq. 1), which the discrete engine can exceed by one frame when a
    // line-rate back-to-back stream spans the whole PFC reaction window:
    // the packet whose admission crosses `T` is itself charged to headroom
    // and the PAUSE frame's own wire time is unbudgeted, so a maximally
    // adversarial alignment needs up to one MTU more than η. Packet-mode
    // runs never line up that way in practice (pacing gaps), but hybrid
    // escalation hands senders off at exactly the fluid fair share, which
    // at low contention IS sustained line rate — so SIH cells under hybrid
    // timing can hit the edge. Tightening admission to the hardware rule
    // (compare occupancy before the packet, overshoot `T` by one frame)
    // closes the hole but moves the pinned packet-mode goldens, so it is
    // deferred (see DESIGN.md §14 and ROADMAP). DSH/BShare losslessness is
    // the paper's claim under test and stays a hard invariant everywhere.
    let sih_eta_edge =
        exp.scheme == Scheme::Sih && matches!(exp.fidelity, FidelityMode::Hybrid { .. });
    if sih_eta_edge && net.data_drops() > 0 {
        eprintln!(
            "warning: {} drop(s) in SIH hybrid run (known discrete-η edge, DESIGN.md §14): {exp:?}",
            net.data_drops()
        );
    } else {
        assert_eq!(net.data_drops(), 0, "lossless fabric dropped packets: {exp:?}");
    }
    summarize(&net, &fan_ids, registered)
}

/// Like [`run_fct`] but instruments the run instead of asserting on it:
/// drops are reported (in `result.drops`), not panicked on, so the A-B
/// harness can compare them across fidelity modes.
#[must_use]
pub fn run_fct_instrumented(exp: &FctExperiment) -> InstrumentedFct {
    let (net, fan_ids, registered) = loaded(exp);
    let deadline = Time::ZERO + exp.run_until;
    let wall = std::time::Instant::now();
    let (net, events) = run_net(net, deadline, exp.workers);
    let wall = wall.elapsed();
    let pause_wall = net.pause_ledgers(deadline).map(|l| l.queue_level + l.port_level).sum();
    InstrumentedFct {
        result: summarize(&net, &fan_ids, registered),
        records: net.fct_records().to_vec(),
        pause_wall,
        events,
        wall,
        fidelity: net.fidelity_stats(),
    }
}

/// When `--metrics`/`DSH_METRICS` asked for an export, re-runs one
/// representative experiment of the figure (`base`, exactly as the
/// figure configured it) with the pause-causality tracker and metrics
/// sampler armed, and writes the export ([`crate::write_metrics`]).
/// Without the flag this is a no-op — the sweep itself always runs with
/// the hooks masked off, so its goldens and timings are untouched.
pub fn export_fct_metrics(args: &crate::Args, base: &FctExperiment) {
    let Some(cfg) = crate::observe_config(args) else { return };
    let exp = FctExperiment { observe: Some(cfg), ..*base };
    let (net, _fan_ids, _registered) = loaded(&exp);
    let (net, _events) = run_net(net, Time::ZERO + exp.run_until, exp.workers);
    crate::write_metrics(args, &net);
}

/// Builds the fabric and loads the background + fan-in flow mix;
/// returns `(network, fan-in flow ids, registered flows)`.
fn loaded(exp: &FctExperiment) -> (Network, Vec<FlowId>, usize) {
    let (mut net, hosts) = build(exp);
    let mut rng = SimRng::new(exp.seed.wrapping_mul(0x9E37_79B9).wrapping_add(7));
    let horizon = Time::ZERO + exp.horizon;
    let dist = FlowSizeDist::from_workload(exp.workload);

    let mut fan_ids = Vec::new();
    if exp.bg_load > 0.0 {
        let cfg = PatternConfig {
            hosts: hosts.len(),
            host_bytes_per_sec: 12.5e9,
            load: exp.bg_load,
            horizon,
        };
        for f in background_flows(&cfg, &dist, &[0, 1, 2, 3, 4, 5], &mut rng) {
            net.add_flow(FlowSpec {
                src: hosts[f.src],
                dst: hosts[f.dst],
                size: f.size,
                class: f.class,
                start: f.start,
                cc: exp.cc,
            });
        }
    }
    if exp.fanin_load > 0.0 {
        let cfg = PatternConfig {
            hosts: hosts.len(),
            host_bytes_per_sec: 12.5e9,
            load: exp.fanin_load,
            horizon,
        };
        // Paper: 16 senders per burst; clamp for micro-scale fabrics.
        let fan_in = 16.min(hosts.len().saturating_sub(1)).max(2);
        for f in fan_in_bursts(&cfg, fan_in, 64 * 1024, FAN_IN_CLASS, &mut rng) {
            let id = net.add_flow(FlowSpec {
                src: hosts[f.src],
                dst: hosts[f.dst],
                size: f.size,
                class: f.class,
                start: f.start,
                cc: exp.cc,
            });
            fan_ids.push(id);
        }
    }

    let registered = net.flow_count();
    (net, fan_ids, registered)
}

/// Summarizes a finished run into per-traffic-type FCT summaries.
fn summarize(net: &Network, fan_ids: &[FlowId], registered: usize) -> FctResult {
    let fan_set: std::collections::HashSet<_> = fan_ids.iter().copied().collect();
    let mut fan = Vec::new();
    let mut bg = Vec::new();
    let mut all = Vec::new();
    for r in net.fct_records() {
        all.push(r.fct());
        if fan_set.contains(&r.flow) {
            fan.push(r.fct());
        } else {
            bg.push(r.fct());
        }
    }
    FctResult {
        fan: FctSummary::from_fcts(&fan),
        bg: FctSummary::from_fcts(&bg),
        all: FctSummary::from_fcts(&all),
        completed: all.len(),
        registered,
        drops: net.data_drops(),
    }
}
