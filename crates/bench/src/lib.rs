//! Experiment harness reproducing every figure of *"Less is More"*
//! (ICDCS 2023).
//!
//! Each module builds the exact scenario of one paper figure and returns
//! the measured series; the binaries in `src/bin/` print them as tables,
//! and the Criterion benches in `benches/` time scaled-down variants.
//!
//! | module | paper figure |
//! |--------|--------------|
//! | [`fig04`] | Buffer/headroom trend across Broadcom chips |
//! | [`fig05`] | FCT vs buffer size |
//! | [`fig06`] | Headroom utilization CDF |
//! | [`fig11`] | PFC avoidance (pause duration vs burst size) |
//! | [`fig12`] | Deadlock onset CDF |
//! | [`fig13`] | Collateral damage (victim throughput) |
//! | [`fig14`] | FCT vs background load (web search, leaf–spine) |
//! | [`fig15`] | FCT across workloads and fat-tree |
//! | [`theory`] | Theorems 1–2 validation |

#![forbid(unsafe_code)]

pub mod fabric;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod theory;

/// Whether `--json` was passed: figure binaries that support it then also
/// print the run's structured telemetry as one JSON document on stdout.
pub fn json_flag() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Parses `--full` (paper-scale) and `--seed N` from argv; returns
/// `(full, seed)`.
pub fn parse_args() -> (bool, u64) {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    (full, seed)
}
