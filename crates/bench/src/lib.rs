//! Experiment harness reproducing every figure of *"Less is More"*
//! (ICDCS 2023).
//!
//! Each module builds the exact scenario of one paper figure and returns
//! the measured series; the binaries in `src/bin/` print them as tables,
//! and the Criterion benches in `benches/` time scaled-down variants.
//!
//! | module | paper figure |
//! |--------|--------------|
//! | [`fig04`] | Buffer/headroom trend across Broadcom chips |
//! | [`fig05`] | FCT vs buffer size |
//! | [`fig06`] | Headroom utilization CDF |
//! | [`fig11`] | PFC avoidance (pause duration vs burst size) |
//! | [`fig12`] | Deadlock onset CDF |
//! | [`fig13`] | Collateral damage (victim throughput) |
//! | [`fig13x`] | Link-flap robustness (extension, not in the paper) |
//! | [`fig14`] | FCT vs background load (web search, leaf–spine) |
//! | [`fig15`] | FCT across workloads and fat-tree |
//! | [`fig16`] | Scheme-parameter sensitivity (extension, not in the paper) |
//! | [`fig17`] | Lossless-vs-lossy trade-off (extension, not in the paper) |
//! | [`theory`] | Theorems 1–2 validation |

#![forbid(unsafe_code)]

pub mod fabric;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig13x;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod theory;

use dsh_net::FidelityMode;
use dsh_simcore::trace::{self, TraceConfig, TraceMask};
use dsh_simcore::{exec, Executor, Json};
use dsh_transport::Regime;

/// Environment fallback for `--fidelity` (same spec grammar).
pub const FIDELITY_ENV: &str = "DSH_FIDELITY";

/// Command-line options shared by the figure binaries, collected in a
/// single pass over argv.
#[derive(Clone, Debug, PartialEq)]
pub struct Args {
    /// `--full`: run at paper scale instead of the laptop-scale default.
    pub full: bool,
    /// `--json`: also print structured telemetry as one JSON document.
    pub json: bool,
    /// `--smoke`: CI-sized single-point run with hard assertions instead
    /// of a sweep (exits non-zero on violation).
    pub smoke: bool,
    /// `--seed N` (default 1).
    pub seed: u64,
    /// `--threads N`, falling back to `DSH_THREADS`; 0 means "auto"
    /// (available parallelism). Resolve through [`Args::executor`].
    pub threads: usize,
    /// `--workers N`, falling back to `DSH_WORKERS`: intra-run partition
    /// workers for the conservative parallel engine. 1 (the default) runs
    /// the plain serial calendar; 0 means "auto" (available parallelism).
    /// Resolve through [`Args::sim_workers`].
    pub workers: usize,
    /// `--trace PATH`: record flight-recorder traces for every
    /// simulation of the run and write a Chrome `trace_event` JSON
    /// document to PATH (see [`with_trace`]).
    pub trace: Option<String>,
    /// `--fidelity SPEC`, falling back to `DSH_FIDELITY`: engine
    /// fidelity — `packet` (the default, byte-identical to the
    /// historical engine), `hybrid`, or
    /// `hybrid:<util_threshold>[:<quiesce_us>]`.
    pub fidelity: FidelityMode,
    /// `--regime gbn|sr`: loss-recovery regime for figures that exercise
    /// recovery (fig17). `None` = flag not given, figure defaults apply.
    pub regime: Option<Regime>,
    /// `--no-recovery`: run without loss recovery where the figure allows
    /// it (lossy cells always need recovery; combining with `--regime`
    /// is a usage error — the regime would silently have no effect).
    pub no_recovery: bool,
}

/// Usage text printed (to stderr) when argument parsing fails.
pub const USAGE: &str = "\
usage: <figure-binary> [OPTIONS]
  --full          run at paper scale instead of the laptop-scale default
  --json          also print structured telemetry as one JSON document
  --smoke         CI-sized single-point run with hard assertions
  --seed N        RNG seed (unsigned integer, default 1)
  --threads N     worker pool width (0 = auto; DSH_THREADS fallback)
  --workers N     intra-run partition workers (1 = serial engine, 0 = auto;
                  DSH_WORKERS fallback)
  --trace PATH    write a Chrome trace_event JSON document to PATH
  --fidelity SPEC engine fidelity: packet (default) | hybrid |
                  hybrid:<util_threshold>[:<quiesce_us>]; DSH_FIDELITY
                  fallback
  --regime R      loss-recovery regime where a figure exercises recovery:
                  gbn (go-back-N) | sr (selective repeat)
  --no-recovery   disable loss recovery where the figure allows it
                  (rejected together with --regime)";

impl Args {
    /// Parses the process argv, with `DSH_THREADS` as the `--threads`
    /// fallback. Invalid arguments print the error and [`USAGE`] to
    /// stderr and exit with status 2 — a typo'd flag or value must never
    /// silently run with defaults.
    #[must_use]
    pub fn parse() -> Args {
        let parsed = Args::from_iter(
            std::env::args().skip(1),
            exec::threads_from(std::env::var(exec::THREADS_ENV).ok().as_deref()),
            exec::workers_from(std::env::var(exec::WORKERS_ENV).ok().as_deref()),
            std::env::var(FIDELITY_ENV).ok().as_deref(),
        );
        match parsed {
            Ok(args) => args,
            Err(e) => {
                eprintln!("error: {e}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    /// Parses an explicit token stream (testable core of [`Args::parse`]).
    ///
    /// # Errors
    ///
    /// Fails fast on unknown tokens, missing operands (`--seed`,
    /// `--threads`, `--trace` all take one) and unparseable values —
    /// the old scanner silently kept defaults, so `--seed abc` ran with
    /// seed 1 and `--trace` as the last token produced no trace at all.
    fn from_iter<I: IntoIterator<Item = String>>(
        argv: I,
        env_threads: Option<usize>,
        env_workers: Option<usize>,
        env_fidelity: Option<&str>,
    ) -> Result<Args, String> {
        let fidelity = match env_fidelity {
            Some(spec) => FidelityMode::parse(spec)
                .map_err(|s| format!("invalid {FIDELITY_ENV} spec '{s}'"))?,
            None => FidelityMode::Packet,
        };
        let mut args = Args {
            full: false,
            json: false,
            smoke: false,
            seed: 1,
            threads: env_threads.unwrap_or(0),
            workers: env_workers.unwrap_or(1),
            trace: None,
            fidelity,
            regime: None,
            no_recovery: false,
        };
        let mut it = argv.into_iter();
        while let Some(tok) = it.next() {
            match tok.as_str() {
                "--full" => args.full = true,
                "--json" => args.json = true,
                "--smoke" => args.smoke = true,
                "--seed" => args.seed = parse_value(&tok, it.next())?,
                "--threads" => args.threads = parse_value(&tok, it.next())?,
                "--workers" => args.workers = parse_value(&tok, it.next())?,
                "--trace" => {
                    let path =
                        it.next().ok_or_else(|| "--trace requires a PATH operand".to_string())?;
                    if path.starts_with("--") {
                        return Err(format!("--trace requires a PATH operand, got flag '{path}'"));
                    }
                    args.trace = Some(path);
                }
                "--fidelity" => {
                    let spec = it
                        .next()
                        .ok_or_else(|| "--fidelity requires a SPEC operand".to_string())?;
                    args.fidelity = FidelityMode::parse(&spec)
                        .map_err(|s| format!("invalid value for --fidelity: '{s}'"))?;
                }
                "--regime" => {
                    let r = it.next().ok_or_else(|| "--regime requires a value".to_string())?;
                    args.regime = Some(match r.as_str() {
                        "gbn" => Regime::GoBackN,
                        "sr" => Regime::SelectiveRepeat,
                        _ => {
                            return Err(format!(
                                "invalid value for --regime: '{r}' (expected gbn or sr)"
                            ))
                        }
                    });
                }
                "--no-recovery" => args.no_recovery = true,
                other => return Err(format!("unknown argument '{other}'")),
            }
        }
        if args.no_recovery && args.regime.is_some() {
            return Err("--no-recovery disables loss recovery, so --regime would have no effect; \
                 drop one of the two"
                .to_string());
        }
        Ok(args)
    }

    /// The worker pool the sweeps should run on.
    #[must_use]
    pub fn executor(&self) -> Executor {
        Executor::new(self.threads)
    }

    /// The intra-run worker count for partitioned simulations, resolving
    /// 0 = auto to the machine's available parallelism.
    #[must_use]
    pub fn sim_workers(&self) -> usize {
        if self.workers == 0 {
            exec::default_threads()
        } else {
            self.workers
        }
    }
}

/// Parses the operand of a value-taking flag, failing on a missing or
/// unparseable operand.
fn parse_value<T: std::str::FromStr>(flag: &str, operand: Option<String>) -> Result<T, String> {
    let v = operand.ok_or_else(|| format!("{flag} requires a value"))?;
    v.parse().map_err(|_| format!("invalid value for {flag}: '{v}' (expected unsigned integer)"))
}

/// The provenance header embedded in every JSON artifact the harness
/// emits (Chrome traces, structured dumps, bench metrics): the run's
/// inputs, the parallelism actually in force (sweep threads *and*
/// intra-run partition workers, not just what the host could offer),
/// and the host's available parallelism for context, stamped with the
/// package version. Per-scheme artifacts add their own `scheme` field;
/// trace logs carry the scheme in their
/// [`dsh_simcore::trace::TraceKey`] tag instead.
#[must_use]
pub fn provenance(args: &Args) -> Json {
    let doc = Json::object()
        .with("seed", args.seed)
        .with("threads", args.executor().threads() as u64)
        .with("workers", args.sim_workers() as u64)
        .with("available_parallelism", exec::default_threads() as u64)
        .with("version", env!("CARGO_PKG_VERSION"));
    // Only stamped for hybrid runs so historical packet-mode artifacts
    // (and their content-hash goldens) stay byte-identical.
    if args.fidelity.is_hybrid() {
        doc.with("fidelity", args.fidelity.spec())
    } else {
        doc
    }
}

/// Runs `f` under a flight-recorder capture session when `--trace PATH`
/// was given, then writes the Chrome `trace_event` JSON document (see
/// [`dsh_simcore::trace::chrome_trace`]) to PATH. Without the flag `f`
/// runs directly — no session, no recording, zero overhead.
///
/// The category mask honours `DSH_TRACE_MASK` when set and defaults to
/// every category; the per-simulation ring capacity honours
/// `DSH_TRACE_CAP`.
pub fn with_trace<R>(args: &Args, f: impl FnOnce() -> R) -> R {
    let Some(path) = args.trace.as_deref() else { return f() };
    let env = TraceConfig::from_env();
    let mask = if env.mask.is_empty() { TraceMask::ALL } else { env.mask };
    let (result, logs) = trace::capture(mask, env.capacity, f);
    let records: usize = logs.iter().map(|l| l.records.len()).sum();
    let doc = trace::chrome_trace(&logs, provenance(args));
    if let Err(e) = std::fs::write(path, doc.to_string()) {
        eprintln!("[dsh] failed to write trace to {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("[dsh] wrote Chrome trace: {} simulations, {records} records -> {path}", logs.len());
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(tokens: &[&str]) -> Vec<String> {
        tokens.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_when_no_flags() {
        let a = Args::from_iter(argv(&[]), None, None, None).unwrap();
        assert_eq!(
            a,
            Args {
                full: false,
                json: false,
                smoke: false,
                seed: 1,
                threads: 0,
                workers: 1,
                trace: None,
                fidelity: FidelityMode::Packet,
                regime: None,
                no_recovery: false,
            }
        );
    }

    #[test]
    fn parses_all_flags_in_one_pass() {
        let a = Args::from_iter(
            argv(&[
                "--full",
                "--seed",
                "9",
                "--json",
                "--smoke",
                "--threads",
                "3",
                "--workers",
                "2",
                "--trace",
                "t.json",
                "--fidelity",
                "hybrid",
                "--regime",
                "sr",
            ]),
            None,
            None,
            None,
        )
        .unwrap();
        assert_eq!(
            a,
            Args {
                full: true,
                json: true,
                smoke: true,
                seed: 9,
                threads: 3,
                workers: 2,
                trace: Some("t.json".to_string()),
                fidelity: FidelityMode::hybrid_default(),
                regime: Some(Regime::SelectiveRepeat),
                no_recovery: false,
            }
        );
    }

    #[test]
    fn regime_values_parse_and_reject() {
        let a = Args::from_iter(argv(&["--regime", "gbn"]), None, None, None).unwrap();
        assert_eq!(a.regime, Some(Regime::GoBackN));
        let a = Args::from_iter(argv(&["--no-recovery"]), None, None, None).unwrap();
        assert!(a.no_recovery && a.regime.is_none());
        let e = Args::from_iter(argv(&["--regime", "tcp"]), None, None, None).unwrap_err();
        assert!(e.contains("invalid value for --regime: 'tcp'"), "{e}");
        let e = Args::from_iter(argv(&["--regime"]), None, None, None).unwrap_err();
        assert!(e.contains("--regime requires a value"), "{e}");
    }

    #[test]
    fn no_recovery_with_regime_is_a_usage_error() {
        let e = Args::from_iter(argv(&["--no-recovery", "--regime", "sr"]), None, None, None)
            .unwrap_err();
        assert!(e.contains("--no-recovery"), "{e}");
        assert!(e.contains("--regime"), "{e}");
    }

    #[test]
    fn threads_flag_overrides_env_fallback() {
        assert_eq!(Args::from_iter(argv(&[]), Some(2), None, None).unwrap().threads, 2);
        assert_eq!(
            Args::from_iter(argv(&["--threads", "5"]), Some(2), None, None).unwrap().threads,
            5
        );
    }

    #[test]
    fn workers_flag_overrides_env_fallback_and_defaults_serial() {
        assert_eq!(Args::from_iter(argv(&[]), None, None, None).unwrap().workers, 1);
        assert_eq!(Args::from_iter(argv(&[]), None, Some(4), None).unwrap().workers, 4);
        assert_eq!(
            Args::from_iter(argv(&["--workers", "3"]), None, Some(4), None).unwrap().workers,
            3
        );
        // 0 = auto resolves to at least one worker.
        let auto = Args::from_iter(argv(&["--workers", "0"]), None, None, None).unwrap();
        assert!(auto.sim_workers() >= 1);
        let serial = Args::from_iter(argv(&[]), None, None, None).unwrap();
        assert_eq!(serial.sim_workers(), 1);
    }

    #[test]
    fn fidelity_flag_overrides_env_fallback() {
        let a = Args::from_iter(argv(&[]), None, None, Some("hybrid")).unwrap();
        assert_eq!(a.fidelity, FidelityMode::hybrid_default());
        let a =
            Args::from_iter(argv(&["--fidelity", "packet"]), None, None, Some("hybrid")).unwrap();
        assert_eq!(a.fidelity, FidelityMode::Packet);
        let a = Args::from_iter(argv(&["--fidelity", "hybrid:0.5:250"]), None, None, None).unwrap();
        let FidelityMode::Hybrid { util_threshold, quiesce } = a.fidelity else {
            panic!("expected hybrid, got {:?}", a.fidelity);
        };
        assert!((util_threshold - 0.5).abs() < 1e-12);
        assert_eq!(quiesce, dsh_simcore::Delta::from_us(250));
    }

    #[test]
    fn malformed_fidelity_specs_are_rejected() {
        let e = Args::from_iter(argv(&["--fidelity", "fluid"]), None, None, None).unwrap_err();
        assert!(e.contains("invalid value for --fidelity: 'fluid'"), "{e}");
        let e = Args::from_iter(argv(&["--fidelity"]), None, None, None).unwrap_err();
        assert!(e.contains("--fidelity requires a SPEC"), "{e}");
        let e = Args::from_iter(argv(&[]), None, None, Some("bogus")).unwrap_err();
        assert!(e.contains("invalid DSH_FIDELITY spec 'bogus'"), "{e}");
    }

    #[test]
    fn provenance_stamps_fidelity_only_for_hybrid_runs() {
        let packet = Args::from_iter(argv(&[]), None, None, None).unwrap();
        assert!(!provenance(&packet).to_string().contains("fidelity"));
        let hybrid = Args::from_iter(argv(&["--fidelity", "hybrid"]), None, None, None).unwrap();
        assert!(provenance(&hybrid).to_string().contains("\"fidelity\":\"hybrid:1:100\""));
    }

    #[test]
    fn typod_flags_are_rejected() {
        let e = Args::from_iter(argv(&["--sed", "9"]), None, None, None).unwrap_err();
        assert!(e.contains("unknown argument '--sed'"), "{e}");
        let e = Args::from_iter(argv(&["--bogus"]), None, None, None).unwrap_err();
        assert!(e.contains("--bogus"), "{e}");
        // Bare operands are unknown tokens too.
        let e = Args::from_iter(argv(&["full"]), None, None, None).unwrap_err();
        assert!(e.contains("unknown argument 'full'"), "{e}");
    }

    #[test]
    fn malformed_values_are_rejected() {
        let e = Args::from_iter(argv(&["--seed", "abc"]), None, None, None).unwrap_err();
        assert!(e.contains("invalid value for --seed: 'abc'"), "{e}");
        let e = Args::from_iter(argv(&["--threads", "-1"]), None, None, None).unwrap_err();
        assert!(e.contains("invalid value for --threads"), "{e}");
    }

    #[test]
    fn missing_operands_are_rejected() {
        let e = Args::from_iter(argv(&["--seed"]), None, None, None).unwrap_err();
        assert!(e.contains("--seed requires a value"), "{e}");
        let e = Args::from_iter(argv(&["--threads"]), None, None, None).unwrap_err();
        assert!(e.contains("--threads requires a value"), "{e}");
        // The original bug: `--trace` as the last token silently produced
        // an untraced run.
        let e = Args::from_iter(argv(&["--trace"]), None, None, None).unwrap_err();
        assert!(e.contains("--trace requires a PATH"), "{e}");
        // A following flag is not a PATH either.
        let e = Args::from_iter(argv(&["--trace", "--json"]), None, None, None).unwrap_err();
        assert!(e.contains("--trace requires a PATH"), "{e}");
    }

    #[test]
    fn usage_names_every_flag() {
        for flag in [
            "--full",
            "--json",
            "--smoke",
            "--seed",
            "--threads",
            "--workers",
            "--trace",
            "--fidelity",
            "--regime",
            "--no-recovery",
        ] {
            assert!(USAGE.contains(flag), "usage must list {flag}");
        }
    }
}
