//! Experiment harness reproducing every figure of *"Less is More"*
//! (ICDCS 2023).
//!
//! Each module builds the exact scenario of one paper figure and returns
//! the measured series; the binaries in `src/bin/` print them as tables,
//! and the Criterion benches in `benches/` time scaled-down variants.
//!
//! | module | paper figure |
//! |--------|--------------|
//! | [`fig04`] | Buffer/headroom trend across Broadcom chips |
//! | [`fig05`] | FCT vs buffer size |
//! | [`fig06`] | Headroom utilization CDF |
//! | [`fig11`] | PFC avoidance (pause duration vs burst size) |
//! | [`fig12`] | Deadlock onset CDF |
//! | [`fig13`] | Collateral damage (victim throughput) |
//! | [`fig13x`] | Link-flap robustness (extension, not in the paper) |
//! | [`fig14`] | FCT vs background load (web search, leaf–spine) |
//! | [`fig15`] | FCT across workloads and fat-tree |
//! | [`theory`] | Theorems 1–2 validation |

#![forbid(unsafe_code)]

pub mod fabric;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig13x;
pub mod fig14;
pub mod fig15;
pub mod theory;

use dsh_simcore::trace::{self, TraceConfig, TraceMask};
use dsh_simcore::{exec, Executor, Json};

/// Command-line options shared by the figure binaries, collected in a
/// single pass over argv.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Args {
    /// `--full`: run at paper scale instead of the laptop-scale default.
    pub full: bool,
    /// `--json`: also print structured telemetry as one JSON document.
    pub json: bool,
    /// `--smoke`: CI-sized single-point run with hard assertions instead
    /// of a sweep (exits non-zero on violation).
    pub smoke: bool,
    /// `--seed N` (default 1).
    pub seed: u64,
    /// `--threads N`, falling back to `DSH_THREADS`; 0 means "auto"
    /// (available parallelism). Resolve through [`Args::executor`].
    pub threads: usize,
    /// `--trace PATH`: record flight-recorder traces for every
    /// simulation of the run and write a Chrome `trace_event` JSON
    /// document to PATH (see [`with_trace`]).
    pub trace: Option<String>,
}

impl Args {
    /// Parses the process argv, with `DSH_THREADS` as the `--threads`
    /// fallback.
    #[must_use]
    pub fn parse() -> Args {
        Args::from_iter(
            std::env::args().skip(1),
            exec::threads_from(std::env::var(exec::THREADS_ENV).ok().as_deref()),
        )
    }

    /// Parses an explicit token stream (testable core of [`Args::parse`]).
    /// Unknown tokens are ignored, matching the old per-flag scanners.
    fn from_iter<I: IntoIterator<Item = String>>(argv: I, env_threads: Option<usize>) -> Args {
        let mut args = Args {
            full: false,
            json: false,
            smoke: false,
            seed: 1,
            threads: env_threads.unwrap_or(0),
            trace: None,
        };
        let mut it = argv.into_iter();
        while let Some(tok) = it.next() {
            match tok.as_str() {
                "--full" => args.full = true,
                "--json" => args.json = true,
                "--smoke" => args.smoke = true,
                "--seed" => {
                    if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                        args.seed = v;
                    }
                }
                "--threads" => {
                    if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                        args.threads = v;
                    }
                }
                "--trace" => args.trace = it.next(),
                _ => {}
            }
        }
        args
    }

    /// The worker pool the sweeps should run on.
    #[must_use]
    pub fn executor(&self) -> Executor {
        Executor::new(self.threads)
    }
}

/// The provenance header embedded in every JSON artifact the harness
/// emits (Chrome traces, structured dumps, bench metrics): the run's
/// inputs plus the executor width, stamped with the package version.
/// Per-scheme artifacts add their own `scheme` field; trace logs carry
/// the scheme in their [`dsh_simcore::trace::TraceKey`] tag instead.
#[must_use]
pub fn provenance(args: &Args) -> Json {
    Json::object()
        .with("seed", args.seed)
        .with("threads", args.executor().threads())
        .with("version", env!("CARGO_PKG_VERSION"))
}

/// Runs `f` under a flight-recorder capture session when `--trace PATH`
/// was given, then writes the Chrome `trace_event` JSON document (see
/// [`dsh_simcore::trace::chrome_trace`]) to PATH. Without the flag `f`
/// runs directly — no session, no recording, zero overhead.
///
/// The category mask honours `DSH_TRACE_MASK` when set and defaults to
/// every category; the per-simulation ring capacity honours
/// `DSH_TRACE_CAP`.
pub fn with_trace<R>(args: &Args, f: impl FnOnce() -> R) -> R {
    let Some(path) = args.trace.as_deref() else { return f() };
    let env = TraceConfig::from_env();
    let mask = if env.mask.is_empty() { TraceMask::ALL } else { env.mask };
    let (result, logs) = trace::capture(mask, env.capacity, f);
    let records: usize = logs.iter().map(|l| l.records.len()).sum();
    let doc = trace::chrome_trace(&logs, provenance(args));
    if let Err(e) = std::fs::write(path, doc.to_string()) {
        eprintln!("[dsh] failed to write trace to {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("[dsh] wrote Chrome trace: {} simulations, {records} records -> {path}", logs.len());
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(tokens: &[&str]) -> Vec<String> {
        tokens.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_when_no_flags() {
        let a = Args::from_iter(argv(&[]), None);
        assert_eq!(
            a,
            Args { full: false, json: false, smoke: false, seed: 1, threads: 0, trace: None }
        );
    }

    #[test]
    fn parses_all_flags_in_one_pass() {
        let a = Args::from_iter(
            argv(&[
                "--full",
                "--seed",
                "9",
                "--json",
                "--smoke",
                "--threads",
                "3",
                "--trace",
                "t.json",
            ]),
            None,
        );
        assert_eq!(
            a,
            Args {
                full: true,
                json: true,
                smoke: true,
                seed: 9,
                threads: 3,
                trace: Some("t.json".to_string()),
            }
        );
    }

    #[test]
    fn threads_flag_overrides_env_fallback() {
        assert_eq!(Args::from_iter(argv(&[]), Some(2)).threads, 2);
        assert_eq!(Args::from_iter(argv(&["--threads", "5"]), Some(2)).threads, 5);
    }

    #[test]
    fn malformed_values_keep_defaults() {
        let a = Args::from_iter(argv(&["--seed", "x", "--threads"]), None);
        assert_eq!((a.seed, a.threads), (1, 0));
    }
}
