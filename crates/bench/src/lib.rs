//! Experiment harness reproducing every figure of *"Less is More"*
//! (ICDCS 2023).
//!
//! Each module builds the exact scenario of one paper figure and returns
//! the measured series; the binaries in `src/bin/` print them as tables,
//! and the Criterion benches in `benches/` time scaled-down variants.
//!
//! | module | paper figure |
//! |--------|--------------|
//! | [`fig04`] | Buffer/headroom trend across Broadcom chips |
//! | [`fig05`] | FCT vs buffer size |
//! | [`fig06`] | Headroom utilization CDF |
//! | [`fig11`] | PFC avoidance (pause duration vs burst size) |
//! | [`fig12`] | Deadlock onset CDF |
//! | [`fig13`] | Collateral damage (victim throughput) |
//! | [`fig13x`] | Link-flap robustness (extension, not in the paper) |
//! | [`fig14`] | FCT vs background load (web search, leaf–spine) |
//! | [`fig15`] | FCT across workloads and fat-tree |
//! | [`fig16`] | Scheme-parameter sensitivity (extension, not in the paper) |
//! | [`fig17`] | Lossless-vs-lossy trade-off (extension, not in the paper) |
//! | [`fig18`] | Cascade anatomy: PFC pause propagation under incast (extension, not in the paper) |
//! | [`theory`] | Theorems 1–2 validation |

#![forbid(unsafe_code)]

pub mod fabric;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig13x;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod theory;

use dsh_net::{FidelityMode, Network, ObserveConfig};
use dsh_simcore::trace::{self, TraceConfig, TraceMask};
use dsh_simcore::{exec, Delta, Executor, Json};
use dsh_transport::Regime;

/// Environment fallback for `--fidelity` (same spec grammar).
pub const FIDELITY_ENV: &str = "DSH_FIDELITY";

/// Environment fallback for `--metrics` (an output PATH).
pub const METRICS_ENV: &str = "DSH_METRICS";

/// Export format for the `--metrics` sampler dump (see [`write_metrics`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricsFormat {
    /// The versioned `metrics.json` document
    /// ([`dsh_net::Network::metrics_json`]).
    Json,
    /// Prometheus text exposition
    /// ([`dsh_net::Network::metrics_prometheus`]).
    Prom,
}

/// Command-line options shared by the figure binaries, collected in a
/// single pass over argv.
#[derive(Clone, Debug, PartialEq)]
pub struct Args {
    /// `--full`: run at paper scale instead of the laptop-scale default.
    pub full: bool,
    /// `--json`: also print structured telemetry as one JSON document.
    pub json: bool,
    /// `--smoke`: CI-sized single-point run with hard assertions instead
    /// of a sweep (exits non-zero on violation).
    pub smoke: bool,
    /// `--seed N` (default 1).
    pub seed: u64,
    /// `--threads N`, falling back to `DSH_THREADS`; 0 means "auto"
    /// (available parallelism). Resolve through [`Args::executor`].
    pub threads: usize,
    /// `--workers N`, falling back to `DSH_WORKERS`: intra-run partition
    /// workers for the conservative parallel engine. 1 (the default) runs
    /// the plain serial calendar; 0 means "auto" (available parallelism).
    /// Resolve through [`Args::sim_workers`].
    pub workers: usize,
    /// `--trace PATH`: record flight-recorder traces for every
    /// simulation of the run and write a Chrome `trace_event` JSON
    /// document to PATH (see [`with_trace`]).
    pub trace: Option<String>,
    /// `--fidelity SPEC`, falling back to `DSH_FIDELITY`: engine
    /// fidelity — `packet` (the default, byte-identical to the
    /// historical engine), `hybrid`, or
    /// `hybrid:<util_threshold>[:<quiesce_us>]`.
    pub fidelity: FidelityMode,
    /// `--regime gbn|sr`: loss-recovery regime for figures that exercise
    /// recovery (fig17). `None` = flag not given, figure defaults apply.
    pub regime: Option<Regime>,
    /// `--no-recovery`: run without loss recovery where the figure allows
    /// it (lossy cells always need recovery; combining with `--regime`
    /// is a usage error — the regime would silently have no effect).
    pub no_recovery: bool,
    /// `--metrics PATH`, falling back to `DSH_METRICS`: arm the
    /// pause-causality tracker and metrics sampler for the figure's
    /// representative run and write the export to PATH (see
    /// [`write_metrics`]). `None` (the default) keeps the observability
    /// hooks masked off entirely.
    pub metrics: Option<String>,
    /// `--metrics-interval NS`: sampling interval in nanoseconds
    /// (default 10 000 ns = 10 µs). Only meaningful together with
    /// `--metrics`; rejected without it.
    pub metrics_interval: Delta,
    /// `--metrics-format json|prom` (default `json`). Only meaningful
    /// together with `--metrics`; rejected without it.
    pub metrics_format: MetricsFormat,
}

/// Usage text printed (to stderr) when argument parsing fails.
pub const USAGE: &str = "\
usage: <figure-binary> [OPTIONS]
  --full          run at paper scale instead of the laptop-scale default
  --json          also print structured telemetry as one JSON document
  --smoke         CI-sized single-point run with hard assertions
  --seed N        RNG seed (unsigned integer, default 1)
  --threads N     worker pool width (0 = auto; DSH_THREADS fallback)
  --workers N     intra-run partition workers (1 = serial engine, 0 = auto;
                  DSH_WORKERS fallback)
  --trace PATH    write a Chrome trace_event JSON document to PATH
  --fidelity SPEC engine fidelity: packet (default) | hybrid |
                  hybrid:<util_threshold>[:<quiesce_us>]; DSH_FIDELITY
                  fallback
  --regime R      loss-recovery regime where a figure exercises recovery:
                  gbn (go-back-N) | sr (selective repeat)
  --no-recovery   disable loss recovery where the figure allows it
                  (rejected together with --regime)
  --metrics PATH  arm the pause-causality/metrics sampler for the
                  figure's representative run and write the export to
                  PATH (DSH_METRICS fallback)
  --metrics-interval NS
                  sampling interval in nanoseconds (default 10000;
                  must be positive; requires --metrics)
  --metrics-format F
                  metrics export format: json (default, versioned
                  metrics.json) | prom (Prometheus text); requires
                  --metrics";

impl Args {
    /// Parses the process argv, with `DSH_THREADS` as the `--threads`
    /// fallback. Invalid arguments print the error and [`USAGE`] to
    /// stderr and exit with status 2 — a typo'd flag or value must never
    /// silently run with defaults.
    #[must_use]
    pub fn parse() -> Args {
        let parsed = Args::from_iter(
            std::env::args().skip(1),
            exec::threads_from(std::env::var(exec::THREADS_ENV).ok().as_deref()),
            exec::workers_from(std::env::var(exec::WORKERS_ENV).ok().as_deref()),
            std::env::var(FIDELITY_ENV).ok().as_deref(),
            std::env::var(METRICS_ENV).ok().as_deref(),
        );
        match parsed {
            Ok(args) => args,
            Err(e) => {
                eprintln!("error: {e}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    /// Parses an explicit token stream (testable core of [`Args::parse`]).
    ///
    /// # Errors
    ///
    /// Fails fast on unknown tokens, missing operands (`--seed`,
    /// `--threads`, `--trace` all take one) and unparseable values —
    /// the old scanner silently kept defaults, so `--seed abc` ran with
    /// seed 1 and `--trace` as the last token produced no trace at all.
    fn from_iter<I: IntoIterator<Item = String>>(
        argv: I,
        env_threads: Option<usize>,
        env_workers: Option<usize>,
        env_fidelity: Option<&str>,
        env_metrics: Option<&str>,
    ) -> Result<Args, String> {
        let fidelity = match env_fidelity {
            Some(spec) => FidelityMode::parse(spec)
                .map_err(|s| format!("invalid {FIDELITY_ENV} spec '{s}'"))?,
            None => FidelityMode::Packet,
        };
        let mut args = Args {
            full: false,
            json: false,
            smoke: false,
            seed: 1,
            threads: env_threads.unwrap_or(0),
            workers: env_workers.unwrap_or(1),
            trace: None,
            fidelity,
            regime: None,
            no_recovery: false,
            metrics: env_metrics.map(str::to_string),
            metrics_interval: Delta::from_ns(10_000),
            metrics_format: MetricsFormat::Json,
        };
        // `--metrics-interval`/`--metrics-format` without an export
        // destination would silently configure nothing; track whether
        // they were given so the cross-check below can reject that.
        let (mut interval_given, mut format_given) = (false, false);
        let mut it = argv.into_iter();
        while let Some(tok) = it.next() {
            match tok.as_str() {
                "--full" => args.full = true,
                "--json" => args.json = true,
                "--smoke" => args.smoke = true,
                "--seed" => args.seed = parse_value(&tok, it.next())?,
                "--threads" => args.threads = parse_value(&tok, it.next())?,
                "--workers" => args.workers = parse_value(&tok, it.next())?,
                "--trace" => {
                    let path =
                        it.next().ok_or_else(|| "--trace requires a PATH operand".to_string())?;
                    if path.starts_with("--") {
                        return Err(format!("--trace requires a PATH operand, got flag '{path}'"));
                    }
                    args.trace = Some(path);
                }
                "--fidelity" => {
                    let spec = it
                        .next()
                        .ok_or_else(|| "--fidelity requires a SPEC operand".to_string())?;
                    args.fidelity = FidelityMode::parse(&spec)
                        .map_err(|s| format!("invalid value for --fidelity: '{s}'"))?;
                }
                "--regime" => {
                    let r = it.next().ok_or_else(|| "--regime requires a value".to_string())?;
                    args.regime = Some(match r.as_str() {
                        "gbn" => Regime::GoBackN,
                        "sr" => Regime::SelectiveRepeat,
                        _ => {
                            return Err(format!(
                                "invalid value for --regime: '{r}' (expected gbn or sr)"
                            ))
                        }
                    });
                }
                "--no-recovery" => args.no_recovery = true,
                "--metrics" => {
                    let path =
                        it.next().ok_or_else(|| "--metrics requires a PATH operand".to_string())?;
                    if path.starts_with("--") {
                        return Err(format!(
                            "--metrics requires a PATH operand, got flag '{path}'"
                        ));
                    }
                    args.metrics = Some(path);
                }
                "--metrics-interval" => {
                    let ns: u64 = parse_value(&tok, it.next())?;
                    if ns == 0 {
                        return Err(
                            "invalid value for --metrics-interval: '0' (the sampling interval \
                             must be positive)"
                                .to_string(),
                        );
                    }
                    args.metrics_interval = Delta::from_ns(ns);
                    interval_given = true;
                }
                "--metrics-format" => {
                    let f =
                        it.next().ok_or_else(|| "--metrics-format requires a value".to_string())?;
                    args.metrics_format = match f.as_str() {
                        "json" => MetricsFormat::Json,
                        "prom" => MetricsFormat::Prom,
                        _ => {
                            return Err(format!(
                                "invalid value for --metrics-format: '{f}' (expected json or prom)"
                            ))
                        }
                    };
                    format_given = true;
                }
                other => return Err(format!("unknown argument '{other}'")),
            }
        }
        if args.metrics.is_none() && (interval_given || format_given) {
            return Err("--metrics-interval/--metrics-format configure the --metrics export; \
                 pass --metrics PATH (or set DSH_METRICS)"
                .to_string());
        }
        if args.no_recovery && args.regime.is_some() {
            return Err("--no-recovery disables loss recovery, so --regime would have no effect; \
                 drop one of the two"
                .to_string());
        }
        Ok(args)
    }

    /// The worker pool the sweeps should run on.
    #[must_use]
    pub fn executor(&self) -> Executor {
        Executor::new(self.threads)
    }

    /// The intra-run worker count for partitioned simulations, resolving
    /// 0 = auto to the machine's available parallelism.
    #[must_use]
    pub fn sim_workers(&self) -> usize {
        if self.workers == 0 {
            exec::default_threads()
        } else {
            self.workers
        }
    }
}

/// Parses the operand of a value-taking flag, failing on a missing or
/// unparseable operand.
fn parse_value<T: std::str::FromStr>(flag: &str, operand: Option<String>) -> Result<T, String> {
    let v = operand.ok_or_else(|| format!("{flag} requires a value"))?;
    v.parse().map_err(|_| format!("invalid value for {flag}: '{v}' (expected unsigned integer)"))
}

/// The provenance header embedded in every JSON artifact the harness
/// emits (Chrome traces, structured dumps, bench metrics): the run's
/// inputs, the parallelism actually in force (sweep threads *and*
/// intra-run partition workers, not just what the host could offer),
/// and the host's available parallelism for context, stamped with the
/// package version. Per-scheme artifacts add their own `scheme` field;
/// trace logs carry the scheme in their
/// [`dsh_simcore::trace::TraceKey`] tag instead.
#[must_use]
pub fn provenance(args: &Args) -> Json {
    let doc = Json::object()
        .with("seed", args.seed)
        .with("threads", args.executor().threads() as u64)
        .with("workers", args.sim_workers() as u64)
        .with("available_parallelism", exec::default_threads() as u64)
        .with("version", env!("CARGO_PKG_VERSION"));
    // Only stamped for hybrid runs so historical packet-mode artifacts
    // (and their content-hash goldens) stay byte-identical.
    if args.fidelity.is_hybrid() {
        doc.with("fidelity", args.fidelity.spec())
    } else {
        doc
    }
}

/// Runs `f` under a flight-recorder capture session when `--trace PATH`
/// was given, then writes the Chrome `trace_event` JSON document (see
/// [`dsh_simcore::trace::chrome_trace`]) to PATH. Without the flag `f`
/// runs directly — no session, no recording, zero overhead.
///
/// The category mask honours `DSH_TRACE_MASK` when set and defaults to
/// every category; the per-simulation ring capacity honours
/// `DSH_TRACE_CAP`.
pub fn with_trace<R>(args: &Args, f: impl FnOnce() -> R) -> R {
    let Some(path) = args.trace.as_deref() else { return f() };
    let env = TraceConfig::from_env();
    let mask = if env.mask.is_empty() { TraceMask::ALL } else { env.mask };
    let (result, logs) = trace::capture(mask, env.capacity, f);
    let records: usize = logs.iter().map(|l| l.records.len()).sum();
    let doc = trace::chrome_trace(&logs, provenance(args));
    if let Err(e) = std::fs::write(path, doc.to_string()) {
        eprintln!("[dsh] failed to write trace to {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("[dsh] wrote Chrome trace: {} simulations, {records} records -> {path}", logs.len());
    result
}

/// The observability configuration a figure's representative run should
/// arm: `Some` exactly when `--metrics`/`DSH_METRICS` asked for an
/// export. Every other run keeps the hooks masked off (`params.observe`
/// stays `None`, one `Option` branch on the pause paths, nothing on the
/// packet path).
#[must_use]
pub fn observe_config(args: &Args) -> Option<ObserveConfig> {
    args.metrics.as_ref().map(|_| ObserveConfig::default().with_interval(args.metrics_interval))
}

/// Writes the `--metrics` export for a finished run whose network was
/// armed with [`observe_config`]. A no-op without `--metrics`. The JSON
/// document embeds the network's run-intrinsic provenance (seed, scheme,
/// version — deliberately not thread/worker counts, so the export stays
/// byte-identical at any parallelism).
///
/// Exits non-zero when the run was not armed (a figure wiring bug — the
/// flag must never silently produce nothing) or the file cannot be
/// written.
pub fn write_metrics(args: &Args, net: &Network) {
    let Some(path) = args.metrics.as_deref() else { return };
    let rendered = match args.metrics_format {
        MetricsFormat::Json => net.metrics_json().map(|doc| doc.to_string()),
        MetricsFormat::Prom => net.metrics_prometheus(),
    };
    let Some(rendered) = rendered else {
        eprintln!("[dsh] --metrics run finished without the sampler armed (figure wiring bug)");
        std::process::exit(1);
    };
    if let Err(e) = std::fs::write(path, &rendered) {
        eprintln!("[dsh] failed to write metrics to {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("[dsh] wrote metrics export ({} bytes) -> {path}", rendered.len());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(tokens: &[&str]) -> Vec<String> {
        tokens.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_when_no_flags() {
        let a = Args::from_iter(argv(&[]), None, None, None, None).unwrap();
        assert_eq!(
            a,
            Args {
                full: false,
                json: false,
                smoke: false,
                seed: 1,
                threads: 0,
                workers: 1,
                trace: None,
                fidelity: FidelityMode::Packet,
                regime: None,
                no_recovery: false,
                metrics: None,
                metrics_interval: Delta::from_ns(10_000),
                metrics_format: MetricsFormat::Json,
            }
        );
    }

    #[test]
    fn parses_all_flags_in_one_pass() {
        let a = Args::from_iter(
            argv(&[
                "--full",
                "--seed",
                "9",
                "--json",
                "--smoke",
                "--threads",
                "3",
                "--workers",
                "2",
                "--trace",
                "t.json",
                "--fidelity",
                "hybrid",
                "--regime",
                "sr",
                "--metrics",
                "m.json",
                "--metrics-interval",
                "2500",
                "--metrics-format",
                "prom",
            ]),
            None,
            None,
            None,
            None,
        )
        .unwrap();
        assert_eq!(
            a,
            Args {
                full: true,
                json: true,
                smoke: true,
                seed: 9,
                threads: 3,
                workers: 2,
                trace: Some("t.json".to_string()),
                fidelity: FidelityMode::hybrid_default(),
                regime: Some(Regime::SelectiveRepeat),
                no_recovery: false,
                metrics: Some("m.json".to_string()),
                metrics_interval: Delta::from_ns(2_500),
                metrics_format: MetricsFormat::Prom,
            }
        );
    }

    #[test]
    fn regime_values_parse_and_reject() {
        let a = Args::from_iter(argv(&["--regime", "gbn"]), None, None, None, None).unwrap();
        assert_eq!(a.regime, Some(Regime::GoBackN));
        let a = Args::from_iter(argv(&["--no-recovery"]), None, None, None, None).unwrap();
        assert!(a.no_recovery && a.regime.is_none());
        let e = Args::from_iter(argv(&["--regime", "tcp"]), None, None, None, None).unwrap_err();
        assert!(e.contains("invalid value for --regime: 'tcp'"), "{e}");
        let e = Args::from_iter(argv(&["--regime"]), None, None, None, None).unwrap_err();
        assert!(e.contains("--regime requires a value"), "{e}");
    }

    #[test]
    fn no_recovery_with_regime_is_a_usage_error() {
        let e = Args::from_iter(argv(&["--no-recovery", "--regime", "sr"]), None, None, None, None)
            .unwrap_err();
        assert!(e.contains("--no-recovery"), "{e}");
        assert!(e.contains("--regime"), "{e}");
    }

    #[test]
    fn threads_flag_overrides_env_fallback() {
        assert_eq!(Args::from_iter(argv(&[]), Some(2), None, None, None).unwrap().threads, 2);
        assert_eq!(
            Args::from_iter(argv(&["--threads", "5"]), Some(2), None, None, None).unwrap().threads,
            5
        );
    }

    #[test]
    fn workers_flag_overrides_env_fallback_and_defaults_serial() {
        assert_eq!(Args::from_iter(argv(&[]), None, None, None, None).unwrap().workers, 1);
        assert_eq!(Args::from_iter(argv(&[]), None, Some(4), None, None).unwrap().workers, 4);
        assert_eq!(
            Args::from_iter(argv(&["--workers", "3"]), None, Some(4), None, None).unwrap().workers,
            3
        );
        // 0 = auto resolves to at least one worker.
        let auto = Args::from_iter(argv(&["--workers", "0"]), None, None, None, None).unwrap();
        assert!(auto.sim_workers() >= 1);
        let serial = Args::from_iter(argv(&[]), None, None, None, None).unwrap();
        assert_eq!(serial.sim_workers(), 1);
    }

    #[test]
    fn fidelity_flag_overrides_env_fallback() {
        let a = Args::from_iter(argv(&[]), None, None, Some("hybrid"), None).unwrap();
        assert_eq!(a.fidelity, FidelityMode::hybrid_default());
        let a = Args::from_iter(argv(&["--fidelity", "packet"]), None, None, Some("hybrid"), None)
            .unwrap();
        assert_eq!(a.fidelity, FidelityMode::Packet);
        let a = Args::from_iter(argv(&["--fidelity", "hybrid:0.5:250"]), None, None, None, None)
            .unwrap();
        let FidelityMode::Hybrid { util_threshold, quiesce } = a.fidelity else {
            panic!("expected hybrid, got {:?}", a.fidelity);
        };
        assert!((util_threshold - 0.5).abs() < 1e-12);
        assert_eq!(quiesce, dsh_simcore::Delta::from_us(250));
    }

    #[test]
    fn malformed_fidelity_specs_are_rejected() {
        let e =
            Args::from_iter(argv(&["--fidelity", "fluid"]), None, None, None, None).unwrap_err();
        assert!(e.contains("invalid value for --fidelity: 'fluid'"), "{e}");
        let e = Args::from_iter(argv(&["--fidelity"]), None, None, None, None).unwrap_err();
        assert!(e.contains("--fidelity requires a SPEC"), "{e}");
        let e = Args::from_iter(argv(&[]), None, None, Some("bogus"), None).unwrap_err();
        assert!(e.contains("invalid DSH_FIDELITY spec 'bogus'"), "{e}");
    }

    #[test]
    fn provenance_stamps_fidelity_only_for_hybrid_runs() {
        let packet = Args::from_iter(argv(&[]), None, None, None, None).unwrap();
        assert!(!provenance(&packet).to_string().contains("fidelity"));
        let hybrid =
            Args::from_iter(argv(&["--fidelity", "hybrid"]), None, None, None, None).unwrap();
        assert!(provenance(&hybrid).to_string().contains("\"fidelity\":\"hybrid:1:100\""));
    }

    #[test]
    fn typod_flags_are_rejected() {
        let e = Args::from_iter(argv(&["--sed", "9"]), None, None, None, None).unwrap_err();
        assert!(e.contains("unknown argument '--sed'"), "{e}");
        let e = Args::from_iter(argv(&["--bogus"]), None, None, None, None).unwrap_err();
        assert!(e.contains("--bogus"), "{e}");
        // Bare operands are unknown tokens too.
        let e = Args::from_iter(argv(&["full"]), None, None, None, None).unwrap_err();
        assert!(e.contains("unknown argument 'full'"), "{e}");
    }

    #[test]
    fn malformed_values_are_rejected() {
        let e = Args::from_iter(argv(&["--seed", "abc"]), None, None, None, None).unwrap_err();
        assert!(e.contains("invalid value for --seed: 'abc'"), "{e}");
        let e = Args::from_iter(argv(&["--threads", "-1"]), None, None, None, None).unwrap_err();
        assert!(e.contains("invalid value for --threads"), "{e}");
    }

    #[test]
    fn missing_operands_are_rejected() {
        let e = Args::from_iter(argv(&["--seed"]), None, None, None, None).unwrap_err();
        assert!(e.contains("--seed requires a value"), "{e}");
        let e = Args::from_iter(argv(&["--threads"]), None, None, None, None).unwrap_err();
        assert!(e.contains("--threads requires a value"), "{e}");
        // The original bug: `--trace` as the last token silently produced
        // an untraced run.
        let e = Args::from_iter(argv(&["--trace"]), None, None, None, None).unwrap_err();
        assert!(e.contains("--trace requires a PATH"), "{e}");
        // A following flag is not a PATH either.
        let e = Args::from_iter(argv(&["--trace", "--json"]), None, None, None, None).unwrap_err();
        assert!(e.contains("--trace requires a PATH"), "{e}");
    }

    #[test]
    fn usage_names_every_flag() {
        for flag in [
            "--full",
            "--json",
            "--smoke",
            "--seed",
            "--threads",
            "--workers",
            "--trace",
            "--fidelity",
            "--regime",
            "--no-recovery",
            "--metrics",
            "--metrics-interval",
            "--metrics-format",
        ] {
            assert!(USAGE.contains(flag), "usage must list {flag}");
        }
    }

    #[test]
    fn metrics_env_fallback_and_flag_override() {
        let a = Args::from_iter(argv(&[]), None, None, None, Some("env.json")).unwrap();
        assert_eq!(a.metrics.as_deref(), Some("env.json"));
        let a = Args::from_iter(argv(&["--metrics", "cli.json"]), None, None, None, Some("env"))
            .unwrap();
        assert_eq!(a.metrics.as_deref(), Some("cli.json"));
        // The env fallback also legitimizes the companion flags.
        let a = Args::from_iter(
            argv(&["--metrics-interval", "500", "--metrics-format", "prom"]),
            None,
            None,
            None,
            Some("env.json"),
        )
        .unwrap();
        assert_eq!(a.metrics_interval, Delta::from_ns(500));
        assert_eq!(a.metrics_format, MetricsFormat::Prom);
    }

    #[test]
    fn metrics_operand_errors_fail_fast() {
        // `--metrics` as the last token must not silently skip the export.
        let e = Args::from_iter(argv(&["--metrics"]), None, None, None, None).unwrap_err();
        assert!(e.contains("--metrics requires a PATH"), "{e}");
        let e =
            Args::from_iter(argv(&["--metrics", "--json"]), None, None, None, None).unwrap_err();
        assert!(e.contains("--metrics requires a PATH"), "{e}");
        let e = Args::from_iter(
            argv(&["--metrics", "m.json", "--metrics-interval", "abc"]),
            None,
            None,
            None,
            None,
        )
        .unwrap_err();
        assert!(e.contains("invalid value for --metrics-interval: 'abc'"), "{e}");
        let e = Args::from_iter(
            argv(&["--metrics", "m.json", "--metrics-interval", "0"]),
            None,
            None,
            None,
            None,
        )
        .unwrap_err();
        assert!(e.contains("must be positive"), "{e}");
        let e = Args::from_iter(
            argv(&["--metrics", "m.json", "--metrics-format", "csv"]),
            None,
            None,
            None,
            None,
        )
        .unwrap_err();
        assert!(e.contains("invalid value for --metrics-format: 'csv'"), "{e}");
    }

    #[test]
    fn metrics_companions_without_destination_are_rejected() {
        for toks in [&["--metrics-interval", "500"][..], &["--metrics-format", "prom"][..]] {
            let e = Args::from_iter(argv(toks), None, None, None, None).unwrap_err();
            assert!(e.contains("pass --metrics PATH"), "{e}");
        }
    }

    #[test]
    fn observe_config_is_armed_only_with_metrics() {
        let off = Args::from_iter(argv(&[]), None, None, None, None).unwrap();
        assert!(observe_config(&off).is_none());
        let on = Args::from_iter(
            argv(&["--metrics", "m.json", "--metrics-interval", "500"]),
            None,
            None,
            None,
            None,
        )
        .unwrap();
        let cfg = observe_config(&on).expect("--metrics arms the sampler");
        assert_eq!(cfg.metrics_interval, Delta::from_ns(500));
    }
}
