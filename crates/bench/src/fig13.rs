//! Fig. 13: collateral damage — throughput of the innocent flow F0 over
//! time while a 24:1 fan-in hammers R1, for w/o CC, DCQCN and PowerTCP.

use dsh_core::Scheme;
use dsh_net::{FlowSpec, NetParams, NetworkBuilder, ThroughputSample};
use dsh_simcore::{Bandwidth, Delta, Executor, Time};
use dsh_transport::CcKind;

/// Runs the Fig. 13a scenario and returns F0's goodput time series.
#[must_use]
pub fn victim_series(scheme: Scheme, cc: CcKind) -> Vec<ThroughputSample> {
    let mut params = NetParams::tomahawk(scheme);
    if cc == CcKind::Uncontrolled {
        params = params.without_ecn();
    }
    let mut b = NetworkBuilder::new(params);
    let bw = Bandwidth::from_gbps(100);
    let d = Delta::from_us(2);
    let (s0, s1) = (b.switch(), b.switch());
    b.link(s0, s1, bw, d);
    let (h0, h1) = (b.host(), b.host());
    b.link(h0, s0, bw, d);
    b.link(h1, s0, bw, d);
    let (r0, r1) = (b.host(), b.host());
    b.link(r0, s1, bw, d);
    b.link(r1, s1, bw, d);
    let fan: Vec<_> = (0..24)
        .map(|_| {
            let h = b.host();
            b.link(h, s1, bw, d);
            h
        })
        .collect();
    let mut net = b.build();

    let f0 = net.add_flow(FlowSpec {
        src: h0,
        dst: r0,
        size: 40_000_000,
        class: 0,
        start: Time::ZERO,
        cc,
    });
    net.add_flow(FlowSpec { src: h1, dst: r1, size: 40_000_000, class: 0, start: Time::ZERO, cc });
    // 24 concurrent 64 KB fan-in flows (sub-BDP: CC cannot react in time).
    for &h in &fan {
        net.add_flow(FlowSpec {
            src: h,
            dst: r1,
            size: 64 * 1024,
            class: 0,
            start: Time::from_us(100),
            cc: CcKind::Uncontrolled,
        });
    }
    net.monitor_flow(f0);
    let mut sim = net.into_sim();
    sim.run_until(Time::from_us(800));
    let net = sim.into_model();
    assert_eq!(net.data_drops(), 0, "Fig. 13 run dropped packets");
    net.flow_throughput(f0).to_vec()
}

/// Runs the SIH/DSH victim series for every transport on the pool;
/// result is one `(cc, sih series, dsh series)` triple per transport, in
/// input order.
#[must_use]
pub fn sweep(
    ccs: &[CcKind],
    ex: &Executor,
) -> Vec<(CcKind, Vec<ThroughputSample>, Vec<ThroughputSample>)> {
    let grid: Vec<(Scheme, CcKind)> =
        ccs.iter().flat_map(|&cc| [(Scheme::Sih, cc), (Scheme::Dsh, cc)]).collect();
    let mut series = ex.par_map(grid, |(scheme, cc)| victim_series(scheme, cc)).into_iter();
    ccs.iter()
        .map(|&cc| {
            let sih = series.next().expect("one SIH series per transport");
            let dsh = series.next().expect("one DSH series per transport");
            (cc, sih, dsh)
        })
        .collect()
}

/// Minimum victim goodput in the post-burst window (the figure's dip).
#[must_use]
pub fn post_burst_min(series: &[ThroughputSample]) -> f64 {
    series
        .iter()
        .filter(|s| s.time >= Time::from_us(120) && s.time <= Time::from_us(500))
        .map(|s| s.gbps)
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dcqcn_variant_also_shows_the_gap() {
        let sih = post_burst_min(&victim_series(Scheme::Sih, CcKind::Dcqcn));
        let dsh = post_burst_min(&victim_series(Scheme::Dsh, CcKind::Dcqcn));
        assert!(dsh > sih, "DSH {dsh} vs SIH {sih}");
    }
}
