//! Fig. 6: CDF of headroom utilization at local-maximum points, under
//! DCQCN at high load (motivation §III-B: "75% of headroom keeps unused
//! 99% of the time"). The paper measures SIH's static headroom; the same
//! pipeline also measures DSH/BShare insurance-headroom utilization, so
//! the three schemes' reserved-but-idle fractions are directly
//! comparable.

use crate::fabric::FAN_IN_CLASS;
use dsh_analysis::stats::Cdf;
use dsh_core::Scheme;
use dsh_net::topology::{leaf_spine, LeafSpineShape};
use dsh_net::{FlowSpec, NetParams};
use dsh_simcore::{Bandwidth, Delta, SimRng, Time};
use dsh_transport::CcKind;
use dsh_workloads::{background_flows, fan_in_bursts, FlowSizeDist, PatternConfig, Workload};

/// Result of the Fig. 6 measurement.
#[derive(Clone, Debug)]
pub struct Fig6Result {
    /// Per-port headroom utilization (0..1) at each local maximum.
    pub utilization: Cdf,
    /// Structured network telemetry of the run
    /// ([`dsh_net::Network::telemetry_report`]), JSON-serialized.
    pub telemetry: dsh_simcore::Json,
}

/// Runs the headroom-utilization experiment on a leaf–spine under DCQCN;
/// `hosts_per_leaf`/`leaves` and `horizon` control scale. Utilization is
/// measured against the scheme's own reservation: `N_q·η` per port for
/// SIH, the insurance `η` per port for DSH/BShare.
#[must_use]
pub fn run(
    scheme: Scheme,
    leaves: usize,
    hosts_per_leaf: usize,
    horizon: Delta,
    seed: u64,
) -> Fig6Result {
    let params = NetParams::tomahawk(scheme).with_seed(seed);
    let ls = leaf_spine(
        params,
        LeafSpineShape {
            leaves,
            spines: leaves,
            hosts_per_leaf,
            downlink: Bandwidth::from_gbps(100),
            uplink: Bandwidth::from_gbps(100),
            link_delay: Delta::from_us(2),
        },
    );
    let hosts = ls.all_hosts();
    let mut net = ls.builder.build();

    let mut rng = SimRng::new(seed);
    let dist = FlowSizeDist::from_workload(Workload::WebSearch);
    let pc = PatternConfig {
        hosts: hosts.len(),
        host_bytes_per_sec: 12.5e9,
        load: 0.6,
        horizon: Time::ZERO + horizon,
    };
    for f in background_flows(&pc, &dist, &[0, 1, 2, 3, 4, 5], &mut rng) {
        net.add_flow(FlowSpec {
            src: hosts[f.src],
            dst: hosts[f.dst],
            size: f.size,
            class: f.class,
            start: f.start,
            cc: CcKind::Dcqcn,
        });
    }
    let burst = PatternConfig { load: 0.3, ..pc };
    let fan_in = 16.min(hosts.len().saturating_sub(1)).max(2);
    for f in fan_in_bursts(&burst, fan_in, 64 * 1024, FAN_IN_CLASS, &mut rng) {
        net.add_flow(FlowSpec {
            src: hosts[f.src],
            dst: hosts[f.dst],
            size: f.size,
            class: f.class,
            start: f.start,
            cc: CcKind::Dcqcn,
        });
    }

    let mut sim = net.into_sim();
    sim.run_until(Time::ZERO + horizon + Delta::from_ms(2));
    let end = sim.now();
    let mut net = sim.into_model();
    let telemetry = net.telemetry_report(end).to_json();

    // Utilization of a port's headroom at each local maximum: occupancy
    // divided by the port's reservation — N_q · η for SIH's static
    // headroom, η for DSH/BShare's per-port insurance.
    let alloc = match scheme {
        // All ports here are 100G/2us: eta = 56840, 7 lossless queues.
        Scheme::Sih => 7.0 * 56_840.0,
        Scheme::Dsh | Scheme::BShare => 56_840.0,
        // Lossy mode reserves no headroom at all, so a headroom
        // utilization figure is meaningless for it.
        Scheme::Lossy => panic!("fig06 measures headroom utilization; the lossy scheme has none"),
    };
    let mut samples = Vec::new();
    for (node, per_port) in net.take_headroom_peaks() {
        let _ = node;
        for (port, peaks) in per_port.into_iter().enumerate() {
            let _ = port;
            for peak in peaks {
                samples.push((peak as f64 / alloc).min(1.0));
            }
        }
    }
    Fig6Result { utilization: Cdf::new(samples), telemetry }
}
