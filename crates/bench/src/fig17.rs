//! Fig. 17 (extension, not in the paper): the lossless-vs-lossy
//! trade-off.
//!
//! The paper argues DSH gets the best of PFC losslessness at a fraction
//! of SIH's headroom tax. This figure adds the other end of the design
//! space — an IRN-style lossy RoCE fabric with no PFC at all — and sweeps
//! load over a four-cell regime matrix: {PFC+SIH, PFC+DSH, lossy+GBN,
//! lossy+SR}. Each cell reports FCT percentiles, PFC pause wall-clock,
//! buffer held hostage as headroom (reserved and peak occupancy), and
//! bytes retransmitted — making the trade-off explicit: lossless fabrics
//! pay in pauses and reserved buffer, lossy fabrics pay in drops and
//! retransmissions, and selective repeat pays far less than go-back-N.

use dsh_analysis::fct::FctSummary;
use dsh_core::Scheme;
use dsh_net::topology::{leaf_spine, LeafSpineShape};
use dsh_net::{FidelityMode, FlowSpec, NetParams, Network, ObserveConfig};
use dsh_simcore::{Bandwidth, ByteSize, Delta, Executor, SimRng, Time};
use dsh_transport::{CcKind, RecoveryConfig, Regime};
use dsh_workloads::{background_flows, fan_in_bursts, FlowSizeDist, PatternConfig, Workload};

/// One cell of the regime matrix: a headroom scheme (or the lossy mode)
/// paired with the loss-recovery regime its transport runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cell {
    /// PFC lossless, static independent headroom.
    Sih,
    /// PFC lossless, dynamic shared headroom.
    Dsh,
    /// No PFC, drop-tail admission, go-back-N recovery.
    LossyGbn,
    /// No PFC, drop-tail admission, selective-repeat recovery.
    LossySr,
}

impl Cell {
    /// All four cells, in display order.
    pub const ALL: [Cell; 4] = [Cell::Sih, Cell::Dsh, Cell::LossyGbn, Cell::LossySr];

    /// The MMU scheme this cell runs.
    #[must_use]
    pub fn scheme(self) -> Scheme {
        match self {
            Cell::Sih => Scheme::Sih,
            Cell::Dsh => Scheme::Dsh,
            Cell::LossyGbn | Cell::LossySr => Scheme::Lossy,
        }
    }

    /// Whether the cell's switches are lossless (PFC on).
    #[must_use]
    pub fn is_lossless(self) -> bool {
        self.scheme().is_lossless()
    }

    /// Fixed-width label for tables and JSON.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Cell::Sih => "pfc+sih",
            Cell::Dsh => "pfc+dsh",
            Cell::LossyGbn => "lossy+gbn",
            Cell::LossySr => "lossy+sr",
        }
    }

    /// The recovery configuration the cell's transports run. Lossless
    /// cells take the regime override (recovery is optional armor there);
    /// lossy cells are pinned to their defining regime.
    #[must_use]
    pub fn recovery(self, base_rtt: Delta, override_regime: Option<Regime>) -> RecoveryConfig {
        let cfg = RecoveryConfig::for_rtt(base_rtt);
        let regime = match self {
            Cell::LossyGbn => Regime::GoBackN,
            Cell::LossySr => Regime::SelectiveRepeat,
            Cell::Sih | Cell::Dsh => override_regime.unwrap_or(Regime::GoBackN),
        };
        if regime == Regime::SelectiveRepeat {
            cfg.selective_repeat()
        } else {
            cfg
        }
    }
}

/// One lossless-vs-lossy experiment configuration (a 2×2 leaf–spine
/// carrying background plus fan-in traffic at a swept total load).
#[derive(Clone, Copy, Debug)]
pub struct Fig17Experiment {
    /// Regime-matrix cell.
    pub cell: Cell,
    /// Transport for all flows.
    pub cc: CcKind,
    /// Hosts per leaf (2 leaves × 2 spines fixed).
    pub hosts_per_leaf: usize,
    /// Total offered load (fraction of host capacity); split 2:1 between
    /// background and 8:1 fan-in bursts so both the pause and drop
    /// machinery see contention.
    pub load: f64,
    /// Flows start within `[0, horizon)`.
    pub horizon: Delta,
    /// Hard stop for the simulation.
    pub run_until: Delta,
    /// Lossless-pool buffer per switch (small enough that the fan-in
    /// crosses PFC thresholds in the lossless cells and the shared pool
    /// overflows in the lossy ones).
    pub buffer: ByteSize,
    /// Seed.
    pub seed: u64,
    /// Intra-run partition workers (1 = serial calendar).
    pub workers: usize,
    /// Engine fidelity.
    pub fidelity: FidelityMode,
    /// Regime override for the lossless cells (`--regime`); lossy cells
    /// ignore it (their regime is the cell).
    pub override_regime: Option<Regime>,
    /// Run the lossless cells without any recovery at all
    /// (`--no-recovery`); lossy cells reject this in
    /// [`NetParams::validate`], so it only applies where legal.
    pub no_recovery: bool,
    /// Arms the pause-causality observatory and metrics sampler for this
    /// run.  `None` (the default) keeps the observability hooks masked
    /// off, preserving the sweep's measured hot path; the `--metrics`
    /// representative run sets it.
    pub observe: Option<ObserveConfig>,
}

impl Fig17Experiment {
    /// Laptop-scale default: 8 hosts, 1 ms admission horizon, 40 ms
    /// simulation (a go-back-N elephant that replays most of itself
    /// after repeated drop-tail hits needs a long drain), 4 MiB switch
    /// buffer.
    #[must_use]
    pub fn small(cell: Cell) -> Self {
        Fig17Experiment {
            cell,
            cc: CcKind::Dcqcn,
            hosts_per_leaf: 4,
            load: 0.7,
            horizon: Delta::from_ms(1),
            run_until: Delta::from_ms(40),
            buffer: ByteSize::mib(4),
            seed: 1,
            workers: 1,
            fidelity: FidelityMode::Packet,
            override_regime: None,
            no_recovery: false,
            observe: None,
        }
    }
}

/// Outcome of one cell × load run.
#[derive(Clone, Copy, Debug)]
pub struct Fig17Result {
    /// FCT summary over completed flows (`None` if none completed).
    pub fct: Option<FctSummary>,
    /// Flows that delivered every byte.
    pub completed: usize,
    /// Registered flows.
    pub registered: usize,
    /// Flows explicitly failed after the retry budget.
    pub failed: u64,
    /// Flows neither completed nor failed at the horizon (must be 0).
    pub wedged: usize,
    /// Summed queue- plus port-level PFC pause wall-clock over all egress
    /// ports (exactly 0 in the lossy cells).
    pub pause_wall_ns: u64,
    /// Buffer statically reserved as headroom across all switches
    /// (exactly 0 in the lossy cells).
    pub headroom_reserved: u64,
    /// Highest per-port headroom occupancy peak observed (exactly 0 in
    /// the lossy cells).
    pub headroom_peak: u64,
    /// Drop-tail admission drops (0 in the lossless cells).
    pub data_drops: u64,
    /// Total bytes re-sent below flows' high-water marks.
    pub retransmitted_bytes: u64,
    /// Bytes re-sent by selective-repeat gap repairs (subset of
    /// `retransmitted_bytes`).
    pub sr_retransmitted_bytes: u64,
    /// NACK control frames receivers sent.
    pub nacks_sent: u64,
    /// Calendar events processed.
    pub events: u64,
    /// Host wall time of the simulation run (build and loading excluded).
    pub wall: std::time::Duration,
}

impl Fig17Result {
    /// Calendar events per wall-clock second (perf-trajectory metric).
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

/// Runs one cell at one load.
///
/// # Panics
///
/// Panics on regime-contract violations: a lossless cell that drops, a
/// lossy cell that pauses or holds headroom, or a dirty MMU audit in any
/// cell.
#[must_use]
pub fn run_cell(exp: &Fig17Experiment) -> Fig17Result {
    let (net, registered) = loaded(exp);
    let deadline = Time::ZERO + exp.run_until;
    let wall = std::time::Instant::now();
    let (mut net, events) = crate::fabric::run_net(net, deadline, exp.workers);
    let wall = wall.elapsed();

    let pause_wall_ns: u64 =
        net.pause_ledgers(deadline).map(|l| l.queue_level.as_ns() + l.port_level.as_ns()).sum();
    let headroom_reserved = net.reserved_headroom_bytes();
    let headroom_peak = net
        .take_headroom_peaks()
        .into_iter()
        .flat_map(|(_, per_port)| per_port.into_iter().flatten())
        .max()
        .unwrap_or(0);

    for (id, audit) in net.audit_all() {
        assert!(
            audit.is_clean(),
            "dirty MMU audit at {id} in {:?}: {:?}",
            exp.cell,
            audit.violations
        );
    }
    if exp.cell.is_lossless() {
        assert_eq!(net.data_drops(), 0, "lossless cell {:?} dropped packets", exp.cell);
    } else {
        assert_eq!(pause_wall_ns, 0, "lossy cell {:?} paused — PFC leaked", exp.cell);
        assert_eq!(headroom_reserved, 0, "lossy cell {:?} reserved headroom", exp.cell);
        assert_eq!(headroom_peak, 0, "lossy cell {:?} charged headroom", exp.cell);
    }

    let fcts: Vec<Delta> = net.fct_records().iter().map(|r| r.fct()).collect();
    let completed = fcts.len();
    let failed = net.failed_flow_count();
    Fig17Result {
        fct: FctSummary::from_fcts(&fcts),
        completed,
        registered,
        failed,
        wedged: registered - completed - failed as usize,
        pause_wall_ns,
        headroom_reserved,
        headroom_peak,
        data_drops: net.data_drops(),
        retransmitted_bytes: net.retransmitted_bytes(),
        sr_retransmitted_bytes: net.sr_retransmitted_bytes(),
        nacks_sent: net.nacks_sent(),
        events,
        wall,
    }
}

/// Builds the loaded fabric for one cell; returns `(network, registered
/// flows)`. Public so benches and debugging probes can drive the exact
/// figure scenario through their own engines.
#[must_use]
pub fn loaded(exp: &Fig17Experiment) -> (Network, usize) {
    let mut params = NetParams::tomahawk(exp.cell.scheme())
        .with_buffer(exp.buffer)
        .with_seed(exp.seed)
        .with_fidelity(exp.fidelity);
    if exp.no_recovery && exp.cell.is_lossless() {
        // Legal only where PFC guarantees delivery; the builder rejects
        // a recovery-free lossy fabric outright.
    } else {
        let recovery = exp.cell.recovery(params.base_rtt, exp.override_regime);
        params = params.with_recovery(recovery);
    }
    if let Some(cfg) = exp.observe {
        params = params.with_observability(cfg);
    }
    let ls = leaf_spine(
        params,
        LeafSpineShape {
            leaves: 2,
            spines: 2,
            hosts_per_leaf: exp.hosts_per_leaf,
            downlink: Bandwidth::from_gbps(100),
            uplink: Bandwidth::from_gbps(100),
            link_delay: Delta::from_us(2),
        },
    );
    let hosts = ls.all_hosts();
    let mut net = ls.builder.build();

    let mut rng = SimRng::new(exp.seed.wrapping_mul(0x9E37_79B9).wrapping_add(17));
    let horizon = Time::ZERO + exp.horizon;
    let dist = FlowSizeDist::from_workload(Workload::WebSearch);
    let bg = PatternConfig {
        hosts: hosts.len(),
        host_bytes_per_sec: 12.5e9,
        load: exp.load * 2.0 / 3.0,
        horizon,
    };
    for f in background_flows(&bg, &dist, &[0, 1, 2, 3], &mut rng) {
        net.add_flow(FlowSpec {
            src: hosts[f.src],
            dst: hosts[f.dst],
            size: f.size,
            class: f.class,
            start: f.start,
            cc: exp.cc,
        });
    }
    let fan = PatternConfig {
        hosts: hosts.len(),
        host_bytes_per_sec: 12.5e9,
        load: exp.load / 3.0,
        horizon,
    };
    let fan_in = 8.min(hosts.len().saturating_sub(1)).max(2);
    for f in fan_in_bursts(&fan, fan_in, 64 * 1024, 5, &mut rng) {
        net.add_flow(FlowSpec {
            src: hosts[f.src],
            dst: hosts[f.dst],
            size: f.size,
            class: f.class,
            start: f.start,
            cc: exp.cc,
        });
    }
    let registered = net.flow_count();
    (net, registered)
}

/// One sweep row: a load with one outcome per cell, in [`Cell::ALL`]
/// order.
#[derive(Clone, Copy, Debug)]
pub struct Fig17Point {
    /// Total offered load.
    pub load: f64,
    /// Outcomes keyed by [`Cell::ALL`].
    pub cells: [Fig17Result; 4],
}

impl Fig17Point {
    /// The point's outcomes keyed by cell.
    #[must_use]
    pub fn per_cell(&self) -> [(Cell, &Fig17Result); 4] {
        [
            (Cell::ALL[0], &self.cells[0]),
            (Cell::ALL[1], &self.cells[1]),
            (Cell::ALL[2], &self.cells[2]),
            (Cell::ALL[3], &self.cells[3]),
        ]
    }
}

/// Sweeps loads × [`Cell::ALL`] on the pool.
#[must_use]
pub fn sweep(loads: &[f64], base: &Fig17Experiment, ex: &Executor) -> Vec<Fig17Point> {
    let grid: Vec<Fig17Experiment> = loads
        .iter()
        .flat_map(|&load| Cell::ALL.map(|cell| Fig17Experiment { cell, load, ..*base }))
        .collect();
    let mut results = ex.par_map(grid, |exp| run_cell(&exp)).into_iter();
    loads
        .iter()
        .map(|&load| {
            let mut next = || results.next().expect("one result per cell per load");
            Fig17Point { load, cells: [next(), next(), next(), next()] }
        })
        .collect()
}

/// Runs one observe-armed representative cell of `base` and writes the
/// `--metrics` export (a no-op without `--metrics`/`DSH_METRICS`).  The
/// sweep itself always runs with the hooks masked off; the export is a
/// dedicated extra run so the time series describes exactly one network.
pub fn export_metrics(args: &crate::Args, base: &Fig17Experiment) {
    let Some(cfg) = crate::observe_config(args) else { return };
    let exp = Fig17Experiment { observe: Some(cfg), ..*base };
    let (net, _registered) = loaded(&exp);
    let (net, _events) = crate::fabric::run_net(net, Time::ZERO + exp.run_until, exp.workers);
    crate::write_metrics(args, &net);
}

/// Cuts the scale down for smoke/bench runs (CI wall-clock).
#[must_use]
pub fn smoke_base(cell: Cell) -> Fig17Experiment {
    let mut base = Fig17Experiment::small(cell);
    base.horizon = Delta::from_us(300);
    // Recovery tails (timeout ladders on dropped final segments) need
    // drain time well past the admission horizon.
    base.run_until = Delta::from_ms(12);
    base.load = 0.8;
    base
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossy_cells_never_pause_and_hold_no_headroom() {
        for cell in [Cell::LossyGbn, Cell::LossySr] {
            let r = run_cell(&smoke_base(cell));
            // The zero assertions live inside run_cell; re-state the
            // contract here so the test names it.
            assert_eq!(r.pause_wall_ns, 0, "{cell:?}");
            assert_eq!(r.headroom_reserved, 0, "{cell:?}");
            assert_eq!(r.headroom_peak, 0, "{cell:?}");
            assert_eq!(r.wedged, 0, "{cell:?}: a dropped flow wedged");
        }
    }

    #[test]
    fn lossless_cells_never_drop_but_reserve_headroom() {
        for cell in [Cell::Sih, Cell::Dsh] {
            let r = run_cell(&smoke_base(cell));
            assert_eq!(r.data_drops, 0, "{cell:?}");
            assert!(r.headroom_reserved > 0, "{cell:?} reserved no headroom");
            assert_eq!(r.wedged, 0, "{cell:?}");
        }
    }

    #[test]
    fn sih_reserves_more_headroom_than_dsh() {
        let sih = run_cell(&smoke_base(Cell::Sih));
        let dsh = run_cell(&smoke_base(Cell::Dsh));
        assert!(
            sih.headroom_reserved > dsh.headroom_reserved,
            "SIH ({}) must hold more buffer hostage than DSH ({})",
            sih.headroom_reserved,
            dsh.headroom_reserved
        );
    }
}
