//! Fig. 4: buffer size, buffer-per-capacity and SIH headroom fraction
//! across five generations of Broadcom switching chips.

use dsh_core::chips::{ChipSpec, BROADCOM_CHIPS, FIG4_MTU, FIG4_PROP_DELAY};

/// One row of Fig. 4.
#[derive(Clone, Copy, Debug)]
pub struct Fig4Row {
    /// The chip.
    pub chip: ChipSpec,
    /// SIH headroom in MB (8 queues/port, 1.5 µs cable, 1500 B MTU).
    pub headroom_mib: f64,
    /// Buffer in MiB.
    pub buffer_mib: f64,
    /// Buffer per unit capacity (µs).
    pub us_per_capacity: f64,
    /// Fraction of buffer consumed by headroom.
    pub headroom_fraction: f64,
}

/// Computes every row of Fig. 4.
#[must_use]
pub fn rows() -> Vec<Fig4Row> {
    BROADCOM_CHIPS
        .iter()
        .map(|c| Fig4Row {
            chip: *c,
            headroom_mib: c.sih_headroom(8, FIG4_PROP_DELAY, FIG4_MTU).as_mib_f64(),
            buffer_mib: c.buffer.as_mib_f64(),
            us_per_capacity: c.buffer_per_capacity_us(),
            headroom_fraction: c.sih_headroom_fraction(8, FIG4_PROP_DELAY, FIG4_MTU),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_rows_with_growing_headroom_fraction() {
        let r = rows();
        assert_eq!(r.len(), 5);
        assert!(r.windows(2).all(|w| w[1].headroom_fraction > w[0].headroom_fraction));
        assert!(r.windows(2).all(|w| w[1].us_per_capacity < w[0].us_per_capacity));
    }
}
