//! Fig. 6: CDF of headroom utilization at local-maximum points, for every
//! scheme (SIH static headroom; DSH/BShare insurance headroom).
//!
//! ```bash
//! cargo run --release -p dsh-bench --bin fig06_headroom_utilization [--full] [--seed N] [--json]
//! ```
//!
//! `--json` additionally prints, per scheme, one JSON document with the
//! run's network telemetry (per-switch MMU audit, drop attribution,
//! occupancy series, per-port pause durations).

use dsh_core::Scheme;
use dsh_simcore::{Delta, Json};

fn main() {
    let args = dsh_bench::Args::parse();
    dsh_bench::with_trace(&args, || run(&args));
}

fn run(args: &dsh_bench::Args) {
    let (full, seed) = (args.full, args.seed);
    let (leaves, hosts, horizon) =
        if full { (16, 16, Delta::from_ms(10)) } else { (4, 8, Delta::from_ms(3)) };
    println!("Fig. 6 — headroom utilization at local maxima (DCQCN, high load)");
    let mut docs: Vec<Json> = Vec::new();
    for scheme in Scheme::ALL {
        let r = dsh_bench::fig06::run(scheme, leaves, hosts, horizon, seed);
        let cdf = &r.utilization;
        println!("[{scheme}] samples: {}", cdf.len());
        for q in [0.10, 0.25, 0.50, 0.75, 0.90, 0.99] {
            println!(
                "  p{:<4} utilization = {:>6.2}%",
                (q * 100.0) as u32,
                cdf.quantile(q).unwrap_or(f64::NAN) * 100.0
            );
        }
        println!(
            "  fraction of peaks using <25% of headroom: {:.1}%",
            cdf.fraction_at(0.25) * 100.0
        );
        if args.json {
            docs.push(
                Json::object().with("scheme", scheme.to_string()).with("telemetry", r.telemetry),
            );
        }
    }
    println!();
    println!("paper: SIH median utilization 4.96%, p99 25.33% — headroom is mostly idle");
    if args.json {
        let doc = Json::object()
            .with("provenance", dsh_bench::provenance(args))
            .with("schemes", Json::Arr(docs));
        println!("{doc}");
    }
}
