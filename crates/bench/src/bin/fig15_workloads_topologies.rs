//! Fig. 15: normalized background FCT across workloads and topologies
//! (DCQCN).
//!
//! ```bash
//! cargo run --release -p dsh-bench --bin fig15_workloads_topologies [--full] [--seed N] [--threads N] [--workers N]
//! ```

use dsh_bench::fabric::{FctExperiment, Topo};
use dsh_bench::fig15;
use dsh_core::Scheme;
use dsh_simcore::Delta;
use dsh_transport::CcKind;

fn main() {
    let args = dsh_bench::Args::parse();
    dsh_bench::with_trace(&args, || run(&args));
}

fn run(args: &dsh_bench::Args) {
    let (full, seed) = (args.full, args.seed);
    let mut base = FctExperiment::small(Scheme::Sih, CcKind::Dcqcn);
    base.seed = seed;
    base.workers = args.sim_workers();
    base.fidelity = args.fidelity;
    let k = if full { 16 } else { 4 };
    if full {
        base.topo = Topo::PAPER_LEAF_SPINE;
        base.horizon = Delta::from_ms(10);
        base.run_until = Delta::from_ms(30);
    }
    let loads = if full { vec![0.2, 0.4, 0.6, 0.8] } else { vec![0.4, 0.6] };
    println!("Fig. 15 — avg background FCT normalized to SIH, DCQCN");
    let cells = fig15::sweep(&loads, &base, k, &args.executor());
    for panel in cells.chunks(loads.len()) {
        let (k_label, w) = (k, panel[0].workload);
        let label = if panel[0].fat_tree {
            format!("Fat-Tree(k={k_label}) + {w}")
        } else {
            format!("Leaf-Spine + {w}")
        };
        println!("\n[{label}]");
        println!("{:>8} {:>12} {:>10} {:>10}", "bg load", "bg DSH/SIH", "SIH done", "DSH done");
        for cell in panel {
            println!(
                "{:>8.1} {:>12.3} {:>10} {:>10}",
                cell.bg_load,
                cell.norm_bg().unwrap_or(f64::NAN),
                cell.sih.completed,
                cell.dsh.completed
            );
        }
    }
    println!();
    println!("paper: DSH improves FCT across all four workload/topology panels");
    // Representative observe-armed run for the --metrics export (no-op
    // without --metrics / DSH_METRICS).
    dsh_bench::fabric::export_fct_metrics(args, &base);
}
