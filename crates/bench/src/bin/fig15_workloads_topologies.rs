//! Fig. 15: normalized background FCT across workloads and topologies
//! (DCQCN).
//!
//! ```bash
//! cargo run --release -p dsh-bench --bin fig15_workloads_topologies [--full] [--seed N]
//! ```

use dsh_bench::fabric::{FctExperiment, Topo};
use dsh_bench::fig15;
use dsh_core::Scheme;
use dsh_simcore::Delta;
use dsh_transport::CcKind;

fn main() {
    let (full, seed) = dsh_bench::parse_args();
    let mut base = FctExperiment::small(Scheme::Sih, CcKind::Dcqcn);
    base.seed = seed;
    let k = if full { 16 } else { 4 };
    if full {
        base.topo = Topo::PAPER_LEAF_SPINE;
        base.horizon = Delta::from_ms(10);
        base.run_until = Delta::from_ms(30);
    }
    let loads = if full { vec![0.2, 0.4, 0.6, 0.8] } else { vec![0.4, 0.6] };
    println!("Fig. 15 — avg background FCT normalized to SIH, DCQCN");
    for (w, ft) in fig15::PANELS {
        let label = if ft { format!("Fat-Tree(k={k}) + {w}") } else { format!("Leaf-Spine + {w}") };
        println!("\n[{label}]");
        println!("{:>8} {:>12} {:>10} {:>10}", "bg load", "bg DSH/SIH", "SIH done", "DSH done");
        for &l in &loads {
            let cell = fig15::run_cell(w, ft, l, &base, k);
            println!(
                "{:>8.1} {:>12.3} {:>10} {:>10}",
                l,
                cell.norm_bg().unwrap_or(f64::NAN),
                cell.sih.completed,
                cell.dsh.completed
            );
        }
    }
    println!();
    println!("paper: DSH improves FCT across all four workload/topology panels");
}
