//! Scratch diagnostic for the Fig. 12 scenario: per-scheme outcomes.

use dsh_bench::fig12::{run_once, Fig12Config};
use dsh_core::Scheme;
use dsh_transport::CcKind;

fn main() {
    let mut cfg = Fig12Config::small();
    if let Ok(f) = std::env::var("FAN") {
        cfg.fan_in = f.parse().unwrap();
    }
    if let Ok(l) = std::env::var("LOAD") {
        cfg.load = l.parse().unwrap();
    }
    if let Ok(j) = std::env::var("JIT") {
        cfg.arrival_jitter = dsh_simcore::Delta::from_us(j.parse().unwrap());
    }
    eprintln!("fan={} load={} jitter={:?}", cfg.fan_in, cfg.load, cfg.arrival_jitter);
    for cc in [CcKind::Dcqcn] {
        for scheme in [Scheme::Sih, Scheme::Dsh] {
            for seed in 1..=4 {
                let r = run_once(scheme, cc, &cfg, seed);
                println!(
                    "{scheme}/{cc} seed {seed}: onset {:?} ms",
                    r.onset.map(|t| t.as_ms_f64())
                );
            }
        }
    }
}
