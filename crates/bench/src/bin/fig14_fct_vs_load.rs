//! Fig. 14: normalized average FCT vs background load (DCQCN & PowerTCP).
//!
//! ```bash
//! cargo run --release -p dsh-bench --bin fig14_fct_vs_load [--full] [--seed N] [--threads N] [--workers N]
//! ```

use dsh_bench::fabric::{FctExperiment, Topo};
use dsh_bench::fig14;
use dsh_core::Scheme;
use dsh_simcore::Delta;
use dsh_transport::CcKind;

fn main() {
    let args = dsh_bench::Args::parse();
    dsh_bench::with_trace(&args, || run(&args));
}

fn run(args: &dsh_bench::Args) {
    let (full, seed) = (args.full, args.seed);
    let ex = args.executor();
    let mut base = FctExperiment::small(Scheme::Sih, CcKind::Dcqcn);
    base.seed = seed;
    base.workers = args.sim_workers();
    base.fidelity = args.fidelity;
    if full {
        base.topo = Topo::PAPER_LEAF_SPINE;
        base.horizon = Delta::from_ms(10);
        base.run_until = Delta::from_ms(30);
    }
    let loads = if full { vec![0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8] } else { vec![0.3, 0.5, 0.7] };
    println!("Fig. 14 — avg FCT normalized to SIH (total load 0.9, 16:1 64KB fan-in)");
    for cc in [CcKind::Dcqcn, CcKind::PowerTcp] {
        println!("\n[{cc}]");
        println!(
            "{:>8} {:>12} {:>12} {:>10} {:>10}",
            "bg load", "fan DSH/SIH", "bg DSH/SIH", "SIH done", "DSH done"
        );
        for p in fig14::sweep(cc, &loads, &base, &ex) {
            println!(
                "{:>8.1} {:>12.3} {:>12.3} {:>10} {:>10}",
                p.bg_load,
                p.norm_fan().unwrap_or(f64::NAN),
                p.norm_bg().unwrap_or(f64::NAN),
                p.sih.completed,
                p.dsh.completed
            );
        }
    }
    println!();
    println!("paper: DSH cuts fan-in FCT up to 43.3% (DCQCN) / 57.7% (PowerTCP),");
    println!("       background FCT up to 10.1% (DCQCN) / 31.1% (PowerTCP)");
    // Representative observe-armed run for the --metrics export (no-op
    // without --metrics / DSH_METRICS).
    dsh_bench::fabric::export_fct_metrics(args, &base);
}
