//! Fig. 17 (extension): the lossless-vs-lossy trade-off.
//!
//! ```bash
//! cargo run --release -p dsh-bench --bin fig17_lossless_vs_lossy \
//!     [--full] [--smoke] [--json] [--seed N] [--threads N] [--workers N] \
//!     [--regime gbn|sr] [--no-recovery]
//! ```
//!
//! Sweeps load over the four-cell regime matrix {PFC+SIH, PFC+DSH,
//! lossy+GBN, lossy+SR} and prints, per cell: FCT percentiles, PFC pause
//! wall-clock, buffer statically reserved as headroom, drop-tail drops,
//! and bytes retransmitted. `--regime` picks the recovery regime for the
//! *lossless* cells (the lossy cells are their regime); `--no-recovery`
//! runs the lossless cells bare. `--smoke` runs one load across all four
//! cells and hard-asserts the regime contracts: lossless cells drop
//! nothing, lossy cells report exactly zero pause wall-clock and zero
//! headroom bytes, and selective repeat retransmits less than go-back-N.

use dsh_bench::fig17::{self, Cell, Fig17Experiment, Fig17Point, Fig17Result};
use dsh_simcore::Json;

fn main() {
    let args = dsh_bench::Args::parse();
    dsh_bench::with_trace(&args, || run(&args));
}

/// One table row for a cell's result.
fn print_row(load: f64, cell: Cell, r: &Fig17Result) {
    let (p50, p99) = r.fct.map_or((f64::NAN, f64::NAN), |s| (s.p50_secs, s.p99_secs));
    println!(
        "{:>5.2} {:>10} {:>9.1} {:>9.1} {:>9} {:>10} {:>7} {:>10} {:>8}",
        load,
        cell.label(),
        p50 * 1e6,
        p99 * 1e6,
        r.pause_wall_ns.div_euclid(1000),
        r.headroom_reserved,
        r.data_drops,
        r.retransmitted_bytes,
        format!("{}/{}", r.completed, r.registered),
    );
}

/// The cross-cell invariants every point must satisfy (the per-cell zero
/// assertions already ran inside [`fig17::run_cell`]).
fn check_point(p: &Fig17Point) {
    for (cell, r) in p.per_cell() {
        assert_eq!(r.wedged, 0, "{}: a flow wedged at load {}", cell.label(), p.load);
    }
}

fn json_row(load: f64, cell: Cell, r: &Fig17Result) -> Json {
    let (p50, p99) = r.fct.map_or((f64::NAN, f64::NAN), |s| (s.p50_secs, s.p99_secs));
    Json::object()
        .with("cell", cell.label())
        .with("load", load)
        .with("fct_p50_secs", p50)
        .with("fct_p99_secs", p99)
        .with("pause_wall_ns", r.pause_wall_ns)
        .with("headroom_reserved_bytes", r.headroom_reserved)
        .with("headroom_peak_bytes", r.headroom_peak)
        .with("data_drops", r.data_drops)
        .with("retransmitted_bytes", r.retransmitted_bytes)
        .with("sr_retransmitted_bytes", r.sr_retransmitted_bytes)
        .with("nacks_sent", r.nacks_sent)
        .with("completed", r.completed as u64)
        .with("failed", r.failed)
        .with("events", r.events)
        .with("events_per_sec", r.events_per_sec())
}

fn header() {
    println!(
        "{:>5} {:>10} {:>9} {:>9} {:>9} {:>10} {:>7} {:>10} {:>8}",
        "load", "cell", "p50_us", "p99_us", "pause_us", "hdrm_B", "drops", "retx_B", "c/r"
    );
}

fn run(args: &dsh_bench::Args) {
    let ex = args.executor();

    if args.smoke {
        let mut base = fig17::smoke_base(Cell::Sih);
        base.seed = args.seed;
        base.workers = args.sim_workers();
        base.override_regime = args.regime;
        base.no_recovery = args.no_recovery;
        let points = fig17::sweep(&[base.load], &base, &ex);
        let p = &points[0];
        header();
        for (cell, r) in p.per_cell() {
            print_row(p.load, cell, r);
        }
        check_point(p);
        let by = |c: Cell| p.per_cell().into_iter().find(|(k, _)| *k == c).expect("all cells").1;
        let (gbn, sr) = (by(Cell::LossyGbn), by(Cell::LossySr));
        assert!(gbn.data_drops > 0, "lossy+gbn smoke never overflowed — no trade-off exercised");
        assert!(sr.data_drops > 0, "lossy+sr smoke never overflowed — no trade-off exercised");
        assert!(
            sr.retransmitted_bytes < gbn.retransmitted_bytes,
            "selective repeat retransmitted {} bytes vs go-back-N {} — SR should repair less",
            sr.retransmitted_bytes,
            gbn.retransmitted_bytes
        );
        println!("smoke OK");
        fig17::export_metrics(args, &base);
        return;
    }

    let mut base = Fig17Experiment::small(Cell::Sih);
    base.seed = args.seed;
    base.workers = args.sim_workers();
    base.override_regime = args.regime;
    base.no_recovery = args.no_recovery;
    if args.full {
        base.hosts_per_leaf = 8;
        base.horizon = dsh_simcore::Delta::from_ms(2);
        base.run_until = dsh_simcore::Delta::from_ms(25);
    }
    let loads: &[f64] = if args.full { &[0.3, 0.5, 0.7, 0.8, 0.9] } else { &[0.3, 0.5, 0.7, 0.9] };

    println!("Fig. 17 — lossless (PFC) vs lossy (drop + recover) under load");
    header();
    let points = fig17::sweep(loads, &base, &ex);
    let mut docs: Vec<Json> = Vec::new();
    for p in &points {
        check_point(p);
        for (cell, r) in p.per_cell() {
            print_row(p.load, cell, r);
            if args.json {
                docs.push(json_row(p.load, cell, r));
            }
        }
    }
    println!();
    println!("pause_us = PFC pause wall-clock summed over ports (0 by construction when lossy);");
    println!("hdrm_B = buffer statically reserved as headroom; retx_B includes GBN rewinds.");
    if args.json {
        let doc = Json::object()
            .with("provenance", dsh_bench::provenance(args))
            .with("points", Json::Arr(docs));
        println!("{doc}");
    }
    // Representative observe-armed run (the base cell at the base load)
    // for the --metrics export (no-op without --metrics / DSH_METRICS).
    fig17::export_metrics(args, &base);
}
