//! Fig. 16 (extension): BShare delay-target × DT α sensitivity grid
//! under the Fig. 14 traffic mix (DCQCN, web search, 0.9 total load).
//!
//! ```bash
//! cargo run --release -p dsh-bench --bin fig16_scheme_params \
//!     [--full] [--json] [--smoke] [--seed N] [--threads N] [--workers N] \
//!     [--fidelity SPEC]
//! ```

use dsh_bench::fabric::{FctExperiment, Topo};
use dsh_bench::fig16;
use dsh_core::Scheme;
use dsh_simcore::{Delta, Json};
use dsh_transport::CcKind;

fn main() {
    let args = dsh_bench::Args::parse();
    dsh_bench::with_trace(&args, || run(&args));
}

fn run(args: &dsh_bench::Args) {
    let mut base = FctExperiment::small(Scheme::BShare, CcKind::Dcqcn);
    base.seed = args.seed;
    base.workers = args.sim_workers();
    base.fidelity = args.fidelity;
    if args.full {
        base.topo = Topo::PAPER_LEAF_SPINE;
        base.horizon = Delta::from_ms(10);
        base.run_until = Delta::from_ms(30);
    }
    if args.smoke {
        base.horizon = Delta::from_us(400);
        base.run_until = Delta::from_ms(2);
    }
    let (targets, alphas): (Vec<u64>, Vec<f64>) = if args.smoke {
        (vec![20], vec![1.0 / 16.0])
    } else if args.full {
        ((5..=40).step_by(5).collect(), vec![1.0 / 32.0, 1.0 / 16.0, 1.0 / 8.0, 0.5, 1.0, 2.0])
    } else {
        (vec![5, 10, 20, 40], vec![1.0 / 32.0, 1.0 / 16.0, 0.5, 2.0])
    };

    println!("Fig. 16 — BShare delay target × DT α (DCQCN, web search @0.9)");
    let points = fig16::sweep(&targets, &alphas, &base, &args.executor());
    println!(
        "{:>12} {:>10} {:>14} {:>14} {:>8}",
        "target(us)", "alpha", "avg FCT(ms)", "p99 FCT(ms)", "flows"
    );
    let mut docs: Vec<Json> = Vec::new();
    for p in &points {
        println!(
            "{:>12} {:>10.4} {:>14.3} {:>14.3} {:>8}",
            p.delay_target_us, p.alpha, p.avg_fct_ms, p.p99_fct_ms, p.completed
        );
        if args.json {
            docs.push(
                Json::object()
                    .with("delay_target_us", p.delay_target_us)
                    .with("alpha", p.alpha)
                    .with("avg_fct_ms", p.avg_fct_ms)
                    .with("p99_fct_ms", p.p99_fct_ms)
                    .with("completed", p.completed as u64),
            );
        }
    }
    if args.smoke {
        let p = points.first().expect("smoke grid has one cell");
        assert!(p.completed > 0, "smoke cell completed no flows");
        assert!(p.avg_fct_ms.is_finite(), "smoke cell produced no FCT summary");
        println!("smoke OK: {} flows, avg {:.3} ms", p.completed, p.avg_fct_ms);
    }
    if args.json {
        let doc = Json::object()
            .with("provenance", dsh_bench::provenance(args))
            .with("scheme", Scheme::BShare.to_string())
            .with("points", Json::Arr(docs));
        println!("{doc}");
    }
    // Representative observe-armed run for the --metrics export (no-op
    // without --metrics / DSH_METRICS).
    dsh_bench::fabric::export_fct_metrics(args, &base);
}
