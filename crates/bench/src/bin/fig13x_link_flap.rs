//! Fig. 13x (robustness extension): FCT slowdown vs link-flap frequency.
//!
//! ```bash
//! cargo run --release -p dsh-bench --bin fig13x_link_flap \
//!     [--full] [--smoke] [--seed N] [--threads N]
//! ```
//!
//! `--smoke` runs one CI-sized flapped SIH/DSH pair and asserts the
//! recovery invariants (no wedged flow, faults actually dropped frames,
//! MMU audit clean — the audit is checked inside the run itself).

use dsh_bench::fig13x::{self, FlapExperiment, FlapPoint};
use dsh_core::Scheme;
use dsh_simcore::Delta;
use dsh_transport::CcKind;

fn main() {
    let args = dsh_bench::Args::parse();
    let ex = args.executor();

    if args.smoke {
        let mut base = fig13x::smoke_base(Scheme::Sih);
        base.seed = args.seed;
        let points = fig13x::sweep(&[Some(Delta::from_us(300))], &base, &ex);
        let p = &points[0];
        for (name, r) in [("SIH", &p.sih), ("DSH", &p.dsh)] {
            println!(
                "[smoke {name}] completed={} failed={} wedged={} link_drops={} retx={}",
                r.completed, r.failed, r.wedged, r.link_drops, r.retransmissions
            );
            assert_eq!(r.wedged, 0, "{name}: a flow wedged under flaps");
            assert!(r.link_drops > 0, "{name}: flap run lost no frames — fault path idle");
        }
        println!("smoke OK");
        return;
    }

    let mut base = FlapExperiment::small(Scheme::Sih, CcKind::Dcqcn);
    base.seed = args.seed;
    if args.full {
        base.hosts_per_leaf = 8;
        base.flow_size = 4_000_000;
        base.flap_until = Delta::from_ms(8);
        base.run_until = Delta::from_ms(16);
    }
    let periods: Vec<Option<Delta>> = if args.full {
        vec![None, Some(Delta::from_us(800)), Some(Delta::from_us(400)), Some(Delta::from_us(200))]
    } else {
        vec![None, Some(Delta::from_us(600)), Some(Delta::from_us(300))]
    };

    println!("Fig. 13x — cross-rack FCT under leaf–spine uplink flaps (DCQCN, 60us outages)");
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "period_us",
        "SIH p50x",
        "DSH p50x",
        "SIH drops",
        "DSH drops",
        "SIH retx",
        "DSH retx",
        "SIH c/f",
        "DSH c/f"
    );
    let points = fig13x::sweep(&periods, &base, &ex);
    let baseline = points[0];
    for p in &points {
        let period =
            p.period.map_or_else(|| "none".to_string(), |d| d.as_ns().div_euclid(1000).to_string());
        println!(
            "{:>10} {:>10.3} {:>10.3} {:>10} {:>10} {:>10} {:>10} {:>8} {:>8}",
            period,
            FlapPoint::slowdown(&p.sih, &baseline.sih).unwrap_or(f64::NAN),
            FlapPoint::slowdown(&p.dsh, &baseline.dsh).unwrap_or(f64::NAN),
            p.sih.link_drops,
            p.dsh.link_drops,
            p.sih.retransmissions,
            p.dsh.retransmissions,
            format!("{}/{}", p.sih.completed, p.sih.failed),
            format!("{}/{}", p.dsh.completed, p.dsh.failed),
        );
        assert_eq!(p.sih.wedged + p.dsh.wedged, 0, "wedged flows under flaps");
    }
    println!();
    println!("p50x = p50 FCT normalized to the fault-free baseline of the same scheme;");
    println!("c/f = completed/failed flows. Every lost frame is recovered by go-back-N.");
}
