//! Fig. 13x (robustness extension): FCT slowdown vs link-flap frequency.
//!
//! ```bash
//! cargo run --release -p dsh-bench --bin fig13x_link_flap \
//!     [--full] [--smoke] [--json] [--seed N] [--threads N] [--workers N] [--trace out.json]
//! ```
//!
//! `--smoke` runs one CI-sized flapped run per scheme (SIH/DSH/BShare)
//! and asserts the recovery invariants (no wedged flow, faults actually
//! dropped frames, MMU audit clean — the audit is checked inside the run
//! itself). With `--trace` the smoke run additionally parses the Chrome
//! trace it just wrote and asserts it contains PFC pause spans and fault
//! instants, so CI validates the whole tracing pipeline with one command.

use dsh_bench::fig13x::{self, FlapExperiment, FlapPoint};
use dsh_core::Scheme;
use dsh_simcore::{ByteSize, Delta, Json};
use dsh_transport::CcKind;

fn main() {
    let args = dsh_bench::Args::parse();
    dsh_bench::with_trace(&args, || run(&args));
    if args.smoke {
        if let Some(path) = args.trace.as_deref() {
            validate_trace(path);
        }
    }
}

/// Smoke-mode self-check: the emitted Chrome trace must parse and must
/// contain at least one PFC pause span and one fault instant — the two
/// signals a flap run cannot be without.
fn validate_trace(path: &str) {
    let text = std::fs::read_to_string(path).expect("trace file just written must be readable");
    let doc = Json::parse(&text).expect("emitted trace must be valid JSON");
    let events = doc.get("traceEvents").and_then(Json::as_arr).expect("traceEvents array");
    let pause_spans = events
        .iter()
        .filter(|e| {
            e.get("ph").and_then(Json::as_str) == Some("B")
                && e.get("name").and_then(Json::as_str).is_some_and(|n| n.contains("pause"))
        })
        .count();
    // pid 5 is the fault track (link death/repair, corruption, drains).
    let fault_instants = events
        .iter()
        .filter(|e| {
            e.get("ph").and_then(Json::as_str) == Some("i")
                && e.get("pid").and_then(Json::as_u64) == Some(5)
        })
        .count();
    assert!(pause_spans >= 1, "traced smoke run produced no PFC pause span");
    assert!(fault_instants >= 1, "traced smoke run produced no fault instant");
    println!("[smoke] trace OK: {pause_spans} pause spans, {fault_instants} fault instants");
}

fn run(args: &dsh_bench::Args) {
    let ex = args.executor();

    if args.smoke {
        let mut base = fig13x::smoke_base(Scheme::Sih);
        base.seed = args.seed;
        base.workers = args.sim_workers();
        // A 3 MiB buffer (vs the 16 MiB Tomahawk default) leaves just
        // ~0.6 MiB shared after private + headroom reservations, so the
        // rerouted fan-in crosses the PFC thresholds and the traced
        // smoke run has real pause/resume spans to validate.
        base.buffer = Some(ByteSize::mib(3));
        let points = fig13x::sweep(&[Some(Delta::from_us(300))], &base, &ex);
        let p = &points[0];
        for (scheme, r) in p.per_scheme() {
            println!(
                "[smoke {scheme}] completed={} failed={} wedged={} link_drops={} retx={}",
                r.completed, r.failed, r.wedged, r.link_drops, r.retransmissions
            );
            assert_eq!(r.wedged, 0, "{scheme}: a flow wedged under flaps");
            assert!(r.link_drops > 0, "{scheme}: flap run lost no frames — fault path idle");
        }
        println!("smoke OK");
        return;
    }

    let mut base = FlapExperiment::small(Scheme::Sih, CcKind::Dcqcn);
    base.seed = args.seed;
    base.workers = args.sim_workers();
    if args.full {
        base.hosts_per_leaf = 8;
        base.flow_size = 4_000_000;
        base.flap_until = Delta::from_ms(8);
        base.run_until = Delta::from_ms(16);
    }
    let periods: Vec<Option<Delta>> = if args.full {
        vec![None, Some(Delta::from_us(800)), Some(Delta::from_us(400)), Some(Delta::from_us(200))]
    } else {
        vec![None, Some(Delta::from_us(600)), Some(Delta::from_us(300))]
    };

    println!("Fig. 13x — cross-rack FCT under leaf–spine uplink flaps (DCQCN, 60us outages)");
    println!(
        "{:>10} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "period_us", "scheme", "p50x", "drops", "retx", "c/f"
    );
    let points = fig13x::sweep(&periods, &base, &ex);
    let baseline = points[0];
    let mut docs: Vec<Json> = Vec::new();
    for p in &points {
        let period =
            p.period.map_or_else(|| "none".to_string(), |d| d.as_ns().div_euclid(1000).to_string());
        for ((scheme, r), (_, base_r)) in p.per_scheme().into_iter().zip(baseline.per_scheme()) {
            let slowdown = FlapPoint::slowdown(r, base_r);
            println!(
                "{:>10} {:>8} {:>8.3} {:>8} {:>8} {:>8}",
                period,
                scheme.to_string(),
                slowdown.unwrap_or(f64::NAN),
                r.link_drops,
                r.retransmissions,
                format!("{}/{}", r.completed, r.failed),
            );
            assert_eq!(r.wedged, 0, "{scheme}: wedged flows under flaps");
            if args.json {
                docs.push(
                    Json::object()
                        .with("scheme", scheme.to_string().to_ascii_lowercase())
                        .with("period_us", p.period.map_or(0, |d| d.as_ns().div_euclid(1000)))
                        .with("slowdown", slowdown.unwrap_or(f64::NAN))
                        .with("link_drops", r.link_drops)
                        .with("retransmissions", r.retransmissions)
                        .with("completed", r.completed as u64)
                        .with("failed", r.failed)
                        .with("events", r.events),
                );
            }
        }
    }
    println!();
    println!("p50x = p50 FCT normalized to the fault-free baseline of the same scheme;");
    println!("c/f = completed/failed flows. Every lost frame is recovered by go-back-N.");
    if args.json {
        let doc = Json::object()
            .with("provenance", dsh_bench::provenance(args))
            .with("points", Json::Arr(docs));
        println!("{doc}");
    }
}
