//! Fig. 13x (robustness extension): FCT slowdown vs link-flap frequency.
//!
//! ```bash
//! cargo run --release -p dsh-bench --bin fig13x_link_flap \
//!     [--full] [--smoke] [--seed N] [--threads N] [--trace out.json]
//! ```
//!
//! `--smoke` runs one CI-sized flapped SIH/DSH pair and asserts the
//! recovery invariants (no wedged flow, faults actually dropped frames,
//! MMU audit clean — the audit is checked inside the run itself). With
//! `--trace` the smoke run additionally parses the Chrome trace it just
//! wrote and asserts it contains PFC pause spans and fault instants, so
//! CI validates the whole tracing pipeline with one command.

use dsh_bench::fig13x::{self, FlapExperiment, FlapPoint};
use dsh_core::Scheme;
use dsh_simcore::{ByteSize, Delta, Json};
use dsh_transport::CcKind;

fn main() {
    let args = dsh_bench::Args::parse();
    dsh_bench::with_trace(&args, || run(&args));
    if args.smoke {
        if let Some(path) = args.trace.as_deref() {
            validate_trace(path);
        }
    }
}

/// Smoke-mode self-check: the emitted Chrome trace must parse and must
/// contain at least one PFC pause span and one fault instant — the two
/// signals a flap run cannot be without.
fn validate_trace(path: &str) {
    let text = std::fs::read_to_string(path).expect("trace file just written must be readable");
    let doc = Json::parse(&text).expect("emitted trace must be valid JSON");
    let events = doc.get("traceEvents").and_then(Json::as_arr).expect("traceEvents array");
    let pause_spans = events
        .iter()
        .filter(|e| {
            e.get("ph").and_then(Json::as_str) == Some("B")
                && e.get("name").and_then(Json::as_str).is_some_and(|n| n.contains("pause"))
        })
        .count();
    // pid 5 is the fault track (link death/repair, corruption, drains).
    let fault_instants = events
        .iter()
        .filter(|e| {
            e.get("ph").and_then(Json::as_str) == Some("i")
                && e.get("pid").and_then(Json::as_u64) == Some(5)
        })
        .count();
    assert!(pause_spans >= 1, "traced smoke run produced no PFC pause span");
    assert!(fault_instants >= 1, "traced smoke run produced no fault instant");
    println!("[smoke] trace OK: {pause_spans} pause spans, {fault_instants} fault instants");
}

fn run(args: &dsh_bench::Args) {
    let ex = args.executor();

    if args.smoke {
        let mut base = fig13x::smoke_base(Scheme::Sih);
        base.seed = args.seed;
        // A 3 MiB buffer (vs the 16 MiB Tomahawk default) leaves just
        // ~0.6 MiB shared after private + headroom reservations, so the
        // rerouted fan-in crosses the PFC thresholds and the traced
        // smoke run has real pause/resume spans to validate.
        base.buffer = Some(ByteSize::mib(3));
        let points = fig13x::sweep(&[Some(Delta::from_us(300))], &base, &ex);
        let p = &points[0];
        for (name, r) in [("SIH", &p.sih), ("DSH", &p.dsh)] {
            println!(
                "[smoke {name}] completed={} failed={} wedged={} link_drops={} retx={}",
                r.completed, r.failed, r.wedged, r.link_drops, r.retransmissions
            );
            assert_eq!(r.wedged, 0, "{name}: a flow wedged under flaps");
            assert!(r.link_drops > 0, "{name}: flap run lost no frames — fault path idle");
        }
        println!("smoke OK");
        return;
    }

    let mut base = FlapExperiment::small(Scheme::Sih, CcKind::Dcqcn);
    base.seed = args.seed;
    if args.full {
        base.hosts_per_leaf = 8;
        base.flow_size = 4_000_000;
        base.flap_until = Delta::from_ms(8);
        base.run_until = Delta::from_ms(16);
    }
    let periods: Vec<Option<Delta>> = if args.full {
        vec![None, Some(Delta::from_us(800)), Some(Delta::from_us(400)), Some(Delta::from_us(200))]
    } else {
        vec![None, Some(Delta::from_us(600)), Some(Delta::from_us(300))]
    };

    println!("Fig. 13x — cross-rack FCT under leaf–spine uplink flaps (DCQCN, 60us outages)");
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "period_us",
        "SIH p50x",
        "DSH p50x",
        "SIH drops",
        "DSH drops",
        "SIH retx",
        "DSH retx",
        "SIH c/f",
        "DSH c/f"
    );
    let points = fig13x::sweep(&periods, &base, &ex);
    let baseline = points[0];
    for p in &points {
        let period =
            p.period.map_or_else(|| "none".to_string(), |d| d.as_ns().div_euclid(1000).to_string());
        println!(
            "{:>10} {:>10.3} {:>10.3} {:>10} {:>10} {:>10} {:>10} {:>8} {:>8}",
            period,
            FlapPoint::slowdown(&p.sih, &baseline.sih).unwrap_or(f64::NAN),
            FlapPoint::slowdown(&p.dsh, &baseline.dsh).unwrap_or(f64::NAN),
            p.sih.link_drops,
            p.dsh.link_drops,
            p.sih.retransmissions,
            p.dsh.retransmissions,
            format!("{}/{}", p.sih.completed, p.sih.failed),
            format!("{}/{}", p.dsh.completed, p.dsh.failed),
        );
        assert_eq!(p.sih.wedged + p.dsh.wedged, 0, "wedged flows under flaps");
    }
    println!();
    println!("p50x = p50 FCT normalized to the fault-free baseline of the same scheme;");
    println!("c/f = completed/failed flows. Every lost frame is recovered by go-back-N.");
}
