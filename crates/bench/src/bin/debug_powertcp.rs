//! Scratch diagnostic: PowerTCP convergence in a 16:1 incast.

use dsh_core::Scheme;
use dsh_net::{FlowSpec, NetParams, NetworkBuilder};
use dsh_simcore::{Bandwidth, Delta, Time};
use dsh_transport::CcKind;

fn main() {
    let mut b = NetworkBuilder::new(NetParams::tomahawk(Scheme::Sih));
    let hosts: Vec<_> = (0..17).map(|_| b.host()).collect();
    let sw = b.switch();
    for &h in &hosts {
        b.link(h, sw, Bandwidth::from_gbps(100), Delta::from_us(2));
    }
    let mut net = b.build();
    let mut ids = vec![];
    for &src in &hosts[..16] {
        ids.push(net.add_flow(FlowSpec {
            src,
            dst: hosts[16],
            size: 4_000_000,
            class: 0,
            start: Time::ZERO,
            cc: CcKind::PowerTcp,
        }));
    }
    net.monitor_flow(ids[0]);
    let mut sim = net.into_sim();
    for step in 1..=30u64 {
        sim.run_until(Time::from_us(step * 100));
        let net = sim.model();
        let st = net.mmu_stats();
        let (cwnd, inflight) = net.flow_cc_state(ids[0]).unwrap_or((0, 0));
        println!(
            "t={:>5}us rx0={:>8}B cwnd={:>8} inflight={:>7} pauses={} resumes={} done={} drops={}",
            step * 100,
            net.flow_rx_bytes(ids[0]),
            cwnd,
            inflight,
            st.queue_pauses,
            st.queue_resumes,
            net.fct_records().len(),
            net.data_drops(),
        );
    }
}
