//! Fig. 4: trends of buffer in Broadcom's switching chips.
//!
//! ```bash
//! cargo run --release -p dsh-bench --bin fig04_headroom_trend [--trace out.json]
//! ```

fn main() {
    let args = dsh_bench::Args::parse();
    // No simulation runs here (the figure is a table of chip specs), so
    // `--trace` writes a valid but empty Chrome trace.
    dsh_bench::with_trace(&args, run);
}

fn run() {
    println!("Fig. 4 — Trends of buffer in Broadcom switching chips");
    println!(
        "{:<12} {:>6} {:>10} {:>12} {:>12} {:>14} {:>10}",
        "chip", "year", "capacity", "buffer(MiB)", "hdrm(MiB)", "buf/cap(us)", "hdrm frac"
    );
    for r in dsh_bench::fig04::rows() {
        println!(
            "{:<12} {:>6} {:>7}G {:>12.1} {:>12.2} {:>14.1} {:>9.1}%",
            r.chip.name,
            r.chip.year,
            r.chip.capacity_gbps,
            r.buffer_mib,
            r.headroom_mib,
            r.us_per_capacity,
            r.headroom_fraction * 100.0
        );
    }
    println!();
    println!("paper: buffer/capacity fell 157us -> 37us (4x); headroom fraction rose 43% -> 67%");
}
