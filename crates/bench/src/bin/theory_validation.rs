//! Theorems 1 & 2: closed-form burst-absorption bounds vs the fluid model.
//!
//! ```bash
//! cargo run --release -p dsh-bench --bin theory_validation [--trace out.json]
//! ```

use dsh_bench::theory;
use dsh_core::headroom::{eta, sonic_headroom};
use dsh_simcore::{Bandwidth, Delta};

fn main() {
    let args = dsh_bench::Args::parse();
    // The fluid model runs outside the event engine, so `--trace` writes
    // a valid but empty Chrome trace.
    dsh_bench::with_trace(&args, run);
}

fn run() {
    println!("Theorems 1-2 — burst absorption bounds (normalized time units)");
    println!(
        "{:>6} {:>4} {:>14} {:>14} {:>14} {:>14} {:>10}",
        "R", "Nq", "DSH closed", "DSH fluid", "SIH closed", "SIH fluid", "DSH/SIH"
    );
    for row in theory::validate(&[1.5, 2.0, 4.0, 8.0], &[2, 4, 7]) {
        println!(
            "{:>6.1} {:>4} {:>14.1} {:>14.1} {:>14.1} {:>14.1} {:>10.2}",
            row.r,
            row.nq,
            row.dsh_closed,
            row.dsh_fluid,
            row.sih_closed,
            row.sih_fluid,
            row.dsh_closed / row.sih_closed
        );
    }
    println!();
    println!("remark check: DSH columns are constant in Nq; SIH shrinks as Nq grows");

    // Headroom-source cross-check: SONiC's per-port formula
    // 2·C·D_cable + 2·MTU + C·t_peer equals the paper's Eq. 1 exactly when
    // the peer-response allowance C·t_peer matches Eq. 1's fixed
    // 3840-byte PFC processing term (307.2 ns at 100 Gb/s).
    println!();
    println!("headroom-source check: SONiC formula vs Eq. 1 (100G, 2us cable, 1500B MTU)");
    let (cap, cable, mtu) = (Bandwidth::from_gbps(100), Delta::from_us(2), 1500);
    let paper = eta(cap, cable, mtu);
    let sonic = sonic_headroom(cap, cable, mtu, Delta::from_ps(307_200));
    println!("  Eq. 1: {paper}   SONiC(t_peer=307.2ns): {sonic}");
    assert_eq!(paper, sonic, "SONiC headroom must reduce to Eq. 1 at t_peer = 3840B/C");
}
