//! Theorems 1 & 2: closed-form burst-absorption bounds vs the fluid model.
//!
//! ```bash
//! cargo run --release -p dsh-bench --bin theory_validation [--trace out.json]
//! ```

use dsh_bench::theory;

fn main() {
    let args = dsh_bench::Args::parse();
    // The fluid model runs outside the event engine, so `--trace` writes
    // a valid but empty Chrome trace.
    dsh_bench::with_trace(&args, run);
}

fn run() {
    println!("Theorems 1-2 — burst absorption bounds (normalized time units)");
    println!(
        "{:>6} {:>4} {:>14} {:>14} {:>14} {:>14} {:>10}",
        "R", "Nq", "DSH closed", "DSH fluid", "SIH closed", "SIH fluid", "DSH/SIH"
    );
    for row in theory::validate(&[1.5, 2.0, 4.0, 8.0], &[2, 4, 7]) {
        println!(
            "{:>6.1} {:>4} {:>14.1} {:>14.1} {:>14.1} {:>14.1} {:>10.2}",
            row.r,
            row.nq,
            row.dsh_closed,
            row.dsh_fluid,
            row.sih_closed,
            row.sih_fluid,
            row.dsh_closed / row.sih_closed
        );
    }
    println!();
    println!("remark check: DSH columns are constant in Nq; SIH shrinks as Nq grows");
}
