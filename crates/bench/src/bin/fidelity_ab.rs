//! Fidelity A-B harness: runs the Fig. 14 / Fig. 15 experiment grids
//! under both engine fidelities (pure packet vs hybrid fluid/packet) and
//! checks the hybrid fast path against the packet-level ground truth.
//!
//! The harness runs two hybrid profiles against one set of packet
//! baselines (see DESIGN.md §14 for why they are separate):
//!
//! - **accuracy** (`hybrid`, util threshold 1.0): a link leaves the
//!   fluid fast path the moment demand reaches capacity, so every
//!   contended byte sees real queueing/ECN/PFC dynamics. Stated
//!   tolerance, asserted: per-size-bucket FCT mean/p50/p99 within 25%
//!   relative (10 µs absolute floor) on buckets with enough samples,
//!   and *exactly* zero pause wall-clock / drop deltas on PFC-free
//!   cells.
//! - **speed** (`hybrid:64`): saturated links stay fluid, which prices
//!   large-flow FCTs at the max-min ideal (DCQCN steady state without
//!   the sawtooth — a documented optimistic bias, reported per bucket
//!   but not gated). Asserted instead: ≥5× wall-clock gain on the
//!   fig14 low/mid-load cells.
//!
//! A steady-state packet-mode probe re-asserts the zero-allocation
//! contract of the packet hot path (`allocs_per_packet = 0`).
//!
//! Without `--smoke` the run writes the full comparison to
//! `BENCH_PR8.json`.
//!
//! ```bash
//! cargo run --release -p dsh-bench --bin fidelity_ab -- \
//!     [--smoke] [--json] [--seed N] [--workers N] [--fidelity SPEC]
//! ```

use dsh_analysis::fct::FctSummary;
use dsh_bench::fabric::{run_fct_instrumented, FctExperiment, InstrumentedFct, Topo};
use dsh_core::Scheme;
use dsh_net::{FidelityMode, FlowSpec, NetParams, NetworkBuilder};
use dsh_simcore::{Bandwidth, Delta, Json, Time};
use dsh_transport::CcKind;
use dsh_workloads::Workload;

/// Counts heap allocations so the packet-path probe can assert the
/// steady-state window allocates nothing (DESIGN.md §10).
mod alloc_probe {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    pub static ALLOCS: AtomicU64 = AtomicU64::new(0);

    pub struct Counting;

    unsafe impl GlobalAlloc for Counting {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.alloc(layout) }
        }
        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.alloc_zeroed(layout) }
        }
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.realloc(ptr, layout, new_size) }
        }
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }
    }
}

#[global_allocator]
static ALLOC: alloc_probe::Counting = alloc_probe::Counting;

/// FCT size buckets (upper bounds, bytes); the last bucket is open.
const BUCKETS: [(u64, &str); 4] =
    [(10_000, "<10KB"), (100_000, "10KB-100KB"), (1_000_000, "100KB-1MB"), (u64::MAX, ">=1MB")];

/// Relative tolerance for per-bucket FCT mean and p50.
const REL_TOL: f64 = 0.25;
/// Relative tolerance for per-bucket FCT p99: the tail of an O(100)
/// sample bucket is a single order statistic, so its run-to-run spread
/// is far wider than the mean's.
const P99_REL_TOL: f64 = 0.40;
/// Absolute floor below which a statistic delta always passes (seconds).
const ABS_TOL_SECS: f64 = 10e-6;
/// The speed profile: keep saturated links fluid until offered load
/// exceeds 64× capacity (in practice: always fluid unless an
/// MMU/ECN/PFC/fault trigger fires on a packet-mode neighbour).
const FAST_UTIL_THRESHOLD: f64 = 64.0;
/// Required wall-clock gain on the fig14 low/mid-load cells under the
/// speed profile.
const MIN_SPEEDUP: f64 = 5.0;
/// Background loads at or below this count as "low/mid" for the speedup
/// gate.
const LOW_MID_BG: f64 = 0.35;
/// Buckets thinner than this in either mode are reported but not gated.
const MIN_BUCKET_FLOWS: usize = 20;
/// p99 is only gated on buckets with enough samples for the tail
/// estimate to be meaningful (below this, p99 is just the bucket max).
const MIN_P99_FLOWS: usize = 50;

/// One A-B cell: a labelled experiment plus whether it must stay
/// PFC-free (no fan-in, light load — pause/drop deltas must be exactly
/// zero under both fidelities).
struct Cell {
    label: String,
    pfc_free: bool,
    exp: FctExperiment,
}

fn cells(args: &dsh_bench::Args) -> Vec<Cell> {
    let mut base = FctExperiment::small(Scheme::Dsh, CcKind::Dcqcn);
    base.seed = args.seed;
    base.workers = args.sim_workers();
    if args.smoke {
        base.horizon = Delta::from_us(400);
        base.run_until = Delta::from_ms(2);
    }
    let mut cells = Vec::new();
    // Fig. 14 panel: background-load sweep. The no-fan-in light-load
    // cells are the fluid fast path's home turf and must stay PFC-free.
    let loads: &[f64] = if args.smoke { &[0.3] } else { &[0.1, 0.3, 0.5] };
    for &bg in loads {
        cells.push(Cell {
            label: format!("fig14/bg{bg}"),
            // At the smoke horizon every no-fan-in cell stays PFC-free;
            // at the full 2 ms horizon only the lightest one does (0.3+
            // web-search bursts occasionally trip PFC even without
            // fan-in).
            pfc_free: args.smoke || bg <= 0.1,
            exp: FctExperiment { bg_load: bg, fanin_load: 0.0, ..base },
        });
    }
    // Fig. 14 paper mix (0.9 total with 16:1 fan-in bursts): contended,
    // PFC possible — the tolerance band is the check here.
    cells.push(Cell {
        label: "fig14/paper0.9".to_string(),
        pfc_free: false,
        exp: FctExperiment { bg_load: 0.6, fanin_load: 0.3, ..base },
    });
    if !args.smoke {
        // Fig. 15 panels: a second workload on leaf–spine and the
        // fat-tree variant.
        cells.push(Cell {
            label: "fig15/hadoop-ls".to_string(),
            pfc_free: false,
            exp: FctExperiment {
                workload: Workload::Hadoop,
                bg_load: 0.6,
                fanin_load: 0.3,
                ..base
            },
        });
        cells.push(Cell {
            label: "fig15/websearch-ft4".to_string(),
            pfc_free: false,
            exp: FctExperiment {
                topo: Topo::FatTree { k: 4 },
                bg_load: 0.6,
                fanin_load: 0.3,
                ..base
            },
        });
    }
    cells
}

/// Per-bucket FCT summaries of one run.
fn bucket_summaries(run: &InstrumentedFct) -> Vec<(usize, Option<FctSummary>)> {
    BUCKETS
        .iter()
        .enumerate()
        .map(|(i, &(hi, _))| {
            let lo = if i == 0 { 0 } else { BUCKETS[i - 1].0 };
            let fcts: Vec<Delta> = run
                .records
                .iter()
                .filter(|r| r.size >= lo && r.size < hi)
                .map(dsh_net::FctRecord::fct)
                .collect();
            (fcts.len(), FctSummary::from_fcts(&fcts))
        })
        .collect()
}

/// Relative-or-absolute agreement check between one statistic pair.
fn within_tol(packet: f64, hybrid: f64, rel: f64) -> bool {
    let abs = (packet - hybrid).abs();
    abs <= ABS_TOL_SECS || abs <= rel * packet.max(1e-12)
}

/// Compares per-bucket FCT statistics between two runs. Returns the
/// per-bucket JSON and, when `gate` is set, the number of out-of-band
/// statistics on buckets with enough samples (always zero when `gate`
/// is false — the speed profile reports its bias, it is not held to the
/// accuracy band).
fn compare_buckets(
    label: &str,
    packet: &InstrumentedFct,
    hybrid: &InstrumentedFct,
    gate: bool,
) -> (Vec<Json>, usize) {
    let pb = bucket_summaries(packet);
    let hb = bucket_summaries(hybrid);
    let mut bucket_docs: Vec<Json> = Vec::new();
    let mut violations = 0usize;
    for (i, &(_, name)) in BUCKETS.iter().enumerate() {
        let (pn, ps) = (pb[i].0, pb[i].1);
        let (hn, hs) = (hb[i].0, hb[i].1);
        let (Some(ps), Some(hs)) = (ps, hs) else { continue };
        let gated = gate && pn >= MIN_BUCKET_FLOWS && hn >= MIN_BUCKET_FLOWS;
        let p99_gated = gated && pn >= MIN_P99_FLOWS && hn >= MIN_P99_FLOWS;
        let checks = [
            ("mean", ps.avg_secs, hs.avg_secs, REL_TOL, gated),
            ("p50", ps.p50_secs, hs.p50_secs, REL_TOL, gated),
            ("p99", ps.p99_secs, hs.p99_secs, P99_REL_TOL, p99_gated),
        ];
        for (stat, p, h, rel, gated) in checks {
            if gated && !within_tol(p, h, rel) {
                violations += 1;
                eprintln!(
                    "TOLERANCE [{label}] {name} {stat}: packet {:.1} us vs hybrid {:.1} us",
                    p * 1e6,
                    h * 1e6
                );
            }
        }
        bucket_docs.push(
            Json::object()
                .with("bucket", name)
                .with("count_packet", pn as u64)
                .with("count_hybrid", hn as u64)
                .with("gated", gated)
                .with(
                    "mean_us",
                    Json::Arr(vec![(ps.avg_secs * 1e6).into(), (hs.avg_secs * 1e6).into()]),
                )
                .with(
                    "p50_us",
                    Json::Arr(vec![(ps.p50_secs * 1e6).into(), (hs.p50_secs * 1e6).into()]),
                )
                .with(
                    "p99_us",
                    Json::Arr(vec![(ps.p99_secs * 1e6).into(), (hs.p99_secs * 1e6).into()]),
                ),
        );
    }
    (bucket_docs, violations)
}

/// Exact-zero pause/drop deltas on a PFC-free cell, for both runs.
fn assert_pfc_free(label: &str, packet: &InstrumentedFct, hybrid: &InstrumentedFct) {
    assert_eq!(
        (packet.pause_wall, hybrid.pause_wall),
        (Delta::ZERO, Delta::ZERO),
        "[{label}] PFC-free cell saw pause wall-clock"
    );
    assert_eq!(
        (packet.result.drops, hybrid.result.drops),
        (0, 0),
        "[{label}] PFC-free cell saw drops"
    );
}

fn mode_json(run: &InstrumentedFct) -> Json {
    let mut doc = Json::object()
        .with("wall_ms", run.wall.as_secs_f64() * 1e3)
        .with("events", run.events)
        .with("events_per_sec", run.events as f64 / run.wall.as_secs_f64().max(1e-9))
        .with("pause_wall_us", run.pause_wall.as_ns() as f64 / 1e3)
        .with("drops", run.result.drops)
        .with("completed", run.result.completed as u64);
    if let Some(stats) = run.fidelity {
        doc = doc
            .with("escalations", stats.escalations)
            .with("deescalations", stats.deescalations)
            .with("fluid_flows", stats.fluid_flows)
            .with("fluid_completions", stats.fluid_completions)
            .with("materializations", stats.materializations)
            .with("fluid_bytes", stats.fluid_bytes);
    }
    doc
}

/// One comparison line on stdout.
fn report(profile: &str, label: &str, packet: &InstrumentedFct, hybrid: &InstrumentedFct) -> f64 {
    let speedup = packet.wall.as_secs_f64() / hybrid.wall.as_secs_f64().max(1e-9);
    let stats = hybrid.fidelity.unwrap_or_default();
    println!(
        "[{profile} {label}] packet {:>8.1} ms / hybrid {:>8.1} ms  speedup {:>5.2}x  \
         escalations {}  fluid flows {}/{}",
        packet.wall.as_secs_f64() * 1e3,
        hybrid.wall.as_secs_f64() * 1e3,
        speedup,
        stats.escalations,
        stats.fluid_flows,
        hybrid.result.registered,
    );
    speedup
}

fn cell_json(
    cell: &Cell,
    packet: &InstrumentedFct,
    hybrid: &InstrumentedFct,
    speedup: f64,
    buckets: Vec<Json>,
) -> Json {
    Json::object()
        .with("label", cell.label.as_str())
        .with("pfc_free", cell.pfc_free)
        .with("packet", mode_json(packet))
        .with("hybrid", mode_json(hybrid))
        .with("speedup", speedup)
        .with("buckets", Json::Arr(buckets))
}

fn main() {
    let args = dsh_bench::Args::parse();
    let hybrid_mode =
        if args.fidelity.is_hybrid() { args.fidelity } else { FidelityMode::hybrid_default() };
    let fast_mode =
        FidelityMode::Hybrid { util_threshold: FAST_UTIL_THRESHOLD, quiesce: Delta::from_us(100) };

    println!(
        "Fidelity A-B (DSH, DCQCN): packet vs {} (accuracy) and {} (speed)",
        hybrid_mode.spec(),
        fast_mode.spec()
    );

    // Accuracy pass: every cell, default (threshold-1.0) hybrid, stated
    // tolerance asserted. Packet baselines are kept for the speed pass.
    let cells = cells(&args);
    let mut packet_runs: Vec<InstrumentedFct> = Vec::new();
    let mut accuracy_docs: Vec<Json> = Vec::new();
    let mut violations = 0usize;
    for cell in &cells {
        let packet =
            run_fct_instrumented(&FctExperiment { fidelity: FidelityMode::Packet, ..cell.exp });
        let hybrid = run_fct_instrumented(&FctExperiment { fidelity: hybrid_mode, ..cell.exp });
        let speedup = report("accuracy", &cell.label, &packet, &hybrid);
        if cell.pfc_free {
            assert_pfc_free(&cell.label, &packet, &hybrid);
        }
        let (buckets, cell_violations) = compare_buckets(&cell.label, &packet, &hybrid, true);
        violations += cell_violations;
        accuracy_docs.push(cell_json(cell, &packet, &hybrid, speedup, buckets));
        packet_runs.push(packet);
    }
    assert_eq!(violations, 0, "{violations} per-bucket FCT tolerance violations");

    // Speed pass: fig14 background-load cells only, aggressive
    // threshold, reusing the packet baselines. The gate here is the
    // wall-clock gain on the low/mid-load cells; bucket deltas are
    // reported (the max-min bias is documented, not asserted away).
    let mut speed_docs: Vec<Json> = Vec::new();
    let mut low_mid_min = f64::INFINITY;
    for (cell, packet) in cells.iter().zip(&packet_runs) {
        if !cell.label.starts_with("fig14/bg") {
            continue;
        }
        let fast = run_fct_instrumented(&FctExperiment { fidelity: fast_mode, ..cell.exp });
        let speedup = report("speed", &cell.label, packet, &fast);
        if cell.pfc_free {
            assert_pfc_free(&cell.label, packet, &fast);
        }
        let (buckets, _) = compare_buckets(&cell.label, packet, &fast, false);
        if cell.exp.bg_load <= LOW_MID_BG {
            low_mid_min = low_mid_min.min(speedup);
        }
        speed_docs.push(cell_json(cell, packet, &fast, speedup, buckets));
    }
    assert!(
        low_mid_min >= MIN_SPEEDUP,
        "speed profile gained only {low_mid_min:.2}x on a fig14 low/mid-load cell \
         (target >= {MIN_SPEEDUP}x)"
    );

    let (allocs_per_packet, probe_events_per_sec) = packet_probe();
    println!(
        "packet probe: {allocs_per_packet:.4} allocs/packet, {probe_events_per_sec:.0} events/s"
    );

    let doc = Json::object()
        .with("provenance", dsh_bench::provenance(&args))
        .with(
            "accuracy",
            Json::object()
                .with("hybrid", hybrid_mode.spec())
                .with("tolerance_rel", REL_TOL)
                .with("tolerance_rel_p99", P99_REL_TOL)
                .with("tolerance_abs_us", ABS_TOL_SECS * 1e6)
                .with("cells", Json::Arr(accuracy_docs)),
        )
        .with(
            "speed",
            Json::object()
                .with("hybrid", fast_mode.spec())
                .with("min_speedup_low_mid", low_mid_min)
                .with("target_speedup", MIN_SPEEDUP)
                .with("cells", Json::Arr(speed_docs)),
        )
        .with("allocs_per_packet", allocs_per_packet)
        .with("probe_events_per_sec", probe_events_per_sec);
    if args.json {
        println!("{doc}");
    }
    if args.smoke {
        println!("fidelity A-B smoke OK");
    } else {
        let path = "BENCH_PR8.json";
        std::fs::write(path, doc.to_string()).expect("write BENCH_PR8.json");
        println!("wrote {path}");
    }
}

/// Steady-state packet-path probe (the 8-to-1 incast of the engine
/// benches): after a 100 µs warmup the measurement window must not heap
/// allocate at all — the hybrid engine must not have put allocations
/// back on the packet hot path. Returns `(allocs_per_packet,
/// events_per_sec)`.
fn packet_probe() -> (f64, f64) {
    let mut bld = NetworkBuilder::new(NetParams::tomahawk(Scheme::Dsh).without_ecn());
    let hosts: Vec<_> = (0..9).map(|_| bld.host()).collect();
    let sw = bld.switch();
    for &h in &hosts {
        bld.link(h, sw, Bandwidth::from_gbps(100), Delta::from_us(2));
    }
    let mut net = bld.build();
    for &src in &hosts[..8] {
        net.add_flow(FlowSpec {
            src,
            dst: hosts[8],
            size: 256 * 1024,
            class: 0,
            start: Time::ZERO,
            cc: CcKind::Uncontrolled,
        });
    }
    let mut sim = net.into_sim();
    sim.run_until(Time::from_us(100));
    let allocs0 = alloc_probe::ALLOCS.load(std::sync::atomic::Ordering::Relaxed);
    let events0 = sim.events_processed();
    let packets0 = sim.model().packets_delivered();
    let wall = std::time::Instant::now();
    sim.run_until(Time::from_us(400));
    let wall = wall.elapsed();
    let allocs = alloc_probe::ALLOCS.load(std::sync::atomic::Ordering::Relaxed) - allocs0;
    let events = sim.events_processed() - events0;
    let packets = sim.model().packets_delivered() - packets0;
    assert!(packets > 0, "probe window saw no deliveries");
    assert_eq!(allocs, 0, "packet hot path allocated {allocs} times in the steady-state window");
    (allocs as f64 / packets as f64, events as f64 / wall.as_secs_f64().max(1e-9))
}
