//! Fig. 5: average FCT vs switch buffer size (PowerTCP, web search, 0.9),
//! swept for every scheme (SIH/DSH/BShare).
//!
//! ```bash
//! cargo run --release -p dsh-bench --bin fig05_fct_vs_buffer \
//!     [--full] [--json] [--seed N] [--threads N] [--workers N]
//! ```

use dsh_bench::fabric::{FctExperiment, Topo};
use dsh_bench::fig05;
use dsh_core::Scheme;
use dsh_simcore::{Delta, Json};
use dsh_transport::CcKind;

fn main() {
    let args = dsh_bench::Args::parse();
    dsh_bench::with_trace(&args, || run(&args));
}

fn run(args: &dsh_bench::Args) {
    let (full, seed) = (args.full, args.seed);
    let mut base = FctExperiment::small(Scheme::Sih, CcKind::PowerTcp);
    base.seed = seed;
    base.workers = args.sim_workers();
    base.fidelity = args.fidelity;
    if full {
        base.topo = Topo::PAPER_LEAF_SPINE;
        base.horizon = Delta::from_ms(10);
        base.run_until = Delta::from_ms(30);
    }
    let buffers: Vec<u64> =
        if full { (14..=30).step_by(2).collect() } else { vec![14, 18, 22, 26, 30] };
    println!("Fig. 5 — average FCT vs buffer size (PowerTCP, web search @0.9)");
    let curves = fig05::sweep_schemes(&buffers, &base, &args.executor());
    let mut docs: Vec<Json> = Vec::new();
    for (scheme, points) in &curves {
        println!("[{scheme}]");
        println!("{:>12} {:>14} {:>10}", "buffer(MiB)", "avg FCT(ms)", "flows");
        for p in points {
            println!("{:>12} {:>14.3} {:>10}", p.buffer_mib, p.avg_fct_ms, p.completed);
            if args.json {
                docs.push(
                    Json::object()
                        .with("scheme", scheme.to_string())
                        .with("buffer_mib", p.buffer_mib)
                        .with("avg_fct_ms", p.avg_fct_ms)
                        .with("completed", p.completed as u64),
                );
            }
        }
    }
    println!();
    println!("paper: FCT with 14MB is 78.1% worse than with 30MB (SIH)");
    if args.json {
        let doc = Json::object()
            .with("provenance", dsh_bench::provenance(args))
            .with("points", Json::Arr(docs));
        println!("{doc}");
    }
    // Representative observe-armed run for the --metrics export (no-op
    // without --metrics / DSH_METRICS).
    dsh_bench::fabric::export_fct_metrics(args, &base);
}
