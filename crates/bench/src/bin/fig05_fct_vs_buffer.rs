//! Fig. 5: average FCT vs switch buffer size (PowerTCP, web search, 0.9).
//!
//! ```bash
//! cargo run --release -p dsh-bench --bin fig05_fct_vs_buffer [--full] [--seed N] [--threads N]
//! ```

use dsh_bench::fabric::{FctExperiment, Topo};
use dsh_bench::fig05;
use dsh_core::Scheme;
use dsh_simcore::Delta;
use dsh_transport::CcKind;

fn main() {
    let args = dsh_bench::Args::parse();
    dsh_bench::with_trace(&args, || run(&args));
}

fn run(args: &dsh_bench::Args) {
    let (full, seed) = (args.full, args.seed);
    let mut base = FctExperiment::small(Scheme::Sih, CcKind::PowerTcp);
    base.seed = seed;
    if full {
        base.topo = Topo::PAPER_LEAF_SPINE;
        base.horizon = Delta::from_ms(10);
        base.run_until = Delta::from_ms(30);
    }
    let buffers: Vec<u64> =
        if full { (14..=30).step_by(2).collect() } else { vec![14, 18, 22, 26, 30] };
    println!("Fig. 5 — average FCT vs buffer size (SIH, PowerTCP, web search @0.9)");
    println!("{:>12} {:>14} {:>10}", "buffer(MiB)", "avg FCT(ms)", "flows");
    for p in fig05::sweep(&buffers, &base, &args.executor()) {
        println!("{:>12} {:>14.3} {:>10}", p.buffer_mib, p.avg_fct_ms, p.completed);
    }
    println!();
    println!("paper: FCT with 14MB is 78.1% worse than with 30MB");
}
