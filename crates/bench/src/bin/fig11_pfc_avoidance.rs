//! Fig. 11: total PFC pause duration of fan-in flows vs burst size.
//!
//! ```bash
//! cargo run --release -p dsh-bench --bin fig11_pfc_avoidance [--full] [--json] [--threads N]
//! ```
//!
//! `--json` additionally prints, per measured point, one JSON document
//! with the run's network telemetry embedded.

use dsh_bench::fig11;
use dsh_simcore::Json;

fn main() {
    let args = dsh_bench::Args::parse();
    dsh_bench::with_trace(&args, || run(&args));
}

fn run(args: &dsh_bench::Args) {
    let points: Vec<f64> = if args.full {
        (1..=12).map(|i| i as f64 * 0.05).collect()
    } else {
        vec![0.05, 0.10, 0.20, 0.30, 0.40, 0.50]
    };
    println!("Fig. 11 — PFC avoidance (pause duration vs burst size, 32-port Tomahawk)");
    println!("{:>10} {:>14} {:>14}", "burst(%B)", "SIH pause(ms)", "DSH pause(ms)");
    let mut docs: Vec<Json> = Vec::new();
    for ((sih, sih_tel), (dsh, dsh_tel)) in
        fig11::sweep_pairs_with_telemetry(&points, &args.executor())
    {
        println!("{:>9.0}% {:>14.3} {:>14.3}", sih.burst_pct * 100.0, sih.pause_ms, dsh.pause_ms);
        if args.json {
            for (scheme, point, tel) in [("sih", sih, sih_tel), ("dsh", dsh, dsh_tel)] {
                docs.push(
                    Json::object()
                        .with("scheme", scheme)
                        .with("burst_pct", point.burst_pct)
                        .with("pause_ms", point.pause_ms)
                        .with("telemetry", tel),
                );
            }
        }
    }
    println!();
    println!("paper: DSH absorbs bursts up to ~40% of buffer pause-free, >4x SIH");
    if args.json {
        let doc = Json::object()
            .with("provenance", dsh_bench::provenance(args))
            .with("points", Json::Arr(docs));
        println!("{doc}");
    }
}
