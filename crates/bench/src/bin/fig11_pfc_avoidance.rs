//! Fig. 11: total PFC pause duration of fan-in flows vs burst size.
//!
//! ```bash
//! cargo run --release -p dsh-bench --bin fig11_pfc_avoidance [--full] [--json] [--threads N]
//! ```
//!
//! `--json` additionally prints, per measured point, one JSON document
//! with the run's network telemetry embedded.

use dsh_bench::fig11;
use dsh_core::Scheme;
use dsh_simcore::Json;

fn main() {
    let args = dsh_bench::Args::parse();
    dsh_bench::with_trace(&args, || run(&args));
}

fn run(args: &dsh_bench::Args) {
    let points: Vec<f64> = if args.full {
        (1..=12).map(|i| i as f64 * 0.05).collect()
    } else {
        vec![0.05, 0.10, 0.20, 0.30, 0.40, 0.50]
    };
    println!("Fig. 11 — PFC avoidance (pause duration vs burst size, 32-port Tomahawk)");
    print!("{:>10}", "burst(%B)");
    for scheme in Scheme::ALL {
        print!(" {:>17}", format!("{scheme} pause(ms)"));
    }
    println!();
    let mut docs: Vec<Json> = Vec::new();
    for runs in fig11::sweep_schemes_with_telemetry(&points, &args.executor()) {
        print!("{:>9.0}%", runs[0].1.burst_pct * 100.0);
        for (_, point, _) in &runs {
            print!(" {:>17.3}", point.pause_ms);
        }
        println!();
        if args.json {
            for (scheme, point, tel) in runs {
                docs.push(
                    Json::object()
                        .with("scheme", scheme.to_string().to_ascii_lowercase())
                        .with("burst_pct", point.burst_pct)
                        .with("pause_ms", point.pause_ms)
                        .with("telemetry", tel),
                );
            }
        }
    }
    println!();
    println!("paper: DSH absorbs bursts up to ~40% of buffer pause-free, >4x SIH");
    if args.json {
        let doc = Json::object()
            .with("provenance", dsh_bench::provenance(args))
            .with("points", Json::Arr(docs));
        println!("{doc}");
    }
}
