//! Fig. 11: total PFC pause duration of fan-in flows vs burst size.
//!
//! ```bash
//! cargo run --release -p dsh-bench --bin fig11_pfc_avoidance [--full]
//! ```

use dsh_bench::fig11;
use dsh_core::Scheme;

fn main() {
    let (full, _) = dsh_bench::parse_args();
    let points: Vec<f64> = if full {
        (1..=12).map(|i| i as f64 * 0.05).collect()
    } else {
        vec![0.05, 0.10, 0.20, 0.30, 0.40, 0.50]
    };
    println!("Fig. 11 — PFC avoidance (pause duration vs burst size, 32-port Tomahawk)");
    println!("{:>10} {:>14} {:>14}", "burst(%B)", "SIH pause(ms)", "DSH pause(ms)");
    for &p in &points {
        let sih = fig11::pause_duration(Scheme::Sih, p);
        let dsh = fig11::pause_duration(Scheme::Dsh, p);
        println!("{:>9.0}% {:>14.3} {:>14.3}", p * 100.0, sih.pause_ms, dsh.pause_ms);
    }
    println!();
    println!("paper: DSH absorbs bursts up to ~40% of buffer pause-free, >4x SIH");
}
