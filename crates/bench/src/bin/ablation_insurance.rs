//! Ablation: what happens to DSH *without* its port-level flow control
//! and insurance headroom (DESIGN.md §IV-A idea 1)?
//!
//! Queue-level-only DSH drops packets under adversarial multi-queue
//! incast: the queue-level threshold `T − η` cannot bound the sum of all
//! queues. This regenerates the data behind the paper's argument that the
//! insurance headroom is what makes DSH *provably* lossless.
//!
//! ```bash
//! cargo run --release -p dsh-bench --bin ablation_insurance
//! ```

use dsh_core::{Mmu, MmuConfig, Scheme};

/// Drives an adversarial pattern against a chip-level MMU: every queue of
/// every port bursts in lockstep with the pause feedback delayed by one
/// "RTT" of in-flight packets. Returns (drops, port_pauses).
fn adversarial(cfg: MmuConfig) -> (u64, u64) {
    let ports = cfg.num_ports;
    let queues = cfg.queues_per_port;
    let eta = cfg.eta.as_u64();
    let mut mmu = Mmu::new(cfg);
    // Each (port, queue) keeps sending until it has seen a pause AND
    // delivered eta more bytes (the worst-case in-flight allowance).
    let mut budget = vec![u64::MAX; ports * queues];
    for _round in 0..100_000 {
        let mut active = false;
        for p in 0..ports {
            for q in 0..queues {
                let i = p * queues + q;
                if budget[i] == 0 {
                    continue;
                }
                active = true;
                let bytes = 1500.min(budget[i]);
                let out = mmu.on_arrival(p, q, bytes, dsh_simcore::Time::ZERO);
                if budget[i] != u64::MAX {
                    budget[i] = budget[i].saturating_sub(bytes);
                }
                for a in out.actions {
                    match a {
                        dsh_core::FcAction::QueuePause { port, queue } => {
                            let j = port * queues + queue;
                            if budget[j] == u64::MAX {
                                budget[j] = eta;
                            }
                        }
                        dsh_core::FcAction::PortPause { port } => {
                            for qq in 0..queues {
                                let j = port * queues + qq;
                                if budget[j] == u64::MAX {
                                    budget[j] = eta / queues as u64;
                                }
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
        if !active {
            break;
        }
    }
    let st = mmu.stats();
    (st.dropped_packets, st.port_pauses)
}

fn main() {
    println!("Ablation — DSH with vs without port-level FC + insurance headroom");
    println!("(adversarial all-queue lockstep burst, pause feedback delayed by eta)");
    let full = MmuConfig::tomahawk(Scheme::Dsh);
    let mut b = MmuConfig::builder();
    b.scheme(Scheme::Dsh).without_dsh_port_fc();
    let ablated = b.build();

    let (d_full, pp_full) = adversarial(full);
    let (d_abl, pp_abl) = adversarial(ablated);
    println!("  DSH (full)         : drops = {d_full:>6}, port pauses = {pp_full}");
    println!("  DSH (no insurance) : drops = {d_abl:>6}, port pauses = {pp_abl}");
    assert_eq!(d_full, 0, "full DSH must be lossless");
    println!();
    if d_abl > 0 {
        println!("=> queue-level flow control alone cannot guarantee losslessness;");
        println!("   the per-port insurance headroom (Eq. 4) is what closes the proof.");
    } else {
        println!("=> no drops in this pattern; increase adversarial pressure.");
    }
}
