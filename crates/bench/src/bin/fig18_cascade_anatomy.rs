//! Fig. 18 (extension): cascade anatomy — PFC pause propagation under
//! incast.
//!
//! ```bash
//! cargo run --release -p dsh-bench --bin fig18_cascade_anatomy \
//!     [--full] [--smoke] [--json] [--seed N] [--threads N] [--workers N] \
//!     [--metrics out.json] [--metrics-interval NS] [--metrics-format json|prom]
//! ```
//!
//! Sweeps incast degree × {SIH, DSH, BShare} on a two-tier fabric with
//! an oversubscribed receiver and prints, per cell, the cascade forest's
//! anatomy: cascade count, max depth/fan-out, p50/p99 edge duration,
//! host-NIC reach, and the victim-vs-self pause attribution. `--smoke`
//! runs the 8-to-1 DSH cell and hard-asserts the acceptance contract: at
//! least one cascade of depth ≥ 2 whose victim-flow attribution is
//! nonzero, clean audits, zero drops, no cycle findings. With
//! `--metrics` the smoke run re-parses its own export before declaring
//! success.

use dsh_bench::fig18::{self, Fig18Experiment, Fig18Point, Fig18Result};
use dsh_core::Scheme;
use dsh_simcore::Json;

fn main() {
    let args = dsh_bench::Args::parse();
    dsh_bench::with_trace(&args, || run(&args));
}

fn header() {
    println!(
        "{:>6} {:>7} {:>8} {:>5} {:>6} {:>9} {:>9} {:>8} {:>10} {:>10}",
        "degree",
        "scheme",
        "cascades",
        "depth",
        "fanout",
        "p50_us",
        "p99_us",
        "nic_edges",
        "victim_us",
        "self_us"
    );
}

fn print_row(degree: usize, scheme: Scheme, r: &Fig18Result) {
    let c = &r.cascades;
    println!(
        "{:>6} {:>7} {:>8} {:>5} {:>6} {:>9.1} {:>9.1} {:>8} {:>10} {:>10}",
        degree,
        format!("{scheme:?}"),
        c.count,
        c.max_depth,
        c.max_fanout,
        c.p50_duration.as_ns() as f64 / 1e3,
        c.p99_duration.as_ns() as f64 / 1e3,
        c.host_nic_edges,
        r.victim_ns.div_euclid(1000),
        r.self_ns.div_euclid(1000),
    );
}

fn json_row(degree: usize, scheme: Scheme, r: &Fig18Result) -> Json {
    Json::object()
        .with("degree", degree as u64)
        .with("scheme", format!("{scheme:?}"))
        .with("pause_cascades", r.cascades.to_json())
        .with("victim_ns", r.victim_ns)
        .with("self_congested_ns", r.self_ns)
        .with("pause_wall_ns", r.pause_wall_ns)
        .with("completed", r.completed as u64)
        .with("events", r.events)
}

/// Re-parses a freshly written `--metrics` export and sanity-checks the
/// document shape, so a malformed export fails the run instead of
/// shipping to a dashboard.
fn reparse_metrics(args: &dsh_bench::Args) {
    let Some(path) = args.metrics.as_deref() else { return };
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("metrics export {path} unreadable: {e}"));
    match args.metrics_format {
        dsh_bench::MetricsFormat::Json => {
            let doc = Json::parse(&text)
                .unwrap_or_else(|e| panic!("metrics export {path} is not valid JSON: {e}"));
            let version = doc.get("version").and_then(Json::as_u64);
            assert_eq!(version, Some(1), "metrics export {path} missing version 1");
            let switches = doc.get("switches").and_then(Json::as_arr);
            assert!(
                switches.is_some_and(|s| !s.is_empty()),
                "metrics export {path} has no per-switch series"
            );
            let samples = doc.get("samples").and_then(Json::as_u64).unwrap_or(0);
            assert!(samples > 0, "metrics export {path} recorded no samples");
        }
        dsh_bench::MetricsFormat::Prom => {
            assert!(
                text.lines().any(|l| l.starts_with("dsh_switch_shared_bytes")),
                "Prometheus export {path} has no gauge samples"
            );
        }
    }
    eprintln!("[dsh] metrics export re-parsed OK: {path}");
}

fn run(args: &dsh_bench::Args) {
    let ex = args.executor();

    if args.smoke {
        let mut base = fig18::smoke_base(Scheme::Dsh);
        base.seed = args.seed;
        base.workers = args.sim_workers();
        base.fidelity = args.fidelity;
        if let Some(cfg) = dsh_bench::observe_config(args) {
            base.observe = cfg;
        }
        let (r, net) = fig18::run_cell_net(&base);
        header();
        print_row(base.degree, base.scheme, &r);
        let c = &r.cascades;
        assert!(c.count >= 1, "smoke incast produced no cascade");
        assert!(c.max_depth >= 2, "smoke cascade never propagated past the root");
        assert!(c.host_nic_edges >= 1, "smoke cascade never reached a sender NIC");
        assert!(r.victim_ns > 0, "smoke run attributed no victim pause time");
        assert!(c.cycles.is_empty(), "cycle finding on an acyclic topology: {:?}", c.cycles);
        assert_eq!(r.completed, r.registered, "smoke incast flows wedged");
        dsh_bench::write_metrics(args, &net);
        reparse_metrics(args);
        println!("smoke OK");
        return;
    }

    let mut base = Fig18Experiment::small(Scheme::Dsh);
    base.seed = args.seed;
    base.workers = args.sim_workers();
    base.fidelity = args.fidelity;
    if let Some(cfg) = dsh_bench::observe_config(args) {
        base.observe = cfg;
    }
    let degrees: &[usize] = if args.full { &[4, 8, 16, 32] } else { &[4, 8, 16] };

    println!("Fig. 18 — cascade anatomy: pause propagation under N-to-1 incast");
    header();
    let points: Vec<Fig18Point> = fig18::sweep(degrees, &base, &ex);
    let mut docs: Vec<Json> = Vec::new();
    for p in &points {
        for (scheme, r) in p.per_scheme() {
            print_row(p.degree, scheme, r);
            if args.json {
                docs.push(json_row(p.degree, scheme, r));
            }
        }
    }
    println!();
    println!("depth = deepest who-paused-whom chain (1 = pause stayed at the root switch);");
    println!("victim_us = flow pause exposure from depth>=2 edges (congestion cascaded back");
    println!("to an innocent NIC); self_us = exposure where the flow's own root congested.");
    if args.json {
        let doc = Json::object()
            .with("provenance", dsh_bench::provenance(args))
            .with("points", Json::Arr(docs));
        println!("{doc}");
    }
    // The export samples the representative (degree-8) cell of the base
    // scheme rather than the whole sweep: one network, one time series.
    if args.metrics.is_some() {
        let (_r, net) = fig18::run_cell_net(&base);
        dsh_bench::write_metrics(args, &net);
        reparse_metrics(args);
    }
}
