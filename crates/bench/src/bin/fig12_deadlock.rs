//! Fig. 12: deadlock onset-time CDF with cyclic buffer dependencies.
//!
//! ```bash
//! cargo run --release -p dsh-bench --bin fig12_deadlock [--full] [--threads N]
//! ```

use dsh_bench::fig12::{self, Fig12Config};
use dsh_core::Scheme;
use dsh_transport::CcKind;

fn main() {
    let args = dsh_bench::Args::parse();
    dsh_bench::with_trace(&args, || run(&args));
}

fn run(args: &dsh_bench::Args) {
    let full = args.full;
    let ex = args.executor();
    let cfg = if full { Fig12Config::full() } else { Fig12Config::small() };
    let runs = if full { 100 } else { 10 };
    println!("Fig. 12 — deadlock avoidance (2 spines x 4 leaves, failures S0-L3 & S1-L0)");
    println!("{runs} runs per cell, fan-in {}, load {}", cfg.fan_in, cfg.load);
    for cc in [CcKind::Dcqcn, CcKind::PowerTcp] {
        for scheme in [Scheme::Sih, Scheme::Dsh] {
            let outcomes = fig12::run_many(scheme, cc, &cfg, runs, &ex);
            let frac = fig12::deadlock_fraction(&outcomes);
            let mut onsets: Vec<f64> =
                outcomes.iter().filter_map(|r| r.onset.map(|t| t.as_ms_f64())).collect();
            onsets.sort_by(|a, b| a.partial_cmp(b).unwrap());
            print!("{scheme}/{cc}: deadlocked {:>5.1}% ", frac * 100.0);
            if onsets.is_empty() {
                println!("(no deadlocks)");
            } else {
                println!("onset ms: {onsets:.1?}");
            }
        }
    }
    // Extension: the industry PFC-watchdog mitigation on the SIH fabric.
    let wd_cfg = fig12::Fig12Config { watchdog: Some(cfg.detect_threshold), ..cfg };
    let wd = fig12::run_many(Scheme::Sih, CcKind::Dcqcn, &wd_cfg, runs, &ex);
    let drops: u64 = wd.iter().map(|r| r.watchdog_drops).sum();
    println!(
        "SIH/DCQCN + watchdog (extension): deadlocked {:>5.1}%, frames dropped {drops}",
        fig12::deadlock_fraction(&wd) * 100.0
    );
    println!();
    println!("paper: SIH deadlocks in 100% of runs; DSH avoids 96% (DCQCN) / 100% (PowerTCP)");
    println!("extension: the watchdog breaks SIH's deadlocks only by dropping frames");
}
