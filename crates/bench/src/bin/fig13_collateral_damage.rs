//! Fig. 13: throughput of the innocent flow F0 under a 24:1 fan-in burst.
//!
//! ```bash
//! cargo run --release -p dsh-bench --bin fig13_collateral_damage [--threads N]
//! ```

use dsh_bench::fig13;
use dsh_transport::CcKind;

fn main() {
    let args = dsh_bench::Args::parse();
    dsh_bench::with_trace(&args, || run(&args));
}

fn run(args: &dsh_bench::Args) {
    println!("Fig. 13 — collateral damage mitigation (victim flow F0 goodput)");
    let triples =
        fig13::sweep(&[CcKind::Uncontrolled, CcKind::Dcqcn, CcKind::PowerTcp], &args.executor());
    for (cc, sih, dsh) in triples {
        println!("\n[{cc}]");
        println!("{:>10} {:>12} {:>12}", "t(us)", "SIH(Gb/s)", "DSH(Gb/s)");
        for (a, b) in sih.iter().zip(&dsh).step_by(4) {
            println!("{:>10.0} {:>12.1} {:>12.1}", a.time.as_us_f64(), a.gbps, b.gbps);
        }
        println!(
            "post-burst min: SIH {:>6.1} Gb/s | DSH {:>6.1} Gb/s",
            fig13::post_burst_min(&sih),
            fig13::post_burst_min(&dsh)
        );
    }
    println!(
        "\npaper: SIH drags F0 to ~0; DSH keeps it near 50 Gb/s; CC alone cannot help within 1 RTT"
    );
}
