//! Fig. 14: average FCT (normalized to SIH) vs background-traffic load,
//! for fan-in and background flows, under DCQCN and PowerTCP.
//!
//! Total load is held at 0.9: background `x`, fan-in `0.9 − x`.

use crate::fabric::{run_fct, FctExperiment, FctResult};
use dsh_core::Scheme;
use dsh_transport::CcKind;

/// One point of Fig. 14: both schemes at one background load.
#[derive(Clone, Copy, Debug)]
pub struct Fig14Point {
    /// Background load.
    pub bg_load: f64,
    /// SIH result.
    pub sih: FctResult,
    /// DSH result.
    pub dsh: FctResult,
}

impl Fig14Point {
    /// DSH avg fan-in FCT normalized to SIH (the paper's y-axis).
    #[must_use]
    pub fn norm_fan(&self) -> Option<f64> {
        Some(self.dsh.fan?.normalized_avg(&self.sih.fan?))
    }

    /// DSH avg background FCT normalized to SIH.
    #[must_use]
    pub fn norm_bg(&self) -> Option<f64> {
        Some(self.dsh.bg?.normalized_avg(&self.sih.bg?))
    }
}

/// Runs one load point of Fig. 14.
#[must_use]
pub fn run_point(cc: CcKind, bg_load: f64, base: &FctExperiment) -> Fig14Point {
    let total = 0.9;
    let mk = |scheme| {
        let exp =
            FctExperiment { scheme, cc, bg_load, fanin_load: (total - bg_load).max(0.0), ..*base };
        run_fct(&exp)
    };
    Fig14Point { bg_load, sih: mk(Scheme::Sih), dsh: mk(Scheme::Dsh) }
}

/// Sweeps the paper's background loads.
#[must_use]
pub fn sweep(cc: CcKind, loads: &[f64], base: &FctExperiment) -> Vec<Fig14Point> {
    loads.iter().map(|&l| run_point(cc, l, base)).collect()
}
