//! Fig. 14: average FCT (normalized to SIH) vs background-traffic load,
//! for fan-in and background flows, under DCQCN and PowerTCP.
//!
//! Total load is held at 0.9: background `x`, fan-in `0.9 − x`.

use crate::fabric::{run_fct, run_fct_pair, FctExperiment, FctResult};
use dsh_core::Scheme;
use dsh_simcore::Executor;
use dsh_transport::CcKind;

/// One point of Fig. 14: both schemes at one background load.
#[derive(Clone, Copy, Debug)]
pub struct Fig14Point {
    /// Background load.
    pub bg_load: f64,
    /// SIH result.
    pub sih: FctResult,
    /// DSH result.
    pub dsh: FctResult,
}

impl Fig14Point {
    /// DSH avg fan-in FCT normalized to SIH (the paper's y-axis).
    #[must_use]
    pub fn norm_fan(&self) -> Option<f64> {
        Some(self.dsh.fan?.normalized_avg(&self.sih.fan?))
    }

    /// DSH avg background FCT normalized to SIH.
    #[must_use]
    pub fn norm_bg(&self) -> Option<f64> {
        Some(self.dsh.bg?.normalized_avg(&self.sih.bg?))
    }
}

/// The experiment of one (load, scheme) cell; total load is the paper's
/// 0.9.
fn point_exp(cc: CcKind, bg_load: f64, scheme: Scheme, base: &FctExperiment) -> FctExperiment {
    FctExperiment { scheme, cc, bg_load, fanin_load: (0.9 - bg_load).max(0.0), ..*base }
}

/// Runs one load point of Fig. 14 (its SIH/DSH pair in parallel).
#[must_use]
pub fn run_point(cc: CcKind, bg_load: f64, base: &FctExperiment, ex: &Executor) -> Fig14Point {
    let (sih, dsh) = run_fct_pair(&point_exp(cc, bg_load, Scheme::Sih, base), ex);
    Fig14Point { bg_load, sih, dsh }
}

/// Sweeps the paper's background loads on the pool.
///
/// The (load × scheme) grid is flattened into one `par_map` so every
/// worker stays busy even when the sweep has fewer points than threads.
#[must_use]
pub fn sweep(cc: CcKind, loads: &[f64], base: &FctExperiment, ex: &Executor) -> Vec<Fig14Point> {
    let grid: Vec<(f64, Scheme)> =
        loads.iter().flat_map(|&l| [(l, Scheme::Sih), (l, Scheme::Dsh)]).collect();
    let results = ex.par_map(grid, |(l, scheme)| run_fct(&point_exp(cc, l, scheme, base)));
    let mut results = results.into_iter();
    loads
        .iter()
        .map(|&bg_load| {
            let sih = results.next().expect("one SIH result per load");
            let dsh = results.next().expect("one DSH result per load");
            Fig14Point { bg_load, sih, dsh }
        })
        .collect()
}
