//! Fig. 11: PFC avoidance — total pause duration of the fan-in flows as
//! a function of burst size (% of buffer), SIH vs DSH.
//!
//! Scenario (Fig. 11a): a 32-port Tomahawk; two long-lived background
//! flows from ports 0 and 1 to port 31; at `t₁` sixteen fan-in flows from
//! ports 2–17 burst toward port 30.

use dsh_core::Scheme;
use dsh_net::{FlowSpec, NetParams, NetworkBuilder, NodeId};
use dsh_simcore::{Bandwidth, Delta, Executor, Time};
use dsh_transport::CcKind;

/// One measured point of Fig. 11b.
#[derive(Clone, Copy, Debug)]
pub struct Fig11Point {
    /// Burst size as a fraction of the 16 MB buffer.
    pub burst_pct: f64,
    /// Total pause duration across all fan-in senders (ms).
    pub pause_ms: f64,
}

/// Runs the Fig. 11 scenario for one burst size.
#[must_use]
pub fn pause_duration(scheme: Scheme, burst_pct: f64) -> Fig11Point {
    pause_duration_with_telemetry(scheme, burst_pct).0
}

/// Like [`pause_duration`], but also returns the run's JSON-serialized
/// network telemetry ([`dsh_net::Network::telemetry_report`]).
#[must_use]
pub fn pause_duration_with_telemetry(
    scheme: Scheme,
    burst_pct: f64,
) -> (Fig11Point, dsh_simcore::Json) {
    let params = NetParams::tomahawk(scheme).without_ecn();
    let mut b = NetworkBuilder::new(params);
    let hosts: Vec<NodeId> = (0..32).map(|_| b.host()).collect();
    let sw = b.switch();
    for &h in &hosts {
        b.link(h, sw, Bandwidth::from_gbps(100), Delta::from_us(2));
    }
    let mut net = b.build();

    // Background flows: ports 0 and 1 -> port 31 (long-lived, keep the
    // shared pool partially used, exactly the theory's N = 2).
    for &src in &hosts[..2] {
        net.add_flow(FlowSpec {
            src,
            dst: hosts[31],
            size: 200_000_000,
            class: 0,
            start: Time::ZERO,
            cc: CcKind::Uncontrolled,
        });
    }
    // Fan-in burst: ports 2..17 -> port 30.
    let buffer = 16.0 * 1024.0 * 1024.0;
    let per_sender = (burst_pct * buffer / 16.0) as u64;
    let burst_start = Time::from_ms(1);
    for &src in &hosts[2..18] {
        net.add_flow(FlowSpec {
            src,
            dst: hosts[30],
            size: per_sender.max(1),
            class: 0,
            start: burst_start,
            cc: CcKind::Uncontrolled,
        });
    }

    let mut sim = net.into_sim();
    let end = Time::from_ms(30);
    sim.run_until(end);
    let net = sim.into_model();
    let report = net.telemetry_report(end);
    let violations = report.lossless_violations();
    assert!(violations.is_empty(), "Fig. 11 run violated losslessness:\n{}", violations.join("\n"));

    // Total pause time of the fan-in flows = pause asserted at their
    // hosts' uplinks (queue-level + port-level).
    let fan_hosts: Vec<NodeId> = hosts[2..18].to_vec();
    let total: Delta =
        net.pause_ledgers(end).filter(|l| fan_hosts.contains(&l.node)).map(|l| l.total()).sum();
    (Fig11Point { burst_pct, pause_ms: total.as_ms_f64() }, report.to_json())
}

/// Sweeps burst sizes (fractions of the buffer) for one scheme on the
/// pool.
#[must_use]
pub fn sweep(scheme: Scheme, points: &[f64], ex: &Executor) -> Vec<Fig11Point> {
    ex.par_map(points.to_vec(), |p| pause_duration(scheme, p))
}

/// Runs every scheme for every burst size on the pool, with each run's
/// telemetry; result is one `Vec` per point with [`Scheme::ALL`]-order
/// entries, in input point order.
#[must_use]
pub fn sweep_schemes_with_telemetry(
    points: &[f64],
    ex: &Executor,
) -> Vec<Vec<(Scheme, Fig11Point, dsh_simcore::Json)>> {
    let grid: Vec<(Scheme, f64)> =
        points.iter().flat_map(|&p| Scheme::ALL.map(|scheme| (scheme, p))).collect();
    let mut runs = ex
        .par_map(grid, |(scheme, p)| {
            let (point, tel) = pause_duration_with_telemetry(scheme, p);
            (scheme, point, tel)
        })
        .into_iter();
    points
        .iter()
        .map(|_| Scheme::ALL.iter().map(|_| runs.next().expect("full grid")).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dsh_is_pause_free_where_sih_pauses() {
        // 20% of buffer: beyond SIH's footroom, comfortably within DSH's.
        let sih = pause_duration(Scheme::Sih, 0.20);
        let dsh = pause_duration(Scheme::Dsh, 0.20);
        assert!(sih.pause_ms > 0.0, "SIH must pause at 20% ({})", sih.pause_ms);
        assert_eq!(dsh.pause_ms, 0.0, "DSH must absorb 20% pause-free");
    }
}
