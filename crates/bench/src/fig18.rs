//! Fig. 18 (extension, not in the paper): cascade anatomy — the
//! structure of PFC pause propagation under incast.
//!
//! The paper's case for DSH is causal: static per-port headroom is
//! wasteful *because* pause cascades are rare, shallow, and short. This
//! figure measures that structure directly. A two-tier incast (N senders
//! behind switch A, an oversubscribed receiver behind switch B) drives a
//! textbook cascade — the receiver's slow downlink backs traffic up into
//! B, B pauses A (depth 1), A fills and pauses the sender NICs
//! (depth 2) — and the pause-causality tracker ([`dsh_net::observe`])
//! records every who-paused-whom edge. Sweeping incast degree ×
//! {SIH, DSH, BShare} yields the cascade depth/duration distributions
//! and the victim-flow attribution that explain *why* less headroom is
//! safe.

use crate::fabric::run_net;
use dsh_core::Scheme;
use dsh_net::ObserveConfig;
use dsh_net::{CascadeReport, FidelityMode, FlowSpec, NetParams, Network, NetworkBuilder};
use dsh_simcore::{Bandwidth, ByteSize, Delta, Executor, Time};
use dsh_transport::CcKind;

/// One cascade-anatomy experiment: an N-to-1 incast across two switches
/// with an oversubscribed receiver downlink.
#[derive(Clone, Copy, Debug)]
pub struct Fig18Experiment {
    /// Headroom scheme.
    pub scheme: Scheme,
    /// Incast degree: senders behind switch A all targeting the one
    /// receiver behind switch B.
    pub degree: usize,
    /// Bytes each sender ships (uncontrolled, ECN off — congestion
    /// control must not soften the cascade under measurement).
    pub flow_bytes: u64,
    /// Hard stop for the simulation.
    pub run_until: Delta,
    /// Lossless-pool buffer per switch (small enough that the incast
    /// crosses PFC thresholds at every degree).
    pub buffer: ByteSize,
    /// Seed.
    pub seed: u64,
    /// Intra-run partition workers (1 = serial calendar). Each engine is
    /// individually deterministic (and the partitioned engine is
    /// byte-identical at any worker count ≥ 2), but a synchronized incast
    /// inherently piles same-instant frame ties onto the shared
    /// bottleneck, which is outside the serial/partitioned equivalence
    /// class documented in DESIGN.md — so serial and partitioned runs of
    /// *this* figure may differ in tie order (see
    /// `tests/observability.rs` for the tie-free byte-identity proof).
    pub workers: usize,
    /// Engine fidelity.
    pub fidelity: FidelityMode,
    /// Observability configuration. Always armed here — the cascade
    /// tracker *is* the measurement; [`crate::observe_config`] merely
    /// overrides the sampling interval when `--metrics` asks for one.
    pub observe: ObserveConfig,
}

impl Fig18Experiment {
    /// Laptop-scale default: 8-to-1 incast, 128 KiB per sender, 2 MiB
    /// switch buffer, 3 ms horizon (the 25 Gb/s downlink drains the
    /// whole incast well within it).
    #[must_use]
    pub fn small(scheme: Scheme) -> Self {
        Fig18Experiment {
            scheme,
            degree: 8,
            flow_bytes: 128 * 1024,
            run_until: Delta::from_ms(3),
            buffer: ByteSize::mib(2),
            seed: 1,
            workers: 1,
            fidelity: FidelityMode::Packet,
            observe: ObserveConfig::default(),
        }
    }
}

/// Outcome of one degree × scheme cell.
#[derive(Clone, Debug)]
pub struct Fig18Result {
    /// The analysed cascade forest (summary statistics, cycle findings,
    /// per-flow attribution).
    pub cascades: CascadeReport,
    /// Summed victim-of-cascade pause exposure over all flows (depth ≥ 2
    /// edges overlapping a flow's lifetime at its NIC).
    pub victim_ns: u64,
    /// Summed self-congested pause exposure (depth-1 edges — the flow's
    /// own first-hop switch was the root).
    pub self_ns: u64,
    /// Summed queue- plus port-level PFC pause wall-clock over all
    /// egress ports.
    pub pause_wall_ns: u64,
    /// Flows that delivered every byte.
    pub completed: usize,
    /// Registered flows.
    pub registered: usize,
    /// Calendar events processed.
    pub events: u64,
    /// Host wall time of the simulation run.
    pub wall: std::time::Duration,
}

/// Builds the loaded two-tier incast fabric; returns `(network,
/// registered flows)`.
#[must_use]
pub fn loaded(exp: &Fig18Experiment) -> (Network, usize) {
    let params = NetParams::tomahawk(exp.scheme)
        .with_buffer(exp.buffer)
        .with_seed(exp.seed)
        .with_fidelity(exp.fidelity)
        .with_observability(exp.observe)
        .without_ecn();
    let mut b = NetworkBuilder::new(params);
    let (sw_a, sw_b) = (b.switch(), b.switch());
    let senders: Vec<_> = (0..exp.degree).map(|_| b.host()).collect();
    let receiver = b.host();
    let fast = Bandwidth::from_gbps(100);
    for &h in &senders {
        b.link(h, sw_a, fast, Delta::from_us(1));
    }
    b.link(sw_a, sw_b, fast, Delta::from_us(2));
    // The oversubscribed downlink is the cascade root: traffic backs up
    // into B, B pauses A, A fills and pauses the sender NICs.
    b.link(sw_b, receiver, Bandwidth::from_gbps(25), Delta::from_us(1));

    let mut net = b.build();
    for (i, &src) in senders.iter().enumerate() {
        // Staggered starts keep every calendar instant distinct, the
        // documented requirement for serial/partitioned bit-identity.
        net.add_flow(FlowSpec {
            src,
            dst: receiver,
            size: exp.flow_bytes,
            class: 0,
            start: Time::from_ns(i as u64 * 200),
            cc: CcKind::Uncontrolled,
        });
    }
    let registered = net.flow_count();
    (net, registered)
}

/// Runs one cell and keeps the measured network (for `--metrics`
/// exports); [`run_cell`] discards it.
///
/// # Panics
///
/// Panics on a dirty MMU audit, any drop (all three cells are
/// lossless), or a cycle finding — this radial topology has no buffer
/// dependency loop, so a reported cycle is a tracker bug.
#[must_use]
pub fn run_cell_net(exp: &Fig18Experiment) -> (Fig18Result, Network) {
    let (net, registered) = loaded(exp);
    let deadline = Time::ZERO + exp.run_until;
    let wall = std::time::Instant::now();
    let (net, events) = run_net(net, deadline, exp.workers);
    let wall = wall.elapsed();

    for (id, audit) in net.audit_all() {
        assert!(
            audit.is_clean(),
            "dirty MMU audit at {id} in {:?} degree {}: {:?}",
            exp.scheme,
            exp.degree,
            audit.violations
        );
    }
    assert_eq!(net.data_drops(), 0, "lossless incast dropped packets: {exp:?}");

    let cascades = net.cascade_report(deadline).expect("fig18 always arms the cascade tracker");
    assert!(
        cascades.cycles.is_empty(),
        "cycle finding on an acyclic radial topology: {:?}",
        cascades.cycles
    );
    let victim_ns: u64 = cascades.flows.iter().map(|f| f.victim.as_ns()).sum();
    let self_ns: u64 = cascades.flows.iter().map(|f| f.self_congested.as_ns()).sum();
    let pause_wall_ns: u64 =
        net.pause_ledgers(deadline).map(|l| l.queue_level.as_ns() + l.port_level.as_ns()).sum();
    let completed = net.fct_records().len();
    let result = Fig18Result {
        cascades,
        victim_ns,
        self_ns,
        pause_wall_ns,
        completed,
        registered,
        events,
        wall,
    };
    (result, net)
}

/// Runs one cell.
///
/// # Panics
///
/// See [`run_cell_net`].
#[must_use]
pub fn run_cell(exp: &Fig18Experiment) -> Fig18Result {
    run_cell_net(exp).0
}

/// The schemes the figure compares, in display order.
pub const SCHEMES: [Scheme; 3] = [Scheme::Sih, Scheme::Dsh, Scheme::BShare];

/// Per-switch buffer for an incast of `degree`, used by [`sweep`]: SIH
/// statically reserves headroom plus private space per (port, class) —
/// about 257 KiB per port here — so at 2 MiB a 9-port switch already
/// over-reserves the pool and `MmuConfig` rightly refuses to build.
/// `max(2, degree/2)` MiB keeps SIH feasible with a real shared pool
/// left over at every sweep degree. All three schemes at a given degree
/// share the returned size, so the per-degree rows stay an equal-buffer
/// comparison — and the growing floor *is* the figure's point: the
/// buffer a lossless fabric must ship scales with SIH's reservation,
/// not with what DSH actually uses.
#[must_use]
pub fn buffer_for(degree: usize) -> ByteSize {
    ByteSize::mib((degree as u64 / 2).max(2))
}

/// One sweep row: an incast degree with one outcome per scheme, in
/// [`SCHEMES`] order.
#[derive(Clone, Debug)]
pub struct Fig18Point {
    /// Incast degree.
    pub degree: usize,
    /// Outcomes keyed by [`SCHEMES`].
    pub cells: Vec<Fig18Result>,
}

impl Fig18Point {
    /// The point's outcomes keyed by scheme.
    #[must_use]
    pub fn per_scheme(&self) -> Vec<(Scheme, &Fig18Result)> {
        SCHEMES.iter().copied().zip(self.cells.iter()).collect()
    }
}

/// Sweeps incast degrees × [`SCHEMES`] on the pool.
#[must_use]
pub fn sweep(degrees: &[usize], base: &Fig18Experiment, ex: &Executor) -> Vec<Fig18Point> {
    let grid: Vec<Fig18Experiment> = degrees
        .iter()
        .flat_map(|&degree| {
            let buffer = base.buffer.max(buffer_for(degree));
            SCHEMES.map(|scheme| Fig18Experiment { scheme, degree, buffer, ..*base })
        })
        .collect();
    let mut results = ex.par_map(grid, |exp| run_cell(&exp)).into_iter();
    degrees
        .iter()
        .map(|&degree| {
            let mut next = || results.next().expect("one result per scheme per degree");
            Fig18Point { degree, cells: vec![next(), next(), next()] }
        })
        .collect()
}

/// Cuts the scale down for smoke/bench runs (CI wall-clock): the 8-to-1
/// DSH cell of the acceptance contract.
#[must_use]
pub fn smoke_base(scheme: Scheme) -> Fig18Experiment {
    let mut base = Fig18Experiment::small(scheme);
    base.flow_bytes = 96 * 1024;
    base.run_until = Delta::from_ms(2);
    base
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incast_cascade_reaches_the_sender_nics() {
        let r = run_cell(&smoke_base(Scheme::Dsh));
        assert!(r.cascades.count >= 1, "no cascade recorded under an 8-to-1 incast");
        assert!(
            r.cascades.max_depth >= 2,
            "incast cascade never propagated past the root (depth {})",
            r.cascades.max_depth
        );
        assert!(r.cascades.host_nic_edges >= 1, "cascade never reached a sender NIC");
        assert!(r.victim_ns > 0, "no flow attributed as a cascade victim");
        assert_eq!(r.completed, r.registered, "incast flows wedged");
    }

    #[test]
    fn sih_and_dsh_see_the_same_cascade_shape_at_low_degree() {
        // Both lossless schemes must record *some* cascade at degree 4;
        // the figure's point is the duration distribution, not presence.
        for scheme in [Scheme::Sih, Scheme::BShare] {
            let mut base = smoke_base(scheme);
            base.degree = 4;
            let r = run_cell(&base);
            assert!(r.cascades.count >= 1, "{scheme:?}: no cascade at degree 4");
            assert_eq!(r.completed, r.registered, "{scheme:?}: flows wedged");
        }
    }
}
