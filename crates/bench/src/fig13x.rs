//! Fig. 13x (robustness extension, not in the paper): FCT degradation
//! under link flaps.
//!
//! A loaded 2×2 leaf–spine carries bidirectional cross-rack flows while
//! one leaf–spine uplink flaps at a swept frequency. Every `LinkDown`
//! drains the uplink's queues (counted as `link_drops`), force-clears its
//! PFC pause ledger and reroutes via the surviving spine; the NICs' go-
//! back-N recovery retransmits what was lost. The sweep reports FCT
//! slowdown versus the fault-free baseline, retransmissions and drops for
//! every scheme (SIH/DSH/BShare) — demonstrating that headroom accounting
//! stays sound (MMU audit clean, zero admission drops) across arbitrary
//! flap schedules.

use dsh_analysis::fct::FctSummary;
use dsh_core::Scheme;
use dsh_net::topology::{leaf_spine, LeafSpineShape};
use dsh_net::{FaultPlan, FlowSpec, NetEvent, NetParams};
use dsh_simcore::{Bandwidth, ByteSize, Delta, EngineProfile, Executor, Time};
use dsh_transport::CcKind;

/// One link-flap experiment configuration.
#[derive(Clone, Copy, Debug)]
pub struct FlapExperiment {
    /// Headroom scheme.
    pub scheme: Scheme,
    /// Transport for all flows.
    pub cc: CcKind,
    /// Hosts per leaf (2 leaves × 2 spines fixed).
    pub hosts_per_leaf: usize,
    /// Bytes per cross-rack flow (one flow per host, both directions).
    pub flow_size: u64,
    /// Flap period of the `leaf0`–`spine0` uplink; `None` = fault-free
    /// baseline (no plan installed, recovery still enabled so the event
    /// stream is comparable).
    pub flap_period: Option<Delta>,
    /// Outage length of each flap (must be shorter than the period).
    pub down_time: Delta,
    /// First flap start (lets the flows ramp up).
    pub first_down: Delta,
    /// Flaps stop here so the tail can recover; also the fraction of
    /// `run_until` given to the last retransmissions.
    pub flap_until: Delta,
    /// Hard stop for the simulation.
    pub run_until: Delta,
    /// Seed (workload stagger + fault-plan RNG streams).
    pub seed: u64,
    /// Override the switch buffer (`None` = Tomahawk default). A small
    /// buffer pushes the post-outage fan-in over the PFC thresholds, so
    /// traced runs exercise the pause/resume machinery.
    pub buffer: Option<ByteSize>,
    /// Intra-run partition workers: 1 runs the serial calendar, ≥ 2 the
    /// link-partitioned engine (profiled runs always stay serial — the
    /// engine profiler hooks the serial dispatch loop).
    pub workers: usize,
}

impl FlapExperiment {
    /// Laptop-scale default: 8 hosts, 1 MB cross-rack flows, 60 µs
    /// outages starting at 100 µs, 6 ms horizon.
    #[must_use]
    pub fn small(scheme: Scheme, cc: CcKind) -> Self {
        FlapExperiment {
            scheme,
            cc,
            hosts_per_leaf: 4,
            flow_size: 1_000_000,
            flap_period: None,
            down_time: Delta::from_us(60),
            first_down: Delta::from_us(100),
            flap_until: Delta::from_ms(3),
            run_until: Delta::from_ms(6),
            seed: 1,
            buffer: None,
            workers: 1,
        }
    }
}

/// Outcome of one flap run.
#[derive(Clone, Copy, Debug)]
pub struct FlapResult {
    /// FCT summary over completed flows (`None` if none completed).
    pub fct: Option<FctSummary>,
    /// Flows that delivered every byte.
    pub completed: usize,
    /// Flows explicitly marked failed after the retry budget.
    pub failed: u64,
    /// Flows neither completed nor failed at the horizon — must be 0
    /// (the wedge-freedom property the recovery path guarantees).
    pub wedged: usize,
    /// Frames lost to the injected faults.
    pub link_drops: u64,
    /// Go-back-N timeout retransmissions.
    pub retransmissions: u64,
    /// Calendar events processed (steady-state throughput metric).
    pub events: u64,
}

/// Runs one flap experiment.
///
/// # Panics
///
/// Panics if the MMU audit is dirty after the run or if admission
/// dropped packets — faults may cost `link_drops`, never lossless-buffer
/// drops.
#[must_use]
pub fn run_flap(exp: &FlapExperiment) -> FlapResult {
    run_flap_inner(exp, None)
}

/// Runs one flap experiment under the engine profiler, returning the
/// per-event-type dispatch breakdown alongside the result. Counts are
/// always collected; per-class wall time additionally needs the
/// `profile` feature (see [`EngineProfile::timing_enabled`]).
#[must_use]
pub fn run_flap_profiled(exp: &FlapExperiment) -> (FlapResult, EngineProfile) {
    let mut profile = EngineProfile::new::<NetEvent>();
    let result = run_flap_inner(exp, Some(&mut profile));
    (result, profile)
}

/// Runs one flap experiment on the partitioned engine — even at one
/// worker — and returns the result plus the run's full telemetry report
/// as a JSON string. Determinism regressions compare this document
/// across worker counts byte for byte; the engine is held fixed because
/// the partitioned per-partition RNG streams legitimately differ from
/// the serial calendar's when ECN marking draws random numbers.
///
/// # Panics
///
/// Same contract as [`run_flap`].
#[must_use]
pub fn run_flap_report(exp: &FlapExperiment, workers: usize) -> (FlapResult, String) {
    let net = build_flap(exp);
    let registered = net.flow_count();
    let deadline = Time::ZERO + exp.run_until;
    let (net, events) = crate::fabric::run_net_partitioned(net, deadline, workers);
    let report = net.telemetry_report(deadline).to_json().to_string();
    (summarize(&net, events, registered), report)
}

fn run_flap_inner(exp: &FlapExperiment, profile: Option<&mut EngineProfile>) -> FlapResult {
    let net = build_flap(exp);
    let registered = net.flow_count();
    let deadline = Time::ZERO + exp.run_until;
    let (net, events) = match profile {
        Some(p) => {
            // The profiler hooks the serial dispatch loop, so profiled
            // runs ignore `workers`.
            let mut sim = net.into_sim();
            sim.run_until_profiled(deadline, p);
            let events = sim.events_processed();
            (sim.into_model(), events)
        }
        None => crate::fabric::run_net(net, deadline, exp.workers),
    };
    summarize(&net, events, registered)
}

/// Builds the loaded 2×2 leaf–spine with the experiment's flap plan.
fn build_flap(exp: &FlapExperiment) -> dsh_net::Network {
    let mut params = NetParams::tomahawk(exp.scheme).with_seed(exp.seed).with_default_recovery();
    if let Some(buffer) = exp.buffer {
        params = params.with_buffer(buffer);
    }
    let ls = leaf_spine(
        params,
        LeafSpineShape {
            leaves: 2,
            spines: 2,
            hosts_per_leaf: exp.hosts_per_leaf,
            downlink: Bandwidth::from_gbps(100),
            uplink: Bandwidth::from_gbps(100),
            link_delay: Delta::from_us(2),
        },
    );
    let (rack0, rack1) = (ls.hosts[0].clone(), ls.hosts[1].clone());
    let (leaf0, spine0) = (ls.leaves[0], ls.spines[0]);
    let mut net = ls.builder.build();

    // Bidirectional cross-rack load: every flow transits the spines, so
    // roughly half of them hash onto the uplink that flaps.
    let n = exp.hosts_per_leaf;
    for i in 0..n {
        for (src, dst) in [(rack0[i], rack1[(i + 1) % n]), (rack1[i], rack0[(i + 1) % n])] {
            net.add_flow(FlowSpec {
                src,
                dst,
                size: exp.flow_size,
                class: 0,
                start: Time::ZERO + Delta::from_us(i as u64),
                cc: exp.cc,
            });
        }
    }

    if let Some(period) = exp.flap_period {
        assert!(exp.down_time < period, "outage must be shorter than the flap period");
        let mut plan = FaultPlan::new(exp.seed);
        let mut t = exp.first_down;
        while t + exp.down_time < exp.flap_until {
            plan = plan.flap(leaf0, spine0, Time::ZERO + t, Time::ZERO + t + exp.down_time);
            t += period;
        }
        assert!(!plan.is_empty(), "flap_until leaves room for no flap at all");
        net.set_fault_plan(plan);
    }

    net
}

/// Audits and summarizes a finished flap run.
fn summarize(net: &dsh_net::Network, events: u64, registered: usize) -> FlapResult {
    assert_eq!(net.data_drops(), 0, "faults must not cause MMU admission drops");
    for (id, audit) in net.audit_all() {
        assert!(audit.is_clean(), "MMU audit dirty at {id} after faults: {:?}", audit.violations);
    }

    let fcts: Vec<Delta> = net.fct_records().iter().map(|r| r.fct()).collect();
    let completed = fcts.len();
    let failed = net.failed_flow_count();
    FlapResult {
        fct: FctSummary::from_fcts(&fcts),
        completed,
        failed,
        wedged: registered - completed - failed as usize,
        link_drops: net.link_drops(),
        retransmissions: net.retransmissions(),
        events,
    }
}

/// One sweep row: a flap period with one outcome per scheme.
#[derive(Clone, Copy, Debug)]
pub struct FlapPoint {
    /// Flap period (`None` = fault-free baseline).
    pub period: Option<Delta>,
    /// SIH outcome.
    pub sih: FlapResult,
    /// DSH outcome.
    pub dsh: FlapResult,
    /// BShare outcome.
    pub bshare: FlapResult,
}

impl FlapPoint {
    /// p50 FCT of `r` normalized to the matching baseline p50.
    #[must_use]
    pub fn slowdown(r: &FlapResult, baseline: &FlapResult) -> Option<f64> {
        Some(r.fct?.p50_secs / baseline.fct?.p50_secs)
    }

    /// The point's outcomes keyed by scheme, in [`Scheme::ALL`] order.
    #[must_use]
    pub fn per_scheme(&self) -> [(Scheme, &FlapResult); 3] {
        [(Scheme::Sih, &self.sih), (Scheme::Dsh, &self.dsh), (Scheme::BShare, &self.bshare)]
    }
}

/// Sweeps flap periods × [`Scheme::ALL`] on the pool. `periods` should
/// start with `None` so callers can normalize against the fault-free
/// baseline.
#[must_use]
pub fn sweep(periods: &[Option<Delta>], base: &FlapExperiment, ex: &Executor) -> Vec<FlapPoint> {
    let grid: Vec<FlapExperiment> = periods
        .iter()
        .flat_map(|&p| Scheme::ALL.map(|scheme| FlapExperiment { scheme, flap_period: p, ..*base }))
        .collect();
    let mut results = ex.par_map(grid, |exp| run_flap(&exp)).into_iter();
    periods
        .iter()
        .map(|&period| {
            let sih = results.next().expect("one SIH result per period");
            let dsh = results.next().expect("one DSH result per period");
            let bshare = results.next().expect("one BShare result per period");
            FlapPoint { period, sih, dsh, bshare }
        })
        .collect()
}

/// Cuts the scale down for smoke/bench runs (CI wall-clock). The first
/// outage lands at 20 µs — inside the short transfer window, so the flap
/// is guaranteed to hit live traffic.
#[must_use]
pub fn smoke_base(scheme: Scheme) -> FlapExperiment {
    let mut base = FlapExperiment::small(scheme, CcKind::Dcqcn);
    base.flow_size = 256 * 1024;
    base.first_down = Delta::from_us(20);
    base.flap_until = Delta::from_ms(1);
    base.run_until = Delta::from_ms(3);
    base
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flaps_lose_frames_but_every_flow_finishes() {
        let mut exp = smoke_base(Scheme::Dsh);
        exp.flap_period = Some(Delta::from_us(300));
        let r = run_flap(&exp);
        assert!(r.link_drops > 0, "a flap under load must drain frames");
        assert!(r.retransmissions > 0, "lost frames must be retransmitted");
        assert_eq!(r.wedged, 0, "no flow may wedge");
        assert_eq!(r.failed, 0, "this schedule is survivable: {r:?}");
        assert_eq!(r.completed, 2 * exp.hosts_per_leaf);
    }

    #[test]
    fn baseline_has_no_drops_and_faster_p50() {
        let base = run_flap(&smoke_base(Scheme::Dsh));
        assert_eq!(base.link_drops, 0);
        assert_eq!(base.retransmissions, 0);
        assert_eq!(base.wedged, 0);
        let mut flapped = smoke_base(Scheme::Dsh);
        flapped.flap_period = Some(Delta::from_us(300));
        let f = run_flap(&flapped);
        let slow = FlapPoint::slowdown(&f, &base).expect("both runs completed flows");
        assert!(slow >= 1.0, "flaps cannot speed flows up: {slow}");
    }
}
