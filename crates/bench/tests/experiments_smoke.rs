//! Smoke tests for the experiment harness: every figure pipeline runs at
//! micro scale, completes flows, and never drops packets.

use dsh_bench::fabric::{run_fct, FctExperiment, Topo};
use dsh_bench::{fig04, fig05, fig06, fig14, fig15};
use dsh_core::Scheme;
use dsh_simcore::{Delta, Executor};
use dsh_transport::CcKind;
use dsh_workloads::Workload;

fn micro_base() -> FctExperiment {
    let mut base = FctExperiment::small(Scheme::Sih, CcKind::Dcqcn);
    base.topo = Topo::LeafSpine { leaves: 2, spines: 2, hosts_per_leaf: 4 };
    base.horizon = Delta::from_us(300);
    base.run_until = Delta::from_ms(4);
    base
}

#[test]
fn fct_pipeline_runs_for_all_scheme_transport_combinations() {
    for scheme in Scheme::ALL {
        for cc in [CcKind::Dcqcn, CcKind::PowerTcp] {
            let exp = FctExperiment { scheme, cc, ..micro_base() };
            let r = run_fct(&exp);
            assert_eq!(r.drops, 0, "{scheme}/{cc} dropped");
            assert!(r.completed > 0, "{scheme}/{cc} completed nothing");
            assert!(
                r.completed * 10 >= r.registered * 8,
                "{scheme}/{cc}: only {}/{} flows completed",
                r.completed,
                r.registered
            );
            let all = r.all.expect("flows completed");
            assert!(all.avg_secs > 0.0 && all.p99_secs >= all.p50_secs);
        }
    }
}

/// Regression for the default-small-scale `fig14_fct_vs_load` panic
/// ("lossless fabric dropped packets"): under SIH/DCQCN at bg_load 0.7 the
/// shared CONTROL_CLASS queue delayed a PFC PAUSE behind an ACK/CNP
/// backlog past the one-MTU waiting budget the headroom formula assumes,
/// overflowing an ingress headroom account between 1 ms and 2 ms of
/// simulated time. The egress PFC fast lane fixes this; this test pins the
/// exact failing cell (truncated to 2 ms, just past the historical drop).
#[test]
fn fig14_sih_dcqcn_high_bg_load_stays_lossless() {
    let mut exp = FctExperiment::small(Scheme::Sih, CcKind::Dcqcn);
    exp.bg_load = 0.7;
    exp.fanin_load = 0.2;
    exp.run_until = Delta::from_ms(2);
    let r = run_fct(&exp); // run_fct asserts drops == 0 internally.
    assert_eq!(r.drops, 0);
}

#[test]
fn fig14_point_produces_normalized_ratios() {
    let p = fig14::run_point(CcKind::Dcqcn, 0.5, &micro_base(), &Executor::new(2));
    let fan = p.norm_fan().expect("fan-in flows completed");
    let bg = p.norm_bg().expect("background flows completed");
    assert!(fan.is_finite() && fan > 0.0);
    assert!(bg.is_finite() && bg > 0.0);
}

#[test]
fn fig15_cell_runs_every_workload() {
    for w in Workload::ALL {
        let cell = fig15::run_cell(w, false, 0.5, &micro_base(), 4, &Executor::serial());
        assert_eq!(cell.sih.drops + cell.dsh.drops, 0, "{w} dropped");
        assert!(cell.sih.completed > 0 && cell.dsh.completed > 0, "{w}");
    }
}

#[test]
fn fig15_fat_tree_variant_runs() {
    let cell = fig15::run_cell(Workload::WebSearch, true, 0.5, &micro_base(), 4, &Executor::new(2));
    assert!(cell.sih.completed > 0 && cell.dsh.completed > 0);
}

#[test]
fn fig05_fct_improves_with_more_buffer() {
    let base = micro_base();
    let lo = fig05::run_point(Scheme::Sih, 14, &base);
    let hi = fig05::run_point(Scheme::Sih, 30, &base);
    assert!(lo.completed > 0 && hi.completed > 0);
    // With a scaled-down run the gap is noisy but the ordering must hold:
    // less buffer can never make average FCT better than +5% of the big
    // buffer's.
    assert!(
        lo.avg_fct_ms >= hi.avg_fct_ms * 0.95,
        "14 MiB: {} ms vs 30 MiB: {} ms",
        lo.avg_fct_ms,
        hi.avg_fct_ms
    );
}

#[test]
fn fig06_utilization_is_low() {
    // Needs enough hosts that fan-in backlogs reach the headroom region.
    let r = fig06::run(Scheme::Sih, 4, 8, Delta::from_ms(1), 3);
    let cdf = &r.utilization;
    assert!(cdf.len() > 10, "need headroom-peak samples, got {}", cdf.len());
    let med = cdf.quantile(0.5).unwrap();
    assert!((0.0..=1.0).contains(&med));
    // The paper's point: headroom is mostly idle even under load.
    assert!(med < 0.5, "median utilization {med}");
}

#[test]
fn fig04_rows_are_exact() {
    let rows = fig04::rows();
    assert_eq!(rows.len(), 5);
    assert!((rows[0].us_per_capacity - 157.3).abs() < 0.5);
    assert!((rows[4].headroom_fraction - 0.678).abs() < 0.01);
}
