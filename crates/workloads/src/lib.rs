//! Datacenter traffic workloads for the DSH evaluation.
//!
//! Provides the four empirical flow-size distributions the paper samples
//! from — web search (DCTCP), data mining (VL2), cache and Hadoop
//! (Facebook) — plus Poisson flow-arrival generation and the paper's two
//! traffic patterns: one-to-one background traffic and many-to-one
//! (fan-in) bursts.
//!
//! The distributions are piecewise-linear CDF approximations of the
//! published measurement curves (the same representation the community
//! ns-3 harnesses use).
//!
//! # Example
//!
//! ```
//! use dsh_workloads::{FlowSizeDist, Workload};
//! use dsh_simcore::SimRng;
//!
//! let dist = FlowSizeDist::from_workload(Workload::WebSearch);
//! let mut rng = SimRng::new(7);
//! let s = dist.sample(&mut rng);
//! assert!(s >= 1 && s <= 30_000_000);
//! // The web search workload has a mean around 1.7 MB.
//! assert!((dist.mean() - 1.7e6).abs() < 0.3e6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arrivals;
mod dist;
mod patterns;

pub use arrivals::{flow_arrival_rate, PoissonArrivals};
pub use dist::{FlowSizeDist, Workload};
pub use patterns::{background_flows, fan_in_bursts, GenFlow, PatternConfig};
