//! Empirical flow-size distributions from published datacenter
//! measurements.

use dsh_simcore::SimRng;

/// The four workloads the paper evaluates (Fig. 14/15).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Workload {
    /// Web search (Alizadeh et al., DCTCP, SIGCOMM 2010) — the paper's
    /// default background workload.
    WebSearch,
    /// Data mining (Greenberg et al., VL2, SIGCOMM 2009) — heavy tailed.
    DataMining,
    /// Cache (Roy et al., *Inside the Social Network's Datacenter
    /// Network*, SIGCOMM 2015).
    Cache,
    /// Hadoop (Roy et al., SIGCOMM 2015) — also used by the paper's
    /// deadlock experiment.
    Hadoop,
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Workload::WebSearch => "Web Search",
            Workload::DataMining => "Data Mining",
            Workload::Cache => "Cache",
            Workload::Hadoop => "Hadoop",
        })
    }
}

impl Workload {
    /// All four workloads.
    pub const ALL: [Workload; 4] =
        [Workload::WebSearch, Workload::DataMining, Workload::Cache, Workload::Hadoop];
}

/// Piecewise-linear CDF points `(size_bytes, cumulative_probability)` for
/// the DCTCP web search workload.
const WEB_SEARCH: &[(u64, f64)] = &[
    (1, 0.0),
    (10_000, 0.15),
    (20_000, 0.20),
    (30_000, 0.30),
    (50_000, 0.40),
    (80_000, 0.53),
    (200_000, 0.60),
    (1_000_000, 0.70),
    (2_000_000, 0.80),
    (5_000_000, 0.90),
    (10_000_000, 0.97),
    (30_000_000, 1.0),
];

/// VL2 data mining workload.
const DATA_MINING: &[(u64, f64)] = &[
    (1, 0.0),
    (100, 0.03),
    (180, 0.10),
    (250, 0.20),
    (560, 0.30),
    (900, 0.40),
    (1_100, 0.50),
    (1_870, 0.60),
    (3_160, 0.70),
    (10_000, 0.80),
    (400_000, 0.90),
    (3_160_000, 0.95),
    (100_000_000, 0.98),
    (1_000_000_000, 1.0),
];

/// Facebook cache-follower workload.
const CACHE: &[(u64, f64)] = &[
    (1, 0.0),
    (100, 0.05),
    (300, 0.10),
    (500, 0.20),
    (700, 0.30),
    (1_000, 0.40),
    (2_000, 0.50),
    (5_000, 0.60),
    (20_000, 0.70),
    (50_000, 0.80),
    (200_000, 0.90),
    (1_000_000, 0.99),
    (10_000_000, 1.0),
];

/// Facebook Hadoop workload.
const HADOOP: &[(u64, f64)] = &[
    (1, 0.0),
    (100, 0.05),
    (200, 0.10),
    (400, 0.20),
    (600, 0.30),
    (800, 0.40),
    (1_000, 0.50),
    (2_000, 0.60),
    (5_000, 0.70),
    (10_000, 0.80),
    (100_000, 0.90),
    (1_000_000, 0.95),
    (10_000_000, 0.99),
    (100_000_000, 1.0),
];

/// A flow-size distribution defined by a piecewise-linear CDF.
///
/// Sampling inverts the CDF with linear interpolation inside each segment.
#[derive(Clone, Debug, PartialEq)]
pub struct FlowSizeDist {
    points: Vec<(u64, f64)>,
}

impl FlowSizeDist {
    /// Builds a distribution from CDF points.
    ///
    /// # Panics
    ///
    /// Panics unless the points are strictly increasing in size,
    /// nondecreasing in probability, start at probability 0 and end at 1.
    #[must_use]
    pub fn from_cdf(points: &[(u64, f64)]) -> Self {
        assert!(points.len() >= 2, "need at least two CDF points");
        assert_eq!(points[0].1, 0.0, "CDF must start at probability 0");
        assert_eq!(points[points.len() - 1].1, 1.0, "CDF must end at probability 1");
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0, "sizes must be strictly increasing");
            assert!(w[0].1 <= w[1].1, "probabilities must be nondecreasing");
        }
        FlowSizeDist { points: points.to_vec() }
    }

    /// One of the four built-in workloads.
    #[must_use]
    pub fn from_workload(w: Workload) -> Self {
        let pts = match w {
            Workload::WebSearch => WEB_SEARCH,
            Workload::DataMining => DATA_MINING,
            Workload::Cache => CACHE,
            Workload::Hadoop => HADOOP,
        };
        FlowSizeDist::from_cdf(pts)
    }

    /// Draws one flow size (bytes ≥ 1).
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let u = rng.gen_f64();
        // Find the segment containing u and interpolate.
        for w in self.points.windows(2) {
            let (s0, p0) = w[0];
            let (s1, p1) = w[1];
            if u <= p1 {
                if p1 == p0 {
                    return s1;
                }
                let frac = (u - p0) / (p1 - p0);
                let size = s0 as f64 + frac * (s1 - s0) as f64;
                return (size as u64).max(1);
            }
        }
        self.points.last().expect("non-empty").0
    }

    /// Analytic mean of the piecewise-linear distribution (bytes).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| {
                let (s0, p0) = w[0];
                let (s1, p1) = w[1];
                (p1 - p0) * (s0 + s1) as f64 / 2.0
            })
            .sum()
    }

    /// The largest possible sample.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.points.last().expect("non-empty").0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_workloads_are_well_formed() {
        for w in Workload::ALL {
            let d = FlowSizeDist::from_workload(w);
            assert!(d.mean() > 0.0, "{w}");
        }
    }

    #[test]
    fn sample_within_bounds_and_mean_close() {
        for w in Workload::ALL {
            let d = FlowSizeDist::from_workload(w);
            let mut rng = SimRng::new(42);
            let n = 100_000;
            let mut sum = 0.0;
            for _ in 0..n {
                let s = d.sample(&mut rng);
                assert!(s >= 1 && s <= d.max(), "{w}: {s}");
                sum += s as f64;
            }
            let emp = sum / n as f64;
            let err = (emp - d.mean()).abs() / d.mean();
            // Heavy tails need slack; 15% over 100k samples is comfortable
            // for all four curves.
            assert!(err < 0.15, "{w}: empirical {emp} vs analytic {}", d.mean());
        }
    }

    #[test]
    fn web_search_mean_matches_literature() {
        // The DCTCP web search workload is usually quoted at ~1.6-1.7 MB.
        let d = FlowSizeDist::from_workload(Workload::WebSearch);
        assert!((1.4e6..2.0e6).contains(&d.mean()), "{}", d.mean());
    }

    #[test]
    fn data_mining_is_heaviest_tailed() {
        let dm = FlowSizeDist::from_workload(Workload::DataMining);
        let ws = FlowSizeDist::from_workload(Workload::WebSearch);
        assert!(dm.max() > ws.max());
    }

    #[test]
    #[should_panic(expected = "start at probability 0")]
    fn bad_cdf_rejected() {
        let _ = FlowSizeDist::from_cdf(&[(1, 0.5), (10, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_increasing_sizes_rejected() {
        let _ = FlowSizeDist::from_cdf(&[(10, 0.0), (10, 1.0)]);
    }

    #[test]
    fn workload_display() {
        assert_eq!(Workload::WebSearch.to_string(), "Web Search");
        assert_eq!(Workload::Hadoop.to_string(), "Hadoop");
    }
}
