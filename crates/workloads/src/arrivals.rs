//! Poisson flow arrivals and load arithmetic.

use dsh_simcore::{Delta, SimRng, Time};

/// Flow arrival rate (flows/second) that produces a target `load` on
/// `aggregate_bytes_per_sec` of capacity with flows of `mean_flow_size`
/// bytes.
///
/// # Panics
///
/// Panics if any argument is non-positive.
#[must_use]
pub fn flow_arrival_rate(load: f64, aggregate_bytes_per_sec: f64, mean_flow_size: f64) -> f64 {
    assert!(load > 0.0 && aggregate_bytes_per_sec > 0.0 && mean_flow_size > 0.0);
    load * aggregate_bytes_per_sec / mean_flow_size
}

/// An endless Poisson arrival process.
///
/// # Example
///
/// ```
/// use dsh_workloads::PoissonArrivals;
/// use dsh_simcore::{SimRng, Time};
///
/// let mut rng = SimRng::new(3);
/// let mut arr = PoissonArrivals::new(1_000_000.0); // 1M flows/s
/// let t1 = arr.next_after(Time::ZERO, &mut rng);
/// let t2 = arr.next_after(t1, &mut rng);
/// assert!(t2 > t1);
/// ```
#[derive(Clone, Debug)]
pub struct PoissonArrivals {
    mean_gap_secs: f64,
}

impl PoissonArrivals {
    /// Creates a process with the given rate (events per second).
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_sec` is not positive and finite.
    #[must_use]
    pub fn new(rate_per_sec: f64) -> Self {
        assert!(rate_per_sec.is_finite() && rate_per_sec > 0.0, "rate must be positive");
        PoissonArrivals { mean_gap_secs: 1.0 / rate_per_sec }
    }

    /// Draws the next arrival instant strictly after `now`.
    pub fn next_after(&mut self, now: Time, rng: &mut SimRng) -> Time {
        let gap = rng.gen_exp(self.mean_gap_secs);
        now + Delta::from_secs_f64(gap.max(1e-12))
    }

    /// All arrivals in `[0, horizon)`.
    pub fn schedule(&mut self, horizon: Time, rng: &mut SimRng) -> Vec<Time> {
        let mut out = Vec::new();
        let mut t = self.next_after(Time::ZERO, rng);
        while t < horizon {
            out.push(t);
            t = self.next_after(t, rng);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_math() {
        // 0.9 load on 256 x 12.5 GB/s with 1.7 MB flows.
        let r = flow_arrival_rate(0.9, 256.0 * 12.5e9, 1.7e6);
        assert!((r - 1_694_117.6).abs() / r < 0.01, "{r}");
    }

    #[test]
    fn empirical_rate_matches() {
        let mut rng = SimRng::new(9);
        let mut arr = PoissonArrivals::new(1_000_000.0);
        let events = arr.schedule(Time::from_ms(20), &mut rng);
        // Expect ~20_000 events; Poisson std ~ 141.
        let n = events.len() as f64;
        assert!((n - 20_000.0).abs() < 600.0, "{n}");
        // Strictly increasing.
        assert!(events.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        let _ = PoissonArrivals::new(0.0);
    }
}
