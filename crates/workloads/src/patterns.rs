//! The paper's traffic patterns: one-to-one background traffic and
//! many-to-one fan-in bursts (§V-B).

use crate::arrivals::{flow_arrival_rate, PoissonArrivals};
use crate::dist::FlowSizeDist;
use dsh_simcore::{SimRng, Time};

/// A generated flow, in topology-independent terms (host indices into the
/// experiment's host list).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GenFlow {
    /// Index of the source host.
    pub src: usize,
    /// Index of the destination host.
    pub dst: usize,
    /// Flow size in bytes.
    pub size: u64,
    /// Start time.
    pub start: Time,
    /// Suggested priority class (0..7); fan-in flows share one class,
    /// background flows are spread over the others, per the paper.
    pub class: u8,
}

/// Parameters shared by the pattern generators.
#[derive(Clone, Copy, Debug)]
pub struct PatternConfig {
    /// Number of hosts.
    pub hosts: usize,
    /// Per-host link capacity in bytes/second.
    pub host_bytes_per_sec: f64,
    /// Target load on the aggregate host capacity (0..1].
    pub load: f64,
    /// Generation horizon (flows start in `[0, horizon)`).
    pub horizon: Time,
}

/// Generates one-to-one background traffic: Poisson arrivals at the target
/// load, uniformly random sender/receiver pairs (sender ≠ receiver), sizes
/// from `dist`, classes uniformly random over `classes`.
///
/// # Panics
///
/// Panics if fewer than two hosts or `classes` is empty.
pub fn background_flows(
    cfg: &PatternConfig,
    dist: &FlowSizeDist,
    classes: &[u8],
    rng: &mut SimRng,
) -> Vec<GenFlow> {
    assert!(cfg.hosts >= 2, "need at least two hosts");
    assert!(!classes.is_empty(), "need at least one class");
    let rate = flow_arrival_rate(cfg.load, cfg.hosts as f64 * cfg.host_bytes_per_sec, dist.mean());
    let mut arr = PoissonArrivals::new(rate);
    let starts = arr.schedule(cfg.horizon, rng);
    starts
        .into_iter()
        .map(|start| {
            let src = rng.gen_index(cfg.hosts);
            let mut dst = rng.gen_index(cfg.hosts - 1);
            if dst >= src {
                dst += 1;
            }
            GenFlow { src, dst, size: dist.sample(rng).max(1), start, class: *rng.choose(classes) }
        })
        .collect()
}

/// Generates many-to-one fan-in bursts: at Poisson instants, `fan_in`
/// random senders (outside the receiver's position) each ship
/// `burst_flow_size` bytes to one random receiver simultaneously. All
/// fan-in flows use `class` (the paper puts them in one traffic class).
///
/// The burst arrival rate is chosen so fan-in traffic contributes
/// `cfg.load` of the aggregate capacity.
pub fn fan_in_bursts(
    cfg: &PatternConfig,
    fan_in: usize,
    burst_flow_size: u64,
    class: u8,
    rng: &mut SimRng,
) -> Vec<GenFlow> {
    assert!(cfg.hosts > fan_in, "need more hosts than the fan-in degree");
    let bytes_per_burst = (fan_in as u64 * burst_flow_size) as f64;
    let rate =
        flow_arrival_rate(cfg.load, cfg.hosts as f64 * cfg.host_bytes_per_sec, bytes_per_burst);
    let mut arr = PoissonArrivals::new(rate);
    let starts = arr.schedule(cfg.horizon, rng);
    let mut out = Vec::with_capacity(starts.len() * fan_in);
    for start in starts {
        let dst = rng.gen_index(cfg.hosts);
        let mut senders = Vec::with_capacity(fan_in);
        while senders.len() < fan_in {
            let s = rng.gen_index(cfg.hosts);
            if s != dst && !senders.contains(&s) {
                senders.push(s);
            }
        }
        for src in senders {
            out.push(GenFlow { src, dst, size: burst_flow_size, start, class });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Workload;

    fn cfg() -> PatternConfig {
        PatternConfig {
            hosts: 64,
            host_bytes_per_sec: 12.5e9,
            load: 0.5,
            horizon: Time::from_ms(2),
        }
    }

    #[test]
    fn background_respects_load() {
        let dist = FlowSizeDist::from_workload(Workload::WebSearch);
        let mut rng = SimRng::new(11);
        let flows = background_flows(&cfg(), &dist, &[0, 1, 2], &mut rng);
        let total: f64 = flows.iter().map(|f| f.size as f64).sum();
        let offered = total / 0.002; // bytes/sec over the horizon
        let capacity = 64.0 * 12.5e9;
        let load = offered / capacity;
        assert!((load - 0.5).abs() < 0.12, "load {load}");
        // No self-flows, valid classes.
        assert!(flows.iter().all(|f| f.src != f.dst));
        assert!(flows.iter().all(|f| [0, 1, 2].contains(&f.class)));
    }

    #[test]
    fn fan_in_bursts_are_synchronized_groups() {
        let mut rng = SimRng::new(12);
        let flows = fan_in_bursts(&cfg(), 16, 64 * 1024, 5, &mut rng);
        assert!(!flows.is_empty());
        assert_eq!(flows.len() % 16, 0, "whole bursts only");
        // Each burst: one receiver, 16 distinct senders, same start.
        for burst in flows.chunks(16) {
            let dst = burst[0].dst;
            let start = burst[0].start;
            assert!(burst.iter().all(|f| f.dst == dst && f.start == start && f.class == 5));
            let mut srcs: Vec<usize> = burst.iter().map(|f| f.src).collect();
            srcs.sort_unstable();
            srcs.dedup();
            assert_eq!(srcs.len(), 16, "distinct senders");
            assert!(!srcs.contains(&dst));
        }
    }

    #[test]
    fn fan_in_load_accounting() {
        let mut rng = SimRng::new(13);
        let c = PatternConfig { load: 0.1, ..cfg() };
        let flows = fan_in_bursts(&c, 16, 64 * 1024, 6, &mut rng);
        let total: f64 = flows.iter().map(|f| f.size as f64).sum();
        let load = total / 0.002 / (64.0 * 12.5e9);
        assert!((load - 0.1).abs() < 0.05, "load {load}");
    }
}
