//! Release-mode invariant auditing for the MMU.
//!
//! [`crate::Mmu::audit`] walks every accounting invariant the MMU relies
//! on and returns a structured [`AuditReport`] instead of panicking: each
//! [`AuditViolation`] names the invariant and the port/queue it failed on,
//! so a failing simulation can say *which switch, which port, which rule*
//! rather than dying with a bare `debug_assert!`. Debug builds still
//! assert after every transition, but the audit itself is plain release
//! code — integration tests and telemetry exports run it on every
//! simulated switch.

use crate::config::Scheme;
use crate::mmu::OccupancySnapshot;
use dsh_simcore::Json;
use std::fmt;

/// One violated accounting invariant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditViolation {
    /// Stable kebab-case name of the invariant (e.g.
    /// `port-shared-sum-consistent`).
    pub invariant: &'static str,
    /// Ingress port the violation is scoped to, if any.
    pub port: Option<usize>,
    /// Priority queue the violation is scoped to, if any.
    pub queue: Option<usize>,
    /// The value (or bound) the invariant requires.
    pub expected: u64,
    /// The value actually observed.
    pub actual: u64,
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.invariant)?;
        if let Some(p) = self.port {
            write!(f, " [port {p}")?;
            if let Some(q) = self.queue {
                write!(f, " queue {q}")?;
            }
            write!(f, "]")?;
        }
        write!(f, ": expected {}, actual {}", self.expected, self.actual)
    }
}

impl AuditViolation {
    /// JSON form (`{"invariant":…,"port":…,"queue":…,"expected":…,"actual":…}`).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::object()
            .with("invariant", self.invariant)
            .with("port", self.port.map_or(Json::Null, Json::from))
            .with("queue", self.queue.map_or(Json::Null, Json::from))
            .with("expected", self.expected)
            .with("actual", self.actual)
    }
}

/// The result of one [`crate::Mmu::audit`] pass.
#[derive(Clone, Debug, PartialEq)]
pub struct AuditReport {
    /// The scheme the audited MMU runs.
    pub scheme: Scheme,
    /// Occupancy at audit time (context for the violations).
    pub snapshot: OccupancySnapshot,
    /// Every violated invariant, in check order. Empty ⇒ clean.
    pub violations: Vec<AuditViolation>,
}

impl AuditReport {
    /// Whether every invariant held.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// JSON form, suitable for embedding in telemetry exports.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::object()
            .with("scheme", self.scheme.to_string())
            .with("clean", self.is_clean())
            .with(
                "occupancy",
                Json::object()
                    .with("shared", self.snapshot.shared)
                    .with("private", self.snapshot.private)
                    .with("headroom", self.snapshot.headroom)
                    .with("insurance", self.snapshot.insurance)
                    .with("threshold", self.snapshot.threshold)
                    .with("paused_queues", self.snapshot.paused_queues)
                    .with("paused_ports", self.snapshot.paused_ports),
            )
            .with(
                "violations",
                Json::Arr(self.violations.iter().map(AuditViolation::to_json).collect()),
            )
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "{} MMU audit: clean", self.scheme);
        }
        writeln!(
            f,
            "{} MMU audit: {} violation(s) (shared={} private={} headroom={} insurance={})",
            self.scheme,
            self.violations.len(),
            self.snapshot.shared,
            self.snapshot.private,
            self.snapshot.headroom,
            self.snapshot.insurance
        )?;
        for v in &self.violations {
            writeln!(f, "  - {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violation() -> AuditViolation {
        AuditViolation {
            invariant: "port-shared-sum-consistent",
            port: Some(3),
            queue: None,
            expected: 1500,
            actual: 3000,
        }
    }

    #[test]
    fn violation_display_names_the_site() {
        let text = violation().to_string();
        assert!(text.contains("port-shared-sum-consistent"));
        assert!(text.contains("port 3"));
        assert!(text.contains("expected 1500, actual 3000"));
    }

    #[test]
    fn report_display_and_json() {
        let report = AuditReport {
            scheme: Scheme::Dsh,
            snapshot: OccupancySnapshot::default(),
            violations: vec![violation()],
        };
        assert!(!report.is_clean());
        assert!(report.to_string().contains("1 violation(s)"));
        let j = report.to_json();
        assert_eq!(j.get("clean"), Some(&Json::Bool(false)));
        let v = &j.get("violations").unwrap().as_arr().unwrap()[0];
        assert_eq!(v.get("invariant").unwrap().as_str(), Some("port-shared-sum-consistent"));
        assert_eq!(v.get("queue"), Some(&Json::Null));
        // And the whole thing round-trips through text.
        assert_eq!(Json::parse(&j.to_string()).unwrap(), j);
    }

    #[test]
    fn clean_report_is_quiet() {
        let report = AuditReport {
            scheme: Scheme::Sih,
            snapshot: OccupancySnapshot::default(),
            violations: vec![],
        };
        assert!(report.is_clean());
        assert_eq!(report.to_string(), "SIH MMU audit: clean");
    }
}
