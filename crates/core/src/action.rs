//! Outcomes of MMU admission decisions: buffer-region placement and
//! flow-control actions.

use std::fmt;

/// The buffer segment a packet was accounted in (paper Fig. 2 / Fig. 7).
///
/// The region is returned by [`crate::Mmu::on_arrival`] and must be passed
/// back to [`crate::Mmu::on_departure`] so the right counter is released —
/// this mirrors the per-packet pool tag a real MMU keeps.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Region {
    /// Per-queue reserved private buffer.
    Private,
    /// The shared pool (for DSH this includes dynamically allocated
    /// headroom, which is the point of the scheme).
    Shared,
    /// SIH only: the per-queue static headroom.
    Headroom,
    /// DSH only: the per-port insurance headroom.
    Insurance,
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Region::Private => "private",
            Region::Shared => "shared",
            Region::Headroom => "headroom",
            Region::Insurance => "insurance",
        };
        f.write_str(s)
    }
}

/// The admission rule that finally rejected a dropped packet.
///
/// This is the *decisive* rule — the last-resort segment that would have
/// absorbed the packet but could not. [`crate::Mmu::drop_attribution`]
/// additionally counts every earlier rule the packet failed on the way
/// down (private, DT threshold, pool cap, port pause).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DropReason {
    /// SIH: the queue's static headroom was full (private and shared had
    /// already rejected the packet).
    HeadroomFull,
    /// DSH: the port's insurance headroom was full.
    InsuranceFull,
    /// DSH ablation (`dsh_port_fc = false`): the shared pool rejected the
    /// packet and there is no insurance headroom to fall back on.
    InsuranceDisabled,
    /// Lossy mode: the shared pool (DT threshold or pool cap) rejected the
    /// packet and a lossy switch drops instead of pausing — this is the
    /// mode working as designed, not a losslessness violation.
    DropTail,
}

impl fmt::Display for DropReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DropReason::HeadroomFull => "headroom-full",
            DropReason::InsuranceFull => "insurance-full",
            DropReason::InsuranceDisabled => "insurance-disabled",
            DropReason::DropTail => "drop-tail",
        })
    }
}

/// A flow-control command the MMU asks the switch to execute.
///
/// Queue-level actions map to standard PFC PAUSE/RESUME frames for one
/// priority; port-level actions map to a PFC frame with *all* priority
/// timers set/unset (paper §IV-B).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FcAction {
    /// Send a PAUSE for `queue` to the device upstream of `port`.
    QueuePause {
        /// Ingress port whose upstream must pause.
        port: usize,
        /// Priority queue to pause.
        queue: usize,
    },
    /// Send a RESUME (zero-duration PAUSE) for `queue` upstream of `port`.
    QueueResume {
        /// Ingress port whose upstream may resume.
        port: usize,
        /// Priority queue to resume.
        queue: usize,
    },
    /// Pause **all** traffic classes upstream of `port` (DSH port-level
    /// flow control).
    PortPause {
        /// Ingress port whose upstream must pause entirely.
        port: usize,
    },
    /// Resume all traffic classes upstream of `port`.
    PortResume {
        /// Ingress port whose upstream may resume entirely.
        port: usize,
    },
}

/// A fixed-capacity list of flow-control actions.
///
/// One MMU transition can emit at most two actions (a queue-level and a
/// port-level one), so this avoids heap allocation on the per-packet fast
/// path.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct FcActions {
    items: [Option<FcAction>; 2],
    len: usize,
}

impl FcActions {
    /// No actions.
    #[must_use]
    pub fn none() -> Self {
        FcActions::default()
    }

    /// Appends an action.
    ///
    /// # Panics
    ///
    /// Panics if more than two actions are pushed (impossible for a single
    /// MMU transition; indicates a logic bug).
    pub fn push(&mut self, action: FcAction) {
        assert!(self.len < 2, "an MMU transition emits at most two actions");
        self.items[self.len] = Some(action);
        self.len += 1;
    }

    /// Number of actions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether there are no actions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over the actions.
    pub fn iter(&self) -> impl Iterator<Item = &FcAction> {
        self.items[..self.len].iter().map(|a| a.as_ref().expect("len invariant"))
    }
}

impl IntoIterator for FcActions {
    type Item = FcAction;
    type IntoIter = std::iter::Flatten<std::array::IntoIter<Option<FcAction>, 2>>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter().flatten()
    }
}

/// Result of an admission decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Outcome {
    /// Where the packet was placed, or `None` if it was dropped.
    pub region: Option<Region>,
    /// The decisive rejection rule when the packet was dropped.
    pub drop_reason: Option<DropReason>,
    /// Flow-control actions triggered by this transition.
    pub actions: FcActions,
}

impl Outcome {
    /// An outcome with a region and no actions.
    #[must_use]
    pub fn placed(region: Region) -> Self {
        Outcome { region: Some(region), drop_reason: None, actions: FcActions::none() }
    }

    /// A drop outcome attributed to `reason`.
    #[must_use]
    pub fn dropped(reason: DropReason) -> Self {
        Outcome { region: None, drop_reason: Some(reason), actions: FcActions::none() }
    }

    /// Whether the packet was admitted.
    #[must_use]
    pub fn is_admitted(&self) -> bool {
        self.region.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fc_actions_push_and_iterate() {
        let mut a = FcActions::none();
        assert!(a.is_empty());
        a.push(FcAction::QueuePause { port: 1, queue: 2 });
        a.push(FcAction::PortPause { port: 1 });
        assert_eq!(a.len(), 2);
        let v: Vec<FcAction> = a.into_iter().collect();
        assert_eq!(
            v,
            vec![FcAction::QueuePause { port: 1, queue: 2 }, FcAction::PortPause { port: 1 }]
        );
    }

    #[test]
    #[should_panic(expected = "at most two")]
    fn overflow_panics() {
        let mut a = FcActions::none();
        a.push(FcAction::PortPause { port: 0 });
        a.push(FcAction::PortPause { port: 0 });
        a.push(FcAction::PortPause { port: 0 });
    }

    #[test]
    fn outcome_constructors() {
        assert!(Outcome::placed(Region::Shared).is_admitted());
        let drop = Outcome::dropped(DropReason::InsuranceFull);
        assert!(!drop.is_admitted());
        assert_eq!(drop.drop_reason, Some(DropReason::InsuranceFull));
        assert_eq!(Region::Insurance.to_string(), "insurance");
        assert_eq!(DropReason::HeadroomFull.to_string(), "headroom-full");
    }
}
