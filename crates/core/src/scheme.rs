//! Pluggable headroom-allocation policies: the [`MmuScheme`] trait and its
//! SIH, DSH, BShare and Lossy (no-PFC drop-tail) implementations.
//!
//! The MMU is split into mechanism and policy. The mechanism —
//! [`MmuCore`]: byte counters per region, pause-flag flips, statistics,
//! drop attribution and trace emission — is shared by every scheme, so the
//! conservation invariants [`crate::Mmu::audit`] checks hold no matter
//! which policy runs. A scheme supplies the policy: where an arriving
//! packet is accounted (admission), when PAUSE/RESUME frames are emitted
//! (flow control) and which extra invariants it adds to the audit.
//!
//! The contract (DESIGN.md, "The MmuScheme trait contract"):
//!
//! * a scheme may observe any core state, but mutates occupancy and pause
//!   state exclusively through the `MmuCore` charge/release/pause/resume
//!   helpers (plus the drop-attribution counters), so the shared audit
//!   stays authoritative;
//! * `on_arrival`/`on_departure` must be deterministic functions of the
//!   (core, scheme) state and their arguments — no wall clocks, no
//!   randomness; the only notion of time is the `now` the caller passes;
//! * the per-packet path must stay allocation-free: per-queue scheme
//!   state is sized once at construction and [`MmuScheme::reset`] must
//!   not allocate either. Dispatch is static, via the [`SchemeImpl`]
//!   enum-of-impls.

use crate::action::{DropReason, FcActions, Outcome, Region};
use crate::audit::AuditViolation;
use crate::config::{MmuConfig, Scheme};
use crate::mmu::MmuCore;
use dsh_simcore::Time;

/// A headroom-allocation policy driving one [`MmuCore`].
///
/// Implementations exist for the paper's two schemes (SIH §III, DSH §IV)
/// plus BShare's queueing-delay-driven sharing; [`SchemeImpl`] dispatches
/// between them statically.
pub trait MmuScheme {
    /// Admission decision for a packet of `bytes` arriving at ingress
    /// `port`, priority `queue`: place it in a buffer region (charging the
    /// core's counters) or reject it, emitting any PAUSE/RESUME actions
    /// the transition triggers.
    fn on_arrival(
        &mut self,
        core: &mut MmuCore,
        port: usize,
        queue: usize,
        bytes: u64,
        now: Time,
    ) -> Outcome;

    /// Releases a departing packet's accounting (the `region` its arrival
    /// charged) and applies the scheme's resume policy.
    fn on_departure(
        &mut self,
        core: &mut MmuCore,
        port: usize,
        queue: usize,
        bytes: u64,
        region: Region,
        now: Time,
    ) -> FcActions;

    /// Appends the scheme-specific audit invariants (segments and states
    /// this scheme never uses must stay empty).
    fn audit(&self, core: &MmuCore, violations: &mut Vec<AuditViolation>);

    /// Per-port headroom occupancy — the quantity whose local maxima
    /// Fig. 6 analyses (SIH: static headroom; DSH/BShare: insurance).
    fn port_headroom_occupancy(&self, core: &MmuCore, port: usize) -> u64;

    /// Clears any scheme-internal estimator state (called from
    /// [`crate::Mmu::reset_occupancy`]). Must not allocate.
    fn reset(&mut self) {}
}

// ---- SIH ----------------------------------------------------------------

/// Static Independent Headroom (paper §III): worst-case `η` statically
/// reserved per ingress queue; queue-level PFC at the DT threshold.
#[derive(Clone, Copy, Debug, Default)]
pub struct SihScheme;

impl SihScheme {
    /// Queue-level resume check (paper case ② / Fig. 8a): `X_on = T(t) − δ`
    /// against shared occupancy, gated on the queue's headroom having
    /// drained (otherwise the next pause cycle would find less than `η`
    /// of slack and could overflow).
    fn check_resume_queue(
        &self,
        core: &mut MmuCore,
        port: usize,
        queue: usize,
        actions: &mut FcActions,
    ) {
        let idx = core.qidx(port, queue);
        if core.queues[idx].headroom > 0 {
            return;
        }
        let x_on = core.threshold().saturating_sub(core.cfg.resume_delta_queue.as_u64());
        core.resume_queue_below(port, queue, x_on, actions);
    }
}

impl MmuScheme for SihScheme {
    fn on_arrival(
        &mut self,
        core: &mut MmuCore,
        port: usize,
        queue: usize,
        bytes: u64,
        _now: Time,
    ) -> Outcome {
        let idx = core.qidx(port, queue);
        let phi = core.cfg.private_per_queue.as_u64();
        let eta = core.cfg.eta_for(port).as_u64();
        let t = core.threshold();

        let region = {
            let q = &core.queues[idx];
            if q.private + bytes <= phi {
                Some(Region::Private)
            } else if q.shared + bytes <= t && core.total_shared + bytes <= core.dt.shared_size() {
                Some(Region::Shared)
            } else if q.headroom + bytes <= eta {
                Some(Region::Headroom)
            } else {
                None
            }
        };

        let mut actions = FcActions::none();
        let mut drop_reason = None;
        match region {
            Some(Region::Private) => {
                core.charge_private(idx, bytes);
                self.check_resume_queue(core, port, queue, &mut actions);
            }
            Some(Region::Shared) => {
                core.charge_shared(idx, port, bytes);
                self.check_resume_queue(core, port, queue, &mut actions);
            }
            Some(Region::Headroom) => {
                core.charge_headroom(idx, port, bytes);
                // Case ③ (§II-C): entering headroom pauses the upstream.
                core.pause_queue(port, queue, &mut actions);
            }
            Some(Region::Insurance) => unreachable!("SIH never uses insurance"),
            None => {
                // Attribute the drop to every rule that rejected it.
                let q = &core.queues[idx];
                core.attribution.private_full += 1;
                if q.shared + bytes > t {
                    core.attribution.dt_threshold += 1;
                }
                if core.total_shared + bytes > core.dt.shared_size() {
                    core.attribution.shared_cap += 1;
                }
                core.attribution.headroom_full += 1;
                drop_reason = Some(DropReason::HeadroomFull);
                // Defensive: a drop means headroom was exhausted; make sure
                // the upstream is paused (it should already be).
                core.pause_queue(port, queue, &mut actions);
            }
        }

        Outcome { region, drop_reason, actions }
    }

    fn on_departure(
        &mut self,
        core: &mut MmuCore,
        port: usize,
        queue: usize,
        bytes: u64,
        region: Region,
        _now: Time,
    ) -> FcActions {
        core.release(port, queue, bytes, region);
        let mut actions = FcActions::none();
        self.check_resume_queue(core, port, queue, &mut actions);
        actions
    }

    fn audit(&self, core: &MmuCore, violations: &mut Vec<AuditViolation>) {
        for (port, p) in core.ports.iter().enumerate() {
            if p.insurance > 0 {
                violations.push(AuditViolation {
                    invariant: "sih-no-insurance",
                    port: Some(port),
                    queue: None,
                    expected: 0,
                    actual: p.insurance,
                });
            }
            if p.paused {
                violations.push(AuditViolation {
                    invariant: "sih-no-port-pause",
                    port: Some(port),
                    queue: None,
                    expected: 0,
                    actual: 1,
                });
            }
        }
    }

    fn port_headroom_occupancy(&self, core: &MmuCore, port: usize) -> u64 {
        let base = port * core.cfg.queues_per_port;
        core.queues[base..base + core.cfg.queues_per_port].iter().map(|q| q.headroom).sum()
    }
}

// ---- DSH ----------------------------------------------------------------

/// Dynamic and Shared Headroom (paper §IV): headroom folded into the
/// shared pool; queue pause at `X_qoff = T(t) − η` (Eq. 5), port pause at
/// `X_poff = N_q·T(t)` (Eq. 6) backed by per-port insurance headroom.
#[derive(Clone, Copy, Debug, Default)]
pub struct DshScheme;

impl DshScheme {
    /// DSH queue resume: `X_qon = X_qoff − δ_q`. The slack here is
    /// recomputed from the live threshold (`T − w ≥ η` whenever
    /// `w ≤ X_qoff`), so no headroom-empty gate is needed.
    fn check_resume_queue(
        &self,
        core: &mut MmuCore,
        port: usize,
        queue: usize,
        actions: &mut FcActions,
    ) {
        let x_on = core.x_qoff_for(port).saturating_sub(core.cfg.resume_delta_queue.as_u64());
        core.resume_queue_below(port, queue, x_on, actions);
    }
}

impl MmuScheme for DshScheme {
    fn on_arrival(
        &mut self,
        core: &mut MmuCore,
        port: usize,
        queue: usize,
        bytes: u64,
        _now: Time,
    ) -> Outcome {
        let idx = core.qidx(port, queue);
        shared_pool_arrival(
            core,
            port,
            queue,
            idx,
            bytes,
            |core| core.x_qoff_for(port),
            |core, p, q, a| DshScheme.check_resume_queue(core, p, q, a),
        )
    }

    fn on_departure(
        &mut self,
        core: &mut MmuCore,
        port: usize,
        queue: usize,
        bytes: u64,
        region: Region,
        _now: Time,
    ) -> FcActions {
        core.release(port, queue, bytes, region);
        let mut actions = FcActions::none();
        self.check_resume_queue(core, port, queue, &mut actions);
        core.check_resume_port(port, &mut actions);
        actions
    }

    fn audit(&self, core: &MmuCore, violations: &mut Vec<AuditViolation>) {
        audit_no_static_headroom(core, "dsh-no-static-headroom", violations);
    }

    fn port_headroom_occupancy(&self, core: &MmuCore, port: usize) -> u64 {
        core.ports[port].insurance
    }
}

// ---- BShare -------------------------------------------------------------

/// Per-queue drain-rate estimate: an EWMA (gain 1/8) over instantaneous
/// departure rates, in bytes per nanosecond.
#[derive(Clone, Copy, Debug, Default)]
struct DrainEstimate {
    /// EWMA service rate in bytes/ns; meaningless until `primed`.
    rate: f64,
    /// Timestamp of the queue's previous departure.
    last_departure: Time,
    /// Whether at least one rate sample has been folded in.
    primed: bool,
}

/// BShare: packet-queueing-delay-driven buffer sharing (PAPERS.md,
/// arxiv 2605.24178), adapted to the PFC-headroom setting.
///
/// Admission, port-level flow control and the insurance headroom are
/// exactly DSH's — which is what makes the scheme lossless, since its
/// only deviation tightens a pause threshold. The deviation: each
/// queue's pause threshold is capped by the buffer its measured drain
/// rate can empty within the configured delay target, so a slow-draining
/// queue pauses its upstream *earlier* than DSH's `X_qoff` and cannot
/// build standing queueing delay beyond the target. Queues with no
/// estimate yet (or an idle history) fall back to plain DSH behaviour.
#[derive(Clone, Debug)]
pub struct BShareScheme {
    /// One estimator per (port, queue), indexed like `MmuCore::queues`.
    drain: Vec<DrainEstimate>,
    /// The delay target in nanoseconds (from
    /// [`MmuConfig::bshare_delay_target`]).
    delay_target_ns: f64,
}

impl BShareScheme {
    /// Sizes the per-queue estimators for `cfg`'s topology.
    #[must_use]
    pub fn new(cfg: &MmuConfig) -> Self {
        BShareScheme {
            drain: vec![DrainEstimate::default(); cfg.total_queues()],
            delay_target_ns: cfg.bshare_delay_target.as_ns() as f64,
        }
    }

    /// The delay-derived cap on a queue's shared occupancy:
    /// `rate × delay_target` bytes, or "no cap" before the first rate
    /// sample (which degenerates to DSH).
    fn delay_cap(&self, idx: usize) -> u64 {
        let e = &self.drain[idx];
        if !e.primed {
            return u64::MAX;
        }
        // f64→u64 casts saturate, so an over-large product is just "no cap".
        (e.rate * self.delay_target_ns) as u64
    }

    /// The queue pause threshold: DSH's `X_qoff` tightened by the delay
    /// cap (Eq. 5 with a min).
    fn x_qoff(&self, core: &MmuCore, port: usize, idx: usize) -> u64 {
        core.x_qoff_for(port).min(self.delay_cap(idx))
    }

    /// Folds one departure into the queue's drain-rate EWMA.
    fn observe_departure(&mut self, idx: usize, bytes: u64, now: Time) {
        let e = &mut self.drain[idx];
        let dt = now.as_ns().saturating_sub(e.last_departure.as_ns());
        if dt > 0 {
            let inst = bytes as f64 / dt as f64;
            e.rate = if e.primed { e.rate + (inst - e.rate) * 0.125 } else { inst };
            e.primed = true;
        }
        e.last_departure = now;
    }

    /// Queue resume at `X_qon = min(X_qoff, delay cap) − δ_q`, mirroring
    /// the tightened pause threshold.
    fn check_resume_queue(
        &self,
        core: &mut MmuCore,
        port: usize,
        queue: usize,
        actions: &mut FcActions,
    ) {
        let idx = core.qidx(port, queue);
        let x_on =
            self.x_qoff(core, port, idx).saturating_sub(core.cfg.resume_delta_queue.as_u64());
        core.resume_queue_below(port, queue, x_on, actions);
    }
}

impl MmuScheme for BShareScheme {
    fn on_arrival(
        &mut self,
        core: &mut MmuCore,
        port: usize,
        queue: usize,
        bytes: u64,
        _now: Time,
    ) -> Outcome {
        let idx = core.qidx(port, queue);
        let this = &*self;
        shared_pool_arrival(
            core,
            port,
            queue,
            idx,
            bytes,
            |core| this.x_qoff(core, port, idx),
            |core, p, q, a| this.check_resume_queue(core, p, q, a),
        )
    }

    fn on_departure(
        &mut self,
        core: &mut MmuCore,
        port: usize,
        queue: usize,
        bytes: u64,
        region: Region,
        now: Time,
    ) -> FcActions {
        let idx = core.qidx(port, queue);
        self.observe_departure(idx, bytes, now);
        core.release(port, queue, bytes, region);
        let mut actions = FcActions::none();
        self.check_resume_queue(core, port, queue, &mut actions);
        core.check_resume_port(port, &mut actions);
        actions
    }

    fn audit(&self, core: &MmuCore, violations: &mut Vec<AuditViolation>) {
        audit_no_static_headroom(core, "bshare-no-static-headroom", violations);
    }

    fn port_headroom_occupancy(&self, core: &MmuCore, port: usize) -> u64 {
        core.ports[port].insurance
    }

    fn reset(&mut self) {
        for e in &mut self.drain {
            *e = DrainEstimate::default();
        }
    }
}

// ---- Lossy (no-PFC) -----------------------------------------------------

/// Lossy (drop-tail) mode: the IRN-style counterfactual to PFC.
///
/// Admission is DT against the shared pool exactly like SIH's shared
/// stage — private → shared gated on the per-queue threshold `T(t)` and
/// the pool cap — but past the threshold the packet is **dropped**, not
/// absorbed into headroom, and no PAUSE frame is ever emitted. Zero bytes
/// are reserved as headroom ([`MmuConfig::reserved_headroom`] returns 0),
/// so the whole chip minus private buffer serves the shared pool. ECN
/// marking (applied at egress by the network layer) is the only
/// congestion signal; loss recovery is the transport's job.
#[derive(Clone, Copy, Debug, Default)]
pub struct LossyScheme;

impl MmuScheme for LossyScheme {
    fn on_arrival(
        &mut self,
        core: &mut MmuCore,
        port: usize,
        queue: usize,
        bytes: u64,
        _now: Time,
    ) -> Outcome {
        let idx = core.qidx(port, queue);
        let phi = core.cfg.private_per_queue.as_u64();
        let t = core.threshold();

        let region = {
            let q = &core.queues[idx];
            if q.private + bytes <= phi {
                Some(Region::Private)
            } else if q.shared + bytes <= t && core.total_shared + bytes <= core.dt.shared_size() {
                Some(Region::Shared)
            } else {
                None
            }
        };

        let mut drop_reason = None;
        match region {
            Some(Region::Private) => core.charge_private(idx, bytes),
            Some(Region::Shared) => core.charge_shared(idx, port, bytes),
            Some(_) => unreachable!("lossy mode only uses private and shared"),
            None => {
                // Attribute the drop to every rule that rejected it.
                let q = &core.queues[idx];
                core.attribution.private_full += 1;
                if q.shared + bytes > t {
                    core.attribution.dt_threshold += 1;
                }
                if core.total_shared + bytes > core.dt.shared_size() {
                    core.attribution.shared_cap += 1;
                }
                core.attribution.drop_tail += 1;
                drop_reason = Some(DropReason::DropTail);
            }
        }

        // Never any flow-control action: that is the definition of lossy.
        Outcome { region, drop_reason, actions: FcActions::none() }
    }

    fn on_departure(
        &mut self,
        core: &mut MmuCore,
        port: usize,
        queue: usize,
        bytes: u64,
        region: Region,
        _now: Time,
    ) -> FcActions {
        core.release(port, queue, bytes, region);
        FcActions::none()
    }

    fn audit(&self, core: &MmuCore, violations: &mut Vec<AuditViolation>) {
        audit_no_static_headroom(core, "lossy-no-headroom", violations);
        for (port, p) in core.ports.iter().enumerate() {
            if p.insurance > 0 {
                violations.push(AuditViolation {
                    invariant: "lossy-no-insurance",
                    port: Some(port),
                    queue: None,
                    expected: 0,
                    actual: p.insurance,
                });
            }
            if p.paused {
                violations.push(AuditViolation {
                    invariant: "lossy-no-pause",
                    port: Some(port),
                    queue: None,
                    expected: 0,
                    actual: 1,
                });
            }
        }
        for (i, q) in core.queues.iter().enumerate() {
            if q.paused {
                violations.push(AuditViolation {
                    invariant: "lossy-no-pause",
                    port: Some(i / core.cfg.queues_per_port),
                    queue: Some(i % core.cfg.queues_per_port),
                    expected: 0,
                    actual: 1,
                });
            }
        }
    }

    fn port_headroom_occupancy(&self, _core: &MmuCore, _port: usize) -> u64 {
        0
    }
}

// ---- shared-pool admission (DSH & BShare) -------------------------------

/// The shared-pool arrival state machine DSH and BShare have in common
/// (paper Fig. 8): private → shared (gated on POFF and the pool cap) →
/// insurance → drop. Only the queue pause threshold (`x_qoff`) and the
/// queue resume policy differ between the two schemes, so they are passed
/// in. `x_qoff` is evaluated *after* the packet is charged, matching the
/// original inline code.
fn shared_pool_arrival(
    core: &mut MmuCore,
    port: usize,
    queue: usize,
    idx: usize,
    bytes: u64,
    x_qoff: impl FnOnce(&MmuCore) -> u64,
    mut check_resume_queue: impl FnMut(&mut MmuCore, usize, usize, &mut FcActions),
) -> Outcome {
    let phi = core.cfg.private_per_queue.as_u64();
    let eta = core.cfg.eta_for(port).as_u64();

    let region = {
        let q = &core.queues[idx];
        let p = &core.ports[port];
        if q.private + bytes <= phi {
            Some(Region::Private)
        } else if !p.paused && core.total_shared + bytes <= core.dt.shared_size() {
            // PON: packets go into the shared segment, which includes
            // the dynamically allocated headroom (the paper's key idea).
            Some(Region::Shared)
        } else if core.cfg.dsh_port_fc && p.insurance + bytes <= eta {
            // POFF (or the shared pool is physically full): in-flight
            // packets are absorbed by the per-port insurance headroom.
            Some(Region::Insurance)
        } else {
            None
        }
    };

    let mut actions = FcActions::none();
    let mut drop_reason = None;
    match region {
        Some(Region::Private) => {
            core.charge_private(idx, bytes);
            check_resume_queue(core, port, queue, &mut actions);
            core.check_resume_port(port, &mut actions);
        }
        Some(Region::Shared) => {
            core.charge_shared(idx, port, bytes);
            // Recompute thresholds with the new occupancy and fire the
            // queue- and port-level state machines (Fig. 8).
            let x_qoff = x_qoff(core);
            let x_poff = core.x_poff();
            if core.queues[idx].shared > x_qoff {
                core.pause_queue(port, queue, &mut actions);
            } else {
                check_resume_queue(core, port, queue, &mut actions);
            }
            if core.cfg.dsh_port_fc && core.port_total_occupancy(port) > x_poff {
                core.pause_port(port, &mut actions);
            }
        }
        Some(Region::Insurance) => {
            core.charge_insurance(port, bytes);
            // Insurance occupancy means the port must be (or go) POFF.
            core.pause_port(port, &mut actions);
        }
        Some(Region::Headroom) => unreachable!("shared-pool schemes never use static headroom"),
        None => {
            // Attribute the drop to every rule that rejected it.
            core.attribution.private_full += 1;
            if core.ports[port].paused {
                core.attribution.port_paused += 1;
            }
            if core.total_shared + bytes > core.dt.shared_size() {
                core.attribution.shared_cap += 1;
            }
            drop_reason = Some(if core.cfg.dsh_port_fc {
                core.attribution.insurance_full += 1;
                DropReason::InsuranceFull
            } else {
                core.attribution.insurance_disabled += 1;
                DropReason::InsuranceDisabled
            });
            if core.cfg.dsh_port_fc {
                core.pause_port(port, &mut actions);
            }
        }
    }

    Outcome { region, drop_reason, actions }
}

/// Shared audit arm for shared-pool schemes: the static-headroom segment
/// must stay empty.
fn audit_no_static_headroom(
    core: &MmuCore,
    invariant: &'static str,
    violations: &mut Vec<AuditViolation>,
) {
    for (i, q) in core.queues.iter().enumerate() {
        if q.headroom > 0 {
            violations.push(AuditViolation {
                invariant,
                port: Some(i / core.cfg.queues_per_port),
                queue: Some(i % core.cfg.queues_per_port),
                expected: 0,
                actual: q.headroom,
            });
        }
    }
}

// ---- static dispatch ----------------------------------------------------

/// Enum-of-impls static dispatch over the built-in schemes: keeps the
/// per-packet path free of vtable indirection and heap allocation.
#[derive(Clone, Debug)]
pub enum SchemeImpl {
    /// Static Independent Headroom.
    Sih(SihScheme),
    /// Dynamic and Shared Headroom.
    Dsh(DshScheme),
    /// Queueing-delay-driven sharing.
    BShare(BShareScheme),
    /// Lossy (no-PFC) drop-tail mode.
    Lossy(LossyScheme),
}

impl SchemeImpl {
    /// Instantiates the scheme `cfg` selects.
    #[must_use]
    pub fn for_config(cfg: &MmuConfig) -> Self {
        match cfg.scheme {
            Scheme::Sih => SchemeImpl::Sih(SihScheme),
            Scheme::Dsh => SchemeImpl::Dsh(DshScheme),
            Scheme::BShare => SchemeImpl::BShare(BShareScheme::new(cfg)),
            Scheme::Lossy => SchemeImpl::Lossy(LossyScheme),
        }
    }
}

macro_rules! dispatch {
    ($self:expr, $s:ident => $body:expr) => {
        match $self {
            SchemeImpl::Sih($s) => $body,
            SchemeImpl::Dsh($s) => $body,
            SchemeImpl::BShare($s) => $body,
            SchemeImpl::Lossy($s) => $body,
        }
    };
}

impl MmuScheme for SchemeImpl {
    fn on_arrival(
        &mut self,
        core: &mut MmuCore,
        port: usize,
        queue: usize,
        bytes: u64,
        now: Time,
    ) -> Outcome {
        dispatch!(self, s => s.on_arrival(core, port, queue, bytes, now))
    }

    fn on_departure(
        &mut self,
        core: &mut MmuCore,
        port: usize,
        queue: usize,
        bytes: u64,
        region: Region,
        now: Time,
    ) -> FcActions {
        dispatch!(self, s => s.on_departure(core, port, queue, bytes, region, now))
    }

    fn audit(&self, core: &MmuCore, violations: &mut Vec<AuditViolation>) {
        dispatch!(self, s => s.audit(core, violations))
    }

    fn port_headroom_occupancy(&self, core: &MmuCore, port: usize) -> u64 {
        dispatch!(self, s => s.port_headroom_occupancy(core, port))
    }

    fn reset(&mut self) {
        dispatch!(self, s => s.reset())
    }
}
