//! MMU configuration: buffer partitioning parameters and chip presets.

use crate::headroom;
use dsh_simcore::{Bandwidth, ByteSize, Delta};

/// Which headroom allocation scheme the MMU runs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Scheme {
    /// Static Independent Headroom — today's practice: worst-case `η`
    /// reserved per ingress queue (paper §III).
    Sih,
    /// Dynamic and Shared Headroom — the paper's contribution (§IV).
    Dsh,
    /// BShare's queueing-delay-driven sharing (arxiv 2605.24178): DSH's
    /// admission and insurance machinery, with the queue pause threshold
    /// additionally capped at `drain_rate × delay_target` so slow-draining
    /// queues pause before they build deep standing queues.
    BShare,
    /// Lossy (no-PFC) mode — the IRN-style counterfactual: zero bytes
    /// reserved as headroom, drop-tail admission against the DT-governed
    /// shared pool, and **no flow-control actions ever** (a frame past
    /// its threshold is dropped, not paused upstream). Loss recovery is
    /// the NICs' problem; the MMU only attributes the drops.
    Lossy,
}

impl Scheme {
    /// Every *lossless* scheme, in sweep order (SIH first, matching the
    /// paper's baseline-then-contribution presentation). [`Scheme::Lossy`]
    /// is deliberately excluded: the paper's figure sweeps compare PFC
    /// headroom schemes, and the lossy counterfactual gets its own figure
    /// (fig17).
    pub const ALL: [Scheme; 3] = [Scheme::Sih, Scheme::Dsh, Scheme::BShare];

    /// Whether this scheme guarantees losslessness via PFC. `false` only
    /// for [`Scheme::Lossy`].
    #[must_use]
    pub fn is_lossless(self) -> bool {
        !matches!(self, Scheme::Lossy)
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Scheme::Sih => "SIH",
            Scheme::Dsh => "DSH",
            Scheme::BShare => "BShare",
            Scheme::Lossy => "Lossy",
        })
    }
}

/// Complete configuration of a lossless-pool MMU.
///
/// Construct via [`MmuConfig::builder`] or a chip preset such as
/// [`MmuConfig::tomahawk`].
#[derive(Clone, Debug, PartialEq)]
pub struct MmuConfig {
    /// Headroom scheme under test.
    pub scheme: Scheme,
    /// Total lossless-pool buffer.
    pub total_buffer: ByteSize,
    /// Number of (ingress) ports.
    pub num_ports: usize,
    /// Number of lossless queues per port (`N_q`; the paper uses 7, with
    /// the 8th queue reserved for control traffic outside the MMU).
    pub queues_per_port: usize,
    /// Private buffer reserved per queue (`φ`).
    pub private_per_queue: ByteSize,
    /// Per-queue worst-case headroom `η` (Eq. 1), used for every port
    /// unless overridden by [`MmuConfig::port_etas`].
    pub eta: ByteSize,
    /// Optional per-port `η` override (index = port). Real deployments
    /// size headroom per port from that port's link speed and cable
    /// length; mixed-speed fabrics (e.g. 100G downlinks + 400G uplinks)
    /// need this.
    pub port_etas: Option<Vec<ByteSize>>,
    /// Dynamic Threshold control parameter `α` (Eq. 2).
    pub alpha: f64,
    /// Hysteresis below `X_qoff` before a queue RESUME is sent (`δ_q`). The
    /// paper's evaluation uses 0 ("the X_on threshold is the same as the
    /// X_off threshold").
    pub resume_delta_queue: ByteSize,
    /// Hysteresis below `X_poff` before a port RESUME is sent (`δ_p`).
    pub resume_delta_port: ByteSize,
    /// Ablation switch: disable DSH's port-level flow control and
    /// insurance headroom, leaving only queue-level pauses at
    /// `T(t) − η`. **Not lossless** — exists to demonstrate why the
    /// insurance headroom is necessary (DESIGN.md ablations).
    pub dsh_port_fc: bool,
    /// BShare only: target per-packet queueing delay. The queue pause
    /// threshold is capped at `drain_rate × bshare_delay_target`; SIH and
    /// DSH ignore this field.
    pub bshare_delay_target: Delta,
}

impl MmuConfig {
    /// Starts building a configuration.
    #[must_use]
    pub fn builder() -> MmuConfigBuilder {
        MmuConfigBuilder::default()
    }

    /// The Broadcom Tomahawk emulation used throughout the paper's
    /// evaluation (§V-A): 32×100 Gb/s ports, 16 MB shared memory, 7 DWRR
    /// lossless queues per port, 3 KB private buffer per queue, `α = 1/16`,
    /// 2 µs link delay ⇒ `η = 56840 B`.
    #[must_use]
    pub fn tomahawk(scheme: Scheme) -> MmuConfig {
        MmuConfig::builder()
            .scheme(scheme)
            .total_buffer(ByteSize::mib(16))
            .ports(32)
            .lossless_queues(7)
            .private_per_queue(ByteSize::kib(3))
            .eta_from_link(Bandwidth::from_gbps(100), Delta::from_us(2), 1500)
            .alpha(1.0 / 16.0)
            .build()
    }

    /// The headroom `η` for one port.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range of a configured override table.
    #[must_use]
    pub fn eta_for(&self, port: usize) -> ByteSize {
        match &self.port_etas {
            Some(v) => v[port],
            None => self.eta,
        }
    }

    /// Size of the statically reserved headroom segment.
    ///
    /// SIH: `Σ_p N_q·η_p` (Eq. 3). DSH: the insurance headroom `Σ_p η_p`
    /// (Eq. 4).
    #[must_use]
    pub fn reserved_headroom(&self) -> ByteSize {
        let per_port_sum: u64 = (0..self.num_ports).map(|p| self.eta_for(p).as_u64()).sum();
        match self.scheme {
            Scheme::Sih => ByteSize::bytes(self.queues_per_port as u64 * per_port_sum),
            Scheme::Dsh | Scheme::BShare if self.dsh_port_fc => ByteSize::bytes(per_port_sum),
            Scheme::Dsh | Scheme::BShare => ByteSize::ZERO,
            // The whole point: a lossy switch holds not one byte hostage.
            Scheme::Lossy => ByteSize::ZERO,
        }
    }

    /// Total private buffer (`N_p·N_q·φ`).
    #[must_use]
    pub fn total_private(&self) -> ByteSize {
        ByteSize::bytes(
            self.num_ports as u64 * self.queues_per_port as u64 * self.private_per_queue.as_u64(),
        )
    }

    /// Size of the shared segment `B_s`: what remains after private and
    /// reserved headroom. For DSH this includes the (dynamically shared)
    /// headroom, which is the scheme's key advantage.
    #[must_use]
    pub fn shared_size(&self) -> ByteSize {
        self.total_buffer
            .saturating_sub(self.total_private())
            .saturating_sub(self.reserved_headroom())
    }

    /// Total number of lossless queues (`N_p·N_q`).
    #[must_use]
    pub fn total_queues(&self) -> usize {
        self.num_ports * self.queues_per_port
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_ports == 0 || self.queues_per_port == 0 {
            return Err("port and queue counts must be positive".into());
        }
        if !(self.alpha.is_finite() && self.alpha > 0.0) {
            return Err("alpha must be a positive finite number".into());
        }
        if self.eta.as_u64() == 0 {
            return Err("eta must be positive".into());
        }
        if let Some(v) = &self.port_etas {
            if v.len() != self.num_ports {
                return Err(format!(
                    "port_etas has {} entries for {} ports",
                    v.len(),
                    self.num_ports
                ));
            }
            if v.iter().any(|e| e.as_u64() == 0) {
                return Err("per-port eta must be positive".into());
            }
        }
        if self.scheme == Scheme::BShare && self.bshare_delay_target.as_ns() == 0 {
            return Err("BShare requires a positive bshare_delay_target".into());
        }
        if self.shared_size().as_u64() == 0 {
            return Err(format!(
                "no shared buffer left: total={} private={} reserved headroom={}",
                self.total_buffer,
                self.total_private(),
                self.reserved_headroom()
            ));
        }
        Ok(())
    }
}

/// Builder for [`MmuConfig`].
#[derive(Clone, Debug)]
pub struct MmuConfigBuilder {
    scheme: Scheme,
    total_buffer: ByteSize,
    num_ports: usize,
    queues_per_port: usize,
    private_per_queue: ByteSize,
    eta: ByteSize,
    port_etas: Option<Vec<ByteSize>>,
    alpha: f64,
    resume_delta_queue: ByteSize,
    resume_delta_port: ByteSize,
    dsh_port_fc: bool,
    bshare_delay_target: Delta,
}

impl Default for MmuConfigBuilder {
    fn default() -> Self {
        MmuConfigBuilder {
            scheme: Scheme::Dsh,
            total_buffer: ByteSize::mib(16),
            num_ports: 32,
            queues_per_port: 7,
            private_per_queue: ByteSize::kib(3),
            eta: ByteSize::bytes(56_840),
            port_etas: None,
            alpha: 1.0 / 16.0,
            resume_delta_queue: ByteSize::ZERO,
            resume_delta_port: ByteSize::ZERO,
            dsh_port_fc: true,
            bshare_delay_target: Delta::from_us(20),
        }
    }
}

impl MmuConfigBuilder {
    /// Sets the headroom scheme.
    pub fn scheme(&mut self, scheme: Scheme) -> &mut Self {
        self.scheme = scheme;
        self
    }

    /// Sets the total lossless-pool buffer size.
    pub fn total_buffer(&mut self, b: ByteSize) -> &mut Self {
        self.total_buffer = b;
        self
    }

    /// Sets the number of ports.
    pub fn ports(&mut self, n: usize) -> &mut Self {
        self.num_ports = n;
        self
    }

    /// Sets the number of lossless queues per port.
    pub fn lossless_queues(&mut self, n: usize) -> &mut Self {
        self.queues_per_port = n;
        self
    }

    /// Sets the private buffer per queue (`φ`).
    pub fn private_per_queue(&mut self, b: ByteSize) -> &mut Self {
        self.private_per_queue = b;
        self
    }

    /// Sets `η` directly.
    pub fn eta(&mut self, b: ByteSize) -> &mut Self {
        self.eta = b;
        self
    }

    /// Sets a per-port `η` table (index = port); lengths are validated at
    /// build time.
    pub fn port_etas(&mut self, v: Vec<ByteSize>) -> &mut Self {
        self.port_etas = Some(v);
        self
    }

    /// Computes `η` from link parameters via Eq. (1).
    pub fn eta_from_link(
        &mut self,
        capacity: Bandwidth,
        prop_delay: Delta,
        mtu_bytes: u64,
    ) -> &mut Self {
        self.eta = headroom::eta(capacity, prop_delay, mtu_bytes);
        self
    }

    /// Sets the DT control parameter `α`.
    pub fn alpha(&mut self, a: f64) -> &mut Self {
        self.alpha = a;
        self
    }

    /// Sets the queue-level resume hysteresis `δ_q`.
    pub fn resume_delta_queue(&mut self, b: ByteSize) -> &mut Self {
        self.resume_delta_queue = b;
        self
    }

    /// Sets the port-level resume hysteresis `δ_p`.
    pub fn resume_delta_port(&mut self, b: ByteSize) -> &mut Self {
        self.resume_delta_port = b;
        self
    }

    /// Ablation: disables DSH's port-level flow control + insurance
    /// headroom (queue-level only; **not lossless**).
    pub fn without_dsh_port_fc(&mut self) -> &mut Self {
        self.dsh_port_fc = false;
        self
    }

    /// Sets BShare's target per-packet queueing delay (ignored by SIH and
    /// DSH).
    pub fn bshare_delay_target(&mut self, d: Delta) -> &mut Self {
        self.bshare_delay_target = d;
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`MmuConfig::validate`]); use [`MmuConfigBuilder::try_build`] to
    /// handle errors.
    #[must_use]
    pub fn build(&self) -> MmuConfig {
        self.try_build().expect("invalid MMU configuration")
    }

    /// Finalizes the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn try_build(&self) -> Result<MmuConfig, String> {
        let cfg = MmuConfig {
            scheme: self.scheme,
            total_buffer: self.total_buffer,
            num_ports: self.num_ports,
            queues_per_port: self.queues_per_port,
            private_per_queue: self.private_per_queue,
            eta: self.eta,
            port_etas: self.port_etas.clone(),
            alpha: self.alpha,
            resume_delta_queue: self.resume_delta_queue,
            resume_delta_port: self.resume_delta_port,
            dsh_port_fc: self.dsh_port_fc,
            bshare_delay_target: self.bshare_delay_target,
        };
        cfg.validate()?;
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tomahawk_preset_matches_paper() {
        let sih = MmuConfig::tomahawk(Scheme::Sih);
        assert_eq!(sih.eta.as_u64(), 56_840);
        // "The total headroom size for SIH is 56840B x 32 x 7 = 12MB."
        assert_eq!(sih.reserved_headroom().as_u64(), 56_840 * 32 * 7);
        // "The private buffer size is 672KB (3KB for each DWRR queue)."
        assert_eq!(sih.total_private(), ByteSize::kib(672));
        assert!((sih.alpha - 0.0625).abs() < 1e-12);

        let dsh = MmuConfig::tomahawk(Scheme::Dsh);
        assert_eq!(dsh.reserved_headroom().as_u64(), 56_840 * 32);
        // DSH leaves far more shared buffer than SIH.
        assert!(dsh.shared_size().as_u64() > 4 * sih.shared_size().as_u64());
    }

    #[test]
    fn builder_roundtrip() {
        let cfg = MmuConfig::builder()
            .scheme(Scheme::Sih)
            .total_buffer(ByteSize::mib(12))
            .ports(8)
            .lossless_queues(4)
            .private_per_queue(ByteSize::kib(1))
            .eta(ByteSize::bytes(10_000))
            .alpha(0.5)
            .resume_delta_queue(ByteSize::bytes(100))
            .build();
        assert_eq!(cfg.total_queues(), 32);
        assert_eq!(cfg.reserved_headroom().as_u64(), 320_000);
        assert_eq!(cfg.resume_delta_queue.as_u64(), 100);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(MmuConfig::builder().ports(0).try_build().is_err());
        assert!(MmuConfig::builder().alpha(-1.0).try_build().is_err());
        assert!(MmuConfig::builder().eta(ByteSize::ZERO).try_build().is_err());
        // Headroom larger than the chip: no shared buffer left.
        assert!(MmuConfig::builder()
            .scheme(Scheme::Sih)
            .total_buffer(ByteSize::mib(1))
            .try_build()
            .is_err());
    }

    #[test]
    fn scheme_display() {
        assert_eq!(Scheme::Sih.to_string(), "SIH");
        assert_eq!(Scheme::Dsh.to_string(), "DSH");
        assert_eq!(Scheme::BShare.to_string(), "BShare");
    }

    #[test]
    fn bshare_shares_dsh_buffer_partitioning() {
        let dsh = MmuConfig::tomahawk(Scheme::Dsh);
        let bsh = MmuConfig::tomahawk(Scheme::BShare);
        assert_eq!(bsh.reserved_headroom(), dsh.reserved_headroom());
        assert_eq!(bsh.shared_size(), dsh.shared_size());
        assert_eq!(bsh.bshare_delay_target, Delta::from_us(20));
    }

    #[test]
    fn lossy_reserves_zero_headroom() {
        let lossy = MmuConfig::tomahawk(Scheme::Lossy);
        assert_eq!(lossy.reserved_headroom(), ByteSize::ZERO);
        // Everything that isn't private buffer is shared pool.
        assert_eq!(lossy.shared_size(), lossy.total_buffer.saturating_sub(lossy.total_private()));
        assert!(!Scheme::Lossy.is_lossless());
        assert!(Scheme::ALL.iter().all(|s| s.is_lossless()), "ALL lists PFC schemes only");
        assert_eq!(Scheme::Lossy.to_string(), "Lossy");
    }

    #[test]
    fn bshare_requires_positive_delay_target() {
        assert!(MmuConfig::builder()
            .scheme(Scheme::BShare)
            .bshare_delay_target(Delta::from_ns(0))
            .try_build()
            .is_err());
    }
}
