//! The Memory Management Unit: ingress admission, buffer accounting and
//! PFC flow-control decisions.
//!
//! The MMU is split in two: [`MmuCore`] owns the mechanism (byte counters,
//! pause flags, statistics, trace emission) and the [`Mmu`] facade drives
//! it through a pluggable [`crate::MmuScheme`] policy (SIH, DSH, BShare
//! or the no-PFC Lossy mode), dispatched statically via
//! [`crate::SchemeImpl`].

use crate::action::{FcAction, FcActions, Outcome, Region};
use crate::audit::{AuditReport, AuditViolation};
use crate::config::{MmuConfig, Scheme};
use crate::dt::DtThreshold;
use crate::scheme::{MmuScheme, SchemeImpl};
use dsh_simcore::trace::{TraceEvent, Tracer};
use dsh_simcore::{trace_event, Time};

/// Per-ingress-queue accounting and PFC state.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct QueueState {
    /// Bytes in the private segment (≤ φ).
    pub(crate) private: u64,
    /// Bytes in the shared segment (`w_ij`).
    pub(crate) shared: u64,
    /// SIH only: bytes in this queue's static headroom (≤ η).
    pub(crate) headroom: u64,
    /// `true` = QOFF (upstream paused for this priority).
    pub(crate) paused: bool,
}

/// Per-ingress-port accounting and PFC state (DSH/BShare).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct PortState {
    /// Sum of `shared` over this port's queues.
    pub(crate) shared_sum: u64,
    /// DSH/BShare only: bytes in this port's insurance headroom (≤ η).
    pub(crate) insurance: u64,
    /// `true` = POFF (upstream fully paused).
    pub(crate) paused: bool,
}

/// Tracks local maxima of a byte counter (used for the paper's Fig. 6
/// headroom-utilization analysis).
#[derive(Clone, Debug, Default)]
pub(crate) struct PeakTracker {
    pub(crate) current: u64,
    pub(crate) rising: bool,
    pub(crate) peaks: Vec<u64>,
}

impl PeakTracker {
    fn add(&mut self, bytes: u64) {
        self.current += bytes;
        self.rising = true;
    }

    fn sub(&mut self, bytes: u64) {
        if self.rising && self.current > 0 {
            // Turning point: the occupancy was rising and now falls.
            self.peaks.push(self.current);
        }
        self.rising = false;
        self.current = self.current.checked_sub(bytes).expect("peak tracker underflow");
    }

    /// Records the in-progress local maximum, if any. Without this, a
    /// measurement that ends while occupancy is still rising silently
    /// loses its final (often largest) peak.
    fn flush(&mut self) {
        if self.rising && self.current > 0 {
            self.peaks.push(self.current);
            self.rising = false;
        }
    }
}

/// Always-on drop attribution: for every dropped packet, each admission
/// rule it failed is counted. A single drop can increment several
/// counters (e.g. private full *and* over the DT threshold *and* headroom
/// full); the decisive last-resort rule is also reported per packet via
/// [`crate::Outcome::drop_reason`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DropAttribution {
    /// The queue's private segment (`φ`) could not take the packet.
    pub private_full: u64,
    /// The queue's shared occupancy would exceed the DT threshold `T(t)`
    /// (SIH shared admission).
    pub dt_threshold: u64,
    /// The shared pool itself (`B_s`) was physically full.
    pub shared_cap: u64,
    /// DSH: the port was in POFF, so shared admission was closed.
    pub port_paused: u64,
    /// SIH: the queue's static headroom (`η`) was full — the decisive rule.
    pub headroom_full: u64,
    /// DSH: the port's insurance headroom (`η`) was full — the decisive
    /// rule.
    pub insurance_full: u64,
    /// DSH ablation: insurance is disabled, so nothing could absorb the
    /// packet after the shared pool rejected it.
    pub insurance_disabled: u64,
    /// Lossy mode: the shared pool rejected the packet and a lossy switch
    /// drops instead of pausing (expected loss, not a violation).
    pub drop_tail: u64,
}

/// Per-ingress-port drop counters, so network-level reports can name the
/// (switch, port) a loss happened on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PortDrops {
    /// Packets dropped arriving on this port.
    pub packets: u64,
    /// Bytes dropped arriving on this port.
    pub bytes: u64,
}

/// Aggregate MMU counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MmuStats {
    /// Packets admitted into any segment.
    pub admitted_packets: u64,
    /// Packets dropped (congestion loss — must stay 0 when upstreams obey
    /// PFC).
    pub dropped_packets: u64,
    /// Bytes dropped.
    pub dropped_bytes: u64,
    /// Queue-level PAUSE frames requested.
    pub queue_pauses: u64,
    /// Queue-level RESUME frames requested.
    pub queue_resumes: u64,
    /// Port-level PAUSE frames requested (DSH).
    pub port_pauses: u64,
    /// Port-level RESUME frames requested (DSH).
    pub port_resumes: u64,
}

/// A point-in-time view of an [`Mmu`]'s occupancy.
///
/// [`OccupancySnapshot::in_use`] totals the regions — the hook external
/// samplers (e.g. `dsh_net::observe`) use to bound occupancy against the
/// configured pool.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OccupancySnapshot {
    /// Total shared-segment bytes (`Σ w_ij`).
    pub shared: u64,
    /// Total private-segment bytes.
    pub private: u64,
    /// Total SIH headroom bytes in use.
    pub headroom: u64,
    /// Total DSH insurance bytes in use.
    pub insurance: u64,
    /// Current `T(t)`.
    pub threshold: u64,
    /// Queues currently in QOFF.
    pub paused_queues: usize,
    /// Ports currently in POFF.
    pub paused_ports: usize,
}

impl OccupancySnapshot {
    /// Total lossless-pool bytes in use across every region (shared +
    /// private + headroom + insurance) — always within the configured
    /// pool for a clean audit.
    #[must_use]
    pub fn in_use(&self) -> u64 {
        self.shared + self.private + self.headroom + self.insurance
    }
}

/// The scheme-independent mechanism of a lossless-pool MMU: region byte
/// counters, pause-flag flips, statistics, drop attribution and trace
/// emission.
///
/// An [`crate::MmuScheme`] drives this through the charge/release and
/// pause/resume helpers; the [`Mmu`] facade owns one `MmuCore` plus the
/// scheme and exposes the public API.
#[derive(Clone, Debug)]
pub struct MmuCore {
    pub(crate) cfg: MmuConfig,
    pub(crate) dt: DtThreshold,
    pub(crate) queues: Vec<QueueState>,
    pub(crate) ports: Vec<PortState>,
    pub(crate) total_shared: u64,
    pub(crate) headroom_peaks: Vec<PeakTracker>,
    pub(crate) stats: MmuStats,
    pub(crate) attribution: DropAttribution,
    pub(crate) port_drops: Vec<PortDrops>,
    pub(crate) tracer: Tracer,
    pub(crate) trace_node: u32,
}

impl MmuCore {
    fn new(cfg: MmuConfig) -> Self {
        let dt = DtThreshold::new(cfg.alpha, cfg.shared_size());
        let nq = cfg.total_queues();
        let np = cfg.num_ports;
        MmuCore {
            cfg,
            dt,
            queues: vec![QueueState::default(); nq],
            ports: vec![PortState::default(); np],
            total_shared: 0,
            headroom_peaks: vec![PeakTracker::default(); np],
            stats: MmuStats::default(),
            attribution: DropAttribution::default(),
            port_drops: vec![PortDrops::default(); np],
            tracer: Tracer::disabled(),
            trace_node: u32::MAX,
        }
    }

    pub(crate) fn qidx(&self, port: usize, queue: usize) -> usize {
        assert!(port < self.cfg.num_ports, "port {port} out of range");
        assert!(queue < self.cfg.queues_per_port, "queue {queue} out of range");
        port * self.cfg.queues_per_port + queue
    }

    /// Current Dynamic Threshold `T(t)` in bytes.
    #[must_use]
    pub fn threshold(&self) -> u64 {
        self.dt.threshold(self.total_shared)
    }

    /// DSH queue-level pause threshold `X_qoff(t) = T(t) − η` (Eq. 5) for
    /// a specific ingress port's `η`.
    #[must_use]
    pub fn x_qoff_for(&self, port: usize) -> u64 {
        self.threshold().saturating_sub(self.cfg.eta_for(port).as_u64())
    }

    /// DSH port-level pause threshold `X_poff(t) = N_q·T(t)` (Eq. 6).
    #[must_use]
    pub fn x_poff(&self) -> u64 {
        self.cfg.queues_per_port as u64 * self.threshold()
    }

    /// Port-level occupancy compared against `X_poff`/`X_pon`: shared plus
    /// insurance bytes of the port.
    pub(crate) fn port_total_occupancy(&self, port: usize) -> u64 {
        let p = &self.ports[port];
        p.shared_sum + p.insurance
    }

    // ---- region charge/release (the only occupancy mutators) ------------

    pub(crate) fn charge_private(&mut self, idx: usize, bytes: u64) {
        self.queues[idx].private += bytes;
    }

    pub(crate) fn charge_shared(&mut self, idx: usize, port: usize, bytes: u64) {
        self.queues[idx].shared += bytes;
        self.ports[port].shared_sum += bytes;
        self.total_shared += bytes;
    }

    pub(crate) fn charge_headroom(&mut self, idx: usize, port: usize, bytes: u64) {
        self.queues[idx].headroom += bytes;
        self.headroom_peaks[port].add(bytes);
    }

    pub(crate) fn charge_insurance(&mut self, port: usize, bytes: u64) {
        self.ports[port].insurance += bytes;
        self.headroom_peaks[port].add(bytes);
    }

    /// Releases a departing packet from the region its arrival charged.
    ///
    /// # Panics
    ///
    /// Panics with "departure exceeds admission" if the region's counter
    /// does not hold `bytes`, and on a region the running scheme never
    /// charges.
    pub(crate) fn release(&mut self, port: usize, queue: usize, bytes: u64, region: Region) {
        let idx = self.qidx(port, queue);
        match region {
            Region::Private => {
                let q = &mut self.queues[idx];
                q.private = q
                    .private
                    .checked_sub(bytes)
                    .expect("departure exceeds admission: private segment underflow");
            }
            Region::Shared => {
                let q = &mut self.queues[idx];
                q.shared = q
                    .shared
                    .checked_sub(bytes)
                    .expect("departure exceeds admission: shared segment underflow");
                self.ports[port].shared_sum -= bytes;
                self.total_shared -= bytes;
            }
            Region::Headroom => {
                assert_eq!(self.cfg.scheme, Scheme::Sih, "static headroom is SIH-only");
                let q = &mut self.queues[idx];
                q.headroom = q
                    .headroom
                    .checked_sub(bytes)
                    .expect("departure exceeds admission: headroom underflow");
                self.headroom_peaks[port].sub(bytes);
            }
            Region::Insurance => {
                assert_ne!(self.cfg.scheme, Scheme::Sih, "insurance headroom is DSH-only");
                let p = &mut self.ports[port];
                p.insurance = p
                    .insurance
                    .checked_sub(bytes)
                    .expect("departure exceeds admission: insurance underflow");
                self.headroom_peaks[port].sub(bytes);
            }
        }
    }

    // ---- pause/resume state machine --------------------------------------

    pub(crate) fn pause_queue(&mut self, port: usize, queue: usize, actions: &mut FcActions) {
        let idx = self.qidx(port, queue);
        if !self.queues[idx].paused {
            self.queues[idx].paused = true;
            self.stats.queue_pauses += 1;
            actions.push(FcAction::QueuePause { port, queue });
            trace_event!(self.tracer, TraceEvent::MmuQueuePause, {
                node: self.trace_node,
                port: port as u16,
                class: queue as u8,
                payload: self.queues[idx].shared,
            });
        }
    }

    pub(crate) fn pause_port(&mut self, port: usize, actions: &mut FcActions) {
        if !self.ports[port].paused {
            self.ports[port].paused = true;
            self.stats.port_pauses += 1;
            actions.push(FcAction::PortPause { port });
            trace_event!(self.tracer, TraceEvent::MmuPortPause, {
                node: self.trace_node,
                port: port as u16,
                payload: self.port_total_occupancy(port),
            });
        }
    }

    /// Resumes a paused queue once its shared occupancy has drained to
    /// `x_on` (`<=`, not `<`, so a fully drained queue always resumes even
    /// when the threshold itself is 0). The scheme supplies `x_on` — that
    /// is its resume policy.
    pub(crate) fn resume_queue_below(
        &mut self,
        port: usize,
        queue: usize,
        x_on: u64,
        actions: &mut FcActions,
    ) {
        let idx = self.qidx(port, queue);
        if !self.queues[idx].paused {
            return;
        }
        if self.queues[idx].shared <= x_on {
            self.queues[idx].paused = false;
            self.stats.queue_resumes += 1;
            actions.push(FcAction::QueueResume { port, queue });
            trace_event!(self.tracer, TraceEvent::MmuQueueResume, {
                node: self.trace_node,
                port: port as u16,
                class: queue as u8,
                payload: self.queues[idx].shared,
            });
        }
    }

    /// Port-level resume check (Fig. 8b), shared by DSH and BShare.
    /// Requires the insurance headroom to be empty so the next port-pause
    /// cycle has its full η of slack.
    pub(crate) fn check_resume_port(&mut self, port: usize, actions: &mut FcActions) {
        if !self.ports[port].paused {
            return;
        }
        if self.ports[port].insurance > 0 {
            return;
        }
        let x_pon = self.x_poff().saturating_sub(self.cfg.resume_delta_port.as_u64());
        if self.port_total_occupancy(port) <= x_pon {
            self.ports[port].paused = false;
            self.stats.port_resumes += 1;
            actions.push(FcAction::PortResume { port });
            trace_event!(self.tracer, TraceEvent::MmuPortResume, {
                node: self.trace_node,
                port: port as u16,
                payload: self.port_total_occupancy(port),
            });
        }
    }
}

/// The lossless-pool MMU of one switch.
///
/// See the [crate documentation](crate) for the model; drive it with
/// [`Mmu::on_arrival`] / [`Mmu::on_departure`].
#[derive(Clone, Debug)]
pub struct Mmu {
    core: MmuCore,
    scheme: SchemeImpl,
}

impl Mmu {
    /// Creates an MMU with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`MmuConfig::validate`]).
    #[must_use]
    pub fn new(cfg: MmuConfig) -> Self {
        cfg.validate().expect("invalid MMU configuration");
        let scheme = SchemeImpl::for_config(&cfg);
        Mmu { core: MmuCore::new(cfg), scheme }
    }

    /// Attaches a flight-recorder tracer; `node` tags every record this
    /// MMU emits (the switch's node id). Off by default.
    pub fn set_tracer(&mut self, tracer: Tracer, node: u32) {
        self.core.tracer = tracer;
        self.core.trace_node = node;
    }

    /// The configuration this MMU runs.
    #[must_use]
    pub fn config(&self) -> &MmuConfig {
        &self.core.cfg
    }

    /// Current Dynamic Threshold `T(t)` in bytes.
    #[must_use]
    pub fn threshold(&self) -> u64 {
        self.core.threshold()
    }

    /// DSH queue-level pause threshold `X_qoff(t) = T(t) − η` (Eq. 5),
    /// with the default `η`.
    #[must_use]
    pub fn x_qoff(&self) -> u64 {
        self.core.threshold().saturating_sub(self.core.cfg.eta.as_u64())
    }

    /// DSH queue-level pause threshold for a specific ingress port's `η`.
    #[must_use]
    pub fn x_qoff_for(&self, port: usize) -> u64 {
        self.core.x_qoff_for(port)
    }

    /// DSH port-level pause threshold `X_poff(t) = N_q·T(t)` (Eq. 6).
    #[must_use]
    pub fn x_poff(&self) -> u64 {
        self.core.x_poff()
    }

    /// Total shared-segment occupancy `Σ w_ij(t)`.
    #[must_use]
    pub fn total_shared(&self) -> u64 {
        self.core.total_shared
    }

    /// Shared occupancy `w_ij` of one ingress queue.
    #[must_use]
    pub fn shared_occupancy(&self, port: usize, queue: usize) -> u64 {
        self.core.queues[self.core.qidx(port, queue)].shared
    }

    /// SIH headroom occupancy of one ingress queue.
    #[must_use]
    pub fn headroom_occupancy(&self, port: usize, queue: usize) -> u64 {
        self.core.queues[self.core.qidx(port, queue)].headroom
    }

    /// Total occupancy of one ingress queue across all segments.
    #[must_use]
    pub fn queue_occupancy(&self, port: usize, queue: usize) -> u64 {
        let q = self.core.queues[self.core.qidx(port, queue)];
        q.private + q.shared + q.headroom
    }

    /// DSH insurance-headroom occupancy of one port.
    #[must_use]
    pub fn insurance_occupancy(&self, port: usize) -> u64 {
        self.core.ports[port].insurance
    }

    /// Sum of shared occupancies over a port's queues.
    #[must_use]
    pub fn port_shared_occupancy(&self, port: usize) -> u64 {
        self.core.ports[port].shared_sum
    }

    /// Per-port headroom occupancy (SIH: static headroom; DSH/BShare:
    /// insurance). This is the quantity whose local maxima Fig. 6
    /// analyses.
    #[must_use]
    pub fn port_headroom_occupancy(&self, port: usize) -> u64 {
        self.scheme.port_headroom_occupancy(&self.core, port)
    }

    /// Whether a queue is in QOFF (upstream paused).
    #[must_use]
    pub fn queue_paused(&self, port: usize, queue: usize) -> bool {
        self.core.queues[self.core.qidx(port, queue)].paused
    }

    /// Whether a port is in POFF (upstream fully paused; DSH only).
    #[must_use]
    pub fn port_paused(&self, port: usize) -> bool {
        self.core.ports[port].paused
    }

    /// Aggregate counters.
    #[must_use]
    pub fn stats(&self) -> MmuStats {
        self.core.stats
    }

    /// Cumulative per-rule drop attribution (always on, release builds
    /// included).
    #[must_use]
    pub fn drop_attribution(&self) -> DropAttribution {
        self.core.attribution
    }

    /// Cumulative drop counters per ingress port.
    #[must_use]
    pub fn port_drops(&self) -> &[PortDrops] {
        &self.core.port_drops
    }

    /// A point-in-time snapshot of the MMU's buffer occupancy, useful for
    /// probes and debugging dashboards.
    #[must_use]
    pub fn occupancy_snapshot(&self) -> OccupancySnapshot {
        let mut private = 0;
        let mut headroom = 0;
        for q in &self.core.queues {
            private += q.private;
            headroom += q.headroom;
        }
        let insurance = self.core.ports.iter().map(|p| p.insurance).sum();
        OccupancySnapshot {
            shared: self.core.total_shared,
            private,
            headroom,
            insurance,
            threshold: self.core.threshold(),
            paused_queues: self.core.queues.iter().filter(|q| q.paused).count(),
            paused_ports: self.core.ports.iter().filter(|p| p.paused).count(),
        }
    }

    /// Returns the MMU to its empty initial state, keeping the
    /// configuration and cumulative statistics.
    pub fn reset_occupancy(&mut self) {
        for q in &mut self.core.queues {
            *q = QueueState::default();
        }
        for p in &mut self.core.ports {
            *p = PortState::default();
        }
        self.core.total_shared = 0;
        for t in &mut self.core.headroom_peaks {
            // Keep already-recorded peaks (they are measurements, like the
            // cumulative stats) but close out any in-progress maximum
            // before zeroing the live occupancy.
            t.flush();
            t.current = 0;
            t.rising = false;
        }
        self.scheme.reset();
    }

    /// Drains and returns the recorded local maxima of per-port headroom
    /// occupancy (Fig. 6's measurement), one `Vec` per port.
    ///
    /// A still-rising occupancy counts as a final peak at its current
    /// value, so measurements that end mid-burst are not biased low.
    pub fn take_headroom_peaks(&mut self) -> Vec<Vec<u64>> {
        self.core
            .headroom_peaks
            .iter_mut()
            .map(|p| {
                p.flush();
                std::mem::take(&mut p.peaks)
            })
            .collect()
    }

    /// Admits a packet of `bytes` arriving at ingress `port` for priority
    /// `queue` at simulation time `now`.
    ///
    /// Returns where the packet was placed (`None` ⇒ dropped) plus any
    /// PAUSE/RESUME actions the switch must send upstream. The caller must
    /// remember the region and pass it to [`Mmu::on_departure`] when the
    /// packet leaves the switch. `now` feeds time-aware schemes (BShare's
    /// drain-rate estimator); SIH and DSH ignore it.
    ///
    /// # Panics
    ///
    /// Panics if `port`/`queue` are out of range.
    pub fn on_arrival(&mut self, port: usize, queue: usize, bytes: u64, now: Time) -> Outcome {
        let outcome = self.scheme.on_arrival(&mut self.core, port, queue, bytes, now);
        let core = &mut self.core;
        if outcome.is_admitted() {
            core.stats.admitted_packets += 1;
            match outcome.region {
                Some(Region::Headroom) => {
                    trace_event!(core.tracer, TraceEvent::HeadroomEnter, {
                        node: core.trace_node,
                        port: port as u16,
                        class: queue as u8,
                        payload: core.queues[core.qidx(port, queue)].headroom,
                    });
                }
                Some(Region::Insurance) => {
                    trace_event!(core.tracer, TraceEvent::HeadroomEnter, {
                        node: core.trace_node,
                        port: port as u16,
                        class: queue as u8,
                        payload: core.ports[port].insurance,
                    });
                }
                _ => {}
            }
        } else {
            core.stats.dropped_packets += 1;
            core.stats.dropped_bytes += bytes;
            core.port_drops[port].packets += 1;
            core.port_drops[port].bytes += bytes;
            trace_event!(core.tracer, TraceEvent::MmuDrop, {
                node: core.trace_node,
                port: port as u16,
                class: queue as u8,
                payload: bytes,
            });
        }
        self.debug_check();
        outcome
    }

    /// Releases a packet's accounting when it leaves the switch (is
    /// scheduled for transmission on its egress port) at simulation time
    /// `now`.
    ///
    /// `region` is the placement [`Mmu::on_arrival`] returned for this
    /// packet — the per-packet pool tag a real MMU keeps. Departure
    /// releases exactly the counter the arrival charged, so the
    /// accounting is exact regardless of the order queues drain in (the
    /// old heuristic headroom-first drain and its cross-queue "residual
    /// slop" settlement are gone). `now` feeds time-aware schemes
    /// (BShare's drain-rate estimator); SIH and DSH ignore it.
    ///
    /// # Panics
    ///
    /// Panics with "departure exceeds admission" if the released region's
    /// counter does not hold `bytes` (the caller's tag is wrong, or more
    /// bytes depart than arrived).
    pub fn on_departure(
        &mut self,
        port: usize,
        queue: usize,
        bytes: u64,
        region: Region,
        now: Time,
    ) -> FcActions {
        let actions = self.scheme.on_departure(&mut self.core, port, queue, bytes, region, now);
        self.debug_check();
        actions
    }

    /// Forcibly clears the QOFF/POFF state of one ingress `port` after its
    /// link died: the upstream that the pending RESUME frames would have
    /// gone to is gone, so the paused flags would otherwise outlive the
    /// link and leak into its next incarnation. The clears are counted as
    /// resumes, keeping the `*-resumes-within-pauses` audit invariants
    /// exact; no [`FcAction`]s are emitted because there is no live peer
    /// to send them to. Returns how many pause states were cleared.
    ///
    /// Occupancy (shared/headroom/insurance bytes of frames still queued
    /// toward *other* egress ports) is untouched — those frames drain
    /// normally and re-trigger pause logic from scratch if the link
    /// returns.
    pub fn release_port_pauses(&mut self, port: usize) -> usize {
        let core = &mut self.core;
        let mut cleared = 0;
        for queue in 0..core.cfg.queues_per_port {
            let idx = core.qidx(port, queue);
            if core.queues[idx].paused {
                core.queues[idx].paused = false;
                core.stats.queue_resumes += 1;
                cleared += 1;
            }
        }
        if core.ports[port].paused {
            core.ports[port].paused = false;
            core.stats.port_resumes += 1;
            cleared += 1;
        }
        #[cfg(debug_assertions)]
        {
            let report = self.audit();
            debug_assert!(report.is_clean(), "MMU invariant violated:\n{report}");
        }
        cleared
    }

    /// Audits every accounting invariant and returns a structured report.
    ///
    /// This is the release-build promotion of the old debug-only
    /// conservation checks: it never panics, and each violation names its
    /// invariant and the port/queue it failed on, so callers (integration
    /// tests, the network telemetry layer) can report *where* the
    /// accounting went wrong. Debug builds additionally assert a clean
    /// audit after every MMU transition.
    ///
    /// Invariants checked:
    ///
    /// * `queue-private-within-phi` — every queue's private occupancy ≤ φ;
    /// * `queue-headroom-within-eta` — SIH headroom occupancy ≤ η (per
    ///   port's η);
    /// * `port-shared-sum-consistent` — each port's cached `shared_sum`
    ///   equals the sum over its queues;
    /// * `total-shared-consistent` — the global `Σ w_ij` cache equals the
    ///   sum over all queues;
    /// * `shared-within-pool` — `Σ w_ij ≤ B_s`;
    /// * `insurance-within-eta` — each port's insurance occupancy ≤ η;
    /// * `queue-resumes-within-pauses` / `port-resumes-within-pauses` —
    ///   cumulative RESUME counts never exceed PAUSE counts;
    /// * scheme-specific arms via [`crate::MmuScheme::audit`]:
    ///   `dsh-no-static-headroom` / `bshare-no-static-headroom` /
    ///   `sih-no-insurance` / `sih-no-port-pause` /
    ///   `lossy-no-headroom` / `lossy-no-insurance` / `lossy-no-pause` —
    ///   segments and states a scheme never uses stay empty.
    #[must_use]
    pub fn audit(&self) -> AuditReport {
        let core = &self.core;
        let mut violations = Vec::new();
        let mut violate = |invariant, port, queue, expected: u64, actual: u64| {
            violations.push(AuditViolation { invariant, port, queue, expected, actual });
        };

        let phi = core.cfg.private_per_queue.as_u64();
        let mut sum_shared: u64 = 0;
        for (i, q) in core.queues.iter().enumerate() {
            let port = i / core.cfg.queues_per_port;
            let queue = i % core.cfg.queues_per_port;
            let eta = core.cfg.eta_for(port).as_u64();
            if q.private > phi {
                violate("queue-private-within-phi", Some(port), Some(queue), phi, q.private);
            }
            if q.headroom > eta {
                violate("queue-headroom-within-eta", Some(port), Some(queue), eta, q.headroom);
            }
            sum_shared += q.shared;
        }

        for (port, p) in core.ports.iter().enumerate() {
            let base = port * core.cfg.queues_per_port;
            let port_sum: u64 =
                core.queues[base..base + core.cfg.queues_per_port].iter().map(|q| q.shared).sum();
            if p.shared_sum != port_sum {
                violate("port-shared-sum-consistent", Some(port), None, port_sum, p.shared_sum);
            }
            let eta = core.cfg.eta_for(port).as_u64();
            if p.insurance > eta {
                violate("insurance-within-eta", Some(port), None, eta, p.insurance);
            }
        }

        if sum_shared != core.total_shared {
            violate("total-shared-consistent", None, None, sum_shared, core.total_shared);
        }
        if core.total_shared > core.dt.shared_size() {
            violate("shared-within-pool", None, None, core.dt.shared_size(), core.total_shared);
        }
        if core.stats.queue_resumes > core.stats.queue_pauses {
            violate(
                "queue-resumes-within-pauses",
                None,
                None,
                core.stats.queue_pauses,
                core.stats.queue_resumes,
            );
        }
        if core.stats.port_resumes > core.stats.port_pauses {
            violate(
                "port-resumes-within-pauses",
                None,
                None,
                core.stats.port_pauses,
                core.stats.port_resumes,
            );
        }

        self.scheme.audit(core, &mut violations);

        if let Some(first) = violations.first() {
            // A dirty audit is about to fail an assertion somewhere above;
            // record it and dump the flight recorder now, naming the
            // invariant, while the recent history is still intact.
            trace_event!(core.tracer, TraceEvent::AuditFail, {
                node: core.trace_node,
                payload: violations.len() as u64,
            });
            core.tracer.dump(
                &format!(
                    "MMU audit violation at node {}: {} (expected {}, actual {})",
                    core.trace_node, first.invariant, first.expected, first.actual
                ),
                64,
            );
        }
        AuditReport { scheme: core.cfg.scheme, snapshot: self.occupancy_snapshot(), violations }
    }

    /// Debug-build conservation checks: a full audit after every
    /// transition.
    fn debug_check(&self) {
        #[cfg(debug_assertions)]
        {
            let report = self.audit();
            debug_assert!(report.is_clean(), "MMU invariant violated:\n{report}");
        }
    }

    /// Deliberately corrupts a port's cached `shared_sum` by `delta`
    /// bytes. Exists so tests can prove [`Mmu::audit`] catches (and names)
    /// accounting corruption; never call it outside tests.
    #[doc(hidden)]
    pub fn corrupt_port_shared_sum_for_test(&mut self, port: usize, delta: u64) {
        self.core.ports[port].shared_sum += delta;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::DropReason;
    use dsh_simcore::{ByteSize, Delta};

    fn small_cfg(scheme: Scheme) -> MmuConfig {
        MmuConfig::builder()
            .scheme(scheme)
            .total_buffer(ByteSize::mib(2))
            .ports(4)
            .lossless_queues(2)
            .private_per_queue(ByteSize::kib(3))
            .eta(ByteSize::bytes(50_000))
            .alpha(0.5)
            .build()
    }

    /// Drives arrivals of `n` packets of `sz` bytes into (port, queue),
    /// returning outcomes.
    fn blast(mmu: &mut Mmu, port: usize, queue: usize, n: usize, sz: u64) -> Vec<Outcome> {
        (0..n).map(|_| mmu.on_arrival(port, queue, sz, Time::ZERO)).collect()
    }

    #[test]
    fn release_port_pauses_clears_state_and_counts_resumes() {
        for scheme in Scheme::ALL {
            let mut mmu = Mmu::new(small_cfg(scheme));
            // Congest both queues of port 0 (and, under DSH, the port).
            blast(&mut mmu, 0, 0, 2000, 1500);
            blast(&mut mmu, 0, 1, 2000, 1500);
            assert!(mmu.queue_paused(0, 0), "{scheme}: queue must be paused");
            let cleared = mmu.release_port_pauses(0);
            assert!(cleared > 0, "{scheme}");
            assert!(!mmu.queue_paused(0, 0), "{scheme}");
            assert!(!mmu.queue_paused(0, 1), "{scheme}");
            assert!(!mmu.port_paused(0), "{scheme}");
            let st = mmu.stats();
            assert!(st.queue_resumes <= st.queue_pauses, "{scheme}");
            assert!(st.port_resumes <= st.port_pauses, "{scheme}");
            assert!(mmu.audit().is_clean(), "{scheme}: {}", mmu.audit());
            // Idempotent: a second clear finds nothing.
            assert_eq!(mmu.release_port_pauses(0), 0, "{scheme}");
        }
    }

    #[test]
    fn private_fills_first() {
        let mut mmu = Mmu::new(small_cfg(Scheme::Sih));
        let o = mmu.on_arrival(0, 0, 1500, Time::ZERO);
        assert_eq!(o.region, Some(Region::Private));
        assert_eq!(mmu.queue_occupancy(0, 0), 1500);
        // 3 KiB private: two 1500 B packets fit, third goes to shared.
        let o = mmu.on_arrival(0, 0, 1500, Time::ZERO);
        assert_eq!(o.region, Some(Region::Private));
        let o = mmu.on_arrival(0, 0, 1500, Time::ZERO);
        assert_eq!(o.region, Some(Region::Shared));
    }

    #[test]
    fn sih_pauses_when_entering_headroom() {
        let mut mmu = Mmu::new(small_cfg(Scheme::Sih));
        let outcomes = blast(&mut mmu, 0, 0, 2000, 1500);
        let pause_at = outcomes
            .iter()
            .position(|o| {
                o.actions.iter().any(|a| matches!(a, FcAction::QueuePause { port: 0, queue: 0 }))
            })
            .expect("must eventually pause");
        assert_eq!(outcomes[pause_at].region, Some(Region::Headroom));
        assert!(mmu.queue_paused(0, 0));
        // All headroom-region packets stay within eta.
        assert!(mmu.headroom_occupancy(0, 0) <= 50_000);
    }

    #[test]
    fn sih_drops_only_after_headroom_full() {
        let mut mmu = Mmu::new(small_cfg(Scheme::Sih));
        let outcomes = blast(&mut mmu, 0, 0, 5000, 1000);
        let first_drop = outcomes.iter().position(|o| !o.is_admitted());
        let first_pause = outcomes
            .iter()
            .position(|o| o.actions.iter().any(|a| matches!(a, FcAction::QueuePause { .. })));
        let (drop, pause) = (first_drop.unwrap(), first_pause.unwrap());
        assert!(pause < drop, "pause {pause} must precede drop {drop}");
        // Between pause and drop, eta worth of packets was absorbed.
        let absorbed: u64 =
            outcomes[pause..drop].iter().filter(|o| o.region == Some(Region::Headroom)).count()
                as u64
                * 1000;
        assert!(absorbed >= 49_000, "absorbed {absorbed}");
    }

    #[test]
    fn sih_resume_after_drain() {
        let mut mmu = Mmu::new(small_cfg(Scheme::Sih));
        let outcomes = blast(&mut mmu, 0, 0, 400, 1500);
        assert!(mmu.queue_paused(0, 0));
        // Drain everything in arrival order.
        let mut resumed = false;
        for o in &outcomes {
            if let Some(r) = o.region {
                let acts = mmu.on_departure(0, 0, 1500, r, Time::ZERO);
                if acts.iter().any(|a| matches!(a, FcAction::QueueResume { port: 0, queue: 0 })) {
                    resumed = true;
                }
            }
        }
        assert!(resumed);
        assert!(!mmu.queue_paused(0, 0));
        assert_eq!(mmu.queue_occupancy(0, 0), 0);
        assert_eq!(mmu.total_shared(), 0);
    }

    #[test]
    fn dsh_queue_pause_at_t_minus_eta() {
        let mut mmu = Mmu::new(small_cfg(Scheme::Dsh));
        let outcomes = blast(&mut mmu, 0, 0, 2000, 1500);
        let pause_at = outcomes
            .iter()
            .position(|o| o.actions.iter().any(|a| matches!(a, FcAction::QueuePause { .. })))
            .expect("queue must pause");
        // At the pause instant the queue's shared occupancy just exceeded
        // X_qoff = T - eta.
        let w = 1500u64 * (pause_at as u64 + 1) - 3000; // minus private fill
        let x_qoff_now = mmu.x_qoff();
        // After the burst continued the threshold fell further, so the pause
        // point must be above the *current* X_qoff.
        assert!(w > x_qoff_now, "w={w} x_qoff={x_qoff_now}");
    }

    #[test]
    fn dsh_absorbs_more_than_sih_before_pausing() {
        // Identical chips; one queue bursts. DSH pauses at T - eta but its
        // shared pool is much larger (no static headroom reservation).
        let mut sih = Mmu::new(small_cfg(Scheme::Sih));
        let mut dsh = Mmu::new(small_cfg(Scheme::Dsh));
        let count_until_pause = |mmu: &mut Mmu| -> usize {
            for i in 0..10_000 {
                let o = mmu.on_arrival(0, 0, 1500, Time::ZERO);
                if o.actions.iter().any(|a| matches!(a, FcAction::QueuePause { .. })) {
                    return i;
                }
            }
            panic!("never paused");
        };
        let s = count_until_pause(&mut sih);
        let d = count_until_pause(&mut dsh);
        // SIH reserved 4*2*50000 = 400 KB of headroom out of 2 MiB, DSH only
        // 4*50000 = 200 KB; DSH's T is higher, but it also pauses eta early.
        // Net effect on this small chip: DSH still absorbs more.
        assert!(d > s, "DSH {d} <= SIH {s}");
    }

    #[test]
    fn dsh_port_pause_under_multi_queue_congestion() {
        let mut mmu = Mmu::new(small_cfg(Scheme::Dsh));
        // Both queues of port 0 blast; keep going until the port pauses.
        let mut port_paused = false;
        'outer: for _ in 0..20_000 {
            for q in 0..2 {
                let o = mmu.on_arrival(0, q, 1500, Time::ZERO);
                if o.actions.iter().any(|a| matches!(a, FcAction::PortPause { port: 0 })) {
                    port_paused = true;
                    break 'outer;
                }
                if !o.is_admitted() {
                    break 'outer;
                }
            }
        }
        assert!(port_paused, "port-level flow control must engage");
        assert!(mmu.port_paused(0));
        // After POFF, arrivals land in insurance headroom.
        let o = mmu.on_arrival(0, 0, 1500, Time::ZERO);
        assert_eq!(o.region, Some(Region::Insurance));
        assert!(mmu.insurance_occupancy(0) >= 1500);
    }

    #[test]
    fn dsh_drops_only_after_insurance_full() {
        let mut mmu = Mmu::new(small_cfg(Scheme::Dsh));
        let outcomes = blast(&mut mmu, 0, 0, 20_000, 1000);
        let first_drop =
            outcomes.iter().position(|o| !o.is_admitted()).expect("tiny chip must eventually drop");
        // Everything up to the drop was admitted, and insurance is nearly
        // full at the drop point.
        assert!(mmu.insurance_occupancy(0) + 1000 > 50_000);
        // Pause happened well before the drop.
        let first_port_pause = outcomes
            .iter()
            .position(|o| o.actions.iter().any(|a| matches!(a, FcAction::PortPause { .. })))
            .unwrap();
        assert!(first_port_pause < first_drop);
    }

    #[test]
    fn dsh_port_resume_after_drain() {
        let mut mmu = Mmu::new(small_cfg(Scheme::Dsh));
        let outcomes = blast(&mut mmu, 0, 0, 1000, 1500);
        assert!(mmu.port_paused(0));
        let mut port_resumed = false;
        for o in &outcomes {
            if let Some(r) = o.region {
                let acts = mmu.on_departure(0, 0, 1500, r, Time::ZERO);
                if acts.iter().any(|a| matches!(a, FcAction::PortResume { port: 0 })) {
                    port_resumed = true;
                }
            }
        }
        assert!(port_resumed);
        assert!(!mmu.port_paused(0));
        assert_eq!(mmu.insurance_occupancy(0), 0);
    }

    #[test]
    fn uncongested_queue_contributes_buffer_to_congested_one() {
        // Paper §IV-B: an uncongested queue leaves room, raising T and thus
        // X_qoff for others. With 1 congested queue the absorbed volume
        // should exceed the steady-state share under 2 congested queues.
        let cfg = small_cfg(Scheme::Dsh);
        let mut one = Mmu::new(cfg.clone());
        let n_one = (0..10_000)
            .take_while(|_| {
                let o = one.on_arrival(0, 0, 1500, Time::ZERO);
                !o.actions.into_iter().any(|a| matches!(a, FcAction::QueuePause { .. }))
            })
            .count();
        let mut two = Mmu::new(cfg);
        let mut n_two = 0;
        'l: for _ in 0..10_000 {
            for q in 0..2 {
                let o = two.on_arrival(0, q, 1500, Time::ZERO);
                if o.actions.iter().any(|a| matches!(a, FcAction::QueuePause { .. })) {
                    break 'l;
                }
                n_two += 1;
            }
        }
        // Per-queue absorption shrinks when more queues are congested, but
        // a single congested queue gets more than half the two-queue total.
        assert!(n_one > n_two / 2, "n_one={n_one} n_two={n_two}");
    }

    #[test]
    fn headroom_peaks_are_recorded() {
        let mut mmu = Mmu::new(small_cfg(Scheme::Sih));
        let outcomes = blast(&mut mmu, 0, 0, 400, 1500);
        // Drain fully: one local maximum at the high-water mark.
        let hw = mmu.port_headroom_occupancy(0);
        assert!(hw > 0);
        for o in &outcomes {
            if let Some(r) = o.region {
                let _ = mmu.on_departure(0, 0, 1500, r, Time::ZERO);
            }
        }
        let peaks = mmu.take_headroom_peaks();
        assert_eq!(peaks[0], vec![hw]);
        assert!(peaks[1].is_empty());
    }

    #[test]
    fn take_headroom_peaks_flushes_inprogress_peak() {
        // Occupancy still rising when measurement ends: the in-progress
        // maximum must be reported, not silently lost.
        let mut mmu = Mmu::new(small_cfg(Scheme::Sih));
        let _ = blast(&mut mmu, 0, 0, 400, 1500);
        let hw = mmu.port_headroom_occupancy(0);
        assert!(hw > 0, "burst must reach headroom");
        let peaks = mmu.take_headroom_peaks();
        assert_eq!(peaks[0], vec![hw]);
        // A second take without new traffic reports nothing new.
        assert!(mmu.take_headroom_peaks()[0].is_empty());
    }

    #[test]
    fn reset_occupancy_flushes_peak_before_clearing() {
        let mut mmu = Mmu::new(small_cfg(Scheme::Dsh));
        let _ = blast(&mut mmu, 0, 0, 1000, 1500);
        let hw = mmu.port_headroom_occupancy(0);
        assert!(hw > 0, "burst must reach insurance");
        mmu.reset_occupancy();
        assert_eq!(mmu.take_headroom_peaks()[0], vec![hw]);
    }

    #[test]
    fn stats_track_pauses_and_drops() {
        let mut mmu = Mmu::new(small_cfg(Scheme::Sih));
        let _ = blast(&mut mmu, 0, 0, 5000, 1500);
        let st = mmu.stats();
        assert!(st.queue_pauses >= 1);
        assert!(st.dropped_packets > 0);
        assert_eq!(st.admitted_packets + st.dropped_packets, 5000);
        assert_eq!(st.dropped_bytes, st.dropped_packets * 1500);
    }

    #[test]
    fn occupancy_snapshot_tracks_segments() {
        let mut mmu = Mmu::new(small_cfg(Scheme::Sih));
        let _ = blast(&mut mmu, 0, 0, 100, 1500);
        let snap = mmu.occupancy_snapshot();
        assert_eq!(snap.private, 3000);
        assert_eq!(snap.shared, mmu.total_shared());
        assert_eq!(snap.shared + snap.private + snap.headroom, 100 * 1500);
        assert_eq!(snap.insurance, 0, "SIH never uses insurance");
    }

    #[test]
    fn reset_occupancy_clears_state_keeps_stats() {
        let mut mmu = Mmu::new(small_cfg(Scheme::Dsh));
        let _ = blast(&mut mmu, 0, 0, 2000, 1500);
        let pauses = mmu.stats().queue_pauses;
        assert!(pauses > 0);
        mmu.reset_occupancy();
        let snap = mmu.occupancy_snapshot();
        assert_eq!(snap.shared + snap.private + snap.headroom + snap.insurance, 0);
        assert_eq!(snap.paused_queues + snap.paused_ports, 0);
        assert_eq!(mmu.stats().queue_pauses, pauses, "stats survive reset");
        // Usable again after reset.
        assert!(mmu.on_arrival(0, 0, 1500, Time::ZERO).is_admitted());
    }

    #[test]
    fn ablated_dsh_drops_where_full_dsh_insures() {
        let mut b = MmuConfig::builder();
        b.scheme(Scheme::Dsh)
            .total_buffer(ByteSize::mib(2))
            .ports(4)
            .lossless_queues(2)
            .private_per_queue(ByteSize::kib(3))
            .eta(ByteSize::bytes(50_000))
            .alpha(0.5)
            .without_dsh_port_fc();
        let mut ablated = Mmu::new(b.build());
        let outcomes = blast(&mut ablated, 0, 0, 20_000, 1000);
        // Without insurance, the shared pool eventually rejects and there
        // is no second chance.
        assert!(outcomes.iter().any(|o| !o.is_admitted()), "ablated DSH must drop");
        assert_eq!(ablated.stats().port_pauses, 0, "no port-level FC when ablated");
        assert_eq!(ablated.insurance_occupancy(0), 0);
        // Attribution names the ablation, not a full insurance pool.
        let n_drop = outcomes.iter().filter(|o| !o.is_admitted()).count() as u64;
        assert_eq!(ablated.drop_attribution().insurance_disabled, n_drop);
        assert_eq!(ablated.drop_attribution().insurance_full, 0);
        assert!(outcomes
            .iter()
            .filter(|o| !o.is_admitted())
            .all(|o| o.drop_reason == Some(DropReason::InsuranceDisabled)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_port_panics() {
        let mut mmu = Mmu::new(small_cfg(Scheme::Sih));
        let _ = mmu.on_arrival(99, 0, 100, Time::ZERO);
    }

    #[test]
    #[should_panic(expected = "departure exceeds admission")]
    fn mismatched_departure_panics() {
        let mut mmu = Mmu::new(small_cfg(Scheme::Sih));
        let _ = mmu.on_departure(0, 0, 100, Region::Shared, Time::ZERO);
    }

    #[test]
    fn audit_is_clean_under_normal_operation() {
        for scheme in Scheme::ALL {
            let mut mmu = Mmu::new(small_cfg(scheme));
            let outcomes = blast(&mut mmu, 0, 0, 500, 1500);
            assert!(mmu.audit().is_clean(), "{scheme}: {}", mmu.audit());
            // Partial drain keeps it clean too.
            for o in outcomes.iter().take(100) {
                if let Some(r) = o.region {
                    let _ = mmu.on_departure(0, 0, 1500, r, Time::ZERO);
                }
            }
            let report = mmu.audit();
            assert!(report.is_clean(), "{scheme}: {report}");
        }
    }

    #[test]
    fn audit_names_injected_corruption() {
        let mut mmu = Mmu::new(small_cfg(Scheme::Dsh));
        let _ = blast(&mut mmu, 0, 0, 100, 1500);
        mmu.corrupt_port_shared_sum_for_test(0, 500);
        let report = mmu.audit();
        assert!(!report.is_clean());
        let v = report
            .violations
            .iter()
            .find(|v| v.invariant == "port-shared-sum-consistent")
            .expect("corruption must be attributed to the shared-sum invariant");
        assert_eq!(v.port, Some(0));
        assert_eq!(v.actual, v.expected + 500);
        // The rendered report names the invariant and the port.
        let text = report.to_string();
        assert!(text.contains("port-shared-sum-consistent"), "{text}");
        assert!(text.contains("port 0"), "{text}");
    }

    #[test]
    fn drops_carry_reason_and_attribution() {
        // SIH: the decisive rule is always the static headroom.
        let mut sih = Mmu::new(small_cfg(Scheme::Sih));
        let outcomes = blast(&mut sih, 0, 0, 5000, 1000);
        let dropped: Vec<_> = outcomes.iter().filter(|o| !o.is_admitted()).collect();
        assert!(!dropped.is_empty());
        assert!(dropped.iter().all(|o| o.drop_reason == Some(DropReason::HeadroomFull)));
        let attr = sih.drop_attribution();
        assert_eq!(attr.headroom_full, dropped.len() as u64);
        assert_eq!(attr.private_full, dropped.len() as u64);
        assert!(attr.dt_threshold > 0, "shared rejections go through the DT rule");
        assert_eq!(attr.insurance_full + attr.insurance_disabled, 0);

        // DSH: insurance is the decisive rule.
        let mut dsh = Mmu::new(small_cfg(Scheme::Dsh));
        let outcomes = blast(&mut dsh, 0, 0, 20_000, 1000);
        let n_drop = outcomes.iter().filter(|o| !o.is_admitted()).count() as u64;
        assert!(n_drop > 0);
        assert_eq!(dsh.drop_attribution().insurance_full, n_drop);
        assert!(outcomes
            .iter()
            .filter(|o| !o.is_admitted())
            .all(|o| o.drop_reason == Some(DropReason::InsuranceFull)));
    }

    #[test]
    fn port_drops_name_the_ingress_port() {
        let mut mmu = Mmu::new(small_cfg(Scheme::Sih));
        let _ = blast(&mut mmu, 1, 0, 5000, 1000);
        let st = mmu.stats();
        assert!(st.dropped_packets > 0);
        let per_port = mmu.port_drops();
        assert_eq!(per_port[1].packets, st.dropped_packets);
        assert_eq!(per_port[1].bytes, st.dropped_bytes);
        assert_eq!(per_port[0], PortDrops::default());
    }

    // ---- BShare ---------------------------------------------------------

    /// With `now` fixed at zero the drain estimator never primes, so
    /// BShare must reproduce DSH decision-for-decision.
    #[test]
    fn bshare_without_time_signal_matches_dsh() {
        let mut dsh = Mmu::new(small_cfg(Scheme::Dsh));
        let mut bsh = Mmu::new(small_cfg(Scheme::BShare));
        for step in 0..20_000u64 {
            let q = (step % 2) as usize;
            let a = dsh.on_arrival(0, q, 1000, Time::ZERO);
            let b = bsh.on_arrival(0, q, 1000, Time::ZERO);
            assert_eq!(a.region, b.region, "step {step}");
            assert_eq!(a.drop_reason, b.drop_reason, "step {step}");
            assert_eq!(a.actions, b.actions, "step {step}");
        }
        assert_eq!(dsh.stats(), bsh.stats());
    }

    #[test]
    fn bshare_slow_drain_pauses_earlier_than_dsh() {
        // Prime the drain estimator with a glacial service rate: 1000 B
        // per 100 µs ⇒ delay cap (20 µs target) ≈ 200 B, far below X_qoff.
        let mut cfg = small_cfg(Scheme::BShare);
        cfg.bshare_delay_target = Delta::from_us(20);
        let mut bsh = Mmu::new(cfg);
        let mut dsh = Mmu::new(small_cfg(Scheme::Dsh));

        let prime = |mmu: &mut Mmu| {
            let mut t = Time::ZERO;
            for _ in 0..20 {
                let o = mmu.on_arrival(0, 0, 1000, t);
                t = Time::from_ns(t.as_ns() + 100_000);
                let _ = mmu.on_departure(0, 0, 1000, o.region.unwrap(), t);
            }
            t
        };
        let t_b = prime(&mut bsh);
        let t_d = prime(&mut dsh);

        let pause_index = |mmu: &mut Mmu, t: Time| -> usize {
            for i in 0..10_000 {
                let o = mmu.on_arrival(0, 0, 1000, t);
                if o.actions.iter().any(|a| matches!(a, FcAction::QueuePause { .. })) {
                    return i;
                }
            }
            panic!("never paused");
        };
        let b = pause_index(&mut bsh, t_b);
        let d = pause_index(&mut dsh, t_d);
        assert!(b < d, "BShare must pause a slow-draining queue earlier: bshare={b} dsh={d}");
        assert!(bsh.audit().is_clean(), "{}", bsh.audit());
    }

    #[test]
    fn bshare_is_lossless_with_insurance_and_resumes() {
        // A sustained burst with a primed (slow) drain estimate: BShare
        // must pause, absorb overshoot in insurance, never drop, and
        // resume once drained — exactly DSH's losslessness argument.
        let mut mmu = Mmu::new(small_cfg(Scheme::BShare));
        let mut t = Time::ZERO;
        // Prime a slow drain rate.
        for _ in 0..10 {
            let o = mmu.on_arrival(0, 0, 1000, t);
            t = Time::from_ns(t.as_ns() + 50_000);
            let _ = mmu.on_departure(0, 0, 1000, o.region.unwrap(), t);
        }
        // Burst until the port pauses; nothing may drop while the
        // upstream (we) would have obeyed the pause.
        let mut regions = Vec::new();
        let mut port_paused = false;
        for _ in 0..10_000 {
            let o = mmu.on_arrival(0, 0, 1000, t);
            assert!(o.is_admitted(), "BShare must stay lossless until insurance fills");
            regions.push(o.region.unwrap());
            if o.actions.iter().any(|a| matches!(a, FcAction::PortPause { .. })) {
                port_paused = true;
                break;
            }
        }
        assert!(port_paused, "port-level FC must engage");
        assert_eq!(mmu.stats().dropped_packets, 0);
        // Drain everything; queue and port must resume.
        let mut queue_resumed = false;
        let mut port_resumed = false;
        for r in &regions {
            t = Time::from_ns(t.as_ns() + 1_000);
            for a in mmu.on_departure(0, 0, 1000, *r, t) {
                match a {
                    FcAction::QueueResume { .. } => queue_resumed = true,
                    FcAction::PortResume { .. } => port_resumed = true,
                    _ => {}
                }
            }
        }
        assert!(queue_resumed, "queue must resume after drain");
        assert!(port_resumed, "port must resume after drain");
        assert!(mmu.audit().is_clean(), "{}", mmu.audit());
    }

    #[test]
    fn bshare_reset_clears_drain_estimate() {
        let mut mmu = Mmu::new(small_cfg(Scheme::BShare));
        let mut t = Time::ZERO;
        for _ in 0..10 {
            let o = mmu.on_arrival(0, 0, 1000, t);
            t = Time::from_ns(t.as_ns() + 100_000);
            let _ = mmu.on_departure(0, 0, 1000, o.region.unwrap(), t);
        }
        mmu.reset_occupancy();
        // After reset the estimator is unprimed again: BShare behaves like
        // DSH, whose first pause on this chip happens far beyond the ~200 B
        // delay cap the stale estimate would have imposed.
        let mut first_pause = None;
        for i in 0..10_000 {
            let o = mmu.on_arrival(0, 0, 1000, t);
            if o.actions.iter().any(|a| matches!(a, FcAction::QueuePause { .. })) {
                first_pause = Some(i);
                break;
            }
        }
        let i = first_pause.expect("must pause eventually");
        assert!(i > 10, "stale delay cap survived reset: paused at packet {i}");
    }
}
