//! The Memory Management Unit: ingress admission, buffer accounting and
//! PFC flow-control decisions for SIH and DSH.

use crate::action::{FcAction, FcActions, Outcome, Region};
use crate::config::{MmuConfig, Scheme};
use crate::dt::DtThreshold;

/// Per-ingress-queue accounting and PFC state.
#[derive(Clone, Copy, Debug, Default)]
struct QueueState {
    /// Bytes in the private segment (≤ φ).
    private: u64,
    /// Bytes in the shared segment (`w_ij`).
    shared: u64,
    /// SIH only: bytes in this queue's static headroom (≤ η).
    headroom: u64,
    /// `true` = QOFF (upstream paused for this priority).
    paused: bool,
}

/// Per-ingress-port accounting and PFC state (DSH).
#[derive(Clone, Copy, Debug, Default)]
struct PortState {
    /// Sum of `shared` over this port's queues.
    shared_sum: u64,
    /// DSH only: bytes in this port's insurance headroom (≤ η).
    insurance: u64,
    /// `true` = POFF (upstream fully paused).
    paused: bool,
}

/// Tracks local maxima of a byte counter (used for the paper's Fig. 6
/// headroom-utilization analysis).
#[derive(Clone, Debug, Default)]
struct PeakTracker {
    current: u64,
    rising: bool,
    peaks: Vec<u64>,
}

impl PeakTracker {
    fn add(&mut self, bytes: u64) {
        self.current += bytes;
        self.rising = true;
    }

    fn sub(&mut self, bytes: u64) {
        if self.rising && self.current > 0 {
            // Turning point: the occupancy was rising and now falls.
            self.peaks.push(self.current);
        }
        self.rising = false;
        self.current = self.current.checked_sub(bytes).expect("peak tracker underflow");
    }
}

/// Aggregate MMU counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MmuStats {
    /// Packets admitted into any segment.
    pub admitted_packets: u64,
    /// Packets dropped (congestion loss — must stay 0 when upstreams obey
    /// PFC).
    pub dropped_packets: u64,
    /// Bytes dropped.
    pub dropped_bytes: u64,
    /// Queue-level PAUSE frames requested.
    pub queue_pauses: u64,
    /// Queue-level RESUME frames requested.
    pub queue_resumes: u64,
    /// Port-level PAUSE frames requested (DSH).
    pub port_pauses: u64,
    /// Port-level RESUME frames requested (DSH).
    pub port_resumes: u64,
}

/// A point-in-time view of an [`Mmu`]'s occupancy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OccupancySnapshot {
    /// Total shared-segment bytes (`Σ w_ij`).
    pub shared: u64,
    /// Total private-segment bytes.
    pub private: u64,
    /// Total SIH headroom bytes in use.
    pub headroom: u64,
    /// Total DSH insurance bytes in use.
    pub insurance: u64,
    /// Current `T(t)`.
    pub threshold: u64,
    /// Queues currently in QOFF.
    pub paused_queues: usize,
    /// Ports currently in POFF.
    pub paused_ports: usize,
}

/// The lossless-pool MMU of one switch.
///
/// See the [crate documentation](crate) for the model; drive it with
/// [`Mmu::on_arrival`] / [`Mmu::on_departure`].
#[derive(Clone, Debug)]
pub struct Mmu {
    cfg: MmuConfig,
    dt: DtThreshold,
    queues: Vec<QueueState>,
    ports: Vec<PortState>,
    total_shared: u64,
    headroom_peaks: Vec<PeakTracker>,
    stats: MmuStats,
}

impl Mmu {
    /// Creates an MMU with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`MmuConfig::validate`]).
    #[must_use]
    pub fn new(cfg: MmuConfig) -> Self {
        cfg.validate().expect("invalid MMU configuration");
        let dt = DtThreshold::new(cfg.alpha, cfg.shared_size());
        let nq = cfg.total_queues();
        let np = cfg.num_ports;
        Mmu {
            cfg,
            dt,
            queues: vec![QueueState::default(); nq],
            ports: vec![PortState::default(); np],
            total_shared: 0,
            headroom_peaks: vec![PeakTracker::default(); np],
            stats: MmuStats::default(),
        }
    }

    /// The configuration this MMU runs.
    #[must_use]
    pub fn config(&self) -> &MmuConfig {
        &self.cfg
    }

    fn qidx(&self, port: usize, queue: usize) -> usize {
        assert!(port < self.cfg.num_ports, "port {port} out of range");
        assert!(queue < self.cfg.queues_per_port, "queue {queue} out of range");
        port * self.cfg.queues_per_port + queue
    }

    /// Current Dynamic Threshold `T(t)` in bytes.
    #[must_use]
    pub fn threshold(&self) -> u64 {
        self.dt.threshold(self.total_shared)
    }

    /// DSH queue-level pause threshold `X_qoff(t) = T(t) − η` (Eq. 5),
    /// with the default `η`.
    #[must_use]
    pub fn x_qoff(&self) -> u64 {
        self.threshold().saturating_sub(self.cfg.eta.as_u64())
    }

    /// DSH queue-level pause threshold for a specific ingress port's `η`.
    #[must_use]
    pub fn x_qoff_for(&self, port: usize) -> u64 {
        self.threshold().saturating_sub(self.cfg.eta_for(port).as_u64())
    }

    /// DSH port-level pause threshold `X_poff(t) = N_q·T(t)` (Eq. 6).
    #[must_use]
    pub fn x_poff(&self) -> u64 {
        self.cfg.queues_per_port as u64 * self.threshold()
    }

    /// Total shared-segment occupancy `Σ w_ij(t)`.
    #[must_use]
    pub fn total_shared(&self) -> u64 {
        self.total_shared
    }

    /// Shared occupancy `w_ij` of one ingress queue.
    #[must_use]
    pub fn shared_occupancy(&self, port: usize, queue: usize) -> u64 {
        self.queues[self.qidx(port, queue)].shared
    }

    /// SIH headroom occupancy of one ingress queue.
    #[must_use]
    pub fn headroom_occupancy(&self, port: usize, queue: usize) -> u64 {
        self.queues[self.qidx(port, queue)].headroom
    }

    /// Total occupancy of one ingress queue across all segments.
    #[must_use]
    pub fn queue_occupancy(&self, port: usize, queue: usize) -> u64 {
        let q = self.queues[self.qidx(port, queue)];
        q.private + q.shared + q.headroom
    }

    /// DSH insurance-headroom occupancy of one port.
    #[must_use]
    pub fn insurance_occupancy(&self, port: usize) -> u64 {
        self.ports[port].insurance
    }

    /// Sum of shared occupancies over a port's queues.
    #[must_use]
    pub fn port_shared_occupancy(&self, port: usize) -> u64 {
        self.ports[port].shared_sum
    }

    /// Per-port headroom occupancy (SIH: static headroom; DSH: insurance).
    /// This is the quantity whose local maxima Fig. 6 analyses.
    #[must_use]
    pub fn port_headroom_occupancy(&self, port: usize) -> u64 {
        match self.cfg.scheme {
            Scheme::Sih => {
                let base = port * self.cfg.queues_per_port;
                self.queues[base..base + self.cfg.queues_per_port]
                    .iter()
                    .map(|q| q.headroom)
                    .sum()
            }
            Scheme::Dsh => self.ports[port].insurance,
        }
    }

    /// Whether a queue is in QOFF (upstream paused).
    #[must_use]
    pub fn queue_paused(&self, port: usize, queue: usize) -> bool {
        self.queues[self.qidx(port, queue)].paused
    }

    /// Whether a port is in POFF (upstream fully paused; DSH only).
    #[must_use]
    pub fn port_paused(&self, port: usize) -> bool {
        self.ports[port].paused
    }

    /// Aggregate counters.
    #[must_use]
    pub fn stats(&self) -> MmuStats {
        self.stats
    }

    /// A point-in-time snapshot of the MMU's buffer occupancy, useful for
    /// probes and debugging dashboards.
    #[must_use]
    pub fn occupancy_snapshot(&self) -> OccupancySnapshot {
        let mut private = 0;
        let mut headroom = 0;
        for q in &self.queues {
            private += q.private;
            headroom += q.headroom;
        }
        let insurance = self.ports.iter().map(|p| p.insurance).sum();
        OccupancySnapshot {
            shared: self.total_shared,
            private,
            headroom,
            insurance,
            threshold: self.threshold(),
            paused_queues: self.queues.iter().filter(|q| q.paused).count(),
            paused_ports: self.ports.iter().filter(|p| p.paused).count(),
        }
    }

    /// Returns the MMU to its empty initial state, keeping the
    /// configuration and cumulative statistics.
    pub fn reset_occupancy(&mut self) {
        for q in &mut self.queues {
            *q = QueueState::default();
        }
        for p in &mut self.ports {
            *p = PortState::default();
        }
        self.total_shared = 0;
        for t in &mut self.headroom_peaks {
            *t = PeakTracker::default();
        }
    }

    /// Drains and returns the recorded local maxima of per-port headroom
    /// occupancy (Fig. 6's measurement), one `Vec` per port.
    pub fn take_headroom_peaks(&mut self) -> Vec<Vec<u64>> {
        self.headroom_peaks
            .iter_mut()
            .map(|p| std::mem::take(&mut p.peaks))
            .collect()
    }

    /// Admits a packet of `bytes` arriving at ingress `port` for priority
    /// `queue`.
    ///
    /// Returns where the packet was placed (`None` ⇒ dropped) plus any
    /// PAUSE/RESUME actions the switch must send upstream. The caller must
    /// remember the region and pass it to [`Mmu::on_departure`] when the
    /// packet leaves the switch.
    ///
    /// # Panics
    ///
    /// Panics if `port`/`queue` are out of range.
    pub fn on_arrival(&mut self, port: usize, queue: usize, bytes: u64) -> Outcome {
        let outcome = match self.cfg.scheme {
            Scheme::Sih => self.arrival_sih(port, queue, bytes),
            Scheme::Dsh => self.arrival_dsh(port, queue, bytes),
        };
        if outcome.is_admitted() {
            self.stats.admitted_packets += 1;
        } else {
            self.stats.dropped_packets += 1;
            self.stats.dropped_bytes += bytes;
        }
        self.debug_check();
        outcome
    }

    /// Releases a packet's accounting when it leaves the switch (is
    /// scheduled for transmission on its egress port).
    ///
    /// Following real MMU implementations (and the ns-3 switch model the
    /// paper's evaluation descends from), departures drain the *headroom*
    /// counters first — SIH's per-queue headroom, DSH's per-port insurance
    /// — then the queue's shared counter, then its private counter. This
    /// restores pause slack as fast as possible and is what makes the
    /// "resume only when headroom is empty" rule effective.
    ///
    /// # Panics
    ///
    /// Panics if more bytes depart than were ever admitted for this port
    /// (accounting mismatch).
    pub fn on_departure(&mut self, port: usize, queue: usize, bytes: u64) -> FcActions {
        let idx = self.qidx(port, queue);
        let mut rest = bytes;

        // 1. Headroom first: SIH per-queue headroom / DSH port insurance.
        match self.cfg.scheme {
            Scheme::Sih => {
                let q = &mut self.queues[idx];
                let take = q.headroom.min(rest);
                q.headroom -= take;
                rest -= take;
                if take > 0 {
                    self.headroom_peaks[port].sub(take);
                }
            }
            Scheme::Dsh => {
                let p = &mut self.ports[port];
                let take = p.insurance.min(rest);
                p.insurance -= take;
                rest -= take;
                if take > 0 {
                    self.headroom_peaks[port].sub(take);
                }
            }
        }

        // 2. The queue's shared counter.
        {
            let q = &mut self.queues[idx];
            let take = q.shared.min(rest);
            q.shared -= take;
            rest -= take;
            self.ports[port].shared_sum -= take;
            self.total_shared -= take;
        }

        // 3. The queue's private counter.
        {
            let q = &mut self.queues[idx];
            let take = q.private.min(rest);
            q.private -= take;
            rest -= take;
        }

        // 4. Residual slop (DSH only): the packet's bytes were charged to
        // the port's insurance but another queue's departure drained it
        // first. Settle against the port's other shared counters.
        if rest > 0 {
            assert_eq!(self.cfg.scheme, Scheme::Dsh, "departure exceeds admission");
            let base = port * self.cfg.queues_per_port;
            for j in 0..self.cfg.queues_per_port {
                let q = &mut self.queues[base + j];
                let take = q.shared.min(rest);
                q.shared -= take;
                rest -= take;
                self.ports[port].shared_sum -= take;
                self.total_shared -= take;
                if rest == 0 {
                    break;
                }
            }
            // Last resort: the port's private counters (bytes whose owners
            // were themselves settled out of private space earlier).
            if rest > 0 {
                for j in 0..self.cfg.queues_per_port {
                    let q = &mut self.queues[base + j];
                    let take = q.private.min(rest);
                    q.private -= take;
                    rest -= take;
                    if rest == 0 {
                        break;
                    }
                }
            }
            assert_eq!(rest, 0, "departure exceeds port admission");
        }

        let mut actions = FcActions::none();
        self.check_resume(port, queue, &mut actions);
        self.debug_check();
        actions
    }

    // ---- SIH ------------------------------------------------------------

    fn arrival_sih(&mut self, port: usize, queue: usize, bytes: u64) -> Outcome {
        let idx = self.qidx(port, queue);
        let phi = self.cfg.private_per_queue.as_u64();
        let eta = self.cfg.eta_for(port).as_u64();
        let t = self.threshold();

        let region = {
            let q = &self.queues[idx];
            if q.private + bytes <= phi {
                Some(Region::Private)
            } else if q.shared + bytes <= t && self.total_shared + bytes <= self.dt.shared_size()
            {
                Some(Region::Shared)
            } else if q.headroom + bytes <= eta {
                Some(Region::Headroom)
            } else {
                None
            }
        };

        let mut actions = FcActions::none();
        match region {
            Some(Region::Private) => {
                self.queues[idx].private += bytes;
                self.check_resume_queue(port, queue, &mut actions);
            }
            Some(Region::Shared) => {
                self.queues[idx].shared += bytes;
                self.ports[port].shared_sum += bytes;
                self.total_shared += bytes;
                self.check_resume_queue(port, queue, &mut actions);
            }
            Some(Region::Headroom) => {
                self.queues[idx].headroom += bytes;
                self.headroom_peaks[port].add(bytes);
                // Case ③ (§II-C): entering headroom pauses the upstream.
                self.pause_queue(port, queue, &mut actions);
            }
            Some(Region::Insurance) => unreachable!("SIH never uses insurance"),
            None => {
                // Defensive: a drop means headroom was exhausted; make sure
                // the upstream is paused (it should already be).
                self.pause_queue(port, queue, &mut actions);
            }
        }

        Outcome { region, actions }
    }

    // ---- DSH ------------------------------------------------------------

    fn arrival_dsh(&mut self, port: usize, queue: usize, bytes: u64) -> Outcome {
        let idx = self.qidx(port, queue);
        let phi = self.cfg.private_per_queue.as_u64();
        let eta = self.cfg.eta_for(port).as_u64();

        let region = {
            let q = &self.queues[idx];
            let p = &self.ports[port];
            if q.private + bytes <= phi {
                Some(Region::Private)
            } else if !p.paused && self.total_shared + bytes <= self.dt.shared_size() {
                // PON: packets go into the shared segment, which includes
                // the dynamically allocated headroom (the paper's key idea).
                Some(Region::Shared)
            } else if self.cfg.dsh_port_fc && p.insurance + bytes <= eta {
                // POFF (or the shared pool is physically full): in-flight
                // packets are absorbed by the per-port insurance headroom.
                Some(Region::Insurance)
            } else {
                None
            }
        };

        let mut actions = FcActions::none();
        match region {
            Some(Region::Private) => {
                self.queues[idx].private += bytes;
                self.check_resume(port, queue, &mut actions);
            }
            Some(Region::Shared) => {
                self.queues[idx].shared += bytes;
                self.ports[port].shared_sum += bytes;
                self.total_shared += bytes;
                // Recompute thresholds with the new occupancy and fire the
                // queue- and port-level state machines (Fig. 8).
                let x_qoff = self.x_qoff_for(port);
                let x_poff = self.x_poff();
                if self.queues[idx].shared > x_qoff {
                    self.pause_queue(port, queue, &mut actions);
                } else {
                    self.check_resume_queue(port, queue, &mut actions);
                }
                if self.cfg.dsh_port_fc && self.port_total_occupancy(port) > x_poff {
                    self.pause_port(port, &mut actions);
                }
            }
            Some(Region::Insurance) => {
                self.ports[port].insurance += bytes;
                self.headroom_peaks[port].add(bytes);
                // Insurance occupancy means the port must be (or go) POFF.
                self.pause_port(port, &mut actions);
            }
            Some(Region::Headroom) => unreachable!("DSH never uses static headroom"),
            None => {
                if self.cfg.dsh_port_fc {
                    self.pause_port(port, &mut actions);
                }
            }
        }

        Outcome { region, actions }
    }

    // ---- shared state-machine helpers ------------------------------------

    /// Port-level occupancy compared against `X_poff`/`X_pon`: shared plus
    /// insurance bytes of the port.
    fn port_total_occupancy(&self, port: usize) -> u64 {
        let p = &self.ports[port];
        p.shared_sum + p.insurance
    }

    fn pause_queue(&mut self, port: usize, queue: usize, actions: &mut FcActions) {
        let idx = self.qidx(port, queue);
        if !self.queues[idx].paused {
            self.queues[idx].paused = true;
            self.stats.queue_pauses += 1;
            actions.push(FcAction::QueuePause { port, queue });
        }
    }

    fn pause_port(&mut self, port: usize, actions: &mut FcActions) {
        if !self.ports[port].paused {
            self.ports[port].paused = true;
            self.stats.port_pauses += 1;
            actions.push(FcAction::PortPause { port });
        }
    }

    /// Queue-level resume check (paper case ② / Fig. 8a).
    fn check_resume_queue(&mut self, port: usize, queue: usize, actions: &mut FcActions) {
        let idx = self.qidx(port, queue);
        if !self.queues[idx].paused {
            return;
        }
        let x_on = match self.cfg.scheme {
            // SIH: X_on = T(t) − δ (compared against shared occupancy,
            // footnote 1). Resuming also requires the queue's headroom to
            // have drained, otherwise the next pause cycle would find less
            // than η of slack and could overflow.
            Scheme::Sih => {
                if self.queues[idx].headroom > 0 {
                    return;
                }
                self.threshold().saturating_sub(self.cfg.resume_delta_queue.as_u64())
            }
            // DSH: X_qon = X_qoff − δ_q. The slack here is recomputed from
            // the live threshold (T − w ≥ η whenever w ≤ X_qoff), so no
            // headroom-empty gate is needed.
            Scheme::Dsh => {
                self.x_qoff_for(port).saturating_sub(self.cfg.resume_delta_queue.as_u64())
            }
        };
        // `<=` (not `<`) so a fully drained queue always resumes even when
        // the threshold itself is 0.
        if self.queues[idx].shared <= x_on {
            self.queues[idx].paused = false;
            self.stats.queue_resumes += 1;
            actions.push(FcAction::QueueResume { port, queue });
        }
    }

    /// Port-level resume check (Fig. 8b). Requires the insurance headroom
    /// to be empty so the next port-pause cycle has its full η of slack.
    fn check_resume_port(&mut self, port: usize, actions: &mut FcActions) {
        if !self.ports[port].paused {
            return;
        }
        if self.ports[port].insurance > 0 {
            return;
        }
        let x_pon = self.x_poff().saturating_sub(self.cfg.resume_delta_port.as_u64());
        if self.port_total_occupancy(port) <= x_pon {
            self.ports[port].paused = false;
            self.stats.port_resumes += 1;
            actions.push(FcAction::PortResume { port });
        }
    }

    fn check_resume(&mut self, port: usize, queue: usize, actions: &mut FcActions) {
        self.check_resume_queue(port, queue, actions);
        if self.cfg.scheme == Scheme::Dsh {
            self.check_resume_port(port, actions);
        }
    }

    /// Debug-build conservation checks.
    fn debug_check(&self) {
        #[cfg(debug_assertions)]
        {
            let phi = self.cfg.private_per_queue.as_u64();
            let mut sum_shared = 0;
            for (i, q) in self.queues.iter().enumerate() {
                let eta = self.cfg.eta_for(i / self.cfg.queues_per_port).as_u64();
                debug_assert!(q.private <= phi);
                debug_assert!(q.headroom <= eta);
                sum_shared += q.shared;
            }
            debug_assert_eq!(sum_shared, self.total_shared);
            debug_assert!(self.total_shared <= self.dt.shared_size());
            for (i, p) in self.ports.iter().enumerate() {
                debug_assert!(p.insurance <= self.cfg.eta_for(i).as_u64());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsh_simcore::ByteSize;

    fn small_cfg(scheme: Scheme) -> MmuConfig {
        MmuConfig::builder()
            .scheme(scheme)
            .total_buffer(ByteSize::mib(2))
            .ports(4)
            .lossless_queues(2)
            .private_per_queue(ByteSize::kib(3))
            .eta(ByteSize::bytes(50_000))
            .alpha(0.5)
            .build()
    }

    /// Drives arrivals of `n` packets of `sz` bytes into (port, queue),
    /// returning outcomes.
    fn blast(mmu: &mut Mmu, port: usize, queue: usize, n: usize, sz: u64) -> Vec<Outcome> {
        (0..n).map(|_| mmu.on_arrival(port, queue, sz)).collect()
    }

    #[test]
    fn private_fills_first() {
        let mut mmu = Mmu::new(small_cfg(Scheme::Sih));
        let o = mmu.on_arrival(0, 0, 1500);
        assert_eq!(o.region, Some(Region::Private));
        assert_eq!(mmu.queue_occupancy(0, 0), 1500);
        // 3 KiB private: two 1500 B packets fit, third goes to shared.
        let o = mmu.on_arrival(0, 0, 1500);
        assert_eq!(o.region, Some(Region::Private));
        let o = mmu.on_arrival(0, 0, 1500);
        assert_eq!(o.region, Some(Region::Shared));
    }

    #[test]
    fn sih_pauses_when_entering_headroom() {
        let mut mmu = Mmu::new(small_cfg(Scheme::Sih));
        let outcomes = blast(&mut mmu, 0, 0, 2000, 1500);
        let pause_at = outcomes
            .iter()
            .position(|o| o.actions.iter().any(|a| matches!(a, FcAction::QueuePause { port: 0, queue: 0 })))
            .expect("must eventually pause");
        assert_eq!(outcomes[pause_at].region, Some(Region::Headroom));
        assert!(mmu.queue_paused(0, 0));
        // All headroom-region packets stay within eta.
        assert!(mmu.headroom_occupancy(0, 0) <= 50_000);
    }

    #[test]
    fn sih_drops_only_after_headroom_full() {
        let mut mmu = Mmu::new(small_cfg(Scheme::Sih));
        let outcomes = blast(&mut mmu, 0, 0, 5000, 1000);
        let first_drop = outcomes.iter().position(|o| !o.is_admitted());
        let first_pause = outcomes
            .iter()
            .position(|o| o.actions.iter().any(|a| matches!(a, FcAction::QueuePause { .. })));
        let (drop, pause) = (first_drop.unwrap(), first_pause.unwrap());
        assert!(pause < drop, "pause {pause} must precede drop {drop}");
        // Between pause and drop, eta worth of packets was absorbed.
        let absorbed: u64 = outcomes[pause..drop]
            .iter()
            .filter(|o| o.region == Some(Region::Headroom))
            .count() as u64
            * 1000;
        assert!(absorbed >= 49_000, "absorbed {absorbed}");
    }

    #[test]
    fn sih_resume_after_drain() {
        let mut mmu = Mmu::new(small_cfg(Scheme::Sih));
        let outcomes = blast(&mut mmu, 0, 0, 400, 1500);
        assert!(mmu.queue_paused(0, 0));
        // Drain everything in arrival order.
        let mut resumed = false;
        for o in &outcomes {
            if o.region.is_some() {
                let acts = mmu.on_departure(0, 0, 1500);
                if acts.iter().any(|a| matches!(a, FcAction::QueueResume { port: 0, queue: 0 })) {
                    resumed = true;
                }
            }
        }
        assert!(resumed);
        assert!(!mmu.queue_paused(0, 0));
        assert_eq!(mmu.queue_occupancy(0, 0), 0);
        assert_eq!(mmu.total_shared(), 0);
    }

    #[test]
    fn dsh_queue_pause_at_t_minus_eta() {
        let mut mmu = Mmu::new(small_cfg(Scheme::Dsh));
        let outcomes = blast(&mut mmu, 0, 0, 2000, 1500);
        let pause_at = outcomes
            .iter()
            .position(|o| o.actions.iter().any(|a| matches!(a, FcAction::QueuePause { .. })))
            .expect("queue must pause");
        // At the pause instant the queue's shared occupancy just exceeded
        // X_qoff = T - eta.
        let w = 1500u64 * (pause_at as u64 + 1) - 3000; // minus private fill
        let x_qoff_now = mmu.x_qoff();
        // After the burst continued the threshold fell further, so the pause
        // point must be above the *current* X_qoff.
        assert!(w > x_qoff_now, "w={w} x_qoff={x_qoff_now}");
    }

    #[test]
    fn dsh_absorbs_more_than_sih_before_pausing() {
        // Identical chips; one queue bursts. DSH pauses at T - eta but its
        // shared pool is much larger (no static headroom reservation).
        let mut sih = Mmu::new(small_cfg(Scheme::Sih));
        let mut dsh = Mmu::new(small_cfg(Scheme::Dsh));
        let count_until_pause = |mmu: &mut Mmu| -> usize {
            for i in 0..10_000 {
                let o = mmu.on_arrival(0, 0, 1500);
                if o.actions.iter().any(|a| matches!(a, FcAction::QueuePause { .. })) {
                    return i;
                }
            }
            panic!("never paused");
        };
        let s = count_until_pause(&mut sih);
        let d = count_until_pause(&mut dsh);
        // SIH reserved 4*2*50000 = 400 KB of headroom out of 2 MiB, DSH only
        // 4*50000 = 200 KB; DSH's T is higher, but it also pauses eta early.
        // Net effect on this small chip: DSH still absorbs more.
        assert!(d > s, "DSH {d} <= SIH {s}");
    }

    #[test]
    fn dsh_port_pause_under_multi_queue_congestion() {
        let mut mmu = Mmu::new(small_cfg(Scheme::Dsh));
        // Both queues of port 0 blast; keep going until the port pauses.
        let mut port_paused = false;
        'outer: for _ in 0..20_000 {
            for q in 0..2 {
                let o = mmu.on_arrival(0, q, 1500);
                if o.actions.iter().any(|a| matches!(a, FcAction::PortPause { port: 0 })) {
                    port_paused = true;
                    break 'outer;
                }
                if !o.is_admitted() {
                    break 'outer;
                }
            }
        }
        assert!(port_paused, "port-level flow control must engage");
        assert!(mmu.port_paused(0));
        // After POFF, arrivals land in insurance headroom.
        let o = mmu.on_arrival(0, 0, 1500);
        assert_eq!(o.region, Some(Region::Insurance));
        assert!(mmu.insurance_occupancy(0) >= 1500);
    }

    #[test]
    fn dsh_drops_only_after_insurance_full() {
        let mut mmu = Mmu::new(small_cfg(Scheme::Dsh));
        let outcomes = blast(&mut mmu, 0, 0, 20_000, 1000);
        let first_drop = outcomes.iter().position(|o| !o.is_admitted()).expect("tiny chip must eventually drop");
        // Everything up to the drop was admitted, and insurance is nearly
        // full at the drop point.
        assert!(mmu.insurance_occupancy(0) + 1000 > 50_000);
        // Pause happened well before the drop.
        let first_port_pause = outcomes
            .iter()
            .position(|o| o.actions.iter().any(|a| matches!(a, FcAction::PortPause { .. })))
            .unwrap();
        assert!(first_port_pause < first_drop);
    }

    #[test]
    fn dsh_port_resume_after_drain() {
        let mut mmu = Mmu::new(small_cfg(Scheme::Dsh));
        let outcomes = blast(&mut mmu, 0, 0, 1000, 1500);
        assert!(mmu.port_paused(0));
        let mut port_resumed = false;
        for o in &outcomes {
            if o.region.is_some() {
                let acts = mmu.on_departure(0, 0, 1500);
                if acts.iter().any(|a| matches!(a, FcAction::PortResume { port: 0 })) {
                    port_resumed = true;
                }
            }
        }
        assert!(port_resumed);
        assert!(!mmu.port_paused(0));
        assert_eq!(mmu.insurance_occupancy(0), 0);
    }

    #[test]
    fn uncongested_queue_contributes_buffer_to_congested_one() {
        // Paper §IV-B: an uncongested queue leaves room, raising T and thus
        // X_qoff for others. With 1 congested queue the absorbed volume
        // should exceed the steady-state share under 2 congested queues.
        let cfg = small_cfg(Scheme::Dsh);
        let mut one = Mmu::new(cfg.clone());
        let n_one = (0..10_000)
            .take_while(|_| {
                let o = one.on_arrival(0, 0, 1500);
                !o.actions.into_iter().any(|a| matches!(a, FcAction::QueuePause { .. }))
            })
            .count();
        let mut two = Mmu::new(cfg);
        let mut n_two = 0;
        'l: for _ in 0..10_000 {
            for q in 0..2 {
                let o = two.on_arrival(0, q, 1500);
                if o.actions.iter().any(|a| matches!(a, FcAction::QueuePause { .. })) {
                    break 'l;
                }
                n_two += 1;
            }
        }
        // Per-queue absorption shrinks when more queues are congested, but
        // a single congested queue gets more than half the two-queue total.
        assert!(n_one > n_two / 2, "n_one={n_one} n_two={n_two}");
    }

    #[test]
    fn headroom_peaks_are_recorded() {
        let mut mmu = Mmu::new(small_cfg(Scheme::Sih));
        let outcomes = blast(&mut mmu, 0, 0, 400, 1500);
        // Drain fully: one local maximum at the high-water mark.
        let hw = mmu.port_headroom_occupancy(0);
        assert!(hw > 0);
        for o in &outcomes {
            if o.region.is_some() {
                let _ = mmu.on_departure(0, 0, 1500);
            }
        }
        let peaks = mmu.take_headroom_peaks();
        assert_eq!(peaks[0], vec![hw]);
        assert!(peaks[1].is_empty());
    }

    #[test]
    fn stats_track_pauses_and_drops() {
        let mut mmu = Mmu::new(small_cfg(Scheme::Sih));
        let _ = blast(&mut mmu, 0, 0, 5000, 1500);
        let st = mmu.stats();
        assert!(st.queue_pauses >= 1);
        assert!(st.dropped_packets > 0);
        assert_eq!(st.admitted_packets + st.dropped_packets, 5000);
        assert_eq!(st.dropped_bytes, st.dropped_packets * 1500);
    }

    #[test]
    fn occupancy_snapshot_tracks_segments() {
        let mut mmu = Mmu::new(small_cfg(Scheme::Sih));
        let _ = blast(&mut mmu, 0, 0, 100, 1500);
        let snap = mmu.occupancy_snapshot();
        assert_eq!(snap.private, 3000);
        assert_eq!(snap.shared, mmu.total_shared());
        assert_eq!(snap.shared + snap.private + snap.headroom, 100 * 1500);
        assert_eq!(snap.insurance, 0, "SIH never uses insurance");
    }

    #[test]
    fn reset_occupancy_clears_state_keeps_stats() {
        let mut mmu = Mmu::new(small_cfg(Scheme::Dsh));
        let _ = blast(&mut mmu, 0, 0, 2000, 1500);
        let pauses = mmu.stats().queue_pauses;
        assert!(pauses > 0);
        mmu.reset_occupancy();
        let snap = mmu.occupancy_snapshot();
        assert_eq!(snap.shared + snap.private + snap.headroom + snap.insurance, 0);
        assert_eq!(snap.paused_queues + snap.paused_ports, 0);
        assert_eq!(mmu.stats().queue_pauses, pauses, "stats survive reset");
        // Usable again after reset.
        assert!(mmu.on_arrival(0, 0, 1500).is_admitted());
    }

    #[test]
    fn ablated_dsh_drops_where_full_dsh_insures() {
        let mut b = MmuConfig::builder();
        b.scheme(Scheme::Dsh)
            .total_buffer(ByteSize::mib(2))
            .ports(4)
            .lossless_queues(2)
            .private_per_queue(ByteSize::kib(3))
            .eta(ByteSize::bytes(50_000))
            .alpha(0.5)
            .without_dsh_port_fc();
        let mut ablated = Mmu::new(b.build());
        let outcomes = blast(&mut ablated, 0, 0, 20_000, 1000);
        // Without insurance, the shared pool eventually rejects and there
        // is no second chance.
        assert!(outcomes.iter().any(|o| !o.is_admitted()), "ablated DSH must drop");
        assert_eq!(ablated.stats().port_pauses, 0, "no port-level FC when ablated");
        assert_eq!(ablated.insurance_occupancy(0), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_port_panics() {
        let mut mmu = Mmu::new(small_cfg(Scheme::Sih));
        let _ = mmu.on_arrival(99, 0, 100);
    }

    #[test]
    #[should_panic(expected = "departure exceeds admission")]
    fn mismatched_departure_panics() {
        let mut mmu = Mmu::new(small_cfg(Scheme::Sih));
        let _ = mmu.on_departure(0, 0, 100);
    }
}
