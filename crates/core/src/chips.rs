//! Broadcom switching-chip generations used by the paper's Fig. 4 to show
//! the buffer-vs-headroom trend.
//!
//! The paper's observation: over a decade, buffer per unit of switching
//! capacity fell ~4× (157 µs → 37 µs) while the fraction of buffer SIH must
//! reserve as headroom grew from ~43% to ~67%.

use crate::headroom;
use dsh_simcore::{Bandwidth, ByteSize, Delta};

/// Public specification of one switching-chip generation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChipSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Year of introduction.
    pub year: u16,
    /// Switching capacity in Gb/s.
    pub capacity_gbps: u64,
    /// Packet buffer size.
    pub buffer: ByteSize,
    /// Number of front-panel ports in the highest-speed configuration
    /// (capacity / port speed), which is what the paper's headroom numbers
    /// correspond to.
    pub ports: usize,
    /// Per-port speed in that configuration.
    pub port_speed: Bandwidth,
}

impl ChipSpec {
    /// Buffer per unit of capacity, in microseconds (Fig. 4's right axis).
    #[must_use]
    pub fn buffer_per_capacity_us(&self) -> f64 {
        self.buffer.as_u64() as f64 * 8.0 / (self.capacity_gbps as f64 * 1e9) * 1e6
    }

    /// Per-queue headroom `η` for this chip (Eq. 1) for the given cable
    /// propagation delay and MTU.
    #[must_use]
    pub fn eta(&self, prop_delay: Delta, mtu_bytes: u64) -> ByteSize {
        headroom::eta(self.port_speed, prop_delay, mtu_bytes)
    }

    /// Total SIH headroom with `queues_per_port` PFC queues (Eq. 3).
    #[must_use]
    pub fn sih_headroom(&self, queues_per_port: usize, prop_delay: Delta, mtu: u64) -> ByteSize {
        headroom::sih_total_headroom(self.ports, queues_per_port, self.eta(prop_delay, mtu))
    }

    /// Fraction of this chip's buffer consumed by SIH headroom (Fig. 4's
    /// starred series).
    #[must_use]
    pub fn sih_headroom_fraction(
        &self,
        queues_per_port: usize,
        prop_delay: Delta,
        mtu: u64,
    ) -> f64 {
        headroom::sih_headroom_fraction(
            self.buffer,
            self.ports,
            queues_per_port,
            self.eta(prop_delay, mtu),
        )
    }
}

/// The five Broadcom generations plotted in Fig. 4.
pub const BROADCOM_CHIPS: [ChipSpec; 5] = [
    ChipSpec {
        name: "Trident+",
        year: 2010,
        capacity_gbps: 480,
        buffer: ByteSize::mib(9),
        ports: 48,
        port_speed: Bandwidth::from_gbps(10),
    },
    ChipSpec {
        name: "Trident2",
        year: 2012,
        capacity_gbps: 1_280,
        buffer: ByteSize::mib(12),
        ports: 32,
        port_speed: Bandwidth::from_gbps(40),
    },
    ChipSpec {
        name: "Tomahawk2",
        year: 2016,
        capacity_gbps: 6_400,
        buffer: ByteSize::mib(42),
        ports: 64,
        port_speed: Bandwidth::from_gbps(100),
    },
    ChipSpec {
        name: "Tomahawk3",
        year: 2017,
        capacity_gbps: 12_800,
        buffer: ByteSize::mib(64),
        ports: 32,
        port_speed: Bandwidth::from_gbps(400),
    },
    ChipSpec {
        name: "Tomahawk4",
        year: 2019,
        capacity_gbps: 25_600,
        buffer: ByteSize::mib(113),
        ports: 64,
        port_speed: Bandwidth::from_gbps(400),
    },
];

/// The propagation delay Fig. 4 assumes (300 m single-mode fiber ≈ 1.5 µs,
/// §II-C).
pub const FIG4_PROP_DELAY: Delta = Delta::from_ns(1_500);

/// MTU assumed by Fig. 4.
pub const FIG4_MTU: u64 = 1_500;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_per_capacity_trend_matches_paper() {
        // "has decreased by 4x in the last decade (from 157us to 37us)".
        let first = BROADCOM_CHIPS[0].buffer_per_capacity_us();
        let last = BROADCOM_CHIPS[4].buffer_per_capacity_us();
        assert!((first - 157.0).abs() < 1.0, "Trident+ {first}");
        assert!((last - 37.0).abs() < 1.0, "Tomahawk4 {last}");
        assert!(first / last > 4.0);
    }

    #[test]
    fn headroom_fraction_trend_matches_paper() {
        // "the fraction of required headroom has increased by 56%
        // (from 43% to 67%)". Fig. 4 uses all 8 queues.
        let first = BROADCOM_CHIPS[0].sih_headroom_fraction(8, FIG4_PROP_DELAY, FIG4_MTU);
        let last = BROADCOM_CHIPS[4].sih_headroom_fraction(8, FIG4_PROP_DELAY, FIG4_MTU);
        assert!((first - 0.43).abs() < 0.01, "Trident+ {first}");
        assert!((last - 0.67).abs() < 0.02, "Tomahawk4 {last}");
        // Monotonically increasing across generations.
        let fracs: Vec<f64> = BROADCOM_CHIPS
            .iter()
            .map(|c| c.sih_headroom_fraction(8, FIG4_PROP_DELAY, FIG4_MTU))
            .collect();
        assert!(fracs.windows(2).all(|w| w[1] > w[0]), "{fracs:?}");
    }

    #[test]
    fn trident2_example_from_section_3a() {
        // "MMU needs to allocate ~5.33MB memory for headroom buffer in
        // total, which occupies 44.4% of total memory."
        let t2 = &BROADCOM_CHIPS[1];
        let h = t2.sih_headroom(8, FIG4_PROP_DELAY, FIG4_MTU);
        assert!((h.as_mib_f64() - 5.33).abs() < 0.01);
        let f = t2.sih_headroom_fraction(8, FIG4_PROP_DELAY, FIG4_MTU);
        assert!((f - 0.444).abs() < 0.001);
    }
}
