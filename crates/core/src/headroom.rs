//! Headroom sizing equations from the paper (§II-C and §IV-B).
//!
//! The per-queue worst-case headroom `η` (Eq. 1) covers the five components
//! of the PFC reaction delay: waiting delay (one MTU), PAUSE propagation,
//! PAUSE processing (capped at 3840 B by IEEE 802.1Qbb), response delay (one
//! MTU) and the propagation of the last in-flight packet.

use dsh_simcore::{Bandwidth, ByteSize, Delta};

/// Bytes of PFC processing-delay allowance fixed by the 802.1Qbb standard
/// (the downstream may take up to `3840 B / C` to react).
pub const PFC_PROCESSING_BYTES: u64 = 3840;

/// Per-ingress-queue worst-case headroom `η` — Eq. (1):
/// `η = 2(C·D_prop + L_MTU) + 3840 B`.
///
/// # Example
///
/// ```
/// use dsh_core::headroom::eta;
/// use dsh_simcore::{Bandwidth, Delta};
///
/// // The paper's microbenchmark setting: 100 Gb/s links, 2 us delay,
/// // 1500 B MTU gives 56840 B (§V-A).
/// let h = eta(Bandwidth::from_gbps(100), Delta::from_us(2), 1500);
/// assert_eq!(h.as_u64(), 56_840);
/// ```
#[must_use]
pub fn eta(capacity: Bandwidth, prop_delay: Delta, mtu_bytes: u64) -> ByteSize {
    let in_flight = capacity.bytes_in(prop_delay);
    ByteSize::bytes(2 * (in_flight + mtu_bytes) + PFC_PROCESSING_BYTES)
}

/// SONiC BufferManager's per-queue headroom formula: the operator
/// configures link speed, cable length, MTU and the peer's response time,
/// and the daemon derives
/// `η = 2·C·D_cable + 2·L_MTU + C·t_peer`.
///
/// Structurally identical to Eq. 1, except the peer response allowance is
/// an explicit time knob (`C·t_peer` bytes) instead of the standard's
/// fixed worst-case 3840 B. The two formulas agree exactly when
/// `C·t_peer = 3840 B` — 307.2 ns at 100 Gb/s:
///
/// ```
/// use dsh_core::headroom::{eta, sonic_headroom};
/// use dsh_simcore::{Bandwidth, Delta};
///
/// let c = Bandwidth::from_gbps(100);
/// let d = Delta::from_us(2);
/// let sonic = sonic_headroom(c, d, 1500, Delta::from_ps(307_200));
/// assert_eq!(sonic, eta(c, d, 1500));
/// ```
#[must_use]
pub fn sonic_headroom(
    capacity: Bandwidth,
    cable_delay: Delta,
    mtu_bytes: u64,
    peer_response: Delta,
) -> ByteSize {
    let in_flight = capacity.bytes_in(cable_delay);
    let peer_bytes = capacity.bytes_in(peer_response);
    ByteSize::bytes(2 * (in_flight + mtu_bytes) + peer_bytes)
}

/// Total headroom reserved by SIH — Eq. (3): `h = N_p · N_q · η`.
///
/// `N_q` counts the *lossless* queues per port (the paper reserves one of
/// the eight priority queues for control traffic, leaving seven).
#[must_use]
pub fn sih_total_headroom(num_ports: usize, queues_per_port: usize, eta: ByteSize) -> ByteSize {
    ByteSize::bytes(num_ports as u64 * queues_per_port as u64 * eta.as_u64())
}

/// Total insurance headroom reserved by DSH — Eq. (4): `B_i = N_p · η`.
#[must_use]
pub fn dsh_insurance_total(num_ports: usize, eta: ByteSize) -> ByteSize {
    ByteSize::bytes(num_ports as u64 * eta.as_u64())
}

/// Fraction of a chip's buffer consumed by SIH headroom (used by Fig. 4).
///
/// # Panics
///
/// Panics if `buffer` is zero.
#[must_use]
pub fn sih_headroom_fraction(
    buffer: ByteSize,
    num_ports: usize,
    queues_per_port: usize,
    eta: ByteSize,
) -> f64 {
    assert!(buffer.as_u64() > 0, "chip buffer must be non-zero");
    sih_total_headroom(num_ports, queues_per_port, eta).as_u64() as f64 / buffer.as_u64() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eta_matches_paper_microbenchmark() {
        // 100G, 2us, 1500B -> 2*(25000+1500)+3840 = 56840 B.
        let h = eta(Bandwidth::from_gbps(100), Delta::from_us(2), 1500);
        assert_eq!(h.as_u64(), 56_840);
    }

    #[test]
    fn eta_matches_trident2_example() {
        // Paper §III-A: Trident2, 32x40GbE, D_prop = 1.5us, MTU 1500 B ->
        // total SIH headroom ~5.33 MB over 32 ports x 8 queues.
        let h = eta(Bandwidth::from_gbps(40), Delta::from_ns(1500), 1500);
        // 40Gbps = 5 B/ns; 1.5us -> 7500 B in flight; 2*(7500+1500)+3840 = 21840 B.
        assert_eq!(h.as_u64(), 21_840);
        let total = sih_total_headroom(32, 8, h);
        // 21840 * 256 = 5,591,040 B ~ 5.33 MiB (paper: "~5.33MB").
        assert!((total.as_mib_f64() - 5.33).abs() < 0.01, "{}", total.as_mib_f64());
        // Out of 12 MB: 44.4% (paper: "occupies 44.4% of total memory").
        let frac = total.as_u64() as f64 / (12.0 * 1024.0 * 1024.0);
        assert!((frac - 0.444).abs() < 0.001, "{frac}");
    }

    #[test]
    fn sih_total_scales_with_queues_dsh_does_not() {
        let h = ByteSize::bytes(56_840);
        assert_eq!(sih_total_headroom(32, 7, h).as_u64(), 32 * 7 * 56_840);
        assert_eq!(dsh_insurance_total(32, h).as_u64(), 32 * 56_840);
        // DSH reserves N_q x less headroom.
        assert_eq!(sih_total_headroom(32, 7, h).as_u64() / dsh_insurance_total(32, h).as_u64(), 7);
    }

    #[test]
    fn headroom_fraction() {
        let h = eta(Bandwidth::from_gbps(100), Delta::from_us(2), 1500);
        let f = sih_headroom_fraction(ByteSize::mib(16), 32, 7, h);
        // 12.73 MB of 16 MiB ~ 75.9%.
        assert!((f - 0.7588).abs() < 0.001, "{f}");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_buffer_panics() {
        let _ = sih_headroom_fraction(ByteSize::ZERO, 1, 1, ByteSize::bytes(1));
    }
}
