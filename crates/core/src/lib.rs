//! Switch MMU buffer management for PFC-enabled datacenter switches —
//! the core contribution of *"Less is More: Dynamic and Shared Headroom
//! Allocation in PFC-Enabled Datacenter Networks"* (ICDCS 2023).
//!
//! A lossless (PFC) switch must reserve *headroom* buffer beyond the PFC
//! pause threshold to absorb in-flight packets while a PAUSE frame takes
//! effect. This crate implements, as a pure chip-level state machine:
//!
//! * the classic **SIH** scheme (Static, Independent Headroom): worst-case
//!   headroom `η` statically reserved for **every** ingress queue
//!   ([`headroom::eta`], Eq. 1; total Eq. 3), plus Dynamic Threshold
//!   ([`DtThreshold`], Eq. 2) over the shared pool and the standard PFC
//!   queue state machine;
//! * the paper's **DSH** scheme (Dynamic and Shared Headroom): headroom is
//!   folded into the shared pool and allocated on demand — queue-level pause
//!   at `X_qoff = T(t) − η` (Eq. 5), port-level pause at `X_poff = N_q·T(t)`
//!   (Eq. 6) backed by a small per-port *insurance headroom* `η` (Eq. 4)
//!   that guarantees losslessness under any circumstances;
//! * **BShare**'s queueing-delay-driven sharing (arxiv 2605.24178): DSH's
//!   admission and insurance machinery with the queue pause threshold
//!   additionally capped at `drain_rate × delay_target`, pausing
//!   slow-draining queues before they build deep standing queues.
//!
//! Schemes are pluggable: policy lives behind the [`MmuScheme`] trait
//! (statically dispatched via [`SchemeImpl`], so the hot path stays
//! allocation-free) while [`Mmu`]/[`MmuCore`] own the mechanism.
//!
//! The MMU is driven by two calls — [`Mmu::on_arrival`] and
//! [`Mmu::on_departure`] — and answers with buffer-region placement and
//! flow-control actions ([`FcAction`]), exactly the interface a switching
//! chip's ingress admission logic exposes. It has no dependency on the
//! simulator, so it can be tested and model-checked in isolation.
//!
//! # Example
//!
//! ```
//! use dsh_core::{FcAction, Mmu, MmuConfig, Scheme};
//! use dsh_simcore::Time;
//!
//! // A Broadcom Tomahawk-like chip (32x100G, 16 MB), running DSH.
//! let cfg = MmuConfig::tomahawk(Scheme::Dsh);
//! let mut mmu = Mmu::new(cfg);
//!
//! // Blast one ingress queue until it asks us to pause the upstream.
//! let mut paused = false;
//! for _ in 0..10_000 {
//!     let outcome = mmu.on_arrival(0, 0, 1500, Time::ZERO);
//!     assert!(outcome.region.is_some(), "lossless switch must not drop");
//!     if outcome.actions.iter().any(|a| matches!(a, FcAction::QueuePause { .. })) {
//!         paused = true;
//!         break;
//!     }
//! }
//! assert!(paused);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod action;
pub mod audit;
pub mod chips;
mod config;
mod dt;
pub mod headroom;
mod mmu;
mod scheme;

pub use action::{DropReason, FcAction, FcActions, Outcome, Region};
pub use audit::{AuditReport, AuditViolation};
pub use config::{MmuConfig, MmuConfigBuilder, Scheme};
pub use dt::DtThreshold;
pub use mmu::{DropAttribution, Mmu, MmuCore, MmuStats, OccupancySnapshot, PortDrops};
pub use scheme::{BShareScheme, DshScheme, MmuScheme, SchemeImpl, SihScheme};
