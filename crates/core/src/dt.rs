//! Dynamic Threshold (DT) buffer sharing — Eq. (2), after Choudhury &
//! Hahne.

use dsh_simcore::ByteSize;

/// The Dynamic Threshold: `T(t) = α · (B_s − Σ w_ij(t))`.
///
/// The threshold rises when the shared pool is empty (letting bursts use
/// the buffer) and falls under congestion (enforcing fairness). It is the
/// buffer-management scheme on virtually all commodity switching chips and
/// the substrate both SIH and DSH build their PFC thresholds on.
///
/// # Example
///
/// ```
/// use dsh_core::DtThreshold;
/// use dsh_simcore::ByteSize;
///
/// let dt = DtThreshold::new(0.5, ByteSize::bytes(1000));
/// assert_eq!(dt.threshold(0), 500);
/// assert_eq!(dt.threshold(600), 200);
/// assert_eq!(dt.threshold(1000), 0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DtThreshold {
    alpha: f64,
    /// `α` in 32.32 fixed point (rounded to nearest), so [`Self::threshold`]
    /// is pure integer arithmetic: exactly monotone in the occupancy at
    /// byte granularity and free of the float truncation that made
    /// `(α · free) as u64` undershoot the true floor (e.g. α = 0.29,
    /// free = 100 gave 28 instead of 29).
    alpha_fp: u64,
    shared_size: u64,
}

/// Fractional bits of the fixed-point `α`.
const ALPHA_FP_BITS: u32 = 32;

impl DtThreshold {
    /// Creates a DT with control parameter `alpha` over a shared pool of
    /// `shared_size` bytes.
    ///
    /// `alpha` is quantized to a multiple of 2⁻³² (an error below
    /// `free·2⁻³³` bytes — exact for the power-of-two values switches
    /// use); all threshold arithmetic thereafter is exact.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not positive and finite.
    #[must_use]
    pub fn new(alpha: f64, shared_size: ByteSize) -> Self {
        assert!(alpha.is_finite() && alpha > 0.0, "alpha must be positive and finite");
        let alpha_fp = (alpha * f64::from(2u32).powi(ALPHA_FP_BITS as i32)).round() as u64;
        assert!(alpha_fp > 0, "alpha too small to represent");
        DtThreshold { alpha, alpha_fp, shared_size: shared_size.as_u64() }
    }

    /// The control parameter `α`.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The shared pool size `B_s` in bytes.
    #[must_use]
    pub fn shared_size(&self) -> u64 {
        self.shared_size
    }

    /// Computes `T(t)` in bytes given the current total shared occupancy
    /// `Σ w_ij(t)`, floored at zero.
    ///
    /// Integer fixed-point arithmetic: `⌊free · α_fp / 2³²⌋` in 128-bit,
    /// so the result is exactly non-increasing byte-for-byte in the
    /// occupancy and does not lose precision on large pools the way
    /// `f64` multiplication does.
    #[must_use]
    pub fn threshold(&self, total_shared_occupancy: u64) -> u64 {
        let free = self.shared_size.saturating_sub(total_shared_occupancy);
        let t = (u128::from(free) * u128::from(self.alpha_fp)) >> ALPHA_FP_BITS;
        u64::try_from(t).unwrap_or(u64::MAX)
    }

    /// The steady-state per-queue occupancy if `n` queues are persistently
    /// congested: each converges to `α·B_s / (1 + α·n)` (standard DT
    /// fixed point). Useful for sizing tests and the theory module.
    #[must_use]
    pub fn steady_state_per_queue(&self, n: usize) -> f64 {
        self.alpha * self.shared_size as f64 / (1.0 + self.alpha * n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn threshold_decreases_with_occupancy() {
        let dt = DtThreshold::new(1.0 / 16.0, ByteSize::mib(14));
        let t0 = dt.threshold(0);
        let t1 = dt.threshold(1_000_000);
        let t2 = dt.threshold(10_000_000);
        assert!(t0 > t1 && t1 > t2);
        assert_eq!(t0, (14 * 1024 * 1024) / 16);
    }

    #[test]
    fn threshold_floors_at_zero() {
        let dt = DtThreshold::new(2.0, ByteSize::bytes(100));
        assert_eq!(dt.threshold(100), 0);
        assert_eq!(dt.threshold(1_000), 0);
    }

    #[test]
    fn steady_state_fixed_point() {
        // At the fixed point, each of n queues holds exactly T:
        // w = alpha (B - n w)  =>  w = alpha B / (1 + alpha n).
        let dt = DtThreshold::new(0.0625, ByteSize::bytes(1_000_000));
        for n in [1usize, 4, 16, 64] {
            let w = dt.steady_state_per_queue(n);
            let t = dt.threshold((w * n as f64) as u64);
            assert!((t as f64 - w).abs() < 2.0, "n={n}: T={t} w={w}");
        }
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn invalid_alpha_panics() {
        let _ = DtThreshold::new(0.0, ByteSize::bytes(1));
    }

    #[test]
    fn fixed_point_matches_exact_floor() {
        // The old float path truncated 0.29 * 100 = 28.999999999999996
        // down to 28; the fixed-point path floors the exact product.
        let dt = DtThreshold::new(0.29, ByteSize::bytes(1000));
        assert_eq!(dt.threshold(900), 29);
        // Power-of-two alphas are represented exactly.
        let dt = DtThreshold::new(1.0 / 16.0, ByteSize::mib(14));
        for occ in [0u64, 1, 4096, 1 << 20] {
            let free = dt.shared_size() - occ;
            assert_eq!(dt.threshold(occ), free / 16);
        }
    }

    #[test]
    fn no_precision_loss_on_huge_pools() {
        // free beyond 2^53: `free as f64` alone is off by hundreds of
        // bytes; integer arithmetic keeps T exact.
        let pool = (1u64 << 60) + 12_345;
        let dt = DtThreshold::new(0.5, ByteSize::bytes(pool));
        assert_eq!(dt.threshold(0), pool / 2);
        assert_eq!(dt.threshold(1), (pool - 1) / 2);
    }

    proptest! {
        /// T is monotonically non-increasing in occupancy and never exceeds
        /// alpha * B_s.
        #[test]
        fn prop_monotone(occ1 in 0u64..20_000_000, occ2 in 0u64..20_000_000) {
            let dt = DtThreshold::new(0.0625, ByteSize::mib(14));
            let (lo, hi) = if occ1 <= occ2 { (occ1, occ2) } else { (occ2, occ1) };
            prop_assert!(dt.threshold(lo) >= dt.threshold(hi));
            prop_assert!(dt.threshold(lo) <= (0.0625 * dt.shared_size() as f64) as u64);
        }

        /// Byte granularity: admitting one more byte never raises T, and
        /// never lowers it by more than ceil(alpha) — for awkward,
        /// non-power-of-two alphas included.
        #[test]
        fn prop_monotone_at_byte_granularity(
            occ in 0u64..14_680_063,
            alpha in prop_oneof![
                Just(0.0625f64),
                Just(0.29),
                Just(1.0 / 3.0),
                Just(0.999_999),
                Just(2.0),
            ],
        ) {
            let dt = DtThreshold::new(alpha, ByteSize::mib(14));
            let here = dt.threshold(occ);
            let next = dt.threshold(occ + 1);
            prop_assert!(next <= here, "alpha={alpha} occ={occ}: {next} > {here}");
            prop_assert!(
                here - next <= alpha.ceil() as u64,
                "alpha={alpha} occ={occ}: step {}", here - next
            );
        }
    }
}
