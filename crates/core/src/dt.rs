//! Dynamic Threshold (DT) buffer sharing — Eq. (2), after Choudhury &
//! Hahne.

use dsh_simcore::ByteSize;

/// The Dynamic Threshold: `T(t) = α · (B_s − Σ w_ij(t))`.
///
/// The threshold rises when the shared pool is empty (letting bursts use
/// the buffer) and falls under congestion (enforcing fairness). It is the
/// buffer-management scheme on virtually all commodity switching chips and
/// the substrate both SIH and DSH build their PFC thresholds on.
///
/// # Example
///
/// ```
/// use dsh_core::DtThreshold;
/// use dsh_simcore::ByteSize;
///
/// let dt = DtThreshold::new(0.5, ByteSize::bytes(1000));
/// assert_eq!(dt.threshold(0), 500);
/// assert_eq!(dt.threshold(600), 200);
/// assert_eq!(dt.threshold(1000), 0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DtThreshold {
    alpha: f64,
    shared_size: u64,
}

impl DtThreshold {
    /// Creates a DT with control parameter `alpha` over a shared pool of
    /// `shared_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not positive and finite.
    #[must_use]
    pub fn new(alpha: f64, shared_size: ByteSize) -> Self {
        assert!(alpha.is_finite() && alpha > 0.0, "alpha must be positive and finite");
        DtThreshold { alpha, shared_size: shared_size.as_u64() }
    }

    /// The control parameter `α`.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The shared pool size `B_s` in bytes.
    #[must_use]
    pub fn shared_size(&self) -> u64 {
        self.shared_size
    }

    /// Computes `T(t)` in bytes given the current total shared occupancy
    /// `Σ w_ij(t)`, floored at zero.
    #[must_use]
    pub fn threshold(&self, total_shared_occupancy: u64) -> u64 {
        let free = self.shared_size.saturating_sub(total_shared_occupancy);
        (self.alpha * free as f64) as u64
    }

    /// The steady-state per-queue occupancy if `n` queues are persistently
    /// congested: each converges to `α·B_s / (1 + α·n)` (standard DT
    /// fixed point). Useful for sizing tests and the theory module.
    #[must_use]
    pub fn steady_state_per_queue(&self, n: usize) -> f64 {
        self.alpha * self.shared_size as f64 / (1.0 + self.alpha * n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn threshold_decreases_with_occupancy() {
        let dt = DtThreshold::new(1.0 / 16.0, ByteSize::mib(14));
        let t0 = dt.threshold(0);
        let t1 = dt.threshold(1_000_000);
        let t2 = dt.threshold(10_000_000);
        assert!(t0 > t1 && t1 > t2);
        assert_eq!(t0, (14 * 1024 * 1024) / 16);
    }

    #[test]
    fn threshold_floors_at_zero() {
        let dt = DtThreshold::new(2.0, ByteSize::bytes(100));
        assert_eq!(dt.threshold(100), 0);
        assert_eq!(dt.threshold(1_000), 0);
    }

    #[test]
    fn steady_state_fixed_point() {
        // At the fixed point, each of n queues holds exactly T:
        // w = alpha (B - n w)  =>  w = alpha B / (1 + alpha n).
        let dt = DtThreshold::new(0.0625, ByteSize::bytes(1_000_000));
        for n in [1usize, 4, 16, 64] {
            let w = dt.steady_state_per_queue(n);
            let t = dt.threshold((w * n as f64) as u64);
            assert!((t as f64 - w).abs() < 2.0, "n={n}: T={t} w={w}");
        }
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn invalid_alpha_panics() {
        let _ = DtThreshold::new(0.0, ByteSize::bytes(1));
    }

    proptest! {
        /// T is monotonically non-increasing in occupancy and never exceeds
        /// alpha * B_s.
        #[test]
        fn prop_monotone(occ1 in 0u64..20_000_000, occ2 in 0u64..20_000_000) {
            let dt = DtThreshold::new(0.0625, ByteSize::mib(14));
            let (lo, hi) = if occ1 <= occ2 { (occ1, occ2) } else { (occ2, occ1) };
            prop_assert!(dt.threshold(lo) >= dt.threshold(hi));
            prop_assert!(dt.threshold(lo) <= (0.0625 * dt.shared_size() as f64) as u64);
        }
    }
}
