//! Property-based tests of the MMU's accounting and flow-control
//! invariants, driven by randomized arrival/departure traces.

use dsh_core::{FcAction, Mmu, MmuConfig, Region, Scheme};
use dsh_simcore::{ByteSize, Time};
use proptest::prelude::*;
use std::collections::VecDeque;

/// A random MMU op: arrival at (port, queue) of a packet, or departure of
/// the oldest buffered packet of (port, queue).
#[derive(Clone, Copy, Debug)]
enum Op {
    Arrive { port: usize, queue: usize, bytes: u64 },
    Depart { port: usize, queue: usize },
}

fn op_strategy(ports: usize, queues: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..ports, 0..queues, 64u64..4000).prop_map(|(port, queue, bytes)| Op::Arrive {
            port,
            queue,
            bytes
        }),
        (0..ports, 0..queues).prop_map(|(port, queue)| Op::Depart { port, queue }),
    ]
}

fn cfg(scheme: Scheme, ports: usize, queues: usize, port_fc: bool) -> MmuConfig {
    let mut b = MmuConfig::builder();
    b.scheme(scheme)
        .total_buffer(ByteSize::mib(2))
        .ports(ports)
        .lossless_queues(queues)
        .private_per_queue(ByteSize::kib(3))
        .eta(ByteSize::bytes(40_000))
        .alpha(0.25);
    if !port_fc {
        b.without_dsh_port_fc();
    }
    b.build()
}

/// Replays ops against the MMU, mirroring buffered packets (with their
/// admission region, the per-packet pool tag) in FIFO shadows, and checks
/// conservation plus a clean [`Mmu::audit`] at every step.
fn check_trace(scheme: Scheme, port_fc: bool, ops: &[Op]) {
    let (ports, queues) = (3usize, 2usize);
    let mut mmu = Mmu::new(cfg(scheme, ports, queues, port_fc));
    let mut fifos: Vec<VecDeque<(u64, Region)>> = vec![VecDeque::new(); ports * queues];
    let mut buffered: u64 = 0;
    let eta = 40_000u64;

    for &op in ops {
        match op {
            Op::Arrive { port, queue, bytes } => {
                let out = mmu.on_arrival(port, queue, bytes, Time::ZERO);
                if let Some(region) = out.region {
                    // SIH never uses insurance; DSH/BShare never use
                    // static headroom.
                    match scheme {
                        Scheme::Sih => assert_ne!(region, Region::Insurance),
                        Scheme::Dsh | Scheme::BShare => assert_ne!(region, Region::Headroom),
                        Scheme::Lossy => assert!(
                            matches!(region, Region::Private | Region::Shared),
                            "lossy admits only to private/shared, got {region}"
                        ),
                    }
                    fifos[port * queues + queue].push_back((bytes, region));
                    buffered += bytes;
                } else {
                    // Lossless guarantee: a drop may only happen once the
                    // last-resort segment lacks room for this very packet.
                    let slack = match scheme {
                        Scheme::Sih => eta - mmu.headroom_occupancy(port, queue),
                        Scheme::Dsh | Scheme::BShare if port_fc => {
                            eta - mmu.insurance_occupancy(port)
                        }
                        // Ablated DSH has no last-resort segment; drops are
                        // expected (that is the ablation's point). Lossy
                        // drops by design once the shared pool rejects.
                        Scheme::Dsh | Scheme::BShare | Scheme::Lossy => bytes,
                    };
                    assert!(
                        slack < bytes,
                        "dropped a {bytes} B packet with {slack} B of headroom slack"
                    );
                    assert!(out.drop_reason.is_some(), "drops must carry an attribution");
                }
            }
            Op::Depart { port, queue } => {
                if let Some((bytes, region)) = fifos[port * queues + queue].pop_front() {
                    let _ = mmu.on_departure(port, queue, bytes, region, Time::ZERO);
                    buffered -= bytes;
                }
            }
        }

        // Conservation: everything the MMU counts equals what we buffered.
        let mut counted = 0;
        for p in 0..ports {
            counted += mmu.insurance_occupancy(p);
            for q in 0..queues {
                counted += mmu.queue_occupancy(p, q);
            }
        }
        assert_eq!(counted, buffered, "MMU accounting must match buffered bytes");

        // The buffer never overflows physically.
        assert!(buffered <= 2 * 1024 * 1024, "physical overflow");

        // Every internal invariant holds, in release builds too.
        let report = mmu.audit();
        assert!(report.is_clean(), "{report}");
    }

    // Drain everything: all counters return to zero and every pause is
    // eventually matched by a resume.
    for p in 0..ports {
        for q in 0..queues {
            while let Some((bytes, region)) = fifos[p * queues + q].pop_front() {
                let _ = mmu.on_departure(p, q, bytes, region, Time::ZERO);
            }
        }
    }
    assert_eq!(mmu.total_shared(), 0);
    for p in 0..ports {
        assert_eq!(mmu.insurance_occupancy(p), 0);
        assert!(!mmu.port_paused(p), "port {p} stuck paused after drain");
        for q in 0..queues {
            assert_eq!(mmu.queue_occupancy(p, q), 0);
            assert!(!mmu.queue_paused(p, q), "queue ({p},{q}) stuck paused after drain");
        }
    }
    let st = mmu.stats();
    assert_eq!(st.queue_pauses, st.queue_resumes);
    assert_eq!(st.port_pauses, st.port_resumes);
    let report = mmu.audit();
    assert!(report.is_clean(), "after drain: {report}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sih_invariants_hold(ops in proptest::collection::vec(op_strategy(3, 2), 1..400)) {
        check_trace(Scheme::Sih, true, &ops);
    }

    #[test]
    fn dsh_invariants_hold(ops in proptest::collection::vec(op_strategy(3, 2), 1..400)) {
        check_trace(Scheme::Dsh, true, &ops);
    }

    #[test]
    fn ablated_dsh_invariants_hold(ops in proptest::collection::vec(op_strategy(3, 2), 1..400)) {
        check_trace(Scheme::Dsh, false, &ops);
    }

    #[test]
    fn bshare_invariants_hold(ops in proptest::collection::vec(op_strategy(3, 2), 1..400)) {
        check_trace(Scheme::BShare, true, &ops);
    }

    #[test]
    fn lossy_invariants_hold(ops in proptest::collection::vec(op_strategy(3, 2), 1..400)) {
        check_trace(Scheme::Lossy, true, &ops);
    }

    /// A pause-respecting upstream never loses a packet: after a queue
    /// pause, at most η more bytes arrive before the upstream stalls.
    #[test]
    fn dsh_is_lossless_for_pause_respecting_upstreams(
        seed in 0u64..1000,
        burst_packets in 1usize..64,
    ) {
        let mut mmu = Mmu::new(cfg(Scheme::Dsh, 3, 2, true));
        let mut rng = dsh_simcore::SimRng::new(seed);
        let eta = 40_000u64;
        // Each port obeys PFC: after a port pause it may deliver at most
        // eta in-flight bytes; after a queue pause, eta for that queue.
        let mut port_budget = [u64::MAX; 3];
        let mut fifo: Vec<VecDeque<(u64, Region)>> = vec![VecDeque::new(); 6];
        for _ in 0..2000 {
            let port = rng.gen_index(3);
            let queue = rng.gen_index(2);
            for _ in 0..burst_packets {
                if port_budget[port] == 0 {
                    break;
                }
                let bytes = 1500.min(port_budget[port]);
                let out = mmu.on_arrival(port, queue, bytes, Time::ZERO);
                prop_assert!(out.region.is_some(), "drop for a pause-respecting upstream");
                fifo[port * 2 + queue].push_back((bytes, out.region.unwrap()));
                for a in out.actions {
                    if let FcAction::PortPause { port: p } = a {
                        port_budget[p] = eta;
                    }
                }
                if port_budget[port] != u64::MAX {
                    port_budget[port] = port_budget[port].saturating_sub(bytes);
                }
            }
            // Random partial drain, which can resume ports.
            for _ in 0..rng.gen_index(3 * burst_packets + 1) {
                let p = rng.gen_index(3);
                let q = rng.gen_index(2);
                if let Some((b, r)) = fifo[p * 2 + q].pop_front() {
                    for a in mmu.on_departure(p, q, b, r, Time::ZERO) {
                        if let FcAction::PortResume { port } = a {
                            port_budget[port] = u64::MAX;
                        }
                    }
                }
            }
        }
        prop_assert!(mmu.audit().is_clean());
    }
}
