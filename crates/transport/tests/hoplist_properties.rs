//! Property tests pinning [`HopList`] to the semantics of the
//! `Vec<TelemetryHop>` it replaced inside data/ACK frames.
//!
//! The inline list is a hot-path optimization, not a behavior change: for
//! any trace of push/clear operations that stays within [`HOP_CAPACITY`]
//! (the topology-diameter contract), the list must observe exactly like
//! the Vec did — same order, same length, same slice, same iteration —
//! and a push past capacity must panic rather than silently drop
//! telemetry.

use dsh_simcore::{Bandwidth, Time};
use dsh_transport::{HopList, TelemetryHop, HOP_CAPACITY};
use proptest::prelude::*;

fn hop(tag: u64) -> TelemetryHop {
    TelemetryHop {
        qlen_bytes: tag,
        tx_bytes: tag.wrapping_mul(17),
        timestamp: Time::from_ns(tag),
        bandwidth: Bandwidth::from_gbps(100),
    }
}

/// Applies one op to both representations; `0` clears, anything else
/// pushes (skipped when the Vec model is at capacity, since that push is
/// the defined-panic case covered separately).
fn step(code: u64, list: &mut HopList, model: &mut Vec<TelemetryHop>) {
    if code == 0 {
        list.clear();
        model.clear();
    } else if model.len() < HOP_CAPACITY {
        let h = hop(code);
        list.push(h);
        model.push(h);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn hoplist_traces_match_vec_semantics(
        ops in proptest::collection::vec(0u64..100, 1..64),
    ) {
        let mut list = HopList::new();
        let mut model: Vec<TelemetryHop> = Vec::new();
        for &code in &ops {
            step(code, &mut list, &mut model);
            prop_assert_eq!(list.len(), model.len());
            prop_assert_eq!(list.is_empty(), model.is_empty());
            prop_assert_eq!(list.as_slice(), model.as_slice());
            // Iteration (the PowerTCP consumer's access pattern) agrees.
            prop_assert!(list.iter().eq(model.iter()));
            // Deref lets `&list` feed `AckInfo { hops: &[TelemetryHop] }`.
            let via_deref: &[TelemetryHop] = &list;
            prop_assert_eq!(via_deref, model.as_slice());
        }
        // Round-tripping the final state through a slice is lossless.
        prop_assert_eq!(HopList::from_slice(&model), list);
    }

    #[test]
    fn hoplist_overflow_panics_exactly_at_capacity(extra in 1u64..4) {
        let mut list = HopList::new();
        for n in 0..HOP_CAPACITY as u64 {
            list.push(hop(n + 1)); // Filling to capacity is fine...
        }
        prop_assert_eq!(list.len(), HOP_CAPACITY);
        let panicked = std::panic::catch_unwind(move || {
            list.push(hop(extra)); // ...one more must panic, like Vec would
                                   // never do — overflow is a topology bug.
        });
        prop_assert!(panicked.is_err(), "push past HOP_CAPACITY must panic");
    }
}
