//! DCQCN reaction-point algorithm (Zhu et al., *Congestion Control for
//! Large-Scale RDMA Deployments*, SIGCOMM 2015).
//!
//! The sender (RP) keeps a current rate `R_c` and target rate `R_t`.
//! Congestion Notification Packets cut the rate multiplicatively by
//! `α/2`; in the absence of CNPs the rate recovers in three stages
//! (fast recovery → additive increase → hyper increase) driven by a timer
//! and a byte counter, while `α` decays toward zero.

use crate::cc::{AckInfo, Cc};
use dsh_simcore::{Bandwidth, Delta, Time};

/// DCQCN parameters (defaults follow the paper's open-source ns-3
/// simulation, scaled for the link rate).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DcqcnConfig {
    /// Line rate (initial and maximum rate).
    pub link: Bandwidth,
    /// Minimum rate floor.
    pub min_rate: Bandwidth,
    /// EWMA gain `g` for the α update.
    pub g: f64,
    /// α-decay timer (no-CNP window), default 55 µs.
    pub alpha_timer: Delta,
    /// Rate-increase timer period, default 55 µs.
    pub increase_timer: Delta,
    /// Byte counter threshold `B`, default 10 MB.
    pub byte_counter: u64,
    /// Stage threshold `F` for leaving fast recovery, default 5.
    pub f_threshold: u32,
    /// Additive increase step `R_AI`, default 40 Mb/s.
    pub rai: Bandwidth,
    /// Hyper increase step `R_HAI`, default 400 Mb/s.
    pub rhai: Bandwidth,
}

impl DcqcnConfig {
    /// Default parameters for a sender on `link`.
    #[must_use]
    pub fn for_link(link: Bandwidth) -> Self {
        DcqcnConfig {
            link,
            min_rate: Bandwidth::from_mbps(100),
            g: 1.0 / 256.0,
            alpha_timer: Delta::from_us(55),
            increase_timer: Delta::from_us(55),
            byte_counter: 10 * 1024 * 1024,
            f_threshold: 5,
            rai: Bandwidth::from_mbps(40),
            rhai: Bandwidth::from_mbps(400),
        }
    }
}

/// DCQCN per-flow sender state.
#[derive(Clone, Debug)]
pub struct Dcqcn {
    cfg: DcqcnConfig,
    /// Current rate `R_c` in b/s (f64 for the averaging steps).
    rc: f64,
    /// Target rate `R_t` in b/s.
    rt: f64,
    alpha: f64,
    /// Bytes sent since the last byte-counter stage increment.
    bytes_since: u64,
    /// Stage counters since the last rate cut.
    timer_stage: u32,
    byte_stage: u32,
    /// Pending α-decay deadline.
    alpha_deadline: Time,
    /// Pending rate-increase deadline.
    increase_deadline: Time,
    /// Whether any CNP was ever received (timers idle until then).
    cut_seen: bool,
}

impl Dcqcn {
    /// Creates a sender starting at line rate.
    #[must_use]
    pub fn new(cfg: DcqcnConfig) -> Self {
        Dcqcn {
            rc: cfg.link.as_bps() as f64,
            rt: cfg.link.as_bps() as f64,
            alpha: 1.0,
            bytes_since: 0,
            timer_stage: 0,
            byte_stage: 0,
            alpha_deadline: Time::MAX,
            increase_deadline: Time::MAX,
            cut_seen: false,
            cfg,
        }
    }

    /// Current α (exposed for tests and ablations).
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    fn clamp_rates(&mut self) {
        let max = self.cfg.link.as_bps() as f64;
        let min = self.cfg.min_rate.as_bps() as f64;
        self.rc = self.rc.clamp(min, max);
        self.rt = self.rt.clamp(min, max);
    }

    /// One rate-increase step; `stage` is max(timer_stage, byte_stage)
    /// *before* this step, and both counters decide the phase.
    fn increase(&mut self) {
        let f = self.cfg.f_threshold;
        if self.timer_stage < f && self.byte_stage < f {
            // Fast recovery: climb halfway back to the target.
        } else if self.timer_stage >= f && self.byte_stage >= f {
            // Hyper increase.
            self.rt += self.cfg.rhai.as_bps() as f64;
        } else {
            // Additive increase.
            self.rt += self.cfg.rai.as_bps() as f64;
        }
        self.rc = (self.rc + self.rt) / 2.0;
        self.clamp_rates();
    }
}

impl Cc for Dcqcn {
    fn on_ack(&mut self, _now: Time, _info: &AckInfo<'_>) {
        // DCQCN reacts to CNPs, not ACKs (the NP generates CNPs).
    }

    fn on_cnp(&mut self, now: Time) {
        // Multiplicative decrease and α increase (congestion observed).
        self.rt = self.rc;
        self.rc *= 1.0 - self.alpha / 2.0;
        self.alpha = (1.0 - self.cfg.g) * self.alpha + self.cfg.g;
        self.clamp_rates();
        self.timer_stage = 0;
        self.byte_stage = 0;
        self.bytes_since = 0;
        self.cut_seen = true;
        self.alpha_deadline = now + self.cfg.alpha_timer;
        self.increase_deadline = now + self.cfg.increase_timer;
    }

    fn on_loss(&mut self, now: Time) {
        // A go-back-N rewind is at least as strong a congestion signal as
        // a CNP: apply the same multiplicative decrease.
        self.on_cnp(now);
    }

    fn on_fluid_handoff(&mut self, _now: Time, rate: Bandwidth) {
        // Seed both rates from the fluid fair share: the flow was cruising
        // at `rate` analytically, so resuming there (instead of line rate)
        // keeps the handoff transparent. Timers stay parked until a CNP.
        let r = (rate.as_bps() as f64)
            .clamp(self.cfg.min_rate.as_bps() as f64, self.cfg.link.as_bps() as f64);
        self.rc = r;
        self.rt = r;
    }

    fn on_sent(&mut self, _now: Time, bytes: u64) {
        if !self.cut_seen {
            return;
        }
        self.bytes_since += bytes;
        while self.bytes_since >= self.cfg.byte_counter {
            self.bytes_since -= self.cfg.byte_counter;
            self.byte_stage += 1;
            self.increase();
        }
    }

    fn rate(&self) -> Bandwidth {
        Bandwidth::from_bps(self.rc as u64)
    }

    fn cwnd_bytes(&self) -> u64 {
        u64::MAX
    }

    fn next_timer(&self) -> Option<Time> {
        let t = self.alpha_deadline.min(self.increase_deadline);
        (t != Time::MAX).then_some(t)
    }

    fn on_timer(&mut self, now: Time) {
        if now >= self.alpha_deadline {
            // No CNP during the window: α decays toward zero.
            self.alpha *= 1.0 - self.cfg.g;
            self.alpha_deadline = now + self.cfg.alpha_timer;
        }
        if now >= self.increase_deadline {
            self.timer_stage += 1;
            self.increase();
            self.increase_deadline = now + self.cfg.increase_timer;
        }
        // Once fully recovered to line rate with small alpha, park the
        // timers so idle flows stop generating events (alpha only matters
        // at the next CNP, which will restart the timers anyway).
        if self.rc >= self.cfg.link.as_bps() as f64 && self.alpha < 1e-3 {
            self.alpha_deadline = Time::MAX;
            self.increase_deadline = Time::MAX;
            self.cut_seen = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk() -> Dcqcn {
        Dcqcn::new(DcqcnConfig::for_link(Bandwidth::from_gbps(100)))
    }

    #[test]
    fn starts_at_line_rate_with_no_timers() {
        let cc = mk();
        assert_eq!(cc.rate(), Bandwidth::from_gbps(100));
        assert_eq!(cc.next_timer(), None);
    }

    #[test]
    fn cnp_halves_rate_initially() {
        let mut cc = mk();
        cc.on_cnp(Time::from_us(1));
        // alpha = 1 initially: cut by alpha/2 = 50%.
        let r = cc.rate().as_bps() as f64;
        assert!((r - 50e9).abs() / 50e9 < 0.01, "{r}");
        assert!(cc.next_timer().is_some());
    }

    #[test]
    fn repeated_cnps_drive_rate_to_floor() {
        let mut cc = mk();
        for i in 0..500 {
            cc.on_cnp(Time::from_us(i));
        }
        assert_eq!(cc.rate(), Bandwidth::from_mbps(100), "min-rate floor");
    }

    #[test]
    fn fast_recovery_climbs_halfway_back() {
        let mut cc = mk();
        cc.on_cnp(Time::from_us(0));
        let after_cut = cc.rate().as_bps() as f64;
        let rt = 100e9;
        // First timer expiry: fast recovery toward R_t (= pre-cut rate).
        let t = cc.next_timer().unwrap();
        cc.on_timer(t);
        let recovered = cc.rate().as_bps() as f64;
        assert!((recovered - (after_cut + rt) / 2.0).abs() < 1e6, "{recovered}");
    }

    #[test]
    fn alpha_decays_without_cnps() {
        let mut cc = mk();
        cc.on_cnp(Time::from_us(0));
        let a0 = cc.alpha();
        for _ in 0..20 {
            let t = cc.next_timer().unwrap();
            cc.on_timer(t);
        }
        assert!(cc.alpha() < a0, "alpha must decay: {} -> {}", a0, cc.alpha());
    }

    #[test]
    fn byte_counter_triggers_increase() {
        let mut cc = mk();
        cc.on_cnp(Time::from_us(0));
        let r0 = cc.rate().as_bps();
        cc.on_sent(Time::from_us(1), 10 * 1024 * 1024);
        assert!(cc.rate().as_bps() > r0, "byte counter stage must raise rate");
    }

    #[test]
    fn recovers_to_line_rate_and_parks_timers() {
        let mut cc = mk();
        cc.on_cnp(Time::from_us(0));
        for _ in 0..10_000 {
            match cc.next_timer() {
                Some(t) => cc.on_timer(t),
                None => break,
            }
        }
        assert_eq!(cc.rate(), Bandwidth::from_gbps(100));
        assert_eq!(cc.next_timer(), None, "timers must park at steady state");
    }

    #[test]
    fn hyper_increase_is_faster_than_additive() {
        // Drive two senders: one gets only timer stages (reaching hyper
        // eventually), measure that rate growth accelerates after F stages.
        let mut cc = mk();
        cc.on_cnp(Time::from_us(0));
        let mut prev = cc.rate().as_bps();
        let mut deltas = vec![];
        for _ in 0..12 {
            let t = cc.next_timer().unwrap();
            cc.on_timer(t);
            let r = cc.rate().as_bps();
            deltas.push(r.saturating_sub(prev));
            prev = r;
        }
        // Ignore saturated tail (clamped at link rate).
        let unsat: Vec<u64> = deltas.into_iter().take_while(|&d| d > 0).collect();
        assert!(unsat.len() >= 3);
    }
}
