//! Receiver-side logic: CNP generation for DCQCN and the selective-repeat
//! out-of-order delivery buffer.

use dsh_simcore::{Delta, Time};

/// DCQCN notification-point policy: emit at most one CNP per flow per
/// `min_gap` while ECN-marked packets keep arriving (the standard 50 µs
/// NP timer).
///
/// # Example
///
/// ```
/// use dsh_transport::CnpPolicy;
/// use dsh_simcore::{Delta, Time};
///
/// let mut np = CnpPolicy::new(Delta::from_us(50));
/// assert!(np.on_data(Time::from_us(0), true));   // first mark -> CNP
/// assert!(!np.on_data(Time::from_us(10), true)); // within the gap
/// assert!(np.on_data(Time::from_us(60), true));  // gap elapsed -> CNP
/// ```
#[derive(Clone, Debug)]
pub struct CnpPolicy {
    min_gap: Delta,
    last_cnp: Option<Time>,
}

impl CnpPolicy {
    /// Creates a policy with the given minimum CNP spacing.
    #[must_use]
    pub fn new(min_gap: Delta) -> Self {
        CnpPolicy { min_gap, last_cnp: None }
    }

    /// Standard DCQCN NP timer (50 µs).
    #[must_use]
    pub fn standard() -> Self {
        CnpPolicy::new(Delta::from_us(50))
    }

    /// Processes an arriving data packet; returns `true` if a CNP must be
    /// sent to the flow's source.
    pub fn on_data(&mut self, now: Time, ecn_marked: bool) -> bool {
        if !ecn_marked {
            return false;
        }
        match self.last_cnp {
            Some(t) if now.saturating_since(t) < self.min_gap => false,
            _ => {
                self.last_cnp = Some(now);
                true
            }
        }
    }
}

/// Selective-repeat receiver state: which segments beyond the cumulative
/// delivery mark have already arrived.
///
/// The window is one `u64` of MTU-strided segments: bit `k` set ⇔ the
/// segment starting at `received + (k+1)·mtu` is buffered. Arrivals more
/// than 64 segments ahead are *not* buffered (the bound keeps the state
/// `Copy` and allocation-free); they are simply dropped from the window
/// and repaired by a later retransmission, which only costs bandwidth,
/// never correctness. The same bitmap rides NACK frames verbatim, so the
/// sender's [`SackState`](crate::SackState) shares the convention.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SackBuffer {
    bitmap: u64,
}

impl SackBuffer {
    /// Window width in segments. Senders must not run more than this far
    /// ahead of the cumulative ACK (IRN's BDP-style flow control): an
    /// arrival past the window cannot be buffered, and a receiver forced
    /// to discard megabytes of out-of-order tail recovers it one RTO at
    /// a time — a rate-collapse death spiral, not a repair.
    pub const WINDOW_SEGMENTS: u64 = 64;

    /// An empty window.
    #[must_use]
    pub fn new() -> Self {
        SackBuffer::default()
    }

    /// Whether nothing is buffered out of order.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bitmap == 0
    }

    /// The delivery bitmap as carried by NACK frames.
    #[must_use]
    pub fn bitmap(&self) -> u64 {
        self.bitmap
    }

    /// Buffers an out-of-order arrival `gap_segments ≥ 1` whole segments
    /// ahead of the cumulative mark. Returns `false` if it fell outside
    /// the 64-segment window (not buffered; a retransmission will cover
    /// it).
    pub fn offer(&mut self, gap_segments: u64) -> bool {
        debug_assert!(gap_segments >= 1, "in-order arrivals never enter the sack buffer");
        if gap_segments > Self::WINDOW_SEGMENTS {
            return false;
        }
        self.bitmap |= 1 << (gap_segments - 1);
        true
    }

    /// The cumulative mark advanced one segment (an in-order arrival):
    /// slide the window down and drain the run of buffered segments now
    /// contiguous with the mark. Returns how many buffered segments were
    /// consumed; the caller advances its cumulative mark one segment per
    /// consumed segment, *on top of* the in-order arrival itself.
    ///
    /// The slide happens unconditionally — once per segment the mark
    /// moves — so the stored bitmap always satisfies the
    /// `received + (k+1)·mtu` convention even while holes remain. (A
    /// drain that only shifted while bit 0 was set would leave the map
    /// misaligned one position too high after repairing the lower of two
    /// holes, stranding already-buffered segments and NACKing the wrong
    /// ones.)
    pub fn on_in_order_arrival(&mut self) -> u64 {
        // With the mark one segment further on, old bit k describes
        // `received + k·mtu`: bit 0 is the segment *at* the mark, and a
        // contiguous run of low set bits is exactly the deliverable
        // prefix. Consume the run, then slide once more for the in-order
        // segment itself (that bit is clear — it ended the run) to
        // restore the `(k+1)` convention.
        let drained = self.bitmap.trailing_ones();
        self.bitmap = self.bitmap.checked_shr(drained + 1).unwrap_or(0);
        u64::from(drained)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sack_buffer_reassembles_out_of_order_arrivals() {
        let mut b = SackBuffer::new();
        assert!(b.is_empty());
        // The segments at `r+mtu` and `r+2·mtu` arrive ahead of the one
        // at the mark `r` (gaps 1 and 2).
        assert!(b.offer(1));
        assert!(b.offer(2));
        assert_eq!(b.bitmap(), 0b11);
        // The segment at the mark arrives in order: the window slides
        // and both buffered segments drain in the same step.
        assert_eq!(b.on_in_order_arrival(), 2);
        assert!(b.is_empty());
    }

    /// Regression: two holes (segments at `r` and `r+mtu` lost, `r+2·mtu`
    /// and `r+3·mtu` buffered) where the lower hole's repair arrives
    /// first. The window must slide on that repair even though nothing is
    /// contiguous yet; a drain that only shifts while bit 0 is set leaves
    /// the bitmap misaligned one position too high and the buffered
    /// segments stranded.
    #[test]
    fn two_holes_drain_after_the_second_repair() {
        let mut b = SackBuffer::new();
        assert!(b.offer(2));
        assert!(b.offer(3));
        assert_eq!(b.bitmap(), 0b110);
        // Repair of the lower hole: no buffered segment is reachable
        // yet, but the window slides one position.
        assert_eq!(b.on_in_order_arrival(), 0);
        assert_eq!(b.bitmap(), 0b11, "window must slide past a remaining hole");
        // Repair of the second hole bridges to both buffered segments.
        assert_eq!(b.on_in_order_arrival(), 2);
        assert!(b.is_empty());
    }

    /// A saturated window (all 64 bits set) drains completely in one
    /// in-order arrival without the 65-position shift overflowing.
    #[test]
    fn full_window_drains_in_one_step() {
        let mut b = SackBuffer::new();
        for gap in 1..=SackBuffer::WINDOW_SEGMENTS {
            assert!(b.offer(gap));
        }
        assert_eq!(b.bitmap(), u64::MAX);
        assert_eq!(b.on_in_order_arrival(), 64);
        assert!(b.is_empty());
    }

    #[test]
    fn sack_buffer_bounds_its_window() {
        let mut b = SackBuffer::new();
        assert!(b.offer(64), "edge of the window is buffered");
        assert!(!b.offer(65), "beyond the window is dropped, not buffered");
        assert_eq!(b.bitmap(), 1 << 63);
    }

    #[test]
    fn unmarked_packets_never_trigger() {
        let mut np = CnpPolicy::standard();
        for i in 0..100 {
            assert!(!np.on_data(Time::from_us(i), false));
        }
    }

    #[test]
    fn rate_limits_to_one_per_gap() {
        let mut np = CnpPolicy::new(Delta::from_us(50));
        let mut cnps = 0;
        for i in 0..200 {
            if np.on_data(Time::from_us(i), true) {
                cnps += 1;
            }
        }
        // 200 us span, 50 us gap: CNPs at 0, 50, 100, 150.
        assert_eq!(cnps, 4);
    }

    #[test]
    fn gap_measured_from_last_cnp() {
        let mut np = CnpPolicy::new(Delta::from_us(50));
        assert!(np.on_data(Time::from_us(0), true));
        assert!(!np.on_data(Time::from_us(49), true));
        assert!(np.on_data(Time::from_us(50), true));
    }
}
