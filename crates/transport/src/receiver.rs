//! Receiver-side (notification point) logic: CNP generation for DCQCN.

use dsh_simcore::{Delta, Time};

/// DCQCN notification-point policy: emit at most one CNP per flow per
/// `min_gap` while ECN-marked packets keep arriving (the standard 50 µs
/// NP timer).
///
/// # Example
///
/// ```
/// use dsh_transport::CnpPolicy;
/// use dsh_simcore::{Delta, Time};
///
/// let mut np = CnpPolicy::new(Delta::from_us(50));
/// assert!(np.on_data(Time::from_us(0), true));   // first mark -> CNP
/// assert!(!np.on_data(Time::from_us(10), true)); // within the gap
/// assert!(np.on_data(Time::from_us(60), true));  // gap elapsed -> CNP
/// ```
#[derive(Clone, Debug)]
pub struct CnpPolicy {
    min_gap: Delta,
    last_cnp: Option<Time>,
}

impl CnpPolicy {
    /// Creates a policy with the given minimum CNP spacing.
    #[must_use]
    pub fn new(min_gap: Delta) -> Self {
        CnpPolicy { min_gap, last_cnp: None }
    }

    /// Standard DCQCN NP timer (50 µs).
    #[must_use]
    pub fn standard() -> Self {
        CnpPolicy::new(Delta::from_us(50))
    }

    /// Processes an arriving data packet; returns `true` if a CNP must be
    /// sent to the flow's source.
    pub fn on_data(&mut self, now: Time, ecn_marked: bool) -> bool {
        if !ecn_marked {
            return false;
        }
        match self.last_cnp {
            Some(t) if now.saturating_since(t) < self.min_gap => false,
            _ => {
                self.last_cnp = Some(now);
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmarked_packets_never_trigger() {
        let mut np = CnpPolicy::standard();
        for i in 0..100 {
            assert!(!np.on_data(Time::from_us(i), false));
        }
    }

    #[test]
    fn rate_limits_to_one_per_gap() {
        let mut np = CnpPolicy::new(Delta::from_us(50));
        let mut cnps = 0;
        for i in 0..200 {
            if np.on_data(Time::from_us(i), true) {
                cnps += 1;
            }
        }
        // 200 us span, 50 us gap: CNPs at 0, 50, 100, 150.
        assert_eq!(cnps, 4);
    }

    #[test]
    fn gap_measured_from_last_cnp() {
        let mut np = CnpPolicy::new(Delta::from_us(50));
        assert!(np.on_data(Time::from_us(0), true));
        assert!(!np.on_data(Time::from_us(49), true));
        assert!(np.on_data(Time::from_us(50), true));
    }
}
