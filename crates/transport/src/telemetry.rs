//! In-band network telemetry (INT) records, the feedback signal PowerTCP
//! consumes.

use dsh_simcore::{Bandwidth, Time};

/// One hop's telemetry, stamped by a switch when it dequeues a data packet
/// and echoed back to the sender in the ACK.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TelemetryHop {
    /// Egress queue length (bytes) at dequeue time.
    pub qlen_bytes: u64,
    /// Cumulative bytes transmitted by the egress port (λ is derived from
    /// its difference between two ACKs).
    pub tx_bytes: u64,
    /// Switch-local timestamp of the dequeue.
    pub timestamp: Time,
    /// Egress link capacity.
    pub bandwidth: Bandwidth,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_is_plain_data() {
        let h = TelemetryHop {
            qlen_bytes: 1500,
            tx_bytes: 1_000_000,
            timestamp: Time::from_us(3),
            bandwidth: Bandwidth::from_gbps(100),
        };
        let h2 = h;
        assert_eq!(h, h2);
    }
}
