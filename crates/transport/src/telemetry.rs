//! In-band network telemetry (INT) records, the feedback signal PowerTCP
//! consumes.

use dsh_simcore::{Bandwidth, Json, Time};

/// One hop's telemetry, stamped by a switch when it dequeues a data packet
/// and echoed back to the sender in the ACK.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TelemetryHop {
    /// Egress queue length (bytes) at dequeue time.
    pub qlen_bytes: u64,
    /// Cumulative bytes transmitted by the egress port (λ is derived from
    /// its difference between two ACKs).
    pub tx_bytes: u64,
    /// Switch-local timestamp of the dequeue.
    pub timestamp: Time,
    /// Egress link capacity.
    pub bandwidth: Bandwidth,
}

impl TelemetryHop {
    /// JSON form, matching the field layout of the network-level
    /// telemetry export.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::object()
            .with("qlen_bytes", self.qlen_bytes)
            .with("tx_bytes", self.tx_bytes)
            .with("timestamp_ns", self.timestamp.as_ns())
            .with("bandwidth_gbps", self.bandwidth.as_gbps_f64())
    }
}

/// Maximum number of switch hops a packet can traverse, and therefore the
/// inline capacity of a [`HopList`].
///
/// The nominal data-path diameter of the supported fabrics is 5 egress
/// stamps: a k-ary fat-tree crosses edge→agg→core→agg→edge, and the
/// failure-rerouted leaf–spine paths of the CBD experiment (fig. 12) cross
/// leaf→spine→leaf→spine→leaf. Fault reroutes can lengthen a path past the
/// nominal diameter (a recomputed fat-tree route may detour through an
/// extra agg/core pair), so the capacity carries 3 hops of slack above it.
/// Every frame carries this array inline, so the constant is also a memcpy
/// budget — the `Frame` size contract (`const_assert_size!` in
/// `dsh-net::network`) recertifies the frame footprint whenever it moves.
/// `NetworkBuilder::build` checks the longest computed route against this
/// capacity at build time, and [`HopList::push`] past capacity panics
/// rather than silently dropping telemetry.
pub const HOP_CAPACITY: usize = 8;

const ZERO_HOP: TelemetryHop = TelemetryHop {
    qlen_bytes: 0,
    tx_bytes: 0,
    timestamp: Time::ZERO,
    bandwidth: Bandwidth::from_bps(0),
};

/// A fixed-capacity, inline list of [`TelemetryHop`]s.
///
/// Replaces the old `Vec<TelemetryHop>` inside data/ACK frames: the storage
/// lives inline in the frame (no per-packet heap allocation, and echoing
/// the hops into an ACK is a plain `memcpy`). Push order is preserved and
/// unused slots are zeroed, so equality and hashing only consider the live
/// prefix.
#[derive(Clone, Copy)]
pub struct HopList {
    hops: [TelemetryHop; HOP_CAPACITY],
    len: u8,
}

impl HopList {
    /// An empty list.
    #[must_use]
    pub const fn new() -> Self {
        HopList { hops: [ZERO_HOP; HOP_CAPACITY], len: 0 }
    }

    /// Appends a hop record.
    ///
    /// # Panics
    ///
    /// Panics if the packet already carries [`HOP_CAPACITY`] stamps — the
    /// topology's diameter exceeds the inline capacity contract.
    pub fn push(&mut self, hop: TelemetryHop) {
        assert!(
            (self.len as usize) < HOP_CAPACITY,
            "HopList overflow: path exceeds HOP_CAPACITY ({HOP_CAPACITY}) switch hops; \
             raise dsh_transport::HOP_CAPACITY for deeper topologies"
        );
        self.hops[self.len as usize] = hop;
        self.len += 1;
    }

    /// Number of stamped hops.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether no hop has been stamped yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The stamped hops, in path order.
    #[must_use]
    pub fn as_slice(&self) -> &[TelemetryHop] {
        &self.hops[..self.len as usize]
    }

    /// Iterates over the stamped hops in path order.
    pub fn iter(&self) -> std::slice::Iter<'_, TelemetryHop> {
        self.as_slice().iter()
    }

    /// Removes all hops (slots are re-zeroed so equality stays prefix-only
    /// by construction).
    pub fn clear(&mut self) {
        self.hops = [ZERO_HOP; HOP_CAPACITY];
        self.len = 0;
    }

    /// Builds a list from a slice (test/bench convenience).
    ///
    /// # Panics
    ///
    /// Panics if `hops.len() > HOP_CAPACITY`.
    #[must_use]
    pub fn from_slice(hops: &[TelemetryHop]) -> Self {
        let mut out = HopList::new();
        for h in hops {
            out.push(*h);
        }
        out
    }
}

impl Default for HopList {
    fn default() -> Self {
        HopList::new()
    }
}

impl std::ops::Deref for HopList {
    type Target = [TelemetryHop];

    fn deref(&self) -> &[TelemetryHop] {
        self.as_slice()
    }
}

impl PartialEq for HopList {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for HopList {}

impl std::fmt::Debug for HopList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl<'a> IntoIterator for &'a HopList {
    type Item = &'a TelemetryHop;
    type IntoIter = std::slice::Iter<'a, TelemetryHop>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hop(n: u64) -> TelemetryHop {
        TelemetryHop {
            qlen_bytes: n,
            tx_bytes: n * 10,
            timestamp: Time::from_us(n),
            bandwidth: Bandwidth::from_gbps(100),
        }
    }

    #[test]
    fn telemetry_is_plain_data() {
        let h = hop(1);
        let h2 = h;
        assert_eq!(h, h2);
    }

    #[test]
    fn hoplist_push_and_iterate_in_path_order() {
        let mut l = HopList::new();
        assert!(l.is_empty());
        for n in 0..4 {
            l.push(hop(n));
        }
        assert_eq!(l.len(), 4);
        assert_eq!(l.as_slice(), &[hop(0), hop(1), hop(2), hop(3)]);
        let via_iter: Vec<u64> = l.iter().map(|h| h.qlen_bytes).collect();
        assert_eq!(via_iter, vec![0, 1, 2, 3]);
    }

    #[test]
    fn hoplist_copies_and_compares_by_live_prefix() {
        let mut a = HopList::new();
        a.push(hop(7));
        let b = a; // Copy, not move: frames stay plain data.
        assert_eq!(a, b);
        let mut c = HopList::from_slice(&[hop(7), hop(8)]);
        assert_ne!(a, c);
        c.clear();
        assert_eq!(c, HopList::new());
    }

    #[test]
    fn hoplist_derefs_to_slice() {
        let l = HopList::from_slice(&[hop(1), hop(2)]);
        // &*l is what `AckInfo { hops: &ack.hops }` relies on.
        let s: &[TelemetryHop] = &l;
        assert_eq!(s.len(), 2);
        assert_eq!(l.first(), Some(&hop(1)));
    }

    #[test]
    #[should_panic(expected = "HopList overflow")]
    fn hoplist_overflow_panics() {
        let mut l = HopList::new();
        for n in 0..=HOP_CAPACITY as u64 {
            l.push(hop(n));
        }
    }

    #[test]
    fn telemetry_hop_json_roundtrips() {
        let h = TelemetryHop {
            qlen_bytes: 1500,
            tx_bytes: 1_000_000,
            timestamp: Time::from_us(3),
            bandwidth: Bandwidth::from_gbps(100),
        };
        let j = h.to_json();
        assert_eq!(j.get("qlen_bytes").unwrap().as_u64(), Some(1500));
        assert_eq!(j.get("bandwidth_gbps").unwrap().as_f64(), Some(100.0));
        assert_eq!(Json::parse(&j.to_string()).unwrap(), j);
    }
}
