//! In-band network telemetry (INT) records, the feedback signal PowerTCP
//! consumes.

use dsh_simcore::{Bandwidth, Json, Time};

/// One hop's telemetry, stamped by a switch when it dequeues a data packet
/// and echoed back to the sender in the ACK.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TelemetryHop {
    /// Egress queue length (bytes) at dequeue time.
    pub qlen_bytes: u64,
    /// Cumulative bytes transmitted by the egress port (λ is derived from
    /// its difference between two ACKs).
    pub tx_bytes: u64,
    /// Switch-local timestamp of the dequeue.
    pub timestamp: Time,
    /// Egress link capacity.
    pub bandwidth: Bandwidth,
}

impl TelemetryHop {
    /// JSON form, matching the field layout of the network-level
    /// telemetry export.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::object()
            .with("qlen_bytes", self.qlen_bytes)
            .with("tx_bytes", self.tx_bytes)
            .with("timestamp_ns", self.timestamp.as_ns())
            .with("bandwidth_gbps", self.bandwidth.as_gbps_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_is_plain_data() {
        let h = TelemetryHop {
            qlen_bytes: 1500,
            tx_bytes: 1_000_000,
            timestamp: Time::from_us(3),
            bandwidth: Bandwidth::from_gbps(100),
        };
        let h2 = h;
        assert_eq!(h, h2);
    }

    #[test]
    fn telemetry_hop_json_roundtrips() {
        let h = TelemetryHop {
            qlen_bytes: 1500,
            tx_bytes: 1_000_000,
            timestamp: Time::from_us(3),
            bandwidth: Bandwidth::from_gbps(100),
        };
        let j = h.to_json();
        assert_eq!(j.get("qlen_bytes").unwrap().as_u64(), Some(1500));
        assert_eq!(j.get("bandwidth_gbps").unwrap().as_f64(), Some(100.0));
        assert_eq!(Json::parse(&j.to_string()).unwrap(), j);
    }
}
