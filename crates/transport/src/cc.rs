//! The congestion-control abstraction shared by all transports.

use crate::telemetry::TelemetryHop;
use dsh_simcore::{Bandwidth, Time};
use std::fmt;

/// Which transport a flow uses.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CcKind {
    /// No end-to-end control: send at line rate (microbenchmarks, and the
    /// paper's sub-BDP fan-in bursts).
    Uncontrolled,
    /// DCQCN (SIGCOMM 2015).
    Dcqcn,
    /// PowerTCP (NSDI 2022).
    PowerTcp,
}

impl fmt::Display for CcKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CcKind::Uncontrolled => "w/o CC",
            CcKind::Dcqcn => "DCQCN",
            CcKind::PowerTcp => "PowerTCP",
        })
    }
}

/// Feedback delivered to the sender by one ACK.
#[derive(Clone, Debug)]
pub struct AckInfo<'a> {
    /// Newly acknowledged payload bytes.
    pub acked_bytes: u64,
    /// Whether the acked data packet carried an ECN CE mark (echoed).
    pub ecn_echo: bool,
    /// Per-hop INT telemetry collected by the data packet (PowerTCP).
    /// Empty when the feedback carried no telemetry — NACK-borne
    /// cumulative progress, for one. INT-driven transports must treat an
    /// empty list as *no path information*, never as an uncongested
    /// path: NACKs cluster in exactly the congested episodes where
    /// mistaking "no INT" for "idle fabric" would open the window.
    pub hops: &'a [TelemetryHop],
}

/// A per-flow congestion-control state machine.
///
/// The NIC calls the `on_*` notifications and polls [`Cc::rate`] /
/// [`Cc::cwnd_bytes`] before each transmission; [`Cc::next_timer`] lets the
/// NIC schedule the transport's internal timers (DCQCN's α-decay and
/// rate-increase timers) in the simulator's calendar.
pub trait Cc: fmt::Debug + Send {
    /// Called when an ACK arrives.
    fn on_ack(&mut self, now: Time, info: &AckInfo<'_>);

    /// Called when a Congestion Notification Packet arrives (DCQCN).
    fn on_cnp(&mut self, now: Time);

    /// Called when the NIC detects a loss (go-back-N RTO fired) and is
    /// about to retransmit. Transports should back off: lost frames mean
    /// either a dead link or severe congestion, and hammering the rewound
    /// window at full rate would re-lose the retransmission. Default:
    /// no-op (uncontrolled senders rely on the RTO backoff alone).
    fn on_loss(&mut self, now: Time) {
        let _ = now;
    }

    /// Called when the NIC hands `bytes` of this flow to the wire.
    fn on_sent(&mut self, now: Time, bytes: u64);

    /// Called once when a flow that was being advanced analytically by the
    /// fluid fast path is handed to the packet engine. `rate` is the
    /// max-min fair share the fluid solver last assigned the flow — a
    /// congestion-free estimate the transport may seed its own state from
    /// so it does not open at line rate onto a link that just escalated.
    /// Default: no-op (uncontrolled senders always run at line rate).
    fn on_fluid_handoff(&mut self, now: Time, rate: Bandwidth) {
        let _ = (now, rate);
    }

    /// Current pacing rate.
    fn rate(&self) -> Bandwidth;

    /// Current congestion window in bytes (`u64::MAX` for purely
    /// rate-based transports).
    fn cwnd_bytes(&self) -> u64;

    /// The next instant at which [`Cc::on_timer`] must run, if any.
    fn next_timer(&self) -> Option<Time>;

    /// Runs timer work due at `now`.
    fn on_timer(&mut self, now: Time);
}

/// Line-rate sender with no feedback control.
#[derive(Clone, Debug)]
pub struct Uncontrolled {
    link: Bandwidth,
}

impl Uncontrolled {
    /// Creates an uncontrolled sender for a given link speed.
    #[must_use]
    pub fn new(link: Bandwidth) -> Self {
        Uncontrolled { link }
    }
}

impl Cc for Uncontrolled {
    fn on_ack(&mut self, _now: Time, _info: &AckInfo<'_>) {}
    fn on_cnp(&mut self, _now: Time) {}
    fn on_sent(&mut self, _now: Time, _bytes: u64) {}

    fn rate(&self) -> Bandwidth {
        self.link
    }

    fn cwnd_bytes(&self) -> u64 {
        u64::MAX
    }

    fn next_timer(&self) -> Option<Time> {
        None
    }

    fn on_timer(&mut self, _now: Time) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontrolled_never_slows_down() {
        let mut cc = Uncontrolled::new(Bandwidth::from_gbps(100));
        cc.on_cnp(Time::from_us(1));
        cc.on_ack(Time::from_us(2), &AckInfo { acked_bytes: 1500, ecn_echo: true, hops: &[] });
        assert_eq!(cc.rate(), Bandwidth::from_gbps(100));
        assert_eq!(cc.cwnd_bytes(), u64::MAX);
        assert_eq!(cc.next_timer(), None);
    }

    #[test]
    fn kind_display() {
        assert_eq!(CcKind::Dcqcn.to_string(), "DCQCN");
        assert_eq!(CcKind::PowerTcp.to_string(), "PowerTCP");
        assert_eq!(CcKind::Uncontrolled.to_string(), "w/o CC");
    }
}
