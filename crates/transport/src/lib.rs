//! End-to-end congestion control for the DSH simulator.
//!
//! The paper evaluates DSH under two state-of-the-art transports plus raw
//! (uncontrolled) senders:
//!
//! * [`Dcqcn`] — rate-based ECN feedback control for RoCEv2 (Zhu et al.,
//!   SIGCOMM 2015), the transport with the higher persistent buffer
//!   occupancy in the paper's experiments;
//! * [`PowerTcp`] — window-based in-network-telemetry control (Addanki et
//!   al., NSDI 2022), which keeps persistent queues near zero;
//! * [`Uncontrolled`] — line-rate senders for microbenchmarks (sub-BDP
//!   bursts are uncontrollable by any end-to-end scheme within the first
//!   RTT, which is the paper's §III point).
//!
//! All transports implement the object-safe [`Cc`] trait, consumed by the
//! NIC model in `dsh-net`. A transport never touches the simulator
//! directly: the NIC forwards ACK/CNP/timer events and queries the
//! current pacing [`rate`](Cc::rate) and [`cwnd`](Cc::cwnd_bytes).
//!
//! # Example
//!
//! ```
//! use dsh_transport::{Cc, Dcqcn, DcqcnConfig};
//! use dsh_simcore::{Bandwidth, Time};
//!
//! let mut cc = Dcqcn::new(DcqcnConfig::for_link(Bandwidth::from_gbps(100)));
//! let before = cc.rate();
//! cc.on_cnp(Time::from_us(10));
//! assert!(cc.rate() < before, "a CNP must cut the sending rate");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cc;
mod dcqcn;
mod powertcp;
mod receiver;
mod recovery;
mod telemetry;

pub use cc::{AckInfo, Cc, CcKind, Uncontrolled};
pub use dcqcn::{Dcqcn, DcqcnConfig};
pub use powertcp::{PowerTcp, PowerTcpConfig};
pub use receiver::{CnpPolicy, SackBuffer};
pub use recovery::{GoBackN, RecoveryConfig, Regime, RtoOutcome, RttEstimator, SackState};
pub use telemetry::{HopList, TelemetryHop, HOP_CAPACITY};

use dsh_simcore::{Bandwidth, Delta};

/// Constructs a transport instance of the given kind for a sender attached
/// to a `link` with the given base round-trip time.
#[must_use]
pub fn new_cc(kind: CcKind, link: Bandwidth, base_rtt: Delta) -> Box<dyn Cc> {
    match kind {
        CcKind::Uncontrolled => Box::new(Uncontrolled::new(link)),
        CcKind::Dcqcn => Box::new(Dcqcn::new(DcqcnConfig::for_link(link))),
        CcKind::PowerTcp => Box::new(PowerTcp::new(PowerTcpConfig::for_link(link, base_rtt))),
    }
}
