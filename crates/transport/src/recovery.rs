//! Loss recovery (RoCEv2-style): go-back-N and IRN-style selective repeat.
//!
//! RoCEv2 NICs assume a lossless fabric, but links still die: a frame lost
//! to a link failure would wedge the flow forever without a retransmission
//! path. Commercial NICs recover with *go-back-N* — the receiver only
//! accepts the next in-order byte and acknowledges cumulatively; when the
//! sender's retransmission timeout (RTO) fires it rewinds to the last
//! cumulatively acknowledged byte and resends everything from there.
//!
//! IRN ("Revisiting Network Support for RDMA", SIGCOMM 2018) showed that
//! go-back-N wastes enormous bandwidth on a genuinely lossy fabric: one
//! drop re-sends the whole window. Its fix is *selective repeat*: the
//! receiver buffers out-of-order arrivals and reports them in explicit
//! NACK control frames carrying a sack bitmap, so the sender repairs only
//! the actual gaps. [`Regime`] selects between the two; [`SackState`] is
//! the selective-repeat sender's gap-tracking state.
//!
//! [`GoBackN`] is the per-flow sender timeout state machine shared by
//! both regimes: an adaptive SRTT/RTTVAR RTO (RFC 6298 shape, integer
//! picosecond arithmetic) with exponential backoff and a max-retry cap
//! that marks the flow **failed** (instead of retrying forever) so runs
//! always terminate. The NIC model owns the calendar events; this type
//! only decides *what* to do when the timer fires and how far the next
//! deadline is.

use dsh_simcore::{Delta, Time};

/// Which retransmission strategy a flow runs when frames are lost.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Regime {
    /// Cumulative ACKs only; an RTO rewinds to the last acknowledged byte
    /// and resends everything (commercial RoCEv2 NIC behaviour).
    #[default]
    GoBackN,
    /// IRN-style: the receiver buffers out-of-order data and NACKs the
    /// gaps with a sack bitmap; the sender repairs only what was lost.
    SelectiveRepeat,
}

impl std::fmt::Display for Regime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Regime::GoBackN => "GBN",
            Regime::SelectiveRepeat => "SR",
        })
    }
}

impl Regime {
    /// Stable lower-case tag for machine-readable exports (CLI operands
    /// and `metrics.json` use this form; [`std::fmt::Display`] stays the
    /// human-facing spelling).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Regime::GoBackN => "gbn",
            Regime::SelectiveRepeat => "sr",
        }
    }
}

/// Tuning knobs for loss recovery (both regimes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Floor for the adaptive retransmission timeout. Before the first
    /// RTT sample this is also the initial RTO.
    pub min_rto: Delta,
    /// Ceiling for the adaptive RTO, backoff included.
    pub max_rto: Delta,
    /// Consecutive unproductive RTO firings tolerated before the flow is
    /// declared failed.
    pub max_retries: u32,
    /// Retransmission strategy.
    pub regime: Regime,
    /// Whether receivers buffer out-of-order arrivals (required by
    /// [`Regime::SelectiveRepeat`]; go-back-N ignores it).
    pub rx_buffering: bool,
}

impl RecoveryConfig {
    /// Defaults scaled from the base RTT: the RTO starts at `3 × base_rtt`
    /// (comfortably above one round trip plus queueing jitter), may back
    /// off through 8 doublings (`max_rto = 256 × min_rto`), and gives up
    /// after 8 unproductive retries. The regime defaults to go-back-N —
    /// the historical behaviour every existing experiment pins.
    #[must_use]
    pub fn for_rtt(base_rtt: Delta) -> Self {
        let min_rto = base_rtt * 3;
        RecoveryConfig {
            min_rto,
            max_rto: Delta::from_ps(min_rto.as_ps().saturating_mul(256)),
            max_retries: 8,
            regime: Regime::GoBackN,
            rx_buffering: false,
        }
    }

    /// Returns a copy running IRN-style selective repeat (receiver
    /// out-of-order buffering switched on, as SR requires).
    #[must_use]
    pub fn selective_repeat(mut self) -> Self {
        self.regime = Regime::SelectiveRepeat;
        self.rx_buffering = true;
        self
    }

    /// Checks internal coherence.
    ///
    /// # Errors
    ///
    /// Rejects a ceiling below the floor and selective repeat without
    /// receiver buffering (an SR sender would spin on NACKs the receiver
    /// can never generate).
    pub fn validate(&self) -> Result<(), String> {
        if self.max_rto < self.min_rto {
            return Err(format!(
                "recovery max_rto ({} ns) is below min_rto ({} ns)",
                self.max_rto.as_ns(),
                self.min_rto.as_ns()
            ));
        }
        if self.regime == Regime::SelectiveRepeat && !self.rx_buffering {
            return Err("selective-repeat recovery requires receiver out-of-order buffering \
                 (rx_buffering)"
                .to_string());
        }
        Ok(())
    }
}

/// RFC 6298-shaped smoothed RTT estimator in integer picoseconds.
///
/// First sample: `SRTT = R`, `RTTVAR = R/2`. Thereafter
/// `RTTVAR = 3/4·RTTVAR + 1/4·|SRTT − R|` and
/// `SRTT = 7/8·SRTT + 1/8·R`. The RTO is `SRTT + 4·RTTVAR` clamped to
/// the config's `[min_rto, max_rto]`. Samples must follow Karn's rule —
/// never taken from retransmitted segments — which the NIC enforces by
/// clearing its RTT probe whenever a retransmission rewinds or repairs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RttEstimator {
    srtt_ps: u64,
    rttvar_ps: u64,
    primed: bool,
}

impl RttEstimator {
    /// An estimator with no samples yet (RTO falls back to `min_rto`).
    #[must_use]
    pub fn new() -> Self {
        RttEstimator::default()
    }

    /// Whether at least one sample has been absorbed.
    #[must_use]
    pub fn primed(&self) -> bool {
        self.primed
    }

    /// The smoothed RTT (zero before the first sample).
    #[must_use]
    pub fn srtt(&self) -> Delta {
        Delta::from_ps(self.srtt_ps)
    }

    /// Absorbs one (non-retransmitted) RTT measurement.
    pub fn observe(&mut self, sample: Delta) {
        let r = sample.as_ps();
        if self.primed {
            let dev = self.srtt_ps.abs_diff(r);
            self.rttvar_ps = self.rttvar_ps - self.rttvar_ps / 4 + dev / 4;
            self.srtt_ps = self.srtt_ps - self.srtt_ps / 8 + r / 8;
        } else {
            self.srtt_ps = r;
            self.rttvar_ps = r / 2;
            self.primed = true;
        }
    }

    /// `SRTT + 4·RTTVAR` clamped to the config's bounds; `min_rto` until
    /// primed.
    #[must_use]
    pub fn rto(&self, cfg: &RecoveryConfig) -> Delta {
        if !self.primed {
            return cfg.min_rto;
        }
        let raw = self.srtt_ps.saturating_add(self.rttvar_ps.saturating_mul(4));
        Delta::from_ps(raw.clamp(cfg.min_rto.as_ps(), cfg.max_rto.as_ps()))
    }
}

/// What the NIC must do after an RTO firing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RtoOutcome {
    /// Retransmit (go-back-N rewinds the send cursor; selective repeat
    /// re-arms gap repair from the last cumulative ACK); the timer has
    /// been re-armed with the backed-off RTO.
    Retransmit,
    /// The retry budget is exhausted: mark the flow failed and stop.
    Failed,
}

/// Per-flow sender timeout state, shared by both regimes (the name
/// predates selective repeat; only the *rewind on timeout* part is
/// go-back-N-specific, and that lives in the NIC).
#[derive(Clone, Copy, Debug)]
pub struct GoBackN {
    cfg: RecoveryConfig,
    est: RttEstimator,
    /// Consecutive RTO firings since the last cumulative-ACK progress.
    retries: u32,
    /// Current (backed-off) timeout.
    rto: Delta,
    failed: bool,
}

impl GoBackN {
    /// Fresh state with the initial RTO armed-able.
    #[must_use]
    pub fn new(cfg: RecoveryConfig) -> Self {
        GoBackN { cfg, est: RttEstimator::new(), retries: 0, rto: cfg.min_rto, failed: false }
    }

    /// The configuration this flow recovers under.
    #[must_use]
    pub fn config(&self) -> &RecoveryConfig {
        &self.cfg
    }

    /// The flow's retransmission regime.
    #[must_use]
    pub fn regime(&self) -> Regime {
        self.cfg.regime
    }

    /// The current (backed-off) timeout.
    #[must_use]
    pub fn rto(&self) -> Delta {
        self.rto
    }

    /// The smoothed-RTT estimator (telemetry/tests).
    #[must_use]
    pub fn estimator(&self) -> &RttEstimator {
        &self.est
    }

    /// Retries burned since the last progress.
    #[must_use]
    pub fn retries(&self) -> u32 {
        self.retries
    }

    /// Whether the flow has exhausted its retry budget.
    #[must_use]
    pub fn failed(&self) -> bool {
        self.failed
    }

    /// The retry count and current RTO packed into one flight-recorder
    /// payload word: retries in the top 16 bits, RTO nanoseconds
    /// (saturating at 2^48−1) below — the encoding the Chrome-trace
    /// exporter's `retransmit` markers decode.
    #[must_use]
    pub fn trace_payload(&self) -> u64 {
        const NS_MASK: u64 = (1 << 48) - 1;
        (u64::from(self.retries) << 48) | self.rto.as_ns().min(NS_MASK)
    }

    /// The deadline for a timer armed at `now`.
    #[must_use]
    pub fn deadline(&self, now: Time) -> Time {
        now + self.rto
    }

    /// One clean (Karn-valid) RTT measurement. Outside backoff the armed
    /// RTO tracks the estimate immediately.
    pub fn on_rtt_sample(&mut self, sample: Delta) {
        self.est.observe(sample);
        if self.retries == 0 {
            self.rto = self.est.rto(&self.cfg);
        }
    }

    /// Cumulative-ACK progress: the path is alive again, so the backoff
    /// and retry budget reset (to the adaptive RTO once primed).
    pub fn on_progress(&mut self) {
        self.retries = 0;
        self.rto = self.est.rto(&self.cfg);
    }

    /// The RTO fired with data still outstanding. Returns what to do;
    /// on [`RtoOutcome::Retransmit`] the internal RTO has already been
    /// doubled (capped at `max_rto`) for the next arming.
    pub fn on_timeout(&mut self) -> RtoOutcome {
        if self.retries >= self.cfg.max_retries {
            self.failed = true;
            return RtoOutcome::Failed;
        }
        self.retries += 1;
        self.rto = Delta::from_ps(self.rto.as_ps().saturating_mul(2).min(self.cfg.max_rto.as_ps()));
        RtoOutcome::Retransmit
    }
}

/// Selective-repeat sender gap state: the latest receiver-reported sack
/// bitmap plus a repair cursor.
///
/// All offsets are absolute byte positions in the flow; segments start at
/// multiples of the MTU (the NIC sends MTU-sized frames except the tail).
/// The bitmap is relative to the cumulative ACK: bit `k` set ⇔ the
/// segment starting at `acked + (k+1)·mtu` was delivered out of order.
/// Bit 0's segment (`acked` itself) is missing by definition — that is
/// what makes the ACK stop there.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SackState {
    /// Receiver-reported out-of-order delivery bitmap (see type docs).
    bitmap: u64,
    /// Next repair-scan offset. The cursor is *persistent*: it only moves
    /// forward, so a hole gets exactly one repair per NACK round — the
    /// receiver NACKs every out-of-order arrival, and without this a
    /// single hole would be re-repaired once per duplicate NACK for a
    /// whole round trip (a repair storm). Only [`rearm_on_timeout`]
    /// rewinds it (the repair itself may have been lost).
    ///
    /// [`rearm_on_timeout`]: SackState::rearm_on_timeout
    cursor: u64,
    /// Repairs stop here (exclusive): the highest offset the receiver's
    /// NACK gave us delivery information about. Above it segments are
    /// presumed still in flight.
    high: u64,
    /// End of the current loss episode: `Cc::on_loss` fires once per
    /// episode, and a new episode starts only once the cumulative ACK
    /// passes this mark (one rate cut per window, TCP-NewReno style).
    episode_end: u64,
}

impl SackState {
    /// Fresh state: nothing reported, nothing pending.
    #[must_use]
    pub fn new() -> Self {
        SackState { bitmap: 0, cursor: 0, high: 0, episode_end: 0 }
    }

    /// Whether gap repairs are pending (unscanned holes below the sack
    /// horizon).
    #[must_use]
    pub fn repair_pending(&self) -> bool {
        self.cursor < self.high
    }

    /// The latest receiver-reported bitmap (telemetry/tests).
    #[must_use]
    pub fn bitmap(&self) -> u64 {
        self.bitmap
    }

    /// Absorbs one NACK: `acked` is the receiver's cumulative mark (the
    /// caller has already advanced its own cumulative state to it),
    /// `bitmap` the out-of-order delivery map relative to `acked`.
    /// Returns `true` if this starts a new loss episode (the caller cuts
    /// the congestion window exactly once per episode).
    ///
    /// A duplicate NACK (no new delivery information) is a no-op for the
    /// repair cursor: holes already scanned this round have a repair in
    /// flight and must not be resent until the RTO says otherwise. Fresh
    /// information — a higher cumulative mark or a taller bitmap — only
    /// extends the horizon, so only the *new* holes get scanned.
    pub fn on_nack(&mut self, acked: u64, bitmap: u64, mtu: u64, max_sent: u64) -> bool {
        self.bitmap = bitmap;
        // Delivery information covers up to the highest sacked segment;
        // with an empty bitmap only the segment at `acked` is known lost.
        let top = 64 - bitmap.leading_zeros() as u64; // sacked segments above acked
        self.high = self.high.max((acked + (top + 1) * mtu).min(max_sent));
        self.cursor = self.cursor.max(acked);
        if acked >= self.episode_end {
            self.episode_end = max_sent;
            return true;
        }
        false
    }

    /// Cumulative progress to `new_acked`: shift the bitmap down so it
    /// stays relative to the ACK, and never repair below it.
    pub fn on_cum_advance(&mut self, advanced_bytes: u64, new_acked: u64, mtu: u64) {
        let segs = advanced_bytes / mtu;
        self.bitmap = if segs >= 64 { 0 } else { self.bitmap >> segs };
        self.cursor = self.cursor.max(new_acked);
    }

    /// The RTO fired: rewind the scan to the cumulative ACK so every
    /// still-missing segment gets resent (the previous repairs — or every
    /// NACK — may themselves have been lost).
    pub fn rearm_on_timeout(&mut self, acked: u64, mtu: u64) {
        self.cursor = acked;
        self.high = self.high.max(acked + mtu);
    }

    /// Next gap to repair at or above the cumulative ACK, if any; the
    /// cursor advances past it. Sacked segments are skipped.
    pub fn next_repair(&mut self, acked: u64, mtu: u64) -> Option<u64> {
        while self.cursor < self.high {
            let o = self.cursor.max(acked);
            if o >= self.high {
                self.cursor = o;
                return None;
            }
            self.cursor = o + mtu;
            let seg = (o - acked) / mtu;
            let sacked = seg > 0 && (self.bitmap >> (seg - 1)) & 1 == 1;
            if !sacked {
                return Some(o);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> RecoveryConfig {
        RecoveryConfig {
            min_rto: Delta::from_us(48),
            max_rto: Delta::from_ms(10),
            max_retries: 3,
            regime: Regime::GoBackN,
            rx_buffering: false,
        }
    }

    fn mk() -> GoBackN {
        GoBackN::new(cfg())
    }

    #[test]
    fn backoff_doubles_until_failure() {
        let mut g = mk();
        assert_eq!(g.rto(), Delta::from_us(48));
        assert_eq!(g.on_timeout(), RtoOutcome::Retransmit);
        assert_eq!(g.rto(), Delta::from_us(96));
        assert_eq!(g.on_timeout(), RtoOutcome::Retransmit);
        assert_eq!(g.rto(), Delta::from_us(192));
        assert_eq!(g.on_timeout(), RtoOutcome::Retransmit);
        assert_eq!(g.rto(), Delta::from_us(384));
        // 4th consecutive firing exceeds max_retries = 3.
        assert_eq!(g.on_timeout(), RtoOutcome::Failed);
        assert!(g.failed());
    }

    #[test]
    fn backoff_caps_at_max_rto() {
        let mut g = GoBackN::new(RecoveryConfig { max_rto: Delta::from_us(100), ..cfg() });
        g.on_timeout();
        assert_eq!(g.rto(), Delta::from_us(96));
        g.on_timeout();
        assert_eq!(g.rto(), Delta::from_us(100), "backoff must clamp at max_rto");
    }

    #[test]
    fn progress_resets_backoff_and_budget() {
        let mut g = mk();
        g.on_timeout();
        g.on_timeout();
        assert_eq!(g.retries(), 2);
        g.on_progress();
        assert_eq!(g.retries(), 0);
        assert_eq!(g.rto(), Delta::from_us(48));
        assert!(!g.failed());
    }

    #[test]
    fn deadline_is_now_plus_rto() {
        let mut g = mk();
        assert_eq!(g.deadline(Time::from_us(100)), Time::from_us(148));
        g.on_timeout();
        assert_eq!(g.deadline(Time::from_us(100)), Time::from_us(196));
    }

    #[test]
    fn for_rtt_scales_min_rto() {
        let cfg = RecoveryConfig::for_rtt(Delta::from_us(16));
        assert_eq!(cfg.min_rto, Delta::from_us(48));
        assert_eq!(cfg.max_retries, 8);
        assert_eq!(cfg.regime, Regime::GoBackN);
        // 8 doublings from the floor stay representable under the cap.
        assert_eq!(cfg.max_rto, Delta::from_us(48 * 256));
        cfg.validate().expect("defaults must be coherent");
    }

    #[test]
    fn validation_rejects_incoherent_configs() {
        let bad = RecoveryConfig { max_rto: Delta::from_us(1), ..cfg() };
        assert!(bad.validate().unwrap_err().contains("below min_rto"));
        let bad = RecoveryConfig { regime: Regime::SelectiveRepeat, ..cfg() };
        assert!(bad.validate().unwrap_err().contains("rx_buffering"));
        cfg().validate().expect("base config is coherent");
        RecoveryConfig::for_rtt(Delta::from_us(16))
            .selective_repeat()
            .validate()
            .expect("selective_repeat() must turn on rx_buffering");
    }

    #[test]
    fn estimator_follows_rfc6298_shape() {
        let mut e = RttEstimator::new();
        let c = cfg();
        assert_eq!(e.rto(&c), Delta::from_us(48), "unprimed falls back to min_rto");
        e.observe(Delta::from_us(20));
        // First sample: srtt = 20 µs, rttvar = 10 µs, rto = 60 µs.
        assert_eq!(e.srtt(), Delta::from_us(20));
        assert_eq!(e.rto(&c), Delta::from_us(60));
        // A long stream of identical samples converges rttvar → 0, so the
        // RTO clamps up to min_rto.
        for _ in 0..200 {
            e.observe(Delta::from_us(20));
        }
        assert_eq!(e.rto(&c), Delta::from_us(48), "steady RTT must clamp at the floor");
        // A spike reopens the variance term.
        e.observe(Delta::from_us(200));
        assert!(e.rto(&c) > Delta::from_us(48));
        assert!(e.rto(&c) <= c.max_rto);
    }

    #[test]
    fn rtt_samples_tighten_the_armed_rto() {
        let mut g = mk();
        g.on_rtt_sample(Delta::from_us(30));
        // srtt = 30, rttvar = 15 → 90 µs.
        assert_eq!(g.rto(), Delta::from_us(90));
        // During backoff the armed RTO is left alone…
        g.on_timeout();
        let backed_off = g.rto();
        g.on_rtt_sample(Delta::from_us(30));
        assert_eq!(g.rto(), backed_off);
        // …until progress resets it to the adaptive value.
        g.on_progress();
        assert!(g.rto() < backed_off);
    }

    #[test]
    fn sack_repairs_only_gaps() {
        let mtu = 1000;
        let mut s = SackState::new();
        assert!(!s.repair_pending());
        // Receiver holds segments at 1000 and 3000 (bits 0 and 2),
        // cumulative ack 0, sender has sent through 5000.
        let episode = s.on_nack(0, 0b101, mtu, 5000);
        assert!(episode, "first NACK opens a loss episode");
        assert!(s.repair_pending());
        // Gaps at 0 and 2000; 4000 is above the sack horizon (presumed in
        // flight), 1000/3000 are sacked.
        assert_eq!(s.next_repair(0, mtu), Some(0));
        assert_eq!(s.next_repair(0, mtu), Some(2000));
        assert_eq!(s.next_repair(0, mtu), None);
        assert!(!s.repair_pending());
        // A second NACK inside the same episode doesn't cut the window
        // again.
        assert!(!s.on_nack(0, 0b101, mtu, 5000));
        // Progress past the episode end opens a new episode.
        s.on_cum_advance(5000, 5000, mtu);
        assert_eq!(s.bitmap(), 0);
        assert!(s.on_nack(5000, 0b1, mtu, 8000));
    }

    #[test]
    fn sack_bitmap_shifts_with_cumulative_progress() {
        let mtu = 1000;
        let mut s = SackState::new();
        s.on_nack(0, 0b110, mtu, 6000); // 2000 and 3000 delivered
        assert_eq!(s.next_repair(0, mtu), Some(0));
        assert_eq!(s.next_repair(0, mtu), Some(1000));
        // Repairing 0 and 1000 lets the receiver advance through 4000.
        s.on_cum_advance(4000, 4000, mtu);
        assert_eq!(s.bitmap(), 0, "all sacked segments absorbed by the cum ack");
        assert!(!s.repair_pending(), "cursor may not trail below the cum ack");
    }

    #[test]
    fn timeout_rearms_repair_from_the_ack() {
        let mtu = 1500;
        let mut s = SackState::new();
        s.on_nack(3000, 0, mtu, 9000);
        assert_eq!(s.next_repair(3000, mtu), Some(3000));
        assert_eq!(s.next_repair(3000, mtu), None);
        // Every later NACK was lost; the RTO re-arms the first gap.
        s.rearm_on_timeout(3000, mtu);
        assert_eq!(s.next_repair(3000, mtu), Some(3000));
    }
}
