//! Go-back-N loss recovery (RoCEv2-style).
//!
//! RoCEv2 NICs assume a lossless fabric, but links still die: a frame lost
//! to a link failure would wedge the flow forever without a retransmission
//! path. Commercial NICs recover with *go-back-N* — the receiver only
//! accepts the next in-order byte and acknowledges cumulatively; when the
//! sender's retransmission timeout (RTO) fires it rewinds to the last
//! cumulatively acknowledged byte and resends everything from there.
//!
//! [`GoBackN`] is the per-flow sender state machine: an RTO with
//! exponential backoff and a max-retry cap that marks the flow **failed**
//! (instead of retrying forever) so runs always terminate. The NIC model
//! owns the calendar events; this type only decides *what* to do when the
//! timer fires and how far the next deadline is.

use dsh_simcore::{Delta, Time};

/// Tuning knobs for [`GoBackN`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Initial retransmission timeout. Each unproductive retry doubles it
    /// (exponential backoff) up to `min_rto << max_retries`.
    pub min_rto: Delta,
    /// Consecutive unproductive RTO firings tolerated before the flow is
    /// declared failed.
    pub max_retries: u32,
}

impl RecoveryConfig {
    /// Defaults scaled from the base RTT: the RTO starts at `3 × base_rtt`
    /// (comfortably above one round trip plus queueing jitter) and gives
    /// up after 8 doublings.
    #[must_use]
    pub fn for_rtt(base_rtt: Delta) -> Self {
        RecoveryConfig { min_rto: base_rtt * 3, max_retries: 8 }
    }
}

/// What the NIC must do after an RTO firing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RtoOutcome {
    /// Rewind the send cursor to the last cumulative ACK and retransmit;
    /// the timer has been re-armed with the backed-off RTO.
    Retransmit,
    /// The retry budget is exhausted: mark the flow failed and stop.
    Failed,
}

/// Per-flow go-back-N sender state.
#[derive(Clone, Copy, Debug)]
pub struct GoBackN {
    cfg: RecoveryConfig,
    /// Consecutive RTO firings since the last cumulative-ACK progress.
    retries: u32,
    /// Current (backed-off) timeout.
    rto: Delta,
    failed: bool,
}

impl GoBackN {
    /// Fresh state with the initial RTO armed-able.
    #[must_use]
    pub fn new(cfg: RecoveryConfig) -> Self {
        GoBackN { cfg, retries: 0, rto: cfg.min_rto, failed: false }
    }

    /// The current (backed-off) timeout.
    #[must_use]
    pub fn rto(&self) -> Delta {
        self.rto
    }

    /// Retries burned since the last progress.
    #[must_use]
    pub fn retries(&self) -> u32 {
        self.retries
    }

    /// Whether the flow has exhausted its retry budget.
    #[must_use]
    pub fn failed(&self) -> bool {
        self.failed
    }

    /// The retry count and current RTO packed into one flight-recorder
    /// payload word: retries in the top 16 bits, RTO nanoseconds
    /// (saturating at 2^48−1) below — the encoding the Chrome-trace
    /// exporter's `retransmit` markers decode.
    #[must_use]
    pub fn trace_payload(&self) -> u64 {
        const NS_MASK: u64 = (1 << 48) - 1;
        (u64::from(self.retries) << 48) | self.rto.as_ns().min(NS_MASK)
    }

    /// The deadline for a timer armed at `now`.
    #[must_use]
    pub fn deadline(&self, now: Time) -> Time {
        now + self.rto
    }

    /// Cumulative-ACK progress: the path is alive again, so the backoff
    /// and retry budget reset.
    pub fn on_progress(&mut self) {
        self.retries = 0;
        self.rto = self.cfg.min_rto;
    }

    /// The RTO fired with data still outstanding. Returns what to do;
    /// on [`RtoOutcome::Retransmit`] the internal RTO has already been
    /// doubled for the next arming.
    pub fn on_timeout(&mut self) -> RtoOutcome {
        if self.retries >= self.cfg.max_retries {
            self.failed = true;
            return RtoOutcome::Failed;
        }
        self.retries += 1;
        self.rto = Delta::from_ps(self.rto.as_ps().saturating_mul(2));
        RtoOutcome::Retransmit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk() -> GoBackN {
        GoBackN::new(RecoveryConfig { min_rto: Delta::from_us(48), max_retries: 3 })
    }

    #[test]
    fn backoff_doubles_until_failure() {
        let mut g = mk();
        assert_eq!(g.rto(), Delta::from_us(48));
        assert_eq!(g.on_timeout(), RtoOutcome::Retransmit);
        assert_eq!(g.rto(), Delta::from_us(96));
        assert_eq!(g.on_timeout(), RtoOutcome::Retransmit);
        assert_eq!(g.rto(), Delta::from_us(192));
        assert_eq!(g.on_timeout(), RtoOutcome::Retransmit);
        assert_eq!(g.rto(), Delta::from_us(384));
        // 4th consecutive firing exceeds max_retries = 3.
        assert_eq!(g.on_timeout(), RtoOutcome::Failed);
        assert!(g.failed());
    }

    #[test]
    fn progress_resets_backoff_and_budget() {
        let mut g = mk();
        g.on_timeout();
        g.on_timeout();
        assert_eq!(g.retries(), 2);
        g.on_progress();
        assert_eq!(g.retries(), 0);
        assert_eq!(g.rto(), Delta::from_us(48));
        assert!(!g.failed());
    }

    #[test]
    fn deadline_is_now_plus_rto() {
        let mut g = mk();
        assert_eq!(g.deadline(Time::from_us(100)), Time::from_us(148));
        g.on_timeout();
        assert_eq!(g.deadline(Time::from_us(100)), Time::from_us(196));
    }

    #[test]
    fn for_rtt_scales_min_rto() {
        let cfg = RecoveryConfig::for_rtt(Delta::from_us(16));
        assert_eq!(cfg.min_rto, Delta::from_us(48));
        assert_eq!(cfg.max_retries, 8);
    }
}
