//! PowerTCP window-based congestion control (Addanki, Michel, Schmid,
//! *PowerTCP: Pushing the Performance Limits of Datacenter Networks*,
//! NSDI 2022).
//!
//! Each ACK echoes per-hop INT telemetry. For every hop the sender
//! computes the normalized *power* — current + voltage analogue
//! `Γ = (λ + q̇)(q + BDP) / (C · BDP)` — takes the bottleneck (maximum)
//! across hops, and updates the window
//! `w ← γ·(w/Γ + β) + (1−γ)·w`.
//!
//! Power reacts to the queue *gradient* as well as its absolute length, so
//! the window backs off while a burst is still building — this is why the
//! paper's PowerTCP runs keep much lower persistent occupancy than DCQCN
//! (visible in our Fig. 6/14 reproductions).

use crate::cc::{AckInfo, Cc};
use crate::telemetry::{TelemetryHop, HOP_CAPACITY};
use dsh_simcore::{Bandwidth, Delta, Time};

/// PowerTCP parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerTcpConfig {
    /// Line rate of the sender's link.
    pub link: Bandwidth,
    /// Base (uncongested) round-trip time `τ`.
    pub base_rtt: Delta,
    /// EWMA gain `γ` (paper default 0.9).
    pub gamma: f64,
    /// Additive increase `β` in bytes (we use one MTU).
    pub beta_bytes: f64,
    /// Lower window clamp in bytes.
    pub min_cwnd: u64,
    /// Upper window clamp in bytes (a few BDP).
    pub max_cwnd: u64,
}

impl PowerTcpConfig {
    /// Defaults for a sender on `link` with base RTT `base_rtt`.
    #[must_use]
    pub fn for_link(link: Bandwidth, base_rtt: Delta) -> Self {
        let bdp = (link.as_bps() as f64 / 8.0 * base_rtt.as_secs_f64()) as u64;
        PowerTcpConfig {
            link,
            base_rtt,
            gamma: 0.9,
            beta_bytes: 1500.0,
            min_cwnd: 1500,
            max_cwnd: bdp.max(1500) * 4,
        }
    }

    /// The bandwidth-delay product in bytes.
    #[must_use]
    pub fn bdp_bytes(&self) -> u64 {
        (self.link.as_bps() as f64 / 8.0 * self.base_rtt.as_secs_f64()) as u64
    }
}

/// Previous INT observation for one hop (to form discrete gradients).
#[derive(Clone, Copy, Debug)]
struct HopMemory {
    qlen_bytes: u64,
    tx_bytes: u64,
    timestamp: Time,
}

const ZERO_MEMORY: HopMemory = HopMemory { qlen_bytes: 0, tx_bytes: 0, timestamp: Time::ZERO };

/// PowerTCP per-flow sender state.
#[derive(Clone, Debug)]
pub struct PowerTcp {
    cfg: PowerTcpConfig,
    cwnd: f64,
    /// Previous per-hop observations, inline ([`HOP_CAPACITY`] slots) so a
    /// new flow's first ACKs never allocate.
    prev_hops: [HopMemory; HOP_CAPACITY],
    prev_len: u8,
    /// EWMA of the normalized power over the base RTT (the paper smooths
    /// Γ before using it; raw per-ACK gradients are far too noisy).
    smoothed_power: Option<f64>,
    last_update: Time,
}

impl PowerTcp {
    /// Creates a sender starting at one BDP of window.
    #[must_use]
    pub fn new(cfg: PowerTcpConfig) -> Self {
        let bdp = cfg.bdp_bytes().max(cfg.min_cwnd) as f64;
        PowerTcp {
            cfg,
            cwnd: bdp,
            prev_hops: [ZERO_MEMORY; HOP_CAPACITY],
            prev_len: 0,
            smoothed_power: None,
            last_update: Time::ZERO,
        }
    }

    /// The current smoothed normalized power estimate (diagnostics).
    #[must_use]
    pub fn power(&self) -> Option<f64> {
        self.smoothed_power
    }

    /// Normalized power for one hop given the previous observation, or
    /// `None` on the first sample of a hop.
    fn hop_power(&self, prev: &HopMemory, cur: &TelemetryHop) -> Option<f64> {
        if cur.timestamp <= prev.timestamp {
            return None;
        }
        let dt = (cur.timestamp - prev.timestamp).as_secs_f64();
        let c = cur.bandwidth.as_bps() as f64; // bits/s
        let bdp_bits = c * self.cfg.base_rtt.as_secs_f64();
        // λ: current throughput; q̇: queue growth rate (bits/s, may be
        // negative).
        let lambda = (cur.tx_bytes.saturating_sub(prev.tx_bytes)) as f64 * 8.0 / dt;
        let qdot = (cur.qlen_bytes as f64 - prev.qlen_bytes as f64) * 8.0 / dt;
        let q_bits = cur.qlen_bytes as f64 * 8.0;
        let power = (lambda + qdot).max(0.0) * (q_bits + bdp_bits) / (c * bdp_bits);
        Some(power.max(1e-3))
    }
}

impl Cc for PowerTcp {
    fn on_ack(&mut self, now: Time, info: &AckInfo<'_>) {
        if info.hops.is_empty() {
            return;
        }
        // Bottleneck power across hops.
        let mut gamma_norm: Option<f64> = None;
        if usize::from(self.prev_len) == info.hops.len() {
            for (prev, cur) in self.prev_hops.iter().zip(info.hops) {
                if let Some(p) = self.hop_power(prev, cur) {
                    gamma_norm = Some(gamma_norm.map_or(p, |g: f64| g.max(p)));
                }
            }
        }
        // Remember this observation for the next gradient.
        for (slot, h) in self.prev_hops.iter_mut().zip(info.hops) {
            *slot = HopMemory {
                qlen_bytes: h.qlen_bytes,
                tx_bytes: h.tx_bytes,
                timestamp: h.timestamp,
            };
        }
        self.prev_len = info.hops.len() as u8;

        if let Some(p_inst) = gamma_norm {
            // Smooth power over the base RTT (paper Algorithm 1): the raw
            // per-ACK gradient term q̇ whips around under a PFC sawtooth.
            let dt = now.saturating_since(self.last_update).as_secs_f64();
            self.last_update = now;
            let tau = self.cfg.base_rtt.as_secs_f64();
            let wt = (dt / tau).clamp(0.0, 1.0);
            let u = match self.smoothed_power {
                Some(s) => s * (1.0 - wt) + p_inst * wt,
                None => p_inst,
            };
            // Keep one update from over-reacting (the real algorithm's
            // once-per-RTT window reference bounds compounding similarly).
            let u_clamped = u.clamp(0.5, 10.0);
            self.smoothed_power = Some(u);
            let g = self.cfg.gamma;
            let new = g * (self.cwnd / u_clamped + self.cfg.beta_bytes) + (1.0 - g) * self.cwnd;
            self.cwnd = new.clamp(self.cfg.min_cwnd as f64, self.cfg.max_cwnd as f64);
        }
    }

    fn on_cnp(&mut self, _now: Time) {
        // PowerTCP does not use CNPs.
    }

    fn on_loss(&mut self, _now: Time) {
        // INT tells PowerTCP nothing about a dead link; halve the window
        // so the go-back-N rewind is not replayed at full blast.
        self.cwnd = (self.cwnd / 2.0).max(self.cfg.min_cwnd as f64);
    }

    fn on_fluid_handoff(&mut self, _now: Time, rate: Bandwidth) {
        // Window equivalent of the fluid fair share: rate × base RTT.
        let w = rate.as_bps() as f64 / 8.0 * self.cfg.base_rtt.as_secs_f64();
        self.cwnd = w.clamp(self.cfg.min_cwnd as f64, self.cfg.max_cwnd as f64);
    }

    fn on_sent(&mut self, _now: Time, _bytes: u64) {}

    fn rate(&self) -> Bandwidth {
        // Window-based: the NIC sends as fast as the window allows.
        self.cfg.link
    }

    fn cwnd_bytes(&self) -> u64 {
        self.cwnd as u64
    }

    fn next_timer(&self) -> Option<Time> {
        None
    }

    fn on_timer(&mut self, _now: Time) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk() -> PowerTcp {
        PowerTcp::new(PowerTcpConfig::for_link(Bandwidth::from_gbps(100), Delta::from_us(16)))
    }

    fn hop(q: u64, tx: u64, t_us: u64) -> TelemetryHop {
        TelemetryHop {
            qlen_bytes: q,
            tx_bytes: tx,
            timestamp: Time::from_us(t_us),
            bandwidth: Bandwidth::from_gbps(100),
        }
    }

    fn ack(hops: &[TelemetryHop]) -> AckInfo<'_> {
        AckInfo { acked_bytes: 1500, ecn_echo: false, hops }
    }

    #[test]
    fn starts_at_one_bdp() {
        let cc = mk();
        // 100G x 16us = 200 KB.
        assert_eq!(cc.cwnd_bytes(), 200_000);
    }

    #[test]
    fn growing_queue_shrinks_window() {
        let mut cc = mk();
        // First ACK primes hop memory.
        cc.on_ack(Time::from_us(20), &ack(&[hop(0, 1_000_000, 10)]));
        let w0 = cc.cwnd_bytes();
        // Queue builds fast while the link also runs at line rate: power >> 1.
        cc.on_ack(Time::from_us(40), &ack(&[hop(500_000, 1_250_000, 30)]));
        assert!(cc.cwnd_bytes() < w0, "{} !< {w0}", cc.cwnd_bytes());
    }

    #[test]
    fn empty_idle_link_grows_window() {
        let mut cc = mk();
        cc.on_ack(Time::from_us(20), &ack(&[hop(0, 1_000_000, 10)]));
        // Force the window low first.
        for i in 0..20u64 {
            cc.on_ack(
                Time::from_us(40 + i * 20),
                &ack(&[hop(400_000 + i * 1000, 1_250_000 + i * 250_000, 30 + i * 20)]),
            );
        }
        let w_low = cc.cwnd_bytes();
        // Now the queue is empty and throughput modest: power < 1, grow.
        let base_tx = 10_000_000;
        let mut last = w_low;
        for i in 0..10u64 {
            cc.on_ack(
                Time::from_us(1000 + i * 20),
                // 125,000 B per 20 us = 50 Gb/s on a 100 Gb/s link, no queue.
                &ack(&[hop(0, base_tx + i * 125_000, 990 + i * 20)]),
            );
            last = cc.cwnd_bytes();
        }
        assert!(last > w_low, "{last} !> {w_low}");
    }

    #[test]
    fn window_stays_clamped() {
        let mut cc = mk();
        cc.on_ack(Time::from_us(20), &ack(&[hop(0, 0, 10)]));
        for i in 0..500u64 {
            // Pathological telemetry: enormous queue growth.
            cc.on_ack(
                Time::from_us(40 + i * 20),
                &ack(&[hop(10_000_000 + i, 1_000_000_000 + i * 250_000, 30 + i * 20)]),
            );
        }
        assert!(cc.cwnd_bytes() >= 1500);
        for i in 0..500u64 {
            // Zero power: idle network.
            cc.on_ack(
                Time::from_us(20_000 + i * 20),
                &ack(&[hop(0, 1_000_000_000, 19_990 + i * 20)]),
            );
        }
        assert!(
            cc.cwnd_bytes()
                <= PowerTcpConfig::for_link(Bandwidth::from_gbps(100), Delta::from_us(16)).max_cwnd
        );
    }

    #[test]
    fn non_monotonic_timestamps_are_ignored() {
        let mut cc = mk();
        cc.on_ack(Time::from_us(20), &ack(&[hop(0, 1_000, 10)]));
        let w0 = cc.cwnd_bytes();
        // Same timestamp: no gradient, window unchanged.
        cc.on_ack(Time::from_us(21), &ack(&[hop(999_999, 2_000, 10)]));
        assert_eq!(cc.cwnd_bytes(), w0);
    }

    /// NACK-borne cumulative progress arrives as `AckInfo` with an empty
    /// hop list (NACKs carry no INT telemetry). An INT-driven window must
    /// read that as *no information* — not as an uncongested path — and
    /// must not disturb its hop memory, or the repair traffic of a loss
    /// episode would grow the window during the episode itself.
    #[test]
    fn hop_free_ack_info_is_ignored() {
        let mut cc = mk();
        cc.on_ack(Time::from_us(20), &ack(&[hop(500_000, 1_000_000, 10)]));
        let w0 = cc.cwnd_bytes();
        let p0 = cc.power();
        for i in 0..50u64 {
            cc.on_ack(Time::from_us(40 + i), &ack(&[]));
        }
        assert_eq!(cc.cwnd_bytes(), w0, "zero-hop AckInfo moved the window");
        assert_eq!(cc.power(), p0, "zero-hop AckInfo disturbed the power estimate");
        // The hop memory must be intact: the next real INT sample still
        // forms a gradient against the pre-NACK observation.
        cc.on_ack(Time::from_us(200), &ack(&[hop(1_000_000, 1_500_000, 190)]));
        assert_ne!(cc.cwnd_bytes(), w0, "INT gradient lost across hop-free ACKs");
    }

    #[test]
    fn hop_count_change_reprimes() {
        let mut cc = mk();
        cc.on_ack(Time::from_us(20), &ack(&[hop(0, 1_000, 10)]));
        let w0 = cc.cwnd_bytes();
        // ECMP path change: 2 hops now; must re-prime, not panic.
        cc.on_ack(Time::from_us(40), &ack(&[hop(0, 1_000, 30), hop(0, 1_000, 30)]));
        assert_eq!(cc.cwnd_bytes(), w0);
        // Next ACK on the same 2-hop path produces an update.
        cc.on_ack(Time::from_us(60), &ack(&[hop(100_000, 200_000, 50), hop(0, 1_500, 50)]));
        assert_ne!(cc.cwnd_bytes(), w0);
    }
}
