//! A small, dependency-free stand-in for the `criterion` crate.
//!
//! This workspace builds in offline environments where crates.io is not
//! reachable. The benches only need `Criterion::bench_function`,
//! benchmark groups, `iter` / `iter_batched` / `iter_batched_ref`, and the
//! `criterion_group!` / `criterion_main!` macros — this crate provides
//! those, timing each benchmark over a small fixed iteration count and
//! printing `name ... mean <time>` lines instead of full statistics.

#![forbid(unsafe_code)]

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One recorded benchmark outcome (what the JSON trajectory stores).
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Benchmark id (`group/function`).
    pub name: String,
    /// Mean wall-clock per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Iterations timed.
    pub iterations: u64,
}

static RECORDS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// One named scalar recorded alongside the timing results (e.g. an
/// allocation count measured by a bench with a counting allocator).
#[derive(Clone, Debug)]
pub struct MetricRecord {
    /// Metric id (free-form, conventionally `group/function/metric`).
    pub name: String,
    /// The measured value.
    pub value: f64,
}

static METRICS: Mutex<Vec<MetricRecord>> = Mutex::new(Vec::new());

/// Records a named scalar metric into the JSON report's `metrics` array.
///
/// Benches use this for non-timing measurements (allocation counts,
/// events/second, packets) that belong in the same perf-trajectory point
/// as the means.
///
/// # Panics
///
/// Panics if the metric store mutex is poisoned.
pub fn record_metric(name: &str, value: f64) {
    println!("{name:<50} metric {value}");
    METRICS
        .lock()
        .expect("metric records poisoned")
        .push(MetricRecord { name: name.to_string(), value });
}

/// Environment variable naming the file [`emit_json_if_requested`] writes.
pub const JSON_ENV: &str = "DSH_BENCH_JSON";

/// Parses a positive worker/thread count from an environment variable
/// (the `DSH_THREADS`/`DSH_WORKERS` convention: unset, `0`, or garbage
/// mean "not configured").
fn env_count(var: &str) -> Option<usize> {
    std::env::var(var).ok().and_then(|v| v.trim().parse::<usize>().ok()).filter(|&n| n > 0)
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Writes every benchmark recorded so far as one JSON document to `path`
/// (the perf-trajectory format: machine parallelism + per-bench means).
///
/// # Errors
///
/// Propagates the underlying file write error.
pub fn emit_json_to(path: &str) -> std::io::Result<()> {
    let records = RECORDS.lock().expect("bench records poisoned");
    let cores = std::thread::available_parallelism().map_or(0, usize::from);
    // The provenance records what the run was *configured* to use, not
    // what the host could have offered: sweep threads resolve exactly
    // like `Executor::from_env` (DSH_THREADS, else all cores) and
    // intra-run partition workers default to the serial engine unless
    // DSH_WORKERS opts in. `available_parallelism` stays alongside as
    // the host context those counts should be read against.
    let threads = env_count("DSH_THREADS").unwrap_or(cores);
    let workers = env_count("DSH_WORKERS").unwrap_or(1);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"available_parallelism\": {cores},\n"));
    out.push_str(&format!(
        "  \"provenance\": {{\"harness_version\": \"{}\", \"threads\": {threads}, \
         \"workers\": {workers}, \"available_parallelism\": {cores}, \"command\": \"{}\"}},\n",
        json_escape(env!("CARGO_PKG_VERSION")),
        json_escape(&std::env::args().collect::<Vec<_>>().join(" ")),
    ));
    out.push_str("  \"benches\": [\n");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"mean_ns\": {}, \"iterations\": {}}}{comma}\n",
            json_escape(&r.name),
            r.mean_ns,
            r.iterations
        ));
    }
    out.push_str("  ],\n");
    let metrics = METRICS.lock().expect("metric records poisoned");
    out.push_str("  \"metrics\": [\n");
    for (i, m) in metrics.iter().enumerate() {
        let comma = if i + 1 < metrics.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"value\": {}}}{comma}\n",
            json_escape(&m.name),
            m.value
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

/// Writes the recorded benchmarks to the path named by `DSH_BENCH_JSON`,
/// if set. `criterion_main!` calls this after all groups have run.
///
/// # Panics
///
/// Panics if the file cannot be written — a silent miss would record an
/// empty perf trajectory point.
pub fn emit_json_if_requested() {
    if let Ok(path) = std::env::var(JSON_ENV) {
        emit_json_to(&path).expect("failed to write benchmark JSON");
    }
}

/// How to batch setup output between iterations (API-compatible subset).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Opaque hint preventing the optimizer from deleting a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-benchmark timing driver.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    fn new(iterations: u64) -> Self {
        Bencher { iterations, elapsed: Duration::ZERO }
    }

    /// Times `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh values produced by `setup` (consumed).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    /// Times `routine` over fresh values produced by `setup` (by `&mut`).
    pub fn iter_batched_ref<I, O, S: FnMut() -> I, R: FnMut(&mut I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iterations {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Entry point handed to each benchmark function.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

fn run_one(label: &str, iterations: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher::new(iterations);
    f(&mut b);
    let mean = if b.iterations > 0 { b.elapsed / b.iterations as u32 } else { Duration::ZERO };
    println!("{label:<50} mean {mean:>12.3?} ({} iters)", b.iterations);
    RECORDS.lock().expect("bench records poisoned").push(BenchRecord {
        name: label.to_string(),
        mean_ns: mean.as_nanos() as f64,
        iterations: b.iterations,
    });
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), sample_size: self.sample_size, _parent: self }
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: u64,
    _parent: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the group's iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<I: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// Declares a group function calling each benchmark with one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running the listed groups, then emitting the
/// JSON perf-trajectory point when `DSH_BENCH_JSON` names a file.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::emit_json_if_requested();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut calls = 0u64;
        let mut c = Criterion::default();
        c.bench_function("count", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 10);
    }

    #[test]
    fn emit_json_records_bench_results() {
        let mut c = Criterion::default();
        c.bench_function("json_emission_probe", |b| b.iter(|| 1 + 1));
        record_metric("probe/allocs_per_packet", 0.0);
        let path = std::env::temp_dir().join("dsh_criterion_emit_test.json");
        emit_json_to(path.to_str().unwrap()).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(body.contains("\"available_parallelism\""), "{body}");
        assert!(body.contains("\"provenance\""), "{body}");
        assert!(body.contains("\"harness_version\""), "{body}");
        assert!(body.contains("\"threads\""), "{body}");
        assert!(body.contains("\"workers\""), "{body}");
        assert!(body.contains("\"json_emission_probe\""), "{body}");
        assert!(body.contains("\"mean_ns\""), "{body}");
        assert!(body.contains("\"metrics\""), "{body}");
        assert!(body.contains("\"probe/allocs_per_packet\""), "{body}");
    }

    #[test]
    fn batched_ref_gets_fresh_state() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function("fresh", |b| {
            b.iter_batched_ref(
                Vec::<u64>::new,
                |v| {
                    v.push(1);
                    assert_eq!(v.len(), 1);
                },
                BatchSize::SmallInput,
            );
        });
        g.finish();
    }
}
