//! A small, dependency-free stand-in for the `proptest` crate.
//!
//! This workspace builds in offline environments where crates.io is not
//! reachable, so it vendors the subset of proptest's API its tests use:
//! integer/float range strategies, tuple strategies, `prop_map`,
//! `collection::vec`, `prop_oneof!`, `prop_assert*!` and the `proptest!`
//! macro with `#![proptest_config(...)]`.
//!
//! Semantics: each property runs `Config::cases` deterministic cases
//! (seeded from the test's module path and case index). There is no
//! shrinking — a failing case panics with the usual assertion message,
//! which is enough for this workspace's fixed-seed CI.

#![forbid(unsafe_code)]

/// Test-runner configuration and deterministic RNG.
pub mod test_runner {
    /// Number of cases to run per property.
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// How many random cases each `#[test]` inside `proptest!` runs.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    impl Config {
        /// A config running `cases` cases (mirrors
        /// `ProptestConfig::with_cases`).
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    /// Deterministic SplitMix64 generator, seeded per (test, case).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates the RNG for one test case.
        #[must_use]
        pub fn for_case(test_name: &str, case: u32) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)) }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty sample range");
            self.next_u64() % bound
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// Strategies: value generators composable with `prop_map`.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` combinator.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice among type-erased alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `options`.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+ );)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
        (A.0, B.1, C.2, D.3, E.4, F.5);
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `Vec` strategy over `element` with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = Range { start: self.len.start, end: self.len.end }.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The usual glob import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property (panics on failure; no
/// shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...)` becomes a
/// `#[test]` running `Config::cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            for case in 0..config.cases {
                let mut prop_rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut prop_rng);)+
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case("t", 0);
        for _ in 0..1000 {
            let v = (10u64..20).sample(&mut rng);
            assert!((10..20).contains(&v));
            let f = (-1.0f64..1.0).sample(&mut rng);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn determinism_per_case() {
        let mut a = crate::test_runner::TestRng::for_case("x", 3);
        let mut b = crate::test_runner::TestRng::for_case("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_roundtrip(xs in crate::collection::vec(0u64..100, 0..10), k in 1usize..4) {
            prop_assert!(xs.len() < 10);
            prop_assert!(k >= 1 && k < 4);
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![
            (0u64..10).prop_map(|x| x as i64),
            (0u64..10).prop_map(|x| -(x as i64)),
        ]) {
            prop_assert!((-9..10).contains(&v));
        }
    }
}
