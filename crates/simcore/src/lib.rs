//! Deterministic discrete-event simulation engine for the DSH datacenter
//! simulator.
//!
//! This crate is the bottom layer of the reproduction of *"Less is More:
//! Dynamic and Shared Headroom Allocation in PFC-Enabled Datacenter
//! Networks"* (ICDCS 2023). It plays the role ns-3's core played for the
//! paper's evaluation: simulated time, an event calendar, and a
//! deterministic random-number generator, with nothing network-specific.
//!
//! # Design
//!
//! * [`Time`] and [`Delta`] are picosecond-resolution newtypes. At 100 Gb/s
//!   one byte serializes in 80 ps, so nanoseconds would round away byte-level
//!   timing; picoseconds in a `u64` still cover ~213 days of simulated time.
//! * [`Bandwidth`] converts between bytes and wire time exactly (bits/s).
//! * [`EventQueue`] is a calendar ordered by `(time, insertion sequence)` so
//!   that simultaneous events run in FIFO order — the whole simulator is
//!   deterministic for a given seed.
//! * [`SimRng`] is a self-contained xoshiro256** generator (seeded via
//!   SplitMix64) so results do not drift across `rand` versions or
//!   platforms.
//! * [`exec`] runs independent experiment points on a scoped worker pool
//!   ([`exec::par_map`]), deriving per-point seeds with [`split_seed`] so
//!   sweeps are bit-identical at any thread count.
//!
//! # Example
//!
//! ```
//! use dsh_simcore::{Delta, EventQueue, Time};
//!
//! let mut q = EventQueue::new();
//! q.push(Time::ZERO + Delta::from_ns(5), "later");
//! q.push(Time::ZERO, "now");
//! let (t0, e0) = q.pop().unwrap();
//! assert_eq!((t0, e0), (Time::ZERO, "now"));
//! let (t1, e1) = q.pop().unwrap();
//! assert_eq!((t1, e1), (Time::from_ns(5), "later"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
pub mod exec;
pub mod json;
mod pool;
pub mod profile;
mod queue;
mod rng;
mod time;
pub mod trace;
mod units;
pub mod window;

pub use engine::{Model, Scheduler, Simulation};
pub use exec::Executor;
pub use json::Json;
pub use pool::Pool;
pub use profile::{EngineProfile, EventClass};
pub use queue::EventQueue;
pub use rng::{split_seed, SimRng};
pub use time::{Delta, Time};
pub use trace::{FlightGuard, TraceConfig, TraceKey, TraceLog, TraceMask, Tracer};
pub use units::{Bandwidth, ByteSize};
pub use window::Lockstep;
